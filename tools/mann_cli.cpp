// mann_cli: command-line front end to the library.
//
//   mann_cli generate --task 3 --count 2 [--seed 7]
//       print synthetic stories of a task as text
//   mann_cli train --task 1 --out model.bin [--epochs 25] [--dim 24]
//                  [--hops 3] [--train 700] [--seed 42]
//       train a MemN2N and save model.bin (+ model.bin.vocab)
//   mann_cli eval --model model.bin --task 1 [--test 200] [--seed 42]
//       accuracy of a saved model on a freshly generated test split
//   mann_cli simulate --model model.bin --task 1 [--mhz 100] [--ith]
//       run the test split through the device simulator
//
// The dataset for a (task, seed) pair is fully reproducible, so a model
// trained by `train` is evaluated by `eval` on exactly the held-out split
// it never saw.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "core/ith_eval.hpp"
#include "data/encoder.hpp"
#include "model/serialize.hpp"
#include "model/trainer.hpp"
#include "runtime/measurement.hpp"

namespace {

using namespace mann;

/// Minimal --key value / --flag parser.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", key.c_str());
        std::exit(2);
      }
      key = key.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  [[nodiscard]] std::string str(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] long num(const std::string& key, long fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atol(it->second.c_str());
  }
  [[nodiscard]] bool flag(const std::string& key) const {
    return values_.contains(key);
  }

 private:
  std::map<std::string, std::string> values_;
};

data::TaskId task_from(const Args& args) {
  const long n = args.num("task", 1);
  if (n < 1 || n > 20) {
    std::fprintf(stderr, "--task must be 1..20\n");
    std::exit(2);
  }
  return static_cast<data::TaskId>(n);
}

data::DatasetConfig dataset_config_from(const Args& args) {
  data::DatasetConfig dc;
  dc.train_stories = static_cast<std::size_t>(args.num("train", 700));
  dc.test_stories = static_cast<std::size_t>(args.num("test", 200));
  dc.seed = static_cast<std::uint64_t>(args.num("seed", 42));
  return dc;
}

void print_story(const data::Story& story) {
  for (const data::Sentence& s : story.context) {
    std::printf("  ");
    for (std::size_t i = 0; i < s.size(); ++i) {
      std::printf("%s%s", i == 0 ? "" : " ", s[i].c_str());
    }
    std::printf(".\n");
  }
  std::printf("  Q: ");
  for (std::size_t i = 0; i < story.question.size(); ++i) {
    std::printf("%s%s", i == 0 ? "" : " ", story.question[i].c_str());
  }
  std::printf("?  A: %s\n", story.answer.c_str());
}

int cmd_generate(const Args& args) {
  const data::TaskId task = task_from(args);
  numeric::Rng rng(static_cast<std::uint64_t>(args.num("seed", 7)));
  const long count = args.num("count", 3);
  std::printf("%s\n", data::task_name(task).c_str());
  for (long i = 0; i < count; ++i) {
    std::printf("story %ld:\n", i + 1);
    print_story(data::generate_story(task, rng));
  }
  return 0;
}

int cmd_train(const Args& args) {
  const data::TaskId task = task_from(args);
  const std::string out = args.str("out", "model.bin");

  const data::TaskDataset ds =
      data::build_task_dataset(task, dataset_config_from(args));
  model::ModelConfig mc;
  mc.vocab_size = ds.vocab_size();
  mc.embedding_dim = static_cast<std::size_t>(args.num("dim", 24));
  mc.hops = static_cast<std::size_t>(args.num("hops", 3));
  numeric::Rng rng(static_cast<std::uint64_t>(args.num("init-seed", 1234)));
  model::MemN2N net(mc, rng);

  model::TrainConfig tc;
  tc.epochs = static_cast<std::size_t>(args.num("epochs", 25));
  std::printf("training %s: %zu stories, vocab %zu, E=%zu, %zu hops, %zu "
              "epochs\n",
              data::task_name(task).c_str(), ds.train.size(),
              ds.vocab_size(), mc.embedding_dim, mc.hops, tc.epochs);
  const auto history = model::train(net, ds.train, tc);
  for (const model::EpochStats& ep : history) {
    if (ep.epoch == 1 || ep.epoch % 5 == 0) {
      std::printf("  epoch %2zu: loss %.4f  train acc %.3f\n", ep.epoch,
                  static_cast<double>(ep.mean_loss),
                  static_cast<double>(ep.train_accuracy));
    }
  }
  const float acc = model::evaluate_accuracy(net, ds.test);
  std::printf("test accuracy: %.3f\n", static_cast<double>(acc));

  model::save_model_file(out, net);
  data::save_vocab_file(out + ".vocab", ds.vocab);
  std::printf("saved %s and %s.vocab\n", out.c_str(), out.c_str());
  return 0;
}

int cmd_eval(const Args& args) {
  const data::TaskId task = task_from(args);
  const std::string path = args.str("model", "model.bin");
  const model::MemN2N net = model::load_model_file(path);
  const data::TaskDataset ds =
      data::build_task_dataset(task, dataset_config_from(args));
  if (ds.vocab_size() != net.config().vocab_size) {
    std::fprintf(stderr,
                 "vocab mismatch: dataset %zu vs model %zu (same --task/"
                 "--seed/--train/--test as training required)\n",
                 ds.vocab_size(), net.config().vocab_size);
    return 1;
  }
  const float acc = model::evaluate_accuracy(net, ds.test);
  std::printf("%s: accuracy %.3f on %zu stories\n",
              data::task_name(task).c_str(), static_cast<double>(acc),
              ds.test.size());
  return 0;
}

int cmd_simulate(const Args& args) {
  const data::TaskId task = task_from(args);
  const std::string path = args.str("model", "model.bin");
  const model::MemN2N net = model::load_model_file(path);
  const data::TaskDataset ds =
      data::build_task_dataset(task, dataset_config_from(args));
  if (ds.vocab_size() != net.config().vocab_size) {
    std::fprintf(stderr, "vocab mismatch (see eval)\n");
    return 1;
  }

  accel::AccelConfig cfg;
  cfg.clock_hz = static_cast<double>(args.num("mhz", 100)) * 1.0e6;
  cfg.ith_enabled = args.flag("ith");

  core::InferenceThresholding ith;
  const accel::DeviceProgram program = [&] {
    if (cfg.ith_enabled) {
      ith = core::InferenceThresholding::calibrate(net, ds.train, {});
      return accel::compile_model(net, &ith);
    }
    return accel::compile_model(net);
  }();
  const accel::Accelerator device(cfg, program);
  const accel::RunResult run = device.run(ds.test);

  std::size_t correct = 0;
  for (std::size_t i = 0; i < run.stories.size(); ++i) {
    if (run.stories[i].prediction == ds.test[i].answer) {
      ++correct;
    }
  }
  std::printf("%s @ %.0f MHz%s: %zu stories in %.3f ms, accuracy %.3f, "
              "probes/story %.1f, early exits %.1f%%\n",
              data::task_name(task).c_str(), cfg.clock_hz / 1.0e6,
              cfg.ith_enabled ? " +ITH" : "", run.stories.size(),
              run.seconds * 1e3,
              static_cast<double>(correct) /
                  static_cast<double>(run.stories.size()),
              run.mean_output_probes(), run.early_exit_rate() * 100.0);
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: mann_cli <generate|train|eval|simulate> [--options]\n"
               "see the header of tools/mann_cli.cpp for details\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const Args args(argc, argv, 2);
  try {
    if (cmd == "generate") {
      return cmd_generate(args);
    }
    if (cmd == "train") {
      return cmd_train(args);
    }
    if (cmd == "eval") {
      return cmd_eval(args);
    }
    if (cmd == "simulate") {
      return cmd_simulate(args);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
