// Trace generator: records a synthetic arrival schedule to CSV.
//
// Runs the same TrafficGenerator the serving runtime uses (so the
// recorded schedule is exactly what a live run with these knobs would
// have seen) and writes `arrival_cycle,task_id,tenant_id` rows (the v2
// trace format; replaying a tenantless v1 trace still works) for the
// trace-replay process to consume. With `--tenants N` each arrival is
// labelled with one of N equal-share tenants, drawn from the generator's
// dedicated tenant RNG stream — so the arrival timing is identical to a
// tenantless recording with the same seed.
//
// The checked-in sample trace was produced by this tool; regenerate it
// with:
//
//   mann_make_trace --out bench/traces/sample_diurnal.csv --requests 2000
//       --tasks 20 --tenants 3 --process diurnal --mean-interarrival 2000
//
//   mann_make_trace --out trace.csv [--requests N] [--tasks K]
//                   [--tenants T]
//                   [--process poisson|bursty|diurnal]
//                   [--mean-interarrival C] [--seed S]
//                   [--diurnal-amplitude A] [--diurnal-period P]
//                   [--in PATH] [--scale F]
//
// With `--in PATH` the tool amplifies an existing recording instead of
// generating one: every original row is kept verbatim and `--scale F`
// adds F-1 jittered replicas per row (serve::scale_trace — the offsets
// are deterministic in --seed, so two runs produce byte-identical
// amplified traces). This is how the cluster bench's 10x diurnal volume
// is produced from the committed 1x sample. `--scale` also composes
// with generation: the synthetic schedule is amplified before writing.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "data/types.hpp"
#include "serve/request.hpp"
#include "serve/tenant.hpp"
#include "serve/trace.hpp"

namespace {

using namespace mann;

struct Options {
  std::string out;
  std::string in;          ///< amplify this recording instead of generating
  std::size_t scale = 1;   ///< keep originals, add scale-1 jittered replicas
  std::size_t requests = 2'000;
  std::size_t tasks = 4;
  std::size_t tenants = 1;
  serve::ArrivalProcess process = serve::ArrivalProcess::kDiurnal;
  double mean_interarrival = 2'000.0;
  double diurnal_amplitude = 0.6;
  double diurnal_period = 2.0e6;
  std::uint64_t seed = 2019;
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: mann_make_trace --out PATH [--requests N] [--tasks K]\n"
      "                       [--tenants T]\n"
      "                       [--process poisson|bursty|diurnal]\n"
      "                       [--mean-interarrival CYCLES] [--seed S]\n"
      "                       [--diurnal-amplitude A] [--diurnal-period P]\n"
      "                       [--in PATH] [--scale F]\n");
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      opts.out = next();
    } else if (arg == "--in") {
      opts.in = next();
    } else if (arg == "--scale") {
      opts.scale = static_cast<std::size_t>(std::strtoull(next(), nullptr,
                                                          10));
      if (opts.scale == 0) {
        std::fprintf(stderr, "--scale needs a positive factor\n");
        std::exit(2);
      }
    } else if (arg == "--requests") {
      opts.requests = static_cast<std::size_t>(std::strtoull(next(), nullptr,
                                                             10));
    } else if (arg == "--tasks") {
      opts.tasks = static_cast<std::size_t>(std::strtoull(next(), nullptr,
                                                          10));
    } else if (arg == "--tenants") {
      opts.tenants = static_cast<std::size_t>(std::strtoull(next(), nullptr,
                                                            10));
    } else if (arg == "--process") {
      const std::string p = next();
      if (p == "poisson") {
        opts.process = serve::ArrivalProcess::kPoisson;
      } else if (p == "bursty") {
        opts.process = serve::ArrivalProcess::kBursty;
      } else if (p == "diurnal") {
        opts.process = serve::ArrivalProcess::kDiurnal;
      } else {
        usage();
      }
    } else if (arg == "--mean-interarrival") {
      opts.mean_interarrival = std::strtod(next(), nullptr);
    } else if (arg == "--diurnal-amplitude") {
      opts.diurnal_amplitude = std::strtod(next(), nullptr);
    } else if (arg == "--diurnal-period") {
      opts.diurnal_period = std::strtod(next(), nullptr);
    } else if (arg == "--seed") {
      opts.seed = std::strtoull(next(), nullptr, 10);
    } else {
      usage();
    }
  }
  if (opts.out.empty() || opts.requests == 0 || opts.tasks == 0 ||
      opts.tenants == 0) {
    usage();
  }
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse_args(argc, argv);

  std::vector<serve::TraceEntry> entries;
  if (!opts.in.empty()) {
    // Amplification mode: the recording fixes tasks/tenants/timing; the
    // generation knobs do not apply.
    try {
      entries = serve::load_trace_csv(opts.in);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    if (entries.empty()) {
      std::fprintf(stderr, "--in %s: trace has no entries\n",
                   opts.in.c_str());
      return 2;
    }
  } else {
    // The generator wants a non-empty corpus per task; arrival recording
    // only reads tasks, tenants and cycles, so a one-story dummy corpus
    // suffices.
    const std::vector<data::EncodedStory> dummy(1);
    std::vector<serve::TaskWorkload> workloads;
    workloads.reserve(opts.tasks);
    for (std::size_t t = 0; t < opts.tasks; ++t) {
      workloads.push_back({t, dummy});
    }

    serve::TrafficConfig config;
    config.process = opts.process;
    config.mean_interarrival_cycles = opts.mean_interarrival;
    config.diurnal_amplitude = opts.diurnal_amplitude;
    config.diurnal_period_cycles = opts.diurnal_period;
    config.seed = opts.seed;
    if (opts.tenants > 1) {
      // Equal traffic shares; the registry's QoS knobs (tier, weight,
      // quota) are the replayer's business, not the recording's.
      config.tenants.assign(opts.tenants, serve::TenantConfig{});
    }

    serve::TrafficGenerator generator(config, workloads, opts.requests);
    entries.reserve(opts.requests);
    while (auto request = generator.poll(sim::kNever - 1)) {
      entries.push_back({request->enqueue_cycle, request->task,
                         request->tenant});
    }
  }

  const std::size_t original = entries.size();
  if (opts.scale > 1) {
    entries = serve::scale_trace(entries, opts.scale, opts.seed);
  }

  serve::save_trace_csv(opts.out, entries);
  if (opts.scale > 1) {
    std::printf(
        "wrote %zu arrivals (%zu originals x%zu, jitter seed %llu) over "
        "%llu cycles to %s\n",
        entries.size(), original, opts.scale,
        static_cast<unsigned long long>(opts.seed),
        static_cast<unsigned long long>(entries.back().arrival_cycle),
        opts.out.c_str());
  } else if (!opts.in.empty()) {
    std::printf("wrote %zu arrivals (copy of %s) over %llu cycles to %s\n",
                entries.size(), opts.in.c_str(),
                static_cast<unsigned long long>(entries.back().arrival_cycle),
                opts.out.c_str());
  } else {
    std::printf(
        "wrote %zu arrivals over %llu cycles (%zu tasks, %zu tenants) to "
        "%s\n",
        entries.size(),
        static_cast<unsigned long long>(entries.back().arrival_cycle),
        opts.tasks, opts.tenants, opts.out.c_str());
  }
  return 0;
}
