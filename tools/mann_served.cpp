// mann_served: a long-running serving daemon over the incremental
// ServerSession API (serve/session.hpp).
//
// Where mann_cli and the benches run one closed loop and exit, this tool
// keeps a serving session open and speaks a line protocol on stdin — the
// MAGPIE ucgi.c shape: a scan loop accepting commands while a manager
// thread owns the engine. Here the scan loop (main thread) reads and
// enqueues command lines; the manager thread is the sole owner of the
// ServerSession and the sole stdout writer, so replies and streamed
// per-request lines never interleave mid-line.
//
// Protocol (one command per line; every command answers `ok ...` or
// `err ...`, and resolved requests stream as `done`/`shed` lines):
//
//   submit <task> [tenant] [deadline] [at]   inject one request.
//                        deadline: relative cycles (0 = SLO default);
//                        at: absolute arrival cycle (0 = session clock;
//                        clamped monotone). -> ok id=<id> at=<cycle>
//   info                 one status line (also emitted every
//                        --info-every N resolved requests)
//   config tenant <id> <tier> <weight> <quota_interarrival>
//                 <quota_burst> <slo>        live-replace one tenant's
//                        contract (admission + WFQ weight + SLO stamp)
//   config slo <default> [per-task...]       live-replace the SLO table
//   config policy fifo|edf|wfq               live-switch dispatch policy
//                        (wfq needs a session started with --policy wfq,
//                        which is the default for --tenants >= 2)
//   trace on|off         gate lifecycle trace recording (--trace-json)
//   step [cycles]        advance explicitly (default: to quiescence)
//   drain                end-of-stream: flush sub-size batches from now
//                        on and stop holding the lockstep horizon
//   quit                 finalize, report, exit (EOF behaves like quit)
//
// Clocking: by default each command is followed by an advance to
// quiescence (submitted work completes immediately — interactive, but
// batches rarely fill). Under --lockstep the manager never advances past
// the last submitted arrival cycle (exclusive), so a driver that submits
// a recorded schedule gets the exact closed-loop timeline: batching,
// admission and dispatch all see the same state at the same cycles, and
// the final report is bit-identical to Server::run() over the same
// trace. `drain` lifts the horizon. The CI replay-equivalence leg pipes
// bench/traces/sample_diurnal.csv through scripts/served_client.py in
// this mode and diffs the report against --closed-loop below.
//
// One-shot modes (no daemon):
//   --closed-loop FILE   serve the trace CSV via Server::run() and write
//                        the same deterministic report JSON the daemon
//                        writes — the comparison baseline.
//
// Cluster mode (--cluster N): the manager owns a cluster::Cluster of N
// lockstep instances instead of one ServerSession. The protocol is
// unchanged; `submit` replies gain `instance=<i>` (or `shed=router` when
// the router refuses), `done`/`shed` stream lines carry the serving
// instance, `info` prints one fleet line plus a line per instance, and
// `config` fans out fleet-wide. --router picks the routing policy
// (affinity = consistent-hash task affinity, p2c = power-of-two-choices,
// spill = tenant home + spill set; default p2c). --closed-loop composes:
// the trace is served by Cluster::run() and the report JSON switches to
// the fleet schema. A --cluster 1 closed loop reproduces the bare
// server's simulated timeline exactly (the CI identity gate).
// --fleet-threads N advances the instances on N host threads between
// routing barriers over a sharded fleet-shared cycle cache; every line
// the daemon emits is bit-identical for any N (wall clock only).
//
// Workload: --tiny N serves N synthetic untrained tasks (shape-only cost
// model; instant startup, used by the pipe-driven tests); --tasks K
// loads K trained tasks from the shared mann_bench_cache suite
// (--train-fallback to train stand-ins inline when the cache is absent).
#include <algorithm>
#include <cctype>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <iostream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "accel/compiler.hpp"
#include "cluster/cluster.hpp"
#include "common.hpp"
#include "data/tasks.hpp"
#include "data/types.hpp"
#include "model/memn2n.hpp"
#include "numeric/random.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/measurement.hpp"
#include "serve/options.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/trace.hpp"

namespace {

using namespace mann;

struct DaemonOptions {
  std::size_t tiny = 0;       ///< synthetic tasks (0 = use the suite)
  std::size_t tasks = 4;      ///< suite tasks when tiny == 0
  bool train_fallback = false;
  std::size_t tenants = 0;    ///< registry size (0 = single default)
  sim::Cycle slo = 0;         ///< default SLO deadline (0 = none)
  std::size_t devices = 1;
  std::size_t dedicated = 0;
  std::size_t max_batch = 8;
  std::optional<serve::SchedulerPolicy> policy;  ///< default: see below
  std::size_t cluster = 0;  ///< fleet size (0 = single bare session)
  /// Host threads advancing the fleet between routing barriers (0/1 =
  /// sequential); >1 also shards a fleet-shared cycle cache 2x this
  /// wide. Wall-clock only — every simulated line is thread-invariant.
  std::size_t fleet_threads = 0;
  cluster::RouterPolicyKind router = cluster::RouterPolicyKind::kPowerOfTwo;
  bool lockstep = false;
  std::size_t info_every = 0;  ///< info line per N resolved requests
  std::string report_json;
  std::string trace_json;
  std::string closed_loop;  ///< trace CSV: one-shot run, then exit
  std::uint64_t seed = 2019;
};

[[noreturn]] void usage(int code) {
  std::fprintf(
      stderr,
      "usage: mann_served [--tiny N | --tasks K [--train-fallback]]\n"
      "                   [--tenants N] [--slo CYCLES] [--devices N]\n"
      "                   [--dedicated N] [--max-batch B]\n"
      "                   [--policy fifo|edf|wfq] [--lockstep]\n"
      "                   [--cluster N] [--fleet-threads N]\n"
      "                   [--router affinity|p2c|spill]\n"
      "                   [--info-every N] [--report-json PATH]\n"
      "                   [--trace-json PATH] [--seed S]\n"
      "                   [--closed-loop TRACE.csv]\n"
      "Line protocol on stdin: submit/info/config/trace/step/drain/quit\n"
      "(see the header of tools/mann_served.cpp or README \"Running the\n"
      "daemon\").\n");
  std::exit(code);
}

DaemonOptions parse_args(int argc, char** argv) {
  DaemonOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        usage(2);
      }
      return argv[++i];
    };
    const auto count = [&](const char* value) {
      char* end = nullptr;
      const long long parsed = std::strtoll(value, &end, 10);
      if (end == value || *end != '\0' || parsed < 0) {
        std::fprintf(stderr, "%s needs a non-negative integer, got '%s'\n",
                     arg.c_str(), value);
        usage(2);
      }
      return static_cast<std::uint64_t>(parsed);
    };
    if (arg == "--tiny") {
      opts.tiny = count(next());
    } else if (arg == "--tasks") {
      opts.tasks = count(next());
    } else if (arg == "--train-fallback") {
      opts.train_fallback = true;
    } else if (arg == "--tenants") {
      opts.tenants = count(next());
    } else if (arg == "--slo") {
      opts.slo = count(next());
    } else if (arg == "--devices") {
      opts.devices = std::max<std::uint64_t>(1, count(next()));
    } else if (arg == "--dedicated") {
      opts.dedicated = count(next());
    } else if (arg == "--max-batch") {
      opts.max_batch = std::max<std::uint64_t>(1, count(next()));
    } else if (arg == "--policy") {
      const std::string value = next();
      if (value == "fifo") {
        opts.policy = serve::SchedulerPolicy::kFifo;
      } else if (value == "edf") {
        opts.policy = serve::SchedulerPolicy::kEdf;
      } else if (value == "wfq") {
        opts.policy = serve::SchedulerPolicy::kWfq;
      } else {
        std::fprintf(stderr, "--policy must be fifo, edf or wfq\n");
        usage(2);
      }
    } else if (arg == "--cluster") {
      opts.cluster = count(next());
    } else if (arg == "--fleet-threads") {
      opts.fleet_threads = count(next());
    } else if (arg == "--router") {
      const std::string value = next();
      if (value == "affinity") {
        opts.router = cluster::RouterPolicyKind::kTaskAffinity;
      } else if (value == "p2c") {
        opts.router = cluster::RouterPolicyKind::kPowerOfTwo;
      } else if (value == "spill") {
        opts.router = cluster::RouterPolicyKind::kTenantSpill;
      } else {
        std::fprintf(stderr, "--router must be affinity, p2c or spill\n");
        usage(2);
      }
    } else if (arg == "--lockstep") {
      opts.lockstep = true;
    } else if (arg == "--info-every") {
      opts.info_every = count(next());
    } else if (arg == "--report-json") {
      opts.report_json = next();
    } else if (arg == "--trace-json") {
      opts.trace_json = next();
    } else if (arg == "--seed") {
      opts.seed = count(next());
    } else if (arg == "--closed-loop") {
      opts.closed_loop = next();
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      usage(2);
    }
  }
  return opts;
}

// ---------------------------------------------------------------- models

/// The workload kept alive behind the ServedModel spans.
struct Workload {
  std::vector<runtime::TaskArtifacts> suite;        ///< suite mode
  std::vector<std::vector<data::EncodedStory>> corpora;  ///< tiny mode
  std::vector<serve::ServedModel> models;
};

/// Synthetic untrained tasks: queueing/scheduling behaviour only depends
/// on shapes, so tiny models give an instant-startup daemon for tests.
Workload tiny_workload(std::size_t tasks) {
  model::ModelConfig config;
  config.vocab_size = 12;
  config.embedding_dim = 8;
  config.hops = 2;
  config.max_memory = 8;
  Workload w;
  for (std::size_t t = 0; t < tasks; ++t) {
    std::vector<data::EncodedStory> stories;
    for (std::size_t i = 0; i < 32; ++i) {
      data::EncodedStory story;
      const auto word = [&](std::size_t k) {
        return static_cast<std::int32_t>((i + k) % 12);
      };
      story.context = {{word(0), word(1)}, {word(2), word(3)}};
      story.question = {word(4)};
      story.answer = word(5);
      stories.push_back(story);
    }
    w.corpora.push_back(std::move(stories));
    numeric::Rng rng(7 + t);
    const model::MemN2N net(config, rng);
    serve::ServedModel model;
    model.program = accel::compile_model(net);
    model.stories = w.corpora.back();
    w.models.push_back(std::move(model));
  }
  return w;
}

Workload suite_workload(const DaemonOptions& opts) {
  const std::size_t suite_size = data::all_tasks().size();
  if (opts.tasks == 0 || opts.tasks > suite_size) {
    std::fprintf(stderr, "--tasks must sit in 1..%zu\n", suite_size);
    std::exit(2);
  }
  Workload w;
  const runtime::PrepareConfig suite_cfg = bench::suite_config();
  if (runtime::suite_cache_complete(suite_cfg, "mann_bench_cache",
                                    opts.tasks)) {
    w.suite = runtime::prepare_suite_cached(suite_cfg, "mann_bench_cache",
                                            opts.tasks);
  } else if (opts.train_fallback) {
    runtime::PrepareConfig prep = runtime::default_prepare_config();
    prep.dataset.train_stories = 600;
    prep.dataset.test_stories = 150;
    prep.train.epochs = 20;
    const std::vector<data::TaskId>& all = data::all_tasks();
    for (std::size_t t = 0; t < opts.tasks; ++t) {
      w.suite.push_back(runtime::prepare_task(all[t], prep));
    }
  } else {
    std::fprintf(stderr,
                 "mann_bench_cache/ is missing models; pass "
                 "--train-fallback or --tiny N\n");
    std::exit(2);
  }
  for (const runtime::TaskArtifacts& art : w.suite) {
    serve::ServedModel model;
    model.program = accel::compile_model(art.model, nullptr);
    model.stories = art.dataset.test;
    w.models.push_back(std::move(model));
  }
  return w;
}

// ---------------------------------------------------------------- config

serve::ServerConfig make_config(const DaemonOptions& opts,
                                obs::MetricsRegistry* metrics,
                                obs::TraceRecorder* trace) {
  std::vector<serve::TenantConfig> registry(opts.tenants);
  serve::SloConfig slo;
  slo.default_deadline_cycles = opts.slo == 0 ? sim::kNever : opts.slo;
  serve::SchedulerConfig scheduler;
  scheduler.devices = opts.devices;
  scheduler.dedicated_devices = std::min(opts.dedicated, opts.devices);
  // WFQ by default once there is more than one tenant: the tenant lanes
  // it lays out are what makes a later `config policy wfq|edf` switch
  // possible at all (lanes are a construction-time layout decision).
  scheduler.policy = opts.policy.value_or(
      opts.tenants >= 2 ? serve::SchedulerPolicy::kWfq
                        : serve::SchedulerPolicy::kEdf);
  serve::BatcherConfig batcher;
  batcher.max_batch = opts.max_batch;
  serve::TrafficConfig traffic;
  traffic.seed = opts.seed;
  return serve::ServingOptions()
      .traffic(traffic)
      .batcher(batcher)
      .scheduler(scheduler)
      .tenants(std::move(registry))
      .slo(slo)
      .metrics(metrics)
      .trace_recorder(trace)
      .build();
}

// ---------------------------------------------------------------- report

/// The deterministic slice of a ServingReport, as stable JSON: every
/// field here is a pure function of the simulated timeline, so two runs
/// that serve the same schedule must produce byte-identical files — the
/// CI replay-equivalence gate diffs them directly. Host-dependent fields
/// (wall clock, worker count, cycle-cache hit rates) are deliberately
/// absent.
void write_report_json(const std::string& path,
                       const serve::ServingReport& r) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"offered\": %zu,\n", r.offered);
  std::fprintf(f, "  \"completed\": %zu,\n", r.completed);
  std::fprintf(f, "  \"rejected\": %zu,\n", r.rejected);
  std::fprintf(f, "  \"makespan_cycles\": %llu,\n",
               static_cast<unsigned long long>(r.makespan_cycles));
  std::fprintf(f, "  \"throughput_stories_per_second\": %.6f,\n",
               r.throughput_stories_per_second);
  std::fprintf(f, "  \"accuracy\": %.9f,\n", r.accuracy);
  std::fprintf(f, "  \"early_exit_rate\": %.9f,\n", r.early_exit_rate);
  std::fprintf(f, "  \"latency_cycles\": {\"mean\": %.3f, \"p50\": %.3f, "
               "\"p95\": %.3f, \"p99\": %.3f, \"max\": %.3f},\n",
               r.latency.mean_cycles, r.latency.p50_cycles,
               r.latency.p95_cycles, r.latency.p99_cycles,
               r.latency.max_cycles);
  std::fprintf(f, "  \"queue_wait_cycles\": {\"mean\": %.3f, \"p50\": %.3f, "
               "\"p95\": %.3f, \"p99\": %.3f, \"max\": %.3f},\n",
               r.queue_wait.mean_cycles, r.queue_wait.p50_cycles,
               r.queue_wait.p95_cycles, r.queue_wait.p99_cycles,
               r.queue_wait.max_cycles);
  std::fprintf(f, "  \"deadline\": {\"total\": %llu, \"missed\": %llu, "
               "\"hit_rate\": %.9f},\n",
               static_cast<unsigned long long>(r.deadline_total),
               static_cast<unsigned long long>(r.deadline_missed),
               r.deadline_hit_rate);
  std::fprintf(f, "  \"shed\": {\"queue_full\": %llu, \"quota\": %llu, "
               "\"doomed\": %llu, \"overload\": %llu},\n",
               static_cast<unsigned long long>(
                   r.shed.count(serve::ShedReason::kQueueFull)),
               static_cast<unsigned long long>(
                   r.shed.count(serve::ShedReason::kQuota)),
               static_cast<unsigned long long>(
                   r.shed.count(serve::ShedReason::kDoomed)),
               static_cast<unsigned long long>(
                   r.shed.count(serve::ShedReason::kOverload)));
  std::fprintf(f, "  \"fairness_index\": %.9f,\n", r.fairness_index);
  std::fprintf(f, "  \"tenants\": [");
  for (std::size_t i = 0; i < r.tenants.size(); ++i) {
    const serve::TenantReport& t = r.tenants[i];
    std::fprintf(f,
                 "%s\n    {\"tenant\": %u, \"tier\": %u, \"weight\": %.6f, "
                 "\"admitted\": %llu, \"completed\": %llu, "
                 "\"with_deadline\": %llu, \"violations\": %llu, "
                 "\"shed\": %llu}",
                 i == 0 ? "" : ",", t.tenant, t.tier, t.weight,
                 static_cast<unsigned long long>(t.admitted),
                 static_cast<unsigned long long>(t.completed),
                 static_cast<unsigned long long>(t.with_deadline),
                 static_cast<unsigned long long>(t.violations),
                 static_cast<unsigned long long>(t.shed.total()));
  }
  std::fprintf(f, "%s],\n", r.tenants.empty() ? "" : "\n  ");
  std::fprintf(f, "  \"mean_batch_size\": %.6f,\n", r.mean_batch_size);
  std::fprintf(f, "  \"batching_efficiency\": %.6f,\n",
               r.batching_efficiency);
  std::fprintf(f, "  \"mean_device_utilization\": %.9f,\n",
               r.mean_device_utilization);
  std::fprintf(f, "  \"model_uploads\": %llu,\n",
               static_cast<unsigned long long>(r.model_uploads));
  std::fprintf(f, "  \"model_evictions\": %llu,\n",
               static_cast<unsigned long long>(r.model_evictions));
  std::fprintf(f, "  \"stolen_batches\": %llu,\n",
               static_cast<unsigned long long>(r.stolen_batches));
  std::fprintf(f, "  \"energy\": {\"total_joules\": %.9f, "
               "\"per_inference_joules\": %.9f}\n",
               r.energy.total_joules, r.energy.per_inference_joules);
  std::fprintf(f, "}\n");
  std::fclose(f);
}

/// The fleet flavour of the report: the deterministic slice of a
/// ClusterReport (merged-stream percentiles, fleet energy, autoscaler
/// counters). Host-dependent fields (wall clock, cycle-cache hit rate)
/// are deliberately absent, same as the bare-session report above.
void write_cluster_report_json(const std::string& path,
                               const cluster::ClusterReport& r) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"instances\": %zu,\n", r.instances);
  std::fprintf(f, "  \"policy\": \"%s\",\n", r.policy.c_str());
  std::fprintf(f, "  \"offered\": %zu,\n", r.offered);
  std::fprintf(f, "  \"completed\": %zu,\n", r.completed);
  std::fprintf(f, "  \"rejected\": %zu,\n", r.rejected);
  std::fprintf(f, "  \"router_shed\": %zu,\n", r.router_shed);
  std::fprintf(f, "  \"makespan_cycles\": %llu,\n",
               static_cast<unsigned long long>(r.makespan_cycles));
  std::fprintf(f, "  \"throughput_stories_per_second\": %.6f,\n",
               r.throughput_stories_per_second);
  std::fprintf(f, "  \"latency_cycles\": {\"mean\": %.3f, \"p50\": %.3f, "
               "\"p95\": %.3f, \"p99\": %.3f, \"max\": %.3f},\n",
               r.latency.mean_cycles, r.latency.p50_cycles,
               r.latency.p95_cycles, r.latency.p99_cycles,
               r.latency.max_cycles);
  std::fprintf(f, "  \"queue_wait_cycles\": {\"mean\": %.3f, \"p50\": %.3f, "
               "\"p95\": %.3f, \"p99\": %.3f, \"max\": %.3f},\n",
               r.queue_wait.mean_cycles, r.queue_wait.p50_cycles,
               r.queue_wait.p95_cycles, r.queue_wait.p99_cycles,
               r.queue_wait.max_cycles);
  std::fprintf(f, "  \"deadline\": {\"total\": %llu, \"missed\": %llu, "
               "\"hit_rate\": %.9f},\n",
               static_cast<unsigned long long>(r.deadline_total),
               static_cast<unsigned long long>(r.deadline_missed),
               r.deadline_hit_rate);
  std::fprintf(f, "  \"instance_fairness\": %.9f,\n", r.instance_fairness);
  std::fprintf(f, "  \"model_uploads\": %llu,\n",
               static_cast<unsigned long long>(r.model_uploads));
  std::fprintf(f, "  \"warm_dispatch_rate\": %.9f,\n", r.warm_dispatch_rate);
  std::fprintf(f, "  \"energy\": {\"total_joules\": %.9f, "
               "\"per_inference_joules\": %.9f},\n",
               r.energy.total_joules, r.energy.per_inference_joules);
  std::fprintf(f, "  \"mean_active_instances\": %.6f,\n",
               r.mean_active_instances);
  std::fprintf(f, "  \"scale_ups\": %zu,\n", r.scale_ups);
  std::fprintf(f, "  \"scale_downs\": %zu,\n", r.scale_downs);
  std::fprintf(f, "  \"per_instance\": [");
  for (std::size_t i = 0; i < r.instance_reports.size(); ++i) {
    const cluster::InstanceReport& inst = r.instance_reports[i];
    std::fprintf(f,
                 "%s\n    {\"id\": %zu, \"routed\": %llu, "
                 "\"active_cycles\": %llu, \"completed\": %zu, "
                 "\"rejected\": %zu}",
                 i == 0 ? "" : ",", inst.id,
                 static_cast<unsigned long long>(inst.routed),
                 static_cast<unsigned long long>(inst.active_cycles),
                 inst.report.completed, inst.report.rejected);
  }
  std::fprintf(f, "%s]\n", r.instance_reports.empty() ? "" : "\n  ");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

/// Fleet template from the daemon knobs: each instance gets the full
/// per-instance stack (make_config); the router/autoscaler ride on top.
/// The daemon never autoscales — parking decisions belong to recorded
/// schedules with a known span (the bench), not an open stdin stream.
cluster::ClusterConfig make_cluster_config(const DaemonOptions& opts,
                                           obs::MetricsRegistry* metrics,
                                           obs::TraceRecorder* trace) {
  cluster::ClusterConfig config;
  config.instances = opts.cluster;
  config.server = make_config(opts, metrics, trace);
  config.router.kind = opts.router;
  config.router.seed = opts.seed;
  config.fleet_threads = opts.fleet_threads;
  config.cache_segments =
      opts.fleet_threads > 1 ? 2 * opts.fleet_threads : 0;
  return config;
}

// ------------------------------------------------------------ closed loop

/// One-shot comparison baseline: the recorded schedule served by the
/// historical closed loop (Server::run over kTrace traffic).
int run_closed_loop(const DaemonOptions& opts, Workload& workload) {
  std::vector<serve::TraceEntry> trace;
  try {
    trace = serve::load_trace_csv(opts.closed_loop);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (trace.empty()) {
    std::fprintf(stderr, "--closed-loop %s: trace has no entries\n",
                 opts.closed_loop.c_str());
    return 2;
  }
  serve::ServerConfig config = make_config(opts, nullptr, nullptr);
  config.traffic.process = serve::ArrivalProcess::kTrace;
  for (serve::TraceEntry& entry : trace) {
    entry.task %= workload.models.size();
    if (opts.tenants > 0 && entry.tenant >= opts.tenants) {
      std::fprintf(stderr,
                   "trace names tenant %u but --tenants is %zu\n",
                   entry.tenant, opts.tenants);
      return 2;
    }
  }
  config.traffic.trace = trace;
  if (opts.cluster > 0) {
    cluster::ClusterConfig fleet_config =
        make_cluster_config(opts, nullptr, nullptr);
    fleet_config.server = config;  // carries the trace traffic
    cluster::Cluster fleet(std::move(fleet_config), workload.models);
    const cluster::ClusterReport report = fleet.run(trace.size());
    if (!opts.report_json.empty()) {
      write_cluster_report_json(opts.report_json, report);
    }
    std::printf("closed-loop instances=%zu policy=%s offered=%zu "
                "completed=%zu rejected=%zu router_shed=%zu makespan=%llu\n",
                report.instances, report.policy.c_str(), report.offered,
                report.completed, report.rejected, report.router_shed,
                static_cast<unsigned long long>(report.makespan_cycles));
    return 0;
  }
  const serve::Server server(config, std::move(workload.models));
  const serve::ServingReport report = server.run(trace.size());
  if (!opts.report_json.empty()) {
    write_report_json(opts.report_json, report);
  }
  std::printf("closed-loop offered=%zu completed=%zu rejected=%zu "
              "makespan=%llu\n",
              report.offered, report.completed, report.rejected,
              static_cast<unsigned long long>(report.makespan_cycles));
  return 0;
}

// ---------------------------------------------------------------- daemon

/// Scan-loop -> manager handoff: a closeable line queue.
class CommandQueue {
 public:
  void push(std::string line) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      lines_.push_back(std::move(line));
    }
    ready_.notify_one();
  }
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_one();
  }
  /// Blocks for the next line; nullopt on close-after-drain (EOF).
  std::optional<std::string> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !lines_.empty(); });
    if (lines_.empty()) {
      return std::nullopt;
    }
    std::string line = std::move(lines_.front());
    lines_.pop_front();
    return line;
  }

 private:
  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::string> lines_;
  bool closed_ = false;
};

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(
        static_cast<unsigned char>(line[i])) != 0) {
      ++i;
    }
    std::size_t start = i;
    while (i < line.size() && std::isspace(
        static_cast<unsigned char>(line[i])) == 0) {
      ++i;
    }
    if (i > start) {
      tokens.push_back(line.substr(start, i - start));
    }
  }
  return tokens;
}

/// The manager: sole owner of the session (or the fleet under
/// --cluster), sole stdout writer. Commands execute strictly in arrival
/// order, and each command is followed by one pump (advance + stream
/// resolved requests), so the entire output byte stream is a pure
/// function of the input line sequence. Exactly one of `session`/`fleet`
/// is non-null.
class Manager {
 public:
  Manager(const DaemonOptions& opts, serve::ServerSession* session,
          cluster::Cluster* fleet, obs::TraceRecorder* trace)
      : opts_(opts), session_(session), fleet_(fleet), trace_(trace) {}

  /// True while the daemon should keep reading commands.
  [[nodiscard]] bool running() const noexcept { return !quitting_; }

  void execute(const std::string& line) {
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) {
      return;  // blank line: no-op, no reply
    }
    try {
      dispatch(tokens);
    } catch (const std::exception& e) {
      std::printf("err %s\n", e.what());
    }
    if (!quitting_) {
      pump();
    }
    std::fflush(stdout);
  }

  /// EOF or quit: drain, run to quiescence, stream the tail, report.
  /// Owns the report JSON too — the session and fleet schemas differ.
  void finish() {
    if (fleet_ != nullptr) {
      // Cluster::finalize() folds (and discards) any still-pending
      // completions into its percentiles, so stream the tail first; the
      // drain + quiescence pass below makes finalize's own a no-op.
      fleet_->drain();
      (void)fleet_->step_until(sim::kNever);
      emit_completions();
      const cluster::ClusterReport report = fleet_->finalize();
      std::printf("bye offered=%zu completed=%zu rejected=%zu "
                  "router_shed=%zu makespan=%llu\n",
                  report.offered, report.completed, report.rejected,
                  report.router_shed,
                  static_cast<unsigned long long>(report.makespan_cycles));
      if (!opts_.report_json.empty()) {
        write_cluster_report_json(opts_.report_json, report);
      }
    } else {
      const serve::ServingReport report = session_->finalize();
      emit_completions();
      std::printf("bye offered=%zu completed=%zu rejected=%zu "
                  "makespan=%llu\n",
                  report.offered, report.completed, report.rejected,
                  static_cast<unsigned long long>(report.makespan_cycles));
      if (!opts_.report_json.empty()) {
        write_report_json(opts_.report_json, report);
      }
    }
    std::fflush(stdout);
  }

 private:
  [[noreturn]] static void fail(const std::string& message) {
    throw std::runtime_error(message);
  }

  static std::uint64_t parse_count(const std::string& token,
                                   const char* what) {
    char* end = nullptr;
    const unsigned long long parsed =
        std::strtoull(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0') {
      fail(std::string(what) + " needs a non-negative integer, got '" +
           token + "'");
    }
    return parsed;
  }

  static double parse_real(const std::string& token, const char* what) {
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      fail(std::string(what) + " needs a number, got '" + token + "'");
    }
    return parsed;
  }

  void dispatch(const std::vector<std::string>& tokens) {
    const std::string& command = tokens[0];
    if (command == "submit") {
      cmd_submit(tokens);
    } else if (command == "info") {
      print_info();
    } else if (command == "config") {
      cmd_config(tokens);
    } else if (command == "trace") {
      cmd_trace(tokens);
    } else if (command == "step") {
      cmd_step(tokens);
    } else if (command == "drain") {
      if (fleet_ != nullptr) {
        fleet_->drain();
        drained_ = true;
      } else {
        session_->drain();
      }
      std::printf("ok drain\n");
    } else if (command == "quit") {
      quitting_ = true;
      std::printf("ok quit\n");
    } else {
      fail("unknown command '" + command + "' (submit info config trace "
           "step drain quit)");
    }
  }

  void cmd_submit(const std::vector<std::string>& tokens) {
    if (tokens.size() < 2 || tokens.size() > 5) {
      fail("submit <task> [tenant] [deadline] [at]");
    }
    serve::SubmitRequest request;
    request.task = parse_count(tokens[1], "task");
    if (tokens.size() > 2) {
      request.tenant = static_cast<serve::TenantId>(
          parse_count(tokens[2], "tenant"));
    }
    if (tokens.size() > 3) {
      request.deadline_cycles = parse_count(tokens[3], "deadline");
    }
    if (tokens.size() > 4) {
      request.at_cycle = parse_count(tokens[4], "at");
    }
    if (fleet_ != nullptr) {
      const cluster::Cluster::Submission sub = fleet_->submit(request);
      if (!sub.instance.has_value()) {
        std::printf("ok shed=router\n");
      } else {
        std::printf("ok id=%llu instance=%zu at=%llu\n",
                    static_cast<unsigned long long>(sub.id), *sub.instance,
                    static_cast<unsigned long long>(
                        fleet_->last_submitted_arrival()));
      }
      return;
    }
    const serve::RequestId id = session_->submit(request);
    std::printf("ok id=%llu at=%llu\n",
                static_cast<unsigned long long>(id),
                static_cast<unsigned long long>(
                    session_->last_submitted_arrival()));
  }

  void cmd_config(const std::vector<std::string>& tokens) {
    if (tokens.size() < 2) {
      fail("config tenant|slo|policy ...");
    }
    const std::string& what = tokens[1];
    if (what == "tenant") {
      if (tokens.size() != 8) {
        fail("config tenant <id> <tier> <weight> <quota_interarrival> "
             "<quota_burst> <slo>");
      }
      const auto id = static_cast<serve::TenantId>(
          parse_count(tokens[2], "tenant id"));
      serve::TenantConfig config;
      config.tier = static_cast<std::uint32_t>(
          parse_count(tokens[3], "tier"));
      config.weight = parse_real(tokens[4], "weight");
      config.quota_interarrival_cycles =
          parse_real(tokens[5], "quota_interarrival");
      config.quota_burst = parse_real(tokens[6], "quota_burst");
      config.slo_deadline_cycles = parse_count(tokens[7], "slo");
      if (fleet_ != nullptr) {
        fleet_->set_tenant(id, config);
      } else {
        session_->set_tenant(id, config);
      }
      std::printf("ok config tenant %u\n", id);
    } else if (what == "slo") {
      if (tokens.size() < 3) {
        fail("config slo <default_deadline> [per-task...]");
      }
      serve::SloConfig slo;
      const std::uint64_t fallback =
          parse_count(tokens[2], "default deadline");
      slo.default_deadline_cycles = fallback == 0 ? sim::kNever : fallback;
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        slo.per_task.push_back(parse_count(tokens[i], "per-task deadline"));
      }
      if (fleet_ != nullptr) {
        fleet_->set_slo(slo);
      } else {
        session_->set_slo(slo);
      }
      std::printf("ok config slo\n");
    } else if (what == "policy") {
      if (tokens.size() != 3) {
        fail("config policy fifo|edf|wfq");
      }
      serve::SchedulerPolicy policy;
      if (tokens[2] == "fifo") {
        policy = serve::SchedulerPolicy::kFifo;
      } else if (tokens[2] == "edf") {
        policy = serve::SchedulerPolicy::kEdf;
      } else if (tokens[2] == "wfq") {
        policy = serve::SchedulerPolicy::kWfq;
      } else {
        fail("config policy fifo|edf|wfq");
        return;
      }
      const bool switched = fleet_ != nullptr ? fleet_->set_policy(policy)
                                              : session_->set_policy(policy);
      if (switched) {
        std::printf("ok config policy %s\n", tokens[2].c_str());
      } else {
        std::printf("err policy wfq needs a session started under wfq "
                    "(tenant lanes are fixed at construction)\n");
      }
    } else {
      fail("config tenant|slo|policy ...");
    }
  }

  void cmd_trace(const std::vector<std::string>& tokens) {
    if (tokens.size() != 2 || (tokens[1] != "on" && tokens[1] != "off")) {
      fail("trace on|off");
    }
    if (trace_ == nullptr) {
      fail("no trace recorder attached (start with --trace-json PATH)");
    }
    trace_->set_enabled(tokens[1] == "on");
    std::printf("ok trace %s\n", tokens[1].c_str());
  }

  void cmd_step(const std::vector<std::string>& tokens) {
    if (tokens.size() > 2) {
      fail("step [cycles]");
    }
    const sim::Cycle cycles =
        tokens.size() == 2 ? parse_count(tokens[1], "cycles") : 0;
    if (fleet_ != nullptr) {
      // step N = advance the lockstep horizon by N; step = quiescence,
      // matching ServerSession::step's contract.
      const bool idle = fleet_->step_until(
          cycles == 0 ? sim::kNever : fleet_->now() + cycles);
      std::printf("ok step cycle=%llu idle=%d\n",
                  static_cast<unsigned long long>(fleet_->now()),
                  idle ? 1 : 0);
      return;
    }
    const bool idle = session_->step(cycles);
    std::printf("ok step cycle=%llu idle=%d\n",
                static_cast<unsigned long long>(session_->now()),
                idle ? 1 : 0);
  }

  /// Advance per the clocking mode, then stream resolved requests.
  void pump() {
    if (fleet_ != nullptr) {
      if (opts_.lockstep && !drained_) {
        (void)fleet_->step_until(fleet_->last_submitted_arrival());
      } else {
        (void)fleet_->step_until(sim::kNever);
      }
    } else if (opts_.lockstep && !session_->draining()) {
      // Never run past the last vouched-for arrival (exclusive), so the
      // replayed schedule batches exactly like the closed loop.
      (void)session_->step_until(session_->last_submitted_arrival());
    } else {
      (void)session_->step(0);
    }
    emit_completions();
  }

  void emit_completions() {
    if (fleet_ != nullptr) {
      for (const cluster::ClusterCompletion& c : fleet_->poll_completions()) {
        emit_resolved(c.completion, static_cast<long long>(c.instance));
      }
    } else {
      for (const serve::Completion& c : session_->poll_completions()) {
        emit_resolved(c, -1);
      }
    }
  }

  /// One `done`/`shed` stream line; instance >= 0 (cluster mode) appends
  /// an `instance=` token so drivers can attribute the resolution.
  void emit_resolved(const serve::Completion& c, long long instance) {
    char tag[32] = "";
    if (instance >= 0) {
      std::snprintf(tag, sizeof(tag), " instance=%lld", instance);
    }
    const serve::InferenceResponse& r = c.response;
    if (serve::outcome_is_shed(c.outcome)) {
      std::printf("shed id=%llu task=%zu tenant=%u reason=%s "
                  "cycle=%llu%s\n",
                  static_cast<unsigned long long>(r.id), r.task,
                  r.tenant, serve::request_outcome_name(c.outcome),
                  static_cast<unsigned long long>(c.cycle), tag);
    } else {
      std::printf("done id=%llu task=%zu tenant=%u outcome=%s "
                  "enqueue=%llu complete=%llu latency=%llu%s\n",
                  static_cast<unsigned long long>(r.id), r.task,
                  r.tenant, serve::request_outcome_name(c.outcome),
                  static_cast<unsigned long long>(r.enqueue_cycle),
                  static_cast<unsigned long long>(r.complete_cycle),
                  static_cast<unsigned long long>(r.latency_cycles()), tag);
    }
    ++resolved_since_info_;
    if (opts_.info_every > 0 && resolved_since_info_ >= opts_.info_every) {
      print_info();
      resolved_since_info_ = 0;
    }
  }

  void print_info() {
    if (fleet_ != nullptr) {
      const cluster::ClusterInfo fleet_info = fleet_->info();
      std::printf("info cycle=%llu instances=%zu active=%zu offered=%zu "
                  "router_shed=%zu policy=%s\n",
                  static_cast<unsigned long long>(fleet_info.cycle),
                  fleet_info.instances, fleet_info.active,
                  fleet_info.offered, fleet_info.router_shed,
                  fleet_->policy_name());
      for (std::size_t i = 0; i < fleet_info.per_instance.size(); ++i) {
        print_session_info(fleet_info.per_instance[i],
                           static_cast<long long>(i));
      }
      return;
    }
    print_session_info(session_->info(), -1);
  }

  static void print_session_info(const serve::SessionInfo& info,
                                 long long instance) {
    char label[32] = "info";
    if (instance >= 0) {
      std::snprintf(label, sizeof(label), "info[%lld]", instance);
    }
    std::printf("%s cycle=%llu offered=%zu admitted=%zu completed=%zu "
                "shed=%zu pending=%zu in_flight=%zu policy=%s "
                "draining=%d\n",
                label,
                static_cast<unsigned long long>(info.cycle), info.offered,
                info.admitted, info.completed, info.shed,
                info.batcher_pending + info.scheduler_pending,
                info.in_flight,
                serve::scheduler_policy_name(info.policy),
                info.draining ? 1 : 0);
  }

  const DaemonOptions& opts_;
  serve::ServerSession* session_;  ///< bare mode (null under --cluster)
  cluster::Cluster* fleet_;        ///< --cluster mode (null otherwise)
  obs::TraceRecorder* trace_;
  std::size_t resolved_since_info_ = 0;
  bool drained_ = false;  ///< fleet drain latch (Cluster has no draining())
  bool quitting_ = false;
};

int run_daemon(const DaemonOptions& opts, Workload& workload) {
  obs::MetricsRegistry metrics;
  obs::TraceRecorder trace_recorder;
  obs::TraceRecorder* trace =
      opts.trace_json.empty() ? nullptr : &trace_recorder;
  if (trace != nullptr) {
    trace->set_enabled(false);  // armed by the `trace on` command
  }
  const serve::ServerConfig config = make_config(opts, &metrics, trace);

  std::optional<serve::ServerSession> session;
  std::optional<cluster::Cluster> fleet;
  if (opts.cluster > 0) {
    fleet.emplace(make_cluster_config(opts, &metrics, trace),
                  workload.models);
    std::printf("ready tasks=%zu tenants=%zu policy=%s lockstep=%d "
                "instances=%zu router=%s\n",
                workload.models.size(),
                std::max<std::size_t>(1, opts.tenants),
                serve::scheduler_policy_name(config.scheduler.policy),
                opts.lockstep ? 1 : 0, fleet->size(),
                fleet->policy_name());
  } else {
    serve::SessionOptions session_options;
    session_options.total_requests = 0;  // pure open loop
    session.emplace(config, workload.models, session_options);
    std::printf("ready tasks=%zu tenants=%zu policy=%s lockstep=%d\n",
                session->num_tasks(), session->num_tenants(),
                serve::scheduler_policy_name(config.scheduler.policy),
                opts.lockstep ? 1 : 0);
  }
  std::fflush(stdout);

  Manager manager(opts, session.has_value() ? &*session : nullptr,
                  fleet.has_value() ? &*fleet : nullptr, trace);
  CommandQueue queue;

  // The manager thread owns the session; the main thread stays the scan
  // loop so Ctrl-D on a terminal lands as a clean EOF-quit.
  std::thread manager_thread([&] {
    while (manager.running()) {
      std::optional<std::string> line = queue.pop();
      if (!line.has_value()) {
        break;  // EOF with an empty queue: implicit quit
      }
      manager.execute(*line);
    }
    manager.finish();  // streams the tail and writes --report-json
    if (trace != nullptr) {
      obs::write_chrome_trace(opts.trace_json, *trace,
                              config.accel.clock_hz, &metrics);
    }
  });

  std::string line;
  while (std::getline(std::cin, line)) {
    const std::vector<std::string> tokens = tokenize(line);
    const bool was_quit = tokens.size() == 1 && tokens[0] == "quit";
    queue.push(std::move(line));
    if (was_quit) {
      break;  // stop scanning; the manager exits after replying
    }
  }
  queue.close();
  manager_thread.join();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const DaemonOptions opts = parse_args(argc, argv);
  Workload workload =
      opts.tiny > 0 ? tiny_workload(opts.tiny) : suite_workload(opts);
  if (workload.models.empty()) {
    std::fprintf(stderr, "no models to serve (--tiny N or --tasks K)\n");
    return 2;
  }
  try {
    if (!opts.closed_loop.empty()) {
      return run_closed_loop(opts, workload);
    }
    return run_daemon(opts, workload);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mann_served: %s\n", e.what());
    return 1;
  }
}
