// Serving quickstart: stand up the mann::serve runtime on two tasks and
// serve a Poisson request stream across a two-device pool.
//
//   1. train two small MemN2N models (one per task)
//   2. compile them to device programs
//   3. serve 200 mixed requests through generator -> batcher -> scheduler
//   4. print the serving report (throughput, latency percentiles,
//      utilization, batching efficiency)
//   5. serve the same stream again with host workers + the service-cycle
//      cache: wall-clock drops, every simulated number stays identical
//   6. multi-tenant QoS: re-serve under overload with three tenants —
//      two conforming, one flooding past its quota — and compare plain
//      EDF against admission control + weighted-fair dispatch (kWfq)
//   7. observability: re-serve with the mann::obs recorder + metrics
//      registry attached and export serving_demo_trace.json — open it in
//      Perfetto (ui.perfetto.dev) or run scripts/trace_summary.py on it
//   8. the incremental API: drive the same stack open-loop through
//      Server::start() / submit() / step() / poll_completions(), with a
//      live mid-run SLO change — the programmatic face of the
//      mann_served daemon (tools/mann_served.cpp)
//
// Build & run:  cmake --build build && ./build/examples/serving_demo
#include <cstdio>

#include "accel/compiler.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/measurement.hpp"
#include "serve/options.hpp"
#include "serve/session.hpp"

int main() {
  using namespace mann;

  runtime::PrepareConfig prep = runtime::default_prepare_config();
  prep.dataset.train_stories = 600;
  prep.dataset.test_stories = 150;
  prep.train.epochs = 20;

  std::vector<runtime::TaskArtifacts> tasks;
  for (const data::TaskId id :
       {data::TaskId::kSingleSupportingFact, data::TaskId::kYesNoQuestions}) {
    std::printf("preparing %s ...\n", data::task_name(id).c_str());
    tasks.push_back(runtime::prepare_task(id, prep));
  }

  runtime::ServingOptions options;
  options.clock_hz = 100.0e6;
  options.pool_devices = 2;
  options.max_batch = 8;
  options.max_wait_cycles = 200'000;  // 2 ms at 100 MHz
  options.mean_interarrival_cycles = 10'000.0;
  options.requests = 200;
  // Deadline-aware dispatch (the default policy): every request carries
  // a 5 ms SLO, and the report below shows how many were met.
  options.policy = serve::SchedulerPolicy::kEdf;
  options.slo_default_deadline_cycles = 500'000;  // 5 ms at 100 MHz

  const runtime::ServingMeasurement m =
      runtime::measure_serving(tasks, options);
  const serve::ServingReport& r = m.report;

  std::printf("\n%s\n", m.config_name.c_str());
  std::printf("requests: offered=%zu completed=%zu rejected=%zu\n",
              r.offered, r.completed, r.rejected);
  std::printf("throughput: %.0f stories/s (offered %.0f/s) over %.3f ms\n",
              r.throughput_stories_per_second,
              r.offered_stories_per_second, r.seconds * 1e3);
  std::printf("latency: p50=%.3f ms  p95=%.3f ms  p99=%.3f ms  max=%.3f ms\n",
              r.latency.p50_seconds * 1e3, r.latency.p95_seconds * 1e3,
              r.latency.p99_seconds * 1e3, r.latency.max_seconds * 1e3);
  std::printf("queueing: p50 wait=%.3f ms  mean batch=%.2f (%.0f%% of max)\n",
              r.queue_wait.p50_seconds * 1e3, r.mean_batch_size,
              r.batching_efficiency * 100.0);
  std::printf("pool: %.1f%% mean utilization, %llu model uploads for %llu "
              "batches\n",
              r.mean_device_utilization * 100.0,
              static_cast<unsigned long long>(r.model_uploads),
              static_cast<unsigned long long>(r.batching.batches_out));
  std::printf("serving accuracy: %.3f (early-exit %.1f%%)\n", r.accuracy,
              r.early_exit_rate * 100.0);
  std::printf("SLO: %.1f%% of deadlines met (%llu missed of %llu); "
              "%llu model evictions\n",
              r.deadline_hit_rate * 100.0,
              static_cast<unsigned long long>(r.deadline_missed),
              static_cast<unsigned long long>(r.deadline_total),
              static_cast<unsigned long long>(r.model_evictions));
  std::printf("energy: %.2f J total (%.1f W mean), %.3f mJ per "
              "inference\n",
              r.energy.total_joules, r.energy.mean_watts,
              r.energy.per_inference_joules * 1e3);
  for (const serve::TaskSloReport& slo : r.task_slo) {
    std::printf("  task %zu: %llu answered, SLO hit %.1f%%\n", slo.task,
                static_cast<unsigned long long>(slo.completed),
                slo.hit_rate() * 100.0);
  }
  for (const serve::DeviceReport& d : r.devices) {
    std::printf("  device %zu: %llu batches, %llu stories, %llu uploads\n",
                d.id, static_cast<unsigned long long>(d.batches),
                static_cast<unsigned long long>(d.stories),
                static_cast<unsigned long long>(d.model_uploads));
  }

  // The parallel runtime: one host worker per device slot plus the
  // service-cycle cache. Simulated numbers are bit-identical to the
  // sequential run above — only host wall-clock moves.
  options.workers = options.pool_devices;
  const runtime::ServingMeasurement p =
      runtime::measure_serving(tasks, options);
  std::printf("\n%s\n", p.config_name.c_str());
  std::printf("host wall: %.3f s -> %.3f s; cache hit rate %.1f%% "
              "(%llu hits / %llu misses)\n",
              r.host_wall_seconds, p.report.host_wall_seconds,
              p.report.cycle_cache.hit_rate() * 100.0,
              static_cast<unsigned long long>(p.report.cycle_cache.hits),
              static_cast<unsigned long long>(p.report.cycle_cache.misses));
  const bool identical =
      p.report.makespan_cycles == r.makespan_cycles &&
      p.report.accuracy == r.accuracy &&
      p.report.latency.p99_cycles == r.latency.p99_cycles;
  std::printf("simulated reports identical: %s\n",
              identical ? "yes" : "NO (bug!)");

  // Multi-tenant QoS: overload the pool with three tenants. Tenant 2
  // offers half the traffic but its quota entitles it to far less; with
  // plain EDF the flood degrades everyone, with admission + WFQ the
  // excess is shed at the door and conforming tenants keep their SLOs.
  options.workers = 0;
  options.mean_interarrival_cycles = 400.0;        // past pool saturation
  options.max_wait_cycles = 30'000;                // batches form quickly
  options.slo_default_deadline_cycles = 100'000;   // 1 ms at 100 MHz
  options.requests = 2000;
  options.tenants.resize(3);
  options.tenants[0] = {.tier = 0, .weight = 4.0, .traffic_share = 1.0};
  options.tenants[1] = {.tier = 1, .weight = 2.0, .traffic_share = 1.0};
  options.tenants[2] = {.tier = 2,
                        .weight = 1.0,
                        .traffic_share = 2.0,
                        .quota_interarrival_cycles = 20'000.0,
                        .quota_burst = 4.0};

  for (const serve::SchedulerPolicy policy :
       {serve::SchedulerPolicy::kEdf, serve::SchedulerPolicy::kWfq}) {
    options.policy = policy;
    // Quotas only bite under kWfq here so the EDF leg shows the
    // unprotected baseline.
    options.admission.enforce_quotas = policy == serve::SchedulerPolicy::kWfq;
    const runtime::ServingMeasurement q =
        runtime::measure_serving(tasks, options);
    std::printf("\n%s\n", q.config_name.c_str());
    std::printf("fairness index %.3f; shed %llu (quota %llu)\n",
                q.report.fairness_index,
                static_cast<unsigned long long>(q.report.shed.total()),
                static_cast<unsigned long long>(
                    q.report.shed.count(serve::ShedReason::kQuota)));
    for (const serve::TenantReport& t : q.report.tenants) {
      std::printf("  tenant %u (tier %u, w=%.0f): offered %llu admitted "
                  "%llu, SLO hit %.1f%%\n",
                  t.tenant, t.tier, t.weight,
                  static_cast<unsigned long long>(t.offered()),
                  static_cast<unsigned long long>(t.admitted),
                  t.hit_rate() * 100.0);
    }
  }

  // Observability: the act-5 workload once more with lifecycle tracing
  // and the metrics registry attached. The simulated report must not
  // move (tracing is invisible to the simulation); the trace lands
  // beside the binary as Chrome trace-event JSON.
  options.tenants.clear();
  options.admission = serve::AdmissionConfig{};
  options.policy = serve::SchedulerPolicy::kEdf;
  options.mean_interarrival_cycles = 10'000.0;
  options.max_wait_cycles = 200'000;
  options.slo_default_deadline_cycles = 500'000;
  options.requests = 200;
  options.workers = options.pool_devices;
  obs::MetricsRegistry registry;
  obs::TraceRecorder recorder;
  options.metrics = &registry;
  options.trace_recorder = &recorder;
  const runtime::ServingMeasurement traced =
      runtime::measure_serving(tasks, options);
  const bool trace_identical =
      traced.report.makespan_cycles == r.makespan_cycles &&
      traced.report.accuracy == r.accuracy &&
      traced.report.latency.p99_cycles == r.latency.p99_cycles;
  const char* trace_path = "serving_demo_trace.json";
  const bool wrote = obs::write_chrome_trace(trace_path, recorder,
                                             options.clock_hz, &registry);
  if (obs::kEnabled) {
    std::printf("\nobservability: recorded %zu trace events; simulated "
                "report %s the untraced run\n",
                recorder.event_count(),
                trace_identical ? "identical to" : "DIVERGED from (bug!)");
  } else {
    std::printf("\nobservability: mann::obs compiled out (MANN_OBS=OFF); "
                "wrote an empty, still-valid trace\n");
  }
  if (wrote) {
    std::printf("wrote %s — open in Perfetto (ui.perfetto.dev) or run "
                "scripts/trace_summary.py %s\n",
                trace_path, trace_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", trace_path);
  }

  // The incremental API: no generator — the caller is the arrival
  // process. Submit a small burst, watch it resolve, tighten the SLO
  // live, submit another burst, then drain. This is exactly what the
  // mann_served daemon does per protocol command.
  std::vector<serve::ServedModel> models;
  for (const runtime::TaskArtifacts& art : tasks) {
    models.push_back({accel::compile_model(art.model, &art.ith),
                      art.dataset.test});
  }
  serve::SloConfig open_slo;
  open_slo.default_deadline_cycles = 500'000;
  serve::Server open_server(
      serve::ServingOptions().slo(open_slo), std::move(models));
  (void)open_server.start();
  std::printf("\nincremental session:\n");
  for (int burst = 0; burst < 2; ++burst) {
    for (int i = 0; i < 4; ++i) {
      serve::SubmitRequest request;
      request.task = static_cast<std::size_t>(i % 2);
      (void)open_server.submit(request);
    }
    (void)open_server.step(0);  // run the burst to quiescence
    for (const serve::Completion& c : open_server.poll_completions()) {
      std::printf("  id=%llu task=%zu outcome=%s latency=%.3f ms\n",
                  static_cast<unsigned long long>(c.response.id),
                  c.response.task, serve::request_outcome_name(c.outcome),
                  static_cast<double>(c.response.latency_cycles()) /
                      options.clock_hz * 1e3);
    }
    if (burst == 0) {
      open_slo.default_deadline_cycles = 150'000;  // tighten live
      open_server.session()->set_slo(open_slo);
      std::printf("  -- SLO tightened to 1.5 ms mid-session --\n");
    }
  }
  open_server.drain();
  const serve::ServingReport open_report = open_server.finalize();
  std::printf("  session report: offered=%zu completed=%zu over %llu "
              "cycles\n",
              open_report.offered, open_report.completed,
              static_cast<unsigned long long>(open_report.makespan_cycles));

  return identical && trace_identical && wrote &&
                 open_report.completed == open_report.offered
             ? 0
             : 1;
}
