// ith_tuning: choosing the inference-thresholding operating point.
//
// The conclusion of the paper expects the data-based MIPS to apply to any
// large-class inference problem; the knob a deployment has to set is the
// threshold constant rho. This example sweeps rho on one task and prints
// the accuracy / comparisons / early-exit trade-off, then recommends the
// largest-savings point within a caller-specified accuracy budget.
//
// Usage: ith_tuning [task_number=1] [max_accuracy_drop_pct=0.5]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/ith_eval.hpp"
#include "runtime/measurement.hpp"

int main(int argc, char** argv) {
  using namespace mann;
  int task_number = 1;
  double budget_pct = 0.5;
  if (argc > 1) {
    task_number = std::atoi(argv[1]);
  }
  if (argc > 2) {
    budget_pct = std::atof(argv[2]);
  }
  if (task_number < 1 || task_number > 20) {
    std::fprintf(stderr, "task number must be 1..20\n");
    return 1;
  }
  const auto task = static_cast<data::TaskId>(task_number);

  runtime::PrepareConfig prep = runtime::default_prepare_config();
  prep.train.epochs = 25;
  std::printf("training MemN2N on %s ...\n", data::task_name(task).c_str());
  const runtime::TaskArtifacts art = runtime::prepare_task(task, prep);

  const core::IthEvaluation base =
      core::evaluate_full_mips(art.model, art.dataset.test);
  std::printf("baseline (full MIPS): accuracy %.2f%%, %zu comparisons\n\n",
              100.0 * static_cast<double>(base.accuracy),
              art.model.config().vocab_size);

  std::printf("%-8s %10s %14s %12s %12s\n", "rho", "accuracy",
              "cmp/story", "saved", "early-exit");
  struct Point {
    float rho;
    core::IthEvaluation ev;
  };
  std::vector<Point> points;
  for (const float rho : {1.0F, 0.999F, 0.99F, 0.97F, 0.95F, 0.92F, 0.9F,
                          0.85F, 0.8F}) {
    core::IthConfig cfg = prep.ith;
    cfg.rho = rho;
    const auto ith = core::InferenceThresholding::calibrate(
        art.model, art.dataset.train, cfg);
    const auto ev = core::evaluate_ith(art.model, ith, art.dataset.test);
    points.push_back({rho, ev});
    std::printf("%-8.3f %9.2f%% %14.1f %11.1f%% %11.1f%%\n",
                static_cast<double>(rho),
                100.0 * static_cast<double>(ev.accuracy),
                static_cast<double>(ev.mean_comparisons),
                100.0 * (1.0 - static_cast<double>(
                                   ev.normalized_comparisons)),
                100.0 * static_cast<double>(ev.early_exit_rate));
  }

  // Pick the most aggressive point within the accuracy budget.
  const double floor =
      static_cast<double>(base.accuracy) - budget_pct / 100.0;
  const Point* best = nullptr;
  for (const Point& p : points) {
    if (static_cast<double>(p.ev.accuracy) >= floor &&
        (best == nullptr ||
         p.ev.mean_comparisons < best->ev.mean_comparisons)) {
      best = &p;
    }
  }
  if (best != nullptr) {
    std::printf(
        "\nrecommended rho = %.3f within a %.2f%%-point accuracy budget: "
        "%.1f%% fewer output-layer comparisons.\n",
        static_cast<double>(best->rho), budget_pct,
        100.0 * (1.0 - static_cast<double>(
                           best->ev.normalized_comparisons)));
  } else {
    std::printf("\nno rho met the accuracy budget; keep full MIPS.\n");
  }
  return 0;
}
