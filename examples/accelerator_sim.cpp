// accelerator_sim: a deployment-eye view of the FPGA device model.
//
// Trains a model, compiles it (with ITH tables) for the device, runs the
// test split through the cycle-level simulator at a chosen clock, and
// prints where the cycles and the energy went: per-module busy/stall
// breakdown, datapath op counts, FIFO traffic, host-link occupancy and the
// power-model decomposition.
//
// Usage: accelerator_sim [clock_mhz=100] [ith=1]
#include <cstdio>
#include <cstdlib>

#include "accel/accelerator.hpp"
#include "power/power_model.hpp"
#include "runtime/measurement.hpp"

int main(int argc, char** argv) {
  using namespace mann;
  double mhz = 100.0;
  bool ith = true;
  if (argc > 1) {
    mhz = std::atof(argv[1]);
  }
  if (argc > 2) {
    ith = std::atoi(argv[2]) != 0;
  }

  runtime::PrepareConfig prep = runtime::default_prepare_config();
  prep.train.epochs = 25;
  std::printf("preparing qa1 model ...\n");
  const runtime::TaskArtifacts art =
      runtime::prepare_task(data::TaskId::kSingleSupportingFact, prep);

  accel::AccelConfig cfg;
  cfg.clock_hz = mhz * 1.0e6;
  cfg.ith_enabled = ith;
  const accel::DeviceProgram program =
      accel::compile_model(art.model, ith ? &art.ith : nullptr);
  const accel::Accelerator device(cfg, program);

  std::printf("device: %.0f MHz, lane width %zu, FIFO depth %zu, ITH %s\n",
              mhz, cfg.timing.lane_width, cfg.fifo_depth,
              ith ? "on" : "off");
  std::printf("program: %zu classes, E=%zu, %zu hops, %zu wire words\n\n",
              program.vocab_size, program.embedding_dim, program.hops,
              program.model_words());

  const accel::RunResult run = device.run(art.dataset.test);

  std::printf("ran %zu stories in %llu cycles (%.3f ms)\n",
              run.stories.size(),
              static_cast<unsigned long long>(run.total_cycles),
              run.seconds * 1e3);
  std::printf("early exits: %.1f%%   mean output probes: %.1f / %zu\n\n",
              run.early_exit_rate() * 100.0, run.mean_output_probes(),
              program.vocab_size);

  std::printf("%-12s %12s %12s %8s %12s\n", "module", "busy", "stalled",
              "busy%", "ops");
  for (const accel::ModuleReport& m : run.modules) {
    std::printf("%-12s %12llu %12llu %7.1f%% %12llu\n", m.name.c_str(),
                static_cast<unsigned long long>(m.stats.busy_cycles),
                static_cast<unsigned long long>(m.stats.stall_cycles),
                100.0 * static_cast<double>(m.stats.busy_cycles) /
                    static_cast<double>(run.total_cycles),
                static_cast<unsigned long long>(m.stats.ops.total()));
  }

  const sim::OpCounts& ops = run.total_ops;
  std::printf(
      "\ndatapath ops: mac=%llu add=%llu exp=%llu div=%llu bram_rd=%llu "
      "bram_wr=%llu cmp=%llu\n",
      static_cast<unsigned long long>(ops.mac),
      static_cast<unsigned long long>(ops.add),
      static_cast<unsigned long long>(ops.exp),
      static_cast<unsigned long long>(ops.div),
      static_cast<unsigned long long>(ops.mem_read),
      static_cast<unsigned long long>(ops.mem_write),
      static_cast<unsigned long long>(ops.compare));
  std::printf("FIFO_IN: %llu words, max occupancy %zu, link rejects %llu\n",
              static_cast<unsigned long long>(run.fifo_in_stats.pushes),
              run.fifo_in_stats.max_occupancy,
              static_cast<unsigned long long>(
                  run.fifo_in_stats.full_rejects));
  std::printf("host link active: %.1f%% of cycles\n\n",
              100.0 * static_cast<double>(run.link_active_cycles) /
                  static_cast<double>(run.total_cycles));

  const power::FpgaPowerModel power_model;
  const power::FpgaPowerReport p = power_model.estimate(run, cfg.clock_hz);
  std::printf("power: %.2f W mean  (static %.2f J, clock %.2f J, "
              "datapath %.4f J, link %.4f J over %.3f ms)\n",
              p.mean_watts, p.static_joules, p.clock_joules,
              p.dynamic_joules, p.link_joules, p.seconds * 1e3);
  std::printf("datapath energy by module:");
  for (const power::ModulePowerRow& row : power_model.per_module(run)) {
    if (row.dynamic_joules > 0.0) {
      std::printf("  %s %.1f%%", row.name.c_str(),
                  100.0 * row.dynamic_joules / p.dynamic_joules);
    }
  }
  std::printf("\n");

  std::size_t correct = 0;
  for (std::size_t i = 0; i < run.stories.size(); ++i) {
    correct += run.stories[i].prediction == art.dataset.test[i].answer;
  }
  std::printf("accuracy on device: %.1f%% (float model: %.1f%%)\n",
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(run.stories.size()),
              100.0 * static_cast<double>(art.test_accuracy));
  return 0;
}
