// babi_qa: the paper's motivating scenario — question answering over short
// stories. Trains a MemN2N on a chosen synthetic bAbI-style task, then
// answers a handful of generated stories, printing the story text, the
// attention the memory network placed on each sentence (Eq. 1), the
// model's answer and the ground truth.
//
// Usage: babi_qa [task_number=1] [stories_to_show=5]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "data/encoder.hpp"
#include "runtime/measurement.hpp"

namespace {

using namespace mann;

void print_sentence(const data::Sentence& s) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    std::printf("%s%s", i == 0 ? "" : " ", s[i].c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  int task_number = 1;
  int show = 5;
  if (argc > 1) {
    task_number = std::atoi(argv[1]);
  }
  if (argc > 2) {
    show = std::atoi(argv[2]);
  }
  if (task_number < 1 || task_number > 20) {
    std::fprintf(stderr, "task number must be 1..20\n");
    return 1;
  }
  const auto task = static_cast<data::TaskId>(task_number);

  runtime::PrepareConfig prep = runtime::default_prepare_config();
  prep.train.epochs = 25;
  std::printf("training MemN2N on %s ...\n", data::task_name(task).c_str());
  const runtime::TaskArtifacts art = runtime::prepare_task(task, prep);
  std::printf("test accuracy: %.1f%% (vocab %zu, E=%zu, %zu hops)\n\n",
              100.0 * static_cast<double>(art.test_accuracy),
              art.dataset.vocab_size(), art.model.config().embedding_dim,
              art.model.config().hops);

  // Show fresh stories (not from the training stream).
  numeric::Rng rng(20250612);
  for (int n = 0; n < show; ++n) {
    const data::Story story = data::generate_story(task, rng);
    const data::EncodedStory enc = data::encode_story(story, art.dataset.vocab);
    const model::ForwardTrace trace = art.model.forward(enc);

    std::printf("story %d\n", n + 1);
    for (std::size_t i = 0; i < story.context.size(); ++i) {
      // Attention of the final hop over memory slots (Eq. 1).
      const float attention = trace.a.back()[i];
      std::printf("  [%4.0f%%] ", 100.0F * attention);
      print_sentence(story.context[i]);
      std::printf("\n");
    }
    std::printf("  Q: ");
    print_sentence(story.question);
    const std::string answer =
        art.dataset.vocab.word(static_cast<std::int32_t>(trace.prediction));
    std::printf("?\n  model: %-12s truth: %-12s %s\n\n", answer.c_str(),
                story.answer.c_str(),
                answer == story.answer ? "[correct]" : "[wrong]");
  }
  return 0;
}
