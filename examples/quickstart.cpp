// Quickstart: the whole pipeline on one bAbI-style task.
//
//   1. generate a synthetic qa1 dataset
//   2. train a MemN2N on it
//   3. calibrate inference thresholding (Algo. 1)
//   4. run inference on the simulated FPGA accelerator, with and
//      without ITH, and print timing/energy
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/ith_eval.hpp"
#include "power/energy.hpp"
#include "runtime/measurement.hpp"

int main() {
  using namespace mann;

  // 1. Data: 900 training / 200 test stories of task qa1.
  runtime::PrepareConfig prep = runtime::default_prepare_config();
  prep.dataset.train_stories = 600;
  prep.dataset.test_stories = 150;
  prep.train.epochs = 20;

  std::printf("preparing %s ...\n",
              data::task_name(data::TaskId::kSingleSupportingFact).c_str());
  const runtime::TaskArtifacts art =
      runtime::prepare_task(data::TaskId::kSingleSupportingFact, prep);

  std::printf("vocab=%zu  test accuracy: model=%.3f  ith=%.3f\n",
              art.dataset.vocab_size(), static_cast<double>(art.test_accuracy),
              static_cast<double>(art.ith_test_accuracy));
  std::printf("ITH: %zu/%zu classes hold thresholds\n",
              art.ith.active_classes(), art.ith.num_classes());

  // 2. Accelerator at 100 MHz, plain vs inference thresholding.
  for (const bool ith : {false, true}) {
    runtime::FpgaRunOptions opt;
    opt.clock_hz = 100.0e6;
    opt.ith = ith;
    const runtime::MeasurementRow row = runtime::measure_fpga(art, opt);
    std::printf(
        "%-18s time=%8.4f s  power=%6.2f W  acc=%.3f  probes/story=%6.1f  "
        "early-exit=%4.1f%%\n",
        row.config_name.c_str(), row.energy.seconds, row.energy.watts,
        row.accuracy, row.mean_output_probes, row.early_exit_rate * 100.0);
  }

  // 3. Baselines for scale.
  for (const auto& baseline :
       {runtime::cpu_baseline(), runtime::gpu_baseline()}) {
    const runtime::MeasurementRow row =
        runtime::measure_baseline(baseline, art);
    std::printf("%-18s time=%8.4f s  power=%6.2f W  acc=%.3f\n",
                row.config_name.c_str(), row.energy.seconds, row.energy.watts,
                row.accuracy);
  }
  return 0;
}
