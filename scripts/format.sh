#!/usr/bin/env bash
# clang-format over the project sources (in place).
#
#   scripts/format.sh          format src/ tests/ bench/ examples/ tools/
#   scripts/format.sh --check  fail (non-zero) if anything would change
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "error: clang-format not found on PATH" >&2
  exit 1
fi

mode=(-i)
if [[ "${1:-}" == "--check" ]]; then
  mode=(--dry-run --Werror)
fi

find src tests bench examples tools \
  \( -name '*.cpp' -o -name '*.hpp' \) -print0 |
  xargs -0 clang-format "${mode[@]}"
