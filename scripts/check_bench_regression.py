#!/usr/bin/env python3
"""Gate a BENCH_serve.json run against the checked-in baseline.

Usage: check_bench_regression.py CURRENT BASELINE
           [--threshold 0.20] [--energy-threshold 0.20]
           [--min-wall-speedup 1.2]

Fails (exit 1) when:
  * simulated throughput regressed by more than --threshold,
  * simulated energy-per-inference grew by more than --energy-threshold
    (the paper's headline claim is energy efficiency; a PR that makes
    every inference cost more joules is a regression even at equal
    throughput),
  * simulated accuracy dropped (bit-stable given the seed, so any drop
    is a real behaviour change),
  * the simulated deadline hit-rate dropped by more than a point (so a
    scheduling regression that preserves throughput but tanks SLOs
    still fails),
  * the multi-tenant QoS leg regressed: the conforming-tenant deadline
    hit-rate dropped by more than a point, the Jain fairness index
    dropped by more than 0.05, or the per-tenant outcome diverged
    across worker counts (worker_identical == false),
  * the parallel leg's simulated report diverged from the sequential
    path (reports_identical == false),
  * --min-wall-speedup is given and the host wall_speedup fell below it
    (the CI perf job gates the warm-persistent-cache run, whose speedup
    is cache-replay-bound rather than core-count-bound, so this is
    stable even on small shared runners),
  * the cycle-cache hit rate fell more than 10 points (absolute) below
    the baseline's — the signature of a speculation/placement
    regression, and near-deterministic because the lookup keys are
    simulated state,
  * the cluster sweep (schema >= 5) broke its contract: the cluster-of-1
    run diverged from the bare Server, the routing trade holds in
    neither direction (power-of-two must win p99 queue wait or
    consistent-hash affinity must win warm-dispatch rate), the
    power-of-two leg's Jain fairness fell below the floor, the
    autoscaled fleet stopped beating the fixed one on J/inference, or
    any simulated cluster count drifted from the baseline (the whole
    block is deterministic, so drift means the routing or lockstep
    changed),
  * the fleet-threading contract (schema >= 6) broke: the cluster.host
    block is missing, or the N-thread fleet run's simulated reports
    diverged from the 1-thread run (always a hard failure — that is
    the determinism contract), or — only on hosts with >= 4 cores
    running >= 4 fleet threads — the fleet wall stopped beating the
    1-thread wall (wall_ratio <= 1.0),
  * any field this script gates on is missing from either file. A
    missing host block used to read as zeros via .get() defaults and
    silently passed; now it fails loudly with the field name.

The `simulated` and `multitenant` blocks are deterministic given the
seed. Host wall numbers are machine-dependent: wall times and speedup
print informationally unless --min-wall-speedup opts the speedup into
gating (and the cluster wall_ratio self-gates only on capable hosts).
host.cold_wall_speedup, when present (a cold persistent-cache run),
prints as a soft report line so warm-run ratchets don't hide cold-path
regressions.
"""

import argparse
import json
import sys


# Cycle-cache hit rate may drop at most this much (absolute) vs baseline.
HIT_RATE_DROP_LIMIT = 0.10

# The power-of-two-choices leg exists to balance load; its Jain fairness
# over per-instance completed counts must stay near-perfect.
P2C_FAIRNESS_FLOOR = 0.95


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def require(obj, key, context, failures):
    """Fetch a gated field, recording a loud failure when it is absent.

    Returns None on a miss — callers must skip the comparison, not treat
    the value as zero (the old .get(..., 0) defaults made a missing host
    block look like a perfect score).
    """
    if obj is None:
        return None
    if key not in obj:
        failures.append(
            f"required field '{context}.{key}' missing — schema too old or "
            f"the bench run was truncated; regenerate with "
            f"scripts/update_bench_baseline.sh")
        return None
    return obj[key]


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="maximum tolerated fractional throughput drop")
    parser.add_argument("--energy-threshold", type=float, default=0.20,
                        help="maximum tolerated fractional growth of "
                             "energy-per-inference")
    parser.add_argument("--min-wall-speedup", type=float, default=None,
                        help="hard-gate host.wall_speedup at this floor "
                             "(omit to keep wall numbers informational)")
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)

    failures = []

    # Simulated numbers only compare on the identical workload; refuse to
    # gate across differing bench configurations.
    for key in ("schema", "tasks", "requests", "devices", "max_batch",
                "scheduler_policy", "eviction_policy", "seed", "affinity"):
        if current.get(key) != baseline.get(key):
            failures.append(
                f"workload mismatch on '{key}': current "
                f"{current.get(key)!r} vs baseline {baseline.get(key)!r} "
                f"(regenerate with scripts/update_bench_baseline.sh)")

    cur_sim = current["simulated"]
    base_sim = baseline["simulated"]

    cur_tp = cur_sim["throughput_stories_per_second"]
    base_tp = base_sim["throughput_stories_per_second"]
    drop = (base_tp - cur_tp) / base_tp if base_tp > 0 else 0.0
    print(f"throughput: {cur_tp:.0f} stories/s vs baseline {base_tp:.0f} "
          f"({-drop:+.1%})")
    if drop > args.threshold:
        failures.append(
            f"throughput regressed {drop:.1%} (> {args.threshold:.0%})")

    cur_energy = cur_sim.get("energy_per_inference_joules")
    base_energy = base_sim.get("energy_per_inference_joules")
    if cur_energy is None or base_energy is None:
        failures.append("energy_per_inference_joules missing (schema < 2? "
                        "regenerate with scripts/update_bench_baseline.sh)")
    elif base_energy <= 0:
        # A zero baseline would make the growth ratio meaningless and
        # silently disable this gate; it can only come from a broken run.
        failures.append(
            f"baseline energy_per_inference_joules is {base_energy!r} — "
            "regenerate with scripts/update_bench_baseline.sh")
    else:
        growth = (cur_energy - base_energy) / base_energy
        print(f"energy/inference: {cur_energy * 1e3:.4f} mJ vs baseline "
              f"{base_energy * 1e3:.4f} mJ ({growth:+.1%})")
        if growth > args.energy_threshold:
            failures.append(
                f"energy per inference grew {growth:.1%} "
                f"(> {args.energy_threshold:.0%})")

    cur_acc = cur_sim["accuracy"]
    base_acc = base_sim["accuracy"]
    print(f"accuracy: {cur_acc:.6f} vs baseline {base_acc:.6f}")
    if cur_acc < base_acc - 1e-9:
        failures.append(f"accuracy dropped {base_acc:.6f} -> {cur_acc:.6f}")

    cur_hit = cur_sim.get("deadline_hit_rate")
    base_hit = base_sim.get("deadline_hit_rate")
    if cur_hit is not None and base_hit is not None:
        print(f"deadline hit rate: {cur_hit:.1%} vs baseline {base_hit:.1%}")
        if cur_hit < base_hit - 0.01:
            failures.append(
                f"deadline hit rate dropped {base_hit:.1%} -> {cur_hit:.1%}")

    for key in ("p50_ms", "p99_ms"):
        print(f"{key}: {cur_sim[key]:.3f} vs baseline {base_sim[key]:.3f}")

    # Multi-tenant QoS gates (schema >= 3): the adversarial-tenant leg's
    # conforming hit-rate and fairness are deterministic, so any drop is
    # a real isolation regression.
    cur_mt = current.get("multitenant")
    base_mt = baseline.get("multitenant")
    if cur_mt is None or base_mt is None:
        failures.append("multitenant block missing (schema < 3? regenerate "
                        "with scripts/update_bench_baseline.sh)")
    else:
        cur_conf = cur_mt["conforming_hit_rate"]
        base_conf = base_mt["conforming_hit_rate"]
        print(f"conforming-tenant hit rate: {cur_conf:.1%} vs baseline "
              f"{base_conf:.1%}")
        if cur_conf < base_conf - 0.01:
            failures.append(f"conforming-tenant hit rate dropped "
                            f"{base_conf:.1%} -> {cur_conf:.1%}")
        cur_fair = cur_mt["fairness_index"]
        base_fair = base_mt["fairness_index"]
        print(f"fairness index: {cur_fair:.3f} vs baseline {base_fair:.3f}")
        if cur_fair < base_fair - 0.05:
            failures.append(f"fairness index dropped {base_fair:.3f} -> "
                            f"{cur_fair:.3f}")
        if cur_mt.get("worker_identical") is False:
            failures.append("multi-tenant leg diverged across worker counts")

    # Host block: every gated field must be present — a missing block or
    # key is a truncated/old-schema run, not a perfect score.
    host = current.get("host")
    if host is None:
        failures.append(
            "host block missing from the current run — the bench was "
            "truncated or ran --parallel off; the perf gate needs the "
            "parallel leg")
        host = {}
    if require(host, "reports_identical", "host", failures) is False:
        failures.append("parallel leg diverged from the sequential path")
    seq_wall = require(host, "sequential_wall_seconds", "host", failures)
    par_wall = require(host, "parallel_wall_seconds", "host", failures)
    speedup = require(host, "wall_speedup", "host", failures)
    workers = require(host, "workers", "host", failures)
    if None not in (seq_wall, par_wall, speedup, workers):
        gated = args.min_wall_speedup is not None
        print(f"host wall: sequential {seq_wall:.3f}s, parallel "
              f"{par_wall:.3f}s (wall_speedup {speedup:.2f}x, "
              f"{workers} workers) "
              f"[{'gated' if gated else 'informational'}]")
        if gated and speedup < args.min_wall_speedup:
            failures.append(
                f"wall_speedup {speedup:.2f}x below the "
                f"{args.min_wall_speedup:.2f}x floor — the parallel+cache "
                f"path lost its advantage over sequential simulation")
    cold_speedup = host.get("cold_wall_speedup") if host else None
    if cold_speedup is not None:
        # Soft report: the speedup earned without a warm persistent
        # cache. Never gated — cold walls are the noisiest numbers on a
        # shared runner — but always visible so a cold-path collapse is
        # spotted in the log even while the warm ratchet stays green.
        print(f"cold wall_speedup: {cold_speedup:.2f}x "
              f"[informational, cold persistent cache]")

    cache = host.get("cache") if host else None
    if cache is None:
        failures.append("host.cache block missing — regenerate with "
                        "scripts/update_bench_baseline.sh")
    else:
        hit_rate = require(cache, "hit_rate", "host.cache", failures)
        hits = require(cache, "hits", "host.cache", failures)
        waits = require(cache, "waits", "host.cache", failures)
        misses = require(cache, "misses", "host.cache", failures)
        base_cache = baseline.get("host", {}).get("cache")
        base_hit_rate = require(base_cache, "hit_rate", "baseline.host.cache",
                                failures) if base_cache is not None else None
        if base_cache is None:
            failures.append("baseline host.cache block missing — regenerate "
                            "with scripts/update_bench_baseline.sh")
        if None not in (hit_rate, hits, waits, misses):
            print(f"cycle cache: hit rate {hit_rate:.1%} "
                  f"({hits} hits / {waits} waits / {misses} misses)")
        if None not in (hit_rate, base_hit_rate):
            drop = base_hit_rate - hit_rate
            print(f"cycle cache hit-rate vs baseline: {base_hit_rate:.1%} "
                  f"-> {hit_rate:.1%} ({-drop:+.1%} absolute)")
            if drop > HIT_RATE_DROP_LIMIT:
                failures.append(
                    f"cycle-cache hit rate dropped {drop:.1%} (absolute) vs "
                    f"baseline (> {HIT_RATE_DROP_LIMIT:.0%}) — speculation "
                    f"or placement is mispredicting the warm/cold variant")

    # Speculation scoring (schema >= 4): deterministic, so its presence
    # is required once both files speak schema 4.
    if current.get("schema", 0) >= 4:
        spec = host.get("speculation") if host else None
        if spec is None:
            failures.append("host.speculation block missing from a "
                            "schema-4 run")
        else:
            speculated = require(spec, "speculated", "host.speculation",
                                 failures)
            useful = require(spec, "useful", "host.speculation", failures)
            wasted = require(spec, "wasted", "host.speculation", failures)
            if None not in (speculated, useful, wasted):
                rate = useful / speculated if speculated else 1.0
                print(f"speculation: {speculated} speculated, {useful} "
                      f"useful, {wasted} wasted ({rate:.1%} useful)")
        persist = host.get("persistent_cache") if host else None
        if persist is not None and persist.get("enabled"):
            print(f"persistent cache: loaded {persist.get('loaded', 0)}, "
                  f"saved {persist.get('saved', 0)} "
                  f"[{'warm' if persist.get('loaded', 0) else 'cold'} run]")
    # Cluster routing-tier gates (schema >= 5): every number in the
    # block is simulated, so these are contract checks, not budgets.
    if current.get("schema", 0) >= 5:
        cluster = current.get("cluster")
        if cluster is None:
            failures.append(
                "cluster block missing from a schema-5 run — the perf job "
                "must pass --cluster-trace to serve_throughput")
        else:
            if require(cluster, "single_equivalent", "cluster",
                       failures) is False:
                failures.append(
                    "cluster-of-1 diverged from the bare Server — the "
                    "lockstep/routing tier changed the simulated timeline")
            p2c_wins = require(cluster, "p2c_wins_queue_wait", "cluster",
                               failures)
            aff_wins = require(cluster, "affinity_wins_warm_dispatch",
                               "cluster", failures)
            if None not in (p2c_wins, aff_wins):
                print(f"cluster routing trade: p2c wins queue wait: "
                      f"{p2c_wins}; affinity wins warm dispatch: {aff_wins}")
                if not (p2c_wins or aff_wins):
                    failures.append(
                        "cluster routing trade holds in neither direction "
                        "(p2c lost p99 queue wait AND affinity lost "
                        "warm-dispatch rate)")
            p2c = cluster.get("power_of_two")
            autoscaled = cluster.get("autoscaled")
            if p2c is None or autoscaled is None:
                failures.append("cluster.power_of_two / cluster.autoscaled "
                                "leg missing")
            else:
                fairness = require(p2c, "instance_fairness",
                                   "cluster.power_of_two", failures)
                if fairness is not None:
                    print(f"cluster p2c fairness: {fairness:.4f} "
                          f"(floor {P2C_FAIRNESS_FLOOR})")
                    if fairness < P2C_FAIRNESS_FLOOR:
                        failures.append(
                            f"power-of-two instance fairness {fairness:.4f} "
                            f"below the {P2C_FAIRNESS_FLOOR} floor")
                fixed_j = require(p2c, "energy_per_inference_joules",
                                  "cluster.power_of_two", failures)
                scaled_j = require(autoscaled, "energy_per_inference_joules",
                                   "cluster.autoscaled", failures)
                downs = require(autoscaled, "scale_downs",
                                "cluster.autoscaled", failures)
                if None not in (fixed_j, scaled_j, downs):
                    print(f"cluster energy: autoscaled "
                          f"{scaled_j * 1e3:.4f} mJ/inf vs fixed "
                          f"{fixed_j * 1e3:.4f} mJ/inf "
                          f"({downs} scale-downs)")
                    if scaled_j >= fixed_j:
                        failures.append(
                            "autoscaled fleet no longer beats the fixed "
                            "fleet on energy per inference")
                    if downs < 1:
                        failures.append(
                            "autoscaler never parked an instance on the "
                            "diurnal trace — the trough detection broke")
            # Cross-run determinism: the simulated counts must replay
            # bit-for-bit against the baseline's cluster block.
            base_cluster = baseline.get("cluster")
            if base_cluster is None:
                failures.append("baseline cluster block missing — "
                                "regenerate with "
                                "scripts/update_bench_baseline.sh")
            else:
                for leg in ("task_affinity", "power_of_two", "tenant_spill",
                            "autoscaled"):
                    for field in ("completed", "router_shed",
                                  "makespan_cycles", "scale_downs"):
                        cur_v = cluster.get(leg, {}).get(field)
                        base_v = base_cluster.get(leg, {}).get(field)
                        if cur_v != base_v:
                            failures.append(
                                f"cluster.{leg}.{field} drifted from the "
                                f"baseline: {cur_v!r} vs {base_v!r} — "
                                f"simulated routing is no longer "
                                f"deterministic across runs")
            # Fleet threading (schema >= 6): simulated identity across
            # thread counts is the determinism contract and always
            # gates; the wall ratio only gates where the host can
            # actually win (>= 4 cores driving >= 4 threads).
            if current.get("schema", 0) >= 6:
                chost = cluster.get("host")
                if chost is None:
                    failures.append(
                        "cluster.host block missing from a schema-6 run — "
                        "the bench no longer measures fleet threading")
                else:
                    threads = require(chost, "fleet_threads",
                                      "cluster.host", failures)
                    cores = require(chost, "host_cores", "cluster.host",
                                    failures)
                    ratio = require(chost, "wall_ratio", "cluster.host",
                                    failures)
                    identical = require(chost, "simulated_reports_identical",
                                        "cluster.host", failures)
                    if threads is not None and threads >= 2:
                        if identical is False:
                            failures.append(
                                "fleet run diverged across fleet-thread "
                                "counts — host parallelism leaked into "
                                "the simulated timeline")
                        if None not in (cores, ratio):
                            gate_wall = cores >= 4 and threads >= 4
                            print(f"cluster fleet wall: 1 thread "
                                  f"{chost.get('wall_seconds_1thread', 0):.3f}s"
                                  f" vs {threads} threads "
                                  f"{chost.get('wall_seconds_fleet', 0):.3f}s "
                                  f"-> {ratio:.2f}x on {cores} cores "
                                  f"[{'gated' if gate_wall else 'informational'}]")
                            if gate_wall and ratio <= 1.0:
                                failures.append(
                                    f"fleet wall ratio {ratio:.2f}x <= 1.0 "
                                    f"on a {cores}-core host — "
                                    f"{threads} fleet threads no longer "
                                    f"beat sequential stepping")
                    elif threads is not None:
                        print("cluster fleet wall: comparison skipped "
                              "(--fleet-threads < 2)")

    # The obs trace-export leg (--trace): wall overhead is machine noise,
    # but simulated identity under tracing is deterministic and gates.
    trace = host.get("trace")
    if trace:
        print(f"obs trace: {trace.get('events', 0)} events, recording "
              f"overhead {trace.get('overhead', 1.0):.2f}x wall "
              f"[informational]")
        if trace.get("identical") is False:
            failures.append("traced run diverged from the untraced run")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("PASS: within regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
