#!/usr/bin/env python3
"""Gate a BENCH_serve.json run against the checked-in baseline.

Usage: check_bench_regression.py CURRENT BASELINE
           [--threshold 0.20] [--energy-threshold 0.20]

Fails (exit 1) when:
  * simulated throughput regressed by more than --threshold,
  * simulated energy-per-inference grew by more than --energy-threshold
    (the paper's headline claim is energy efficiency; a PR that makes
    every inference cost more joules is a regression even at equal
    throughput),
  * simulated accuracy dropped (bit-stable given the seed, so any drop
    is a real behaviour change),
  * the simulated deadline hit-rate dropped by more than a point (so a
    scheduling regression that preserves throughput but tanks SLOs
    still fails),
  * the multi-tenant QoS leg regressed: the conforming-tenant deadline
    hit-rate dropped by more than a point, the Jain fairness index
    dropped by more than 0.05, or the per-tenant outcome diverged
    across worker counts (worker_identical == false),
  * the parallel leg's simulated report diverged from the sequential
    path (reports_identical == false).

Only the `simulated` and `multitenant` blocks gate: they are
deterministic given the seed. The `host` block (wall clock, cache hit
rate) is machine-dependent and reported for information only.
"""

import argparse
import json
import sys


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="maximum tolerated fractional throughput drop")
    parser.add_argument("--energy-threshold", type=float, default=0.20,
                        help="maximum tolerated fractional growth of "
                             "energy-per-inference")
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)

    failures = []

    # Simulated numbers only compare on the identical workload; refuse to
    # gate across differing bench configurations.
    for key in ("schema", "tasks", "requests", "devices", "max_batch",
                "scheduler_policy", "eviction_policy", "seed"):
        if current.get(key) != baseline.get(key):
            failures.append(
                f"workload mismatch on '{key}': current "
                f"{current.get(key)!r} vs baseline {baseline.get(key)!r} "
                f"(regenerate with scripts/update_bench_baseline.sh)")

    cur_sim = current["simulated"]
    base_sim = baseline["simulated"]

    cur_tp = cur_sim["throughput_stories_per_second"]
    base_tp = base_sim["throughput_stories_per_second"]
    drop = (base_tp - cur_tp) / base_tp if base_tp > 0 else 0.0
    print(f"throughput: {cur_tp:.0f} stories/s vs baseline {base_tp:.0f} "
          f"({-drop:+.1%})")
    if drop > args.threshold:
        failures.append(
            f"throughput regressed {drop:.1%} (> {args.threshold:.0%})")

    cur_energy = cur_sim.get("energy_per_inference_joules")
    base_energy = base_sim.get("energy_per_inference_joules")
    if cur_energy is None or base_energy is None:
        failures.append("energy_per_inference_joules missing (schema < 2? "
                        "regenerate with scripts/update_bench_baseline.sh)")
    elif base_energy <= 0:
        # A zero baseline would make the growth ratio meaningless and
        # silently disable this gate; it can only come from a broken run.
        failures.append(
            f"baseline energy_per_inference_joules is {base_energy!r} — "
            "regenerate with scripts/update_bench_baseline.sh")
    else:
        growth = (cur_energy - base_energy) / base_energy
        print(f"energy/inference: {cur_energy * 1e3:.4f} mJ vs baseline "
              f"{base_energy * 1e3:.4f} mJ ({growth:+.1%})")
        if growth > args.energy_threshold:
            failures.append(
                f"energy per inference grew {growth:.1%} "
                f"(> {args.energy_threshold:.0%})")

    cur_acc = cur_sim["accuracy"]
    base_acc = base_sim["accuracy"]
    print(f"accuracy: {cur_acc:.6f} vs baseline {base_acc:.6f}")
    if cur_acc < base_acc - 1e-9:
        failures.append(f"accuracy dropped {base_acc:.6f} -> {cur_acc:.6f}")

    cur_hit = cur_sim.get("deadline_hit_rate")
    base_hit = base_sim.get("deadline_hit_rate")
    if cur_hit is not None and base_hit is not None:
        print(f"deadline hit rate: {cur_hit:.1%} vs baseline {base_hit:.1%}")
        if cur_hit < base_hit - 0.01:
            failures.append(
                f"deadline hit rate dropped {base_hit:.1%} -> {cur_hit:.1%}")

    for key in ("p50_ms", "p99_ms"):
        print(f"{key}: {cur_sim[key]:.3f} vs baseline {base_sim[key]:.3f}")

    # Multi-tenant QoS gates (schema >= 3): the adversarial-tenant leg's
    # conforming hit-rate and fairness are deterministic, so any drop is
    # a real isolation regression.
    cur_mt = current.get("multitenant")
    base_mt = baseline.get("multitenant")
    if cur_mt is None or base_mt is None:
        failures.append("multitenant block missing (schema < 3? regenerate "
                        "with scripts/update_bench_baseline.sh)")
    else:
        cur_conf = cur_mt["conforming_hit_rate"]
        base_conf = base_mt["conforming_hit_rate"]
        print(f"conforming-tenant hit rate: {cur_conf:.1%} vs baseline "
              f"{base_conf:.1%}")
        if cur_conf < base_conf - 0.01:
            failures.append(f"conforming-tenant hit rate dropped "
                            f"{base_conf:.1%} -> {cur_conf:.1%}")
        cur_fair = cur_mt["fairness_index"]
        base_fair = base_mt["fairness_index"]
        print(f"fairness index: {cur_fair:.3f} vs baseline {base_fair:.3f}")
        if cur_fair < base_fair - 0.05:
            failures.append(f"fairness index dropped {base_fair:.3f} -> "
                            f"{cur_fair:.3f}")
        if cur_mt.get("worker_identical") is False:
            failures.append("multi-tenant leg diverged across worker counts")

    host = current.get("host", {})
    if host.get("reports_identical") is False:
        failures.append("parallel leg diverged from the sequential path")
    if host:
        print(f"host wall: sequential {host.get('sequential_wall_seconds', 0):.3f}s, "
              f"parallel {host.get('parallel_wall_seconds', 0):.3f}s "
              f"(wall_speedup {host.get('wall_speedup', 0):.2f}x) "
              f"[informational]")
        cache = host.get("cache", {})
        if cache:
            print(f"cycle cache: hit rate {cache.get('hit_rate', 0):.1%} "
                  f"({cache.get('hits', 0)} hits / "
                  f"{cache.get('waits', 0)} waits / "
                  f"{cache.get('misses', 0)} misses) [informational]")
    # The obs trace-export leg (--trace): wall overhead is machine noise,
    # but simulated identity under tracing is deterministic and gates.
    trace = host.get("trace")
    if trace:
        print(f"obs trace: {trace.get('events', 0)} events, recording "
              f"overhead {trace.get('overhead', 1.0):.2f}x wall "
              f"[informational]")
        if trace.get("identical") is False:
            failures.append("traced run diverged from the untraced run")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("PASS: within regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
