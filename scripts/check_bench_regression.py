#!/usr/bin/env python3
"""Gate a BENCH_serve.json run against the checked-in baseline.

Usage: check_bench_regression.py CURRENT BASELINE
           [--threshold 0.20] [--energy-threshold 0.20]

Fails (exit 1) when:
  * simulated throughput regressed by more than --threshold,
  * simulated energy-per-inference grew by more than --energy-threshold
    (the paper's headline claim is energy efficiency; a PR that makes
    every inference cost more joules is a regression even at equal
    throughput),
  * simulated accuracy dropped (bit-stable given the seed, so any drop
    is a real behaviour change),
  * the simulated deadline hit-rate dropped by more than a point,
  * the parallel leg's simulated report diverged from the sequential
    path (reports_identical == false).

Only the `simulated` block gates: it is deterministic given the seed.
The `host` block (wall clock, cache hit rate) is machine-dependent and
reported for information only.
"""

import argparse
import json
import sys


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="maximum tolerated fractional throughput drop")
    parser.add_argument("--energy-threshold", type=float, default=0.20,
                        help="maximum tolerated fractional growth of "
                             "energy-per-inference")
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)

    failures = []

    # Simulated numbers only compare on the identical workload; refuse to
    # gate across differing bench configurations.
    for key in ("schema", "tasks", "requests", "devices", "max_batch",
                "scheduler_policy", "eviction_policy", "seed"):
        if current.get(key) != baseline.get(key):
            failures.append(
                f"workload mismatch on '{key}': current "
                f"{current.get(key)!r} vs baseline {baseline.get(key)!r} "
                f"(regenerate with scripts/update_bench_baseline.sh)")

    cur_sim = current["simulated"]
    base_sim = baseline["simulated"]

    cur_tp = cur_sim["throughput_stories_per_second"]
    base_tp = base_sim["throughput_stories_per_second"]
    drop = (base_tp - cur_tp) / base_tp if base_tp > 0 else 0.0
    print(f"throughput: {cur_tp:.0f} stories/s vs baseline {base_tp:.0f} "
          f"({-drop:+.1%})")
    if drop > args.threshold:
        failures.append(
            f"throughput regressed {drop:.1%} (> {args.threshold:.0%})")

    cur_energy = cur_sim.get("energy_per_inference_joules")
    base_energy = base_sim.get("energy_per_inference_joules")
    if cur_energy is None or base_energy is None:
        failures.append("energy_per_inference_joules missing (schema < 2? "
                        "regenerate with scripts/update_bench_baseline.sh)")
    elif base_energy <= 0:
        # A zero baseline would make the growth ratio meaningless and
        # silently disable this gate; it can only come from a broken run.
        failures.append(
            f"baseline energy_per_inference_joules is {base_energy!r} — "
            "regenerate with scripts/update_bench_baseline.sh")
    else:
        growth = (cur_energy - base_energy) / base_energy
        print(f"energy/inference: {cur_energy * 1e3:.4f} mJ vs baseline "
              f"{base_energy * 1e3:.4f} mJ ({growth:+.1%})")
        if growth > args.energy_threshold:
            failures.append(
                f"energy per inference grew {growth:.1%} "
                f"(> {args.energy_threshold:.0%})")

    cur_acc = cur_sim["accuracy"]
    base_acc = base_sim["accuracy"]
    print(f"accuracy: {cur_acc:.6f} vs baseline {base_acc:.6f}")
    if cur_acc < base_acc - 1e-9:
        failures.append(f"accuracy dropped {base_acc:.6f} -> {cur_acc:.6f}")

    cur_hit = cur_sim.get("deadline_hit_rate")
    base_hit = base_sim.get("deadline_hit_rate")
    if cur_hit is not None and base_hit is not None:
        print(f"deadline hit rate: {cur_hit:.1%} vs baseline {base_hit:.1%}")
        if cur_hit < base_hit - 0.01:
            failures.append(
                f"deadline hit rate dropped {base_hit:.1%} -> {cur_hit:.1%}")

    for key in ("p50_ms", "p99_ms"):
        print(f"{key}: {cur_sim[key]:.3f} vs baseline {base_sim[key]:.3f}")

    host = current.get("host", {})
    if host.get("reports_identical") is False:
        failures.append("parallel leg diverged from the sequential path")
    if host:
        print(f"host wall: sequential {host.get('sequential_wall_seconds', 0):.3f}s, "
              f"parallel {host.get('parallel_wall_seconds', 0):.3f}s "
              f"({host.get('wall_speedup', 0):.2f}x), cache hit rate "
              f"{host.get('cache', {}).get('hit_rate', 0):.1%} "
              f"[informational]")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("PASS: within regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
