#!/usr/bin/env bash
# Refreshes bench/BENCH_serve_baseline.json with the CI perf job's exact
# workload (full 20-task suite, 4000 requests, EDF + LRU, wall gate
# informational). Run after any intentional serving-performance change,
# commit the result, and say why in the commit message.
#
#   scripts/update_bench_baseline.sh [BUILD_DIR]
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"

if [[ ! -d mann_bench_cache ]]; then
  echo "note: mann_bench_cache/ not found — the bench will retrain the" >&2
  echo "suite deterministically (--train-suite) and cache it; expect a" >&2
  echo "few extra minutes on this first run" >&2
fi

cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j "$(nproc)" --target serve_throughput

# Exactly the CI perf invocation (see .github/workflows/ci.yml), with
# only the artifact destinations swapped — and deliberately NO
# --cache-dir: the baseline must stay COLD. CI gates its warm
# (persistent-cache) run against this file, and a warm run's ~100%
# cycle-cache hit rate only has headroom against the 10-point drop
# limit if the baseline records the cold hit rate. The cluster sweep
# flags must match CI's too: the schema-6 cluster block is compared
# count-for-count against this baseline (--fleet-threads only moves
# wall clock, but matching CI keeps the artifacts comparable).
"${build_dir}/bench/serve_throughput" \
  --tasks 20 --requests 4000 --wall-gate off \
  --replay bench/traces/sample_diurnal.csv \
  --cluster-trace bench/traces/sample_diurnal.csv \
  --cluster-scale 10 --fleet-threads 4 \
  --train-suite \
  --json bench/BENCH_serve_baseline.json \
  --policies-json /dev/null

echo
echo "wrote bench/BENCH_serve_baseline.json — self-check against it:"
python3 scripts/check_bench_regression.py \
  bench/BENCH_serve_baseline.json bench/BENCH_serve_baseline.json
