#!/usr/bin/env python3
"""Summarize a mann::obs Chrome trace-event JSON export.

Usage: trace_summary.py TRACE.json [--tenant-histograms]

Accepts the object form written by obs::write_chrome_trace() (a
"traceEvents" array plus the non-standard "mannMetrics" block) or a bare
event array. Validates the per-request lifecycle spans first — every
async begin ("b") must be closed by a matching end ("e") with the same
(name, id) at a timestamp no earlier than the begin — and exits 1 on a
malformed trace, so CI can use it as a well-formedness smoke test.

Then reports:
  * per-stage latency breakdown (request / queued / pending / service
    span durations: count, mean, p50, p95, p99, max in simulated ms),
  * shed accounting (frontend "shed" instants by ShedReason),
  * cache attribution (host-domain dispatch "cache" instants and worker
    "speculate" spans by outcome, misses broken down per task),
  * cache-segment contention (sharded cycle-cache runs only): per-segment
    hit/wait/miss/contended counts from the embedded mannMetrics
    "accel.cycle_cache.segment.<i>.*" counters, with the lock-contention
    share per segment — how evenly the story-digest hash spreads load
    across the segment locks,
  * per-tenant queue-wait histograms (--tenant-histograms, or always
    when the trace names more than one tenant),
  * per-instance routing (cluster traces only): requests routed and
    queue-wait percentiles per server instance, joined from the router's
    "route" instants (tid = 300 + instance, args.id = request id) to the
    request lifecycle spans — and exits 1 if a routed request has no
    lifecycle span at all (a router/instance bookkeeping bug),
  * the embedded mannMetrics counters/histograms when present.

Stdlib only; no third-party imports.
"""

import argparse
import collections
import json
import sys


STAGES = ("request", "queued", "pending", "service")


def load_events(path):
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    if isinstance(data, list):
        return data, {}
    if isinstance(data, dict):
        events = data.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("no traceEvents array")
        return events, data
    raise ValueError("trace is neither an object nor an array")


def validate_spans(events):
    """Pairs async begins/ends; returns ({(name, id): (begin, end)}, errors)."""
    open_spans = {}
    spans = {}
    errors = []
    for e in events:
        ph = e.get("ph")
        if ph not in ("b", "e"):
            continue
        key = (e.get("name"), e.get("id"))
        if None in key:
            errors.append(f"async event missing name/id: {e}")
            continue
        if ph == "b":
            if key in open_spans:
                errors.append(f"span {key} begun twice")
            open_spans[key] = e
        else:
            begin = open_spans.pop(key, None)
            if begin is None:
                errors.append(f"end without begin for span {key}")
                continue
            if e["ts"] < begin["ts"]:
                errors.append(
                    f"span {key} ends at {e['ts']} before its begin "
                    f"{begin['ts']}")
                continue
            spans[key] = (begin, e)
    for key in open_spans:
        errors.append(f"span {key} never closed")
    return spans, errors


def percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[rank]


def print_stage_stats(spans):
    print("per-stage latency (simulated ms):")
    print(f"  {'stage':<10} {'count':>7} {'mean':>9} {'p50':>9} "
          f"{'p95':>9} {'p99':>9} {'max':>9}")
    for stage in STAGES:
        durations = sorted(
            (end["ts"] - begin["ts"]) / 1e3
            for (name, _), (begin, end) in spans.items()
            if name == stage)
        if not durations:
            print(f"  {stage:<10} {0:>7}")
            continue
        mean = sum(durations) / len(durations)
        print(f"  {stage:<10} {len(durations):>7} {mean:>9.3f} "
              f"{percentile(durations, 0.50):>9.3f} "
              f"{percentile(durations, 0.95):>9.3f} "
              f"{percentile(durations, 0.99):>9.3f} "
              f"{durations[-1]:>9.3f}")


def print_sheds(events):
    sheds = collections.Counter(
        e.get("args", {}).get("detail", "?")
        for e in events
        if e.get("ph") == "i" and e.get("name") == "shed")
    if sheds:
        total = sum(sheds.values())
        reasons = ", ".join(f"{k}={v}" for k, v in sorted(sheds.items()))
        print(f"\nsheds: {total} ({reasons})")


def print_cache_attribution(events):
    """Host-domain dispatch/speculation outcomes, wasted work per task."""
    outcomes = collections.Counter()
    miss_tasks = collections.Counter()
    wasted_tasks = collections.Counter()
    for e in events:
        name = e.get("name")
        if name in ("cache", "speculation") and e.get("ph") == "i":
            pass
        elif name == "speculate" and e.get("ph") == "X":
            pass
        else:
            continue
        args = e.get("args", {})
        outcome = args.get("detail", "?")
        outcomes[f"{name}:{outcome}"] += 1
        if outcome == "miss" and args.get("task") is not None:
            miss_tasks[args["task"]] += 1
        if (name == "speculation" and outcome == "wasted"
                and args.get("task") is not None):
            wasted_tasks[args["task"]] += 1
    if not outcomes:
        print("\ncache attribution: no host-domain cache events "
              "(sequential run or MANN_OBS=OFF)")
        return
    print("\ncache attribution (host-domain dispatch + speculation):")
    for key, count in sorted(outcomes.items()):
        print(f"  {key:<20} {count}")
    if miss_tasks:
        ranked = ", ".join(
            f"task {t}: {n}" for t, n in miss_tasks.most_common(8))
        print(f"  misses by task: {ranked}")
    if wasted_tasks:
        ranked = ", ".join(
            f"task {t}: {n}" for t, n in wasted_tasks.most_common(8))
        print(f"  wasted speculation by task: {ranked}")


def print_cache_segments(top):
    """Per-segment contention attribution for the sharded cycle cache.

    The cache registers one counter quartet per lock segment only when
    sharded (segments > 1), so a silent absence here just means the run
    used a single-segment cache. `contended` counts try-lock failures —
    acquisitions that had to sleep on another thread's segment lock —
    which is the number the segment-count knob exists to shrink.
    """
    counters = top.get("mannMetrics", {}).get("counters", {})
    prefix = "accel.cycle_cache.segment."
    segments = collections.defaultdict(dict)
    for name, value in counters.items():
        if not name.startswith(prefix):
            continue
        index, _, field = name[len(prefix):].partition(".")
        if index.isdigit() and field:
            segments[int(index)][field] = value
    if not segments:
        return
    total_ops = sum(
        s.get("hits", 0) + s.get("waits", 0) + s.get("misses", 0)
        for s in segments.values())
    total_contended = sum(s.get("contended", 0) for s in segments.values())
    print(f"\ncycle-cache segment contention ({len(segments)} segments, "
          f"{total_contended} contended acquisitions / {total_ops} lookups):")
    print(f"  {'segment':<8} {'hits':>8} {'waits':>7} {'misses':>8} "
          f"{'contended':>10} {'share':>7}")
    for index in sorted(segments):
        s = segments[index]
        ops = s.get("hits", 0) + s.get("waits", 0) + s.get("misses", 0)
        share = ops / total_ops if total_ops else 0.0
        print(f"  {index:<8} {s.get('hits', 0):>8} {s.get('waits', 0):>7} "
              f"{s.get('misses', 0):>8} {s.get('contended', 0):>10} "
              f"{share:>6.1%}")


def log2_histogram(values_ms):
    """Text histogram over power-of-two millisecond buckets."""
    buckets = collections.Counter()
    for v in values_ms:
        bucket = 0
        upper = 0.001  # sub-microsecond floor
        while v > upper and bucket < 40:
            bucket += 1
            upper *= 2
        buckets[bucket] += 1
    peak = max(buckets.values())
    lines = []
    for bucket in sorted(buckets):
        upper = 0.001 * (2 ** bucket)
        bar = "#" * max(1, round(buckets[bucket] * 40 / peak))
        lines.append(f"    <= {upper:10.3f} ms  {buckets[bucket]:>6}  {bar}")
    return lines


def print_tenant_queue_waits(spans, force):
    waits = collections.defaultdict(list)
    for (name, _), (begin, end) in spans.items():
        if name != "queued":
            continue
        tenant = begin.get("args", {}).get("tenant", 0)
        waits[tenant].append((end["ts"] - begin["ts"]) / 1e3)
    if not waits or (len(waits) < 2 and not force):
        return
    print("\nper-tenant queue-wait histograms (simulated ms):")
    for tenant in sorted(waits):
        values = sorted(waits[tenant])
        mean = sum(values) / len(values)
        print(f"  tenant {tenant}: {len(values)} waits, mean {mean:.3f} ms, "
              f"p99 {percentile(values, 0.99):.3f} ms")
        for line in log2_histogram(values):
            print(line)


INSTANCE_TID_BASE = 300  # obs::kTrackInstanceBase: route lane per instance


def print_instances(events, spans):
    """Cluster router attribution; returns the number of lost requests.

    Routing decisions are "route" instants on a per-instance lane
    carrying the assigned request id. Joining on that id (never on
    ordering — post-drain flushes legitimately reach back in time) gives
    per-instance routed counts and queue-wait spreads. A route whose id
    has no "request" lifecycle span was dropped between router and
    instance, which the simulation never does — report and fail.
    """
    routes = []
    for e in events:
        if e.get("ph") != "i" or e.get("name") != "route":
            continue
        tid = e.get("tid", 0)
        if tid < INSTANCE_TID_BASE:
            continue
        routes.append((tid - INSTANCE_TID_BASE, e.get("args", {}).get("id")))
    if not routes:
        return 0  # bare-server trace: no cluster section
    counts = collections.Counter()
    waits = collections.defaultdict(list)
    lost = []
    for instance, rid in routes:
        counts[instance] += 1
        if rid is None or ("request", rid) not in spans:
            lost.append((instance, rid))
            continue
        queued = spans.get(("queued", rid))
        if queued is not None:
            begin, end = queued
            waits[instance].append((end["ts"] - begin["ts"]) / 1e3)
    router_sheds = sum(
        1 for e in events
        if e.get("ph") == "i" and e.get("name") == "router_shed")
    print("\nper-instance routing (cluster):")
    print(f"  {'instance':<9} {'routed':>7} {'queued':>7} {'qw mean':>9} "
          f"{'qw p50':>9} {'qw p99':>9} {'qw max':>9}")
    for instance in sorted(counts):
        values = sorted(waits.get(instance, []))
        if not values:
            print(f"  {instance:<9} {counts[instance]:>7} {0:>7}")
            continue
        mean = sum(values) / len(values)
        print(f"  {instance:<9} {counts[instance]:>7} {len(values):>7} "
              f"{mean:>9.3f} {percentile(values, 0.50):>9.3f} "
              f"{percentile(values, 0.99):>9.3f} {values[-1]:>9.3f}")
    if router_sheds:
        print(f"  router sheds: {router_sheds}")
    for instance, rid in lost[:20]:
        print(f"FAIL: request {rid} routed to instance {instance} but has "
              f"no lifecycle span", file=sys.stderr)
    if len(lost) > 20:
        print(f"FAIL: ... and {len(lost) - 20} more", file=sys.stderr)
    return len(lost)


def print_metrics(top):
    metrics = top.get("mannMetrics")
    if not metrics:
        return
    counters = metrics.get("counters", {})
    if counters:
        print("\nmetrics counters:")
        for name, value in sorted(counters.items()):
            print(f"  {name:<40} {value}")
    gauges = metrics.get("gauges", {})
    if gauges:
        print("\nmetrics gauges:")
        for name, value in sorted(gauges.items()):
            print(f"  {name:<40} {value}")
    histograms = metrics.get("histograms", {})
    if histograms:
        print("\nmetrics histograms:")
        for name, h in sorted(histograms.items()):
            print(f"  {name:<40} count={h.get('count', 0)} "
                  f"mean={h.get('mean', 0):.1f} p50={h.get('p50', 0):.0f} "
                  f"p99={h.get('p99', 0):.0f} max={h.get('max', 0)}")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("trace")
    parser.add_argument("--tenant-histograms", action="store_true",
                        help="print queue-wait histograms even for a "
                             "single-tenant trace")
    args = parser.parse_args()

    try:
        events, top = load_events(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"FAIL: cannot load {args.trace}: {err}", file=sys.stderr)
        return 1

    spans, errors = validate_spans(events)
    if errors:
        for error in errors[:20]:
            print(f"FAIL: {error}", file=sys.stderr)
        if len(errors) > 20:
            print(f"FAIL: ... and {len(errors) - 20} more", file=sys.stderr)
        return 1

    requests = sum(1 for (name, _) in spans if name == "request")
    print(f"{args.trace}: {len(events)} events, {len(spans)} closed spans, "
          f"{requests} request lifecycles — well-formed")
    if requests == 0:
        # An empty trace (MANN_OBS=OFF) is valid but has nothing to
        # summarize; still exit 0 so the OFF build's smoke run passes.
        print("no request spans recorded (empty trace / MANN_OBS=OFF)")
        print_metrics(top)
        return 0

    print_stage_stats(spans)
    print_sheds(events)
    print_cache_attribution(events)
    print_cache_segments(top)
    print_tenant_queue_waits(spans, args.tenant_histograms)
    lost = print_instances(events, spans)
    print_metrics(top)
    return 1 if lost else 0


if __name__ == "__main__":
    sys.exit(main())
