#!/usr/bin/env python3
"""Replay a serving trace CSV through a mann_served daemon.

Reads an arrival trace (the v1/v2 CSV format of serve::load_trace_csv),
turns every row into a `submit <task> <tenant> 0 <arrival_cycle>` line,
and pipes the whole schedule — followed by `drain` and `quit` — into a
freshly spawned daemon. Run with --lockstep on the daemon side, the
replay reproduces the closed-loop timeline exactly: CI diffs the
daemon's --report-json against the --closed-loop report of the same
trace and hard-fails on any byte difference.

usage: served_client.py TRACE.csv -- mann_served [daemon flags...]

The daemon's stdout streams through unchanged (ready/ok/done/shed/bye),
so the transcript itself is also byte-stable at a fixed trace.
"""
import subprocess
import sys


def parse_trace(path, tasks):
    """Yields (arrival_cycle, task, tenant) rows, mirroring the C++
    loader: versioned or plain header tolerated, blank/# lines skipped,
    2-column v1 rows default tenant 0; task ids wrap into the registry
    exactly like mann_served --closed-loop does."""
    rows = []
    with open(path, "r", encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            cols = [c.strip() for c in line.split(",")]
            if not cols[0].isdigit():  # header row
                continue
            arrival = int(cols[0])
            task = int(cols[1]) % tasks if tasks else int(cols[1])
            tenant = int(cols[2]) if len(cols) > 2 else 0
            rows.append((arrival, task, tenant))
    return rows


def main(argv):
    if "--" not in argv or argv.index("--") < 2:
        print(__doc__, file=sys.stderr)
        return 2
    split = argv.index("--")
    trace_path = argv[1]
    daemon_cmd = argv[split + 1:]
    if not daemon_cmd:
        print("no daemon command after --", file=sys.stderr)
        return 2

    # The daemon's task registry size bounds the task ids we may submit;
    # recover it from --tiny/--tasks so the wrap matches --closed-loop.
    tasks = 0
    for flag in ("--tiny", "--tasks"):
        if flag in daemon_cmd:
            tasks = int(daemon_cmd[daemon_cmd.index(flag) + 1])
    rows = parse_trace(trace_path, tasks)
    if not rows:
        print(f"{trace_path}: no trace entries", file=sys.stderr)
        return 2

    proc = subprocess.Popen(daemon_cmd, stdin=subprocess.PIPE, text=True)
    try:
        for arrival, task, tenant in rows:
            proc.stdin.write(f"submit {task} {tenant} 0 {arrival}\n")
        proc.stdin.write("drain\n")
        proc.stdin.write("quit\n")
        proc.stdin.close()
    except BrokenPipeError:
        print("daemon exited before the replay finished", file=sys.stderr)
        proc.wait()
        return 1
    rc = proc.wait()
    print(f"replayed {len(rows)} arrivals, daemon exit {rc}",
          file=sys.stderr)
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
