// The clock: ticks registered modules in order until a completion
// predicate fires (or a watchdog limit trips, which is always a bug).
#pragma once

#include <functional>
#include <vector>

#include "sim/module.hpp"
#include "sim/types.hpp"

namespace mann::sim {

class Simulator {
 public:
  /// Registers a module. Tick order == registration order; pick an order
  /// consistent with the dataflow direction (producers before consumers
  /// gives same-cycle forwarding through FIFOs, like combinational
  /// FIFO bypass).
  void add_module(Module& module);

  /// Runs until `done()` returns true. Returns cycles elapsed in this call.
  /// Throws std::runtime_error when `max_cycles` elapses first.
  Cycle run_until(const std::function<bool()>& done, Cycle max_cycles);

  /// Like run_until, but when every registered module reports a future
  /// next_activity() the clock jumps straight to the earliest one instead
  /// of ticking through the quiescent gap. Exact for modules that honour
  /// the next_activity contract; identical to run_until when any module
  /// returns nullopt. The serving runtime uses this to simulate sparse
  /// request arrivals over billions of cycles in bounded host time.
  Cycle run_events(const std::function<bool()>& done, Cycle max_cycles);

  /// Cheap timing fast-forward: advances the clock by `cycles` without
  /// ticking any module. run_events uses it for the quiescence jump, and
  /// it is the replay hook for consumers that already know a stretch's
  /// exact cycle count from a previous simulation (the service-cycle
  /// cache replays memoized device runs this way: the clock lands
  /// exactly where a full re-simulation would, at zero cost).
  void advance(Cycle cycles) noexcept { now_ += cycles; }

  /// Total cycles ticked since construction.
  [[nodiscard]] Cycle now() const noexcept { return now_; }

  [[nodiscard]] const std::vector<Module*>& modules() const noexcept {
    return modules_;
  }

 private:
  std::vector<Module*> modules_;
  Cycle now_ = 0;
};

}  // namespace mann::sim
