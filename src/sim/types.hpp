// Basic time/activity types for the cycle-level dataflow simulator.
#pragma once

#include <cstdint>

namespace mann::sim {

/// Clock cycle count. All module timing is expressed in cycles; wall time
/// is cycles / clock_hz at the very end (so one simulation serves every
/// operating frequency of the host link sweep — except the link itself,
/// whose words-per-cycle rate depends on frequency).
using Cycle = std::uint64_t;

/// Sentinel for "no scheduled activity": a module that is idle until new
/// external input reports this from next_activity().
inline constexpr Cycle kNever = ~Cycle{0};

/// Datapath operation counts accumulated by a module. The power model
/// multiplies these by per-op energy coefficients, so the categories match
/// the distinct physical units of the design (DSP MACs, LUT adds, the exp
/// LUT, the divider, BRAM ports, comparators).
struct OpCounts {
  std::uint64_t mac = 0;        ///< multiply-accumulate (DSP)
  std::uint64_t add = 0;        ///< plain adds (embedding accumulate, h=r+..)
  std::uint64_t exp = 0;        ///< exp-LUT evaluations
  std::uint64_t div = 0;        ///< divider operations
  std::uint64_t mem_read = 0;   ///< BRAM reads (one word each)
  std::uint64_t mem_write = 0;  ///< BRAM writes
  std::uint64_t compare = 0;    ///< comparator operations (max / threshold)

  OpCounts& operator+=(const OpCounts& o) noexcept {
    mac += o.mac;
    add += o.add;
    exp += o.exp;
    div += o.div;
    mem_read += o.mem_read;
    mem_write += o.mem_write;
    compare += o.compare;
    return *this;
  }

  [[nodiscard]] std::uint64_t total() const noexcept {
    return mac + add + exp + div + mem_read + mem_write + compare;
  }
};

/// Busy/stall accounting per module.
struct ModuleStats {
  Cycle busy_cycles = 0;   ///< cycles doing useful work
  Cycle stall_cycles = 0;  ///< cycles blocked on a full/empty FIFO
  OpCounts ops;

  ModuleStats& operator+=(const ModuleStats& o) noexcept {
    busy_cycles += o.busy_cycles;
    stall_cycles += o.stall_cycles;
    ops += o.ops;
    return *this;
  }
};

}  // namespace mann::sim
