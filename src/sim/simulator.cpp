#include "sim/simulator.hpp"

#include <stdexcept>

namespace mann::sim {

void Simulator::add_module(Module& module) { modules_.push_back(&module); }

Cycle Simulator::run_until(const std::function<bool()>& done,
                           Cycle max_cycles) {
  const Cycle start = now_;
  while (!done()) {
    if (now_ - start >= max_cycles) {
      throw std::runtime_error(
          "Simulator: watchdog expired — dataflow deadlock or runaway");
    }
    for (Module* m : modules_) {
      m->tick();
    }
    ++now_;
  }
  return now_ - start;
}

}  // namespace mann::sim
