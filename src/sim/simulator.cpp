#include "sim/simulator.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

namespace mann::sim {

void Simulator::add_module(Module& module) { modules_.push_back(&module); }

Cycle Simulator::run_until(const std::function<bool()>& done,
                           Cycle max_cycles) {
  const Cycle start = now_;
  while (!done()) {
    if (now_ - start >= max_cycles) {
      throw std::runtime_error(
          "Simulator: watchdog expired — dataflow deadlock or runaway");
    }
    for (Module* m : modules_) {
      m->tick();
    }
    ++now_;
  }
  return now_ - start;
}

Cycle Simulator::run_events(const std::function<bool()>& done,
                            Cycle max_cycles) {
  const Cycle start = now_;
  while (!done()) {
    if (now_ - start >= max_cycles) {
      throw std::runtime_error(
          "Simulator: watchdog expired — dataflow deadlock or runaway");
    }

    // Quiescence check: if every module agrees nothing can happen before
    // some future cycle, jump straight there. A nullopt vetoes the jump.
    Cycle horizon = kNever;
    bool skippable = !modules_.empty();
    for (const Module* m : modules_) {
      const std::optional<Cycle> next = m->next_activity();
      if (!next.has_value()) {
        skippable = false;
        break;
      }
      horizon = std::min(horizon, *next);
    }
    if (skippable && horizon > now_) {
      // Clamp so the watchdog still fires instead of wrapping past it.
      advance(std::min(horizon, start + max_cycles) - now_);
      if (now_ - start >= max_cycles) {
        throw std::runtime_error(
            "Simulator: watchdog expired — all modules idle forever");
      }
    }

    for (Module* m : modules_) {
      m->tick();
    }
    ++now_;
  }
  return now_ - start;
}

}  // namespace mann::sim
