// timing.hpp is header-only today; this TU pins the library's symbols and
// keeps a compile check on the header in isolation.
#include "sim/timing.hpp"

namespace mann::sim {

static_assert(ceil_div(9, 8) == 2);
static_assert(ceil_log2(8) == 3);
static_assert(ceil_log2(1) == 0);

}  // namespace mann::sim
