// Datapath timing parameters: the cycle costs of the arithmetic units the
// accelerator instantiates. Central so the adder-tree-width and unit-latency
// ablations sweep one struct.
#pragma once

#include <cstddef>

#include "sim/types.hpp"

namespace mann::sim {

[[nodiscard]] constexpr std::size_t ceil_div(std::size_t a,
                                             std::size_t b) noexcept {
  return (a + b - 1) / b;
}

[[nodiscard]] constexpr Cycle ceil_log2(std::size_t n) noexcept {
  Cycle bits = 0;
  std::size_t v = 1;
  while (v < n) {
    v <<= 1U;
    ++bits;
  }
  return bits;
}

/// Cycle costs of the shared arithmetic units.
struct DatapathTiming {
  /// Adder-tree / MAC-array width: elements consumed per cycle by a dot
  /// product. The paper's modules compute dot products via an adder tree
  /// fed by parallel multipliers; its per-story cycle budget (Table I's
  /// compute term solves to ~200-500 cycles/story) implies the tree spans
  /// the whole embedding vector, so the default covers E = 24 in one
  /// issue (dot_ii == 1). The adder-tree ablation sweeps this down.
  std::size_t lane_width = 32;

  Cycle exp_latency = 2;  ///< exp LUT pipeline depth (BRAM read + interp)
  Cycle exp_ii = 1;       ///< exp initiation interval
  Cycle div_latency = 8;  ///< divider pipeline depth (seed + 2 NR steps)
  Cycle div_ii = 1;       ///< divider initiation interval (pipelined)
  Cycle bram_write = 1;   ///< memory-bank write cycles per vector batch

  /// Adder-tree reduction latency (log2 of width).
  [[nodiscard]] Cycle tree_latency() const noexcept {
    return ceil_log2(lane_width);
  }

  /// Pipelined dot product of length n: ceil(n/W) issue cycles + drain.
  [[nodiscard]] Cycle dot_cycles(std::size_t n) const noexcept {
    return static_cast<Cycle>(ceil_div(n, lane_width)) + tree_latency();
  }

  /// Issue interval of back-to-back dot products of length n (the drain
  /// overlaps with the next issue in a pipelined tree).
  [[nodiscard]] Cycle dot_ii(std::size_t n) const noexcept {
    const auto issue = static_cast<Cycle>(ceil_div(n, lane_width));
    return issue > 0 ? issue : 1;
  }

  /// n sequential exp evaluations, pipelined.
  [[nodiscard]] Cycle exp_block(std::size_t n) const noexcept {
    if (n == 0) {
      return 0;
    }
    return exp_ii * static_cast<Cycle>(n - 1) + exp_latency + 1;
  }

  /// n sequential divider operations, pipelined.
  [[nodiscard]] Cycle div_block(std::size_t n) const noexcept {
    if (n == 0) {
      return 0;
    }
    return div_ii * static_cast<Cycle>(n - 1) + div_latency + 1;
  }
};

}  // namespace mann::sim
