// Module base class for the cycle-level dataflow simulation.
//
// Modules are ticked once per clock cycle in a fixed order by the
// Simulator. A module models its internal pipelines with cycle counters:
// when it starts a multi-cycle operation it performs the arithmetic
// immediately (transaction semantics) and then stays busy for the
// operation's latency, which preserves cycle-accurate timing at the module
// boundary without simulating every register.
#pragma once

#include <optional>
#include <string>

#include "sim/types.hpp"

namespace mann::sim {

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Advances one clock cycle.
  virtual void tick() = 0;

  /// Earliest future cycle at which this module could change state, given
  /// no new input from other modules. Simulator::run_events uses this to
  /// fast-forward across quiescent stretches (e.g. waiting for the next
  /// request arrival in the serving runtime). Returning nullopt means
  /// "unknown — tick me every cycle", the conservative default that keeps
  /// the handwritten datapath modules cycle-exact. kNever means the module
  /// is idle until some other module acts.
  [[nodiscard]] virtual std::optional<Cycle> next_activity() const {
    return std::nullopt;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const ModuleStats& stats() const noexcept { return stats_; }

 protected:
  /// Accounting helpers for subclasses.
  void mark_busy() noexcept { ++stats_.busy_cycles; }
  void mark_stalled() noexcept { ++stats_.stall_cycles; }
  OpCounts& ops() noexcept { return stats_.ops; }

 private:
  std::string name_;
  ModuleStats stats_;
};

}  // namespace mann::sim
