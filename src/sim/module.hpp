// Module base class for the cycle-level dataflow simulation.
//
// Modules are ticked once per clock cycle in a fixed order by the
// Simulator. A module models its internal pipelines with cycle counters:
// when it starts a multi-cycle operation it performs the arithmetic
// immediately (transaction semantics) and then stays busy for the
// operation's latency, which preserves cycle-accurate timing at the module
// boundary without simulating every register.
#pragma once

#include <string>

#include "sim/types.hpp"

namespace mann::sim {

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Advances one clock cycle.
  virtual void tick() = 0;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const ModuleStats& stats() const noexcept { return stats_; }

 protected:
  /// Accounting helpers for subclasses.
  void mark_busy() noexcept { ++stats_.busy_cycles; }
  void mark_stalled() noexcept { ++stats_.stall_cycles; }
  OpCounts& ops() noexcept { return stats_.ops; }

 private:
  std::string name_;
  ModuleStats stats_;
};

}  // namespace mann::sim
