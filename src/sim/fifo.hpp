// Bounded FIFO with back-pressure — the stream joints of the dataflow
// architecture (FIFO_IN, FIFO_OUT and the internal module queues in Fig. 1).
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>

#include "sim/types.hpp"

namespace mann::sim {

/// Occupancy statistics of a FIFO, for the fifo-depth ablation bench and
/// the serving-runtime queue reports (both aggregate with operator+=, so
/// every queue in the system is introspected through one code path).
struct FifoStats {
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  std::uint64_t full_rejects = 0;  ///< push attempts while full
  std::size_t max_occupancy = 0;

  FifoStats& operator+=(const FifoStats& o) noexcept {
    pushes += o.pushes;
    pops += o.pops;
    full_rejects += o.full_rejects;
    max_occupancy = std::max(max_occupancy, o.max_occupancy);
    return *this;
  }
};

/// Single-clock bounded queue. Producers must check full() (or use
/// try_push) — pushing into a full FIFO throws, because in hardware that
/// is a dropped word, i.e. a design bug.
template <typename T>
class Fifo {
 public:
  explicit Fifo(std::string name, std::size_t capacity)
      : name_(std::move(name)), capacity_(capacity) {
    if (capacity_ == 0) {
      throw std::invalid_argument("Fifo: capacity must be > 0");
    }
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] bool full() const noexcept {
    return items_.size() >= capacity_;
  }

  /// Pushes or throws std::logic_error when full.
  void push(T item) {
    if (!try_push(std::move(item))) {
      throw std::logic_error("Fifo " + name_ + ": push while full");
    }
  }

  /// Pushes unless full; returns whether the word was accepted.
  [[nodiscard]] bool try_push(T item) {
    if (full()) {
      ++stats_.full_rejects;
      return false;
    }
    items_.push_back(std::move(item));
    ++stats_.pushes;
    stats_.max_occupancy = std::max(stats_.max_occupancy, items_.size());
    return true;
  }

  /// Pops the head if present.
  [[nodiscard]] std::optional<T> try_pop() {
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    ++stats_.pops;
    return item;
  }

  /// Peeks without consuming.
  [[nodiscard]] const T* peek() const noexcept {
    return items_.empty() ? nullptr : &items_.front();
  }

  [[nodiscard]] const FifoStats& stats() const noexcept { return stats_; }

 private:
  std::string name_;
  std::size_t capacity_;
  std::deque<T> items_;
  FifoStats stats_;
};

}  // namespace mann::sim
