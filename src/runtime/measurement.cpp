#include "runtime/measurement.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>

#include "accel/compiler.hpp"
#include "core/ith_eval.hpp"
#include "model/flops.hpp"
#include "model/serialize.hpp"
#include "serve/options.hpp"

namespace mann::runtime {

PrepareConfig default_prepare_config() {
  PrepareConfig c;
  c.model.embedding_dim = 24;
  c.model.hops = 3;
  c.model.max_memory = 50;
  c.train.epochs = 30;
  c.train.learning_rate = 0.02F;
  c.train.anneal_every = 10;
  c.ith.rho = 1.0F;
  return c;
}

namespace {
TaskArtifacts finish_artifacts(data::TaskDataset dataset,
                               const PrepareConfig& config);
}  // namespace

TaskArtifacts prepare_task(data::TaskId id, const PrepareConfig& config) {
  return finish_artifacts(data::build_task_dataset(id, config.dataset),
                          config);
}

namespace {

TaskArtifacts finish_artifacts(data::TaskDataset dataset,
                               const PrepareConfig& config) {
  model::ModelConfig mc = config.model;
  mc.vocab_size = dataset.vocab_size();
  numeric::Rng init_rng(
      config.init_seed +
      static_cast<std::uint64_t>(data::task_number(dataset.id)));
  model::MemN2N net(mc, init_rng);
  model::train(net, dataset.train, config.train);

  core::InferenceThresholding ith = core::InferenceThresholding::calibrate(
      net, dataset.train, config.ith);

  TaskArtifacts art{std::move(dataset), std::move(net), std::move(ith)};
  art.test_accuracy = model::evaluate_accuracy(art.model, art.dataset.test);
  art.ith_test_accuracy =
      core::evaluate_ith(art.model, art.ith, art.dataset.test).accuracy;
  return art;
}

}  // namespace

std::vector<TaskArtifacts> prepare_suite(const PrepareConfig& config) {
  std::vector<data::TaskDataset> datasets =
      data::build_joint_suite(config.dataset);
  std::vector<TaskArtifacts> suite;
  suite.reserve(datasets.size());
  for (data::TaskDataset& ds : datasets) {
    suite.push_back(finish_artifacts(std::move(ds), config));
  }
  return suite;
}

namespace {

std::string cache_key(const PrepareConfig& c, data::TaskId id) {
  return "g" + std::to_string(data::kGeneratorVersion) + "_task" +
         std::to_string(data::task_number(id)) + "_s" +
         std::to_string(c.dataset.seed) + "_n" +
         std::to_string(c.dataset.train_stories) + "_e" +
         std::to_string(c.model.embedding_dim) + "_h" +
         std::to_string(c.model.hops) + "_ep" +
         std::to_string(c.train.epochs) + "_i" +
         std::to_string(c.init_seed) + ".mann";
}

TaskArtifacts finish_from_model(data::TaskDataset dataset,
                                model::MemN2N net,
                                const PrepareConfig& config) {
  core::InferenceThresholding ith = core::InferenceThresholding::calibrate(
      net, dataset.train, config.ith);
  TaskArtifacts art{std::move(dataset), std::move(net), std::move(ith)};
  art.test_accuracy = model::evaluate_accuracy(art.model, art.dataset.test);
  art.ith_test_accuracy =
      core::evaluate_ith(art.model, art.ith, art.dataset.test).accuracy;
  return art;
}

}  // namespace

std::vector<TaskArtifacts> prepare_suite_cached(const PrepareConfig& config,
                                                const std::string& cache_dir,
                                                std::size_t max_tasks) {
  std::filesystem::create_directories(cache_dir);
  std::vector<data::TaskDataset> datasets =
      data::build_joint_suite(config.dataset);
  if (max_tasks > 0 && max_tasks < datasets.size()) {
    datasets.resize(max_tasks);
  }
  std::vector<TaskArtifacts> suite;
  suite.reserve(datasets.size());
  for (data::TaskDataset& ds : datasets) {
    const std::string path = cache_dir + "/" + cache_key(config, ds.id);
    if (std::filesystem::exists(path)) {
      model::MemN2N net = model::load_model_file(path);
      if (net.config().vocab_size == ds.vocab_size()) {
        suite.push_back(
            finish_from_model(std::move(ds), std::move(net), config));
        continue;
      }
      // Stale cache (data generator changed): fall through and retrain.
    }
    TaskArtifacts art = finish_artifacts(std::move(ds), config);
    model::save_model_file(path, art.model);
    suite.push_back(std::move(art));
  }
  return suite;
}

bool suite_cache_complete(const PrepareConfig& config,
                          const std::string& cache_dir,
                          std::size_t max_tasks) {
  const std::vector<data::TaskId>& tasks = data::all_tasks();
  const std::size_t count =
      max_tasks > 0 ? std::min(max_tasks, tasks.size()) : tasks.size();
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::filesystem::exists(cache_dir + "/" +
                                 cache_key(config, tasks[i]))) {
      return false;
    }
  }
  return true;
}

MeasurementRow measure_baseline(const BaselineConfig& baseline,
                                const TaskArtifacts& artifacts,
                                std::size_t repetitions) {
  const BaselineResult r = run_baseline(baseline, artifacts.model,
                                        artifacts.dataset.test, repetitions);
  MeasurementRow row;
  row.config_name = baseline.name;
  row.energy = r.energy;
  row.accuracy = r.accuracy();
  return row;
}

MeasurementRow measure_fpga(const TaskArtifacts& artifacts,
                            const FpgaRunOptions& options,
                            const power::FpgaPowerConfig& power_config) {
  accel::AccelConfig cfg;
  cfg.clock_hz = options.clock_hz;
  cfg.ith_enabled = options.ith;
  cfg.use_index_ordering = options.index_ordering;
  if (options.link) {
    cfg.link = *options.link;
  }

  const accel::DeviceProgram program = accel::compile_model(
      artifacts.model, options.ith ? &artifacts.ith : nullptr);
  const accel::Accelerator device(cfg, program);
  const accel::RunResult run = device.run(artifacts.dataset.test);

  const power::FpgaPowerModel power_model(power_config);
  const power::FpgaPowerReport power = power_model.estimate(run,
                                                            options.clock_hz);

  // FLOP numerator: the model's nominal inference FLOPs (identical across
  // configurations at a given workload, the paper's convention).
  std::uint64_t flops = 0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < artifacts.dataset.test.size(); ++i) {
    const data::EncodedStory& story = artifacts.dataset.test[i];
    flops += model::count_flops(story, artifacts.model.config()).total();
    if (run.stories[i].prediction == story.answer) {
      ++correct;
    }
  }

  const auto reps = static_cast<double>(options.repetitions);
  MeasurementRow row;
  row.config_name =
      "FPGA " + std::to_string(static_cast<int>(options.clock_hz / 1.0e6)) +
      " MHz" + (options.ith ? " + ITH" : "");
  row.energy.seconds = run.seconds * reps;
  row.energy.watts = power.mean_watts;
  row.energy.flops =
      flops * static_cast<std::uint64_t>(options.repetitions);
  row.accuracy = static_cast<double>(correct) /
                 static_cast<double>(artifacts.dataset.test.size());
  row.mean_output_probes = run.mean_output_probes();
  row.early_exit_rate = run.early_exit_rate();
  row.link_active_seconds =
      static_cast<double>(run.link_active_cycles) / options.clock_hz * reps;
  return row;
}

namespace {

/// Compiles every suite task into the served-model registry (the same
/// build for a bare Server and for every cluster instance).
std::vector<serve::ServedModel> build_served_models(
    const std::vector<TaskArtifacts>& suite, const ServingOptions& options) {
  std::vector<serve::ServedModel> models;
  models.reserve(suite.size());
  for (const TaskArtifacts& art : suite) {
    serve::ServedModel model;
    model.program =
        accel::compile_model(art.model, options.ith ? &art.ith : nullptr);
    model.stories = art.dataset.test;
    models.push_back(std::move(model));
  }
  return models;
}

/// Lowers the harness-level ServingOptions into a full ServerConfig —
/// shared by measure_serving (one server) and measure_cluster (the
/// per-instance template).
serve::ServerConfig build_server_config(const ServingOptions& options) {
  accel::AccelConfig accel;
  accel.clock_hz = options.clock_hz;
  accel.ith_enabled = options.ith;

  serve::TrafficConfig traffic;
  traffic.process = options.process;
  traffic.mean_interarrival_cycles = options.mean_interarrival_cycles;
  traffic.diurnal_amplitude = options.diurnal_amplitude;
  traffic.diurnal_period_cycles = options.diurnal_period_cycles;
  traffic.trace = options.trace;
  traffic.seed = options.seed;

  serve::SloConfig slo;
  slo.default_deadline_cycles = options.slo_default_deadline_cycles;
  slo.per_task = options.slo_per_task;

  serve::BatcherConfig batcher;
  batcher.max_batch = options.max_batch;
  batcher.max_wait_cycles = options.max_wait_cycles;

  serve::SchedulerConfig scheduler;
  scheduler.devices = options.pool_devices;
  scheduler.dedicated_devices = options.dedicated_devices;
  scheduler.work_stealing = options.work_stealing;
  scheduler.eviction = options.eviction;
  scheduler.workers = options.workers;
  scheduler.affinity_speculation = options.affinity_speculation;
  scheduler.cache_capacity = options.cache_capacity;
  scheduler.cycle_cache = options.cycle_cache;

  // tenants()/slo()/policy() after traffic()/scheduler(): the block
  // setters replace their whole config, the granular ones just a slice.
  return serve::ServingOptions()
      .accel(accel)
      .traffic(std::move(traffic))
      .admission(options.admission)
      .batcher(batcher)
      .scheduler(std::move(scheduler))
      .tenants(options.tenants)
      .slo(std::move(slo))
      .policy(options.policy)
      .metrics(options.metrics)
      .trace_recorder(options.trace_recorder)
      .build();
}

}  // namespace

ServingMeasurement measure_serving(const std::vector<TaskArtifacts>& suite,
                                   const ServingOptions& options) {
  if (suite.empty()) {
    throw std::invalid_argument("measure_serving: empty suite");
  }

  const serve::Server server(build_server_config(options),
                             build_served_models(suite, options));

  ServingMeasurement measurement;
  measurement.config_name =
      "serve N=" + std::to_string(options.pool_devices) +
      " B=" + std::to_string(options.max_batch) + " ia=" +
      std::to_string(static_cast<long long>(
          options.mean_interarrival_cycles)) +
      "cy " + serve::scheduler_policy_name(options.policy) +
      (options.ith ? " + ITH" : "");
  if (!options.tenants.empty()) {
    measurement.config_name +=
        " T=" + std::to_string(options.tenants.size());
  }
  if (options.workers > 0) {
    measurement.config_name += " W=" + std::to_string(options.workers);
  }
  if (options.workers > 0 || options.cycle_cache != nullptr) {
    measurement.config_name += " +cache";
  }
  measurement.report = server.run(options.requests);
  return measurement;
}

ClusterMeasurement measure_cluster(const std::vector<TaskArtifacts>& suite,
                                   const ServingOptions& options,
                                   const ClusterServingOptions& cluster_options) {
  if (suite.empty()) {
    throw std::invalid_argument("measure_cluster: empty suite");
  }

  // The registry outlives the fleet: instances hold references, each
  // with its own device pool.
  const std::vector<serve::ServedModel> models =
      build_served_models(suite, options);

  cluster::ClusterConfig config;
  config.instances = cluster_options.instances;
  config.server = build_server_config(options);
  config.router = cluster_options.router;
  config.autoscaler = cluster_options.autoscaler;
  config.fleet_threads = cluster_options.fleet_threads;
  config.cache_segments = cluster_options.cache_segments;

  cluster::Cluster fleet(std::move(config), models);

  ClusterMeasurement measurement;
  measurement.config_name =
      "cluster x" + std::to_string(cluster_options.instances) + " " +
      cluster::router_policy_name(cluster_options.router.kind) +
      " N=" + std::to_string(options.pool_devices) +
      " B=" + std::to_string(options.max_batch) +
      (cluster_options.autoscaler.enabled ? " +autoscale" : "") +
      (options.workers > 0 ? " W=" + std::to_string(options.workers) : "") +
      (cluster_options.fleet_threads > 1
           ? " F=" + std::to_string(cluster_options.fleet_threads)
           : "");

  const auto start = std::chrono::steady_clock::now();
  measurement.report = fleet.run(options.requests);
  measurement.host_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return measurement;
}

}  // namespace mann::runtime
