#include "runtime/baseline.hpp"

#include "model/flops.hpp"

namespace mann::runtime {

BaselineConfig cpu_baseline() {
  BaselineConfig c;
  c.name = "CPU";
  // i9-7900X through a dynamic-graph framework: ~5 us per op dispatch
  // (interpreter + allocator on the critical path), BLAS-1/2-bound
  // arithmetic on tiny operands. Slightly slower per story than the GPU,
  // matching Table I's CPU/GPU time ratio of ~1.07.
  c.dispatch_seconds = 5.4e-6;
  c.flops_per_second = 1.2e9;
  c.active_watts = 23.28;
  c.setup_seconds = 0.05;  // graph/session warmup
  return c;
}

BaselineConfig gpu_baseline() {
  BaselineConfig c;
  c.name = "GPU";
  // TITAN V: kernel-launch bound on bAbI-sized layers (~5.6 us per
  // launch+sync through the framework); arithmetic itself is effectively
  // free at these sizes. Lands Table I's ~113 us/story operating point.
  c.dispatch_seconds = 5.65e-6;
  c.flops_per_second = 2.0e12;
  c.active_watts = 45.36;
  // Warm CUDA context per task; the MANN model H2D copy is tiny.
  c.setup_seconds = 0.08;
  return c;
}

std::uint64_t dispatches_per_story(
    const model::ModelConfig& config) noexcept {
  return 3 + static_cast<std::uint64_t>(config.hops) * 5 + 2;
}

BaselineResult run_baseline(const BaselineConfig& config,
                            const model::MemN2N& model,
                            std::span<const data::EncodedStory> stories,
                            std::size_t repetitions) {
  BaselineResult result;
  result.stories = stories.size();

  std::uint64_t total_flops = 0;
  double arithmetic_seconds = 0.0;
  for (const data::EncodedStory& story : stories) {
    // Functional pass: real predictions, real accuracy.
    if (model.predict(story) == static_cast<std::size_t>(story.answer)) {
      ++result.correct;
    }
    const auto fb = model::count_flops(story, model.config());
    total_flops += fb.total();
    arithmetic_seconds +=
        static_cast<double>(fb.total()) / config.flops_per_second;
  }
  const double dispatch_seconds =
      static_cast<double>(dispatches_per_story(model.config())) *
      static_cast<double>(stories.size()) * config.dispatch_seconds;

  const auto reps = static_cast<double>(repetitions);
  result.energy.seconds =
      config.setup_seconds + (arithmetic_seconds + dispatch_seconds) * reps;
  result.energy.watts = config.active_watts;
  result.energy.flops =
      total_flops * static_cast<std::uint64_t>(repetitions);
  return result;
}

}  // namespace mann::runtime
