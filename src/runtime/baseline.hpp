// CPU/GPU baseline executors.
//
// Substitution note (DESIGN.md): the paper times an i9-7900X and a TITAN V
// running the same MANN inference through a deep-learning framework. We
// replace those testbeds with analytical executors that (a) run the exact
// same functional model (so accuracies are identical by construction) and
// (b) charge time through a two-parameter cost model:
//
//     t(story) = dispatches(story) * dispatch_seconds + flops / flops_per_s
//
// On bAbI-sized layers both real devices are dispatch-bound — per-op
// framework/kernel-launch overhead dwarfs the arithmetic — which is exactly
// why the paper's GPU is barely faster than its CPU and why the streaming
// FPGA wins. The defaults below land the published operating points
// (~113 us/story GPU, ~121 us/story CPU) and the rest of the comparison is
// derived, not assumed.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "data/types.hpp"
#include "model/memn2n.hpp"
#include "power/energy.hpp"

namespace mann::runtime {

/// Cost-model parameters of a host baseline.
struct BaselineConfig {
  std::string name;
  double dispatch_seconds = 0.0;  ///< per framework-op overhead
  double flops_per_second = 1.0;  ///< effective arithmetic throughput
  double active_watts = 0.0;      ///< measured draw while running
  /// One-time setup per workload (model H2D copy, graph build, ...).
  double setup_seconds = 0.0;
};

/// The paper's two baselines with calibrated constants.
[[nodiscard]] BaselineConfig cpu_baseline();
[[nodiscard]] BaselineConfig gpu_baseline();

/// Framework ops dispatched for one story's forward pass:
/// 3 embedding gathers + per-hop {matvec, softmax, read, matvec, add}
/// + output matmul + argmax.
[[nodiscard]] std::uint64_t dispatches_per_story(
    const model::ModelConfig& config) noexcept;

/// Result of a baseline run.
struct BaselineResult {
  power::EnergyReport energy;     ///< time, power, flops
  std::size_t correct = 0;        ///< functional accuracy bookkeeping
  std::size_t stories = 0;

  [[nodiscard]] double accuracy() const noexcept {
    return stories > 0
               ? static_cast<double>(correct) / static_cast<double>(stories)
               : 0.0;
  }
};

/// Functionally runs the model on every story (predictions are real) and
/// charges modeled time/energy. `repetitions` mirrors the paper's 100
/// timing repetitions: time and energy scale, the functional pass runs once.
[[nodiscard]] BaselineResult run_baseline(
    const BaselineConfig& config, const model::MemN2N& model,
    std::span<const data::EncodedStory> stories, std::size_t repetitions = 1);

}  // namespace mann::runtime
