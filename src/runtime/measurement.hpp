// Experiment harness: prepares per-task artifacts (dataset -> trained
// model -> ITH calibration -> device program) and measures every
// configuration of Table I / Fig. 4.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "accel/accelerator.hpp"
#include "cluster/cluster.hpp"
#include "core/ith.hpp"
#include "data/dataset.hpp"
#include "model/memn2n.hpp"
#include "model/trainer.hpp"
#include "power/power_model.hpp"
#include "runtime/baseline.hpp"
#include "serve/server.hpp"

namespace mann::runtime {

/// Everything needed to measure one bAbI task.
struct TaskArtifacts {
  data::TaskDataset dataset;
  model::MemN2N model;
  core::InferenceThresholding ith;
  float test_accuracy = 0.0F;
  float ith_test_accuracy = 0.0F;
};

/// Knobs for artifact preparation (shared across all benches so every
/// experiment sees the same trained models).
struct PrepareConfig {
  data::DatasetConfig dataset;
  model::ModelConfig model;    ///< vocab_size is filled per task
  model::TrainConfig train;
  core::IthConfig ith;
  std::uint64_t init_seed = 1234;
};

/// Sensible defaults: E=24, 3 hops, 30 epochs, ρ=1.0.
[[nodiscard]] PrepareConfig default_prepare_config();

/// Builds dataset, trains the model, calibrates ITH.
[[nodiscard]] TaskArtifacts prepare_task(data::TaskId id,
                                         const PrepareConfig& config);

/// Prepares all 20 tasks over the joint vocabulary (the Table I / Fig. 4
/// evaluation regime: output dimension |I| = joint vocab ≫ |E|).
/// Expensive (trains 20 models); benches call it once and reuse.
[[nodiscard]] std::vector<TaskArtifacts> prepare_suite(
    const PrepareConfig& config);

/// Like prepare_suite but caches trained models under `cache_dir`
/// (created if missing). The cache key encodes the configuration knobs
/// that affect training, so changing them retrains instead of serving a
/// stale model. ITH calibration is recomputed (cheap, deterministic).
/// `max_tasks` > 0 finishes only the first that many tasks of the joint
/// suite (the joint vocabulary still spans all 20, so cached models stay
/// compatible); 0 means the whole suite.
[[nodiscard]] std::vector<TaskArtifacts> prepare_suite_cached(
    const PrepareConfig& config, const std::string& cache_dir,
    std::size_t max_tasks = 0);

/// True when every model the (possibly task-limited) suite would load is
/// already cached under `cache_dir` — the "no training required" probe
/// benches use to decide between the shared cache and --train-fallback.
[[nodiscard]] bool suite_cache_complete(const PrepareConfig& config,
                                        const std::string& cache_dir,
                                        std::size_t max_tasks = 0);

/// One measured configuration (a row of Table I).
struct MeasurementRow {
  std::string config_name;
  power::EnergyReport energy;
  double accuracy = 0.0;
  /// FPGA-only extras (zero elsewhere).
  double mean_output_probes = 0.0;
  double early_exit_rate = 0.0;
  double link_active_seconds = 0.0;
};

/// FPGA measurement options.
struct FpgaRunOptions {
  double clock_hz = 100.0e6;
  bool ith = false;
  bool index_ordering = true;
  std::size_t repetitions = 1;
  /// When set, overrides the default host-link model (the ablate_host_link
  /// bench and the §V "no interface bound" estimate use this).
  std::optional<accel::HostLinkConfig> link;
};

/// Measures a baseline (CPU/GPU) on the task's test split.
[[nodiscard]] MeasurementRow measure_baseline(
    const BaselineConfig& baseline, const TaskArtifacts& artifacts,
    std::size_t repetitions = 1);

/// Measures the accelerator on the task's test split.
[[nodiscard]] MeasurementRow measure_fpga(
    const TaskArtifacts& artifacts, const FpgaRunOptions& options,
    const power::FpgaPowerConfig& power_config = {});

/// Serving measurement options: the mann::serve runtime over a set of
/// prepared tasks (each task is one served model; traffic mixes them).
struct ServingOptions {
  double clock_hz = 100.0e6;
  std::size_t pool_devices = 2;
  std::size_t dedicated_devices = 0;  ///< 0 = fully shared pool
  std::size_t max_batch = 8;
  sim::Cycle max_wait_cycles = 200'000;
  serve::ArrivalProcess process = serve::ArrivalProcess::kPoisson;
  double mean_interarrival_cycles = 50'000.0;
  /// Diurnal process only: rate modulation amplitude [0,1) and period.
  double diurnal_amplitude = 0.5;
  double diurnal_period_cycles = 10.0e6;
  /// Trace replay only: the recorded arrival schedule.
  std::vector<serve::TraceEntry> trace;
  /// Per-task completion deadlines (sim::kNever = no SLO). `slo_per_task`
  /// entries of 0 fall back to the default.
  sim::Cycle slo_default_deadline_cycles = sim::kNever;
  std::vector<sim::Cycle> slo_per_task;
  /// Tenant registry (empty = single-tenant) and the admission-control
  /// knobs; a default AdmissionConfig is transparent.
  std::vector<serve::TenantConfig> tenants;
  serve::AdmissionConfig admission;
  /// Dispatch policy, work-stealing and model-eviction policy.
  serve::SchedulerPolicy policy = serve::SchedulerPolicy::kEdf;
  bool work_stealing = true;
  serve::EvictionPolicyKind eviction = serve::EvictionPolicyKind::kLru;
  std::size_t requests = 500;
  std::uint64_t seed = 2019;
  bool ith = false;
  /// Host execution: worker threads simulating batches ahead of the
  /// serving clock (0 = the sequential path) and the service-cycle
  /// cache. The simulated report is bit-identical either way; only wall
  /// clock moves.
  std::size_t workers = 0;
  /// Affinity-aware warm/cold speculation prediction (the bench's
  /// --no-affinity flag flips it off to restore the legacy heuristic).
  bool affinity_speculation = true;
  std::size_t cache_capacity = 1024;
  /// External cache shared across measure_serving calls (non-owning);
  /// when null and workers > 0 the scheduler owns a private one.
  accel::ServiceCycleCache* cycle_cache = nullptr;
  /// Observability sinks threaded into the server (non-owning, both
  /// optional; no-ops when mann::obs is compiled out). `trace_recorder`
  /// is the lifecycle-span sink — distinct from `trace`, the replayed
  /// arrival schedule above.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace_recorder = nullptr;
};

/// One serving row (sits beside the Table-I rows in reports).
struct ServingMeasurement {
  std::string config_name;
  serve::ServingReport report;
};

/// Runs the serving stack over the suite's test splits and reports
/// throughput, latency percentiles, utilization and serving accuracy.
[[nodiscard]] ServingMeasurement measure_serving(
    const std::vector<TaskArtifacts>& suite, const ServingOptions& options);

/// Fleet-level knobs layered on top of ServingOptions: the per-instance
/// server template comes from the ServingOptions, these choose how many
/// instances to stand up, how the router places arrivals, and whether
/// the diurnal autoscaler is watching.
struct ClusterServingOptions {
  std::size_t instances = 4;
  cluster::RouterConfig router;
  cluster::AutoscalerConfig autoscaler;
  /// Host threads advancing instances between routing barriers (0/1 =
  /// sequential). Moves only wall clock, never a simulated number.
  std::size_t fleet_threads = 0;
  /// Segments of the fleet-shared cycle cache (0 = no shared cache).
  std::size_t cache_segments = 0;
};

/// One cluster row: the fleet report plus the host wall clock spent
/// driving it (the ClusterReport itself is purely simulated).
struct ClusterMeasurement {
  std::string config_name;
  double host_wall_seconds = 0.0;
  cluster::ClusterReport report;
};

/// Runs the mann::cluster routing tier over the suite: N instances built
/// from the same ServingOptions template, arrivals from its traffic
/// block routed across them. The report is a pure function of
/// (options, cluster_options) — worker counts move only wall clock.
[[nodiscard]] ClusterMeasurement measure_cluster(
    const std::vector<TaskArtifacts>& suite, const ServingOptions& options,
    const ClusterServingOptions& cluster_options);

}  // namespace mann::runtime
