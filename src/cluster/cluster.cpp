#include "cluster/cluster.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "accel/service_cycle_cache.hpp"
#include "cluster/fleet_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/request.hpp"

namespace mann::cluster {

namespace {

/// Instances get disjoint request-id ranges: instance i owns
/// [i * kIdStride, (i+1) * kIdStride). Instance 0 keeps the 0-based
/// range, so a cluster-of-1 numbers requests exactly like a bare server.
constexpr serve::RequestId kIdStride = serve::RequestId{1} << 40;

/// Exact percentile over an unsorted sample set (sorts in place).
/// Nearest-rank, matching trace_summary.py's convention.
[[nodiscard]] double percentile(std::vector<double>& values, double q) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const auto rank = std::min(
      values.size() - 1, static_cast<std::size_t>(
                             q * static_cast<double>(values.size())));
  return values[rank];
}

[[nodiscard]] serve::LatencySummary summarize(std::vector<double> samples,
                                              double clock_hz) {
  serve::LatencySummary s;
  if (samples.empty()) {
    return s;
  }
  double sum = 0.0;
  for (const double v : samples) {
    sum += v;
  }
  s.mean_cycles = sum / static_cast<double>(samples.size());
  s.p50_cycles = percentile(samples, 0.50);
  s.p95_cycles = percentile(samples, 0.95);
  s.p99_cycles = percentile(samples, 0.99);
  s.max_cycles = samples.back();
  s.mean_seconds = s.mean_cycles / clock_hz;
  s.p50_seconds = s.p50_cycles / clock_hz;
  s.p95_seconds = s.p95_cycles / clock_hz;
  s.p99_seconds = s.p99_cycles / clock_hz;
  s.max_seconds = s.max_cycles / clock_hz;
  return s;
}

/// Jain's fairness index over per-instance completed counts.
[[nodiscard]] double jain_index(const std::vector<InstanceReport>& reports) {
  if (reports.size() < 2) {
    return 1.0;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const InstanceReport& r : reports) {
    const auto x = static_cast<double>(r.report.completed);
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) {
    return 1.0;
  }
  return (sum * sum) / (static_cast<double>(reports.size()) * sum_sq);
}

}  // namespace

/// One fleet slot: the session plus its routing/energy bookkeeping.
struct Cluster::Instance {
  std::unique_ptr<serve::ServerSession> session;
  std::uint64_t routed = 0;
  bool active = true;
  /// Parked by the autoscaler but not yet observed idle — still burning
  /// watts while it drains.
  bool pending_park = false;
  sim::Cycle active_since = 0;
  sim::Cycle active_cycles = 0;  ///< closed windows only
};

Cluster::Cluster(ClusterConfig config,
                 const std::vector<serve::ServedModel>& models)
    : config_(std::move(config)),
      policy_(make_router_policy(config_.router)),
      autoscaler_(config_.autoscaler, std::max<std::size_t>(
                                          1, config_.instances)) {
  if (config_.instances == 0) {
    throw std::invalid_argument("Cluster: needs at least one instance");
  }
  // Callers set ServerConfig::metrics; the scheduler-level copy only
  // happens inside each ServerSession's constructor, which runs after
  // the fleet cache and pool are built here.
  obs::MetricsRegistry* metrics = config_.server.scheduler.metrics
                                      ? config_.server.scheduler.metrics
                                      : config_.server.metrics;
  if (config_.cache_segments > 0 &&
      config_.server.scheduler.cycle_cache == nullptr) {
    // Fleet-shared memoization tier: one sharded cache the whole fleet
    // dispatches through, so a workload one instance already simulated
    // replays everywhere. Built before (and destroyed after) the
    // sessions that point at it.
    const std::size_t capacity =
        std::max<std::size_t>(1, config_.server.scheduler.cache_capacity) *
        config_.instances;
    fleet_cache_ = std::make_unique<accel::ServiceCycleCache>(
        capacity, metrics, config_.cache_segments);
    config_.server.scheduler.cycle_cache = fleet_cache_.get();
  }
  if (config_.fleet_threads > 1) {
    // More threads than instances cannot help: each barrier has exactly
    // one task per instance.
    pool_ = std::make_unique<FleetPool>(
        std::min(config_.fleet_threads, config_.instances), metrics);
  }
  instances_.reserve(config_.instances);
  for (std::size_t i = 0; i < config_.instances; ++i) {
    serve::SessionOptions options;
    options.total_requests = 0;  // arrivals come through the router
    options.auto_drain = false;
    options.collect_completions = true;
    options.first_id = static_cast<serve::RequestId>(i) * kIdStride;
    auto instance = std::make_unique<Instance>();
    instance->session = std::make_unique<serve::ServerSession>(
        config_.server, models, options);
    instances_.push_back(std::move(instance));
  }
  workloads_.reserve(models.size());
  for (std::size_t t = 0; t < models.size(); ++t) {
    workloads_.push_back({t, models[t].stories});
  }
  policy_->set_topology(active_set());
}

Cluster::~Cluster() = default;

std::vector<InstanceId> Cluster::active_set() const {
  std::vector<InstanceId> active;
  active.reserve(instances_.size());
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (instances_[i]->active) {
      active.push_back(i);
    }
  }
  return active;
}

std::size_t Cluster::active_instances() const noexcept {
  std::size_t n = 0;
  for (const auto& instance : instances_) {
    n += instance->active ? 1 : 0;
  }
  return n;
}

std::vector<InstanceStatus> Cluster::statuses() const {
  std::vector<InstanceStatus> status;
  status.reserve(instances_.size());
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    const serve::SessionInfo info = instances_[i]->session->info();
    InstanceStatus s;
    s.id = i;
    s.active = instances_[i]->active;
    s.queue_depth =
        info.batcher_pending + info.scheduler_pending + info.in_flight;
    s.pending_cost_cycles = instances_[i]->session->pending_cost_cycles();
    status.push_back(s);
  }
  return status;
}

void Cluster::settle_parked(sim::Cycle cycle) {
  for (auto& instance : instances_) {
    if (instance->pending_park && instance->session->idle()) {
      if (cycle > instance->active_since) {
        instance->active_cycles += cycle - instance->active_since;
      }
      instance->pending_park = false;
    }
  }
}

void Cluster::apply_target_active(std::size_t target, sim::Cycle cycle) {
  obs::TraceRecorder* trace = config_.server.trace;
  bool changed = false;
  // Scale up: wake the lowest-id parked instance (its model residency and
  // cycle caches survive parking — a warm restart).
  for (std::size_t i = 0;
       active_instances() < target && i < instances_.size(); ++i) {
    Instance& instance = *instances_[i];
    if (instance.active) {
      continue;
    }
    instance.active = true;
    if (instance.pending_park) {
      instance.pending_park = false;  // window never closed; keep it open
    } else {
      instance.active_since = cycle;
    }
    changed = true;
    if (trace != nullptr) {
      trace->instant(obs::Domain::kSim, obs::kTrackRouter, "scale", cycle,
                     "up", static_cast<std::int64_t>(i));
    }
  }
  // Scale down: park the highest-id active instance; it drains what it
  // holds and its active window closes when it is observed idle.
  for (std::size_t i = instances_.size();
       active_instances() > target && i > 0; --i) {
    Instance& instance = *instances_[i - 1];
    if (!instance.active) {
      continue;
    }
    instance.active = false;
    instance.pending_park = true;
    changed = true;
    if (trace != nullptr) {
      trace->instant(obs::Domain::kSim, obs::kTrackRouter, "scale", cycle,
                     "down", static_cast<std::int64_t>(i - 1));
    }
  }
  if (changed) {
    policy_->set_topology(active_set());
  }
}

Cluster::Submission Cluster::submit(const serve::SubmitRequest& request) {
  if (finalized_) {
    throw std::logic_error("Cluster: submit after finalize()");
  }
  const sim::Cycle at =
      std::max({request.at_cycle, clock_, last_arrival_});
  if (const auto target = autoscaler_.observe(at, active_instances())) {
    apply_target_active(*target, at);
  }
  ++offered_;
  RouteRequest route{request.task, request.tenant, at};
  const std::optional<InstanceId> choice = policy_->route(route, statuses());
  obs::TraceRecorder* trace = config_.server.trace;
  if (!choice) {
    ++router_shed_;
    if (trace != nullptr) {
      trace->instant(obs::Domain::kSim, obs::kTrackRouter, "router_shed", at,
                     policy_->name(),
                     static_cast<std::int64_t>(request.task),
                     static_cast<std::int64_t>(request.tenant));
    }
    return {std::nullopt, 0};
  }
  Instance& instance = *instances_[*choice];
  serve::SubmitRequest forwarded = request;
  forwarded.at_cycle = at;
  const serve::RequestId id = instance.session->submit(forwarded);
  ++instance.routed;
  last_arrival_ = at;
  if (trace != nullptr) {
    trace->instant(obs::Domain::kSim,
                   obs::kTrackInstanceBase +
                       static_cast<std::uint32_t>(*choice),
                   "route", at, policy_->name(),
                   static_cast<std::int64_t>(request.task),
                   static_cast<std::int64_t>(request.tenant), id);
  }
  return {choice, id};
}

bool Cluster::step_until(sim::Cycle limit) {
  const std::size_t n = instances_.size();
  bool quiescent = true;
  sim::Cycle reached = limit;
  if (pool_ != nullptr) {
    // Fan the advance out across the fleet pool: between barriers the
    // sessions share no mutable state (obs sinks are thread-safe, a
    // shared cycle cache is internally locked), and each task writes
    // only its own slot, so the join-then-fold below reads exactly what
    // a sequential walk would have computed — in the same order.
    std::vector<unsigned char> quiet(n, 1);
    std::vector<sim::Cycle> now(n, 0);
    pool_->run(n, [&](std::size_t i) {
      serve::ServerSession& session = *instances_[i]->session;
      quiet[i] = session.step_until(limit) ? 1 : 0;
      now[i] = session.now();
    });
    for (std::size_t i = 0; i < n; ++i) {
      quiescent = quiet[i] != 0 && quiescent;
      if (limit == sim::kNever) {
        reached = std::max(reached == sim::kNever ? 0 : reached, now[i]);
      }
    }
  } else {
    for (auto& instance : instances_) {
      quiescent = instance->session->step_until(limit) && quiescent;
      if (limit == sim::kNever) {
        reached = std::max(reached == sim::kNever ? 0 : reached,
                           instance->session->now());
      }
    }
  }
  clock_ = std::max(clock_, reached == sim::kNever ? clock_ : reached);
  settle_parked(clock_);
  return quiescent;
}

void Cluster::drain() {
  for (auto& instance : instances_) {
    instance->session->drain();
  }
}

std::vector<ClusterCompletion> Cluster::poll_completions() {
  std::vector<ClusterCompletion> merged;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    for (serve::Completion& completion :
         instances_[i]->session->poll_completions()) {
      if (serve::outcome_is_completion(completion.outcome)) {
        latency_samples_.push_back(static_cast<double>(
            completion.response.latency_cycles()));
        queue_wait_samples_.push_back(static_cast<double>(
            completion.response.queue_cycles()));
      }
      merged.push_back({i, std::move(completion)});
    }
  }
  // Per-instance windows are already (cycle, id)-sorted; one global sort
  // interleaves the fleet deterministically (ids are disjoint, so the
  // (cycle, id) key is unique).
  std::sort(merged.begin(), merged.end(),
            [](const ClusterCompletion& a, const ClusterCompletion& b) {
              if (a.completion.cycle != b.completion.cycle) {
                return a.completion.cycle < b.completion.cycle;
              }
              return a.completion.response.id < b.completion.response.id;
            });
  return merged;
}

ClusterReport Cluster::finalize() {
  if (finalized_) {
    throw std::logic_error("Cluster: finalize() called twice");
  }
  drain();
  step_until(sim::kNever);
  (void)poll_completions();  // fold the tail into the percentile samples
  finalized_ = true;
  std::vector<serve::ServingReport> reports;
  reports.reserve(instances_.size());
  sim::Cycle fleet_makespan = 0;
  for (auto& instance : instances_) {
    reports.push_back(instance->session->finalize());
    fleet_makespan = std::max(fleet_makespan, reports.back().makespan_cycles);
  }
  // Close the remaining active windows: the fleet is powered until its
  // last completion (an idle-but-active instance is the fixed fleet's
  // whole energy problem).
  for (auto& instance : instances_) {
    if (instance->active || instance->pending_park) {
      if (fleet_makespan > instance->active_since) {
        instance->active_cycles += fleet_makespan - instance->active_since;
      }
      instance->pending_park = false;
    }
  }
  return aggregate(std::move(reports), fleet_makespan);
}

ClusterReport Cluster::aggregate(std::vector<serve::ServingReport> reports,
                                 sim::Cycle fleet_makespan) {
  const double clock_hz = config_.server.accel.clock_hz;
  ClusterReport out;
  out.instances = instances_.size();
  out.policy = policy_->name();
  out.offered = offered_;
  out.router_shed = router_shed_;
  out.makespan_cycles = fleet_makespan;
  out.seconds = static_cast<double>(fleet_makespan) / clock_hz;
  out.scale_ups = autoscaler_.scale_ups();
  out.scale_downs = autoscaler_.scale_downs();

  std::uint64_t batches_out = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_lookups = 0;
  sim::Cycle active_cycle_sum = 0;
  const double device_watts =
      config_.server.power.static_watts +
      config_.server.power.clock_watts_per_hz * clock_hz;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    serve::ServingReport& report = reports[i];
    out.completed += report.completed;
    out.rejected += report.rejected;
    out.deadline_total += report.deadline_total;
    out.deadline_missed += report.deadline_missed;
    out.model_uploads += report.model_uploads;
    batches_out += report.batching.batches_out;
    cache_hits += report.cycle_cache.hits;
    cache_lookups += report.cycle_cache.hits + report.cycle_cache.waits +
                     report.cycle_cache.misses;
    active_cycle_sum += instances_[i]->active_cycles;

    out.energy.dynamic_joules += report.energy.dynamic_joules;
    out.energy.link_joules += report.energy.link_joules;
    const double active_seconds =
        static_cast<double>(instances_[i]->active_cycles) / clock_hz;
    out.energy.static_joules +=
        device_watts * active_seconds *
        static_cast<double>(report.devices.size());

    InstanceReport slice;
    slice.id = i;
    slice.routed = instances_[i]->routed;
    slice.active_cycles = instances_[i]->active_cycles;
    slice.report = std::move(report);
    out.instance_reports.push_back(std::move(slice));
  }
  out.energy.total_joules = out.energy.dynamic_joules +
                            out.energy.link_joules +
                            out.energy.static_joules;
  if (out.seconds > 0.0) {
    out.energy.mean_watts = out.energy.total_joules / out.seconds;
    out.throughput_stories_per_second =
        static_cast<double>(out.completed) / out.seconds;
  }
  if (out.completed > 0) {
    out.energy.per_inference_joules =
        out.energy.total_joules / static_cast<double>(out.completed);
  }
  out.deadline_hit_rate =
      out.deadline_total == 0
          ? 1.0
          : 1.0 - static_cast<double>(out.deadline_missed) /
                      static_cast<double>(out.deadline_total);
  out.instance_fairness = jain_index(out.instance_reports);
  if (batches_out > 0) {
    out.warm_dispatch_rate =
        1.0 - static_cast<double>(out.model_uploads) /
                  static_cast<double>(batches_out);
  }
  if (cache_lookups > 0) {
    out.cycle_cache_hit_rate = static_cast<double>(cache_hits) /
                               static_cast<double>(cache_lookups);
  }
  if (fleet_makespan > 0) {
    out.mean_active_instances =
        static_cast<double>(active_cycle_sum) /
        static_cast<double>(fleet_makespan);
  }
  out.latency = summarize(std::move(latency_samples_), clock_hz);
  out.queue_wait = summarize(std::move(queue_wait_samples_), clock_hz);
  latency_samples_.clear();
  queue_wait_samples_.clear();
  return out;
}

ClusterReport Cluster::run(std::size_t total_requests) {
  if (ran_ || finalized_) {
    throw std::logic_error("Cluster: run() is single-shot");
  }
  ran_ = true;
  // The cluster-level generator shares the sessions' workload table, so
  // its arrival schedule, task/tenant draws and deadline stamps are
  // exactly what a bare Server::run would have produced; the chosen
  // instance re-draws the story from its own per-task cursor (which, for
  // a cluster of 1, walks identically to the generator's).
  serve::TrafficGenerator generator(config_.server.traffic, workloads_,
                                    total_requests);
  std::size_t since_poll = 0;
  while (generator.next_arrival() != sim::kNever) {
    const sim::Cycle at = generator.next_arrival();
    // Lockstep: the whole fleet reaches the (exclusive) arrival horizon
    // before the router looks at load — the decision sees every
    // completion strictly before the arrival, exactly like a bare
    // server's frontend does.
    step_until(at);
    const std::optional<serve::InferenceRequest> request =
        generator.poll(at);
    if (!request) {
      break;  // defensive; next_arrival promised an emission
    }
    serve::SubmitRequest submit_request;
    submit_request.task = request->task;
    submit_request.tenant = request->tenant;
    submit_request.at_cycle = request->enqueue_cycle;
    submit_request.deadline_cycles =
        request->deadline_cycle == sim::kNever
            ? sim::kNever
            : request->deadline_cycle - request->enqueue_cycle;
    (void)submit(submit_request);
    if (++since_poll >= 256) {
      (void)poll_completions();
      since_poll = 0;
    }
  }
  return finalize();
}

void Cluster::set_tenant(serve::TenantId tenant,
                         const serve::TenantConfig& config) {
  for (auto& instance : instances_) {
    instance->session->set_tenant(tenant, config);
  }
}

void Cluster::set_slo(const serve::SloConfig& slo) {
  for (auto& instance : instances_) {
    instance->session->set_slo(slo);
  }
}

bool Cluster::set_policy(serve::SchedulerPolicy policy) {
  bool ok = true;
  for (auto& instance : instances_) {
    ok = instance->session->set_policy(policy) && ok;
  }
  return ok;
}

bool Cluster::idle() const {
  for (const auto& instance : instances_) {
    if (!instance->session->idle()) {
      return false;
    }
  }
  return true;
}

ClusterInfo Cluster::info() const {
  ClusterInfo info;
  info.instances = instances_.size();
  info.active = active_instances();
  info.offered = offered_;
  info.router_shed = router_shed_;
  info.cycle = clock_;
  info.per_instance.reserve(instances_.size());
  for (const auto& instance : instances_) {
    info.per_instance.push_back(instance->session->info());
  }
  return info;
}

const char* Cluster::policy_name() const noexcept { return policy_->name(); }

namespace {

[[nodiscard]] bool summaries_identical(const serve::LatencySummary& a,
                                       const serve::LatencySummary& b) {
  // Exact double equality on purpose: both sides fold the same merged
  // stream in the same order, so any drift is a determinism bug.
  return a.mean_cycles == b.mean_cycles && a.p50_cycles == b.p50_cycles &&
         a.p95_cycles == b.p95_cycles && a.p99_cycles == b.p99_cycles &&
         a.max_cycles == b.max_cycles;
}

}  // namespace

bool simulated_cluster_reports_identical(const ClusterReport& a,
                                         const ClusterReport& b) {
  if (!(a.instances == b.instances && a.policy == b.policy &&
        a.offered == b.offered && a.completed == b.completed &&
        a.rejected == b.rejected && a.router_shed == b.router_shed &&
        a.makespan_cycles == b.makespan_cycles &&
        summaries_identical(a.latency, b.latency) &&
        summaries_identical(a.queue_wait, b.queue_wait) &&
        a.deadline_total == b.deadline_total &&
        a.deadline_missed == b.deadline_missed &&
        a.instance_fairness == b.instance_fairness &&
        a.model_uploads == b.model_uploads &&
        a.warm_dispatch_rate == b.warm_dispatch_rate &&
        a.energy.dynamic_joules == b.energy.dynamic_joules &&
        a.energy.link_joules == b.energy.link_joules &&
        a.energy.static_joules == b.energy.static_joules &&
        a.energy.per_inference_joules == b.energy.per_inference_joules &&
        a.mean_active_instances == b.mean_active_instances &&
        a.scale_ups == b.scale_ups && a.scale_downs == b.scale_downs &&
        a.instance_reports.size() == b.instance_reports.size())) {
    return false;
  }
  for (std::size_t i = 0; i < a.instance_reports.size(); ++i) {
    const InstanceReport& ia = a.instance_reports[i];
    const InstanceReport& ib = b.instance_reports[i];
    if (!(ia.id == ib.id && ia.routed == ib.routed &&
          ia.active_cycles == ib.active_cycles &&
          serve::simulated_reports_identical(ia.report, ib.report))) {
      return false;
    }
  }
  return true;
}

}  // namespace mann::cluster
