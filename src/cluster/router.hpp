// Cluster request routing: which server instance serves each arrival.
//
// A Router sits in front of N serve::ServerSession instances (see
// cluster.hpp) and maps every arriving request to one of them — or
// refuses it at the door when the policy's spill options are exhausted.
// Three policies ship behind the RouterPolicy interface:
//
//   kTaskAffinity  consistent-hash ring keyed by task id. The same task
//                  always lands on the same instance (until the active
//                  set changes), so each instance serves a small stable
//                  task subset and its device pool stays residency-warm:
//                  fewer model uploads, more warm-variant dispatches.
//                  Overflow spills ring-order to the next instance under
//                  the queue threshold, preserving ring locality.
//   kPowerOfTwo    power-of-two-choices least-loaded: sample two distinct
//                  active instances with the router's seeded RNG and take
//                  the one with the smaller (queue depth, pending cost)
//                  — the classic O(1) balancer whose max load is
//                  exponentially better than random assignment.
//   kTenantSpill   tenant-aware spill: every tenant has a home instance
//                  (isolation by default) and overflow routes through the
//                  tenant's designated spill set in order; only when the
//                  whole set is saturated is the request shed *at the
//                  router* (surfaced separately from instance-level
//                  sheds).
//
// Determinism contract: route() decides from simulated state only — the
// per-instance InstanceStatus snapshots are pure functions of the
// simulated timeline, and the kPowerOfTwo RNG is seeded — so for a fixed
// seed the full assignment sequence is byte-identical for any host
// worker count or machine. The tests assert exactly that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "numeric/random.hpp"
#include "serve/tenant.hpp"
#include "sim/types.hpp"

namespace mann::cluster {

using InstanceId = std::size_t;

/// Load snapshot of one instance at a routing decision point. All fields
/// are simulated quantities (see the determinism contract above).
struct InstanceStatus {
  InstanceId id = 0;
  bool active = true;  ///< autoscaler wants it serving new work
  /// Requests inside the instance: batcher lanes + scheduler queue
  /// (stories) + dispatched-but-incomplete.
  std::size_t queue_depth = 0;
  /// Pending work under the scheduler's cost model, in cycles.
  sim::Cycle pending_cost_cycles = 0;
};

/// One arrival, as the router sees it.
struct RouteRequest {
  std::size_t task = 0;
  serve::TenantId tenant = 0;
  sim::Cycle cycle = 0;  ///< arrival cycle (the decision timestamp)
};

enum class RouterPolicyKind : std::uint8_t {
  kTaskAffinity,  ///< consistent-hash task affinity
  kPowerOfTwo,    ///< power-of-two-choices least-loaded
  kTenantSpill,   ///< tenant home + designated spill set
};

[[nodiscard]] const char* router_policy_name(RouterPolicyKind kind) noexcept;

struct RouterConfig {
  RouterPolicyKind kind = RouterPolicyKind::kPowerOfTwo;
  /// Seeds the kPowerOfTwo sampler (the other policies are RNG-free).
  std::uint64_t seed = 2019;
  /// Ring replicas per instance (kTaskAffinity). More replicas smooth
  /// the key distribution at the cost of a larger ring.
  std::size_t virtual_nodes = 64;
  /// Queue depth at which kTaskAffinity / kTenantSpill consider an
  /// instance saturated and spill past it.
  std::size_t spill_queue_threshold = 64;
  /// kTenantSpill home instances, indexed by tenant id (wrapped). Empty =
  /// tenant t homes on active instance t % active_count.
  std::vector<InstanceId> tenant_home;
};

/// Routing strategy interface. Implementations are notified of topology
/// changes (autoscaling) via set_topology and must only ever return
/// instances from the current active set.
class RouterPolicy {
 public:
  virtual ~RouterPolicy() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Replaces the active instance set (ids ascending). Called once at
  /// startup and after every autoscaler decision.
  virtual void set_topology(const std::vector<InstanceId>& active) = 0;

  /// Picks an instance for `request`, or nullopt to shed at the router.
  /// `status` is indexed by InstanceId and covers the whole fleet
  /// (inactive instances included, so policies can see draining load).
  [[nodiscard]] virtual std::optional<InstanceId> route(
      const RouteRequest& request,
      const std::vector<InstanceStatus>& status) = 0;
};

[[nodiscard]] std::unique_ptr<RouterPolicy> make_router_policy(
    const RouterConfig& config);

/// The consistent-hash ring behind kTaskAffinity, exposed for tests and
/// tooling: owner(key) is stable under instance add/remove — only the
/// ring arcs adjacent to the changed instance move, ~K/N of K keys.
class HashRing {
 public:
  explicit HashRing(std::size_t virtual_nodes = 64)
      : virtual_nodes_(virtual_nodes == 0 ? 1 : virtual_nodes) {}

  void rebuild(const std::vector<InstanceId>& instances);
  [[nodiscard]] bool empty() const noexcept { return ring_.empty(); }
  /// Instance owning `key` (first ring point clockwise of hash(key)).
  [[nodiscard]] InstanceId owner(std::uint64_t key) const;
  /// Ring position of the owner — the spill walk starts here.
  [[nodiscard]] std::size_t owner_index(std::uint64_t key) const;
  [[nodiscard]] InstanceId at(std::size_t ring_index) const {
    return ring_[ring_index % ring_.size()].second;
  }
  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }

 private:
  std::size_t virtual_nodes_;
  /// (hash, instance), hash-sorted.
  std::vector<std::pair<std::uint64_t, InstanceId>> ring_;
};

}  // namespace mann::cluster
