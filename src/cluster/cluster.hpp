// mann::cluster — a routing tier over N deterministic server instances.
//
// One serve::Server with a handful of device slots is a single cabinet;
// "millions of users" is a fleet. A Cluster owns N serve::ServerSession
// instances — each a full admission → batcher → scheduler → device-pool
// stack — and steps them in lockstep on one simulated clock: every
// arrival is routed (router.hpp) to an instance *after* the whole fleet
// has been advanced to that arrival's cycle, so routing decisions see
// exactly the load a front-door would see, and the per-instance
// timelines interleave deterministically.
//
//   arrivals ──> Router ──┬──> ServerSession 0 ──┐
//     (trace /            ├──> ServerSession 1   ├──> ClusterReport
//      diurnal            ├──> ServerSession ..  │    (merged stream,
//      generator)         └──> ServerSession N-1 ┘     fleet energy)
//
// An Autoscaler (autoscaler.hpp) watches the offered load and activates/
// parks instances; the Router only assigns to the active set, and parked
// instances drain what they already hold. Fleet energy charges every
// instance's static + clock-tree watts over its *active window* — a
// fixed fleet pays idle watts through the diurnal trough, an autoscaled
// one does not, which is the J/inference comparison the bench gates.
//
// Determinism contract (the repo-wide one): every ClusterReport field
// except the host-execution block of the per-instance reports is a pure
// function of (config, models, arrival schedule). Instances get disjoint
// request-id ranges (SessionOptions::first_id), so the merged completion
// stream and the shared obs trace stay globally unique, and a
// cluster-of-1 run is bit-identical to the equivalent bare Server run
// (serve::simulated_reports_identical — CI gates it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/autoscaler.hpp"
#include "cluster/router.hpp"
#include "serve/metrics.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"

namespace mann::accel {
class ServiceCycleCache;  // accel/service_cycle_cache.hpp
}  // namespace mann::accel

namespace mann::cluster {

class FleetPool;  // cluster/fleet_pool.hpp

struct ClusterConfig {
  /// Fleet size. Every instance is built from the same server template.
  std::size_t instances = 2;
  /// Per-instance template: accel/admission/batcher/scheduler/power knobs
  /// apply to each instance; traffic (arrival process, tenants, SLOs,
  /// seed) drives the cluster-level generator in run() and the tenant/SLO
  /// registries of every instance; the obs sinks are shared fleet-wide
  /// (router events and per-instance lanes land in one trace).
  serve::ServerConfig server;
  RouterConfig router;
  AutoscalerConfig autoscaler;
  /// Host threads advancing instances between routing barriers (a
  /// cluster::FleetPool). 0 or 1 = sequential on the simulation thread;
  /// more are clamped to the fleet size. Purely a host-side knob: every
  /// simulated number is bit-identical for any value (test-gated).
  std::size_t fleet_threads = 0;
  /// When > 0, the cluster owns one accel::ServiceCycleCache with this
  /// many independently-locked segments, shared by every instance (each
  /// instance's scheduler.cycle_cache points at it; an explicitly
  /// configured server.scheduler.cycle_cache wins). Cached results are
  /// pure function values, so sharing never changes a simulated number —
  /// it only keeps fleet threads from re-simulating workloads a sibling
  /// already paid for, without serializing on one mutex. Capacity is
  /// scheduler.cache_capacity scaled by the fleet size. 0 = no fleet
  /// cache (each instance keeps whatever its template says).
  std::size_t cache_segments = 0;
};

/// One instance's slice of the cluster outcome.
struct InstanceReport {
  InstanceId id = 0;
  std::uint64_t routed = 0;  ///< requests the router assigned here
  /// Powered-on window (fleet-energy accounting): cycles between
  /// activation and observed-idle after parking; the full cluster
  /// makespan for a never-parked instance.
  sim::Cycle active_cycles = 0;
  serve::ServingReport report;
};

/// The fleet-level outcome: merged deterministic stream + fleet energy.
struct ClusterReport {
  std::size_t instances = 0;
  std::string policy;         ///< router policy name
  std::size_t offered = 0;    ///< arrivals presented to the router
  std::size_t completed = 0;
  std::size_t rejected = 0;     ///< shed inside instances (all reasons)
  std::size_t router_shed = 0;  ///< refused at the router (spill exhausted)
  sim::Cycle makespan_cycles = 0;  ///< last completion across the fleet
  double seconds = 0.0;
  double throughput_stories_per_second = 0.0;
  /// Exact percentiles over the *merged* completion stream (not an
  /// average of per-instance summaries).
  serve::LatencySummary latency;
  serve::LatencySummary queue_wait;
  std::uint64_t deadline_total = 0;
  std::uint64_t deadline_missed = 0;
  double deadline_hit_rate = 1.0;
  /// Jain's index over per-instance completed counts — the cross-instance
  /// load-balance score (1.0 = perfectly even; also 1.0 below 2 actives).
  double instance_fairness = 1.0;
  std::uint64_t model_uploads = 0;  ///< summed; the residency-cold count
  /// 1 - uploads/batches: how often a dispatch found its model (and its
  /// warm cycle-cache variant) already resident. Task-affinity routing
  /// exists to maximize this.
  double warm_dispatch_rate = 0.0;
  /// Host cycle-cache hit rate summed over instances (0 when caching is
  /// off). Host-dependent — reported, never gated across policies.
  double cycle_cache_hit_rate = 0.0;
  /// Fleet energy: dynamic + link joules summed from the instances;
  /// static + clock-tree watts charged per device over each instance's
  /// *active window* (idle watts are real watts). This intentionally
  /// differs from summing the per-instance reports' static joules, which
  /// each stop at their own last completion.
  serve::ServingEnergy energy;
  double mean_active_instances = 0.0;  ///< active-cycle-weighted
  std::size_t scale_ups = 0;
  std::size_t scale_downs = 0;
  std::vector<InstanceReport> instance_reports;  ///< id-ordered
};

/// One resolved request, tagged with the instance that served it.
/// Windows polled while arrivals are still being routed concatenate into
/// a single (cycle, id)-sorted deterministic stream across the fleet
/// (lockstep means every instance has processed exactly the events below
/// the shared horizon). The post-drain window is itself sorted, but its
/// sub-size flushes dispatch at each instance's own — possibly lagging —
/// clock, exactly as a bare drained Server's do, so it can reach back
/// before the last pre-drain window. Per-instance subsequences are
/// always (cycle, id)-sorted ledgers end to end.
struct ClusterCompletion {
  InstanceId instance = 0;
  serve::Completion completion;
};

/// Mid-run fleet snapshot (the daemon's `info` line under --cluster).
struct ClusterInfo {
  std::size_t instances = 0;
  std::size_t active = 0;
  std::size_t offered = 0;
  std::size_t router_shed = 0;
  sim::Cycle cycle = 0;
  std::vector<serve::SessionInfo> per_instance;
};

class Cluster {
 public:
  /// `models` must outlive the cluster (every instance serves the same
  /// registry; device pools are per-instance).
  Cluster(ClusterConfig config, const std::vector<serve::ServedModel>& models);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Routed open-loop submission: instance is nullopt (and id unused)
  /// when the router shed the request.
  struct Submission {
    std::optional<InstanceId> instance;
    serve::RequestId id = 0;
  };
  Submission submit(const serve::SubmitRequest& request);

  /// Closed-loop drive, the Server::run() of the fleet: draws
  /// `total_requests` from the traffic config, routes each arrival with
  /// the whole fleet stepped to its cycle, autoscales at epoch
  /// boundaries, then drains and finalizes. Single-shot.
  [[nodiscard]] ClusterReport run(std::size_t total_requests);

  /// Advances every instance to the exclusive cycle horizon `limit`
  /// (lockstep; sim::kNever = fleet quiescence). Returns true when every
  /// instance is quiescent.
  bool step_until(sim::Cycle limit);

  /// Sticky end-of-stream: sub-size batches flush immediately fleet-wide.
  void drain();

  [[nodiscard]] std::vector<ClusterCompletion> poll_completions();

  /// Drains, runs to quiescence, finalizes every instance and folds the
  /// ClusterReport. Callable once; run() calls it internally.
  [[nodiscard]] ClusterReport finalize();

  // ---- live reconfiguration (fans out to every instance) ----
  void set_tenant(serve::TenantId tenant, const serve::TenantConfig& config);
  void set_slo(const serve::SloConfig& slo);
  [[nodiscard]] bool set_policy(serve::SchedulerPolicy policy);

  // ---- introspection ----
  [[nodiscard]] std::size_t size() const noexcept { return instances_.size(); }
  [[nodiscard]] std::size_t active_instances() const noexcept;
  [[nodiscard]] sim::Cycle now() const noexcept { return clock_; }
  /// Arrival cycle of the most recent routed submission — the lockstep
  /// driver's exclusive step_until() horizon, as with ServerSession.
  [[nodiscard]] sim::Cycle last_submitted_arrival() const noexcept {
    return last_arrival_;
  }
  [[nodiscard]] bool idle() const;
  [[nodiscard]] ClusterInfo info() const;
  [[nodiscard]] const char* policy_name() const noexcept;

 private:
  struct Instance;

  [[nodiscard]] std::vector<InstanceStatus> statuses() const;
  [[nodiscard]] std::vector<InstanceId> active_set() const;
  void apply_target_active(std::size_t target, sim::Cycle cycle);
  void settle_parked(sim::Cycle cycle);
  [[nodiscard]] ClusterReport aggregate(
      std::vector<serve::ServingReport> reports, sim::Cycle fleet_makespan);

  ClusterConfig config_;
  std::unique_ptr<RouterPolicy> policy_;
  Autoscaler autoscaler_;
  /// Fleet-shared cycle cache (config_.cache_segments > 0); must outlive
  /// the instances whose schedulers point at it.
  std::unique_ptr<accel::ServiceCycleCache> fleet_cache_;
  /// Host threads for step_until fan-out (config_.fleet_threads > 1).
  std::unique_ptr<FleetPool> pool_;
  std::vector<std::unique_ptr<Instance>> instances_;
  /// Shared task registry for the closed-loop generator in run().
  std::vector<serve::TaskWorkload> workloads_;
  sim::Cycle clock_ = 0;         ///< highest lockstep horizon reached
  sim::Cycle last_arrival_ = 0;  ///< highest routed arrival cycle
  std::size_t offered_ = 0;
  std::size_t router_shed_ = 0;
  bool ran_ = false;
  bool finalized_ = false;
  /// Merged-stream percentile inputs, accumulated at poll time.
  std::vector<double> latency_samples_;
  std::vector<double> queue_wait_samples_;
};

/// True when every deterministic field of the two fleet reports matches:
/// routing counts, merged-stream percentiles, deadlines, fairness,
/// energy, autoscaler decisions and each instance's simulated report
/// (serve::simulated_reports_identical per instance). Host-execution
/// fields — wall clock, cycle-cache hit rates — are excluded, exactly as
/// in the per-server predicate. This is the fleet-thread-count
/// invariance gate: reports from the same (config, models, schedule) at
/// different --fleet-threads must satisfy it bit-for-bit.
[[nodiscard]] bool simulated_cluster_reports_identical(
    const ClusterReport& a, const ClusterReport& b);

}  // namespace mann::cluster
