// Diurnal autoscaling: how many instances should be serving right now?
//
// The Autoscaler watches offered load — every arrival the cluster routes
// is observed with its simulated cycle — and at fixed epoch boundaries
// decides a target active-instance count. The rule is deliberately
// simple and fully deterministic (a pure function of the arrival
// schedule, so reports are bit-identical for any worker count):
//
//   per = arrivals in the closed epoch / active instances
//   per > up_arrivals_per_instance   and active < max  ->  active + 1
//   per < down_arrivals_per_instance and active > min  ->  active - 1
//
// One step per epoch, with a cooldown between decisions so a single
// burst cannot thrash the fleet. The point of scaling *down* is energy:
// a parked instance stops accruing static + clock-tree watts in the
// cluster's fleet-energy accounting (cluster.hpp), so tracking the
// diurnal trough with a smaller active set is exactly what wins the
// J/inference comparison against a fixed fleet.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "sim/types.hpp"

namespace mann::cluster {

struct AutoscalerConfig {
  bool enabled = false;
  std::size_t min_instances = 1;
  /// 0 = the fleet size.
  std::size_t max_instances = 0;
  /// Decision cadence in simulated cycles.
  sim::Cycle epoch_cycles = 1'000'000;
  /// Scale up when the closed epoch offered more than this per active
  /// instance...
  double up_arrivals_per_instance = 400.0;
  /// ...and down when it offered less than this.
  double down_arrivals_per_instance = 150.0;
  /// Epochs to hold after any decision before the next one.
  std::size_t cooldown_epochs = 1;
};

class Autoscaler {
 public:
  Autoscaler(const AutoscalerConfig& config, std::size_t fleet_size);

  /// Observes one arrival at `cycle` with `active` instances currently
  /// serving. Returns the new target active count when one or more epoch
  /// boundaries were crossed and the rule fired; nullopt otherwise.
  /// Cycles must be non-decreasing (they are arrival cycles).
  [[nodiscard]] std::optional<std::size_t> observe(sim::Cycle cycle,
                                                   std::size_t active);

  [[nodiscard]] bool enabled() const noexcept { return config_.enabled; }
  [[nodiscard]] std::size_t scale_ups() const noexcept { return scale_ups_; }
  [[nodiscard]] std::size_t scale_downs() const noexcept {
    return scale_downs_;
  }

 private:
  AutoscalerConfig config_;
  std::size_t fleet_size_;
  sim::Cycle epoch_end_;
  std::uint64_t epoch_arrivals_ = 0;
  std::size_t cooldown_left_ = 0;
  std::size_t scale_ups_ = 0;
  std::size_t scale_downs_ = 0;
};

}  // namespace mann::cluster
