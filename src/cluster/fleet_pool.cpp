#include "cluster/fleet_pool.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace mann::cluster {

namespace {
constexpr std::size_t kNoError = std::numeric_limits<std::size_t>::max();
}  // namespace

FleetPool::FleetPool(std::size_t threads, obs::MetricsRegistry* metrics)
    : error_index_(kNoError),
      obs_rounds_(obs::counter(metrics, "cluster.fleet_pool.rounds")),
      obs_tasks_(obs::counter(metrics, "cluster.fleet_pool.tasks")) {
  if (threads <= 1) {
    return;  // inline mode: run() is the sequential loop
  }
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

FleetPool::~FleetPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void FleetPool::drain_round(std::unique_lock<std::mutex>& lock) {
  while (next_ < count_) {
    const std::size_t index = next_++;
    const Task* fn = fn_;
    lock.unlock();
    std::exception_ptr err;
    try {
      (*fn)(index);
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    if (err != nullptr && index < error_index_) {
      // Keep the lowest-index failure: it is the one a sequential walk
      // would have surfaced, so the rethrow is thread-count invariant.
      error_index_ = index;
      error_ = err;
    }
    if (--remaining_ == 0 && caller_waiting_) {
      round_done_.notify_one();
    }
  }
}

void FleetPool::worker_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    ++idle_;
    work_ready_.wait(lock, [&] { return stopping_ || next_ < count_; });
    --idle_;
    if (next_ < count_) {
      drain_round(lock);
    } else if (stopping_) {
      return;
    }
  }
}

void FleetPool::run(std::size_t count, const Task& fn) {
  obs::add(obs_rounds_);
  obs::add(obs_tasks_, static_cast<std::int64_t>(count));
  if (threads_.empty() || count <= 1) {
    // Sequential semantics, including stop-at-first-throw.
    for (std::size_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  std::unique_lock lock(mutex_);
  fn_ = &fn;
  count_ = count;
  next_ = 0;
  remaining_ = count;
  error_ = nullptr;
  error_index_ = kNoError;
  // Counted notification: wake only as many workers as can claim a task.
  const std::size_t wake = std::min(count, idle_);
  for (std::size_t i = 0; i < wake; ++i) {
    work_ready_.notify_one();
  }
  caller_waiting_ = true;
  round_done_.wait(lock, [&] { return remaining_ == 0; });
  caller_waiting_ = false;
  count_ = 0;
  next_ = 0;
  fn_ = nullptr;
  if (error_ != nullptr) {
    std::exception_ptr err = std::exchange(error_, nullptr);
    error_index_ = kNoError;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace mann::cluster
