#include "cluster/autoscaler.hpp"

#include <algorithm>
#include <stdexcept>

namespace mann::cluster {

Autoscaler::Autoscaler(const AutoscalerConfig& config, std::size_t fleet_size)
    : config_(config), fleet_size_(fleet_size) {
  if (config_.epoch_cycles == 0) {
    throw std::invalid_argument("Autoscaler: epoch_cycles must be > 0");
  }
  if (config_.max_instances == 0 || config_.max_instances > fleet_size_) {
    config_.max_instances = fleet_size_;
  }
  config_.min_instances =
      std::clamp<std::size_t>(config_.min_instances, 1, config_.max_instances);
  epoch_end_ = config_.epoch_cycles;
}

std::optional<std::size_t> Autoscaler::observe(sim::Cycle cycle,
                                               std::size_t active) {
  if (!config_.enabled) {
    return std::nullopt;
  }
  std::optional<std::size_t> target;
  // Close every epoch the clock has passed. Empty trailing epochs (no
  // arrivals at all) can only push the count down, which is the desired
  // trough behaviour; decisions still apply at most one step per closed
  // epoch and respect the cooldown.
  while (cycle >= epoch_end_) {
    const double per =
        static_cast<double>(epoch_arrivals_) /
        static_cast<double>(std::max<std::size_t>(1, active));
    if (cooldown_left_ > 0) {
      --cooldown_left_;
    } else if (per > config_.up_arrivals_per_instance &&
               active < config_.max_instances) {
      ++active;
      ++scale_ups_;
      target = active;
      cooldown_left_ = config_.cooldown_epochs;
    } else if (per < config_.down_arrivals_per_instance &&
               active > config_.min_instances) {
      --active;
      ++scale_downs_;
      target = active;
      cooldown_left_ = config_.cooldown_epochs;
    }
    epoch_arrivals_ = 0;
    epoch_end_ += config_.epoch_cycles;
  }
  ++epoch_arrivals_;
  return target;
}

}  // namespace mann::cluster
