#include "cluster/router.hpp"

#include <algorithm>
#include <stdexcept>

namespace mann::cluster {

namespace {

/// SplitMix64 finalizer — a stateless, library-portable hash (the same
/// mixer numeric::Rng seeds from), so ring layouts and task placements
/// are identical on every host.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// (queue depth, pending cost, id) — the least-loaded comparison. The id
/// tiebreak keeps decisions total-ordered and therefore reproducible.
[[nodiscard]] bool less_loaded(const InstanceStatus& a,
                               const InstanceStatus& b) noexcept {
  if (a.queue_depth != b.queue_depth) {
    return a.queue_depth < b.queue_depth;
  }
  if (a.pending_cost_cycles != b.pending_cost_cycles) {
    return a.pending_cost_cycles < b.pending_cost_cycles;
  }
  return a.id < b.id;
}

/// Consistent-hash task affinity with ring-order spill (see router.hpp).
class TaskAffinityPolicy final : public RouterPolicy {
 public:
  explicit TaskAffinityPolicy(const RouterConfig& config)
      : ring_(config.virtual_nodes),
        spill_threshold_(config.spill_queue_threshold) {}

  [[nodiscard]] const char* name() const noexcept override {
    return "task_affinity";
  }

  void set_topology(const std::vector<InstanceId>& active) override {
    active_count_ = active.size();
    ring_.rebuild(active);
  }

  [[nodiscard]] std::optional<InstanceId> route(
      const RouteRequest& request,
      const std::vector<InstanceStatus>& status) override {
    if (ring_.empty()) {
      return std::nullopt;
    }
    // Walk the ring clockwise from the task's owner; take the first
    // instance under the spill threshold. A fully saturated active set
    // falls back to the owner — shedding is the admission layer's call,
    // affinity routing never refuses outright.
    const std::uint64_t key = mix64(request.task);
    const std::size_t start = ring_.owner_index(key);
    const InstanceId owner = ring_.at(start);
    std::size_t seen = 0;
    for (std::size_t i = 0; i < ring_.size() && seen < active_count_; ++i) {
      const InstanceId candidate = ring_.at(start + i);
      if (i > 0 && candidate == ring_.at(start + i - 1)) {
        continue;  // same instance's adjacent virtual nodes
      }
      ++seen;
      if (status[candidate].queue_depth < spill_threshold_) {
        return candidate;
      }
    }
    return owner;
  }

 private:
  HashRing ring_;
  std::size_t spill_threshold_;
  std::size_t active_count_ = 0;
};

/// Power-of-two-choices least-loaded (see router.hpp).
class PowerOfTwoPolicy final : public RouterPolicy {
 public:
  explicit PowerOfTwoPolicy(const RouterConfig& config) : rng_(config.seed) {}

  [[nodiscard]] const char* name() const noexcept override {
    return "power_of_two";
  }

  void set_topology(const std::vector<InstanceId>& active) override {
    active_ = active;
  }

  [[nodiscard]] std::optional<InstanceId> route(
      const RouteRequest&,
      const std::vector<InstanceStatus>& status) override {
    if (active_.empty()) {
      return std::nullopt;
    }
    if (active_.size() == 1) {
      return active_.front();
    }
    // Two distinct uniform draws; the second re-rolls over n-1 slots to
    // stay collision-free with a fixed draw count per decision (a
    // variable draw count would couple later decisions to earlier load).
    const std::size_t first = rng_.index(active_.size());
    std::size_t second = rng_.index(active_.size() - 1);
    if (second >= first) {
      ++second;
    }
    const InstanceStatus& a = status[active_[first]];
    const InstanceStatus& b = status[active_[second]];
    return less_loaded(a, b) ? a.id : b.id;
  }

 private:
  numeric::Rng rng_;
  std::vector<InstanceId> active_;
};

/// Tenant home + designated spill set (see router.hpp).
class TenantSpillPolicy final : public RouterPolicy {
 public:
  explicit TenantSpillPolicy(const RouterConfig& config)
      : spill_threshold_(config.spill_queue_threshold),
        tenant_home_(config.tenant_home) {}

  [[nodiscard]] const char* name() const noexcept override {
    return "tenant_spill";
  }

  void set_topology(const std::vector<InstanceId>& active) override {
    active_ = active;
  }

  [[nodiscard]] std::optional<InstanceId> route(
      const RouteRequest& request,
      const std::vector<InstanceStatus>& status) override {
    if (active_.empty()) {
      return std::nullopt;
    }
    // Home: the configured map, else tenant % active_count. A configured
    // home that is currently parked degrades to the modulo placement so
    // autoscaling never strands a tenant.
    std::size_t home_slot = request.tenant % active_.size();
    if (!tenant_home_.empty()) {
      const InstanceId configured =
          tenant_home_[request.tenant % tenant_home_.size()];
      const auto it =
          std::find(active_.begin(), active_.end(), configured);
      if (it != active_.end()) {
        home_slot = static_cast<std::size_t>(it - active_.begin());
      }
    }
    // Home first; overflow walks the tenant's spill set — the remaining
    // active instances in ring order after the home — and only a fully
    // saturated set sheds at the router.
    for (std::size_t i = 0; i < active_.size(); ++i) {
      const InstanceId candidate =
          active_[(home_slot + i) % active_.size()];
      if (status[candidate].queue_depth < spill_threshold_) {
        return candidate;
      }
    }
    return std::nullopt;
  }

 private:
  std::size_t spill_threshold_;
  std::vector<InstanceId> tenant_home_;
  std::vector<InstanceId> active_;
};

}  // namespace

const char* router_policy_name(RouterPolicyKind kind) noexcept {
  switch (kind) {
    case RouterPolicyKind::kTaskAffinity:
      return "task_affinity";
    case RouterPolicyKind::kPowerOfTwo:
      return "power_of_two";
    case RouterPolicyKind::kTenantSpill:
      return "tenant_spill";
  }
  return "unknown";
}

std::unique_ptr<RouterPolicy> make_router_policy(const RouterConfig& config) {
  switch (config.kind) {
    case RouterPolicyKind::kTaskAffinity:
      return std::make_unique<TaskAffinityPolicy>(config);
    case RouterPolicyKind::kPowerOfTwo:
      return std::make_unique<PowerOfTwoPolicy>(config);
    case RouterPolicyKind::kTenantSpill:
      return std::make_unique<TenantSpillPolicy>(config);
  }
  throw std::invalid_argument("make_router_policy: unknown policy kind");
}

void HashRing::rebuild(const std::vector<InstanceId>& instances) {
  ring_.clear();
  ring_.reserve(instances.size() * virtual_nodes_);
  for (const InstanceId instance : instances) {
    for (std::size_t replica = 0; replica < virtual_nodes_; ++replica) {
      // Replica points hash (instance, replica) so an instance's arcs
      // are fixed for the lifetime of the cluster: adding or removing
      // another instance never moves them.
      const std::uint64_t h =
          mix64(mix64(instance) ^ (replica * 0x9E3779B97F4A7C15ULL + 1));
      ring_.emplace_back(h, instance);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t HashRing::owner_index(std::uint64_t key) const {
  if (ring_.empty()) {
    throw std::logic_error("HashRing: owner of an empty ring");
  }
  const std::uint64_t h = mix64(key);
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<std::uint64_t, InstanceId>& node,
         std::uint64_t value) { return node.first < value; });
  return it == ring_.end() ? 0 : static_cast<std::size_t>(it - ring_.begin());
}

InstanceId HashRing::owner(std::uint64_t key) const {
  return ring_[owner_index(key)].second;
}

}  // namespace mann::cluster
