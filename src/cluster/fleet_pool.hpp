// Host-side fleet pool for the parallel cluster runtime.
//
// Between routing barriers the cluster's ServerSession instances are
// independent discrete-event simulations: no request moves between them
// except through Cluster::submit, and every simulated number is a pure
// function of (config, models, arrival schedule). Cluster::step_until
// therefore fans each instance's advance out across this pool and joins
// before the next routing decision — the barrier is the only
// synchronization point, so routing, the merged completion stream and
// every simulated report stay bit-identical for any thread count (the
// same invariant serve::WorkerPool established for batch speculation,
// one level up).
//
// The handoff is barrier-shaped, not queue-shaped: run(count, fn) opens
// a round, workers claim indices from a shared cursor under the one
// mutex, and the caller blocks until the round drains. Wakeups follow
// the repo's counted-notification discipline — a round start signals at
// most min(count, idle) parked workers, and the round-done signal fires
// only when the caller is actually waiting. With zero or one thread the
// pool runs the round inline on the caller, byte-for-byte the
// sequential loop, which is the `--fleet-threads 0` escape hatch.
//
// Exceptions: a throwing task poisons the round but never the pool. All
// claimed tasks still run to completion (instances must not be left
// mid-step behind a barrier), and run() rethrows the exception from the
// lowest task index that threw — matching which exception a sequential
// walk would have surfaced first, so failure is deterministic too.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace mann::cluster {

class FleetPool {
 public:
  using Task = std::function<void(std::size_t)>;

  /// Spawns `threads` persistent workers; 0 or 1 spawns none and every
  /// run() executes inline on the caller. `metrics`, when set, receives
  /// "cluster.fleet_pool.*" counters (non-owning; may be null). The
  /// rounds/tasks counters are deterministic — one round per barrier,
  /// one task per instance — unlike typical host-domain counters.
  explicit FleetPool(std::size_t threads,
                     obs::MetricsRegistry* metrics = nullptr);

  /// Finishes any in-flight round, then joins every worker.
  ~FleetPool();

  FleetPool(const FleetPool&) = delete;
  FleetPool& operator=(const FleetPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return threads_.size(); }

  /// Runs fn(0) .. fn(count-1) across the pool and blocks until all
  /// complete. Not reentrant: one round at a time, driven by the one
  /// simulation thread. Rethrows the lowest-index exception after the
  /// round drains.
  void run(std::size_t count, const Task& fn);

 private:
  void worker_loop();
  /// Claims and runs tasks until the round's cursor is exhausted; the
  /// lock must be held on entry and is held again on return.
  void drain_round(std::unique_lock<std::mutex>& lock);

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;  ///< round opened (workers park here)
  std::condition_variable round_done_;  ///< last task finished
  const Task* fn_ = nullptr;
  std::size_t count_ = 0;      ///< tasks in the open round
  std::size_t next_ = 0;       ///< claim cursor
  std::size_t remaining_ = 0;  ///< claimed-or-unclaimed tasks not yet done
  std::size_t idle_ = 0;       ///< workers parked in work_ready_.wait
  bool caller_waiting_ = false;
  bool stopping_ = false;
  std::exception_ptr error_;
  std::size_t error_index_ = 0;
  std::vector<std::thread> threads_;
  // Mirrored obs instruments (null without a registry).
  obs::Counter* obs_rounds_ = nullptr;
  obs::Counter* obs_tasks_ = nullptr;
};

}  // namespace mann::cluster
