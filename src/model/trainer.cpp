#include "model/trainer.hpp"

#include <cmath>
#include <span>

#include "numeric/vector_ops.hpp"

namespace mann::model {

using numeric::Matrix;

ExampleGradients backward(const MemN2N& model,
                          const data::EncodedStory& story) {
  const ModelConfig& cfg = model.config();
  const Parameters& params = model.params();
  const ForwardTrace trace = model.forward(story);
  const std::size_t hops = cfg.hops;
  const std::size_t slots = model.memory_slots(story);
  const std::size_t first = story.context.size() - slots;

  ExampleGradients out;
  out.grads = Parameters::zeros(cfg);
  const auto label = static_cast<std::size_t>(story.answer);
  out.correct = trace.prediction == label;

  // Softmax cross-entropy at the output layer.
  std::vector<float> dz = numeric::softmax(trace.logits);
  out.loss = -std::log(std::max(dz[label], 1e-12F));
  dz[label] -= 1.0F;

  // Eq. 6 backward: z = W_o h^H.
  numeric::add_outer(out.grads.w_o, dz, trace.h.back(), 1.0F);
  std::vector<float> dh = numeric::matvec_transposed(params.w_o, dz);

  // Memory gradients accumulate across hops, then scatter into embeddings.
  Matrix d_memory_a(slots, cfg.embedding_dim);
  Matrix d_memory_c(slots, cfg.embedding_dim);

  for (std::size_t hop = hops; hop-- > 0;) {
    const std::vector<float>& k = trace.k[hop];
    const std::vector<float>& attention = trace.a[hop];

    // Eq. 4 backward: h = r + W_r k.
    const std::vector<float>& dr = dh;  // dh flows into r unchanged
    numeric::add_outer(out.grads.w_r, dh, k, 1.0F);
    std::vector<float> dk = numeric::matvec_transposed(params.w_r, dh);

    // Eq. 5 backward: r = M_cᵀ a.
    numeric::add_outer(d_memory_c, attention, dr, 1.0F);
    std::vector<float> da = numeric::matvec(trace.memory_c, dr);

    // Eq. 1 backward: through the softmax Jacobian, or the identity in
    // linear-start mode (where attention == raw scores).
    std::vector<float> ds(attention.size());
    if (model.linear_attention()) {
      ds.assign(da.begin(), da.end());
    } else {
      const float dot_ada = numeric::dot(attention, da);
      for (std::size_t i = 0; i < ds.size(); ++i) {
        ds[i] = attention[i] * (da[i] - dot_ada);
      }
    }

    // s = M_a k backward.
    numeric::add_outer(d_memory_a, ds, k, 1.0F);
    numeric::axpy(1.0F, numeric::matvec_transposed(trace.memory_a, ds),
                  std::span<float>(dk));

    // Eq. 3: k^{t+1} = h^t chains the key gradient into the previous hop.
    dh = std::move(dk);
  }

  // Scatter memory gradients into the embedding tables (Eq. 2 backward:
  // each word of sentence i contributed one embedding row to memory row i).
  for (std::size_t i = 0; i < slots; ++i) {
    for (const std::int32_t word : story.context[first + i]) {
      const auto w = static_cast<std::size_t>(word);
      numeric::axpy(1.0F, d_memory_a.row(i), out.grads.embedding_a.row(w));
      numeric::axpy(1.0F, d_memory_c.row(i), out.grads.embedding_c.row(w));
    }
  }
  // Question embedding (Eq. 3, t = 1): k¹ = Σ B rows.
  for (const std::int32_t word : story.question) {
    numeric::axpy(1.0F, dh,
                  out.grads.embedding_q.row(static_cast<std::size_t>(word)));
  }
  return out;
}

float evaluate_accuracy(const MemN2N& model,
                        const std::vector<data::EncodedStory>& stories) {
  if (stories.empty()) {
    return 0.0F;
  }
  std::size_t correct = 0;
  for (const data::EncodedStory& s : stories) {
    if (model.predict(s) == static_cast<std::size_t>(s.answer)) {
      ++correct;
    }
  }
  return static_cast<float>(correct) / static_cast<float>(stories.size());
}

namespace {

/// Global-norm clip across all parameter matrices.
void clip_global_norm(Parameters& grads, float max_norm) {
  double sq = 0.0;
  for (const Matrix* m : {&grads.embedding_a, &grads.embedding_c,
                          &grads.embedding_q, &grads.w_r, &grads.w_o}) {
    for (const float v : m->data()) {
      sq += static_cast<double>(v) * v;
    }
  }
  const auto norm = static_cast<float>(std::sqrt(sq));
  if (norm <= max_norm || norm == 0.0F) {
    return;
  }
  const float s = max_norm / norm;
  for (Matrix* m : {&grads.embedding_a, &grads.embedding_c,
                    &grads.embedding_q, &grads.w_r, &grads.w_o}) {
    m->scale(s);
  }
}

}  // namespace

std::vector<EpochStats> train(MemN2N& model,
                              const std::vector<data::EncodedStory>& stories,
                              const TrainConfig& config) {
  std::vector<EpochStats> history;
  if (stories.empty()) {
    return history;
  }
  numeric::Rng shuffle_rng(config.shuffle_seed);
  std::vector<std::size_t> order(stories.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }

  float lr = config.learning_rate;
  for (std::size_t epoch = 1; epoch <= config.epochs; ++epoch) {
    model.set_linear_attention(epoch <= config.linear_start_epochs);
    if (config.anneal_every > 0 && epoch > 1 &&
        (epoch - 1) % config.anneal_every == 0) {
      lr *= config.anneal_factor;
    }
    shuffle_rng.shuffle(std::span<std::size_t>(order));

    double loss_sum = 0.0;
    std::size_t correct = 0;
    for (const std::size_t idx : order) {
      ExampleGradients eg = backward(model, stories[idx]);
      clip_global_norm(eg.grads, config.max_grad_norm);
      model.params().add_scaled(eg.grads, -lr);
      loss_sum += eg.loss;
      correct += eg.correct ? 1 : 0;
    }
    EpochStats st;
    st.epoch = epoch;
    st.mean_loss =
        static_cast<float>(loss_sum / static_cast<double>(stories.size()));
    st.train_accuracy =
        static_cast<float>(correct) / static_cast<float>(stories.size());
    st.learning_rate = lr;
    history.push_back(st);
  }
  model.set_linear_attention(false);  // inference always uses softmax
  return history;
}

}  // namespace mann::model
