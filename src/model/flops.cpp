#include "model/flops.hpp"

#include <algorithm>

namespace mann::model {
namespace {

FlopBreakdown count_common(const data::EncodedStory& story,
                           const ModelConfig& config, std::size_t probed) {
  FlopBreakdown fb;
  const std::size_t e = config.embedding_dim;
  const std::size_t v = config.vocab_size;
  const std::size_t slots = std::min(story.context.size(), config.max_memory);
  const std::size_t first = story.context.size() - slots;

  // Eq. 2: one embedding-row add per word, for both A and C memories,
  // plus the question embedding (B).
  std::size_t context_words = 0;
  for (std::size_t i = 0; i < slots; ++i) {
    context_words += story.context[first + i].size();
  }
  fb.embedding = 2 * context_words * e + story.question.size() * e;

  // Per hop: addressing dot products (mul+add), softmax (exp + running sum
  // + divide per element), weighted read, controller matvec + vector add.
  const std::size_t per_hop_addressing = 2 * slots * e + 3 * slots;
  const std::size_t per_hop_read = 2 * slots * e;
  const std::size_t per_hop_controller = 2 * e * e + e;
  fb.addressing = config.hops * per_hop_addressing;
  fb.read = config.hops * per_hop_read;
  fb.controller = config.hops * per_hop_controller;

  // Eq. 6: one dot product plus one comparison per probed class.
  const std::size_t classes = std::min(probed, v);
  fb.output = classes * (2 * e + 1);
  return fb;
}

}  // namespace

FlopBreakdown count_flops(const data::EncodedStory& story,
                          const ModelConfig& config) {
  return count_common(story, config, config.vocab_size);
}

FlopBreakdown count_flops_thresholded(const data::EncodedStory& story,
                                      const ModelConfig& config,
                                      std::size_t probed_classes) {
  return count_common(story, config, probed_classes);
}

}  // namespace mann::model
