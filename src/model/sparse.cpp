#include "model/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "numeric/vector_ops.hpp"

namespace mann::model {
namespace {

/// Softmax over the `top_k` best entries of `scores`; all others get
/// exactly zero weight. Matches the MEM module's sparse mode.
std::vector<float> sparse_softmax(std::vector<float> scores,
                                  std::size_t top_k) {
  const std::size_t n = scores.size();
  if (top_k == 0 || top_k >= n) {
    numeric::softmax_inplace(scores);
    return scores;
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(top_k),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      return scores[a] > scores[b];
                    });
  float max_score = scores[order[0]];
  float sum = 0.0F;
  std::vector<float> out(n, 0.0F);
  for (std::size_t r = 0; r < top_k; ++r) {
    const float e = std::exp(scores[order[r]] - max_score);
    out[order[r]] = e;
    sum += e;
  }
  for (std::size_t r = 0; r < top_k; ++r) {
    out[order[r]] /= sum;
  }
  return out;
}

}  // namespace

std::vector<float> sparse_forward_features(const MemN2N& net,
                                           const data::EncodedStory& story,
                                           std::size_t top_k) {
  const ModelConfig& cfg = net.config();
  const Parameters& p = net.params();
  const std::size_t slots = net.memory_slots(story);
  const std::size_t first = story.context.size() - slots;
  const std::size_t e = cfg.embedding_dim;

  // Eq. 2 memories.
  numeric::Matrix mem_a(slots, e);
  numeric::Matrix mem_c(slots, e);
  for (std::size_t i = 0; i < slots; ++i) {
    for (const std::int32_t w : story.context[first + i]) {
      numeric::axpy(1.0F, p.embedding_a.row(static_cast<std::size_t>(w)),
                    mem_a.row(i));
      numeric::axpy(1.0F, p.embedding_c.row(static_cast<std::size_t>(w)),
                    mem_c.row(i));
    }
  }
  std::vector<float> k(e, 0.0F);
  for (const std::int32_t w : story.question) {
    numeric::axpy(1.0F, p.embedding_q.row(static_cast<std::size_t>(w)),
                  std::span<float>(k));
  }

  for (std::size_t hop = 0; hop < cfg.hops; ++hop) {
    const std::vector<float> attention =
        sparse_softmax(numeric::matvec(mem_a, k), top_k);
    std::vector<float> read = numeric::matvec_transposed(mem_c, attention);
    std::vector<float> h = numeric::matvec(p.w_r, k);
    numeric::axpy(1.0F, read, std::span<float>(h));
    k = std::move(h);
  }
  return k;
}

std::vector<float> sparse_logits(const MemN2N& net,
                                 const data::EncodedStory& story,
                                 std::size_t top_k) {
  return numeric::matvec(net.params().w_o,
                         sparse_forward_features(net, story, top_k));
}

std::size_t sparse_predict(const MemN2N& net,
                           const data::EncodedStory& story,
                           std::size_t top_k) {
  return numeric::argmax(sparse_logits(net, story, top_k));
}

float evaluate_sparse_accuracy(const MemN2N& net,
                               const std::vector<data::EncodedStory>& stories,
                               std::size_t top_k) {
  if (stories.empty()) {
    return 0.0F;
  }
  std::size_t correct = 0;
  for (const data::EncodedStory& story : stories) {
    if (sparse_predict(net, story, top_k) ==
        static_cast<std::size_t>(story.answer)) {
      ++correct;
    }
  }
  return static_cast<float>(correct) / static_cast<float>(stories.size());
}

}  // namespace mann::model
