// Floating-point-operation accounting for one MANN inference.
//
// The paper's headline metric is FLOPS/kJ; the FLOP numerator must therefore
// be counted identically across CPU, GPU and FPGA configurations. The
// convention here: multiply and add each count 1, exp and div count 1 each
// (matching how the FPGA realizes them as single LUT/divider operations),
// and the output-layer max-comparisons count 1 each. With inference
// thresholding the output term shrinks to the classes actually probed —
// same convention the paper uses when it reports identical FLOPS for both
// modes at a given workload (ITH trades *comparisons*, the numerator the
// paper keeps is the model's nominal FLOPs; we expose both so the bench can
// report either).
#pragma once

#include <cstddef>

#include "data/types.hpp"
#include "model/memn2n.hpp"

namespace mann::model {

/// FLOPs of one story inference, broken down by accelerator module.
struct FlopBreakdown {
  std::size_t embedding = 0;   ///< INPUT & WRITE: Eq. 2 accumulations
  std::size_t addressing = 0;  ///< MEM: Eq. 1 dot products + softmax
  std::size_t read = 0;        ///< MEM: Eq. 5 weighted sum
  std::size_t controller = 0;  ///< READ: Eq. 4 matvec + add
  std::size_t output = 0;      ///< OUTPUT: Eq. 6 dots + comparisons

  [[nodiscard]] std::size_t total() const noexcept {
    return embedding + addressing + read + controller + output;
  }
};

/// Full-output-layer count (conventional MIPS over all |I| classes).
[[nodiscard]] FlopBreakdown count_flops(const data::EncodedStory& story,
                                        const ModelConfig& config);

/// Count when the output layer probes only `probed_classes` classes before
/// inference thresholding exits (Algo. 1 Step 4).
[[nodiscard]] FlopBreakdown count_flops_thresholded(
    const data::EncodedStory& story, const ModelConfig& config,
    std::size_t probed_classes);

}  // namespace mann::model
