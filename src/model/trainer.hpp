// SGD trainer for MemN2N with manual backpropagation.
//
// The paper runs inference on pre-trained models; we have no model zoo, so
// training lives in-repo. The backward pass is derived by hand for exactly
// the architecture of Eqs. 1-6 (no autograd dependency) and is verified
// against finite differences in tests/model/trainer_test.cpp.
#pragma once

#include <cstddef>
#include <vector>

#include "data/types.hpp"
#include "model/memn2n.hpp"
#include "numeric/random.hpp"

namespace mann::model {

/// Training hyper-parameters (MemN2N bAbI recipe at small scale).
struct TrainConfig {
  std::size_t epochs = 30;
  float learning_rate = 0.02F;
  float anneal_factor = 0.5F;      ///< lr multiplier every anneal_every
  std::size_t anneal_every = 10;   ///< epochs between anneals (0 = never)
  float max_grad_norm = 40.0F;     ///< global gradient-norm clip
  std::uint64_t shuffle_seed = 7;  ///< epoch shuffling stream

  /// Linear start (Sukhbaatar et al.): train this many initial epochs
  /// with the attention softmax removed, then switch it back on. Eases
  /// optimization on multi-supporting-fact tasks; 0 disables.
  std::size_t linear_start_epochs = 0;
};

/// Per-epoch progress record.
struct EpochStats {
  std::size_t epoch = 0;
  float mean_loss = 0.0F;
  float train_accuracy = 0.0F;
  float learning_rate = 0.0F;
};

/// Loss and parameter gradients of a single example; exposed so the
/// gradient-check test can call it directly.
struct ExampleGradients {
  float loss = 0.0F;
  bool correct = false;
  Parameters grads;
};

/// Computes cross-entropy loss and all parameter gradients for one story.
[[nodiscard]] ExampleGradients backward(const MemN2N& model,
                                        const data::EncodedStory& story);

/// Fraction of stories whose argmax prediction matches the answer.
[[nodiscard]] float evaluate_accuracy(
    const MemN2N& model, const std::vector<data::EncodedStory>& stories);

/// In-place SGD training loop. Returns per-epoch stats.
std::vector<EpochStats> train(MemN2N& model,
                              const std::vector<data::EncodedStory>& stories,
                              const TrainConfig& config);

}  // namespace mann::model
