// Binary serialization of trained models.
//
// The accelerator receives "trained model parameters ... from a host
// computer" (Fig. 1); this is the artifact format that crosses that
// boundary, and it also lets examples/benches cache trained models.
#pragma once

#include <iosfwd>
#include <string>

#include "model/memn2n.hpp"

namespace mann::model {

/// Writes config + parameters. Throws std::runtime_error on stream failure.
void save_model(std::ostream& out, const MemN2N& model);
void save_model_file(const std::string& path, const MemN2N& model);

/// Reads a model back. Throws std::runtime_error on malformed input.
[[nodiscard]] MemN2N load_model(std::istream& in);
[[nodiscard]] MemN2N load_model_file(const std::string& path);

}  // namespace mann::model
