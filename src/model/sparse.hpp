// Sparse memory reads: top-k attention truncation.
//
// The paper's related work (§VI-B) cites sparse access memory (Rae et al.
// 2016) as a way to cut MANN memory-read cost. This is that idea applied
// to our MEM pipeline: content addressing still scores every slot (the
// dot products are unavoidable), but the expensive element-wise softmax
// (exp + divide) and the weighted read run over only the k best slots.
// The accelerator mirrors this via AccelConfig::sparse_read_slots; the
// functions here are the float reference used to choose k.
#pragma once

#include <cstddef>
#include <vector>

#include "data/types.hpp"
#include "model/memn2n.hpp"

namespace mann::model {

/// Forward pass to h^H with attention truncated to the `top_k`
/// highest-scoring slots per hop (softmax renormalized over the survivors).
/// `top_k == 0` or `top_k >= slots` reproduces the dense forward exactly.
[[nodiscard]] std::vector<float> sparse_forward_features(
    const MemN2N& net, const data::EncodedStory& story, std::size_t top_k);

/// Full logits / prediction under sparse reads.
[[nodiscard]] std::vector<float> sparse_logits(
    const MemN2N& net, const data::EncodedStory& story, std::size_t top_k);
[[nodiscard]] std::size_t sparse_predict(const MemN2N& net,
                                         const data::EncodedStory& story,
                                         std::size_t top_k);

/// Accuracy of the sparse-read model over a dataset.
[[nodiscard]] float evaluate_sparse_accuracy(
    const MemN2N& net, const std::vector<data::EncodedStory>& stories,
    std::size_t top_k);

}  // namespace mann::model
