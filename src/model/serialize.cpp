#include "model/serialize.hpp"

#include <array>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace mann::model {
namespace {

constexpr std::array<char, 4> kMagic = {'M', 'A', 'N', 'N'};
constexpr std::uint32_t kVersion = 1;

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

void write_matrix(std::ostream& out, const numeric::Matrix& m) {
  write_u64(out, m.rows());
  write_u64(out, m.cols());
  out.write(reinterpret_cast<const char*>(m.data().data()),
            static_cast<std::streamsize>(m.size() * sizeof(float)));
}

numeric::Matrix read_matrix(std::istream& in) {
  const std::uint64_t rows = read_u64(in);
  const std::uint64_t cols = read_u64(in);
  if (!in || rows > 1'000'000 || cols > 1'000'000) {
    throw std::runtime_error("load_model: corrupt matrix header");
  }
  numeric::Matrix m(static_cast<std::size_t>(rows),
                    static_cast<std::size_t>(cols));
  in.read(reinterpret_cast<char*>(m.data().data()),
          static_cast<std::streamsize>(m.size() * sizeof(float)));
  if (!in) {
    throw std::runtime_error("load_model: truncated matrix payload");
  }
  return m;
}

}  // namespace

void save_model(std::ostream& out, const MemN2N& model) {
  out.write(kMagic.data(), kMagic.size());
  std::uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const ModelConfig& cfg = model.config();
  write_u64(out, cfg.vocab_size);
  write_u64(out, cfg.embedding_dim);
  write_u64(out, cfg.hops);
  write_u64(out, cfg.max_memory);
  const Parameters& p = model.params();
  write_matrix(out, p.embedding_a);
  write_matrix(out, p.embedding_c);
  write_matrix(out, p.embedding_q);
  write_matrix(out, p.w_r);
  write_matrix(out, p.w_o);
  if (!out) {
    throw std::runtime_error("save_model: stream failure");
  }
}

void save_model_file(const std::string& path, const MemN2N& model) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("save_model_file: cannot open " + path);
  }
  save_model(out, model);
}

MemN2N load_model(std::istream& in) {
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || magic != kMagic || version != kVersion) {
    throw std::runtime_error("load_model: bad magic/version");
  }
  ModelConfig cfg;
  cfg.vocab_size = static_cast<std::size_t>(read_u64(in));
  cfg.embedding_dim = static_cast<std::size_t>(read_u64(in));
  cfg.hops = static_cast<std::size_t>(read_u64(in));
  cfg.max_memory = static_cast<std::size_t>(read_u64(in));
  Parameters p;
  p.embedding_a = read_matrix(in);
  p.embedding_c = read_matrix(in);
  p.embedding_q = read_matrix(in);
  p.w_r = read_matrix(in);
  p.w_o = read_matrix(in);
  return MemN2N(cfg, std::move(p));
}

MemN2N load_model_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_model_file: cannot open " + path);
  }
  return load_model(in);
}

}  // namespace mann::model
