#include "model/memn2n.hpp"

#include <stdexcept>

#include "numeric/vector_ops.hpp"

namespace mann::model {

using numeric::Matrix;

Parameters Parameters::zeros(const ModelConfig& config) {
  Parameters p;
  p.embedding_a.resize_zeroed(config.vocab_size, config.embedding_dim);
  p.embedding_c.resize_zeroed(config.vocab_size, config.embedding_dim);
  p.embedding_q.resize_zeroed(config.vocab_size, config.embedding_dim);
  p.w_r.resize_zeroed(config.embedding_dim, config.embedding_dim);
  p.w_o.resize_zeroed(config.vocab_size, config.embedding_dim);
  return p;
}

Parameters Parameters::random(const ModelConfig& config, numeric::Rng& rng) {
  Parameters p = zeros(config);
  for (Matrix* m : {&p.embedding_a, &p.embedding_c, &p.embedding_q, &p.w_r,
                    &p.w_o}) {
    for (float& v : m->data()) {
      v = rng.normal(0.0F, config.init_stddev);
    }
  }
  return p;
}

void Parameters::add_scaled(const Parameters& other, float scale) {
  embedding_a.add_scaled(other.embedding_a, scale);
  embedding_c.add_scaled(other.embedding_c, scale);
  embedding_q.add_scaled(other.embedding_q, scale);
  w_r.add_scaled(other.w_r, scale);
  w_o.add_scaled(other.w_o, scale);
}

void Parameters::fill(float value) {
  embedding_a.fill(value);
  embedding_c.fill(value);
  embedding_q.fill(value);
  w_r.fill(value);
  w_o.fill(value);
}

MemN2N::MemN2N(ModelConfig config, Parameters params)
    : config_(config), params_(std::move(params)) {
  if (config_.vocab_size == 0 || config_.embedding_dim == 0 ||
      config_.hops == 0 || config_.max_memory == 0) {
    throw std::invalid_argument("MemN2N: all config dimensions must be > 0");
  }
  if (params_.embedding_a.rows() != config_.vocab_size ||
      params_.embedding_a.cols() != config_.embedding_dim) {
    throw std::invalid_argument("MemN2N: parameter shape mismatch");
  }
}

MemN2N::MemN2N(const ModelConfig& config, numeric::Rng& rng)
    : MemN2N(config, Parameters::random(config, rng)) {}

std::size_t MemN2N::memory_slots(
    const data::EncodedStory& story) const noexcept {
  return std::min(story.context.size(), config_.max_memory);
}

Matrix MemN2N::embed_memory(const data::EncodedStory& story,
                            const Matrix& embedding) const {
  const std::size_t slots = memory_slots(story);
  // Keep the *last* L sentences (recency truncation, as in MemN2N).
  const std::size_t first = story.context.size() - slots;
  Matrix memory(slots, config_.embedding_dim);
  for (std::size_t i = 0; i < slots; ++i) {
    auto row = memory.row(i);
    for (const std::int32_t word : story.context[first + i]) {
      numeric::axpy(1.0F, embedding.row(static_cast<std::size_t>(word)), row);
    }
  }
  return memory;
}

std::vector<float> MemN2N::embed_question(
    const data::EncodedStory& story) const {
  std::vector<float> k(config_.embedding_dim, 0.0F);
  for (const std::int32_t word : story.question) {
    numeric::axpy(1.0F, params_.embedding_q.row(static_cast<std::size_t>(word)),
                  std::span<float>(k));
  }
  return k;
}

ForwardTrace MemN2N::forward(const data::EncodedStory& story) const {
  if (story.context.empty()) {
    throw std::invalid_argument("MemN2N::forward: story has no context");
  }
  ForwardTrace trace;
  trace.memory_a = embed_memory(story, params_.embedding_a);
  trace.memory_c = embed_memory(story, params_.embedding_c);
  trace.k.push_back(embed_question(story));

  for (std::size_t hop = 0; hop < config_.hops; ++hop) {
    const std::vector<float>& k = trace.k.back();
    // Eq. 1: content-based addressing (softmax removed in linear-start
    // training mode).
    std::vector<float> attention = numeric::matvec(trace.memory_a, k);
    if (!linear_attention_) {
      numeric::softmax_inplace(attention);
    }
    // Eq. 5: soft read from content memory.
    std::vector<float> read = numeric::matvec_transposed(trace.memory_c,
                                                         attention);
    // Eq. 4: controller output.
    std::vector<float> h = numeric::matvec(params_.w_r, k);
    numeric::axpy(1.0F, read, std::span<float>(h));
    trace.a.push_back(std::move(attention));
    trace.r.push_back(std::move(read));
    trace.h.push_back(h);
    // Eq. 3, t > 1 branch: next read key is the controller output.
    trace.k.push_back(std::move(h));
  }

  // Eq. 6: output layer.
  trace.logits = numeric::matvec(params_.w_o, trace.h.back());
  trace.prediction = numeric::argmax(trace.logits);
  return trace;
}

std::vector<float> MemN2N::forward_features(
    const data::EncodedStory& story) const {
  // Same as forward() but stops before W_o; kept separate so the ITH
  // runtime cost model can meter it independently.
  const Matrix memory_a = embed_memory(story, params_.embedding_a);
  const Matrix memory_c = embed_memory(story, params_.embedding_c);
  std::vector<float> k = embed_question(story);
  for (std::size_t hop = 0; hop < config_.hops; ++hop) {
    std::vector<float> attention = numeric::matvec(memory_a, k);
    if (!linear_attention_) {
      numeric::softmax_inplace(attention);
    }
    std::vector<float> read = numeric::matvec_transposed(memory_c, attention);
    std::vector<float> h = numeric::matvec(params_.w_r, k);
    numeric::axpy(1.0F, read, std::span<float>(h));
    k = std::move(h);
  }
  return k;
}

std::size_t MemN2N::predict(const data::EncodedStory& story) const {
  return forward(story).prediction;
}

}  // namespace mann::model
