// Quantized MemN2N forward pass, parametric in the fixed-point format.
//
// The authors' companion work (Park et al., "Quantized Memory-Augmented
// Neural Networks", AAAI 2018 — reference [10] of the paper) studies MANN
// inference under quantization; the accelerator itself runs a Q16.16
// datapath. This header provides the float-model-to-fixed-point reference
// evaluator used to pick the datapath format: every operand (embeddings,
// weights, activations) is quantized to FixedPoint<FracBits> and the
// arithmetic follows datapath order. The softmax itself is evaluated
// through float exp/normalize on the quantized scores, matching the
// accelerator's LUT units whose error is separately bounded (see
// numeric::ExpLut::max_abs_error).
#pragma once

#include <cstddef>
#include <vector>

#include "data/types.hpp"
#include "model/memn2n.hpp"
#include "numeric/fixed_point.hpp"
#include "numeric/vector_ops.hpp"

namespace mann::model {

/// Full forward pass (Eqs. 1-6) with all operands in Fx.
/// Returns float-valued logits (converted back from Fx) so callers can
/// compare directly against MemN2N::forward.
template <typename Fx>
[[nodiscard]] std::vector<float> quantized_logits(
    const MemN2N& net, const data::EncodedStory& story) {
  const ModelConfig& cfg = net.config();
  const Parameters& p = net.params();
  const std::size_t e = cfg.embedding_dim;
  const std::size_t slots = net.memory_slots(story);
  const std::size_t first = story.context.size() - slots;

  const auto embed_row = [&](const numeric::Matrix& emb, std::size_t w,
                             std::vector<Fx>& acc) {
    for (std::size_t d = 0; d < e; ++d) {
      acc[d] += Fx::from_float(emb(w, d));
    }
  };
  const auto fx_dot_local = [](const std::vector<Fx>& a,
                               const std::vector<Fx>& b) {
    Fx acc{};
    for (std::size_t d = 0; d < a.size(); ++d) {
      acc += a[d] * b[d];
    }
    return acc;
  };

  // Eq. 2: bag-of-words memories in fixed point.
  std::vector<std::vector<Fx>> mem_a(slots, std::vector<Fx>(e));
  std::vector<std::vector<Fx>> mem_c(slots, std::vector<Fx>(e));
  for (std::size_t i = 0; i < slots; ++i) {
    for (const std::int32_t w : story.context[first + i]) {
      embed_row(p.embedding_a, static_cast<std::size_t>(w), mem_a[i]);
      embed_row(p.embedding_c, static_cast<std::size_t>(w), mem_c[i]);
    }
  }
  // Eq. 3 (t = 1).
  std::vector<Fx> k(e);
  for (const std::int32_t w : story.question) {
    embed_row(p.embedding_q, static_cast<std::size_t>(w), k);
  }

  for (std::size_t hop = 0; hop < cfg.hops; ++hop) {
    // Eq. 1 scores in fixed point; softmax on the dequantized scores.
    std::vector<float> scores(slots);
    for (std::size_t i = 0; i < slots; ++i) {
      scores[i] = fx_dot_local(mem_a[i], k).to_float();
    }
    numeric::softmax_inplace(scores);
    // Eq. 5 weighted read with re-quantized attention.
    std::vector<Fx> read(e);
    for (std::size_t i = 0; i < slots; ++i) {
      const Fx a = Fx::from_float(scores[i]);
      for (std::size_t d = 0; d < e; ++d) {
        read[d] += a * mem_c[i][d];
      }
    }
    // Eq. 4 controller.
    std::vector<Fx> h(e);
    for (std::size_t row = 0; row < e; ++row) {
      Fx acc{};
      for (std::size_t d = 0; d < e; ++d) {
        acc += Fx::from_float(p.w_r(row, d)) * k[d];
      }
      h[row] = acc + read[row];
    }
    k = std::move(h);  // Eq. 3 (t > 1)
  }

  // Eq. 6.
  std::vector<float> logits(cfg.vocab_size);
  for (std::size_t cls = 0; cls < cfg.vocab_size; ++cls) {
    Fx acc{};
    for (std::size_t d = 0; d < e; ++d) {
      acc += Fx::from_float(p.w_o(cls, d)) * k[d];
    }
    logits[cls] = acc.to_float();
  }
  return logits;
}

/// Argmax prediction of the quantized forward pass.
template <typename Fx>
[[nodiscard]] std::size_t quantized_predict(const MemN2N& net,
                                            const data::EncodedStory& story) {
  return numeric::argmax(quantized_logits<Fx>(net, story));
}

/// Aggregate quantization quality over a dataset.
struct QuantizationReport {
  double argmax_agreement = 0.0;  ///< fraction matching the float argmax
  double accuracy = 0.0;          ///< fraction matching the true answer
  float max_logit_error = 0.0F;   ///< worst |quantized - float| logit
};

template <typename Fx>
[[nodiscard]] QuantizationReport evaluate_quantized(
    const MemN2N& net, const std::vector<data::EncodedStory>& stories) {
  QuantizationReport report;
  if (stories.empty()) {
    return report;
  }
  std::size_t agree = 0;
  std::size_t correct = 0;
  for (const data::EncodedStory& story : stories) {
    const ForwardTrace ref = net.forward(story);
    const auto logits = quantized_logits<Fx>(net, story);
    for (std::size_t i = 0; i < logits.size(); ++i) {
      report.max_logit_error =
          std::max(report.max_logit_error,
                   std::abs(logits[i] - ref.logits[i]));
    }
    const std::size_t pred = numeric::argmax(logits);
    agree += pred == ref.prediction ? 1 : 0;
    correct += pred == static_cast<std::size_t>(story.answer) ? 1 : 0;
  }
  const auto n = static_cast<double>(stories.size());
  report.argmax_agreement = static_cast<double>(agree) / n;
  report.accuracy = static_cast<double>(correct) / n;
  return report;
}

}  // namespace mann::model
