// End-to-end memory network (MemN2N) — the MANN of the paper, Eqs. 1-6.
//
// Shapes follow the paper's notation with embeddings stored row-per-word:
//   embedding_a (A):  V x E  — address-memory embedding (Eq. 2 for M_a)
//   embedding_c (C):  V x E  — content-memory embedding (Eq. 2 for M_c)
//   embedding_q (B):  V x E  — question embedding (Eq. 3, k¹ = W_emb_q q)
//   w_r:              E x E  — controller weight (Eq. 4)
//   w_o:              V x E  — output layer, logit z_i = w_o[i,:] · h (Eq. 6)
// with V = |I| the vocabulary/output dimension and E the embedding dim.
// The same A/C/W_r are reused across hops — the recurrent READ path the
// accelerator's blue line implements.
#pragma once

#include <cstddef>
#include <vector>

#include "data/types.hpp"
#include "numeric/matrix.hpp"
#include "numeric/random.hpp"

namespace mann::model {

/// Hyper-parameters of a MemN2N instance.
struct ModelConfig {
  std::size_t vocab_size = 0;      ///< V = |I|
  std::size_t embedding_dim = 20;  ///< E = |E|
  std::size_t hops = 3;            ///< recurrent read hops
  std::size_t max_memory = 50;     ///< L: stories keep the last L sentences
  float init_stddev = 0.1F;        ///< weight init N(0, init_stddev)
};

/// Learnable parameters (also the unit of serialization / gradient).
struct Parameters {
  numeric::Matrix embedding_a;  ///< V x E
  numeric::Matrix embedding_c;  ///< V x E
  numeric::Matrix embedding_q;  ///< V x E
  numeric::Matrix w_r;          ///< E x E
  numeric::Matrix w_o;          ///< V x E

  /// Zero-initialized parameters with the config's shapes.
  static Parameters zeros(const ModelConfig& config);

  /// Gaussian-initialized parameters.
  static Parameters random(const ModelConfig& config, numeric::Rng& rng);

  void add_scaled(const Parameters& other, float scale);
  void fill(float value);
};

/// Everything the forward pass computes, retained for backprop and for the
/// accelerator/golden-model comparison tests.
struct ForwardTrace {
  numeric::Matrix memory_a;            ///< L x E (Eq. 2)
  numeric::Matrix memory_c;            ///< L x E (Eq. 2)
  std::vector<std::vector<float>> k;   ///< hops+1 read keys (Eq. 3)
  std::vector<std::vector<float>> a;   ///< attention per hop (Eq. 1)
  std::vector<std::vector<float>> r;   ///< read vector per hop (Eq. 5)
  std::vector<std::vector<float>> h;   ///< controller output per hop (Eq. 4)
  std::vector<float> logits;           ///< z = W_o h^H (Eq. 6)
  std::size_t prediction = 0;          ///< argmax(z)
};

/// The model: immutable config + mutable parameters + pure forward pass.
class MemN2N {
 public:
  MemN2N(ModelConfig config, Parameters params);

  /// Convenience: random init.
  MemN2N(const ModelConfig& config, numeric::Rng& rng);

  [[nodiscard]] const ModelConfig& config() const noexcept { return config_; }
  [[nodiscard]] const Parameters& params() const noexcept { return params_; }
  [[nodiscard]] Parameters& params() noexcept { return params_; }

  /// Linear-start mode (Sukhbaatar et al.): the attention softmax of
  /// Eq. 1 is removed (attention = raw scores) during the first training
  /// epochs, which eases optimization on multi-fact tasks. Training-time
  /// only — it is not serialized and the accelerator always runs softmax.
  void set_linear_attention(bool enabled) noexcept {
    linear_attention_ = enabled;
  }
  [[nodiscard]] bool linear_attention() const noexcept {
    return linear_attention_;
  }

  /// Full forward pass with trace (Eqs. 1-6).
  [[nodiscard]] ForwardTrace forward(const data::EncodedStory& story) const;

  /// Forward pass up to (and excluding) the output layer; returns h^H.
  /// This is the "Do forward pass M(x) until output layer" of Algo. 1
  /// Step 4 — inference thresholding takes over from here.
  [[nodiscard]] std::vector<float> forward_features(
      const data::EncodedStory& story) const;

  /// Predicted label = argmax over all logits.
  [[nodiscard]] std::size_t predict(const data::EncodedStory& story) const;

  /// Number of memory slots a story occupies (min(sentences, L)).
  [[nodiscard]] std::size_t memory_slots(
      const data::EncodedStory& story) const noexcept;

 private:
  /// Builds M (L x E) from sentence bags using `embedding` (Eq. 2).
  [[nodiscard]] numeric::Matrix embed_memory(
      const data::EncodedStory& story,
      const numeric::Matrix& embedding) const;

  /// k¹ from the question bag (Eq. 3, t = 1 branch).
  [[nodiscard]] std::vector<float> embed_question(
      const data::EncodedStory& story) const;

  ModelConfig config_;
  Parameters params_;
  bool linear_attention_ = false;
};

}  // namespace mann::model
