// Mini world simulator behind the synthetic bAbI-style generators.
//
// bAbI stories are traces of a simple simulated world (the original dataset
// was itself produced by a simulation). This class tracks actors, portable
// objects and locations through move/grab/drop/give events and answers the
// queries the task generators need (current location, holder, location
// history, carried set). Generators create event streams, render them to
// sentences, and derive ground-truth answers from these queries — so the
// generated answer is correct by construction.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace mann::data {

/// Tracks where actors and objects are as events are applied.
class World {
 public:
  World(std::vector<std::string> actors, std::vector<std::string> locations,
        std::vector<std::string> objects);

  /// Actor moves to a location (both must exist; throws otherwise).
  void move(const std::string& actor, const std::string& location);

  /// Actor picks up an object. The object must not already be held.
  void grab(const std::string& actor, const std::string& object);

  /// Actor drops an object they hold (leaves it at the actor's location).
  void drop(const std::string& actor, const std::string& object);

  /// Actor hands an object they hold to another actor.
  void give(const std::string& from, const std::string& to,
            const std::string& object);

  /// Current location of an actor, if any move has happened.
  [[nodiscard]] std::optional<std::string> actor_location(
      const std::string& actor) const;

  /// Location of an object: the holder's location if held, else where it
  /// was last dropped (nullopt if never placed anywhere known).
  [[nodiscard]] std::optional<std::string> object_location(
      const std::string& object) const;

  /// Actor currently holding the object.
  [[nodiscard]] std::optional<std::string> holder(
      const std::string& object) const;

  /// Objects held by the actor, in pickup order.
  [[nodiscard]] std::vector<std::string> carried(
      const std::string& actor) const;

  /// Distinct known locations an object has occupied, oldest first,
  /// including its current one. Includes the locations of holders at the
  /// time the object moved with them.
  [[nodiscard]] std::vector<std::string> object_location_history(
      const std::string& object) const;

  /// Distinct locations an actor has visited, oldest first.
  [[nodiscard]] std::vector<std::string> actor_location_history(
      const std::string& actor) const;

  [[nodiscard]] const std::vector<std::string>& actors() const noexcept {
    return actors_;
  }
  [[nodiscard]] const std::vector<std::string>& locations() const noexcept {
    return locations_;
  }
  [[nodiscard]] const std::vector<std::string>& objects() const noexcept {
    return objects_;
  }

 private:
  struct ActorState {
    std::optional<std::string> location;
    std::vector<std::string> held;
    std::vector<std::string> visited;
  };
  struct ObjectState {
    std::optional<std::string> holder;
    std::optional<std::string> location;
    std::vector<std::string> history;
  };

  [[nodiscard]] ActorState& actor_state(const std::string& actor);
  [[nodiscard]] const ActorState& actor_state(const std::string& actor) const;
  [[nodiscard]] ObjectState& object_state(const std::string& object);
  [[nodiscard]] const ObjectState& object_state(
      const std::string& object) const;

  void record_object_location(ObjectState& state, const std::string& loc);

  std::vector<std::string> actors_;
  std::vector<std::string> locations_;
  std::vector<std::string> objects_;
  std::vector<ActorState> actor_states_;
  std::vector<ObjectState> object_states_;
};

}  // namespace mann::data
