// Internal helpers shared by the task generator translation units.
// Not part of the public API.
#pragma once

#include <string>
#include <vector>

#include "data/types.hpp"
#include "numeric/random.hpp"

namespace mann::data::detail {

// Fixed lexicons (closed world; every token generated here ends up in the
// task vocabulary, which sets the output dimension |I|).
const std::vector<std::string>& actor_names();
const std::vector<std::string>& location_names();
const std::vector<std::string>& object_names();

/// "he" or "she" for a known actor name.
const std::string& pronoun(const std::string& actor);

template <typename T>
const T& pick(numeric::Rng& rng, const std::vector<T>& v) {
  return v[rng.index(v.size())];
}

/// Picks `k` distinct elements in random order.
std::vector<std::string> pick_distinct(numeric::Rng& rng,
                                       const std::vector<std::string>& v,
                                       std::size_t k);

// Sentence templates with bAbI-like verb variation.
Sentence move_sentence(numeric::Rng& rng, const std::string& actor,
                       const std::string& location);
Sentence pair_move_sentence(numeric::Rng& rng, const std::string& a,
                            const std::string& b,
                            const std::string& location);
Sentence grab_sentence(numeric::Rng& rng, const std::string& actor,
                       const std::string& object);
Sentence drop_sentence(numeric::Rng& rng, const std::string& actor,
                       const std::string& object);
Sentence give_sentence(const std::string& from, const std::string& to,
                       const std::string& object);

/// "where is mary"
Sentence where_is_actor(const std::string& actor);
/// "where is the football"
Sentence where_is_object(const std::string& object);

}  // namespace mann::data::detail
