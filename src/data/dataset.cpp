#include "data/dataset.hpp"

#include <algorithm>

#include "data/encoder.hpp"

namespace mann::data {

WorkloadStats compute_stats(const std::vector<EncodedStory>& stories) {
  WorkloadStats st;
  st.stories = stories.size();
  for (const EncodedStory& s : stories) {
    st.sentences += s.context.size();
    st.max_sentences = std::max(st.max_sentences, s.context.size());
    for (const auto& sentence : s.context) {
      st.context_words += sentence.size();
    }
    st.question_words += s.question.size();
  }
  return st;
}

TaskDataset build_task_dataset(TaskId id, const DatasetConfig& config) {
  // Derive a task-specific stream so adding tasks never perturbs others.
  numeric::Rng rng(config.seed * std::uint64_t{1000003} +
                   static_cast<std::uint64_t>(task_number(id)));
  const auto train_raw = generate_stories(id, config.train_stories, rng);
  const auto test_raw = generate_stories(id, config.test_stories, rng);

  TaskDataset ds;
  ds.id = id;
  for (const Story& s : train_raw) {
    add_story_to_vocab(s, ds.vocab);
  }
  for (const Story& s : test_raw) {
    add_story_to_vocab(s, ds.vocab);
  }
  ds.train = encode_stories(train_raw, ds.vocab);
  ds.test = encode_stories(test_raw, ds.vocab);
  return ds;
}

std::vector<TaskDataset> build_suite(const DatasetConfig& config) {
  std::vector<TaskDataset> suite;
  suite.reserve(all_tasks().size());
  for (TaskId id : all_tasks()) {
    suite.push_back(build_task_dataset(id, config));
  }
  return suite;
}

std::vector<TaskDataset> build_joint_suite(const DatasetConfig& config) {
  // Pass 1: generate raw stories for every task (same per-task streams as
  // build_task_dataset) and accumulate the joint vocabulary.
  struct RawTask {
    TaskId id{};
    std::vector<Story> train;
    std::vector<Story> test;
  };
  std::vector<RawTask> raw;
  raw.reserve(all_tasks().size());
  Vocab joint;
  for (TaskId id : all_tasks()) {
    numeric::Rng rng(config.seed * std::uint64_t{1000003} +
                     static_cast<std::uint64_t>(task_number(id)));
    RawTask rt;
    rt.id = id;
    rt.train = generate_stories(id, config.train_stories, rng);
    rt.test = generate_stories(id, config.test_stories, rng);
    for (const Story& s : rt.train) {
      add_story_to_vocab(s, joint);
    }
    for (const Story& s : rt.test) {
      add_story_to_vocab(s, joint);
    }
    raw.push_back(std::move(rt));
  }
  // Pass 2: encode every task against the joint vocabulary.
  std::vector<TaskDataset> suite;
  suite.reserve(raw.size());
  for (RawTask& rt : raw) {
    TaskDataset ds;
    ds.id = rt.id;
    ds.vocab = joint;
    ds.train = encode_stories(rt.train, joint);
    ds.test = encode_stories(rt.test, joint);
    suite.push_back(std::move(ds));
  }
  return suite;
}

}  // namespace mann::data
