// Plain-data story/QA types shared across the data pipeline.
//
// The paper evaluates on the 20 bAbI QA tasks: short stories (sequences of
// simple sentences), each followed by a question with a single-token answer.
// We generate synthetic stories with the same structure (see tasks.hpp for
// the substitution rationale).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mann::data {

/// A sentence as a sequence of lowercase word tokens (no punctuation).
using Sentence = std::vector<std::string>;

/// One QA example: context sentences, a question, and a one-token answer.
struct Story {
  std::vector<Sentence> context;
  Sentence question;
  std::string answer;
};

/// Word-index form of a Story after vocabulary lookup. Sentences are
/// bags of word indices — exactly the sparse form Eq. 2 of the paper
/// exploits in the INPUT & WRITE module.
struct EncodedStory {
  std::vector<std::vector<std::int32_t>> context;
  std::vector<std::int32_t> question;
  std::int32_t answer = -1;
};

}  // namespace mann::data
