// Per-task dataset assembly: generation, vocabulary building, encoding,
// train/test split, and workload statistics for the cost models.
#pragma once

#include <cstddef>
#include <vector>

#include "data/tasks.hpp"
#include "data/types.hpp"
#include "data/vocab.hpp"
#include "numeric/random.hpp"

namespace mann::data {

/// Aggregate size statistics of a set of encoded stories; these drive the
/// accelerator stream sizes and the CPU/GPU op-count models.
struct WorkloadStats {
  std::size_t stories = 0;
  std::size_t sentences = 0;       ///< total context sentences
  std::size_t context_words = 0;   ///< total context word tokens
  std::size_t question_words = 0;  ///< total question word tokens
  std::size_t max_sentences = 0;   ///< longest story (memory size L bound)
};

[[nodiscard]] WorkloadStats compute_stats(
    const std::vector<EncodedStory>& stories);

/// A fully-prepared task: closed vocabulary plus encoded train/test splits.
struct TaskDataset {
  TaskId id{};
  Vocab vocab;
  std::vector<EncodedStory> train;
  std::vector<EncodedStory> test;

  [[nodiscard]] std::size_t vocab_size() const noexcept {
    return vocab.size();
  }
};

/// Generation parameters. Defaults give bAbI-like proportions at a size
/// that trains in seconds per task.
struct DatasetConfig {
  std::size_t train_stories = 900;
  std::size_t test_stories = 200;
  std::uint64_t seed = 42;
};

/// Builds one task's dataset (vocab covers train + test; both splits are
/// generated from a task-and-seed-derived Rng so tasks are independent).
[[nodiscard]] TaskDataset build_task_dataset(TaskId id,
                                             const DatasetConfig& config);

/// Builds all 20 tasks with independent per-task vocabularies.
[[nodiscard]] std::vector<TaskDataset> build_suite(
    const DatasetConfig& config);

/// Builds all 20 tasks over one *joint* vocabulary (the union of every
/// task's tokens). This mirrors the paper's evaluation regime where the
/// output dimension |I| is much larger than the embedding dimension |E|
/// (§IV: output-layer time dominates inference) — each per-task model then
/// carries the full output layer, and inference thresholding has the
/// many-irrelevant-classes structure it exploits.
[[nodiscard]] std::vector<TaskDataset> build_joint_suite(
    const DatasetConfig& config);

}  // namespace mann::data
