// Generators for the deduction / induction / spatial task families:
// qa15, qa16, qa17, qa18, qa19, qa20.
#include <algorithm>
#include <array>
#include <stdexcept>

#include "data/tasks.hpp"
#include "data/tasks_common.hpp"

namespace mann::data::detail {
namespace {

struct SpeciesEntry {
  std::string singular;
  std::string plural;
};

const std::vector<SpeciesEntry>& species() {
  static const std::vector<SpeciesEntry> v = {{"mouse", "mice"},
                                              {"sheep", "sheep"},
                                              {"swan", "swans"},
                                              {"rat", "rats"}};
  return v;
}

const std::vector<std::string>& predators() {
  static const std::vector<std::string> v = {"wolves", "cats", "dogs",
                                             "snakes"};
  return v;
}

const std::vector<std::string>& animal_names() {
  static const std::vector<std::string> v = {"gertrude", "lily", "bernhard",
                                             "brian", "greg", "winona"};
  return v;
}

const std::vector<std::string>& colors() {
  static const std::vector<std::string> v = {"white", "green", "gray",
                                             "yellow"};
  return v;
}

struct Item {
  std::string color;
  std::string shape;
  int x = 0;
  int y = 0;
};

const std::vector<std::string>& shape_colors() {
  static const std::vector<std::string> v = {"red", "blue", "pink"};
  return v;
}

const std::vector<std::string>& shapes() {
  static const std::vector<std::string> v = {"square", "triangle",
                                             "rectangle", "sphere"};
  return v;
}

const std::vector<std::string>& containers() {
  static const std::vector<std::string> v = {"box", "chest", "suitcase",
                                             "chocolate", "bottle"};
  return v;
}

}  // namespace

// --- qa15: basic deduction ------------------------------------------------

Story gen_basic_deduction(numeric::Rng& rng) {
  Story story;
  // Random species -> predator mapping (a permutation keeps it bijective).
  const std::size_t n = species().size();
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) {
    perm[i] = i;
  }
  rng.shuffle(std::span<std::size_t>(perm));

  for (std::size_t i = 0; i < n; ++i) {
    story.context.push_back({species()[i].plural, "are", "afraid", "of",
                             predators()[perm[i]]});
  }
  // Name -> species facts.
  const auto names = pick_distinct(rng, animal_names(), 3);
  std::vector<std::size_t> name_species;
  for (const std::string& name : names) {
    const std::size_t s = rng.index(n);
    name_species.push_back(s);
    story.context.push_back({name, "is", "a", species()[s].singular});
  }
  rng.shuffle(std::span<Sentence>(story.context));

  const std::size_t q = rng.index(names.size());
  story.question = {"what", "is", names[q], "afraid", "of"};
  story.answer = predators()[perm[name_species[q]]];
  return story;
}

// --- qa16: basic induction -------------------------------------------------

Story gen_basic_induction(numeric::Rng& rng) {
  Story story;
  // Two species, each with a color; one witness animal per species reveals
  // the color, a second animal's color is asked.
  const auto kinds = rng.sample_without_replacement(species().size(), 2);
  const auto kind_colors = pick_distinct(rng, colors(), 2);
  const auto names = pick_distinct(rng, animal_names(), 4);

  // names[0]/names[1]: witnesses; names[2]/names[3]: queried.
  for (std::size_t k = 0; k < 2; ++k) {
    const SpeciesEntry& sp = species()[kinds[k]];
    story.context.push_back({names[k], "is", "a", sp.singular});
    story.context.push_back({names[k], "is", kind_colors[k]});
    story.context.push_back({names[k + 2], "is", "a", sp.singular});
  }
  rng.shuffle(std::span<Sentence>(story.context));

  const std::size_t q = rng.index(2);
  story.question = {"what", "color", "is", names[q + 2]};
  story.answer = kind_colors[q];
  return story;
}

// --- qa17: positional reasoning -----------------------------------------------

Story gen_positional_reasoning(numeric::Rng& rng) {
  Story story;
  // Three items on a grid; reveal two adjacent relations, ask a third.
  const auto cols = pick_distinct(rng, shape_colors(), 3);
  const auto shps = pick_distinct(rng, shapes(), 3);
  std::array<Item, 3> items;
  for (std::size_t i = 0; i < 3; ++i) {
    items[i] = {cols[i], shps[i], 0, 0};
  }

  auto relate = [&](std::size_t a, std::size_t b) -> Sentence {
    // Choose a relation of item a w.r.t. item b and set coordinates.
    switch (rng.index(4)) {
      case 0:
        items[a].x = items[b].x - 1;
        items[a].y = items[b].y;
        return {"the", items[a].color, items[a].shape, "is", "to", "the",
                "left", "of", "the", items[b].color, items[b].shape};
      case 1:
        items[a].x = items[b].x + 1;
        items[a].y = items[b].y;
        return {"the", items[a].color, items[a].shape, "is", "to", "the",
                "right", "of", "the", items[b].color, items[b].shape};
      case 2:
        items[a].x = items[b].x;
        items[a].y = items[b].y + 1;
        return {"the", items[a].color, items[a].shape, "is", "above", "the",
                items[b].color, items[b].shape};
      default:
        items[a].x = items[b].x;
        items[a].y = items[b].y - 1;
        return {"the", items[a].color, items[a].shape, "is", "below", "the",
                items[b].color, items[b].shape};
    }
  };

  story.context.push_back(relate(0, 1));
  story.context.push_back(relate(2, 1));

  // Ask about a determined axis between two random distinct items.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::size_t a = rng.index(3);
    std::size_t b = rng.index(3);
    if (a == b) {
      continue;
    }
    const Item& ia = items[a];
    const Item& ib = items[b];
    const std::size_t form = rng.index(4);
    bool truth = false;
    Sentence q;
    if (form == 0 && ia.x != ib.x) {
      truth = ia.x < ib.x;
      q = {"is", "the", ia.color, ia.shape, "to", "the", "left", "of",
           "the", ib.color, ib.shape};
    } else if (form == 1 && ia.x != ib.x) {
      truth = ia.x > ib.x;
      q = {"is", "the", ia.color, ia.shape, "to", "the", "right", "of",
           "the", ib.color, ib.shape};
    } else if (form == 2 && ia.y != ib.y) {
      truth = ia.y > ib.y;
      q = {"is", "the", ia.color, ia.shape, "above", "the", ib.color,
           ib.shape};
    } else if (form == 3 && ia.y != ib.y) {
      truth = ia.y < ib.y;
      q = {"is", "the", ia.color, ia.shape, "below", "the", ib.color,
           ib.shape};
    } else {
      continue;
    }
    story.question = q;
    story.answer = truth ? "yes" : "no";
    return story;
  }
  throw std::logic_error("qa17: failed to form a determined question");
}

// --- qa18: size reasoning ---------------------------------------------------------

Story gen_size_reasoning(numeric::Rng& rng) {
  Story story;
  // A random strict size order over four containers; reveal the three
  // adjacent comparisons, ask a transitively-determined pair.
  auto order = pick_distinct(rng, containers(), 4);  // order[0] largest
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    if (rng.index(2) == 0) {
      story.context.push_back({"the", order[i], "is", "bigger", "than",
                               "the", order[i + 1]});
    } else {
      story.context.push_back({"the", order[i + 1], "fits", "inside", "the",
                               order[i]});
    }
  }
  rng.shuffle(std::span<Sentence>(story.context));

  std::size_t a = rng.index(order.size());
  std::size_t b = rng.index(order.size());
  while (a == b) {
    b = rng.index(order.size());
  }
  const bool a_bigger = a < b;
  if (rng.index(2) == 0) {
    story.question = {"is", "the", order[a], "bigger", "than", "the",
                      order[b]};
    story.answer = a_bigger ? "yes" : "no";
  } else {
    story.question = {"does", "the", order[a], "fit", "inside", "the",
                      order[b]};
    story.answer = a_bigger ? "no" : "yes";
  }
  return story;
}

// --- qa19: path finding ------------------------------------------------------------

Story gen_path_finding(numeric::Rng& rng) {
  Story story;
  // Plus-shaped map: center plus its four compass neighbors.
  const auto rooms = pick_distinct(rng, location_names(), 5);
  struct Node {
    std::string name;
    int x;
    int y;
  };
  // rooms[0] center; N/E/S/W neighbors.
  const std::array<Node, 5> nodes = {{{rooms[0], 0, 0},
                                      {rooms[1], 0, 1},
                                      {rooms[2], 1, 0},
                                      {rooms[3], 0, -1},
                                      {rooms[4], -1, 0}}};
  story.context = {
      {"the", nodes[1].name, "is", "north", "of", "the", nodes[0].name},
      {"the", nodes[2].name, "is", "east", "of", "the", nodes[0].name},
      {"the", nodes[3].name, "is", "south", "of", "the", nodes[0].name},
      {"the", nodes[4].name, "is", "west", "of", "the", nodes[0].name},
  };
  rng.shuffle(std::span<Sentence>(story.context));

  // Choose distinct endpoints; the plus shape keeps |dx|,|dy| <= 1 except
  // for opposite arms (distance 2 on one axis), which we skip so every
  // answer is at most two steps with one step per axis.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::size_t a = rng.index(5);
    const std::size_t b = rng.index(5);
    if (a == b) {
      continue;
    }
    const int dx = nodes[b].x - nodes[a].x;
    const int dy = nodes[b].y - nodes[a].y;
    if (dx < -1 || dx > 1 || dy < -1 || dy > 1) {
      continue;  // opposite arms
    }
    std::string answer;
    if (dy > 0) {
      answer = "north";
    } else if (dy < 0) {
      answer = "south";
    }
    if (dx != 0) {
      const std::string horizontal = dx > 0 ? "east" : "west";
      answer = answer.empty() ? horizontal : answer + "_" + horizontal;
    }
    story.question = {"how", "do", "you", "go", "from", "the", nodes[a].name,
                      "to", "the", nodes[b].name};
    story.answer = answer;
    return story;
  }
  throw std::logic_error("qa19: failed to pick endpoints");
}

// --- qa20: agent motivations ----------------------------------------------------------

Story gen_agents_motivations(numeric::Rng& rng) {
  Story story;
  struct Motivation {
    std::string state;
    std::string destination;
  };
  static const std::vector<Motivation> table = {{"hungry", "kitchen"},
                                                {"sleepy", "bedroom"},
                                                {"bored", "garden"},
                                                {"thirsty", "office"}};
  const auto people = pick_distinct(rng, actor_names(), 2);
  const Motivation& m0 = table[rng.index(table.size())];
  const Motivation& m1 = table[rng.index(table.size())];

  story.context.push_back({people[0], "is", m0.state});
  story.context.push_back(
      {people[0], "went", "to", "the", m0.destination});
  story.context.push_back({people[1], "is", m1.state});
  story.context.push_back(
      {people[1], "went", "to", "the", m1.destination});

  const std::size_t q = rng.index(2);
  const Motivation& mq = q == 0 ? m0 : m1;
  if (rng.index(2) == 0) {
    story.question = {"why", "did", people[q], "go", "to", "the",
                      mq.destination};
    story.answer = mq.state;
  } else {
    // Predictive form asked before the move is revealed; rebuild context
    // without the queried actor's move sentence.
    story.context.clear();
    story.context.push_back({people[0], "is", m0.state});
    story.context.push_back({people[1], "is", m1.state});
    if (q == 1) {
      story.context.push_back(
          {people[0], "went", "to", "the", m0.destination});
    } else {
      story.context.push_back(
          {people[1], "went", "to", "the", m1.destination});
    }
    story.question = {"where", "will", people[q], "go"};
    story.answer = mq.destination;
  }
  return story;
}

}  // namespace mann::data::detail
