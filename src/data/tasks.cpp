#include "data/tasks.hpp"

#include <stdexcept>

namespace mann::data {

const std::vector<TaskId>& all_tasks() {
  static const std::vector<TaskId> tasks = [] {
    std::vector<TaskId> t;
    for (int i = 1; i <= 20; ++i) {
      t.push_back(static_cast<TaskId>(i));
    }
    return t;
  }();
  return tasks;
}

int task_number(TaskId id) noexcept { return static_cast<int>(id); }

std::string task_name(TaskId id) {
  switch (id) {
    case TaskId::kSingleSupportingFact: return "qa1-single-supporting-fact";
    case TaskId::kTwoSupportingFacts: return "qa2-two-supporting-facts";
    case TaskId::kThreeSupportingFacts: return "qa3-three-supporting-facts";
    case TaskId::kTwoArgRelations: return "qa4-two-arg-relations";
    case TaskId::kThreeArgRelations: return "qa5-three-arg-relations";
    case TaskId::kYesNoQuestions: return "qa6-yes-no-questions";
    case TaskId::kCounting: return "qa7-counting";
    case TaskId::kListsSets: return "qa8-lists-sets";
    case TaskId::kSimpleNegation: return "qa9-simple-negation";
    case TaskId::kIndefiniteKnowledge: return "qa10-indefinite-knowledge";
    case TaskId::kBasicCoreference: return "qa11-basic-coreference";
    case TaskId::kConjunction: return "qa12-conjunction";
    case TaskId::kCompoundCoreference: return "qa13-compound-coreference";
    case TaskId::kTimeReasoning: return "qa14-time-reasoning";
    case TaskId::kBasicDeduction: return "qa15-basic-deduction";
    case TaskId::kBasicInduction: return "qa16-basic-induction";
    case TaskId::kPositionalReasoning: return "qa17-positional-reasoning";
    case TaskId::kSizeReasoning: return "qa18-size-reasoning";
    case TaskId::kPathFinding: return "qa19-path-finding";
    case TaskId::kAgentsMotivations: return "qa20-agents-motivations";
  }
  throw std::invalid_argument("task_name: bad TaskId");
}

Story generate_story(TaskId id, numeric::Rng& rng) {
  using namespace detail;
  switch (id) {
    case TaskId::kSingleSupportingFact: return gen_single_supporting_fact(rng);
    case TaskId::kTwoSupportingFacts: return gen_two_supporting_facts(rng);
    case TaskId::kThreeSupportingFacts: return gen_three_supporting_facts(rng);
    case TaskId::kTwoArgRelations: return gen_two_arg_relations(rng);
    case TaskId::kThreeArgRelations: return gen_three_arg_relations(rng);
    case TaskId::kYesNoQuestions: return gen_yes_no(rng);
    case TaskId::kCounting: return gen_counting(rng);
    case TaskId::kListsSets: return gen_lists_sets(rng);
    case TaskId::kSimpleNegation: return gen_simple_negation(rng);
    case TaskId::kIndefiniteKnowledge: return gen_indefinite_knowledge(rng);
    case TaskId::kBasicCoreference: return gen_basic_coreference(rng);
    case TaskId::kConjunction: return gen_conjunction(rng);
    case TaskId::kCompoundCoreference: return gen_compound_coreference(rng);
    case TaskId::kTimeReasoning: return gen_time_reasoning(rng);
    case TaskId::kBasicDeduction: return gen_basic_deduction(rng);
    case TaskId::kBasicInduction: return gen_basic_induction(rng);
    case TaskId::kPositionalReasoning: return gen_positional_reasoning(rng);
    case TaskId::kSizeReasoning: return gen_size_reasoning(rng);
    case TaskId::kPathFinding: return gen_path_finding(rng);
    case TaskId::kAgentsMotivations: return gen_agents_motivations(rng);
  }
  throw std::invalid_argument("generate_story: bad TaskId");
}

std::vector<Story> generate_stories(TaskId id, std::size_t count,
                                    numeric::Rng& rng) {
  std::vector<Story> stories;
  stories.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    stories.push_back(generate_story(id, rng));
  }
  return stories;
}

}  // namespace mann::data
