// Closed-world vocabulary: word <-> dense index.
//
// The output layer of the MANN (Eq. 6) is a dot product per vocabulary
// entry, so vocabulary size |I| is the quantity that makes MIPS expensive
// and inference thresholding worthwhile. Each task gets its own vocabulary
// built from its generated stories.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mann::data {

/// Bidirectional word <-> index map with insertion-order indices.
class Vocab {
 public:
  /// Returns the index for `word`, inserting it if new.
  std::int32_t add(std::string_view word);

  /// Index lookup without insertion.
  [[nodiscard]] std::optional<std::int32_t> find(
      std::string_view word) const;

  /// Index lookup that throws std::out_of_range for unknown words
  /// (generation and encoding share one closed world, so a miss is a bug).
  [[nodiscard]] std::int32_t at(std::string_view word) const;

  /// Word for index `i`. Throws std::out_of_range on bad index.
  [[nodiscard]] const std::string& word(std::int32_t i) const;

  [[nodiscard]] std::size_t size() const noexcept { return words_.size(); }
  [[nodiscard]] bool empty() const noexcept { return words_.empty(); }

 private:
  std::unordered_map<std::string, std::int32_t> index_;
  std::vector<std::string> words_;
};

/// Text serialization: one word per line, index == line number. Makes a
/// saved model artifact self-contained (model.bin + model.bin.vocab).
void save_vocab(std::ostream& out, const Vocab& vocab);
void save_vocab_file(const std::string& path, const Vocab& vocab);
[[nodiscard]] Vocab load_vocab(std::istream& in);
[[nodiscard]] Vocab load_vocab_file(const std::string& path);

}  // namespace mann::data
