// Generators for the coreference / relation / time task families:
// qa4, qa5, qa11, qa12, qa13, qa14.
#include <algorithm>
#include <array>
#include <stdexcept>

#include "data/tasks.hpp"
#include "data/tasks_common.hpp"
#include "data/world.hpp"

namespace mann::data::detail {
namespace {

const std::vector<std::string>& directions() {
  static const std::vector<std::string> v = {"north", "south", "east",
                                             "west"};
  return v;
}

std::string opposite(const std::string& dir) {
  if (dir == "north") return "south";
  if (dir == "south") return "north";
  if (dir == "east") return "west";
  if (dir == "west") return "east";
  throw std::invalid_argument("opposite: bad direction " + dir);
}

}  // namespace

// --- qa4: two-argument relations ---------------------------------------------

Story gen_two_arg_relations(numeric::Rng& rng) {
  Story story;
  // A chain of three distinct rooms: A <dir1> B, B <dir2> C.
  const auto rooms = pick_distinct(rng, location_names(), 3);
  const std::string& d1 = pick(rng, directions());
  std::string d2 = pick(rng, directions());
  while (d2 == opposite(d1)) {  // keep the chain acyclic
    d2 = pick(rng, directions());
  }
  // "the A is north of the B" means A is to the north of B.
  std::vector<Sentence> facts = {
      {"the", rooms[0], "is", d1, "of", "the", rooms[1]},
      {"the", rooms[1], "is", d2, "of", "the", rooms[2]},
  };
  if (rng.index(2) == 0) {
    std::swap(facts[0], facts[1]);
  }
  story.context = facts;

  // Four question forms, all uniquely answerable from one fact.
  switch (rng.index(4)) {
    case 0:
      story.question = {"what", "is", d1, "of", "the", rooms[1]};
      story.answer = rooms[0];
      break;
    case 1:
      story.question = {"what", "is", "the", rooms[0], d1, "of"};
      story.answer = rooms[1];
      break;
    case 2:
      story.question = {"what", "is", d2, "of", "the", rooms[2]};
      story.answer = rooms[1];
      break;
    default:
      story.question = {"what", "is", "the", rooms[1], d2, "of"};
      story.answer = rooms[2];
      break;
  }
  return story;
}

// --- qa5: three-argument relations ---------------------------------------------

Story gen_three_arg_relations(numeric::Rng& rng) {
  World world(actor_names(), location_names(), object_names());
  Story story;
  const auto people = pick_distinct(rng, world.actors(), 3);
  const auto objs = pick_distinct(rng, world.objects(), 2);

  // Two give chains with a shared location so 'gave' has context.
  const std::string& loc = pick(rng, world.locations());
  world.move(people[0], loc);
  story.context.push_back(move_sentence(rng, people[0], loc));
  world.move(people[1], loc);
  story.context.push_back(move_sentence(rng, people[1], loc));

  world.grab(people[0], objs[0]);
  story.context.push_back(grab_sentence(rng, people[0], objs[0]));
  world.give(people[0], people[1], objs[0]);
  story.context.push_back(give_sentence(people[0], people[1], objs[0]));

  const bool second_give = rng.index(2) == 0;
  if (second_give) {
    world.move(people[2], loc);
    story.context.push_back(move_sentence(rng, people[2], loc));
    world.grab(people[2], objs[1]);
    story.context.push_back(grab_sentence(rng, people[2], objs[1]));
    world.give(people[2], people[0], objs[1]);
    story.context.push_back(give_sentence(people[2], people[0], objs[1]));
  }

  // Question about the *last* give event (unambiguous).
  const std::string& giver = second_give ? people[2] : people[0];
  const std::string& receiver = second_give ? people[0] : people[1];
  const std::string& object = second_give ? objs[1] : objs[0];
  switch (rng.index(3)) {
    case 0:
      story.question = {"who", "gave", "the", object, "to", receiver};
      story.answer = giver;
      break;
    case 1:
      story.question = {"what", "did", giver, "give", "to", receiver};
      story.answer = object;
      break;
    default:
      story.question = {"who", "did", giver, "give", "the", object, "to"};
      story.answer = receiver;
      break;
  }
  return story;
}

// --- qa11: basic coreference ------------------------------------------------------

Story gen_basic_coreference(numeric::Rng& rng) {
  World world(actor_names(), location_names(), object_names());
  Story story;
  const std::size_t pairs = 1 + rng.index(2);
  std::vector<std::string> movers;
  for (std::size_t i = 0; i < pairs; ++i) {
    const std::string& actor = pick(rng, world.actors());
    const std::string& l1 = pick(rng, world.locations());
    world.move(actor, l1);
    story.context.push_back(move_sentence(rng, actor, l1));
    // Pronoun sentence refers to the immediately preceding actor.
    const std::string& l2 = pick(rng, world.locations());
    world.move(actor, l2);
    static const std::vector<std::string> connectives = {"then",
                                                         "afterwards",
                                                         "following", "that"};
    const std::size_t form = rng.index(3);
    if (form == 0) {
      story.context.push_back(
          {"then", pronoun(actor), "went", "to", "the", l2});
    } else if (form == 1) {
      story.context.push_back(
          {"afterwards", pronoun(actor), "moved", "to", "the", l2});
    } else {
      story.context.push_back(
          {"following", "that", pronoun(actor), "journeyed", "to", "the",
           l2});
    }
    movers.push_back(actor);
  }
  const std::string& queried = pick(rng, movers);
  story.question = where_is_actor(queried);
  story.answer = *world.actor_location(queried);
  return story;
}

// --- qa12: conjunction ---------------------------------------------------------------

Story gen_conjunction(numeric::Rng& rng) {
  World world(actor_names(), location_names(), object_names());
  Story story;
  const std::size_t events = 2 + rng.index(2);
  std::vector<std::string> mentioned;
  for (std::size_t i = 0; i < events; ++i) {
    const auto pair = pick_distinct(rng, world.actors(), 2);
    const std::string& loc = pick(rng, world.locations());
    world.move(pair[0], loc);
    world.move(pair[1], loc);
    story.context.push_back(pair_move_sentence(rng, pair[0], pair[1], loc));
    mentioned.push_back(pair[0]);
    mentioned.push_back(pair[1]);
  }
  const std::string& queried = pick(rng, mentioned);
  story.question = where_is_actor(queried);
  story.answer = *world.actor_location(queried);
  return story;
}

// --- qa13: compound coreference -------------------------------------------------------

Story gen_compound_coreference(numeric::Rng& rng) {
  World world(actor_names(), location_names(), object_names());
  Story story;
  const std::size_t groups = 1 + rng.index(2);
  std::vector<std::string> mentioned;
  for (std::size_t g = 0; g < groups; ++g) {
    const auto pair = pick_distinct(rng, world.actors(), 2);
    const std::string& l1 = pick(rng, world.locations());
    world.move(pair[0], l1);
    world.move(pair[1], l1);
    story.context.push_back(pair_move_sentence(rng, pair[0], pair[1], l1));
    // "then they went to the X" — 'they' binds to the preceding pair.
    const std::string& l2 = pick(rng, world.locations());
    world.move(pair[0], l2);
    world.move(pair[1], l2);
    if (rng.index(2) == 0) {
      story.context.push_back({"then", "they", "went", "to", "the", l2});
    } else {
      story.context.push_back(
          {"after", "that", "they", "moved", "to", "the", l2});
    }
    mentioned.push_back(pair[0]);
    mentioned.push_back(pair[1]);
  }
  const std::string& queried = pick(rng, mentioned);
  story.question = where_is_actor(queried);
  story.answer = *world.actor_location(queried);
  return story;
}

// --- qa14: time reasoning ----------------------------------------------------------------

Story gen_time_reasoning(numeric::Rng& rng) {
  Story story;
  // Ordered time slots, oldest first. Rendered as one leading token so the
  // BoW encoder keeps them distinguishable.
  static const std::vector<std::string> slots = {"yesterday", "morning",
                                                 "afternoon", "evening"};
  const std::string& actor = pick(rng, actor_names());
  const std::string& noise_actor = [&] {
    const std::string* n = &pick(rng, actor_names());
    while (*n == actor) {
      n = &pick(rng, actor_names());
    }
    return *n;
  }();

  // Assign a distinct location per slot for the queried actor.
  const std::size_t used = 3 + rng.index(2);  // 3 or 4 slots
  const auto locs = pick_distinct(rng, location_names(), used);
  struct Visit {
    std::string slot;
    std::string loc;
  };
  std::vector<Visit> visits;
  for (std::size_t i = 0; i < used; ++i) {
    visits.push_back({slots[i], locs[i]});
  }

  // Render in shuffled order, with a noise sentence mixed in.
  std::vector<Sentence> rendered;
  for (const Visit& v : visits) {
    if (v.slot == "yesterday") {
      rendered.push_back({"yesterday", actor, "went", "to", "the", v.loc});
    } else {
      rendered.push_back(
          {"this", v.slot, actor, "went", "to", "the", v.loc});
    }
  }
  rendered.push_back(move_sentence(rng, noise_actor,
                                   pick(rng, location_names())));
  rng.shuffle(std::span<Sentence>(rendered));
  story.context = rendered;

  // "where was X before the <loc_k>" -> loc_{k-1}.
  const std::size_t k = 1 + rng.index(used - 1);
  story.question = {"where", "was", actor, "before", "the", visits[k].loc};
  story.answer = visits[k - 1].loc;
  return story;
}

}  // namespace mann::data::detail
