#include "data/encoder.hpp"

namespace mann::data {

void add_story_to_vocab(const Story& story, Vocab& vocab) {
  for (const Sentence& s : story.context) {
    for (const std::string& w : s) {
      vocab.add(w);
    }
  }
  for (const std::string& w : story.question) {
    vocab.add(w);
  }
  vocab.add(story.answer);
}

EncodedStory encode_story(const Story& story, const Vocab& vocab) {
  EncodedStory enc;
  enc.context.reserve(story.context.size());
  for (const Sentence& s : story.context) {
    std::vector<std::int32_t> ids;
    ids.reserve(s.size());
    for (const std::string& w : s) {
      ids.push_back(vocab.at(w));
    }
    enc.context.push_back(std::move(ids));
  }
  enc.question.reserve(story.question.size());
  for (const std::string& w : story.question) {
    enc.question.push_back(vocab.at(w));
  }
  enc.answer = vocab.at(story.answer);
  return enc;
}

std::vector<EncodedStory> encode_stories(const std::vector<Story>& stories,
                                         const Vocab& vocab) {
  std::vector<EncodedStory> out;
  out.reserve(stories.size());
  for (const Story& s : stories) {
    out.push_back(encode_story(s, vocab));
  }
  return out;
}

}  // namespace mann::data
