// Generators for the movement/possession task families:
// qa1, qa2, qa3, qa6, qa7, qa8, qa9, qa10.
#include <algorithm>
#include <array>
#include <stdexcept>

#include "data/tasks.hpp"
#include "data/tasks_common.hpp"
#include "data/world.hpp"

namespace mann::data::detail {

const std::vector<std::string>& actor_names() {
  static const std::vector<std::string> v = {"mary", "john",  "daniel",
                                             "sandra", "fred", "julie",
                                             "bill", "jeff"};
  return v;
}

const std::vector<std::string>& location_names() {
  static const std::vector<std::string> v = {"kitchen", "garden",  "office",
                                             "bathroom", "bedroom", "hallway",
                                             "park", "school"};
  return v;
}

const std::vector<std::string>& object_names() {
  static const std::vector<std::string> v = {"football", "apple",   "milk",
                                             "suitcase", "pajamas", "cake"};
  return v;
}

const std::string& pronoun(const std::string& actor) {
  static const std::string he = "he";
  static const std::string she = "she";
  if (actor == "mary" || actor == "sandra" || actor == "julie") {
    return she;
  }
  return he;
}

std::vector<std::string> pick_distinct(numeric::Rng& rng,
                                       const std::vector<std::string>& v,
                                       std::size_t k) {
  const auto idx = rng.sample_without_replacement(v.size(), k);
  std::vector<std::string> out;
  out.reserve(k);
  for (std::size_t i : idx) {
    out.push_back(v[i]);
  }
  return out;
}

Sentence move_sentence(numeric::Rng& rng, const std::string& actor,
                       const std::string& location) {
  static const std::vector<std::string> verbs = {"went", "travelled",
                                                 "journeyed", "moved"};
  return {actor, pick(rng, verbs), "to", "the", location};
}

Sentence pair_move_sentence(numeric::Rng& rng, const std::string& a,
                            const std::string& b,
                            const std::string& location) {
  static const std::vector<std::string> verbs = {"went", "travelled",
                                                 "journeyed", "moved"};
  return {a, "and", b, pick(rng, verbs), "to", "the", location};
}

Sentence grab_sentence(numeric::Rng& rng, const std::string& actor,
                       const std::string& object) {
  switch (rng.index(3)) {
    case 0: return {actor, "picked", "up", "the", object};
    case 1: return {actor, "grabbed", "the", object};
    default: return {actor, "took", "the", object};
  }
}

Sentence drop_sentence(numeric::Rng& rng, const std::string& actor,
                       const std::string& object) {
  switch (rng.index(3)) {
    case 0: return {actor, "dropped", "the", object};
    case 1: return {actor, "discarded", "the", object};
    default: return {actor, "put", "down", "the", object};
  }
}

Sentence give_sentence(const std::string& from, const std::string& to,
                       const std::string& object) {
  return {from, "gave", "the", object, "to", to};
}

Sentence where_is_actor(const std::string& actor) {
  return {"where", "is", actor};
}

Sentence where_is_object(const std::string& object) {
  return {"where", "is", "the", object};
}

// --- qa1: single supporting fact -----------------------------------------

Story gen_single_supporting_fact(numeric::Rng& rng) {
  World world(actor_names(), location_names(), object_names());
  Story story;
  const std::size_t events = 2 + rng.index(5);  // 2..6 sentences
  for (std::size_t i = 0; i < events; ++i) {
    const std::string& actor = pick(rng, world.actors());
    const std::string& loc = pick(rng, world.locations());
    world.move(actor, loc);
    story.context.push_back(move_sentence(rng, actor, loc));
  }
  // Ask about an actor that actually moved.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::string& actor = pick(rng, world.actors());
    if (const auto loc = world.actor_location(actor)) {
      story.question = where_is_actor(actor);
      story.answer = *loc;
      return story;
    }
  }
  throw std::logic_error("qa1: no moved actor found");
}

// --- qa2: two supporting facts --------------------------------------------

Story gen_two_supporting_facts(numeric::Rng& rng) {
  World world(actor_names(), location_names(), object_names());
  Story story;
  const auto chosen = pick_distinct(rng, world.actors(), 2);
  const std::string& carrier = chosen[0];
  const std::string& noise_actor = chosen[1];
  const std::string& object = pick(rng, world.objects());

  // Carrier walks, picks the object up, walks again (the two supporting
  // facts are the grab and the final move). Noise actor wanders.
  const std::string& l1 = pick(rng, world.locations());
  world.move(carrier, l1);
  story.context.push_back(move_sentence(rng, carrier, l1));

  if (rng.index(2) == 0) {
    const std::string& nl = pick(rng, world.locations());
    world.move(noise_actor, nl);
    story.context.push_back(move_sentence(rng, noise_actor, nl));
  }

  world.grab(carrier, object);
  story.context.push_back(grab_sentence(rng, carrier, object));

  const std::string& l2 = pick(rng, world.locations());
  world.move(carrier, l2);
  story.context.push_back(move_sentence(rng, carrier, l2));

  if (rng.index(2) == 0) {
    world.drop(carrier, object);
    story.context.push_back(drop_sentence(rng, carrier, object));
  }
  if (rng.index(2) == 0) {
    const std::string& nl = pick(rng, world.locations());
    world.move(noise_actor, nl);
    story.context.push_back(move_sentence(rng, noise_actor, nl));
  }

  story.question = where_is_object(object);
  story.answer = *world.object_location(object);
  return story;
}

// --- qa3: three supporting facts ("where was X before Y") ------------------

Story gen_three_supporting_facts(numeric::Rng& rng) {
  World world(actor_names(), location_names(), object_names());
  Story story;
  const std::string& carrier = pick(rng, world.actors());
  const std::string& object = pick(rng, world.objects());

  // Visit three distinct locations while holding the object so its history
  // has at least two distinct entries.
  const auto locs = pick_distinct(rng, world.locations(), 3);
  world.move(carrier, locs[0]);
  story.context.push_back(move_sentence(rng, carrier, locs[0]));
  world.grab(carrier, object);
  story.context.push_back(grab_sentence(rng, carrier, object));
  world.move(carrier, locs[1]);
  story.context.push_back(move_sentence(rng, carrier, locs[1]));
  if (rng.index(2) == 0) {
    const std::string& other = pick(rng, world.actors());
    if (other != carrier) {
      const std::string& nl = pick(rng, world.locations());
      world.move(other, nl);
      story.context.push_back(move_sentence(rng, other, nl));
    }
  }
  world.move(carrier, locs[2]);
  story.context.push_back(move_sentence(rng, carrier, locs[2]));
  if (rng.index(2) == 0) {
    world.drop(carrier, object);
    story.context.push_back(drop_sentence(rng, carrier, object));
  }

  const auto history = world.object_location_history(object);
  if (history.size() < 2) {
    throw std::logic_error("qa3: object history too short");
  }
  const std::string& current = history.back();
  const std::string& before = history[history.size() - 2];
  story.question = {"where", "was", "the", object, "before", "the", current};
  story.answer = before;
  return story;
}

// --- qa6: yes/no questions --------------------------------------------------

Story gen_yes_no(numeric::Rng& rng) {
  World world(actor_names(), location_names(), object_names());
  Story story;
  const std::size_t events = 2 + rng.index(4);
  std::vector<std::string> movers;
  for (std::size_t i = 0; i < events; ++i) {
    const std::string& actor = pick(rng, world.actors());
    const std::string& loc = pick(rng, world.locations());
    world.move(actor, loc);
    story.context.push_back(move_sentence(rng, actor, loc));
    movers.push_back(actor);
  }
  const std::string& actor = pick(rng, movers);
  const std::string truth = *world.actor_location(actor);
  const bool ask_truth = rng.index(2) == 0;
  std::string asked = truth;
  if (!ask_truth) {
    while (asked == truth) {
      asked = pick(rng, world.locations());
    }
  }
  story.question = {"is", actor, "in", "the", asked};
  story.answer = ask_truth ? "yes" : "no";
  return story;
}

// --- qa7: counting ----------------------------------------------------------

Story gen_counting(numeric::Rng& rng) {
  static const std::array<std::string, 4> count_words = {"none", "one", "two",
                                                         "three"};
  World world(actor_names(), location_names(), object_names());
  Story story;
  const std::string& actor = pick(rng, world.actors());
  const std::string& loc = pick(rng, world.locations());
  world.move(actor, loc);
  story.context.push_back(move_sentence(rng, actor, loc));

  const std::size_t takes = rng.index(4);  // 0..3 pickups
  const auto objs = pick_distinct(rng, world.objects(), takes);
  for (const std::string& obj : objs) {
    world.grab(actor, obj);
    story.context.push_back(grab_sentence(rng, actor, obj));
  }
  // Possibly drop one again.
  if (!objs.empty() && rng.index(2) == 0) {
    const std::string& victim = pick(rng, objs);
    world.drop(actor, victim);
    story.context.push_back(drop_sentence(rng, actor, victim));
  }
  const std::size_t n = world.carried(actor).size();
  story.question = {"how", "many", "objects", "is", actor, "carrying"};
  story.answer = count_words.at(n);
  return story;
}

// --- qa8: lists / sets --------------------------------------------------------

Story gen_lists_sets(numeric::Rng& rng) {
  World world(actor_names(), location_names(), object_names());
  Story story;
  const std::string& actor = pick(rng, world.actors());
  const std::string& loc = pick(rng, world.locations());
  world.move(actor, loc);
  story.context.push_back(move_sentence(rng, actor, loc));

  const std::size_t takes = rng.index(3);  // 0..2 -> closed answer set
  const auto objs = pick_distinct(rng, world.objects(), takes);
  for (const std::string& obj : objs) {
    world.grab(actor, obj);
    story.context.push_back(grab_sentence(rng, actor, obj));
  }
  if (!objs.empty() && rng.index(3) == 0) {
    const std::string& victim = pick(rng, objs);
    world.drop(actor, victim);
    story.context.push_back(drop_sentence(rng, actor, victim));
  }

  auto carried = world.carried(actor);
  std::sort(carried.begin(), carried.end());
  story.question = {"what", "is", actor, "carrying"};
  if (carried.empty()) {
    story.answer = "nothing";
  } else {
    std::string joined = carried[0];
    for (std::size_t i = 1; i < carried.size(); ++i) {
      joined += "_" + carried[i];
    }
    story.answer = joined;
  }
  return story;
}

// --- qa9: simple negation ------------------------------------------------------

Story gen_simple_negation(numeric::Rng& rng) {
  World world(actor_names(), location_names(), object_names());
  Story story;
  const auto chosen = pick_distinct(rng, world.actors(), 3);

  // Statements about several actors; the last statement about the queried
  // actor decides the answer.
  struct Statement {
    std::string actor;
    std::string location;
    bool negated = false;
  };
  std::vector<Statement> statements;
  const std::size_t count = 2 + rng.index(3);
  for (std::size_t i = 0; i < count; ++i) {
    Statement st;
    st.actor = pick(rng, chosen);
    st.location = pick(rng, world.locations());
    st.negated = rng.index(2) == 0;
    statements.push_back(st);
    if (st.negated) {
      story.context.push_back(
          {st.actor, "is", "not", "in", "the", st.location});
    } else if (rng.index(2) == 0) {
      story.context.push_back({st.actor, "is", "in", "the", st.location});
    } else {
      story.context.push_back(move_sentence(rng, st.actor, st.location));
    }
  }
  // Controlled final statement so yes/no answers stay balanced: a
  // majority-class guesser must not beat chance by much.
  const std::string& queried = pick(rng, chosen);
  const std::string& loc = pick(rng, world.locations());
  const bool want_yes = rng.index(2) == 0;
  if (want_yes) {
    story.context.push_back({queried, "is", "in", "the", loc});
    story.question = {"is", queried, "in", "the", loc};
    story.answer = "yes";
  } else if (rng.index(2) == 0) {
    story.context.push_back({queried, "is", "not", "in", "the", loc});
    story.question = {"is", queried, "in", "the", loc};
    story.answer = "no";
  } else {
    story.context.push_back({queried, "is", "in", "the", loc});
    std::string asked = loc;
    while (asked == loc) {
      asked = pick(rng, world.locations());
    }
    story.question = {"is", queried, "in", "the", asked};
    story.answer = "no";
  }
  return story;
}

// --- qa10: indefinite knowledge --------------------------------------------------

Story gen_indefinite_knowledge(numeric::Rng& rng) {
  World world(actor_names(), location_names(), object_names());
  Story story;
  const auto chosen = pick_distinct(rng, world.actors(), 2);

  // Noise sentence about the other actor.
  {
    const std::string& nl = pick(rng, world.locations());
    story.context.push_back(move_sentence(rng, chosen[1], nl));
  }

  const std::string& actor = chosen[0];
  const bool definite = rng.index(2) == 0;
  if (definite) {
    const std::string& loc = pick(rng, world.locations());
    story.context.push_back({actor, "is", "in", "the", loc});
    const std::size_t which = rng.index(2);
    std::string asked = loc;
    if (which == 1) {
      while (asked == loc) {
        asked = pick(rng, world.locations());
      }
    }
    story.question = {"is", actor, "in", "the", asked};
    story.answer = which == 0 ? "yes" : "no";
    return story;
  }
  const auto pair = pick_distinct(rng, world.locations(), 2);
  story.context.push_back(
      {actor, "is", "either", "in", "the", pair[0], "or", "the", pair[1]});
  const std::size_t which = rng.index(3);
  if (which < 2) {
    story.question = {"is", actor, "in", "the", pair[which]};
    story.answer = "maybe";
  } else {
    std::string asked = pair[0];
    while (asked == pair[0] || asked == pair[1]) {
      asked = pick(rng, world.locations());
    }
    story.question = {"is", actor, "in", "the", asked};
    story.answer = "no";
  }
  return story;
}

}  // namespace mann::data::detail
