// Synthetic generators for the 20 bAbI-style QA task families.
//
// Substitution note (see DESIGN.md): the paper evaluates on the bAbI v1.2
// dataset, which we do not ship. bAbI itself was produced by a text-rendered
// world simulation, so we regenerate statistically-equivalent tasks from our
// own simulator: same 20 task semantics, same story/question shape (short
// declarative sentences, one-token answers), similar vocabulary sizes. What
// the experiments need from the data — small-vocabulary QA whose trained
// logit distributions are bimodal per class (Fig. 2b) and whose workloads
// have bAbI-like sentence/question counts — is preserved.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/types.hpp"
#include "numeric/random.hpp"

namespace mann::data {

/// The 20 task families, numbered as in Weston et al. (2015).
enum class TaskId : std::uint8_t {
  kSingleSupportingFact = 1,
  kTwoSupportingFacts = 2,
  kThreeSupportingFacts = 3,
  kTwoArgRelations = 4,
  kThreeArgRelations = 5,
  kYesNoQuestions = 6,
  kCounting = 7,
  kListsSets = 8,
  kSimpleNegation = 9,
  kIndefiniteKnowledge = 10,
  kBasicCoreference = 11,
  kConjunction = 12,
  kCompoundCoreference = 13,
  kTimeReasoning = 14,
  kBasicDeduction = 15,
  kBasicInduction = 16,
  kPositionalReasoning = 17,
  kSizeReasoning = 18,
  kPathFinding = 19,
  kAgentsMotivations = 20,
};

/// Version of the generator suite. Bump whenever any generator's output
/// changes so downstream artifact caches (trained models keyed on the
/// generated data) invalidate themselves.
inline constexpr int kGeneratorVersion = 2;

/// All 20 tasks in numeric order.
[[nodiscard]] const std::vector<TaskId>& all_tasks();

/// Human-readable task name, e.g. "qa1-single-supporting-fact".
[[nodiscard]] std::string task_name(TaskId id);

/// Task number (1-20) for display.
[[nodiscard]] int task_number(TaskId id) noexcept;

/// Generates one story with its question and ground-truth answer.
/// Deterministic given the Rng state.
[[nodiscard]] Story generate_story(TaskId id, numeric::Rng& rng);

/// Generates `count` stories.
[[nodiscard]] std::vector<Story> generate_stories(TaskId id,
                                                  std::size_t count,
                                                  numeric::Rng& rng);

namespace detail {
// Per-family generators, grouped by implementation file. Exposed for tests.
Story gen_single_supporting_fact(numeric::Rng& rng);
Story gen_two_supporting_facts(numeric::Rng& rng);
Story gen_three_supporting_facts(numeric::Rng& rng);
Story gen_yes_no(numeric::Rng& rng);
Story gen_counting(numeric::Rng& rng);
Story gen_lists_sets(numeric::Rng& rng);
Story gen_simple_negation(numeric::Rng& rng);
Story gen_indefinite_knowledge(numeric::Rng& rng);
Story gen_basic_coreference(numeric::Rng& rng);
Story gen_conjunction(numeric::Rng& rng);
Story gen_compound_coreference(numeric::Rng& rng);
Story gen_two_arg_relations(numeric::Rng& rng);
Story gen_three_arg_relations(numeric::Rng& rng);
Story gen_time_reasoning(numeric::Rng& rng);
Story gen_positional_reasoning(numeric::Rng& rng);
Story gen_size_reasoning(numeric::Rng& rng);
Story gen_path_finding(numeric::Rng& rng);
Story gen_basic_deduction(numeric::Rng& rng);
Story gen_basic_induction(numeric::Rng& rng);
Story gen_agents_motivations(numeric::Rng& rng);
}  // namespace detail

}  // namespace mann::data
