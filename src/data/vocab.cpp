#include "data/vocab.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace mann::data {

std::int32_t Vocab::add(std::string_view word) {
  const auto it = index_.find(std::string(word));
  if (it != index_.end()) {
    return it->second;
  }
  const auto id = static_cast<std::int32_t>(words_.size());
  words_.emplace_back(word);
  index_.emplace(words_.back(), id);
  return id;
}

std::optional<std::int32_t> Vocab::find(std::string_view word) const {
  const auto it = index_.find(std::string(word));
  if (it == index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::int32_t Vocab::at(std::string_view word) const {
  const auto found = find(word);
  if (!found) {
    throw std::out_of_range("Vocab::at: unknown word: " + std::string(word));
  }
  return *found;
}

const std::string& Vocab::word(std::int32_t i) const {
  if (i < 0 || static_cast<std::size_t>(i) >= words_.size()) {
    throw std::out_of_range("Vocab::word: bad index");
  }
  return words_[static_cast<std::size_t>(i)];
}

void save_vocab(std::ostream& out, const Vocab& vocab) {
  for (std::size_t i = 0; i < vocab.size(); ++i) {
    out << vocab.word(static_cast<std::int32_t>(i)) << '\n';
  }
  if (!out) {
    throw std::runtime_error("save_vocab: stream failure");
  }
}

void save_vocab_file(const std::string& path, const Vocab& vocab) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("save_vocab_file: cannot open " + path);
  }
  save_vocab(out, vocab);
}

Vocab load_vocab(std::istream& in) {
  Vocab vocab;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      vocab.add(line);
    }
  }
  return vocab;
}

Vocab load_vocab_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_vocab_file: cannot open " + path);
  }
  return load_vocab(in);
}

}  // namespace mann::data
