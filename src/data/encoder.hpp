// Story -> word-index encoding.
//
// The MANN consumes sentences as bags of word indices (Eq. 2): the INPUT &
// WRITE module reads one embedding column per word index. The encoder owns
// nothing; it maps through a caller-supplied Vocab.
#pragma once

#include <vector>

#include "data/types.hpp"
#include "data/vocab.hpp"

namespace mann::data {

/// Adds every token of `story` (context, question, answer) to `vocab`.
void add_story_to_vocab(const Story& story, Vocab& vocab);

/// Encodes a story against a closed vocabulary.
/// Throws std::out_of_range if a token is missing from `vocab`.
[[nodiscard]] EncodedStory encode_story(const Story& story,
                                        const Vocab& vocab);

/// Encodes a batch.
[[nodiscard]] std::vector<EncodedStory> encode_stories(
    const std::vector<Story>& stories, const Vocab& vocab);

}  // namespace mann::data
