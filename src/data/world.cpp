#include "data/world.hpp"

#include <algorithm>
#include <stdexcept>

namespace mann::data {
namespace {

std::size_t index_of(const std::vector<std::string>& names,
                     const std::string& name, const char* kind) {
  const auto it = std::find(names.begin(), names.end(), name);
  if (it == names.end()) {
    throw std::invalid_argument(std::string("World: unknown ") + kind + ": " +
                                name);
  }
  return static_cast<std::size_t>(it - names.begin());
}

}  // namespace

World::World(std::vector<std::string> actors,
             std::vector<std::string> locations,
             std::vector<std::string> objects)
    : actors_(std::move(actors)),
      locations_(std::move(locations)),
      objects_(std::move(objects)),
      actor_states_(actors_.size()),
      object_states_(objects_.size()) {}

World::ActorState& World::actor_state(const std::string& actor) {
  return actor_states_[index_of(actors_, actor, "actor")];
}

const World::ActorState& World::actor_state(const std::string& actor) const {
  return actor_states_[index_of(actors_, actor, "actor")];
}

World::ObjectState& World::object_state(const std::string& object) {
  return object_states_[index_of(objects_, object, "object")];
}

const World::ObjectState& World::object_state(
    const std::string& object) const {
  return object_states_[index_of(objects_, object, "object")];
}

void World::record_object_location(ObjectState& state,
                                   const std::string& loc) {
  state.location = loc;
  if (state.history.empty() || state.history.back() != loc) {
    state.history.push_back(loc);
  }
}

void World::move(const std::string& actor, const std::string& location) {
  (void)index_of(locations_, location, "location");
  ActorState& a = actor_state(actor);
  a.location = location;
  if (a.visited.empty() || a.visited.back() != location) {
    a.visited.push_back(location);
  }
  // Held objects travel with the actor.
  for (const std::string& obj : a.held) {
    record_object_location(object_state(obj), location);
  }
}

void World::grab(const std::string& actor, const std::string& object) {
  ObjectState& o = object_state(object);
  if (o.holder.has_value()) {
    throw std::logic_error("World::grab: object already held: " + object);
  }
  ActorState& a = actor_state(actor);
  o.holder = actor;
  a.held.push_back(object);
  if (a.location) {
    record_object_location(o, *a.location);
  }
}

void World::drop(const std::string& actor, const std::string& object) {
  ObjectState& o = object_state(object);
  if (o.holder != actor) {
    throw std::logic_error("World::drop: " + actor + " does not hold " +
                           object);
  }
  ActorState& a = actor_state(actor);
  o.holder.reset();
  std::erase(a.held, object);
  if (a.location) {
    record_object_location(o, *a.location);
  }
}

void World::give(const std::string& from, const std::string& to,
                 const std::string& object) {
  ObjectState& o = object_state(object);
  if (o.holder != from) {
    throw std::logic_error("World::give: " + from + " does not hold " +
                           object);
  }
  ActorState& src = actor_state(from);
  ActorState& dst = actor_state(to);
  std::erase(src.held, object);
  dst.held.push_back(object);
  o.holder = to;
  if (dst.location) {
    record_object_location(o, *dst.location);
  }
}

std::optional<std::string> World::actor_location(
    const std::string& actor) const {
  return actor_state(actor).location;
}

std::optional<std::string> World::object_location(
    const std::string& object) const {
  const ObjectState& o = object_state(object);
  if (o.holder) {
    return actor_state(*o.holder).location;
  }
  return o.location;
}

std::optional<std::string> World::holder(const std::string& object) const {
  return object_state(object).holder;
}

std::vector<std::string> World::carried(const std::string& actor) const {
  return actor_state(actor).held;
}

std::vector<std::string> World::object_location_history(
    const std::string& object) const {
  return object_state(object).history;
}

std::vector<std::string> World::actor_location_history(
    const std::string& actor) const {
  return actor_state(actor).visited;
}

}  // namespace mann::data
