#include "power/energy.hpp"

namespace mann::power {

NormalizedReport normalize(const EnergyReport& measurement,
                           const EnergyReport& baseline) {
  NormalizedReport n;
  if (measurement.seconds > 0.0) {
    n.speedup = baseline.seconds / measurement.seconds;
  }
  const double base_eff = baseline.flops_per_kj();
  if (base_eff > 0.0) {
    n.energy_efficiency = measurement.flops_per_kj() / base_eff;
  }
  return n;
}

}  // namespace mann::power
