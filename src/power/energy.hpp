// Energy-efficiency accounting shared by Table I / Fig. 4 harnesses.
#pragma once

#include <cstdint>

namespace mann::power {

/// One measurement: a (time, power, flops) triple plus derived metrics.
struct EnergyReport {
  double seconds = 0.0;
  double watts = 0.0;
  std::uint64_t flops = 0;

  [[nodiscard]] double joules() const noexcept { return seconds * watts; }

  /// Sustained FLOP rate (FLOP/s).
  [[nodiscard]] double flop_rate() const noexcept {
    return seconds > 0.0 ? static_cast<double>(flops) / seconds : 0.0;
  }

  /// The paper's efficiency metric, "FLOPS/kJ": the sustained FLOP *rate*
  /// divided by consumed energy in kilojoules, i.e. F / (t² · P / 1000).
  ///
  /// Reverse-engineering note: Table I's normalized columns only reproduce
  /// under this reading — e.g. CPU: (226.90² · 45.36)/(242.77² · 23.28)
  /// = 1.70 and FPGA@100: (226.90² · 45.36)/(30.28² · 20.10) = 126.7,
  /// exactly the published 1.70 and 126.72. Plain FLOP-per-kJ would give
  /// 1.28 and 4.7 instead. The normalized ratio equals
  /// speedup² × (P_base / P), so it rewards both speed and frugality.
  [[nodiscard]] double flops_per_kj() const noexcept {
    const double kj = joules() / 1000.0;
    return kj > 0.0 ? flop_rate() / kj : 0.0;
  }
};

/// Ratios normalized to a baseline (the GPU column in the paper's tables).
struct NormalizedReport {
  double speedup = 0.0;            ///< baseline.seconds / this.seconds
  double energy_efficiency = 0.0;  ///< this.flops_per_kj / baseline's
};

[[nodiscard]] NormalizedReport normalize(const EnergyReport& measurement,
                                         const EnergyReport& baseline);

}  // namespace mann::power
