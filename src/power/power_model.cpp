#include "power/power_model.hpp"

namespace mann::power {

FpgaPowerModel::FpgaPowerModel(const FpgaPowerConfig& config)
    : config_(config) {}

double FpgaPowerModel::op_energy(const sim::OpCounts& ops) const noexcept {
  return static_cast<double>(ops.mac) * config_.mac_j +
         static_cast<double>(ops.add) * config_.add_j +
         static_cast<double>(ops.exp) * config_.exp_j +
         static_cast<double>(ops.div) * config_.div_j +
         static_cast<double>(ops.mem_read) * config_.mem_read_j +
         static_cast<double>(ops.mem_write) * config_.mem_write_j +
         static_cast<double>(ops.compare) * config_.compare_j;
}

std::vector<ModulePowerRow> FpgaPowerModel::per_module(
    const accel::RunResult& run) const {
  std::vector<ModulePowerRow> rows;
  rows.reserve(run.modules.size());
  for (const accel::ModuleReport& m : run.modules) {
    ModulePowerRow row;
    row.name = m.name;
    if (run.total_cycles > 0) {
      row.busy_fraction = static_cast<double>(m.stats.busy_cycles) /
                          static_cast<double>(run.total_cycles);
    }
    row.dynamic_joules = op_energy(m.stats.ops);
    rows.push_back(std::move(row));
  }
  return rows;
}

FpgaPowerReport FpgaPowerModel::estimate(const accel::RunResult& run,
                                         double clock_hz) const {
  FpgaPowerReport report;
  report.seconds = static_cast<double>(run.total_cycles) / clock_hz;
  report.dynamic_joules = op_energy(run.total_ops);
  report.clock_joules =
      config_.clock_watts_per_hz * clock_hz * report.seconds;
  report.static_joules = config_.static_watts * report.seconds;
  report.link_joules =
      config_.link_active_watts *
      (static_cast<double>(run.link_active_cycles) / clock_hz);
  report.total_joules = report.dynamic_joules + report.clock_joules +
                        report.static_joules + report.link_joules;
  report.mean_watts =
      report.seconds > 0.0 ? report.total_joules / report.seconds : 0.0;
  return report;
}

}  // namespace mann::power
