// Power models.
//
// Substitution note (DESIGN.md): the paper measures board/system power with
// external meters; we have no hardware, so power comes from activity-based
// models. The FPGA model is the standard static + clock-tree + per-op
// dynamic-energy decomposition; its constants are calibrated so the four
// published operating points (14.71 W @25 MHz ... 20.10 W @100 MHz) are
// reproduced to first order, and *everything else* (the effect of ITH, the
// per-task variation, the energy-efficiency ratios) then follows from the
// simulator's measured cycle and op counts. CPU/GPU models are fixed active
// -power envelopes at the paper's measured draws.
#pragma once

#include <string>
#include <vector>

#include "accel/accelerator.hpp"
#include "sim/types.hpp"

namespace mann::power {

/// Static + clock-tree + per-op-energy FPGA power model.
struct FpgaPowerConfig {
  double static_watts = 12.8;        ///< leakage + board overhead
  double clock_watts_per_hz = 6.6e-8;///< clock tree + idle toggling, ~6.6 W @100 MHz
  // Per-operation dynamic energy (joules). Rough 16-bit-datapath numbers
  // on a 20 nm device; they matter relatively (ITH removes OUTPUT ops),
  // not absolutely.
  double mac_j = 6.0e-12;
  double add_j = 1.5e-12;
  double exp_j = 8.0e-12;
  double div_j = 2.0e-11;
  double mem_read_j = 4.0e-12;
  double mem_write_j = 5.0e-12;
  double compare_j = 1.0e-12;
  /// Host-link PHY/DMA engine draw while the link is active.
  double link_active_watts = 0.9;
};

/// Power/energy estimate of one accelerator run.
struct FpgaPowerReport {
  double seconds = 0.0;
  double dynamic_joules = 0.0;  ///< datapath ops
  double clock_joules = 0.0;    ///< clock tree over the whole run
  double static_joules = 0.0;
  double link_joules = 0.0;
  double total_joules = 0.0;
  double mean_watts = 0.0;
};

/// Per-module slice of the dynamic energy (for the deployment report in
/// examples/accelerator_sim and the module-balance analysis).
struct ModulePowerRow {
  std::string name;
  double busy_fraction = 0.0;   ///< busy cycles / total cycles
  double dynamic_joules = 0.0;  ///< op energy attributed to this module
};

class FpgaPowerModel {
 public:
  explicit FpgaPowerModel(const FpgaPowerConfig& config = {});

  /// Folds a run's activity counters into energy/power at `clock_hz`.
  [[nodiscard]] FpgaPowerReport estimate(const accel::RunResult& run,
                                         double clock_hz) const;

  /// Splits the dynamic energy across modules using their op counters.
  [[nodiscard]] std::vector<ModulePowerRow> per_module(
      const accel::RunResult& run) const;

  [[nodiscard]] const FpgaPowerConfig& config() const noexcept {
    return config_;
  }

  /// Energy of the datapath op counters alone (used by tests/ablations).
  [[nodiscard]] double op_energy(const sim::OpCounts& ops) const noexcept;

 private:
  FpgaPowerConfig config_;
};

/// Fixed active-power envelope for the CPU/GPU baselines (the paper's
/// measured averages: 23.28 W CPU, 45.36 W GPU).
struct HostPowerConfig {
  double cpu_active_watts = 23.28;
  double gpu_active_watts = 45.36;
};

}  // namespace mann::power
