#include "numeric/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mann::numeric {

Histogram::Histogram(float lo, float hi, std::size_t bins)
    : lo_(lo), hi_(hi) {
  if (bins == 0) {
    throw std::invalid_argument("Histogram: bins must be > 0");
  }
  if (!(lo < hi)) {
    throw std::invalid_argument("Histogram: lo must be < hi");
  }
  width_ = (hi - lo) / static_cast<float>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(float value) {
  const float pos = (value - lo_) / width_;
  std::size_t b = 0;
  if (pos >= 0.0F) {
    b = std::min(static_cast<std::size_t>(pos), counts_.size() - 1);
  }
  ++counts_[b];
  ++total_;
  sum_ += static_cast<double>(value);
  sum_sq_ += static_cast<double>(value) * static_cast<double>(value);
  samples_.push_back(value);
}

std::size_t Histogram::count(std::size_t b) const {
  if (b >= counts_.size()) {
    throw std::out_of_range("Histogram::count: bad bin");
  }
  return counts_[b];
}

float Histogram::bin_center(std::size_t b) const {
  if (b >= counts_.size()) {
    throw std::out_of_range("Histogram::bin_center: bad bin");
  }
  return lo_ + (static_cast<float>(b) + 0.5F) * width_;
}

float Histogram::density(std::size_t b) const {
  if (b >= counts_.size()) {
    throw std::out_of_range("Histogram::density: bad bin");
  }
  if (total_ == 0) {
    return 0.0F;
  }
  return static_cast<float>(counts_[b]) /
         (static_cast<float>(total_) * width_);
}

float Histogram::mean() const noexcept {
  if (total_ == 0) {
    return 0.0F;
  }
  return static_cast<float>(sum_ / static_cast<double>(total_));
}

float Histogram::stddev() const noexcept {
  if (total_ == 0) {
    return 0.0F;
  }
  const double n = static_cast<double>(total_);
  const double m = sum_ / n;
  const double var = std::max(0.0, sum_sq_ / n - m * m);
  return static_cast<float>(std::sqrt(var));
}

}  // namespace mann::numeric
