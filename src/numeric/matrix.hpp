// Dense row-major matrix of 32-bit floats.
//
// This is the single dense-linear-algebra container used throughout the
// project: model weights, memory banks (address/content memory of the MANN),
// and gradient buffers are all Matrix instances. It is deliberately small —
// the MANN layers in the paper are tiny (embedding dim ~20, vocabulary
// ~20-200), so cache-blocked kernels would be noise; clarity and bounds
// discipline win.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mann::numeric {

/// Dense row-major matrix of `float`.
///
/// Invariant: `data().size() == rows() * cols()` at all times.
class Matrix {
 public:
  /// Creates an empty 0x0 matrix.
  Matrix() = default;

  /// Creates a `rows x cols` matrix initialized to zero.
  Matrix(std::size_t rows, std::size_t cols);

  /// Creates a matrix from explicit row-major contents.
  /// Throws std::invalid_argument if `values.size() != rows * cols`.
  Matrix(std::size_t rows, std::size_t cols, std::vector<float> values);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  /// Unchecked element access (hot paths).
  [[nodiscard]] float& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] float operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Checked element access. Throws std::out_of_range on bad indices.
  [[nodiscard]] float& at(std::size_t r, std::size_t c);
  [[nodiscard]] float at(std::size_t r, std::size_t c) const;

  /// View of row `r` (unchecked; `r < rows()` required).
  [[nodiscard]] std::span<float> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const float> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  /// Raw row-major storage.
  [[nodiscard]] std::span<float> data() noexcept { return data_; }
  [[nodiscard]] std::span<const float> data() const noexcept { return data_; }

  /// Sets every element to `value`.
  void fill(float value) noexcept;

  /// Resizes to `rows x cols`, zeroing all contents.
  void resize_zeroed(std::size_t rows, std::size_t cols);

  /// Element-wise `this += scale * other`.
  /// Throws std::invalid_argument on shape mismatch.
  void add_scaled(const Matrix& other, float scale);

  /// Multiplies every element by `value`.
  void scale(float value) noexcept;

  /// Returns the transpose as a new matrix.
  [[nodiscard]] Matrix transposed() const;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace mann::numeric
