// Streaming 1-D histogram.
//
// Algorithm 1, Step 1 of the paper accumulates two histograms per output
// index (HG_i: logit values when i is the correct argmax; HG_ī: otherwise).
// This class is that accumulator: fixed-width bins over a caller-chosen
// range, with out-of-range samples clamped into the edge bins so that no
// training logit is silently dropped.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mann::numeric {

/// Fixed-bin histogram over [lo, hi); also retains raw samples so that
/// downstream KDE / silhouette steps can reuse the exact observations.
class Histogram {
 public:
  /// Creates a histogram with `bins` equal-width bins over [lo, hi).
  /// Throws std::invalid_argument if bins == 0 or lo >= hi.
  Histogram(float lo, float hi, std::size_t bins);

  /// Adds one observation (clamped to the edge bins when out of range).
  void add(float value);

  [[nodiscard]] std::size_t bin_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] bool empty() const noexcept { return total_ == 0; }

  /// Count in bin `b`. Throws std::out_of_range on bad index.
  [[nodiscard]] std::size_t count(std::size_t b) const;

  /// Center of bin `b`. Throws std::out_of_range on bad index.
  [[nodiscard]] float bin_center(std::size_t b) const;

  [[nodiscard]] float lo() const noexcept { return lo_; }
  [[nodiscard]] float hi() const noexcept { return hi_; }
  [[nodiscard]] float bin_width() const noexcept { return width_; }

  /// Density estimate at bin `b` (count / (total * bin_width)); 0 when empty.
  [[nodiscard]] float density(std::size_t b) const;

  /// Raw retained samples in insertion order.
  [[nodiscard]] std::span<const float> samples() const noexcept {
    return samples_;
  }

  /// Sample mean / (population) standard deviation. 0 when empty.
  [[nodiscard]] float mean() const noexcept;
  [[nodiscard]] float stddev() const noexcept;

 private:
  float lo_;
  float hi_;
  float width_;
  std::size_t total_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  std::vector<std::size_t> counts_;
  std::vector<float> samples_;
};

}  // namespace mann::numeric
