#include "numeric/kde.hpp"

#include <cmath>
#include <numbers>

namespace mann::numeric {
namespace {

constexpr float kMinBandwidth = 1e-3F;

float sample_sigma(std::span<const float> samples) noexcept {
  if (samples.empty()) {
    return 0.0F;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (float s : samples) {
    sum += s;
    sum_sq += static_cast<double>(s) * s;
  }
  const double n = static_cast<double>(samples.size());
  const double mean = sum / n;
  const double var = std::max(0.0, sum_sq / n - mean * mean);
  return static_cast<float>(std::sqrt(var));
}

}  // namespace

KernelDensity::KernelDensity(std::span<const float> samples, float bandwidth) {
  centers_.assign(samples.begin(), samples.end());
  weights_.assign(samples.size(), 1.0F);
  total_ = samples.size();
  select_bandwidth(bandwidth, sample_sigma(samples));
}

KernelDensity::KernelDensity(const Histogram& hist, float bandwidth) {
  for (std::size_t b = 0; b < hist.bin_count(); ++b) {
    const std::size_t c = hist.count(b);
    if (c > 0) {
      centers_.push_back(hist.bin_center(b));
      weights_.push_back(static_cast<float>(c));
    }
  }
  total_ = hist.total();
  select_bandwidth(bandwidth, hist.stddev());
}

void KernelDensity::select_bandwidth(float requested, float sigma) {
  if (requested > 0.0F) {
    bandwidth_ = requested;
    return;
  }
  if (total_ == 0) {
    bandwidth_ = 1.0F;
    return;
  }
  const float n = static_cast<float>(total_);
  const float silverman = 1.06F * sigma * std::pow(n, -0.2F);
  bandwidth_ = std::max(silverman, kMinBandwidth);
}

float KernelDensity::operator()(float x) const noexcept {
  if (total_ == 0) {
    return 0.0F;
  }
  const float inv_h = 1.0F / bandwidth_;
  const float norm =
      inv_h / (static_cast<float>(total_) *
               std::sqrt(2.0F * std::numbers::pi_v<float>));
  float acc = 0.0F;
  for (std::size_t i = 0; i < centers_.size(); ++i) {
    const float u = (x - centers_[i]) * inv_h;
    acc += weights_[i] * std::exp(-0.5F * u * u);
  }
  return acc * norm;
}

}  // namespace mann::numeric
