#include "numeric/random.hpp"

#include <bit>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace mann::numeric {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

float Rng::uniform(float lo, float hi) noexcept {
  return lo + static_cast<float>(uniform()) * (hi - lo);
}

std::size_t Rng::index(std::size_t n) noexcept {
  // Multiplicative range reduction; bias is negligible for n << 2^64.
  return static_cast<std::size_t>(uniform() * static_cast<double>(n));
}

float Rng::normal() noexcept {
  // Box-Muller; draw u1 away from zero to keep log finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return static_cast<float>(mag *
                            std::cos(2.0 * std::numbers::pi * u2));
}

float Rng::normal(float mean, float stddev) noexcept {
  return mean + stddev * normal();
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) {
    throw std::invalid_argument("sample_without_replacement: k > n");
  }
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) {
    pool[i] = i;
  }
  // Partial Fisher-Yates: the first k slots become the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace mann::numeric
