#include "numeric/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace mann::numeric {

Summary summarize(std::span<const float> values) noexcept {
  Summary s;
  if (values.empty()) {
    return s;
  }
  s.count = values.size();
  s.min = values[0];
  s.max = values[0];
  double sum = 0.0;
  double sq = 0.0;
  for (float v : values) {
    sum += v;
    sq += static_cast<double>(v) * v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  const double n = static_cast<double>(s.count);
  const double mean = sum / n;
  s.mean = static_cast<float>(mean);
  s.stddev = static_cast<float>(std::sqrt(std::max(0.0, sq / n - mean * mean)));
  return s;
}

float geometric_mean(std::span<const float> values) noexcept {
  if (values.empty()) {
    return 0.0F;
  }
  double acc = 0.0;
  for (float v : values) {
    if (v <= 0.0F) {
      return 0.0F;
    }
    acc += std::log(static_cast<double>(v));
  }
  return static_cast<float>(
      std::exp(acc / static_cast<double>(values.size())));
}

float percentile(std::span<const float> values, float p) {
  if (values.empty()) {
    throw std::invalid_argument("percentile: empty input");
  }
  std::vector<float> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const float clamped = std::clamp(p, 0.0F, 100.0F);
  const float pos =
      clamped / 100.0F * static_cast<float>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const float frac = pos - static_cast<float>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace mann::numeric
