// Lookup-table function units for the accelerator's softmax path.
//
// The paper's MEM module computes softmax "with element-wise sequential
// operations" because exponentiation and division "cannot be parallelized on
// an FPGA". A practical RTL implementation realizes exp() as a BRAM lookup
// table with linear interpolation and the division via a reciprocal unit.
// These classes model exactly that: bounded-domain, table-driven, with the
// same quantization a hardware table would introduce. The float-vs-LUT error
// budget is pinned down by tests and the fixed-point ablation bench.
#pragma once

#include <cstddef>
#include <vector>

namespace mann::numeric {

/// Table-driven exp(x) over a clamped domain [`domain_min`, `domain_max`],
/// with linear interpolation between entries.
///
/// Inputs below the domain return exp(domain_min) (effectively 0 for the
/// softmax use-case); inputs above saturate at exp(domain_max). Softmax
/// callers subtract the running maximum first, so the useful domain is
/// x <= 0 and the default domain [-16, 0] leaves headroom.
class ExpLut {
 public:
  struct Config {
    float domain_min = -16.0F;
    float domain_max = 0.0F;
    std::size_t entries = 1024;  ///< BRAM depth; power of two in practice.
  };

  /// Default domain/depth configuration.
  ExpLut() : ExpLut(Config{}) {}

  explicit ExpLut(const Config& config);

  /// LUT + linear interpolation evaluation of exp(x).
  [[nodiscard]] float operator()(float x) const noexcept;

  /// Worst-case absolute error vs std::exp over the domain (probed on a
  /// fine grid at construction; used by tests and the ablation bench).
  [[nodiscard]] float max_abs_error() const noexcept { return max_abs_error_; }

  [[nodiscard]] std::size_t entries() const noexcept { return table_.size(); }

 private:
  float domain_min_;
  float domain_max_;
  float inv_step_;
  float max_abs_error_ = 0.0F;
  std::vector<float> table_;
};

/// Table-seeded reciprocal 1/x refined with two Newton-Raphson iterations —
/// the standard FPGA divider replacement (one BRAM read + 2 fused
/// multiply-adds per iteration).
class ReciprocalLut {
 public:
  struct Config {
    std::size_t entries = 256;  ///< seed table depth
  };

  /// Default table depth.
  ReciprocalLut() : ReciprocalLut(Config{}) {}

  explicit ReciprocalLut(const Config& config);

  /// Approximates 1/x for x > 0. Returns +inf-like saturation (max float)
  /// for x <= 0, which the softmax path never produces.
  [[nodiscard]] float operator()(float x) const noexcept;

  [[nodiscard]] std::size_t entries() const noexcept { return seeds_.size(); }

 private:
  std::vector<float> seeds_;  ///< seeds for mantissa in [1, 2)
};

}  // namespace mann::numeric
