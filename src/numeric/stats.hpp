// Small descriptive-statistics helpers shared by benches and reports.
#pragma once

#include <cstddef>
#include <span>

namespace mann::numeric {

/// Five-number-ish summary of a sample.
struct Summary {
  std::size_t count = 0;
  float mean = 0.0F;
  float stddev = 0.0F;  ///< population stddev
  float min = 0.0F;
  float max = 0.0F;
};

/// Computes the summary in one pass. All-zero summary for empty input.
[[nodiscard]] Summary summarize(std::span<const float> values) noexcept;

/// Geometric mean of strictly positive values; 0 if any value <= 0 or empty.
/// Used to aggregate per-task energy-efficiency ratios (Fig. 4).
[[nodiscard]] float geometric_mean(std::span<const float> values) noexcept;

/// Linear-interpolated percentile (p in [0, 100]). Throws on empty input.
[[nodiscard]] float percentile(std::span<const float> values, float p);

}  // namespace mann::numeric
