// Two-component 1-D Gaussian mixture model fitted with EM.
//
// Fig. 2(b) of the paper motivates inference thresholding by showing that a
// trained model's logits "are fitted to the mixture models": for each output
// index the logit population splits into a 'this index is the answer' mode
// and a 'it is not' mode. This fitter reproduces that analysis (and the
// fig2b bench reports the fitted components for our trained models).
#pragma once

#include <cstddef>
#include <span>

namespace mann::numeric {

/// Parameters of one Gaussian mixture component.
struct GaussianComponent {
  float weight = 0.5F;
  float mean = 0.0F;
  float stddev = 1.0F;
};

/// Result of an EM fit.
struct MixtureFit {
  GaussianComponent low;    ///< component with the smaller mean
  GaussianComponent high;   ///< component with the larger mean
  float log_likelihood = 0.0F;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Options for the EM fit.
struct MixtureFitOptions {
  std::size_t max_iterations = 200;
  float tolerance = 1e-5F;   ///< relative log-likelihood change to stop
  float min_stddev = 1e-3F;  ///< variance floor to avoid collapse
};

/// Fits a 2-component GMM to `samples` by EM, initialized by splitting at
/// the median. Throws std::invalid_argument when fewer than 2 samples.
[[nodiscard]] MixtureFit fit_two_gaussians(std::span<const float> samples,
                                           const MixtureFitOptions& options = {});

/// Normal pdf helper shared with tests.
[[nodiscard]] float normal_pdf(float x, float mean, float stddev) noexcept;

/// Bimodality separation of a fit: |mu_hi - mu_lo| / (sigma_hi + sigma_lo).
/// Values >> 1 mean cleanly separated modes (ITH-friendly index).
[[nodiscard]] float separation(const MixtureFit& fit) noexcept;

}  // namespace mann::numeric
