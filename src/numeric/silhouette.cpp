#include "numeric/silhouette.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace mann::numeric {
namespace {

/// Sorted values plus prefix sums allow O(log n) mean-|x - y| queries.
class SortedCluster {
 public:
  explicit SortedCluster(std::span<const float> values)
      : sorted_(values.begin(), values.end()) {
    std::sort(sorted_.begin(), sorted_.end());
    prefix_.resize(sorted_.size() + 1, 0.0);
    for (std::size_t i = 0; i < sorted_.size(); ++i) {
      prefix_[i + 1] = prefix_[i] + static_cast<double>(sorted_[i]);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }

  /// Sum over members y of |x - y|.
  [[nodiscard]] double sum_abs_dist(float x) const noexcept {
    const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), x);
    const auto k = static_cast<std::size_t>(it - sorted_.begin());
    const double below = prefix_[k];
    const double above = prefix_.back() - below;
    const double xd = static_cast<double>(x);
    // k members are <= x (sum: k*x - below), rest are > x (above - (n-k)*x).
    return xd * static_cast<double>(k) - below + above -
           xd * static_cast<double>(sorted_.size() - k);
  }

 private:
  std::vector<float> sorted_;
  std::vector<double> prefix_;
};

}  // namespace

float average_silhouette(std::span<const float> own,
                         std::span<const float> other) {
  if (own.empty() || other.empty()) {
    return 0.0F;
  }
  const SortedCluster own_sorted(own);
  const SortedCluster other_sorted(other);
  double acc = 0.0;
  for (float x : own) {
    // a(x): mean distance to other members of own cluster (exclude self).
    double a = 0.0;
    if (own_sorted.size() > 1) {
      a = own_sorted.sum_abs_dist(x) /
          static_cast<double>(own_sorted.size() - 1);
    }
    const double b = other_sorted.sum_abs_dist(x) /
                     static_cast<double>(other_sorted.size());
    const double denom = std::max(a, b);
    if (denom > 0.0) {
      acc += (b - a) / denom;
    }
  }
  return static_cast<float>(acc / static_cast<double>(own.size()));
}

}  // namespace mann::numeric
