#include "numeric/vector_ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mann::numeric {

float dot(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("dot: length mismatch");
  }
  float acc = 0.0F;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

void axpy(float scale, std::span<const float> x, std::span<float> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("axpy: length mismatch");
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += scale * x[i];
  }
}

std::vector<float> matvec(const Matrix& m, std::span<const float> x) {
  if (m.cols() != x.size()) {
    throw std::invalid_argument("matvec: shape mismatch");
  }
  std::vector<float> y(m.rows(), 0.0F);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    y[r] = dot(m.row(r), x);
  }
  return y;
}

std::vector<float> matvec_transposed(const Matrix& m,
                                     std::span<const float> x) {
  if (m.rows() != x.size()) {
    throw std::invalid_argument("matvec_transposed: shape mismatch");
  }
  std::vector<float> y(m.cols(), 0.0F);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    axpy(x[r], m.row(r), y);
  }
  return y;
}

void softmax_inplace(std::span<float> v) {
  if (v.empty()) {
    return;
  }
  const float max_v = *std::max_element(v.begin(), v.end());
  float sum = 0.0F;
  for (float& e : v) {
    e = std::exp(e - max_v);
    sum += e;
  }
  for (float& e : v) {
    e /= sum;
  }
}

std::vector<float> softmax(std::span<const float> v) {
  std::vector<float> out(v.begin(), v.end());
  softmax_inplace(out);
  return out;
}

std::size_t argmax(std::span<const float> v) {
  if (v.empty()) {
    throw std::invalid_argument("argmax: empty input");
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) {
      best = i;
    }
  }
  return best;
}

void add_outer(Matrix& m, std::span<const float> col,
               std::span<const float> row, float scale) {
  if (m.rows() != col.size() || m.cols() != row.size()) {
    throw std::invalid_argument("add_outer: shape mismatch");
  }
  for (std::size_t r = 0; r < m.rows(); ++r) {
    axpy(scale * col[r], row, m.row(r));
  }
}

float norm2(std::span<const float> v) noexcept {
  float acc = 0.0F;
  for (float e : v) {
    acc += e * e;
  }
  return std::sqrt(acc);
}

void clip_norm(std::span<float> v, float max_norm) noexcept {
  const float n = norm2(v);
  if (n <= max_norm || n == 0.0F) {
    return;
  }
  const float s = max_norm / n;
  for (float& e : v) {
    e *= s;
  }
}

}  // namespace mann::numeric
