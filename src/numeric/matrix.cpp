#include "numeric/matrix.hpp"

#include <stdexcept>

namespace mann::numeric {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0F) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<float> values)
    : rows_(rows), cols_(cols), data_(std::move(values)) {
  if (data_.size() != rows_ * cols_) {
    throw std::invalid_argument("Matrix: values size does not match shape");
  }
}

float& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at: index out of range");
  }
  return data_[r * cols_ + c];
}

float Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at: index out of range");
  }
  return data_[r * cols_ + c];
}

void Matrix::fill(float value) noexcept {
  for (float& v : data_) {
    v = value;
  }
}

void Matrix::resize_zeroed(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0F);
}

void Matrix::add_scaled(const Matrix& other, float scale) {
  if (other.rows_ != rows_ || other.cols_ != cols_) {
    throw std::invalid_argument("Matrix::add_scaled: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

void Matrix::scale(float value) noexcept {
  for (float& v : data_) {
    v *= value;
  }
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

}  // namespace mann::numeric
