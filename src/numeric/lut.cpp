#include "numeric/lut.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace mann::numeric {

ExpLut::ExpLut(const Config& config)
    : domain_min_(config.domain_min), domain_max_(config.domain_max) {
  if (config.entries < 2) {
    throw std::invalid_argument("ExpLut: need at least 2 entries");
  }
  if (!(domain_min_ < domain_max_)) {
    throw std::invalid_argument("ExpLut: empty domain");
  }
  table_.resize(config.entries);
  const float step =
      (domain_max_ - domain_min_) / static_cast<float>(config.entries - 1);
  inv_step_ = 1.0F / step;
  for (std::size_t i = 0; i < config.entries; ++i) {
    table_[i] = std::exp(domain_min_ + static_cast<float>(i) * step);
  }
  // Probe interpolation error on a grid 8x finer than the table.
  const std::size_t probes = config.entries * 8;
  const float probe_step =
      (domain_max_ - domain_min_) / static_cast<float>(probes);
  for (std::size_t i = 0; i <= probes; ++i) {
    const float x = domain_min_ + static_cast<float>(i) * probe_step;
    const float err = std::abs((*this)(x) - std::exp(x));
    if (err > max_abs_error_) {
      max_abs_error_ = err;
    }
  }
}

float ExpLut::operator()(float x) const noexcept {
  if (x <= domain_min_) {
    return table_.front();
  }
  if (x >= domain_max_) {
    return table_.back();
  }
  const float pos = (x - domain_min_) * inv_step_;
  const auto idx = static_cast<std::size_t>(pos);
  const float frac = pos - static_cast<float>(idx);
  return table_[idx] + frac * (table_[idx + 1] - table_[idx]);
}

ReciprocalLut::ReciprocalLut(const Config& config) {
  if (config.entries < 2) {
    throw std::invalid_argument("ReciprocalLut: need at least 2 entries");
  }
  seeds_.resize(config.entries);
  for (std::size_t i = 0; i < config.entries; ++i) {
    // Seed for mantissa m in [1, 2): reciprocal of the bucket midpoint.
    const float m = 1.0F + (static_cast<float>(i) + 0.5F) /
                               static_cast<float>(config.entries);
    seeds_[i] = 1.0F / m;
  }
}

float ReciprocalLut::operator()(float x) const noexcept {
  if (!(x > 0.0F)) {
    return std::numeric_limits<float>::max();
  }
  // Decompose x = m * 2^e with m in [1, 2).
  int e = 0;
  const float m = std::frexp(x, &e) * 2.0F;  // frexp gives [0.5, 1)
  e -= 1;
  const auto bucket = static_cast<std::size_t>(
      (m - 1.0F) * static_cast<float>(seeds_.size()));
  const std::size_t idx = bucket < seeds_.size() ? bucket : seeds_.size() - 1;
  float r = seeds_[idx];
  // Two Newton-Raphson refinements: r <- r * (2 - m*r).
  r = r * (2.0F - m * r);
  r = r * (2.0F - m * r);
  return std::ldexp(r, -e);
}

}  // namespace mann::numeric
