// Gaussian kernel density estimation.
//
// Algorithm 1, Step 1 estimates the class-conditional logit densities
// p(z_i | y = i) from the training histograms "by kernel density
// estimation". This is that estimator: a Gaussian-kernel KDE with
// Silverman's rule-of-thumb bandwidth by default, evaluated either from raw
// samples or from binned histogram counts (the binned path is what an
// embedded calibration step would use; both are tested against each other).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "numeric/histogram.hpp"

namespace mann::numeric {

/// One-dimensional Gaussian KDE.
class KernelDensity {
 public:
  /// Fits a KDE to raw samples.
  /// `bandwidth <= 0` selects Silverman's rule: 1.06 * sigma * n^(-1/5)
  /// (floored at a small epsilon so degenerate constant samples still
  /// yield a usable, sharply-peaked density).
  explicit KernelDensity(std::span<const float> samples,
                         float bandwidth = 0.0F);

  /// Fits a KDE to binned data: each bin center acts as `count` stacked
  /// samples. Matches the raw-sample fit as bins -> infinity.
  explicit KernelDensity(const Histogram& hist, float bandwidth = 0.0F);

  /// Density estimate p(x). Returns 0 when fitted on no data.
  [[nodiscard]] float operator()(float x) const noexcept;

  [[nodiscard]] float bandwidth() const noexcept { return bandwidth_; }
  [[nodiscard]] std::size_t sample_count() const noexcept { return total_; }
  [[nodiscard]] bool empty() const noexcept { return total_ == 0; }

 private:
  void select_bandwidth(float requested, float sigma);

  std::vector<float> centers_;
  std::vector<float> weights_;  ///< per-center multiplicity
  std::size_t total_ = 0;
  float bandwidth_ = 1.0F;
};

}  // namespace mann::numeric
