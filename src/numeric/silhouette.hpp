// Silhouette coefficient for 1-D two-cluster data.
//
// Algorithm 1, Step 3 of the paper sorts output indices by the average
// silhouette coefficient of each index's positive-logit cluster (HG_i)
// against its negative-logit cluster (HG_ī): indices whose logit
// distributions separate cleanly are probed first during inference
// thresholding. The classical definition (Rousseeuw 1987) is
//   s(x) = (b(x) - a(x)) / max(a(x), b(x))
// with a(x) the mean intra-cluster distance and b(x) the mean distance to
// the other cluster. For 1-D data with |distances| = |x - y| this is
// computed exactly in O((n+m) log(n+m)) using sorted prefix sums.
#pragma once

#include <span>

namespace mann::numeric {

/// Average silhouette coefficient of cluster `own` against cluster `other`
/// (averaged over the members of `own` only, matching Algo. 1's
/// "avg. silhouette coefficient of HG_i").
///
/// Returns 0 when `own` is empty or `other` is empty (no separation
/// information), and handles singleton `own` clusters by defining a(x) = 0.
/// Result lies in [-1, 1].
[[nodiscard]] float average_silhouette(std::span<const float> own,
                                       std::span<const float> other);

}  // namespace mann::numeric
