// Vector kernels shared by the float reference model, the trainer, and the
// baseline executors. All kernels take std::span views so callers can pass
// Matrix rows or std::vector storage without copies.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "numeric/matrix.hpp"

namespace mann::numeric {

/// Inner product `a · b`. Throws std::invalid_argument on length mismatch.
[[nodiscard]] float dot(std::span<const float> a, std::span<const float> b);

/// `y += scale * x`. Throws std::invalid_argument on length mismatch.
void axpy(float scale, std::span<const float> x, std::span<float> y);

/// `y = M x` (row-major mat-vec). Throws std::invalid_argument on mismatch.
[[nodiscard]] std::vector<float> matvec(const Matrix& m,
                                        std::span<const float> x);

/// `y = Mᵀ x` without materializing the transpose.
/// Throws std::invalid_argument on mismatch.
[[nodiscard]] std::vector<float> matvec_transposed(const Matrix& m,
                                                   std::span<const float> x);

/// Numerically-stable in-place softmax (subtracts the running max).
void softmax_inplace(std::span<float> v);

/// Returns softmax(v) as a new vector.
[[nodiscard]] std::vector<float> softmax(std::span<const float> v);

/// Index of the maximum element. Throws std::invalid_argument when empty.
/// Ties resolve to the lowest index (matches the accelerator's sequential
/// running-max comparator).
[[nodiscard]] std::size_t argmax(std::span<const float> v);

/// Rank-1 update `m += scale * col * rowᵀ` (outer product accumulate);
/// the workhorse of the manual backprop. Throws on shape mismatch.
void add_outer(Matrix& m, std::span<const float> col,
               std::span<const float> row, float scale);

/// Euclidean norm.
[[nodiscard]] float norm2(std::span<const float> v) noexcept;

/// Scales `v` so its Euclidean norm is at most `max_norm` (gradient
/// clipping). No-op when the norm is already within bounds or zero.
void clip_norm(std::span<float> v, float max_norm) noexcept;

}  // namespace mann::numeric
