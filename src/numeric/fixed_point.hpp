// Parametric signed fixed-point type used by the accelerator datapath.
//
// The FPGA datapath in the paper streams embedded vectors and weights through
// adder trees, MAC units and an exp/div path; a real implementation would use
// DSP-friendly fixed-point words rather than floats. FixedPoint<F> models a
// 32-bit two's-complement word with F fractional bits, saturating arithmetic
// (what a well-designed RTL datapath does on overflow), and explicit
// rounding-to-nearest on conversion and multiplication. The accelerator
// default is Q16.16 (`fx16`); the precision-ablation bench sweeps F.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>

namespace mann::numeric {

/// Signed 32-bit fixed-point value with `FracBits` fractional bits.
/// All arithmetic saturates instead of wrapping.
template <unsigned FracBits>
class FixedPoint {
  static_assert(FracBits > 0 && FracBits < 31,
                "FracBits must leave room for sign and integer bits");

 public:
  using raw_type = std::int32_t;
  using wide_type = std::int64_t;

  static constexpr unsigned kFracBits = FracBits;
  static constexpr raw_type kOne = raw_type{1} << FracBits;
  static constexpr raw_type kRawMax = std::numeric_limits<raw_type>::max();
  static constexpr raw_type kRawMin = std::numeric_limits<raw_type>::min();

  constexpr FixedPoint() = default;

  /// Converts from float with round-to-nearest and saturation.
  static constexpr FixedPoint from_float(float v) noexcept {
    const double scaled =
        static_cast<double>(v) * static_cast<double>(kOne);
    return FixedPoint(saturate_to_raw(scaled >= 0.0 ? scaled + 0.5
                                                    : scaled - 0.5));
  }

  /// Wraps an already-scaled raw word.
  static constexpr FixedPoint from_raw(raw_type raw) noexcept {
    return FixedPoint(raw);
  }

  [[nodiscard]] constexpr raw_type raw() const noexcept { return raw_; }

  [[nodiscard]] constexpr float to_float() const noexcept {
    return static_cast<float>(static_cast<double>(raw_) /
                              static_cast<double>(kOne));
  }

  /// Largest / smallest representable values.
  static constexpr FixedPoint max() noexcept { return FixedPoint(kRawMax); }
  static constexpr FixedPoint min() noexcept { return FixedPoint(kRawMin); }

  /// Smallest positive increment.
  static constexpr FixedPoint epsilon() noexcept { return FixedPoint(1); }

  constexpr FixedPoint operator+(FixedPoint other) const noexcept {
    return FixedPoint(saturate_to_raw(static_cast<wide_type>(raw_) +
                                      static_cast<wide_type>(other.raw_)));
  }

  constexpr FixedPoint operator-(FixedPoint other) const noexcept {
    return FixedPoint(saturate_to_raw(static_cast<wide_type>(raw_) -
                                      static_cast<wide_type>(other.raw_)));
  }

  constexpr FixedPoint operator-() const noexcept {
    return FixedPoint(saturate_to_raw(-static_cast<wide_type>(raw_)));
  }

  /// Full-precision multiply then round-to-nearest (half away from zero)
  /// shift back; saturates.
  constexpr FixedPoint operator*(FixedPoint other) const noexcept {
    const wide_type prod = static_cast<wide_type>(raw_) *
                           static_cast<wide_type>(other.raw_);
    const wide_type bias = wide_type{1} << (FracBits - 1);
    // Symmetric rounding: shift the magnitude so the arithmetic
    // right-shift's floor behaviour cannot bias negative results.
    const wide_type rounded = prod >= 0
                                  ? (prod + bias) >> FracBits
                                  : -((-prod + bias) >> FracBits);
    return FixedPoint(saturate_to_raw(rounded));
  }

  /// Division; saturates on overflow, returns saturated max/min on
  /// divide-by-zero (mirrors a hardware divider flagging an exception value).
  constexpr FixedPoint operator/(FixedPoint other) const noexcept {
    if (other.raw_ == 0) {
      return raw_ >= 0 ? max() : min();
    }
    const wide_type num = static_cast<wide_type>(raw_) << FracBits;
    return FixedPoint(saturate_to_raw(num / other.raw_));
  }

  constexpr FixedPoint& operator+=(FixedPoint other) noexcept {
    *this = *this + other;
    return *this;
  }
  constexpr FixedPoint& operator-=(FixedPoint other) noexcept {
    *this = *this - other;
    return *this;
  }
  constexpr FixedPoint& operator*=(FixedPoint other) noexcept {
    *this = *this * other;
    return *this;
  }

  friend constexpr bool operator==(FixedPoint, FixedPoint) = default;
  friend constexpr auto operator<=>(FixedPoint a, FixedPoint b) noexcept {
    return a.raw_ <=> b.raw_;
  }

 private:
  constexpr explicit FixedPoint(raw_type raw) noexcept : raw_(raw) {}

  static constexpr raw_type saturate_to_raw(wide_type v) noexcept {
    if (v > static_cast<wide_type>(kRawMax)) {
      return kRawMax;
    }
    if (v < static_cast<wide_type>(kRawMin)) {
      return kRawMin;
    }
    return static_cast<raw_type>(v);
  }

  static constexpr raw_type saturate_to_raw(double v) noexcept {
    if (v >= static_cast<double>(kRawMax)) {
      return kRawMax;
    }
    if (v <= static_cast<double>(kRawMin)) {
      return kRawMin;
    }
    return static_cast<raw_type>(v);
  }

  raw_type raw_ = 0;
};

/// Datapath default: Q16.16 (range ±32768, resolution ~1.5e-5).
using fx16 = FixedPoint<16>;

/// Lower-precision variants for the precision-ablation bench.
using fx8 = FixedPoint<8>;
using fx12 = FixedPoint<12>;
using fx20 = FixedPoint<20>;
using fx24 = FixedPoint<24>;

}  // namespace mann::numeric
