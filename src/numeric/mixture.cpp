#include "numeric/mixture.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace mann::numeric {

float normal_pdf(float x, float mean, float stddev) noexcept {
  const float inv = 1.0F / stddev;
  const float u = (x - mean) * inv;
  return inv * std::exp(-0.5F * u * u) /
         std::sqrt(2.0F * std::numbers::pi_v<float>);
}

float separation(const MixtureFit& fit) noexcept {
  const float spread = fit.low.stddev + fit.high.stddev;
  if (spread <= 0.0F) {
    return 0.0F;
  }
  return (fit.high.mean - fit.low.mean) / spread;
}

MixtureFit fit_two_gaussians(std::span<const float> samples,
                             const MixtureFitOptions& options) {
  if (samples.size() < 2) {
    throw std::invalid_argument("fit_two_gaussians: need >= 2 samples");
  }
  std::vector<float> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  const std::size_t half = n / 2;

  auto moments = [](std::span<const float> xs) {
    double sum = 0.0;
    double sq = 0.0;
    for (float x : xs) {
      sum += x;
      sq += static_cast<double>(x) * x;
    }
    const double m = sum / static_cast<double>(xs.size());
    const double var =
        std::max(1e-8, sq / static_cast<double>(xs.size()) - m * m);
    return std::pair<float, float>{static_cast<float>(m),
                                   static_cast<float>(std::sqrt(var))};
  };

  MixtureFit fit;
  {
    const auto [m_lo, s_lo] =
        moments(std::span<const float>(sorted.data(), half));
    const auto [m_hi, s_hi] =
        moments(std::span<const float>(sorted.data() + half, n - half));
    fit.low = {0.5F, m_lo, std::max(s_lo, options.min_stddev)};
    fit.high = {0.5F, m_hi, std::max(s_hi, options.min_stddev)};
  }

  std::vector<float> resp(n, 0.5F);  // responsibility of the 'high' component
  double prev_ll = -1e30;
  for (std::size_t iter = 1; iter <= options.max_iterations; ++iter) {
    // E-step.
    double ll = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const float p_lo =
          fit.low.weight * normal_pdf(sorted[i], fit.low.mean, fit.low.stddev);
      const float p_hi = fit.high.weight *
                         normal_pdf(sorted[i], fit.high.mean, fit.high.stddev);
      const float denom = std::max(p_lo + p_hi, 1e-30F);
      resp[i] = p_hi / denom;
      ll += std::log(static_cast<double>(denom));
    }
    // M-step.
    double w_hi = 0.0;
    double mu_hi = 0.0;
    double mu_lo = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      w_hi += resp[i];
      mu_hi += static_cast<double>(resp[i]) * sorted[i];
      mu_lo += static_cast<double>(1.0F - resp[i]) * sorted[i];
    }
    const double w_lo = static_cast<double>(n) - w_hi;
    if (w_hi > 1e-6 && w_lo > 1e-6) {
      fit.high.mean = static_cast<float>(mu_hi / w_hi);
      fit.low.mean = static_cast<float>(mu_lo / w_lo);
      double var_hi = 0.0;
      double var_lo = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double d_hi = sorted[i] - fit.high.mean;
        const double d_lo = sorted[i] - fit.low.mean;
        var_hi += static_cast<double>(resp[i]) * d_hi * d_hi;
        var_lo += static_cast<double>(1.0F - resp[i]) * d_lo * d_lo;
      }
      fit.high.stddev = std::max(
          static_cast<float>(std::sqrt(var_hi / w_hi)), options.min_stddev);
      fit.low.stddev = std::max(
          static_cast<float>(std::sqrt(var_lo / w_lo)), options.min_stddev);
      fit.high.weight = static_cast<float>(w_hi / static_cast<double>(n));
      fit.low.weight = 1.0F - fit.high.weight;
    }
    fit.iterations = iter;
    fit.log_likelihood = static_cast<float>(ll);
    if (std::abs(ll - prev_ll) <=
        static_cast<double>(options.tolerance) * (std::abs(prev_ll) + 1.0)) {
      fit.converged = true;
      break;
    }
    prev_ll = ll;
  }
  if (fit.low.mean > fit.high.mean) {
    std::swap(fit.low, fit.high);
  }
  return fit;
}

}  // namespace mann::numeric
