// Deterministic random number generation.
//
// Every stochastic component in the project (data generation, weight init,
// training shuffles) draws from this engine so that experiments are exactly
// reproducible from a seed. xoshiro256** is used instead of std::mt19937
// because its output is identical across standard libraries, which keeps
// golden test values portable.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace mann::numeric {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform float in [lo, hi).
  [[nodiscard]] float uniform(float lo, float hi) noexcept;

  /// Uniform integer in [0, n). `n` must be > 0.
  [[nodiscard]] std::size_t index(std::size_t n) noexcept;

  /// Standard normal via Box-Muller (stateless: no cached spare).
  [[nodiscard]] float normal() noexcept;

  /// Normal with explicit mean/stddev.
  [[nodiscard]] float normal(float mean, float stddev) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), in random order.
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(
      std::size_t n, std::size_t k);

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mann::numeric
