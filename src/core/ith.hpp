// Inference thresholding — the paper's Algorithm 1.
//
// A data-based approximate maximum-inner-product search for the output
// layer: probe classes one at a time (exactly how the OUTPUT module
// computes logits sequentially), and stop as soon as a logit clears its
// class-specific threshold θ_i. Thresholds come from Bayes over KDE-fitted
// class-conditional logit densities (Steps 1-2); the probe order comes
// from per-class silhouette coefficients (Step 3) so the most separable
// classes are tried first.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "data/types.hpp"
#include "model/memn2n.hpp"

namespace mann::core {

/// Calibration hyper-parameters.
struct IthConfig {
  /// Thresholding constant ρ of Eq. 8. Posterior must reach at least this
  /// value for a logit to trigger an early exit. ρ > 1 disables
  /// thresholding for every class (useful as an explicit off switch).
  float rho = 1.0F;

  /// Gaussian-KDE bandwidth; <= 0 selects Silverman's rule per class.
  float kde_bandwidth = 0.0F;

  /// Classes with fewer correct positive observations than this never get
  /// a threshold (their θ_i stays +inf and they cannot early-exit).
  std::size_t min_positive_samples = 5;

  /// Weight the two class-conditional densities by the label priors
  /// p(y=i) when forming the posterior (the literal Eq. 7). With ~30
  /// answer classes the prior of any single class is ~0.03, which pushes
  /// the posterior below ρ everywhere the negative density is nonzero —
  /// the threshold constant then has no effect in [0.9, 1.0], contradicting
  /// the sensitivity Fig. 3 reports. The default (false) uses the
  /// likelihood ratio p(z|y=i) / (p(z|y=i) + p(z|y≠i)), the reading of
  /// the paper's "∝" that reproduces Fig. 3.
  bool use_priors = false;

  /// Support truncation of the negative density p(z_i | y != i): beyond
  /// `support_sigmas` bandwidths outside the observed negative range the
  /// density is treated as exactly zero, as a histogram estimate would be.
  /// Without this a Gaussian kernel's infinite tails keep the posterior
  /// below 1 everywhere and ρ = 1.0 (the paper's operating point) would
  /// almost never fire. The default margin of one bandwidth keeps the
  /// measured accuracy drop at ρ = 1.0 under the paper's 0.1% budget
  /// (see bench/ablate_ith_calibration).
  float support_sigmas = 1.0F;
};

/// Outcome of one thresholded inference (Algo. 1, Step 4).
struct ThresholdedResult {
  std::size_t prediction = 0;
  std::size_t comparisons = 0;  ///< output-layer dot products performed
  bool early_exit = false;      ///< true when a threshold fired
};

/// Calibrated state: thresholds, probe order, and the per-class logit
/// populations (exposed for the Fig. 2(b) mixture analysis and tests).
class InferenceThresholding {
 public:
  /// Runs Steps 1-3 of Algorithm 1 on the training split.
  /// The model must already be trained; only examples the model predicts
  /// correctly contribute to the histograms (as in the paper).
  static InferenceThresholding calibrate(
      const model::MemN2N& model,
      std::span<const data::EncodedStory> training, const IthConfig& config);

  /// Step 4: sequential output-layer probe with early exit.
  /// `use_index_ordering == false` probes classes in natural index order —
  /// the "ITH w/o index ordering" ablation of Fig. 3.
  [[nodiscard]] ThresholdedResult predict(
      const model::MemN2N& model, const data::EncodedStory& story,
      bool use_index_ordering = true) const;

  /// Same as predict() but starting from precomputed features h^H
  /// (used by the accelerator, which owns the rest of the pipeline).
  [[nodiscard]] ThresholdedResult predict_from_features(
      const model::MemN2N& model, std::span<const float> features,
      bool use_index_ordering = true) const;

  [[nodiscard]] const IthConfig& config() const noexcept { return config_; }

  /// θ_i per class; +inf when the class never early-exits.
  [[nodiscard]] const std::vector<float>& thresholds() const noexcept {
    return thresholds_;
  }

  /// Probe order (class indices sorted by descending silhouette).
  [[nodiscard]] const std::vector<std::size_t>& probe_order() const noexcept {
    return order_;
  }

  /// Per-class average silhouette coefficient S_i.
  [[nodiscard]] const std::vector<float>& silhouettes() const noexcept {
    return silhouettes_;
  }

  /// Training-label priors p(y = i).
  [[nodiscard]] const std::vector<float>& priors() const noexcept {
    return priors_;
  }

  /// Logit observations: HG_i (z_i when i was the correct argmax).
  [[nodiscard]] std::span<const float> positive_samples(std::size_t i) const {
    return positive_[i];
  }
  /// HG_ī (z_i when i was not the argmax).
  [[nodiscard]] std::span<const float> negative_samples(std::size_t i) const {
    return negative_[i];
  }

  /// Number of classes holding a finite threshold.
  [[nodiscard]] std::size_t active_classes() const noexcept;

  [[nodiscard]] std::size_t num_classes() const noexcept {
    return thresholds_.size();
  }

  static constexpr float kNoThreshold =
      std::numeric_limits<float>::infinity();

 private:
  IthConfig config_;
  std::vector<float> thresholds_;
  std::vector<std::size_t> order_;
  std::vector<float> silhouettes_;
  std::vector<float> priors_;
  std::vector<std::vector<float>> positive_;
  std::vector<std::vector<float>> negative_;
};

}  // namespace mann::core
