#include "core/ith_eval.hpp"

namespace mann::core {

IthEvaluation evaluate_ith(const model::MemN2N& model,
                           const InferenceThresholding& ith,
                           std::span<const data::EncodedStory> test,
                           bool use_index_ordering) {
  IthEvaluation ev;
  ev.stories = test.size();
  if (test.empty()) {
    return ev;
  }
  std::size_t correct = 0;
  std::size_t exits = 0;
  double comparisons = 0.0;
  for (const data::EncodedStory& story : test) {
    const ThresholdedResult r = ith.predict(model, story, use_index_ordering);
    if (r.prediction == static_cast<std::size_t>(story.answer)) {
      ++correct;
    }
    exits += r.early_exit ? 1 : 0;
    comparisons += static_cast<double>(r.comparisons);
  }
  const auto n = static_cast<double>(test.size());
  ev.accuracy = static_cast<float>(static_cast<double>(correct) / n);
  ev.mean_comparisons = static_cast<float>(comparisons / n);
  ev.normalized_comparisons =
      ev.mean_comparisons / static_cast<float>(model.config().vocab_size);
  ev.early_exit_rate =
      static_cast<float>(static_cast<double>(exits) / n);
  return ev;
}

IthEvaluation evaluate_full_mips(const model::MemN2N& model,
                                 std::span<const data::EncodedStory> test) {
  IthEvaluation ev;
  ev.stories = test.size();
  if (test.empty()) {
    return ev;
  }
  std::size_t correct = 0;
  for (const data::EncodedStory& story : test) {
    if (model.predict(story) == static_cast<std::size_t>(story.answer)) {
      ++correct;
    }
  }
  ev.accuracy = static_cast<float>(correct) / static_cast<float>(test.size());
  ev.mean_comparisons = static_cast<float>(model.config().vocab_size);
  ev.normalized_comparisons = 1.0F;
  ev.early_exit_rate = 0.0F;
  return ev;
}

}  // namespace mann::core
