// Approximate maximum-inner-product-search baselines from the paper's
// related-work discussion (§VI-B).
//
// The paper argues that hashing-based MIPS (Shrivastava & Li, ALSH) and
// clustering-based MIPS (Auvolat et al.) "may be too slow to be used in
// the output layer of a DNN in resource-limited environments". These
// classes implement both schemes so bench/compare_mips can quantify that
// claim against inference thresholding on the same trained output layers:
// candidate-set sizes, hash/centroid overheads, and recall@1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "numeric/matrix.hpp"
#include "numeric/random.hpp"

namespace mann::core {

/// Outcome of one approximate MIPS query.
struct MipsResult {
  std::size_t index = 0;        ///< arg max candidate
  std::size_t dot_products = 0; ///< full-length row dot products computed
  std::size_t overhead_ops = 0; ///< scheme-specific extra dot products
                                ///< (hash projections / centroid scores)
};

/// Exact sequential scan — the conventional method of Fig. 2(a); the
/// reference both for correctness and for op counts.
class ExactMips {
 public:
  explicit ExactMips(const numeric::Matrix& weights);

  [[nodiscard]] MipsResult query(std::span<const float> h) const;

  [[nodiscard]] std::size_t rows() const noexcept {
    return weights_.rows();
  }

 private:
  const numeric::Matrix& weights_;
};

/// Sign-random-projection asymmetric LSH for MIPS (L2-ALSH style).
///
/// Rows are scaled into a ball of radius `scale_u` and augmented with m
/// norm-powers ||x||^2, ||x||^4, ... so that inner product order becomes
/// (asymptotically) cosine order between the augmented row P(x) and the
/// augmented query Q(h) = [h/||h||; 1/2; ...]. K sign projections per
/// table give a bucket id; L independent tables are probed per query and
/// the union of colliding rows is scanned exactly.
class AlshMips {
 public:
  struct Config {
    std::size_t tables = 8;       ///< L
    std::size_t bits = 8;         ///< K sign bits per table
    std::size_t norm_powers = 3;  ///< m augmentation terms
    float scale_u = 0.83F;        ///< max augmented row norm
    std::uint64_t seed = 1;
  };

  AlshMips(const numeric::Matrix& weights, const Config& config);

  /// Scans the union of matching buckets; falls back to a full scan when
  /// no candidate collides (keeps the result well-defined).
  [[nodiscard]] MipsResult query(std::span<const float> h) const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  [[nodiscard]] std::uint32_t hash_augmented(
      std::span<const float> augmented, std::size_t table) const;
  [[nodiscard]] std::vector<float> augment_row(
      std::span<const float> row, float norm_scale) const;
  [[nodiscard]] std::vector<float> augment_query(
      std::span<const float> h) const;

  const numeric::Matrix& weights_;
  Config config_;
  std::size_t augmented_dim_ = 0;
  /// Random projection vectors: tables x bits x augmented_dim.
  std::vector<float> projections_;
  /// Bucket tables: for each table, bucket id -> row indices.
  std::vector<std::vector<std::vector<std::uint32_t>>> buckets_;
};

/// Spherical k-means clustering MIPS (Auvolat et al. 2015).
///
/// Rows are clustered by cosine; a query scores the k centroids, then
/// exactly scans the rows of the best `probe_clusters` clusters.
class ClusterMips {
 public:
  struct Config {
    std::size_t clusters = 8;        ///< k
    std::size_t probe_clusters = 2;  ///< clusters scanned per query
    std::size_t iterations = 25;     ///< k-means iterations
    std::uint64_t seed = 1;
  };

  ClusterMips(const numeric::Matrix& weights, const Config& config);

  [[nodiscard]] MipsResult query(std::span<const float> h) const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Cluster membership (exposed for tests).
  [[nodiscard]] const std::vector<std::uint32_t>& assignment()
      const noexcept {
    return assignment_;
  }

 private:
  const numeric::Matrix& weights_;
  Config config_;
  numeric::Matrix centroids_;  ///< k x dim, unit rows
  std::vector<std::uint32_t> assignment_;
  std::vector<std::vector<std::uint32_t>> members_;
};

}  // namespace mann::core
