// Batch evaluation of inference thresholding — the measurements behind
// Fig. 3 (accuracy and normalized comparison counts vs ρ, with and
// without index ordering).
#pragma once

#include <span>
#include <vector>

#include "core/ith.hpp"
#include "data/types.hpp"
#include "model/memn2n.hpp"

namespace mann::core {

/// Aggregate quality/cost of one ITH configuration over a test split.
struct IthEvaluation {
  float accuracy = 0.0F;
  float mean_comparisons = 0.0F;        ///< output-layer probes per story
  float normalized_comparisons = 0.0F;  ///< mean / |I|
  float early_exit_rate = 0.0F;
  std::size_t stories = 0;
};

/// Runs Step 4 over `test` and aggregates.
[[nodiscard]] IthEvaluation evaluate_ith(
    const model::MemN2N& model, const InferenceThresholding& ith,
    std::span<const data::EncodedStory> test, bool use_index_ordering = true);

/// Baseline: conventional full MIPS (comparisons == |I|, accuracy of the
/// plain model). Provided so Fig. 3's "w/o ITH" column uses the same code
/// path and accounting.
[[nodiscard]] IthEvaluation evaluate_full_mips(
    const model::MemN2N& model, std::span<const data::EncodedStory> test);

}  // namespace mann::core
