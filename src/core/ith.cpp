#include "core/ith.hpp"

#include <algorithm>
#include <numeric>

#include "numeric/kde.hpp"
#include "numeric/silhouette.hpp"
#include "numeric/vector_ops.hpp"

namespace mann::core {

InferenceThresholding InferenceThresholding::calibrate(
    const model::MemN2N& model, std::span<const data::EncodedStory> training,
    const IthConfig& config) {
  const std::size_t classes = model.config().vocab_size;
  InferenceThresholding ith;
  ith.config_ = config;
  ith.thresholds_.assign(classes, kNoThreshold);
  ith.silhouettes_.assign(classes, 0.0F);
  ith.priors_.assign(classes, 0.0F);
  ith.positive_.assign(classes, {});
  ith.negative_.assign(classes, {});

  // Step 1: collect logit populations from correctly-predicted examples.
  std::vector<std::size_t> label_counts(classes, 0);
  std::size_t labelled = 0;
  for (const data::EncodedStory& story : training) {
    const auto label = static_cast<std::size_t>(story.answer);
    ++label_counts[label];
    ++labelled;
    const model::ForwardTrace trace = model.forward(story);
    if (trace.prediction != label) {
      continue;
    }
    for (std::size_t i = 0; i < classes; ++i) {
      if (i == label) {
        ith.positive_[i].push_back(trace.logits[i]);
      } else {
        ith.negative_[i].push_back(trace.logits[i]);
      }
    }
  }
  if (labelled > 0) {
    for (std::size_t i = 0; i < classes; ++i) {
      ith.priors_[i] = static_cast<float>(label_counts[i]) /
                       static_cast<float>(labelled);
    }
  }

  // Step 2: per-class threshold θ_i = min{ z ∈ HG_i : p(y=i | z) >= ρ }.
  // The posterior is the two-hypothesis Bayes ratio over the KDE-fitted
  // class-conditional densities weighted by the priors.
  for (std::size_t i = 0; i < classes; ++i) {
    const auto& pos = ith.positive_[i];
    const auto& neg = ith.negative_[i];
    if (pos.size() < config.min_positive_samples || neg.empty() ||
        config.rho > 1.0F) {
      continue;
    }
    const numeric::KernelDensity pos_kde(pos, config.kde_bandwidth);
    const numeric::KernelDensity neg_kde(neg, config.kde_bandwidth);
    const float w_pos = config.use_priors ? ith.priors_[i] : 0.5F;
    const float w_neg = 1.0F - w_pos;

    // Compact support of the negative population (histogram semantics):
    // outside it the negative likelihood is exactly zero and the
    // posterior saturates at 1, which is what lets ρ = 1.0 fire.
    const auto [neg_min_it, neg_max_it] =
        std::minmax_element(neg.begin(), neg.end());
    const float margin = config.support_sigmas * neg_kde.bandwidth();
    const float neg_lo = *neg_min_it - margin;
    const float neg_hi = *neg_max_it + margin;

    // Eq. 8: θ_i = min{ z ∈ observed logits of index i : posterior >= ρ }.
    // The candidate set is every observed z_i (HG_i and HG_ī): at ρ = 1
    // only the zero-negative-density zone qualifies; as ρ drops the
    // threshold descends into the class-overlap region, trading accuracy
    // for earlier exits (Fig. 3's x-axis).
    auto posterior_at = [&](float z) {
      const float p_pos = w_pos * pos_kde(z);
      const float p_neg =
          (z < neg_lo || z > neg_hi) ? 0.0F : w_neg * neg_kde(z);
      const float denom = p_pos + p_neg;
      return denom > 0.0F ? p_pos / denom : -1.0F;
    };
    float theta = kNoThreshold;
    for (const std::vector<float>* samples : {&pos, &neg}) {
      for (const float z : *samples) {
        if (z < theta && posterior_at(z) >= config.rho) {
          theta = z;
        }
      }
    }
    ith.thresholds_[i] = theta;
  }

  // Step 3: probe order by descending silhouette coefficient of HG_i
  // against HG_ī.
  for (std::size_t i = 0; i < classes; ++i) {
    ith.silhouettes_[i] =
        numeric::average_silhouette(ith.positive_[i], ith.negative_[i]);
  }
  ith.order_.resize(classes);
  std::iota(ith.order_.begin(), ith.order_.end(), std::size_t{0});
  std::stable_sort(ith.order_.begin(), ith.order_.end(),
                   [&](std::size_t a, std::size_t b) {
                     return ith.silhouettes_[a] > ith.silhouettes_[b];
                   });
  return ith;
}

std::size_t InferenceThresholding::active_classes() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(thresholds_.begin(), thresholds_.end(),
                    [](float t) { return t != kNoThreshold; }));
}

ThresholdedResult InferenceThresholding::predict_from_features(
    const model::MemN2N& model, std::span<const float> features,
    bool use_index_ordering) const {
  const numeric::Matrix& w_o = model.params().w_o;
  const std::size_t classes = w_o.rows();
  ThresholdedResult result;

  // Step 4: probe classes; each probe is one dot product + one compare,
  // mirroring the OUTPUT module's sequential datapath.
  std::vector<float> logits(classes, 0.0F);
  for (std::size_t rank = 0; rank < classes; ++rank) {
    const std::size_t cls = use_index_ordering ? order_[rank] : rank;
    logits[cls] = numeric::dot(w_o.row(cls), features);
    ++result.comparisons;
    if (logits[cls] > thresholds_[cls]) {
      result.prediction = cls;
      result.early_exit = true;
      return result;
    }
  }
  // Fallback: full argmax (every logit has been computed by now).
  result.prediction = numeric::argmax(logits);
  return result;
}

ThresholdedResult InferenceThresholding::predict(
    const model::MemN2N& model, const data::EncodedStory& story,
    bool use_index_ordering) const {
  const std::vector<float> features = model.forward_features(story);
  return predict_from_features(model, features, use_index_ordering);
}

}  // namespace mann::core
