#include "core/mips_baselines.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "numeric/vector_ops.hpp"

namespace mann::core {

// ---------------------------------------------------------------- Exact --

ExactMips::ExactMips(const numeric::Matrix& weights) : weights_(weights) {
  if (weights_.rows() == 0) {
    throw std::invalid_argument("ExactMips: empty weight matrix");
  }
}

MipsResult ExactMips::query(std::span<const float> h) const {
  MipsResult r;
  float best = -std::numeric_limits<float>::infinity();
  for (std::size_t i = 0; i < weights_.rows(); ++i) {
    const float z = numeric::dot(weights_.row(i), h);
    ++r.dot_products;
    if (z > best) {
      best = z;
      r.index = i;
    }
  }
  return r;
}

// ----------------------------------------------------------------- ALSH --

AlshMips::AlshMips(const numeric::Matrix& weights, const Config& config)
    : weights_(weights), config_(config) {
  if (weights_.rows() == 0) {
    throw std::invalid_argument("AlshMips: empty weight matrix");
  }
  if (config_.bits == 0 || config_.bits > 24 || config_.tables == 0) {
    throw std::invalid_argument("AlshMips: bad table geometry");
  }
  augmented_dim_ = weights_.cols() + config_.norm_powers;

  numeric::Rng rng(config_.seed);
  projections_.resize(config_.tables * config_.bits * augmented_dim_);
  for (float& v : projections_) {
    v = rng.normal();
  }

  // Scale every row into a ball of radius scale_u (shared scale so inner
  // products keep their order), then augment and hash into each table.
  float max_norm = 0.0F;
  for (std::size_t i = 0; i < weights_.rows(); ++i) {
    max_norm = std::max(max_norm, numeric::norm2(weights_.row(i)));
  }
  const float norm_scale =
      max_norm > 0.0F ? config_.scale_u / max_norm : 1.0F;

  buckets_.assign(config_.tables, {});
  for (auto& table : buckets_) {
    table.assign(std::size_t{1} << config_.bits, {});
  }
  for (std::size_t i = 0; i < weights_.rows(); ++i) {
    const auto augmented = augment_row(weights_.row(i), norm_scale);
    for (std::size_t t = 0; t < config_.tables; ++t) {
      buckets_[t][hash_augmented(augmented, t)].push_back(
          static_cast<std::uint32_t>(i));
    }
  }
}

std::vector<float> AlshMips::augment_row(std::span<const float> row,
                                         float norm_scale) const {
  std::vector<float> augmented(augmented_dim_, 0.0F);
  for (std::size_t d = 0; d < row.size(); ++d) {
    augmented[d] = row[d] * norm_scale;
  }
  // Append ||x||^2, ||x||^4, ||x||^8, ...
  const float n = numeric::norm2(
      std::span<const float>(augmented.data(), row.size()));
  float power = n * n;
  for (std::size_t m = 0; m < config_.norm_powers; ++m) {
    augmented[row.size() + m] = power;
    power *= power;
  }
  return augmented;
}

std::vector<float> AlshMips::augment_query(std::span<const float> h) const {
  std::vector<float> augmented(augmented_dim_, 0.5F);
  const float n = numeric::norm2(h);
  const float inv = n > 0.0F ? 1.0F / n : 0.0F;
  for (std::size_t d = 0; d < h.size(); ++d) {
    augmented[d] = h[d] * inv;
  }
  return augmented;
}

std::uint32_t AlshMips::hash_augmented(std::span<const float> augmented,
                                       std::size_t table) const {
  std::uint32_t code = 0;
  const std::size_t base = table * config_.bits * augmented_dim_;
  for (std::size_t b = 0; b < config_.bits; ++b) {
    const std::span<const float> a(
        projections_.data() + base + b * augmented_dim_, augmented_dim_);
    const float s = numeric::dot(a, augmented);
    code = (code << 1U) | (s >= 0.0F ? 1U : 0U);
  }
  return code;
}

MipsResult AlshMips::query(std::span<const float> h) const {
  MipsResult r;
  const auto augmented = augment_query(h);
  // Hashing cost: K x L projection dots over the augmented dimension.
  r.overhead_ops = config_.tables * config_.bits;

  std::unordered_set<std::uint32_t> candidates;
  for (std::size_t t = 0; t < config_.tables; ++t) {
    const std::uint32_t code = hash_augmented(augmented, t);
    for (const std::uint32_t row : buckets_[t][code]) {
      candidates.insert(row);
    }
  }

  float best = -std::numeric_limits<float>::infinity();
  if (candidates.empty()) {
    // Degenerate query: fall back to exact scan so a result exists.
    for (std::size_t i = 0; i < weights_.rows(); ++i) {
      const float z = numeric::dot(weights_.row(i), h);
      ++r.dot_products;
      if (z > best) {
        best = z;
        r.index = i;
      }
    }
    return r;
  }
  for (const std::uint32_t i : candidates) {
    const float z = numeric::dot(weights_.row(i), h);
    ++r.dot_products;
    if (z > best) {
      best = z;
      r.index = i;
    }
  }
  return r;
}

// ------------------------------------------------------------- Clustering --

ClusterMips::ClusterMips(const numeric::Matrix& weights,
                         const Config& config)
    : weights_(weights), config_(config) {
  if (weights_.rows() == 0) {
    throw std::invalid_argument("ClusterMips: empty weight matrix");
  }
  if (config_.clusters == 0 || config_.probe_clusters == 0) {
    throw std::invalid_argument("ClusterMips: bad cluster counts");
  }
  config_.clusters = std::min(config_.clusters, weights_.rows());
  config_.probe_clusters =
      std::min(config_.probe_clusters, config_.clusters);

  const std::size_t k = config_.clusters;
  const std::size_t dim = weights_.cols();

  // Seed centroids from distinct random rows.
  numeric::Rng rng(config_.seed);
  const auto seeds = rng.sample_without_replacement(weights_.rows(), k);
  centroids_.resize_zeroed(k, dim);
  for (std::size_t c = 0; c < k; ++c) {
    const auto row = weights_.row(seeds[c]);
    std::copy(row.begin(), row.end(), centroids_.row(c).begin());
  }

  auto normalize_rows = [&](numeric::Matrix& m) {
    for (std::size_t c = 0; c < m.rows(); ++c) {
      const float n = numeric::norm2(m.row(c));
      if (n > 0.0F) {
        for (float& v : m.row(c)) {
          v /= n;
        }
      }
    }
  };
  normalize_rows(centroids_);

  assignment_.assign(weights_.rows(), 0);
  for (std::size_t iter = 0; iter < config_.iterations; ++iter) {
    bool moved = false;
    // Assignment by cosine (rows scored against unit centroids).
    for (std::size_t i = 0; i < weights_.rows(); ++i) {
      std::size_t best_c = 0;
      float best_s = -std::numeric_limits<float>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        const float s = numeric::dot(centroids_.row(c), weights_.row(i));
        if (s > best_s) {
          best_s = s;
          best_c = c;
        }
      }
      if (assignment_[i] != best_c) {
        assignment_[i] = static_cast<std::uint32_t>(best_c);
        moved = true;
      }
    }
    if (!moved && iter > 0) {
      break;
    }
    // Update: mean of members, re-normalized (spherical k-means).
    centroids_.fill(0.0F);
    for (std::size_t i = 0; i < weights_.rows(); ++i) {
      numeric::axpy(1.0F, weights_.row(i),
                    centroids_.row(assignment_[i]));
    }
    normalize_rows(centroids_);
  }

  members_.assign(k, {});
  for (std::size_t i = 0; i < weights_.rows(); ++i) {
    members_[assignment_[i]].push_back(static_cast<std::uint32_t>(i));
  }
}

MipsResult ClusterMips::query(std::span<const float> h) const {
  MipsResult r;
  const std::size_t k = config_.clusters;
  // Score centroids (overhead dots), pick the best probe_clusters.
  std::vector<std::pair<float, std::size_t>> scored(k);
  for (std::size_t c = 0; c < k; ++c) {
    scored[c] = {numeric::dot(centroids_.row(c), h), c};
  }
  r.overhead_ops = k;
  std::partial_sort(scored.begin(),
                    scored.begin() +
                        static_cast<std::ptrdiff_t>(config_.probe_clusters),
                    scored.end(),
                    [](const auto& a, const auto& b) {
                      return a.first > b.first;
                    });

  float best = -std::numeric_limits<float>::infinity();
  bool any = false;
  for (std::size_t p = 0; p < config_.probe_clusters; ++p) {
    for (const std::uint32_t i : members_[scored[p].second]) {
      const float z = numeric::dot(weights_.row(i), h);
      ++r.dot_products;
      if (z > best) {
        best = z;
        r.index = i;
        any = true;
      }
    }
  }
  if (!any) {
    // All probed clusters empty (possible after collapse): exact scan.
    for (std::size_t i = 0; i < weights_.rows(); ++i) {
      const float z = numeric::dot(weights_.row(i), h);
      ++r.dot_products;
      if (z > best) {
        best = z;
        r.index = i;
      }
    }
  }
  return r;
}

}  // namespace mann::core
