#include "serve/admission.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace mann::serve {

AdmissionController::AdmissionController(AdmissionConfig config,
                                         std::vector<TenantConfig> tenants,
                                         obs::MetricsRegistry* metrics)
    : config_(config), tenants_(std::move(tenants)) {
  num_tenants_ = tenants_.empty() ? 1 : tenants_.size();
  obs_admitted_ = obs::counter(metrics, "serve.admission.admitted");
  if (metrics != nullptr) {
    for (std::size_t r = 0; r < kShedReasonCount; ++r) {
      obs_sheds_[r] = &metrics->counter(
          std::string("serve.admission.shed.") +
          shed_reason_name(static_cast<ShedReason>(r)));
    }
  }
  for (const TenantConfig& tenant : tenants_) {
    if (tenant.quota_interarrival_cycles < 0.0) {
      throw std::invalid_argument(
          "AdmissionController: quota_interarrival_cycles must be >= 0");
    }
    if (tenant.quota_interarrival_cycles > 0.0 && tenant.quota_burst < 1.0) {
      throw std::invalid_argument(
          "AdmissionController: a quota needs quota_burst >= 1");
    }
    max_tier_ = std::max(max_tier_, tenant.tier);
  }
  if (config_.overload_watermark <= 0.0 || config_.overload_watermark > 1.0) {
    throw std::invalid_argument(
        "AdmissionController: overload_watermark must sit in (0, 1]");
  }
  // Buckets start full: a tenant may spend its whole burst at cycle 0.
  buckets_.resize(num_tenants_);
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    buckets_[i].tokens = tenants_[i].quota_burst;
  }
  tenant_sheds_.resize(num_tenants_);
  tenant_admitted_.resize(num_tenants_, 0);
}

const TenantConfig& AdmissionController::tenant_config(
    TenantId tenant) const {
  if (tenant >= num_tenants_) {
    throw std::out_of_range("AdmissionController: tenant " +
                            std::to_string(tenant) + " outside the " +
                            std::to_string(num_tenants_) +
                            "-entry registry");
  }
  return tenants_.empty() ? default_tenant_ : tenants_[tenant];
}

std::optional<ShedReason> AdmissionController::decide(
    const InferenceRequest& request, sim::Cycle now,
    const AdmissionOutlook& outlook) {
  const TenantConfig& tenant = tenant_config(request.tenant);

  // Tiered overload shedding: the lowest-priority tier (highest tier
  // number) sheds at the watermark; each more important tier holds on
  // until occupancy climbs another even step toward 1.0 — so degradation
  // under overload is graceful and strictly priority-ordered.
  if (config_.overload_pending_requests > 0) {
    const double occupancy =
        static_cast<double>(outlook.pending_requests) /
        static_cast<double>(config_.overload_pending_requests);
    const double threshold =
        config_.overload_watermark +
        (1.0 - config_.overload_watermark) *
            (static_cast<double>(max_tier_ - tenant.tier) /
             static_cast<double>(max_tier_ + 1));
    if (occupancy >= threshold) {
      return ShedReason::kOverload;
    }
  }

  // Doom shedding: if even the cost model's estimate — observed service
  // cycles plus the (weighted) per-device backlog — lands past the
  // deadline, the request can only complete late; shed it now instead of
  // spending device time on it. Computed in doubles so a pathological
  // backlog cannot overflow the cycle arithmetic.
  if (config_.shed_doomed && request.deadline_cycle != sim::kNever &&
      outlook.service_estimate > 0) {
    const double eta =
        static_cast<double>(now) +
        static_cast<double>(outlook.service_estimate) +
        config_.doom_backlog_factor *
            static_cast<double>(outlook.backlog_cycles_per_device);
    if (eta > static_cast<double>(request.deadline_cycle)) {
      return ShedReason::kDoomed;
    }
  }

  // Token-bucket quota, checked last so a shed for overload/doom never
  // burns a token. Admission spends the token even if the batcher later
  // rejects on a full lane — a full queue is itself overload, and the
  // attempt counted against the tenant's rate contract.
  if (config_.enforce_quotas && tenant.quota_interarrival_cycles > 0.0) {
    Bucket& bucket = buckets_[request.tenant];
    const sim::Cycle elapsed = now - bucket.last_refill;
    bucket.last_refill = now;
    bucket.tokens = std::min(
        tenant.quota_burst,
        bucket.tokens + static_cast<double>(elapsed) /
                            tenant.quota_interarrival_cycles);
    if (bucket.tokens < 1.0) {
      return ShedReason::kQuota;
    }
    bucket.tokens -= 1.0;
  }

  return std::nullopt;
}

void AdmissionController::set_tenant(TenantId tenant,
                                     const TenantConfig& config) {
  if (tenant >= tenants_.size()) {
    throw std::out_of_range(
        "AdmissionController: set_tenant(" + std::to_string(tenant) +
        ") outside the " + std::to_string(tenants_.size()) +
        "-entry registry (the registry size is fixed at construction)");
  }
  if (config.quota_interarrival_cycles < 0.0) {
    throw std::invalid_argument(
        "AdmissionController: quota_interarrival_cycles must be >= 0");
  }
  if (config.quota_interarrival_cycles > 0.0 && config.quota_burst < 1.0) {
    throw std::invalid_argument(
        "AdmissionController: a quota needs quota_burst >= 1");
  }
  tenants_[tenant] = config;
  // Tiers may have moved in either direction; recompute the ceiling the
  // tiered-overload thresholds are spaced against.
  max_tier_ = 0;
  for (const TenantConfig& t : tenants_) {
    max_tier_ = std::max(max_tier_, t.tier);
  }
  // Keep the bucket's refill clock but bound the balance by the new
  // burst: a tightened quota must not be pre-funded by the old one.
  Bucket& bucket = buckets_[tenant];
  bucket.tokens = std::min(bucket.tokens, config.quota_burst);
}

void AdmissionController::record_shed(TenantId tenant, ShedReason reason) {
  (void)tenant_config(tenant);  // bounds check
  sheds_.bump(reason);
  tenant_sheds_[tenant].bump(reason);
  obs::add(obs_sheds_[static_cast<std::size_t>(reason)]);
}

void AdmissionController::record_admitted(TenantId tenant) {
  (void)tenant_config(tenant);  // bounds check
  ++tenant_admitted_[tenant];
  obs::add(obs_admitted_);
}

}  // namespace mann::serve
