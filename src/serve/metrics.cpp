#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace mann::serve {

namespace {

LatencySummary summarize(const numeric::Histogram& hist, double clock_hz) {
  LatencySummary s;
  const std::span<const float> samples = hist.samples();
  if (samples.empty()) {
    return s;
  }
  // One sorted copy serves every quantile (nearest-rank) and the max.
  std::vector<float> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const auto percentile = [&sorted](double q) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    return static_cast<double>(
        sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)]);
  };
  s.mean_cycles = hist.mean();
  s.p50_cycles = percentile(0.50);
  s.p95_cycles = percentile(0.95);
  s.p99_cycles = percentile(0.99);
  s.max_cycles = sorted.back();
  s.mean_seconds = s.mean_cycles / clock_hz;
  s.p50_seconds = s.p50_cycles / clock_hz;
  s.p95_seconds = s.p95_cycles / clock_hz;
  s.p99_seconds = s.p99_cycles / clock_hz;
  s.max_seconds = s.max_cycles / clock_hz;
  return s;
}

/// Jain's fairness index over the tenants' weight-normalized completed
/// throughput: (Σx)² / (n·Σx²), 1.0 when service is exactly
/// proportional to weight, approaching 1/n as one tenant monopolizes.
double jain_fairness(const std::vector<TenantReport>& tenants) {
  double sum = 0.0;
  double sum_sq = 0.0;
  std::size_t n = 0;
  for (const TenantReport& tenant : tenants) {
    if (tenant.weight <= 0.0) {
      continue;
    }
    const double x =
        static_cast<double>(tenant.completed) / tenant.weight;
    sum += x;
    sum_sq += x * x;
    ++n;
  }
  if (n < 2 || sum_sq <= 0.0) {
    return 1.0;
  }
  return (sum * sum) / (static_cast<double>(n) * sum_sq);
}

}  // namespace

ServingMetrics::ServingMetrics(double clock_hz, std::size_t histogram_bins,
                               double histogram_hi_cycles,
                               power::FpgaPowerConfig power_config)
    : clock_hz_(clock_hz), power_config_(power_config),
      latency_(0.0F, static_cast<float>(histogram_hi_cycles), histogram_bins),
      queue_wait_(0.0F, static_cast<float>(histogram_hi_cycles),
                  histogram_bins) {
  if (clock_hz <= 0.0) {
    throw std::invalid_argument("ServingMetrics: clock must be positive");
  }
}

void ServingMetrics::record(const InferenceResponse& response) {
  ++completed_;
  correct_ += response.prediction == response.answer ? 1 : 0;
  early_exits_ += response.early_exit ? 1 : 0;
  batch_size_sum_ += response.batch_size;
  latency_.add(static_cast<float>(response.latency_cycles()));
  queue_wait_.add(static_cast<float>(response.queue_cycles()));

  if (response.task >= per_task_.size()) {
    per_task_.resize(response.task + 1);
  }
  if (response.tenant >= per_tenant_.size()) {
    per_tenant_.resize(response.tenant + 1);
  }
  TaskCounters& task = per_task_[response.task];
  TenantCounters& tenant = per_tenant_[response.tenant];
  task.seen = true;
  ++task.completed;
  ++tenant.completed;
  if (response.has_deadline()) {
    ++deadline_total_;
    ++task.with_deadline;
    ++tenant.with_deadline;
    if (!response.deadline_met()) {
      ++deadline_missed_;
      ++task.violations;
      ++tenant.violations;
    }
  }
}

ServingReport ServingMetrics::finalize(RunTotals totals) const {
  ServingReport report;
  report.offered = totals.offered;
  report.completed = completed_;
  report.shed = totals.sheds;
  report.rejected = static_cast<std::size_t>(totals.sheds.total());
  report.makespan_cycles = totals.makespan;
  report.seconds = static_cast<double>(totals.makespan) / clock_hz_;
  if (report.seconds > 0.0) {
    report.throughput_stories_per_second =
        static_cast<double>(completed_) / report.seconds;
    report.offered_stories_per_second =
        static_cast<double>(totals.offered) / report.seconds;
  }
  if (completed_ > 0) {
    report.accuracy =
        static_cast<double>(correct_) / static_cast<double>(completed_);
    report.early_exit_rate =
        static_cast<double>(early_exits_) / static_cast<double>(completed_);
    report.mean_batch_size = static_cast<double>(batch_size_sum_) /
                             static_cast<double>(completed_);
  }
  if (totals.max_batch > 0) {
    report.batching_efficiency =
        report.mean_batch_size / static_cast<double>(totals.max_batch);
  }
  report.latency = summarize(latency_, clock_hz_);
  report.queue_wait = summarize(queue_wait_, clock_hz_);

  report.deadline_total = deadline_total_;
  report.deadline_missed = deadline_missed_;
  report.deadline_hit_rate =
      deadline_total_ == 0
          ? 1.0
          : 1.0 - static_cast<double>(deadline_missed_) /
                      static_cast<double>(deadline_total_);
  for (std::size_t t = 0; t < per_task_.size(); ++t) {
    if (!per_task_[t].seen) {
      continue;
    }
    TaskSloReport slo;
    slo.task = t;
    slo.completed = per_task_[t].completed;
    slo.with_deadline = per_task_[t].with_deadline;
    slo.violations = per_task_[t].violations;
    report.task_slo.push_back(slo);
  }

  // Per-tenant outcomes: one report per registry entry (or per tenant
  // observed anywhere — completions, sheds, admissions — when the
  // registry is empty or short).
  const std::size_t num_tenants = std::max(
      {totals.tenants.size(), per_tenant_.size(), totals.tenant_sheds.size(),
       totals.tenant_admitted.size(), std::size_t{1}});
  for (std::size_t t = 0; t < num_tenants; ++t) {
    TenantReport tenant;
    tenant.tenant = static_cast<TenantId>(t);
    if (t < totals.tenants.size()) {
      tenant.tier = totals.tenants[t].tier;
      tenant.weight = totals.tenants[t].weight;
    }
    if (t < per_tenant_.size()) {
      tenant.completed = per_tenant_[t].completed;
      tenant.with_deadline = per_tenant_[t].with_deadline;
      tenant.violations = per_tenant_[t].violations;
    }
    if (t < totals.tenant_sheds.size()) {
      tenant.shed = totals.tenant_sheds[t];
    }
    if (t < totals.tenant_admitted.size()) {
      tenant.admitted = totals.tenant_admitted[t];
    }
    report.tenants.push_back(tenant);
  }
  report.fairness_index = jain_fairness(report.tenants);

  report.batching = totals.batching;
  report.queue_stats = totals.queue_stats;
  report.devices = std::move(totals.devices);
  report.model_uploads = totals.model_uploads;
  report.model_evictions = totals.model_evictions;
  report.stolen_batches = totals.stolen_batches;
  report.host_wall_seconds = totals.host_wall_seconds;
  if (totals.host_wall_seconds > 0.0) {
    report.host_stories_per_second =
        static_cast<double>(completed_) / totals.host_wall_seconds;
  }
  report.workers = totals.workers;
  report.cycle_cache_enabled = totals.cycle_cache_enabled;
  report.cycle_cache = totals.cycle_cache;
  report.speculation = totals.speculation;
  if (totals.makespan > 0 && !report.devices.empty()) {
    double utilization = 0.0;
    for (const DeviceReport& d : report.devices) {
      utilization += static_cast<double>(d.busy_cycles) /
                     static_cast<double>(totals.makespan);
    }
    report.mean_device_utilization =
        utilization / static_cast<double>(report.devices.size());
  }

  // Serving energy: per-op dynamic energy over every dispatched run, the
  // host link while it moved words, and the static + clock-tree draw of
  // every pool device across the whole makespan (idle devices still
  // burn it — that is exactly why utilization matters for efficiency).
  const power::FpgaPowerModel power_model(power_config_);
  ServingEnergy& energy = report.energy;
  energy.dynamic_joules = power_model.op_energy(totals.device_ops);
  energy.link_joules = static_cast<double>(totals.link_active_cycles) /
                       clock_hz_ * power_config_.link_active_watts;
  const double device_watts =
      power_config_.static_watts + power_config_.clock_watts_per_hz * clock_hz_;
  energy.static_joules = device_watts * report.seconds *
                         static_cast<double>(report.devices.size());
  energy.total_joules =
      energy.dynamic_joules + energy.link_joules + energy.static_joules;
  if (report.seconds > 0.0) {
    energy.mean_watts = energy.total_joules / report.seconds;
  }
  if (completed_ > 0) {
    energy.per_inference_joules =
        energy.total_joules / static_cast<double>(completed_);
  }
  return report;
}

bool simulated_reports_identical(const ServingReport& a,
                                 const ServingReport& b) {
  return a.completed == b.completed && a.rejected == b.rejected &&
         a.makespan_cycles == b.makespan_cycles && a.accuracy == b.accuracy &&
         a.latency.p50_cycles == b.latency.p50_cycles &&
         a.latency.p95_cycles == b.latency.p95_cycles &&
         a.latency.p99_cycles == b.latency.p99_cycles &&
         a.latency.max_cycles == b.latency.max_cycles &&
         a.model_uploads == b.model_uploads &&
         a.model_evictions == b.model_evictions &&
         a.stolen_batches == b.stolen_batches &&
         a.deadline_missed == b.deadline_missed &&
         a.energy.per_inference_joules == b.energy.per_inference_joules &&
         a.batching.batches_out == b.batching.batches_out &&
         a.tenants == b.tenants;
}

}  // namespace mann::serve
