// Serving metrics: latency distribution, throughput, utilization and
// batching efficiency, accumulated per response and folded into one
// ServingReport at the end of a run.
//
// Latencies are accumulated in a numeric::Histogram (which retains raw
// samples), so the report carries both exact percentiles and a binned
// distribution without a second pass over the responses.
#pragma once

#include <cstdint>
#include <vector>

#include "accel/service_cycle_cache.hpp"
#include "numeric/histogram.hpp"
#include "serve/batcher.hpp"
#include "serve/request.hpp"
#include "serve/scheduler.hpp"
#include "sim/fifo.hpp"
#include "sim/types.hpp"

namespace mann::serve {

/// Percentile summary of one latency population, in cycles and seconds.
struct LatencySummary {
  double mean_cycles = 0.0;
  double p50_cycles = 0.0;
  double p95_cycles = 0.0;
  double p99_cycles = 0.0;
  double max_cycles = 0.0;
  double mean_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
  double max_seconds = 0.0;
};

/// Everything a serving experiment reports.
struct ServingReport {
  std::size_t offered = 0;    ///< requests emitted by the generator
  std::size_t completed = 0;  ///< responses observed at the host
  std::size_t rejected = 0;   ///< shed at the batcher (overload)
  sim::Cycle makespan_cycles = 0;
  double seconds = 0.0;  ///< makespan at the configured clock
  double throughput_stories_per_second = 0.0;
  double offered_stories_per_second = 0.0;
  double accuracy = 0.0;
  double early_exit_rate = 0.0;

  LatencySummary latency;     ///< enqueue -> answer visible
  LatencySummary queue_wait;  ///< enqueue -> batch dispatched

  double mean_batch_size = 0.0;
  double batching_efficiency = 0.0;  ///< mean batch / max_batch
  double mean_device_utilization = 0.0;
  std::uint64_t model_uploads = 0;

  // Host-execution view: everything above is on the simulated device
  // clock; these report how fast the host actually ground through it.
  double host_wall_seconds = 0.0;     ///< wall time of the serving loop
  double host_stories_per_second = 0.0;
  std::size_t workers = 0;            ///< host worker threads (0 = serial)
  bool cycle_cache_enabled = false;
  accel::ServiceCycleCacheStats cycle_cache;  ///< zeros when disabled

  BatcherCounters batching;
  std::vector<DeviceReport> devices;
  /// One FifoStats over every queue in the stack: per-task batch queues,
  /// the scheduler's pending queue, and the devices' host FIFOs.
  sim::FifoStats queue_stats;
};

/// Everything finalize() folds in beside the per-response observations —
/// the end-of-run counters of the other serving components.
struct RunTotals {
  std::size_t offered = 0;
  std::size_t rejected = 0;
  sim::Cycle makespan = 0;
  std::size_t max_batch = 0;
  BatcherCounters batching;
  sim::FifoStats queue_stats;
  std::vector<DeviceReport> devices;
  std::uint64_t model_uploads = 0;
  double host_wall_seconds = 0.0;
  std::size_t workers = 0;
  bool cycle_cache_enabled = false;
  accel::ServiceCycleCacheStats cycle_cache;
};

class ServingMetrics {
 public:
  /// `histogram_hi_cycles` bounds the binned latency view (samples beyond
  /// it clamp into the top bin; percentiles stay exact via raw samples).
  ServingMetrics(double clock_hz, std::size_t histogram_bins = 64,
                 double histogram_hi_cycles = 50.0e6);

  void record(const InferenceResponse& response);

  [[nodiscard]] std::size_t completed() const noexcept { return completed_; }

  /// Binned end-to-end latency distribution (cycles).
  [[nodiscard]] const numeric::Histogram& latency_histogram() const noexcept {
    return latency_;
  }

  /// Folds accumulated observations plus the component counters into the
  /// final report. `totals.makespan` is the serving clock at the last
  /// completion.
  [[nodiscard]] ServingReport finalize(RunTotals totals) const;

 private:
  double clock_hz_;
  std::size_t completed_ = 0;
  std::size_t correct_ = 0;
  std::size_t early_exits_ = 0;
  std::uint64_t batch_size_sum_ = 0;
  numeric::Histogram latency_;
  numeric::Histogram queue_wait_;
};

}  // namespace mann::serve
