// Serving metrics: latency distribution, throughput, utilization,
// batching efficiency, SLO attainment, per-tenant QoS and serving
// energy, accumulated per response and folded into one ServingReport at
// the end of a run.
//
// Latencies are accumulated in a numeric::Histogram (which retains raw
// samples), so the report carries both exact percentiles and a binned
// distribution without a second pass over the responses.
//
// Rejection accounting is unified: every shed request — the batcher's
// full-queue rejects and the admission controller's quota/doom/overload
// decisions alike — arrives here as ShedReason-tagged ShedCounters
// (globally and per tenant), and `ServingReport::rejected` is their
// total, so there is exactly one number for "requests the stack refused"
// no matter which stage refused them.
//
// Energy: the accelerator's activity-based power model (src/power) folds
// the pool's aggregate op counts, the host-link activity and the
// static + clock-tree draw of every device over the makespan into
// joules — and joules-per-inference, the serving-level form of the
// paper's energy-efficiency claim. All inputs are simulated quantities,
// so the energy numbers are deterministic given the seed and CI can gate
// regressions on them.
#pragma once

#include <cstdint>
#include <vector>

#include "accel/service_cycle_cache.hpp"
#include "numeric/histogram.hpp"
#include "power/power_model.hpp"
#include "serve/batcher.hpp"
#include "serve/request.hpp"
#include "serve/scheduler.hpp"
#include "serve/tenant.hpp"
#include "sim/fifo.hpp"
#include "sim/types.hpp"

namespace mann::serve {

/// Percentile summary of one latency population, in cycles and seconds.
struct LatencySummary {
  double mean_cycles = 0.0;
  double p50_cycles = 0.0;
  double p95_cycles = 0.0;
  double p99_cycles = 0.0;
  double max_cycles = 0.0;
  double mean_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
  double max_seconds = 0.0;
};

/// SLO attainment of one served task.
struct TaskSloReport {
  std::size_t task = 0;
  std::uint64_t completed = 0;
  std::uint64_t with_deadline = 0;
  std::uint64_t violations = 0;  ///< completed after their deadline

  [[nodiscard]] double hit_rate() const noexcept {
    return with_deadline == 0
               ? 1.0
               : 1.0 - static_cast<double>(violations) /
                           static_cast<double>(with_deadline);
  }
};

/// One tenant's end-to-end QoS outcome: what it asked for, what was
/// admitted, what completed, how its SLOs fared, and what was shed (by
/// reason). tier/weight echo the registry so reports are self-contained.
struct TenantReport {
  TenantId tenant = 0;
  std::uint32_t tier = 0;
  double weight = 1.0;
  std::uint64_t admitted = 0;   ///< requests that entered the batcher
  std::uint64_t completed = 0;  ///< responses observed at the host
  std::uint64_t with_deadline = 0;
  std::uint64_t violations = 0;
  ShedCounters shed;

  [[nodiscard]] std::uint64_t offered() const noexcept {
    return admitted + shed.total();
  }
  [[nodiscard]] double hit_rate() const noexcept {
    return with_deadline == 0
               ? 1.0
               : 1.0 - static_cast<double>(violations) /
                           static_cast<double>(with_deadline);
  }
  [[nodiscard]] bool operator==(const TenantReport&) const noexcept = default;
};

/// Serving-level energy estimate (see the header comment).
struct ServingEnergy {
  double dynamic_joules = 0.0;  ///< datapath ops across every dispatch
  double static_joules = 0.0;   ///< static + clock tree, all devices
  double link_joules = 0.0;     ///< host-link PHY while active
  double total_joules = 0.0;
  double mean_watts = 0.0;              ///< total over the makespan
  double per_inference_joules = 0.0;    ///< total / completed
};

/// Everything a serving experiment reports.
struct ServingReport {
  std::size_t offered = 0;    ///< requests emitted by the generator
  std::size_t completed = 0;  ///< responses observed at the host
  /// Requests the stack refused, over every ShedReason (queue-full,
  /// quota, doomed, overload) — always equal to shed.total().
  std::size_t rejected = 0;
  sim::Cycle makespan_cycles = 0;
  double seconds = 0.0;  ///< makespan at the configured clock
  double throughput_stories_per_second = 0.0;
  double offered_stories_per_second = 0.0;
  double accuracy = 0.0;
  double early_exit_rate = 0.0;

  LatencySummary latency;     ///< enqueue -> answer visible
  LatencySummary queue_wait;  ///< enqueue -> batch dispatched

  /// SLO attainment: responses that carried a deadline and met it.
  /// hit rate is 1.0 when no response carried a deadline.
  std::uint64_t deadline_total = 0;
  std::uint64_t deadline_missed = 0;
  double deadline_hit_rate = 1.0;
  std::vector<TaskSloReport> task_slo;  ///< per served task, task-ordered

  /// Multi-tenant QoS: shed accounting by reason (the unified rejection
  /// path), per-tenant outcomes, and Jain's fairness index over the
  /// tenants' weight-normalized completed throughput (1.0 = perfectly
  /// proportional service; also 1.0 when fewer than two tenants).
  ShedCounters shed;
  std::vector<TenantReport> tenants;  ///< tenant-id-ordered
  double fairness_index = 1.0;

  double mean_batch_size = 0.0;
  double batching_efficiency = 0.0;  ///< mean batch / max_batch
  double mean_device_utilization = 0.0;
  std::uint64_t model_uploads = 0;
  std::uint64_t model_evictions = 0;  ///< uploads that displaced a model
  std::uint64_t stolen_batches = 0;   ///< cross-shard work-stealing wins

  ServingEnergy energy;

  // Host-execution view: everything above is on the simulated device
  // clock; these report how fast the host actually ground through it.
  double host_wall_seconds = 0.0;     ///< wall time of the serving loop
  double host_stories_per_second = 0.0;
  std::size_t workers = 0;            ///< host worker threads (0 = serial)
  bool cycle_cache_enabled = false;
  accel::ServiceCycleCacheStats cycle_cache;  ///< zeros when disabled
  /// Worker prefetch scoring: useful = predicted variant matched the
  /// dispatch, wasted = worker simulated a variant the dispatch could
  /// not use. Zeros when workers == 0; deterministic otherwise.
  SpeculationStats speculation;

  BatcherCounters batching;
  std::vector<DeviceReport> devices;
  /// One FifoStats over every queue in the stack: per-task batch queues,
  /// the scheduler's pending queue, and the devices' host FIFOs.
  sim::FifoStats queue_stats;
};

/// Everything finalize() folds in beside the per-response observations —
/// the end-of-run counters of the other serving components.
struct RunTotals {
  std::size_t offered = 0;
  sim::Cycle makespan = 0;
  std::size_t max_batch = 0;
  BatcherCounters batching;
  /// Unified shed accounting from the admission controller (which also
  /// records the batcher's full-queue rejects). `rejected` derives from
  /// these.
  ShedCounters sheds;
  std::vector<ShedCounters> tenant_sheds;      ///< indexed by tenant id
  std::vector<std::uint64_t> tenant_admitted;  ///< indexed by tenant id
  /// Tenant registry (tier/weight echoed into the per-tenant reports and
  /// the fairness index); empty = single default tenant.
  std::vector<TenantConfig> tenants;
  sim::FifoStats queue_stats;
  std::vector<DeviceReport> devices;
  std::uint64_t model_uploads = 0;
  std::uint64_t model_evictions = 0;
  std::uint64_t stolen_batches = 0;
  /// Aggregate device activity for the energy model.
  sim::OpCounts device_ops;
  sim::Cycle link_active_cycles = 0;
  double host_wall_seconds = 0.0;
  std::size_t workers = 0;
  bool cycle_cache_enabled = false;
  accel::ServiceCycleCacheStats cycle_cache;
  SpeculationStats speculation;
};

/// True when two reports agree on every byte-stable (host-independent)
/// field — the determinism contract's observable surface. Host-execution
/// fields (wall seconds, cycle-cache stats, worker counts) are excluded
/// by design; tenant reports compare exactly via their defaulted
/// operator==. Used by the bench's worker-count invariance checks and by
/// mann::cluster's cluster-of-1 ≡ bare-Server identity gate.
[[nodiscard]] bool simulated_reports_identical(const ServingReport& a,
                                               const ServingReport& b);

class ServingMetrics {
 public:
  /// `histogram_hi_cycles` bounds the binned latency view (samples beyond
  /// it clamp into the top bin; percentiles stay exact via raw samples).
  /// `power_config` parameterizes the serving energy estimate.
  ServingMetrics(double clock_hz, std::size_t histogram_bins = 64,
                 double histogram_hi_cycles = 50.0e6,
                 power::FpgaPowerConfig power_config = {});

  void record(const InferenceResponse& response);

  [[nodiscard]] std::size_t completed() const noexcept { return completed_; }

  /// Binned end-to-end latency distribution (cycles).
  [[nodiscard]] const numeric::Histogram& latency_histogram() const noexcept {
    return latency_;
  }

  /// Folds accumulated observations plus the component counters into the
  /// final report. `totals.makespan` is the serving clock at the last
  /// completion.
  [[nodiscard]] ServingReport finalize(RunTotals totals) const;

 private:
  struct TaskCounters {
    std::uint64_t completed = 0;
    std::uint64_t with_deadline = 0;
    std::uint64_t violations = 0;
    bool seen = false;
  };
  struct TenantCounters {
    std::uint64_t completed = 0;
    std::uint64_t with_deadline = 0;
    std::uint64_t violations = 0;
  };

  double clock_hz_;
  power::FpgaPowerConfig power_config_;
  std::size_t completed_ = 0;
  std::size_t correct_ = 0;
  std::size_t early_exits_ = 0;
  std::uint64_t batch_size_sum_ = 0;
  std::uint64_t deadline_total_ = 0;
  std::uint64_t deadline_missed_ = 0;
  std::vector<TaskCounters> per_task_;      ///< grows to the max task seen
  std::vector<TenantCounters> per_tenant_;  ///< grows to the max tenant seen
  numeric::Histogram latency_;
  numeric::Histogram queue_wait_;
};

}  // namespace mann::serve
