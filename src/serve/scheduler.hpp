// Batch scheduler over a pool of accelerator devices.
//
// Each served task has one compiled Accelerator (config + device
// program); the pool is N device *slots*, each remembering which task's
// program its BRAM currently holds. Dispatching a batch to a slot whose
// resident program differs re-pays the model upload (a cold run);
// dispatching to a warm slot uses RunOptions::model_resident and skips
// it. Placement is per-task sharding over the first `dedicated_devices`
// slots (home = task % dedicated) with the remaining slots forming a
// shared overflow pool that absorbs bursts.
//
// Host-parallel execution: with `workers > 0` the scheduler also owns a
// WorkerPool and a ServiceCycleCache. Every submitted batch is
// speculatively simulated on a worker (with the warm/cold variant
// predicted from current slot residency) and published into the cache;
// by the time the simulated clock reaches the dispatch, the result is
// usually already memoized and the dispatch replays it for free. The
// dispatch path itself is unchanged — it runs the device through the
// same cache, so a speculation miss (or mispredicted variant) simply
// simulates inline. Dispatch decisions never depend on worker timing,
// which keeps the serving timeline bit-identical for any worker count,
// including zero (the sequential escape hatch).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "accel/accelerator.hpp"
#include "accel/service_cycle_cache.hpp"
#include "serve/batcher.hpp"
#include "serve/request.hpp"
#include "serve/worker_pool.hpp"
#include "sim/fifo.hpp"
#include "sim/types.hpp"

namespace mann::serve {

struct SchedulerConfig {
  std::size_t devices = 2;
  /// First `dedicated_devices` slots are sharded by task id; the rest
  /// are the shared overflow pool. 0 means the whole pool is shared.
  /// Clamped to `devices`.
  std::size_t dedicated_devices = 0;
  /// Pending-batch queue bound (submit() rejects beyond it).
  std::size_t queue_capacity = 1024;
  /// Host worker threads simulating device batches ahead of the serving
  /// clock. 0 = sequential host execution (the debugging escape hatch);
  /// the natural setting is one worker per device slot.
  std::size_t workers = 0;
  /// Entry bound of the internally owned service-cycle cache (ignored
  /// when `cycle_cache` is supplied).
  std::size_t cache_capacity = 1024;
  /// External service-cycle cache (non-owning) — lets callers share one
  /// cache across Server runs so a repeated workload replays instantly.
  /// When null and `workers > 0`, the scheduler owns a private cache
  /// (workers need one as the speculation rendezvous).
  accel::ServiceCycleCache* cycle_cache = nullptr;
};

/// Per-slot utilization report.
struct DeviceReport {
  std::size_t id = 0;
  std::optional<std::size_t> resident_task;  ///< program left in BRAM
  sim::Cycle busy_cycles = 0;
  std::uint64_t batches = 0;
  std::uint64_t stories = 0;
  std::uint64_t model_uploads = 0;  ///< cold dispatches (upload re-paid)
};

class Scheduler {
 public:
  /// `task_devices[t]` is the compiled accelerator for task t. All pool
  /// slots share these immutable program images; residency is per slot.
  Scheduler(SchedulerConfig config,
            std::vector<accel::Accelerator> task_devices);

  [[nodiscard]] const SchedulerConfig& config() const noexcept {
    return config_;
  }

  /// Queues a batch for dispatch; false when the pending queue is full.
  [[nodiscard]] bool submit(Batch batch);

  [[nodiscard]] bool has_capacity() const noexcept {
    return !pending_.full();
  }

  /// Assigns pending batches to free device slots at `now`. Head-of-line
  /// order: the front batch waits for a suitable slot before anything
  /// behind it dispatches (deterministic, starvation-free).
  void step(sim::Cycle now);

  /// Moves out every response whose completion time has been reached.
  [[nodiscard]] std::vector<InferenceResponse> collect(sim::Cycle now);

  [[nodiscard]] std::size_t pending_batches() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return in_flight_.size();
  }
  [[nodiscard]] bool idle() const noexcept {
    return pending_.empty() && in_flight_.empty();
  }

  /// Earliest in-flight completion; sim::kNever when nothing is running.
  [[nodiscard]] sim::Cycle next_completion() const noexcept;

  /// Earliest cycle after `now` at which a busy slot frees; sim::kNever
  /// when no slot is busy at `now`. With batches pending this bounds
  /// the next dispatch opportunity (event-skipping horizon).
  [[nodiscard]] sim::Cycle next_slot_free(sim::Cycle now) const noexcept;

  [[nodiscard]] std::vector<DeviceReport> device_reports() const;

  /// Pending-batch queue stats (same FifoStats code path as everything
  /// else in the system).
  [[nodiscard]] const sim::FifoStats& queue_stats() const noexcept {
    return pending_.stats();
  }

  /// Aggregate device-internal host FIFO stats over every run dispatched
  /// so far (summed accel::RunResult::queue_stats()).
  [[nodiscard]] const sim::FifoStats& device_queue_stats() const noexcept {
    return device_queue_stats_;
  }

  [[nodiscard]] std::uint64_t total_model_uploads() const noexcept;

  /// Blocks until outstanding speculative work has drained, so cache
  /// counters read afterwards are complete (and deterministic: the set
  /// of speculated jobs is a pure function of the serving timeline).
  void quiesce();

  /// Service-cycle cache counters (all zero when caching is off).
  [[nodiscard]] accel::ServiceCycleCacheStats cache_stats() const;
  [[nodiscard]] bool cache_enabled() const noexcept {
    return cache_ != nullptr;
  }
  /// Active host worker threads (0 = sequential execution).
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return pool_ ? pool_->size() : 0;
  }

 private:
  struct Slot {
    std::size_t id = 0;
    std::optional<std::size_t> resident_task;
    sim::Cycle busy_until = 0;
    sim::Cycle busy_cycles = 0;
    std::uint64_t batches = 0;
    std::uint64_t stories = 0;
    std::uint64_t model_uploads = 0;

    [[nodiscard]] bool free(sim::Cycle now) const noexcept {
      return busy_until <= now;
    }
  };

  [[nodiscard]] Slot* pick_slot(std::size_t task, sim::Cycle now);
  void dispatch(Slot& slot, const Batch& batch, sim::Cycle now);
  /// Prefetch: simulate `batch` on a worker with the residency-predicted
  /// warm/cold variant and publish the result into the cache.
  void speculate(const Batch& batch);
  [[nodiscard]] bool task_resident_anywhere(std::size_t task) const noexcept;

  SchedulerConfig config_;
  std::vector<accel::Accelerator> task_devices_;
  std::vector<Slot> slots_;
  sim::Fifo<Batch> pending_;
  std::vector<InferenceResponse> in_flight_;  ///< completion times known
  sim::FifoStats device_queue_stats_;
  std::unique_ptr<accel::ServiceCycleCache> owned_cache_;
  accel::ServiceCycleCache* cache_ = nullptr;  ///< owned or external
  /// Declared last: its destructor joins the workers while the devices
  /// and cache they reference are still alive.
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace mann::serve
