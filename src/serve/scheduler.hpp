// Batch scheduler over a pool of accelerator devices.
//
// Each served task has one compiled Accelerator (config + device
// program); the pool is N device *slots*, each remembering which task's
// program its BRAM currently holds. Dispatching a batch to a slot whose
// resident program differs re-pays the model upload (a cold run);
// dispatching to a warm slot uses RunOptions::model_resident and skips
// it. Placement is per-task sharding over the first `dedicated_devices`
// slots (home = task % dedicated) with the remaining slots forming a
// shared overflow pool that absorbs bursts.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "accel/accelerator.hpp"
#include "serve/batcher.hpp"
#include "serve/request.hpp"
#include "sim/fifo.hpp"
#include "sim/types.hpp"

namespace mann::serve {

struct SchedulerConfig {
  std::size_t devices = 2;
  /// First `dedicated_devices` slots are sharded by task id; the rest
  /// are the shared overflow pool. 0 means the whole pool is shared.
  /// Clamped to `devices`.
  std::size_t dedicated_devices = 0;
  /// Pending-batch queue bound (submit() rejects beyond it).
  std::size_t queue_capacity = 1024;
};

/// Per-slot utilization report.
struct DeviceReport {
  std::size_t id = 0;
  std::optional<std::size_t> resident_task;  ///< program left in BRAM
  sim::Cycle busy_cycles = 0;
  std::uint64_t batches = 0;
  std::uint64_t stories = 0;
  std::uint64_t model_uploads = 0;  ///< cold dispatches (upload re-paid)
};

class Scheduler {
 public:
  /// `task_devices[t]` is the compiled accelerator for task t. All pool
  /// slots share these immutable program images; residency is per slot.
  Scheduler(SchedulerConfig config,
            std::vector<accel::Accelerator> task_devices);

  [[nodiscard]] const SchedulerConfig& config() const noexcept {
    return config_;
  }

  /// Queues a batch for dispatch; false when the pending queue is full.
  [[nodiscard]] bool submit(Batch batch);

  [[nodiscard]] bool has_capacity() const noexcept {
    return !pending_.full();
  }

  /// Assigns pending batches to free device slots at `now`. Head-of-line
  /// order: the front batch waits for a suitable slot before anything
  /// behind it dispatches (deterministic, starvation-free).
  void step(sim::Cycle now);

  /// Moves out every response whose completion time has been reached.
  [[nodiscard]] std::vector<InferenceResponse> collect(sim::Cycle now);

  [[nodiscard]] std::size_t pending_batches() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return in_flight_.size();
  }
  [[nodiscard]] bool idle() const noexcept {
    return pending_.empty() && in_flight_.empty();
  }

  /// Earliest in-flight completion; sim::kNever when nothing is running.
  [[nodiscard]] sim::Cycle next_completion() const noexcept;

  /// Earliest cycle after `now` at which a busy slot frees; sim::kNever
  /// when no slot is busy at `now`. With batches pending this bounds
  /// the next dispatch opportunity (event-skipping horizon).
  [[nodiscard]] sim::Cycle next_slot_free(sim::Cycle now) const noexcept;

  [[nodiscard]] std::vector<DeviceReport> device_reports() const;

  /// Pending-batch queue stats (same FifoStats code path as everything
  /// else in the system).
  [[nodiscard]] const sim::FifoStats& queue_stats() const noexcept {
    return pending_.stats();
  }

  /// Aggregate device-internal host FIFO stats over every run dispatched
  /// so far (summed accel::RunResult::queue_stats()).
  [[nodiscard]] const sim::FifoStats& device_queue_stats() const noexcept {
    return device_queue_stats_;
  }

  [[nodiscard]] std::uint64_t total_model_uploads() const noexcept;

 private:
  struct Slot {
    std::size_t id = 0;
    std::optional<std::size_t> resident_task;
    sim::Cycle busy_until = 0;
    sim::Cycle busy_cycles = 0;
    std::uint64_t batches = 0;
    std::uint64_t stories = 0;
    std::uint64_t model_uploads = 0;

    [[nodiscard]] bool free(sim::Cycle now) const noexcept {
      return busy_until <= now;
    }
  };

  [[nodiscard]] Slot* pick_slot(std::size_t task, sim::Cycle now);
  void dispatch(Slot& slot, const Batch& batch, sim::Cycle now);

  SchedulerConfig config_;
  std::vector<accel::Accelerator> task_devices_;
  std::vector<Slot> slots_;
  sim::Fifo<Batch> pending_;
  std::vector<InferenceResponse> in_flight_;  ///< completion times known
  sim::FifoStats device_queue_stats_;
};

}  // namespace mann::serve
