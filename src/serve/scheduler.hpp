// Batch scheduler over a pool of accelerator devices.
//
// Each served task has one compiled Accelerator (config + device
// program); the pool is N device *slots*, each remembering which task's
// program its BRAM currently holds. Dispatching a batch to a slot whose
// resident program differs re-pays the model upload (a cold run);
// dispatching to a warm slot uses RunOptions::model_resident and skips
// it. Placement is per-task sharding over the first `dedicated_devices`
// slots (home = task % dedicated) with the remaining slots forming a
// shared overflow pool that absorbs bursts.
//
// Dispatch policy (SchedulerConfig::policy):
//   * kEdf (default) — deadline-aware dispatch. Pending batches live in
//     per-shard queues ordered earliest-deadline-first (submit order
//     breaks ties, and batches without SLOs sort last, i.e. with no
//     deadlines configured EDF picks batches in submit order — though
//     unlike kFifo it is work-conserving: a younger batch may dispatch
//     while the oldest waits for an eligible slot). Free slots serve their
//     own shard first; with work_stealing on, an idle slot that finds
//     its queue empty steals the most urgent batch from any other
//     shard's queue — across the shard/overflow boundary in both
//     directions — so one overloaded shard can no longer idle the rest
//     of the pool. A steal displaces the idle slot's resident model, so
//     it only happens when it is worth the reload: the home slot's
//     remaining busy time exceeds the task's observed reload cost, or
//     waiting for home would miss the batch's deadline.
//   * kWfq — weighted fair queueing across tenants, EDF within a
//     tenant. Every shard keeps one EDF-ordered lane per tenant; at each
//     dispatch the least-served active tenant (smallest virtual finish
//     time, advanced by stories/weight on every dispatch) wins the slot,
//     and its most urgent batch with an eligible slot goes. A tenant
//     that floods the queues only advances its own virtual time, so a
//     misbehaving tenant cannot displace conforming tenants' slots —
//     the dispatch-stage half of tenant isolation (admission is the
//     other half). Slot choice, stealing and eviction are shared with
//     kEdf.
//   * kFifo — the legacy head-of-line dispatcher kept as the comparison
//     baseline and escape hatch: the globally oldest pending batch waits
//     for its home or an overflow slot, and nothing behind it may jump
//     ahead.
//
// When a dispatch must displace a resident model (every eligible free
// slot holds some other task's program), the victim is chosen by the
// configured EvictionPolicy (LRU / LFU / cost-aware) instead of the old
// last-program-wins accident; evictions are counted per slot.
//
// The scheduler also exposes its cost model (`service_estimate`,
// `backlog_cycles`, `reload_estimate`) — the same observed-cycle
// bookkeeping that gates work-stealing — so the admission controller
// can shed provably-doomed requests against the very estimates dispatch
// will use.
//
// Host-parallel execution: with `workers > 0` the scheduler also owns a
// WorkerPool and a ServiceCycleCache. Every submitted batch is
// speculatively simulated on a worker and published into the cache; by
// the time the simulated clock reaches the dispatch, the result is
// usually already memoized and the dispatch replays it for free. The
// dispatch path itself is unchanged — it runs the device through the
// same cache, so a speculation miss (or mispredicted variant) simply
// simulates inline. Dispatch decisions never depend on worker timing,
// which keeps the serving timeline bit-identical for any worker count,
// including zero (the sequential escape hatch).
//
// Speculation is *affinity-aware*: the warm/cold variant a worker
// simulates is predicted from the shard the batch will dispatch on —
// the task of the shard's most recently submitted batch approximates
// what will be resident when this batch reaches the device, because
// submit order approximates dispatch order within a shard. Every
// prediction is scored at dispatch (useful when the predicted variant
// matched the one the slot actually needed, wasted otherwise) into
// SpeculationStats; the prediction is a pure function of the simulated
// submit history, so the counts are identical for any worker count > 0.
// `SchedulerConfig::affinity_speculation = false` restores the PR 2
// global-residency heuristic as a measurement escape hatch.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "accel/accelerator.hpp"
#include "accel/service_cycle_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/batcher.hpp"
#include "serve/eviction.hpp"
#include "serve/request.hpp"
#include "serve/tenant.hpp"
#include "serve/worker_pool.hpp"
#include "sim/fifo.hpp"
#include "sim/types.hpp"

namespace mann::serve {

/// Dispatch-ordering policies (see the header comment).
enum class SchedulerPolicy : std::uint8_t {
  kFifo,  ///< legacy head-of-line: strict submit order, no stealing
  kEdf,   ///< earliest-deadline-first with optional work-stealing
  kWfq,   ///< weighted fair queueing across tenants, EDF within a tenant
};

[[nodiscard]] const char* scheduler_policy_name(
    SchedulerPolicy policy) noexcept;

/// Speculation outcome accounting. `speculated` counts worker prefetch
/// jobs; each is scored at its batch's dispatch as `useful` (the
/// predicted warm/cold variant matched the slot) or `wasted` (the worker
/// simulated the variant the dispatch could not use), so after a drain
/// speculated == useful + wasted. All three are pure functions of the
/// simulated timeline — identical for any worker count > 0, all zero at
/// workers == 0.
struct SpeculationStats {
  std::uint64_t speculated = 0;
  std::uint64_t useful = 0;
  std::uint64_t wasted = 0;

  [[nodiscard]] bool operator==(const SpeculationStats&) const noexcept =
      default;
};

struct SchedulerConfig {
  std::size_t devices = 2;
  /// First `dedicated_devices` slots are sharded by task id; the rest
  /// are the shared overflow pool. 0 means the whole pool is shared.
  /// Clamped to `devices`.
  std::size_t dedicated_devices = 0;
  /// Total pending-batch bound across every shard queue (submit()
  /// rejects beyond it).
  std::size_t queue_capacity = 1024;
  SchedulerPolicy policy = SchedulerPolicy::kEdf;
  /// EDF/WFQ only: idle slots with an empty shard queue pull the most
  /// urgent batch from other shards' queues. The FIFO policy never
  /// steals (it reproduces the pre-EDF dispatcher exactly).
  bool work_stealing = true;
  /// kWfq only: tenant_weights[t] is tenant t's fair share (> 0); its
  /// size fixes the per-shard tenant-lane count. Empty degrades kWfq to
  /// a single lane (i.e. plain EDF).
  std::vector<double> tenant_weights = {};
  /// Victim selection when a dispatch must displace a resident model.
  EvictionPolicyKind eviction = EvictionPolicyKind::kLru;
  /// Host worker threads simulating device batches ahead of the serving
  /// clock. 0 = sequential host execution (the debugging escape hatch);
  /// the natural setting is one worker per device slot.
  std::size_t workers = 0;
  /// Affinity-aware warm/cold prediction for speculation (see the header
  /// comment). Off restores the PR 2 global-residency heuristic — the
  /// bench's `--no-affinity` escape hatch for measuring what affinity
  /// awareness buys. Never affects dispatch, only worker efficiency.
  bool affinity_speculation = true;
  /// Entry bound of the internally owned service-cycle cache (ignored
  /// when `cycle_cache` is supplied).
  std::size_t cache_capacity = 1024;
  /// Lock segments of the owned cache (ignored when `cycle_cache` is
  /// supplied; its owner shards it). 1 = the classic single-mutex cache;
  /// more keeps many workers from serializing on one lock. Purely a
  /// host-side knob: hit/wait/miss totals and every simulated number are
  /// segment-count invariant.
  std::size_t cache_segments = 1;
  /// Admission floor of the owned cycle cache: published results cheaper
  /// than this many simulated cycles are not cached (recomputing them
  /// costs less than the entry they would displace). 0 keeps everything.
  /// Ignored for an external `cycle_cache` (its owner configures it).
  sim::Cycle cycle_cache_min_cycles = 0;
  /// External service-cycle cache (non-owning) — lets callers share one
  /// cache across Server runs so a repeated workload replays instantly.
  /// When null and `workers > 0`, the scheduler owns a private cache
  /// (workers need one as the speculation rendezvous).
  accel::ServiceCycleCache* cycle_cache = nullptr;
  /// Observability sinks (non-owning, both optional). `metrics` receives
  /// "serve.scheduler.*" instruments and flows into the owned cache,
  /// eviction policy and worker pool; `trace` receives per-request
  /// service spans, device occupancy and worker speculation spans.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
};

/// Per-slot utilization report.
struct DeviceReport {
  std::size_t id = 0;
  std::optional<std::size_t> resident_task;  ///< program left in BRAM
  sim::Cycle busy_cycles = 0;
  std::uint64_t batches = 0;
  std::uint64_t stories = 0;
  std::uint64_t model_uploads = 0;  ///< cold dispatches (upload re-paid)
  std::uint64_t model_evictions = 0;  ///< uploads that displaced a model
  std::uint64_t stolen_batches = 0;   ///< dispatches taken from another shard
};

class Scheduler {
 public:
  /// `task_devices[t]` is the compiled accelerator for task t. All pool
  /// slots share these immutable program images; residency is per slot.
  Scheduler(SchedulerConfig config,
            std::vector<accel::Accelerator> task_devices);

  [[nodiscard]] const SchedulerConfig& config() const noexcept {
    return config_;
  }

  /// Queues a batch for dispatch; false when the pending bound is hit.
  [[nodiscard]] bool submit(Batch batch);

  [[nodiscard]] bool has_capacity() const noexcept {
    return pending_total_ < queue_capacity_;
  }

  /// Assigns pending batches to free device slots at `now`, in policy
  /// order (deterministic for a given submit history).
  void step(sim::Cycle now);

  // ---- live reconfiguration (ServerSession::set_policy / set_tenant) --

  /// Switches the dispatch policy mid-run without dropping pending work:
  /// every queued batch is re-keyed under the new ordering (in-flight
  /// work is untouched). Returns false — and changes nothing — when the
  /// switch is impossible: kWfq needs the per-tenant lanes that only
  /// exist when the scheduler was *constructed* with tenant weights
  /// (lane count is part of the queue layout, which is fixed).
  /// Switching between kFifo/kEdf, or away from and back to kWfq on a
  /// WFQ-constructed scheduler, always succeeds.
  [[nodiscard]] bool set_policy(SchedulerPolicy policy);

  /// Updates one tenant's WFQ weight (takes effect at the next dispatch;
  /// accumulated virtual finish time is preserved, so past service is
  /// not re-billed). No-op when the scheduler has no tenant lanes.
  /// Throws std::invalid_argument for weight <= 0.
  void set_tenant_weight(TenantId tenant, double weight);

  /// Moves out every response whose completion time has been reached.
  [[nodiscard]] std::vector<InferenceResponse> collect(sim::Cycle now);

  [[nodiscard]] std::size_t pending_batches() const noexcept {
    return pending_total_;
  }
  /// Requests inside the pending batches (the admission controller's
  /// occupancy input, together with the batcher's pending count).
  [[nodiscard]] std::size_t pending_stories() const noexcept {
    return pending_stories_;
  }
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return in_flight_.size();
  }
  [[nodiscard]] bool idle() const noexcept {
    return pending_total_ == 0 && in_flight_.empty();
  }

  /// Earliest in-flight completion; sim::kNever when nothing is running.
  [[nodiscard]] sim::Cycle next_completion() const noexcept;

  /// Earliest cycle after `now` at which a busy slot frees; sim::kNever
  /// when no slot is busy at `now`. With batches pending this bounds
  /// the next dispatch opportunity (event-skipping horizon).
  [[nodiscard]] sim::Cycle next_slot_free(sim::Cycle now) const noexcept;

  // ---- cost model (shared with the admission controller) ----

  /// Latest observed service cycles for `task` (warm preferred, cold
  /// fallback; 0 before any observation).
  [[nodiscard]] sim::Cycle service_estimate(std::size_t task) const noexcept;
  /// Total undone work at `now`: busy-slot remainders plus a service
  /// estimate for every pending batch, in cycles (divide by the pool
  /// size for a per-device figure).
  [[nodiscard]] sim::Cycle backlog_cycles(sim::Cycle now) const noexcept;

  [[nodiscard]] std::vector<DeviceReport> device_reports() const;

  /// Pending-batch queue stats (same FifoStats shape as every other
  /// queue in the system, aggregated over the shard queues).
  [[nodiscard]] const sim::FifoStats& queue_stats() const noexcept {
    return pending_stats_;
  }

  /// Aggregate device-internal host FIFO stats over every run dispatched
  /// so far (summed accel::RunResult::queue_stats()).
  [[nodiscard]] const sim::FifoStats& device_queue_stats() const noexcept {
    return device_queue_stats_;
  }

  [[nodiscard]] std::uint64_t total_model_uploads() const noexcept;
  [[nodiscard]] std::uint64_t total_model_evictions() const noexcept;
  [[nodiscard]] std::uint64_t total_stolen_batches() const noexcept;

  /// Aggregate datapath activity over every dispatched run — the power
  /// model folds these into serving energy.
  [[nodiscard]] const sim::OpCounts& device_ops() const noexcept {
    return device_ops_;
  }
  [[nodiscard]] sim::Cycle link_active_cycles() const noexcept {
    return link_active_cycles_;
  }

  /// Blocks until outstanding speculative work has drained, so cache
  /// counters read afterwards are complete (and deterministic: the set
  /// of speculated jobs is a pure function of the serving timeline).
  void quiesce();

  /// Service-cycle cache counters (all zero when caching is off).
  [[nodiscard]] accel::ServiceCycleCacheStats cache_stats() const;
  /// Speculation outcome counters (all zero when workers == 0). Complete
  /// once every submitted batch has dispatched.
  [[nodiscard]] const SpeculationStats& speculation_stats() const noexcept {
    return speculation_;
  }
  [[nodiscard]] bool cache_enabled() const noexcept {
    return cache_ != nullptr;
  }
  /// Active host worker threads (0 = sequential execution).
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return pool_ ? pool_->size() : 0;
  }

 private:
  struct Slot {
    std::size_t id = 0;
    std::optional<std::size_t> resident_task;
    sim::Cycle busy_until = 0;
    sim::Cycle busy_cycles = 0;
    sim::Cycle last_dispatch_cycle = 0;
    std::uint64_t batches = 0;
    std::uint64_t stories = 0;
    std::uint64_t model_uploads = 0;
    std::uint64_t model_evictions = 0;
    std::uint64_t stolen_batches = 0;

    [[nodiscard]] bool free(sim::Cycle now) const noexcept {
      return busy_until <= now;
    }
  };

  /// One queued batch, stamped with its admission sequence number (the
  /// deterministic tie-break and the FIFO ordering key) and the warm/cold
  /// variant speculation predicted for it at submit (1 warm, 0 cold, -1
  /// not speculated) — scored against the actual dispatch.
  struct PendingBatch {
    Batch batch;
    std::uint64_t seq = 0;
    std::int8_t predicted = -1;
  };

  /// Ordering of the shard queues: EDF (and the per-tenant WFQ lanes)
  /// sorts by (deadline, seq) so the most urgent batch is always at
  /// begin(); FIFO sorts by seq alone (pure submit order). seq is
  /// unique, so the order is total and the queues behave as priority
  /// queues with O(log n) admission.
  struct PendingOrder {
    SchedulerPolicy policy = SchedulerPolicy::kEdf;
    [[nodiscard]] bool operator()(const PendingBatch& a,
                                  const PendingBatch& b) const noexcept {
      if (policy != SchedulerPolicy::kFifo &&
          a.batch.deadline != b.batch.deadline) {
        return a.batch.deadline < b.batch.deadline;
      }
      return a.seq < b.seq;
    }
  };
  using PendingQueue = std::multiset<PendingBatch, PendingOrder>;

  /// Per-task service-cycle observations feeding the cost-aware policy.
  struct TaskCycleEstimate {
    sim::Cycle cold = 0;  ///< latest observed cold (upload-paying) run
    sim::Cycle warm = 0;  ///< latest observed warm run
  };

  /// kWfq bookkeeping: one entry per tenant lane.
  struct TenantQueueState {
    double weight = 1.0;
    double virtual_finish = 0.0;  ///< advanced by stories/weight
    std::size_t pending = 0;      ///< batches queued across all shards
  };

  [[nodiscard]] std::size_t queue_for(std::size_t task) const noexcept;
  /// Index into queues_ for (shard, tenant lane).
  [[nodiscard]] std::size_t lane_index(std::size_t shard,
                                       std::size_t lane) const noexcept {
    return shard * tenant_lanes_ + lane;
  }
  /// True when every tenant lane of `shard` is empty (the foreign-slot
  /// idleness test work-stealing keys on).
  [[nodiscard]] bool shard_empty(std::size_t shard) const noexcept;
  /// True when `slot` may serve shard `q`'s work at `now` (free, and
  /// either home/overflow or an idle foreign dedicated slot worth
  /// stealing onto).
  [[nodiscard]] bool slot_eligible(const Slot& slot, std::size_t q,
                                   bool steal_ok,
                                   sim::Cycle now) const noexcept;
  /// True when taking `batch` from `home_queue` on a foreign dedicated
  /// slot beats waiting for the home slot (the reload-vs-wait trade, or
  /// an SLO about to be missed).
  [[nodiscard]] bool steal_worthwhile(std::size_t home_queue,
                                      const Batch& batch,
                                      sim::Cycle now) const noexcept;
  /// Removes and returns the head batch of queues_[index], maintaining
  /// the pending counters and tenant state.
  [[nodiscard]] PendingBatch pop_queue(std::size_t index);
  [[nodiscard]] bool dispatch_best_edf(sim::Cycle now);
  [[nodiscard]] bool dispatch_best_wfq(sim::Cycle now);
  void step_fifo(sim::Cycle now);
  [[nodiscard]] Slot* pick_slot_fifo(std::size_t task, sim::Cycle now);
  /// EDF/WFQ slot choice for shard `queue`: home, then warm, then empty,
  /// then the eviction policy's victim among `free_slots` (already
  /// filtered to the shard's eligible set).
  [[nodiscard]] Slot* choose_slot_edf(const std::vector<Slot*>& free_slots,
                                      std::size_t queue, std::size_t task);
  void dispatch(Slot& slot, const PendingBatch& pending, sim::Cycle now,
                bool stolen);
  /// Prefetch: simulate `batch` on a worker with the affinity-predicted
  /// warm/cold variant and publish the result into the cache. Returns the
  /// predicted variant (1 warm / 0 cold) for dispatch-time scoring.
  [[nodiscard]] std::int8_t speculate(const Batch& batch);
  [[nodiscard]] bool task_resident_anywhere(std::size_t task) const noexcept;
  [[nodiscard]] sim::Cycle reload_estimate(std::size_t task) const noexcept;

  SchedulerConfig config_;
  std::vector<accel::Accelerator> task_devices_;
  std::vector<Slot> slots_;
  /// Shard-major, tenant-lane-minor: queues_[shard * tenant_lanes_ +
  /// lane]. One shard per dedicated slot (a single shared shard when the
  /// pool is undedicated); one tenant lane per WFQ weight (a single lane
  /// under kFifo/kEdf). begin() of each queue is its most urgent batch
  /// under the configured policy.
  std::vector<PendingQueue> queues_;
  std::size_t shards_ = 1;
  std::size_t tenant_lanes_ = 1;
  std::vector<TenantQueueState> tenants_;  ///< kWfq lane bookkeeping
  double global_virtual_ = 0.0;  ///< WFQ virtual time (min served level)
  std::size_t pending_total_ = 0;
  std::size_t pending_stories_ = 0;
  std::size_t queue_capacity_ = 0;
  std::uint64_t next_seq_ = 0;
  sim::FifoStats pending_stats_;
  std::vector<InferenceResponse> in_flight_;  ///< completion times known
  sim::FifoStats device_queue_stats_;
  sim::OpCounts device_ops_;
  sim::Cycle link_active_cycles_ = 0;
  std::vector<std::uint64_t> task_dispatches_;
  std::vector<TaskCycleEstimate> task_cycles_;
  /// Per-shard task of the most recently *submitted* batch — the
  /// affinity predictor's residency estimate (nullopt before the shard's
  /// first submit).
  std::vector<std::optional<std::size_t>> speculation_tail_;
  SpeculationStats speculation_;
  std::unique_ptr<EvictionPolicy> eviction_;
  std::unique_ptr<accel::ServiceCycleCache> owned_cache_;
  accel::ServiceCycleCache* cache_ = nullptr;  ///< owned or external
  obs::TraceRecorder* trace_ = nullptr;        ///< non-owning, may be null
  // Mirrored obs instruments (null without a registry).
  obs::Counter* obs_dispatches_ = nullptr;
  obs::Counter* obs_model_uploads_ = nullptr;
  obs::Counter* obs_model_evictions_ = nullptr;
  obs::Counter* obs_stolen_batches_ = nullptr;
  obs::Counter* obs_speculations_ = nullptr;
  obs::Histogram* obs_queue_wait_ = nullptr;  ///< enqueue→dispatch cycles
  /// Declared last: its destructor joins the workers while the devices
  /// and cache they reference are still alive.
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace mann::serve
