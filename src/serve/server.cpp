#include "serve/server.hpp"

#include <stdexcept>
#include <utility>

#include "serve/options.hpp"
#include "serve/session.hpp"

namespace mann::serve {

Server::Server(ServerConfig config, std::vector<ServedModel> models)
    : config_(std::move(config)), models_(std::move(models)) {
  if (models_.empty()) {
    throw std::invalid_argument("Server: no models to serve");
  }
  for (const ServedModel& m : models_) {
    if (m.stories.empty()) {
      throw std::invalid_argument("Server: model with empty corpus");
    }
  }
}

Server::Server(const ServingOptions& options, std::vector<ServedModel> models)
    : Server(options.build(), std::move(models)) {}

Server::~Server() = default;
Server::Server(Server&&) noexcept = default;
Server& Server::operator=(Server&&) noexcept = default;

ServingReport Server::run(std::size_t total_requests) const {
  SessionOptions options;
  options.total_requests = total_requests;
  // The closed-loop contract: flush leftovers the moment the generator
  // runs dry, and skip the completion outbox nobody will poll.
  options.auto_drain = true;
  options.collect_completions = false;
  ServerSession session(config_, models_, options);
  session.drain();
  (void)session.step(0);
  return session.finalize();
}

ServerSession& Server::start(const SessionOptions& options) {
  if (session_ != nullptr) {
    throw std::logic_error(
        "Server: a session is already active — finalize() it first");
  }
  session_ = std::make_unique<ServerSession>(config_, models_, options);
  return *session_;
}

ServerSession& Server::start() { return start(SessionOptions{}); }

ServerSession& Server::active_session() {
  if (session_ == nullptr) {
    throw std::logic_error("Server: no active session — start() first");
  }
  return *session_;
}

RequestId Server::submit(const SubmitRequest& request) {
  return active_session().submit(request);
}

bool Server::step(sim::Cycle cycles) {
  return active_session().step(cycles);
}

std::vector<Completion> Server::poll_completions() {
  return active_session().poll_completions();
}

void Server::drain() { active_session().drain(); }

ServingReport Server::finalize() {
  ServingReport report = active_session().finalize();
  session_.reset();
  return report;
}

}  // namespace mann::serve
