#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "sim/module.hpp"
#include "sim/simulator.hpp"

namespace mann::serve {

namespace {

/// Frontend: pulls due arrivals out of the TrafficGenerator, through the
/// admission controller, into the batcher. Every refusal — an admission
/// decision or the batcher's full lane — lands in the controller's
/// unified ShedReason accounting, like any open-loop serving frontend's
/// overload shedding.
class FrontendModule final : public sim::Module {
 public:
  FrontendModule(const sim::Simulator& clock, TrafficGenerator& generator,
                 AdmissionController& admission, Batcher& batcher,
                 const Scheduler& scheduler, obs::TraceRecorder* trace)
      : Module("FRONTEND"), clock_(clock), generator_(generator),
        admission_(admission), batcher_(batcher), scheduler_(scheduler),
        trace_(trace) {}

  void tick() override {
    const sim::Cycle now = clock_.now();
    while (std::optional<InferenceRequest> request = generator_.poll(now)) {
      // The outlook snapshots the downstream state the controller judges
      // against: total pending requests for occupancy, and the
      // scheduler's own cost model for the doom test. backlog_cycles
      // walks every pending batch, so it is only priced when a doom
      // decision can actually consume it — the transparent/legacy paths
      // stay O(1) per arrival.
      AdmissionOutlook outlook;
      outlook.pending_requests =
          batcher_.pending() + scheduler_.pending_stories();
      if (admission_.config().shed_doomed &&
          request->deadline_cycle != sim::kNever) {
        outlook.service_estimate = scheduler_.service_estimate(request->task);
        outlook.backlog_cycles_per_device =
            scheduler_.backlog_cycles(now) / scheduler_.config().devices;
      }
      if (trace_ != nullptr) {
        trace_->begin_async(
            "request", request->id, now,
            static_cast<std::int64_t>(request->task), request->tenant,
            static_cast<std::int64_t>(request->deadline_cycle));
      }
      std::optional<ShedReason> shed;
      if (const std::optional<ShedReason> reason =
              admission_.decide(*request, now, outlook)) {
        admission_.record_shed(request->tenant, *reason);
        shed = reason;
      } else if (!batcher_.enqueue(*request)) {
        admission_.record_shed(request->tenant, ShedReason::kQueueFull);
        shed = ShedReason::kQueueFull;
      } else {
        admission_.record_admitted(request->tenant);
      }
      if (trace_ != nullptr) {
        if (shed.has_value()) {
          // A shed request's lifecycle ends at the frontend: an instant
          // carrying the ShedReason, then the request span closes.
          trace_->instant(obs::Domain::kSim, obs::kTrackFrontend, "shed",
                          now, shed_reason_name(*shed),
                          static_cast<std::int64_t>(request->task),
                          request->tenant);
          trace_->end_async("request", request->id, now);
        } else {
          trace_->begin_async("queued", request->id, now,
                              static_cast<std::int64_t>(request->task),
                              request->tenant);
        }
      }
      mark_busy();
    }
  }

  [[nodiscard]] std::optional<sim::Cycle> next_activity() const override {
    return generator_.next_arrival();
  }

 private:
  const sim::Simulator& clock_;
  TrafficGenerator& generator_;
  AdmissionController& admission_;
  Batcher& batcher_;
  const Scheduler& scheduler_;
  obs::TraceRecorder* trace_;  ///< non-owning, may be null
};

/// Moves ready batches from the batcher into the scheduler, respecting
/// the scheduler's queue bound (back-pressure instead of drop). Once the
/// traffic source is exhausted, drains sub-size leftovers immediately
/// rather than letting them age to the timeout.
class BatchModule final : public sim::Module {
 public:
  BatchModule(const sim::Simulator& clock, const TrafficGenerator& generator,
              Batcher& batcher, Scheduler& scheduler,
              obs::TraceRecorder* trace)
      : Module("BATCHER"), clock_(clock), generator_(generator),
        batcher_(batcher), scheduler_(scheduler), trace_(trace) {}

  void tick() override {
    const sim::Cycle now = clock_.now();
    while (scheduler_.has_capacity()) {
      std::optional<Batch> batch = batcher_.poll(now);
      if (!batch && generator_.exhausted()) {
        batch = batcher_.drain(now);
      }
      if (!batch) {
        return;
      }
      if (trace_ != nullptr) {
        // Batch formation closes every member's lane residence and opens
        // its scheduler-queue wait (the scheduler closes "pending" at
        // dispatch — it knows the dispatch cycle, this module does not).
        for (const InferenceRequest& request : batch->requests) {
          trace_->end_async("queued", request.id, now);
          trace_->begin_async("pending", request.id, now,
                              static_cast<std::int64_t>(request.task),
                              request.tenant);
        }
      }
      if (!scheduler_.submit(*std::move(batch))) {
        throw std::logic_error("BatchModule: submit after has_capacity");
      }
      mark_busy();
    }
  }

  [[nodiscard]] std::optional<sim::Cycle> next_activity() const override {
    if (batcher_.pending() == 0) {
      return sim::kNever;
    }
    if (generator_.exhausted() || !scheduler_.has_capacity()) {
      // Drain mode or blocked on downstream: may act at the very next
      // tick, so report the current clock (vetoes any skip past it).
      return clock_.now();
    }
    // Waiting to fill: wake at the oldest request's timeout. A fill-up
    // wakes us anyway via the frontend's arrival horizon.
    return batcher_.next_deadline();
  }

 private:
  const sim::Simulator& clock_;
  const TrafficGenerator& generator_;
  Batcher& batcher_;
  Scheduler& scheduler_;
  obs::TraceRecorder* trace_;  ///< non-owning, may be null
};

/// Drives the device pool and feeds completed responses to the metrics.
class DispatchModule final : public sim::Module {
 public:
  DispatchModule(const sim::Simulator& clock, Scheduler& scheduler,
                 ServingMetrics& metrics, sim::Cycle& last_completion)
      : Module("DISPATCH"), clock_(clock), scheduler_(scheduler),
        metrics_(metrics), last_completion_(last_completion) {}

  void tick() override {
    const sim::Cycle now = clock_.now();
    scheduler_.step(now);
    for (const InferenceResponse& response : scheduler_.collect(now)) {
      metrics_.record(response);
      last_completion_ = std::max(last_completion_, response.complete_cycle);
      mark_busy();
    }
  }

  [[nodiscard]] std::optional<sim::Cycle> next_activity() const override {
    if (scheduler_.pending_batches() > 0) {
      // Next dispatch opportunity: a slot freeing (conservative — a past
      // cycle just vetoes the skip and falls back to per-cycle ticking).
      return std::min(scheduler_.next_slot_free(clock_.now()),
                      scheduler_.next_completion());
    }
    return scheduler_.next_completion();
  }

 private:
  const sim::Simulator& clock_;
  Scheduler& scheduler_;
  ServingMetrics& metrics_;
  sim::Cycle& last_completion_;
};

}  // namespace

Server::Server(ServerConfig config, std::vector<ServedModel> models)
    : config_(std::move(config)), models_(std::move(models)) {
  if (models_.empty()) {
    throw std::invalid_argument("Server: no models to serve");
  }
  for (const ServedModel& m : models_) {
    if (m.stories.empty()) {
      throw std::invalid_argument("Server: model with empty corpus");
    }
  }
}

ServingReport Server::run(std::size_t total_requests) const {
  std::vector<TaskWorkload> workloads;
  std::vector<accel::Accelerator> task_devices;
  workloads.reserve(models_.size());
  task_devices.reserve(models_.size());
  for (std::size_t t = 0; t < models_.size(); ++t) {
    workloads.push_back({t, models_[t].stories});
    task_devices.emplace_back(config_.accel, models_[t].program);
  }

  // The tenant registry (traffic.tenants) is the single source of truth
  // for every control-plane stage: the generator draws tenants from it,
  // the admission controller enforces its quotas/tiers, the batcher
  // lays out one lane per tenant, and the WFQ scheduler takes its
  // weights from it (unless explicitly overridden).
  const std::vector<TenantConfig>& tenants = config_.traffic.tenants;
  const std::size_t num_tenants = std::max<std::size_t>(1, tenants.size());

  TrafficGenerator generator(config_.traffic, std::move(workloads),
                             total_requests);
  AdmissionController admission(config_.admission, tenants,
                                config_.metrics);
  Batcher batcher(config_.batcher, models_.size(), num_tenants,
                  config_.metrics);
  SchedulerConfig scheduler_config = config_.scheduler;
  if (scheduler_config.policy == SchedulerPolicy::kWfq &&
      scheduler_config.tenant_weights.empty()) {
    scheduler_config.tenant_weights.reserve(tenants.size());
    for (const TenantConfig& tenant : tenants) {
      scheduler_config.tenant_weights.push_back(tenant.weight);
    }
  }
  scheduler_config.metrics = config_.metrics;
  scheduler_config.trace = config_.trace;
  Scheduler scheduler(scheduler_config, std::move(task_devices));
  ServingMetrics metrics(config_.accel.clock_hz, config_.histogram_bins,
                         /*histogram_hi_cycles=*/50.0e6, config_.power);
  sim::Cycle last_completion = 0;

  sim::Simulator simulator;
  FrontendModule frontend(simulator, generator, admission, batcher,
                          scheduler, config_.trace);
  BatchModule batch_stage(simulator, generator, batcher, scheduler,
                          config_.trace);
  DispatchModule dispatch(simulator, scheduler, metrics, last_completion);
  simulator.add_module(frontend);
  simulator.add_module(batch_stage);
  simulator.add_module(dispatch);

  // Wall clock around the serving loop: the simulated metrics above are
  // host-speed-invariant, this is the "how fast did the host grind
  // through it" counterpart (workers and the service-cycle cache move
  // this number, never the simulated ones).
  const auto wall_start = std::chrono::steady_clock::now();
  simulator.run_events(
      [&] {
        return generator.exhausted() && batcher.pending() == 0 &&
               scheduler.idle();
      },
      config_.watchdog_cycles);
  // Drain leftover speculative work so it is inside the wall measurement
  // and the cache counters below are complete.
  scheduler.quiesce();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;

  RunTotals totals;
  totals.offered = generator.emitted();
  totals.makespan = last_completion;
  totals.max_batch = config_.batcher.max_batch;
  totals.batching = batcher.counters();
  totals.sheds = admission.sheds();
  totals.tenant_sheds = admission.tenant_sheds();
  totals.tenant_admitted = admission.tenant_admitted();
  totals.tenants = tenants;
  totals.queue_stats = batcher.queue_stats();
  totals.queue_stats += scheduler.queue_stats();
  totals.queue_stats += scheduler.device_queue_stats();
  totals.devices = scheduler.device_reports();
  totals.model_uploads = scheduler.total_model_uploads();
  totals.model_evictions = scheduler.total_model_evictions();
  totals.stolen_batches = scheduler.total_stolen_batches();
  totals.device_ops = scheduler.device_ops();
  totals.link_active_cycles = scheduler.link_active_cycles();
  totals.host_wall_seconds = wall.count();
  totals.workers = scheduler.worker_count();
  totals.cycle_cache_enabled = scheduler.cache_enabled();
  totals.cycle_cache = scheduler.cache_stats();
  return metrics.finalize(std::move(totals));
}

}  // namespace mann::serve
