#include "serve/eviction.hpp"

#include <stdexcept>
#include <tuple>

namespace mann::serve {

namespace {

/// Shared argmin over a strict-weak-order key; candidates are slot-id
/// ordered, so "first minimum wins" is the lowest-slot tie-break.
template <typename KeyFn>
[[nodiscard]] std::size_t argmin(
    std::span<const EvictionCandidate> candidates, KeyFn key) {
  if (candidates.empty()) {
    throw std::invalid_argument("EvictionPolicy: no candidates");
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    if (key(candidates[i]) < key(candidates[best])) {
      best = i;
    }
  }
  return best;
}

/// Decorator counting picks into an obs counter; the wrapped policy's
/// name and choices pass through untouched, so determinism is preserved.
class CountingEviction final : public EvictionPolicy {
 public:
  CountingEviction(std::unique_ptr<EvictionPolicy> inner,
                   obs::Counter* victims)
      : inner_(std::move(inner)), victims_(victims) {}

  [[nodiscard]] const char* name() const noexcept override {
    return inner_->name();
  }
  [[nodiscard]] std::size_t pick_victim(
      std::span<const EvictionCandidate> candidates) const override {
    obs::add(victims_);
    return inner_->pick_victim(candidates);
  }

 private:
  std::unique_ptr<EvictionPolicy> inner_;
  obs::Counter* victims_;
};

}  // namespace

std::size_t LruEviction::pick_victim(
    std::span<const EvictionCandidate> candidates) const {
  return argmin(candidates, [](const EvictionCandidate& c) {
    return c.last_dispatch_cycle;
  });
}

std::size_t LfuEviction::pick_victim(
    std::span<const EvictionCandidate> candidates) const {
  return argmin(candidates, [](const EvictionCandidate& c) {
    return std::make_tuple(c.resident_task_dispatches,
                           c.last_dispatch_cycle);
  });
}

std::size_t CostAwareEviction::pick_victim(
    std::span<const EvictionCandidate> candidates) const {
  return argmin(candidates, [](const EvictionCandidate& c) {
    return std::make_tuple(c.reload_cycles, c.last_dispatch_cycle);
  });
}

std::unique_ptr<EvictionPolicy> make_eviction_policy(
    EvictionPolicyKind kind, obs::MetricsRegistry* metrics) {
  std::unique_ptr<EvictionPolicy> policy;
  switch (kind) {
    case EvictionPolicyKind::kLru:
      policy = std::make_unique<LruEviction>();
      break;
    case EvictionPolicyKind::kLfu:
      policy = std::make_unique<LfuEviction>();
      break;
    case EvictionPolicyKind::kCostAware:
      policy = std::make_unique<CostAwareEviction>();
      break;
  }
  if (policy == nullptr) {
    throw std::invalid_argument("make_eviction_policy: unknown kind");
  }
  if (metrics != nullptr) {
    policy = std::make_unique<CountingEviction>(
        std::move(policy), obs::counter(metrics, "serve.eviction.victims"));
  }
  return policy;
}

const char* eviction_policy_name(EvictionPolicyKind kind) noexcept {
  switch (kind) {
    case EvictionPolicyKind::kLru:
      return "lru";
    case EvictionPolicyKind::kLfu:
      return "lfu";
    case EvictionPolicyKind::kCostAware:
      return "cost";
  }
  return "unknown";
}

}  // namespace mann::serve
