#include "serve/eviction.hpp"

#include <stdexcept>
#include <tuple>

namespace mann::serve {

namespace {

/// Shared argmin over a strict-weak-order key; candidates are slot-id
/// ordered, so "first minimum wins" is the lowest-slot tie-break.
template <typename KeyFn>
[[nodiscard]] std::size_t argmin(
    std::span<const EvictionCandidate> candidates, KeyFn key) {
  if (candidates.empty()) {
    throw std::invalid_argument("EvictionPolicy: no candidates");
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    if (key(candidates[i]) < key(candidates[best])) {
      best = i;
    }
  }
  return best;
}

}  // namespace

std::size_t LruEviction::pick_victim(
    std::span<const EvictionCandidate> candidates) const {
  return argmin(candidates, [](const EvictionCandidate& c) {
    return c.last_dispatch_cycle;
  });
}

std::size_t LfuEviction::pick_victim(
    std::span<const EvictionCandidate> candidates) const {
  return argmin(candidates, [](const EvictionCandidate& c) {
    return std::make_tuple(c.resident_task_dispatches,
                           c.last_dispatch_cycle);
  });
}

std::size_t CostAwareEviction::pick_victim(
    std::span<const EvictionCandidate> candidates) const {
  return argmin(candidates, [](const EvictionCandidate& c) {
    return std::make_tuple(c.reload_cycles, c.last_dispatch_cycle);
  });
}

std::unique_ptr<EvictionPolicy> make_eviction_policy(
    EvictionPolicyKind kind) {
  switch (kind) {
    case EvictionPolicyKind::kLru:
      return std::make_unique<LruEviction>();
    case EvictionPolicyKind::kLfu:
      return std::make_unique<LfuEviction>();
    case EvictionPolicyKind::kCostAware:
      return std::make_unique<CostAwareEviction>();
  }
  throw std::invalid_argument("make_eviction_policy: unknown kind");
}

const char* eviction_policy_name(EvictionPolicyKind kind) noexcept {
  switch (kind) {
    case EvictionPolicyKind::kLru:
      return "lru";
    case EvictionPolicyKind::kLfu:
      return "lfu";
    case EvictionPolicyKind::kCostAware:
      return "cost";
  }
  return "unknown";
}

}  // namespace mann::serve
