#include "serve/batcher.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace mann::serve {

Batcher::Batcher(BatcherConfig config, std::size_t num_tasks)
    : config_(config) {
  if (num_tasks == 0) {
    throw std::invalid_argument("Batcher: need at least one task");
  }
  if (config_.max_batch == 0) {
    throw std::invalid_argument("Batcher: max_batch must be > 0");
  }
  queues_.reserve(num_tasks);
  for (std::size_t t = 0; t < num_tasks; ++t) {
    queues_.emplace_back("BATCH_Q" + std::to_string(t),
                         config_.queue_capacity);
  }
}

bool Batcher::enqueue(const InferenceRequest& request) {
  if (request.task >= queues_.size()) {
    throw std::out_of_range("Batcher: unknown task id");
  }
  if (request.story == nullptr) {
    throw std::invalid_argument("Batcher: request without a story");
  }
  if (!queues_[request.task].try_push(request)) {
    ++counters_.requests_rejected;
    return false;
  }
  ++counters_.requests_in;
  return true;
}

std::optional<Batch> Batcher::poll(sim::Cycle now) {
  const std::size_t n = queues_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t task = (rotate_ + i) % n;
    const sim::Fifo<InferenceRequest>& q = queues_[task];
    const InferenceRequest* head = q.peek();
    if (head == nullptr) {
      continue;
    }
    const bool full = q.size() >= config_.max_batch;
    const bool timed_out =
        now - head->enqueue_cycle >= config_.max_wait_cycles;
    if (!full && !timed_out) {
      continue;
    }
    full ? ++counters_.flush_full : ++counters_.flush_timeout;
    rotate_ = (task + 1) % n;  // next poll starts after the flushed task
    return flush_task(task, now);
  }
  return std::nullopt;
}

std::optional<Batch> Batcher::drain(sim::Cycle now) {
  const std::size_t n = queues_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t task = (rotate_ + i) % n;
    if (queues_[task].empty()) {
      continue;
    }
    ++counters_.flush_drain;
    rotate_ = (task + 1) % n;
    return flush_task(task, now);
  }
  return std::nullopt;
}

std::size_t Batcher::pending() const noexcept {
  std::size_t total = 0;
  for (const auto& q : queues_) {
    total += q.size();
  }
  return total;
}

sim::Cycle Batcher::next_deadline() const noexcept {
  sim::Cycle deadline = sim::kNever;
  for (const auto& q : queues_) {
    const InferenceRequest* head = q.peek();
    if (head != nullptr) {
      deadline =
          std::min(deadline, head->enqueue_cycle + config_.max_wait_cycles);
    }
  }
  return deadline;
}

sim::FifoStats Batcher::queue_stats() const noexcept {
  sim::FifoStats combined;
  for (const auto& q : queues_) {
    combined += q.stats();
  }
  return combined;
}

Batch Batcher::flush_task(std::size_t task, sim::Cycle /*now*/) {
  sim::Fifo<InferenceRequest>& q = queues_[task];
  Batch batch;
  batch.task = task;
  const std::size_t take = std::min(q.size(), config_.max_batch);
  batch.requests.reserve(take);
  batch.stories.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    InferenceRequest request = *q.try_pop();
    batch.deadline = std::min(batch.deadline, request.deadline_cycle);
    batch.stories.push_back(*request.story);
    batch.requests.push_back(request);
  }
  ++counters_.batches_out;
  counters_.stories_out += batch.size();
  return batch;
}

}  // namespace mann::serve
