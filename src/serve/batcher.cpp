#include "serve/batcher.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace mann::serve {

Batcher::Batcher(BatcherConfig config, std::size_t num_tasks,
                 std::size_t num_tenants, obs::MetricsRegistry* metrics)
    : config_(config),
      num_tenants_(num_tenants),
      obs_requests_in_(obs::counter(metrics, "serve.batcher.requests_in")),
      obs_requests_rejected_(
          obs::counter(metrics, "serve.batcher.requests_rejected")),
      obs_batches_out_(obs::counter(metrics, "serve.batcher.batches_out")),
      obs_batch_size_(obs::histogram(metrics, "serve.batcher.batch_size")) {
  if (num_tasks == 0) {
    throw std::invalid_argument("Batcher: need at least one task");
  }
  if (num_tenants_ == 0) {
    throw std::invalid_argument("Batcher: need at least one tenant");
  }
  if (config_.max_batch == 0) {
    throw std::invalid_argument("Batcher: max_batch must be > 0");
  }
  queues_.reserve(num_tasks * num_tenants_);
  for (std::size_t t = 0; t < num_tasks; ++t) {
    for (std::size_t u = 0; u < num_tenants_; ++u) {
      std::string name = "BATCH_Q" + std::to_string(t);
      if (num_tenants_ > 1) {
        name += "." + std::to_string(u);
      }
      queues_.emplace_back(std::move(name), config_.queue_capacity);
    }
  }
}

bool Batcher::enqueue(const InferenceRequest& request) {
  if (request.task * num_tenants_ >= queues_.size()) {
    throw std::out_of_range("Batcher: unknown task id");
  }
  if (request.tenant >= num_tenants_) {
    throw std::out_of_range("Batcher: unknown tenant id");
  }
  if (request.story == nullptr) {
    throw std::invalid_argument("Batcher: request without a story");
  }
  const std::size_t lane = request.task * num_tenants_ + request.tenant;
  if (!queues_[lane].try_push(request)) {
    ++counters_.requests_rejected;
    obs::add(obs_requests_rejected_);
    return false;
  }
  ++counters_.requests_in;
  obs::add(obs_requests_in_);
  return true;
}

std::optional<Batch> Batcher::poll(sim::Cycle now) {
  const std::size_t n = queues_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lane = (rotate_ + i) % n;
    const sim::Fifo<InferenceRequest>& q = queues_[lane];
    const InferenceRequest* head = q.peek();
    if (head == nullptr) {
      continue;
    }
    const bool full = q.size() >= config_.max_batch;
    const bool timed_out =
        now - head->enqueue_cycle >= config_.max_wait_cycles;
    if (!full && !timed_out) {
      continue;
    }
    full ? ++counters_.flush_full : ++counters_.flush_timeout;
    rotate_ = (lane + 1) % n;  // next poll starts after the flushed lane
    return flush_lane(lane);
  }
  return std::nullopt;
}

std::optional<Batch> Batcher::drain(sim::Cycle /*now*/) {
  const std::size_t n = queues_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lane = (rotate_ + i) % n;
    if (queues_[lane].empty()) {
      continue;
    }
    ++counters_.flush_drain;
    rotate_ = (lane + 1) % n;
    return flush_lane(lane);
  }
  return std::nullopt;
}

std::size_t Batcher::pending() const noexcept {
  std::size_t total = 0;
  for (const auto& q : queues_) {
    total += q.size();
  }
  return total;
}

sim::Cycle Batcher::next_deadline() const noexcept {
  sim::Cycle deadline = sim::kNever;
  for (const auto& q : queues_) {
    const InferenceRequest* head = q.peek();
    if (head != nullptr) {
      deadline =
          std::min(deadline, head->enqueue_cycle + config_.max_wait_cycles);
    }
  }
  return deadline;
}

sim::FifoStats Batcher::queue_stats() const noexcept {
  sim::FifoStats combined;
  for (const auto& q : queues_) {
    combined += q.stats();
  }
  return combined;
}

Batch Batcher::flush_lane(std::size_t lane) {
  sim::Fifo<InferenceRequest>& q = queues_[lane];
  Batch batch;
  batch.task = lane / num_tenants_;
  batch.tenant = static_cast<TenantId>(lane % num_tenants_);
  const std::size_t take = std::min(q.size(), config_.max_batch);
  batch.requests.reserve(take);
  batch.stories.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    InferenceRequest request = *q.try_pop();
    batch.deadline = std::min(batch.deadline, request.deadline_cycle);
    batch.stories.push_back(*request.story);
    batch.requests.push_back(request);
  }
  ++counters_.batches_out;
  counters_.stories_out += batch.size();
  obs::add(obs_batches_out_);
  obs::observe(obs_batch_size_, batch.size());
  return batch;
}

}  // namespace mann::serve
