// The unified request-outcome vocabulary of the incremental serving API.
//
// Historically three per-layer encodings described how a request left the
// system: the admission/batcher layers spoke ShedReason, the scheduler's
// dispatch path spoke accel::CacheOutcome, and "did it complete, and in
// time?" was implicit in InferenceResponse::deadline_met(). The session
// API (ServerSession::poll_completions) surfaces one public enum instead:
// every request resolves to exactly one RequestOutcome, and the
// conversion helpers below are the single place the legacy encodings map
// through.
//
// Determinism note: RequestOutcome is a pure function of the simulated
// timeline, so the completion stream is bit-identical for any host worker
// count. How the host *resolved* a dispatch against the service-cycle
// cache (accel::CacheOutcome) is worker-count-dependent, which is why it
// rides beside the outcome in Completion::cache_outcome instead of being
// folded into the enum — deterministic identity and host-execution
// diagnostics must never share one value.
#pragma once

#include <cstdint>

#include "accel/accelerator.hpp"
#include "serve/request.hpp"
#include "serve/tenant.hpp"
#include "sim/types.hpp"

namespace mann::serve {

/// How a request left the serving stack. Exactly one per request.
enum class RequestOutcome : std::uint8_t {
  kOk = 0,        ///< completed within its deadline (or carried none)
  kLate,          ///< completed after its deadline (SLO violation)
  kShedQueueFull, ///< refused: batcher pending lane was full
  kShedQuota,     ///< refused: tenant token bucket was empty
  kShedDoomed,    ///< refused: deadline unmeetable per the cost model
  kShedOverload,  ///< refused: tiered load shedding above the watermark
};

inline constexpr std::size_t kRequestOutcomeCount = 6;

[[nodiscard]] constexpr bool outcome_is_shed(RequestOutcome o) noexcept {
  return o >= RequestOutcome::kShedQueueFull;
}

[[nodiscard]] constexpr bool outcome_is_completion(
    RequestOutcome o) noexcept {
  return !outcome_is_shed(o);
}

/// ShedReason -> RequestOutcome (the admission layer's encoding mapped
/// into the public vocabulary).
[[nodiscard]] constexpr RequestOutcome outcome_from_shed(
    ShedReason reason) noexcept {
  switch (reason) {
    case ShedReason::kQueueFull:
      return RequestOutcome::kShedQueueFull;
    case ShedReason::kQuota:
      return RequestOutcome::kShedQuota;
    case ShedReason::kDoomed:
      return RequestOutcome::kShedDoomed;
    case ShedReason::kOverload:
      return RequestOutcome::kShedOverload;
  }
  return RequestOutcome::kShedQueueFull;
}

/// RequestOutcome -> ShedReason for shed outcomes (kQueueFull for
/// completions; gate on outcome_is_shed first).
[[nodiscard]] constexpr ShedReason outcome_to_shed(
    RequestOutcome o) noexcept {
  switch (o) {
    case RequestOutcome::kShedQuota:
      return ShedReason::kQuota;
    case RequestOutcome::kShedDoomed:
      return ShedReason::kDoomed;
    case RequestOutcome::kShedOverload:
      return ShedReason::kOverload;
    default:
      return ShedReason::kQueueFull;
  }
}

/// Completion classification of an answered request.
[[nodiscard]] inline RequestOutcome outcome_from_response(
    const InferenceResponse& response) noexcept {
  return response.has_deadline() && !response.deadline_met()
             ? RequestOutcome::kLate
             : RequestOutcome::kOk;
}

[[nodiscard]] constexpr const char* request_outcome_name(
    RequestOutcome o) noexcept {
  switch (o) {
    case RequestOutcome::kOk:
      return "ok";
    case RequestOutcome::kLate:
      return "late";
    case RequestOutcome::kShedQueueFull:
      return "shed_queue_full";
    case RequestOutcome::kShedQuota:
      return "shed_quota";
    case RequestOutcome::kShedDoomed:
      return "shed_doomed";
    case RequestOutcome::kShedOverload:
      return "shed_overload";
  }
  return "unknown";
}

/// One resolved request, surfaced by ServerSession::poll_completions().
/// Sheds surface here too (with a partially filled response: id, task,
/// tenant, enqueue_cycle and deadline_cycle are meaningful), so the
/// completion stream is the *complete* per-request ledger — exactly one
/// Completion per offered request.
struct Completion {
  RequestOutcome outcome = RequestOutcome::kOk;
  /// How the host resolved the dispatch against the service-cycle cache
  /// (kNone when shed, when caching is off, or pre-PR2 sequential runs).
  /// Host-dependent: excluded from byte-stable output (see header note).
  accel::CacheOutcome cache_outcome = accel::CacheOutcome::kNone;
  /// Simulated cycle the outcome landed: complete_cycle for completions,
  /// the shed decision cycle for sheds. poll_completions() orders its
  /// window by (cycle, id), and windows are drained at non-decreasing
  /// clock values, so the concatenated stream is globally sorted and
  /// deterministic.
  sim::Cycle cycle = 0;
  InferenceResponse response;
};

}  // namespace mann::serve
