// ServerSession: the incremental serving session underneath Server.
//
// Server::run() is one-shot and closed-loop: it owns the clock,
// fabricates its own arrivals, and returns a single report. A
// ServerSession exposes the same stack — generator -> admission ->
// batcher -> scheduler -> device pool on the shared sim::Simulator — as
// stepwise primitives an outside driver can interleave:
//
//   submit()            inject one request (open-loop ingestion beside,
//                       or instead of, the closed-loop generator)
//   step()/step_until() advance the simulated serving loop, bounded by a
//                       cycle horizon so a driver that learns of
//                       arrivals late (a live daemon) never lets the
//                       clock run past what it has been told about
//   poll_completions()  drain resolved requests (completions AND sheds)
//                       as serve::Completion records in a deterministic,
//                       globally (cycle, id)-sorted stream
//   drain()             flush sub-size batches immediately from here on
//   finalize()          run to quiescence and fold the ServingReport
//
// plus live reconfiguration (set_tenant / set_slo / set_policy) that
// takes effect mid-run without dropping in-flight requests.
//
// Determinism contract: the tick sequence is a pure function of the
// arrival schedule (generated + submitted), never of *when* the driver
// called step_until — pausing at any horizon and resuming later replays
// the exact same cycles. Server::run() is reimplemented as a thin
// drain/step/finalize composition over one session and stays
// bit-identical to the historical single-call loop.
//
// The horizon is exclusive: step_until(h) processes every event at
// cycles < h and holds everything at >= h. A lockstep driver that has
// submitted all arrivals up to cycle c can therefore step_until(c)
// safely — a not-yet-submitted arrival at exactly c is still in the
// future when it finally arrives.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "serve/outcome.hpp"
#include "serve/server.hpp"
#include "sim/simulator.hpp"

namespace mann::serve {

/// Knobs of one incremental session (see Server::start()).
struct SessionOptions {
  /// Closed-loop requests drawn from config.traffic by the generator.
  /// 0 = pure open-loop: every request arrives via submit().
  std::size_t total_requests = 0;
  /// Flush sub-size batches as soon as the arrival sources are idle —
  /// the closed-loop run() behaviour, where "sources idle" means "the
  /// run is over". Off (the open-loop default), leftovers age to the
  /// batcher timeout until drain() is called: between submits the
  /// sources are *always* momentarily idle, and flushing then would
  /// defeat batching entirely.
  bool auto_drain = false;
  /// Record a Completion per resolved request for poll_completions().
  /// run() turns this off — nobody polls, so nothing should accumulate.
  bool collect_completions = true;
  /// Offset added to the injected-id range (which already starts after
  /// the generator's). A multi-instance driver (mann::cluster) gives
  /// every instance a disjoint id space so completion streams and trace
  /// spans stay globally unique; 0 (the default, and always instance 0)
  /// keeps the historical 0-based open-loop numbering.
  RequestId first_id = 0;
};

/// One open-loop submission (ServerSession::submit()).
struct SubmitRequest {
  std::size_t task = 0;
  TenantId tenant = 0;
  /// Absolute arrival cycle; 0 = "at the session clock". Arrivals are
  /// clamped monotone (>= the session clock and every prior arrival) so
  /// the merged schedule is always a valid trace.
  sim::Cycle at_cycle = 0;
  /// Relative deadline budget in cycles: 0 derives the deadline from the
  /// tenant/task SLO config (exactly like generated traffic),
  /// sim::kNever forces "no deadline", anything else is an explicit
  /// arrival-relative budget.
  sim::Cycle deadline_cycles = 0;
};

/// Mid-run status snapshot (the daemon's `info` line).
struct SessionInfo {
  std::size_t offered = 0;    ///< generated + submitted so far
  std::size_t admitted = 0;   ///< entered the batcher
  std::size_t completed = 0;  ///< responses recorded
  std::size_t shed = 0;       ///< refused, all reasons
  std::size_t batcher_pending = 0;
  std::size_t scheduler_pending = 0;  ///< queued batches
  std::size_t in_flight = 0;          ///< dispatched, completion pending
  sim::Cycle cycle = 0;               ///< session clock
  bool draining = false;
  SchedulerPolicy policy = SchedulerPolicy::kEdf;
};

class ServerSession {
 public:
  /// `models` must outlive the session (Server owns them for sessions
  /// created via Server::start()).
  ServerSession(ServerConfig config, const std::vector<ServedModel>& models,
                SessionOptions options = {});
  ~ServerSession();

  ServerSession(const ServerSession&) = delete;
  ServerSession& operator=(const ServerSession&) = delete;

  /// Injects one request; returns its id (submission order, starting
  /// after the closed-loop generator's id range). Throws
  /// std::out_of_range for an unknown task/tenant and std::logic_error
  /// after finalize().
  RequestId submit(const SubmitRequest& request);

  /// Advances the serving loop up to `cycles` simulated cycles from the
  /// current clock (0 = to quiescence). Returns true when the session is
  /// quiescent (all sources idle, queues empty, nothing in flight).
  bool step(sim::Cycle cycles);

  /// Advances until the exclusive cycle horizon `limit` (sim::kNever =
  /// to quiescence). Returns true when quiescent. Throws the serving
  /// watchdog's std::runtime_error exactly like the historical run().
  bool step_until(sim::Cycle limit);

  /// Moves out every request resolved since the last poll — completions
  /// and sheds alike — sorted by (cycle, id). Windows are drained at
  /// non-decreasing clock values, so concatenated windows form one
  /// globally sorted deterministic stream.
  [[nodiscard]] std::vector<Completion> poll_completions();

  /// From now on, sub-size batches flush immediately instead of aging to
  /// the batcher timeout (sticky; the end-of-stream signal).
  void drain() noexcept { draining_ = true; }

  /// Drains, runs to quiescence, quiesces host workers and folds the
  /// final ServingReport — byte-identical to what run() returns for the
  /// same arrival schedule. Callable once.
  [[nodiscard]] ServingReport finalize();

  // ---- live reconfiguration (takes effect at the next tick; never
  // drops queued or in-flight requests) ----

  /// Replaces one tenant's contract across every control-plane stage:
  /// admission quota/tier, WFQ dispatch weight, and the SLO override
  /// stamped on future arrivals. Throws std::out_of_range outside the
  /// registry (its size is fixed at construction) and
  /// std::invalid_argument for invalid knobs; the old contract is kept
  /// on throw.
  void set_tenant(TenantId tenant, const TenantConfig& config);

  /// Replaces the per-task SLO table used for future arrivals.
  void set_slo(const SloConfig& slo);

  /// Switches the dispatch policy; false (and no change) when the
  /// layout cannot support it (kWfq on a session built without tenant
  /// weights). Pending work is re-keyed, never dropped.
  [[nodiscard]] bool set_policy(SchedulerPolicy policy);

  // ---- introspection ----

  [[nodiscard]] sim::Cycle now() const noexcept { return simulator_.now(); }
  /// Arrival cycle of the most recent submit() (0 before the first).
  /// A lockstep driver uses it as the exclusive step_until() horizon:
  /// everything strictly before the last vouched-for arrival may run.
  [[nodiscard]] sim::Cycle last_submitted_arrival() const noexcept {
    return last_arrival_;
  }
  /// All sources idle, every queue empty, nothing in flight.
  [[nodiscard]] bool idle() const noexcept;
  [[nodiscard]] bool draining() const noexcept { return draining_; }
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }
  [[nodiscard]] SessionInfo info() const;
  [[nodiscard]] const ServerConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::size_t num_tasks() const noexcept {
    return workloads_.size();
  }
  [[nodiscard]] std::size_t num_tenants() const noexcept {
    return tenants_.empty() ? 1 : tenants_.size();
  }
  /// Pending work under the scheduler's cost model (queued batches +
  /// in-flight remainders), in cycles at the current clock. A simulated
  /// quantity, so routers may use it as a load signal without breaking
  /// the any-worker-count determinism contract.
  [[nodiscard]] sim::Cycle pending_cost_cycles() const noexcept {
    return scheduler_.backlog_cycles(simulator_.now());
  }

 private:
  // The serving pipeline stages, each a sim::Module (defined in
  // session.cpp; nested so they reach the session's internals).
  class Frontend;
  class BatchStage;
  class Dispatch;

  /// Merged arrival source: the earlier of the generator's next emission
  /// and the injected queue's front (generator wins ties, preserving the
  /// closed-loop ordering when both fire on one cycle).
  [[nodiscard]] std::optional<InferenceRequest> poll_arrival(sim::Cycle now);
  [[nodiscard]] sim::Cycle next_arrival() const noexcept;
  [[nodiscard]] bool sources_exhausted() const noexcept {
    return generator_.exhausted() && injected_.empty();
  }
  /// Sub-size leftovers flush immediately (drain mode): explicit drain,
  /// or auto_drain with idle sources (the closed-loop end-of-run).
  [[nodiscard]] bool drain_ready() const noexcept {
    return (draining_ || options_.auto_drain) && sources_exhausted();
  }
  /// SLO deadline for a submitted request (tenant override, else task).
  [[nodiscard]] sim::Cycle deadline_for(std::size_t task,
                                        TenantId tenant) const noexcept;

  ServerConfig config_;  ///< resolved: WFQ weights + obs sinks threaded
  SessionOptions options_;
  std::vector<TaskWorkload> workloads_;
  std::vector<TenantConfig> tenants_;  ///< live registry (set_tenant)
  SloConfig slo_;                      ///< live SLO table (set_slo)
  TrafficGenerator generator_;
  AdmissionController admission_;
  Batcher batcher_;
  Scheduler scheduler_;
  ServingMetrics metrics_;
  sim::Cycle last_completion_ = 0;
  sim::Simulator simulator_;
  std::unique_ptr<Frontend> frontend_;
  std::unique_ptr<BatchStage> batch_stage_;
  std::unique_ptr<Dispatch> dispatch_;

  std::deque<InferenceRequest> injected_;  ///< arrival-ordered
  std::vector<std::size_t> cursors_;  ///< submit(): per-task round-robin
  std::vector<Completion> outbox_;
  RequestId next_injected_id_ = 0;
  std::size_t injected_emitted_ = 0;
  sim::Cycle last_arrival_ = 0;
  bool draining_ = false;
  bool finalized_ = false;

  std::optional<sim::Cycle> watchdog_start_;  ///< clock at first step
  bool wall_running_ = false;
  std::chrono::steady_clock::time_point wall_start_{};
  double wall_seconds_ = 0.0;
};

}  // namespace mann::serve
