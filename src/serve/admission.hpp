// Admission controller: the first stage of the serving control plane
// (admission -> queueing -> dispatch).
//
// Sits in front of the Batcher and judges every arriving request against
// three policies, all deterministic functions of simulated state:
//
//   * quota    — a per-tenant token bucket (TenantConfig's
//                quota_interarrival_cycles / quota_burst) bounds the
//                tenant's admitted rate; a bursty tenant that exceeds its
//                contract is shed here before it can displace anyone.
//   * overload — tiered load shedding: once the stack's pending-request
//                occupancy crosses a watermark, the lowest-priority
//                tiers are shed first, with progressively higher tiers
//                shed as occupancy keeps climbing (graceful degradation
//                instead of indiscriminate queue-full drops).
//   * doom     — a request whose deadline is unmeetable even under the
//                scheduler's cost model (observed service cycles plus
//                the pool's current backlog) is shed on arrival instead
//                of burning a device slot on an answer that is already
//                late.
//
// The controller also owns the unified rejection accounting: every shed
// — including the batcher's legacy full-queue reject, which the server
// reports here — lands in one ShedReason-tagged ShedCounters path, per
// tenant and in aggregate, so ServingReport::rejected totals are
// consistent everywhere.
//
// A default-constructed AdmissionConfig is transparent (no quotas
// configured, doom shedding off, overload shedding off): the stack
// behaves exactly like the pre-admission runtime, which keeps the
// FIFO/EDF escape hatches bit-identical to their historical baselines.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/request.hpp"
#include "serve/tenant.hpp"
#include "sim/types.hpp"

namespace mann::serve {

struct AdmissionConfig {
  /// Honour per-tenant token-bucket quotas (no-op for tenants without a
  /// configured quota).
  bool enforce_quotas = true;
  /// Shed requests whose deadline the cost model proves unmeetable.
  /// Off by default: it changes which requests complete, so it is an
  /// opt-in policy, not ambient behaviour.
  bool shed_doomed = false;
  /// Weight of the pool backlog in the doom ETA. 0 sheds only on the
  /// optimistic bound (service time alone misses the deadline); 1 adds
  /// the full per-device backlog to the estimate.
  double doom_backlog_factor = 1.0;
  /// Pending-request count treated as occupancy 1.0 by tiered overload
  /// shedding; 0 disables overload shedding entirely.
  std::size_t overload_pending_requests = 0;
  /// Occupancy at which the lowest-priority tier starts shedding; higher
  /// tiers shed at thresholds spaced evenly between here and full
  /// occupancy (tier 0 last).
  double overload_watermark = 0.75;
};

/// Snapshot of downstream state a decision is judged against. The server
/// assembles it per arrival from the batcher and the scheduler so the
/// controller itself stays a pure, separately testable policy function.
struct AdmissionOutlook {
  /// Requests pending anywhere upstream of a device (batcher lanes plus
  /// scheduler queues).
  std::size_t pending_requests = 0;
  /// Observed service cycles for the request's task (0 = not yet
  /// observed; the doom test never fires blind).
  sim::Cycle service_estimate = 0;
  /// Pool backlog normalized per device slot, in cycles.
  sim::Cycle backlog_cycles_per_device = 0;
};

class AdmissionController {
 public:
  /// `tenants` is the shared registry (empty = single default tenant
  /// that is never quota-limited and sits in tier 0). `metrics`, when
  /// set, receives "serve.admission.*" counters (non-owning; may be
  /// null).
  AdmissionController(AdmissionConfig config,
                      std::vector<TenantConfig> tenants,
                      obs::MetricsRegistry* metrics = nullptr);

  [[nodiscard]] const AdmissionConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::size_t num_tenants() const noexcept {
    return num_tenants_;
  }

  /// Judges an arriving request: nullopt admits it; otherwise the reason
  /// it must be shed (the caller records the shed — decide() itself only
  /// consumes quota tokens). Throws std::out_of_range for a tenant id
  /// outside the registry.
  [[nodiscard]] std::optional<ShedReason> decide(
      const InferenceRequest& request, sim::Cycle now,
      const AdmissionOutlook& outlook);

  /// Records a shed — from decide(), or discovered downstream (the
  /// batcher's full-queue reject arrives here as kQueueFull).
  void record_shed(TenantId tenant, ShedReason reason);
  /// Records a successful admission (request entered the batcher).
  void record_admitted(TenantId tenant);

  /// Live reconfiguration: replaces one tenant's contract mid-run. The
  /// token bucket keeps its refill timestamp and clamps its balance to
  /// the new burst, so a quota tightened mid-run bites immediately
  /// without ever minting retroactive credit. The registry size is fixed
  /// at construction (tenants cannot be added live): out-of-range ids —
  /// including any id when the registry is empty — throw
  /// std::out_of_range, and invalid quota knobs throw
  /// std::invalid_argument (the original contract is kept either way).
  void set_tenant(TenantId tenant, const TenantConfig& config);

  [[nodiscard]] const std::vector<TenantConfig>& tenants() const noexcept {
    return tenants_;
  }

  [[nodiscard]] const ShedCounters& sheds() const noexcept { return sheds_; }
  [[nodiscard]] const std::vector<ShedCounters>& tenant_sheds()
      const noexcept {
    return tenant_sheds_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& tenant_admitted()
      const noexcept {
    return tenant_admitted_;
  }

 private:
  struct Bucket {
    double tokens = 0.0;
    sim::Cycle last_refill = 0;
  };

  [[nodiscard]] const TenantConfig& tenant_config(TenantId tenant) const;

  AdmissionConfig config_;
  std::vector<TenantConfig> tenants_;
  TenantConfig default_tenant_;  ///< served when the registry is empty
  std::size_t num_tenants_ = 1;
  std::uint32_t max_tier_ = 0;
  std::vector<Bucket> buckets_;
  ShedCounters sheds_;
  std::vector<ShedCounters> tenant_sheds_;
  std::vector<std::uint64_t> tenant_admitted_;
  // Mirrored obs instruments (null without a registry); shed counters
  // indexed by ShedReason.
  obs::Counter* obs_admitted_ = nullptr;
  std::array<obs::Counter*, kShedReasonCount> obs_sheds_{};
};

}  // namespace mann::serve
