// ServingOptions: a fluent builder over ServerConfig.
//
// ServerConfig grew one nested config per control-plane stage, and the
// call sites grew with it — a dozen lines of field-by-field assignment
// (src/runtime/measurement.cpp was the worst offender) before a Server
// could be constructed. The builder collapses that into a chain that
// names only what deviates from the defaults:
//
//   serve::Server server(serve::ServingOptions()
//                            .tenants(registry)
//                            .slo(slos)
//                            .policy(serve::SchedulerPolicy::kEdf)
//                            .metrics(&registry),
//                        std::move(models));
//
// Defaults (all inherited from the nested configs — the builder never
// invents its own):
//   * accel      — AccelConfig{}: 200 MHz clock, default FIFO depths,
//                  ITH off.
//   * traffic    — TrafficConfig{}: Poisson arrivals at one request per
//                  50k cycles, no SLOs, single default tenant, seed 2019.
//   * admission  — AdmissionConfig{}: transparent (quota enforcement on
//                  but no tenant carries a quota; doom/overload off).
//   * batcher    — BatcherConfig{}: batch up to 8, flush at 200k cycles,
//                  lanes bounded at 64.
//   * scheduler  — SchedulerConfig{}: EDF over 1 device, no stealing,
//                  sequential host execution.
//   * power      — FpgaPowerConfig{}: the calibrated board model.
//   * watchdog   — 20e9 cycles; histogram_bins 64; obs sinks null.
//
// The builder is a value: copy it to fork a baseline into variants. It
// intentionally has no behaviour beyond accumulation — build() hands the
// finished ServerConfig to Server, and every validity check stays where
// it always lived (the component constructors).
#pragma once

#include <utility>
#include <vector>

#include "serve/server.hpp"

namespace mann::serve {

class ServingOptions {
 public:
  /// Per-device accelerator config (clock, FIFOs, ITH…).
  ServingOptions& accel(accel::AccelConfig value) {
    config_.accel = std::move(value);
    return *this;
  }
  /// Arrival process + trace + SLOs + tenant registry, wholesale.
  /// tenants()/slo() below touch just their slice of it.
  ServingOptions& traffic(TrafficConfig value) {
    config_.traffic = std::move(value);
    return *this;
  }
  /// Admission policy (quotas, doom/overload shedding).
  ServingOptions& admission(AdmissionConfig value) {
    config_.admission = value;
    return *this;
  }
  ServingOptions& batcher(BatcherConfig value) {
    config_.batcher = value;
    return *this;
  }
  /// Dispatch policy block (devices, stealing, workers, cycle cache).
  /// policy() below switches just the policy enum.
  ServingOptions& scheduler(SchedulerConfig value) {
    config_.scheduler = std::move(value);
    return *this;
  }
  ServingOptions& power(power::FpgaPowerConfig value) {
    config_.power = value;
    return *this;
  }
  ServingOptions& watchdog_cycles(sim::Cycle value) {
    config_.watchdog_cycles = value;
    return *this;
  }
  ServingOptions& histogram_bins(std::size_t value) {
    config_.histogram_bins = value;
    return *this;
  }

  /// Tenant registry — the single source of truth every control-plane
  /// stage shares (generator shares, admission quotas/tiers, batcher
  /// lanes, WFQ weights). Empty = single default tenant.
  ServingOptions& tenants(std::vector<TenantConfig> value) {
    config_.traffic.tenants = std::move(value);
    return *this;
  }
  /// Per-task SLO deadlines stamped on every arrival.
  ServingOptions& slo(SloConfig value) {
    config_.traffic.slo = std::move(value);
    return *this;
  }
  /// Dispatch policy (kFifo / kEdf / kWfq). Under kWfq, weights default
  /// to the tenant registry's unless scheduler().tenant_weights says
  /// otherwise.
  ServingOptions& policy(SchedulerPolicy value) {
    config_.scheduler.policy = value;
    return *this;
  }
  /// Metrics registry every stage publishes into (non-owning; null ok).
  ServingOptions& metrics(obs::MetricsRegistry* value) {
    config_.metrics = value;
    return *this;
  }
  /// Lifecycle/occupancy trace recorder (non-owning; null ok).
  ServingOptions& trace_recorder(obs::TraceRecorder* value) {
    config_.trace = value;
    return *this;
  }

  /// The accumulated config (validated by the component constructors at
  /// Server/ServerSession construction, exactly as always).
  [[nodiscard]] const ServerConfig& build() const noexcept {
    return config_;
  }

 private:
  ServerConfig config_;
};

}  // namespace mann::serve
