#include "serve/trace.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace mann::serve {

namespace {

[[nodiscard]] bool parse_u64(const std::string& text, std::size_t begin,
                             std::size_t end, std::uint64_t& out) {
  if (begin >= end) {
    return false;
  }
  std::uint64_t value = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') {
      return false;
    }
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (~std::uint64_t{0} - digit) / 10) {
      return false;  // overflow
    }
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

[[nodiscard]] std::string trimmed(const std::string& line) {
  std::size_t begin = 0;
  std::size_t end = line.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(line[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(line[end - 1])) != 0) {
    --end;
  }
  return line.substr(begin, end - begin);
}

}  // namespace

std::vector<TraceEntry> load_trace_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_trace_csv: cannot open " + path);
  }
  std::vector<TraceEntry> entries;
  std::string raw;
  std::size_t line_number = 0;
  while (std::getline(in, raw)) {
    ++line_number;
    const std::string line = trimmed(raw);
    if (line.empty() || line.front() == '#') {
      continue;
    }
    // Either versioned header row is tolerated anywhere digits are
    // expected to start; anything else non-numeric is a hard error.
    if (line == "arrival_cycle,task_id" ||
        line == "arrival_cycle,task_id,tenant_id") {
      continue;
    }
    const auto fail = [&](const std::string& what) {
      throw std::runtime_error("load_trace_csv: " + path + ":" +
                               std::to_string(line_number) + ": " + what +
                               ", got '" + line + "'");
    };
    const std::size_t comma = line.find(',');
    if (comma == std::string::npos) {
      fail("expected 'arrival_cycle,task_id[,tenant_id]'");
    }
    // v1 rows have two fields; v2 rows carry a third tenant_id field.
    const std::size_t second_comma = line.find(',', comma + 1);
    const std::size_t task_end =
        second_comma == std::string::npos ? line.size() : second_comma;
    std::uint64_t cycle = 0;
    std::uint64_t task = 0;
    std::uint64_t tenant = 0;
    if (!parse_u64(line, 0, comma, cycle) ||
        !parse_u64(line, comma + 1, task_end, task)) {
      fail("expected 'arrival_cycle,task_id[,tenant_id]'");
    }
    if (second_comma != std::string::npos) {
      if (!parse_u64(line, second_comma + 1, line.size(), tenant) ||
          tenant > std::numeric_limits<TenantId>::max()) {
        fail("expected a tenant_id in the third column");
      }
    }
    if (!entries.empty() && cycle < entries.back().arrival_cycle) {
      throw std::runtime_error("load_trace_csv: " + path + ":" +
                               std::to_string(line_number) +
                               ": arrival cycles must be non-decreasing");
    }
    entries.push_back({cycle, static_cast<std::size_t>(task),
                       static_cast<TenantId>(tenant)});
  }
  return entries;
}

void save_trace_csv(const std::string& path,
                    const std::vector<TraceEntry>& entries) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("save_trace_csv: cannot write " + path);
  }
  out << "arrival_cycle,task_id,tenant_id\n";
  for (const TraceEntry& e : entries) {
    out << e.arrival_cycle << ',' << e.task << ',' << e.tenant << '\n';
  }
  if (!out) {
    throw std::runtime_error("save_trace_csv: write failed on " + path);
  }
}

namespace {

/// SplitMix64 — the seeding mixer numeric::Rng also builds on; used here
/// as a stateless hash so every replica's jitter is a pure function of
/// (seed, row, replica) and never of iteration order.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

std::vector<TraceEntry> scale_trace(const std::vector<TraceEntry>& entries,
                                    std::size_t factor, std::uint64_t seed) {
  if (entries.empty() || factor <= 1) {
    return entries;
  }
  // Each row's replicas jitter within [arrival, arrival + gap), where gap
  // is the distance to the next row (mean gap for the tail row, so the
  // trace does not pile its last factor replicas on one cycle).
  const sim::Cycle span =
      entries.back().arrival_cycle - entries.front().arrival_cycle;
  const sim::Cycle mean_gap =
      entries.size() > 1
          ? std::max<sim::Cycle>(1, span / (entries.size() - 1))
          : 1;
  std::vector<TraceEntry> scaled;
  scaled.reserve(entries.size() * factor);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const TraceEntry& row = entries[i];
    scaled.push_back(row);
    const sim::Cycle gap =
        i + 1 < entries.size()
            ? std::max<sim::Cycle>(
                  1, entries[i + 1].arrival_cycle - row.arrival_cycle)
            : mean_gap;
    for (std::size_t r = 1; r < factor; ++r) {
      TraceEntry replica = row;
      replica.arrival_cycle =
          row.arrival_cycle + mix64(seed ^ mix64(i) ^ (r * 0x2545F4914F6CDD1DULL)) % gap;
      scaled.push_back(replica);
    }
  }
  // Jitter keeps replicas inside their local gap, but equal-cycle source
  // rows still interleave; one stable sort restores a valid schedule
  // while keeping the construction order deterministic on ties.
  std::stable_sort(scaled.begin(), scaled.end(),
                   [](const TraceEntry& a, const TraceEntry& b) {
                     return a.arrival_cycle < b.arrival_cycle;
                   });
  return scaled;
}

}  // namespace mann::serve
