// The serving runtime: generator -> admission -> batcher -> scheduler ->
// device pool, advanced by the shared sim::Simulator clock.
//
// The control plane is three explicit stages with tenant identity
// threaded end-to-end:
//
//   admission  (serve::AdmissionController — per-tenant quotas, tiered
//               overload shedding, doom shedding against the scheduler's
//               cost model; owns the unified ShedReason accounting)
//   queueing   (serve::Batcher — per-(task, tenant) lanes)
//   dispatch   (serve::Scheduler — FIFO / EDF / tenant-WFQ policies)
//
// Each stage is a sim::Module ticked in dataflow order; the loop runs on
// Simulator::run_events, so stretches where nothing moves (waiting for
// the next arrival, devices grinding through a batch) are skipped in one
// jump while remaining cycle-exact at every decision point. This is the
// first consumer of accel::Accelerator that is not a one-shot experiment:
// devices stay warm across batches via RunOptions::model_resident.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "accel/accelerator.hpp"
#include "accel/compiler.hpp"
#include "data/types.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "power/power_model.hpp"
#include "serve/admission.hpp"
#include "serve/batcher.hpp"
#include "serve/metrics.hpp"
#include "serve/request.hpp"
#include "serve/scheduler.hpp"
#include "serve/tenant.hpp"
#include "sim/types.hpp"

namespace mann::serve {

/// One deployable model: its compiled device program plus the corpus of
/// encodable questions traffic is drawn from (non-owning).
struct ServedModel {
  accel::DeviceProgram program;
  std::span<const data::EncodedStory> stories;
};

struct ServerConfig {
  accel::AccelConfig accel;  ///< per-device config (clock, FIFOs, ITH…)
  /// Arrival process, per-task SLO deadlines (traffic.slo), the tenant
  /// registry (traffic.tenants — shared by every control-plane stage)
  /// and — for trace replay — the recorded schedule.
  TrafficConfig traffic;
  /// Admission policy knobs (quota enforcement, doom/overload shedding).
  /// The default is transparent: nothing is shed except full queues.
  AdmissionConfig admission;
  BatcherConfig batcher;
  /// Dispatch policy (EDF/FIFO/WFQ), work-stealing, eviction policy and
  /// the host-parallel execution knobs. Under kWfq, empty tenant_weights
  /// are filled from the tenant registry.
  SchedulerConfig scheduler;
  /// Board power model folded into the report's serving-energy figures.
  power::FpgaPowerConfig power;
  /// Serving-level watchdog (independent of the per-batch accel watchdog).
  sim::Cycle watchdog_cycles = 20'000'000'000ULL;
  std::size_t histogram_bins = 64;
  /// Observability sinks (non-owning, both optional; no-ops when the
  /// layer is compiled out). `metrics` receives every control-plane
  /// stage's instruments; `trace` receives per-request lifecycle spans
  /// plus device/worker occupancy, exportable via
  /// obs::write_chrome_trace().
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
};

class Server {
 public:
  Server(ServerConfig config, std::vector<ServedModel> models);

  [[nodiscard]] const ServerConfig& config() const noexcept {
    return config_;
  }

  /// Serves `total_requests` drawn from the traffic config to completion
  /// (every admitted request answered, queues drained) and reports.
  [[nodiscard]] ServingReport run(std::size_t total_requests) const;

 private:
  ServerConfig config_;
  std::vector<ServedModel> models_;
};

}  // namespace mann::serve
