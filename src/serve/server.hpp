// The serving runtime: generator -> admission -> batcher -> scheduler ->
// device pool, advanced by the shared sim::Simulator clock.
//
// The control plane is three explicit stages with tenant identity
// threaded end-to-end:
//
//   admission  (serve::AdmissionController — per-tenant quotas, tiered
//               overload shedding, doom shedding against the scheduler's
//               cost model; owns the unified ShedReason accounting)
//   queueing   (serve::Batcher — per-(task, tenant) lanes)
//   dispatch   (serve::Scheduler — FIFO / EDF / tenant-WFQ policies)
//
// Each stage is a sim::Module ticked in dataflow order; the loop runs on
// Simulator::run_events, so stretches where nothing moves (waiting for
// the next arrival, devices grinding through a batch) are skipped in one
// jump while remaining cycle-exact at every decision point. This is the
// first consumer of accel::Accelerator that is not a one-shot experiment:
// devices stay warm across batches via RunOptions::model_resident.
//
// Two ways to drive it:
//
//   * run(n) — the closed-loop one-shot: serve n generated requests to
//     completion and report. Implemented as a thin composition over the
//     incremental API below and bit-identical to the historical loop.
//   * start()/submit()/step()/poll_completions()/drain()/finalize() —
//     the incremental session API (serve/session.hpp): an outside driver
//     (tools/mann_served, a test harness) feeds arrivals in, advances
//     the clock in bounded steps, drains resolved requests as
//     serve::Completion records, and reconfigures tenants/SLOs/policy
//     mid-run.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "accel/accelerator.hpp"
#include "accel/compiler.hpp"
#include "data/types.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "power/power_model.hpp"
#include "serve/admission.hpp"
#include "serve/batcher.hpp"
#include "serve/metrics.hpp"
#include "serve/outcome.hpp"
#include "serve/request.hpp"
#include "serve/scheduler.hpp"
#include "serve/tenant.hpp"
#include "sim/types.hpp"

namespace mann::serve {

class ServingOptions;  // serve/options.hpp — fluent ServerConfig builder
class ServerSession;   // serve/session.hpp — the incremental session
struct SessionOptions;
struct SubmitRequest;
struct SessionInfo;

/// One deployable model: its compiled device program plus the corpus of
/// encodable questions traffic is drawn from (non-owning).
struct ServedModel {
  accel::DeviceProgram program;
  std::span<const data::EncodedStory> stories;
};

struct ServerConfig {
  accel::AccelConfig accel;  ///< per-device config (clock, FIFOs, ITH…)
  /// Arrival process, per-task SLO deadlines (traffic.slo), the tenant
  /// registry (traffic.tenants — shared by every control-plane stage)
  /// and — for trace replay — the recorded schedule.
  TrafficConfig traffic;
  /// Admission policy knobs (quota enforcement, doom/overload shedding).
  /// The default is transparent: nothing is shed except full queues.
  AdmissionConfig admission;
  BatcherConfig batcher;
  /// Dispatch policy (EDF/FIFO/WFQ), work-stealing, eviction policy and
  /// the host-parallel execution knobs. Under kWfq, empty tenant_weights
  /// are filled from the tenant registry.
  SchedulerConfig scheduler;
  /// Board power model folded into the report's serving-energy figures.
  power::FpgaPowerConfig power;
  /// Serving-level watchdog (independent of the per-batch accel watchdog).
  sim::Cycle watchdog_cycles = 20'000'000'000ULL;
  std::size_t histogram_bins = 64;
  /// Observability sinks (non-owning, both optional; no-ops when the
  /// layer is compiled out). `metrics` receives every control-plane
  /// stage's instruments; `trace` receives per-request lifecycle spans
  /// plus device/worker occupancy, exportable via
  /// obs::write_chrome_trace().
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
};

class Server {
 public:
  /// Preferred: build the config with the serve::ServingOptions fluent
  /// builder (serve/options.hpp) and hand it over.
  Server(const ServingOptions& options, std::vector<ServedModel> models);

  /// Legacy shim: direct field-by-field ServerConfig construction.
  /// Prefer the ServingOptions overload above — this one stays only so
  /// existing call sites keep compiling unchanged.
  Server(ServerConfig config, std::vector<ServedModel> models);

  ~Server();
  Server(Server&&) noexcept;
  Server& operator=(Server&&) noexcept;

  [[nodiscard]] const ServerConfig& config() const noexcept {
    return config_;
  }

  /// Serves `total_requests` drawn from the traffic config to completion
  /// (every admitted request answered, queues drained) and reports. A
  /// thin closed loop over the incremental API: it opens a private
  /// auto-draining session, steps it to quiescence and finalizes —
  /// bit-identical to the historical single-call implementation.
  [[nodiscard]] ServingReport run(std::size_t total_requests) const;

  // ---- incremental API ----
  //
  // One active session at a time, owned by the server; each method
  // below delegates to it (std::logic_error when no session is active).
  // For full control — several concurrent sessions, custom options
  // wiring — construct serve::ServerSession directly; these wrappers are
  // the convenient 90% path.

  /// Opens the session. Throws std::logic_error if one is already
  /// active (finalize() first).
  ServerSession& start(const SessionOptions& options);
  ServerSession& start();

  /// Injects one request into the active session (see
  /// SubmitRequest/ServerSession::submit for arrival/deadline rules).
  RequestId submit(const SubmitRequest& request);

  /// Advances the active session up to `cycles` simulated cycles
  /// (0 = to quiescence); true when quiescent.
  bool step(sim::Cycle cycles);

  /// Drains the active session's resolved requests — completions and
  /// sheds — as a deterministic (cycle, id)-sorted stream.
  [[nodiscard]] std::vector<Completion> poll_completions();

  /// Switches the active session to drain mode (sub-size batches flush
  /// immediately; the end-of-stream signal).
  void drain();

  /// Runs the active session to quiescence, closes it and returns its
  /// ServingReport. A new session may be start()ed afterwards.
  [[nodiscard]] ServingReport finalize();

  /// The active session, or nullptr outside start()..finalize().
  [[nodiscard]] ServerSession* session() noexcept { return session_.get(); }

 private:
  [[nodiscard]] ServerSession& active_session();

  ServerConfig config_;
  std::vector<ServedModel> models_;
  std::unique_ptr<ServerSession> session_;
};

}  // namespace mann::serve
