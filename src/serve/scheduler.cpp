#include "serve/scheduler.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <tuple>
#include <utility>

namespace mann::serve {

const char* scheduler_policy_name(SchedulerPolicy policy) noexcept {
  switch (policy) {
    case SchedulerPolicy::kFifo:
      return "fifo";
    case SchedulerPolicy::kEdf:
      return "edf";
    case SchedulerPolicy::kWfq:
      return "wfq";
  }
  return "unknown";
}

Scheduler::Scheduler(SchedulerConfig config,
                     std::vector<accel::Accelerator> task_devices)
    : config_(config), task_devices_(std::move(task_devices)) {
  if (config_.devices == 0) {
    throw std::invalid_argument("Scheduler: need at least one device");
  }
  if (task_devices_.empty()) {
    throw std::invalid_argument("Scheduler: no task programs");
  }
  config_.dedicated_devices =
      std::min(config_.dedicated_devices, config_.devices);
  queue_capacity_ = std::max<std::size_t>(1, config_.queue_capacity);
  slots_.resize(config_.devices);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    slots_[i].id = i;
  }
  // One shard per dedicated slot (a single shared shard when the whole
  // pool is shared); under kWfq each shard fans out into one EDF lane
  // per tenant weight. The lanes order themselves by the policy (WFQ
  // lanes are EDF within the tenant).
  shards_ = config_.dedicated_devices > 0 ? config_.dedicated_devices : 1;
  if (config_.policy == SchedulerPolicy::kWfq) {
    tenant_lanes_ = std::max<std::size_t>(1, config_.tenant_weights.size());
    tenants_.resize(tenant_lanes_);
    for (std::size_t t = 0; t < config_.tenant_weights.size(); ++t) {
      if (config_.tenant_weights[t] <= 0.0) {
        throw std::invalid_argument(
            "Scheduler: WFQ tenant weights must be > 0");
      }
      tenants_[t].weight = config_.tenant_weights[t];
    }
  }
  const SchedulerPolicy order = config_.policy == SchedulerPolicy::kFifo
                                    ? SchedulerPolicy::kFifo
                                    : SchedulerPolicy::kEdf;
  queues_.assign(shards_ * tenant_lanes_, PendingQueue(PendingOrder{order}));
  task_dispatches_.resize(task_devices_.size(), 0);
  task_cycles_.resize(task_devices_.size());
  speculation_tail_.resize(shards_);
  eviction_ = make_eviction_policy(config_.eviction, config_.metrics);
  cache_ = config_.cycle_cache;
  if (cache_ == nullptr && config_.workers > 0) {
    owned_cache_ = std::make_unique<accel::ServiceCycleCache>(
        config_.cache_capacity == 0 ? 1 : config_.cache_capacity,
        config_.metrics,
        config_.cache_segments == 0 ? 1 : config_.cache_segments);
    // Cost-informed sizing for the owned cache: evict the entry cheapest
    // to re-simulate (its cycles ARE its reload cost), and refuse entries
    // below the admission floor outright. External caches are configured
    // by their owner (the bench's persistent cache wants everything).
    owned_cache_->set_eviction_policy(EvictionPolicyKind::kCostAware,
                                      nullptr);
    if (config_.cycle_cache_min_cycles > 0) {
      owned_cache_->set_admission_floor(config_.cycle_cache_min_cycles);
    }
    cache_ = owned_cache_.get();
  }
  if (config_.workers > 0) {
    pool_ = std::make_unique<WorkerPool>(config_.workers, config_.metrics);
  }
  trace_ = config_.trace;
  obs_dispatches_ = obs::counter(config_.metrics, "serve.scheduler.dispatches");
  obs_model_uploads_ =
      obs::counter(config_.metrics, "serve.scheduler.model_uploads");
  obs_model_evictions_ =
      obs::counter(config_.metrics, "serve.scheduler.model_evictions");
  obs_stolen_batches_ =
      obs::counter(config_.metrics, "serve.scheduler.stolen_batches");
  obs_speculations_ =
      obs::counter(config_.metrics, "serve.scheduler.speculations");
  obs_queue_wait_ =
      obs::histogram(config_.metrics, "serve.scheduler.queue_wait_cycles");
}

std::size_t Scheduler::queue_for(std::size_t task) const noexcept {
  return config_.dedicated_devices > 0 ? task % config_.dedicated_devices
                                       : 0;
}

bool Scheduler::shard_empty(std::size_t shard) const noexcept {
  for (std::size_t lane = 0; lane < tenant_lanes_; ++lane) {
    if (!queues_[lane_index(shard, lane)].empty()) {
      return false;
    }
  }
  return true;
}

bool Scheduler::submit(Batch batch) {
  if (batch.task >= task_devices_.size()) {
    throw std::out_of_range("Scheduler: unknown task id");
  }
  if (batch.requests.empty()) {
    throw std::invalid_argument("Scheduler: empty batch");
  }
  if (tenant_lanes_ > 1 && batch.tenant >= tenant_lanes_) {
    throw std::out_of_range("Scheduler: batch tenant outside the WFQ "
                            "weight registry");
  }
  if (!has_capacity()) {
    ++pending_stats_.full_rejects;
    return false;
  }
  const std::int8_t predicted = pool_ != nullptr ? speculate(batch) : -1;
  const std::size_t lane = tenant_lanes_ > 1 ? batch.tenant : 0;
  if (tenant_lanes_ > 1) {
    TenantQueueState& tenant = tenants_[lane];
    if (tenant.pending == 0) {
      // (Re)activation: a tenant returning from idle resumes at the
      // current virtual time instead of cashing in credit for the
      // capacity it never used.
      tenant.virtual_finish =
          std::max(tenant.virtual_finish, global_virtual_);
    }
    ++tenant.pending;
  }
  const std::size_t index = lane_index(queue_for(batch.task), lane);
  pending_stories_ += batch.size();
  queues_[index].insert({std::move(batch), next_seq_++, predicted});
  ++pending_total_;
  ++pending_stats_.pushes;
  pending_stats_.max_occupancy =
      std::max(pending_stats_.max_occupancy, pending_total_);
  return true;
}

bool Scheduler::task_resident_anywhere(std::size_t task) const noexcept {
  for (const Slot& slot : slots_) {
    if (slot.resident_task == task) {
      return true;
    }
  }
  return false;
}

sim::Cycle Scheduler::reload_estimate(std::size_t task) const noexcept {
  const TaskCycleEstimate& est = task_cycles_[task];
  if (est.cold > 0 && est.warm > 0 && est.cold > est.warm) {
    return est.cold - est.warm;  // the pure model-upload delta
  }
  return est.cold;  // warm variant not yet observed: whole cold run
}

sim::Cycle Scheduler::service_estimate(std::size_t task) const noexcept {
  if (task >= task_cycles_.size()) {
    return 0;
  }
  const TaskCycleEstimate& est = task_cycles_[task];
  return est.warm > 0 ? est.warm : est.cold;
}

sim::Cycle Scheduler::backlog_cycles(sim::Cycle now) const noexcept {
  sim::Cycle total = 0;
  for (const Slot& slot : slots_) {
    if (slot.busy_until > now) {
      total += slot.busy_until - now;
    }
  }
  for (const PendingQueue& queue : queues_) {
    for (const PendingBatch& pending : queue) {
      total += service_estimate(pending.batch.task);
    }
  }
  return total;
}

std::int8_t Scheduler::speculate(const Batch& batch) {
  // Predict the warm/cold variant the dispatch will need. A mispredict
  // never affects correctness — dispatch simulates the variant it needs
  // inline — it only wastes the worker's run, so the predictor's job is
  // purely to keep workers useful.
  bool warm = false;
  if (config_.affinity_speculation) {
    // Affinity predictor: within a shard, submit order approximates
    // dispatch order, so the shard's most recently *submitted* task is
    // the best estimate of what its slot will hold when this batch
    // reaches the device. That beats global residency in both regimes:
    // under churn (more tasks than slots) consecutive same-task batches
    // still predict warm while everything else correctly predicts cold,
    // and on small task sets it predicts warm one submit earlier than
    // waiting to observe residency. Before the shard's first submit,
    // fall back to current residency (the home slot's for a dedicated
    // shard, anywhere for the shared pool).
    const std::size_t shard = queue_for(batch.task);
    if (const auto& tail = speculation_tail_[shard]; tail.has_value()) {
      warm = *tail == batch.task;
    } else if (config_.dedicated_devices > 0) {
      warm = slots_[shard].resident_task == batch.task;
    } else {
      warm = task_resident_anywhere(batch.task);
    }
    speculation_tail_[shard] = batch.task;
  } else {
    // Legacy heuristic (PR 2): warm once resident anywhere, except in
    // the churn regime where eviction rarely lets residency survive from
    // submit to dispatch.
    const bool churn = task_devices_.size() > slots_.size();
    warm = !churn && task_resident_anywhere(batch.task);
  }
  ++speculation_.speculated;
  auto stories = std::make_shared<const std::vector<data::EncodedStory>>(
      batch.stories);
  const accel::Accelerator& device = task_devices_[batch.task];
  accel::ServiceCycleCache* cache = cache_;
  obs::add(obs_speculations_);
  obs::TraceRecorder* trace = trace_;
  const auto task = static_cast<std::int64_t>(batch.task);
  pool_->submit([&device, cache, stories, warm, trace, task] {
    accel::RunOptions options;
    options.model_resident = warm;
    options.cycle_cache = cache;
    accel::CacheOutcome outcome = accel::CacheOutcome::kNone;
    options.cache_outcome = &outcome;
    const std::uint64_t start_ns = trace != nullptr ? trace->wall_ns() : 0;
    try {
      (void)device.run(*stories, options);
    } catch (...) {
      // Speculation is best-effort: a failing workload (e.g. watchdog)
      // fails again — with a proper throw — when dispatched inline.
    }
    if (trace != nullptr) {
      // Host-domain span on the worker's own track: where the wall
      // clock went, never part of the deterministic simulated slice.
      const std::uint32_t track =
          obs::kTrackWorkerBase +
          static_cast<std::uint32_t>(WorkerPool::current_worker() ==
                                             WorkerPool::kNotAWorker
                                         ? 0
                                         : WorkerPool::current_worker());
      trace->complete(obs::Domain::kHost, track, "speculate", start_ns,
                      trace->wall_ns() - start_ns,
                      accel::cache_outcome_name(outcome), task);
    }
  });
  return warm ? 1 : 0;
}

bool Scheduler::set_policy(SchedulerPolicy policy) {
  if (policy == config_.policy) {
    return true;
  }
  if (policy == SchedulerPolicy::kWfq && tenant_lanes_ <= 1) {
    // The per-tenant lane layout is fixed at construction; without it
    // WFQ has nothing to arbitrate over (and tenants_ is unsized).
    return false;
  }
  // The queues' comparator is FIFO (seq) or EDF ((deadline, seq)); WFQ
  // lanes are EDF within the tenant. Re-key every pending batch when the
  // ordering changes; counters (pending totals, tenant lane bookkeeping)
  // describe membership, not order, so they carry over untouched.
  const auto order_of = [](SchedulerPolicy p) {
    return p == SchedulerPolicy::kFifo ? SchedulerPolicy::kFifo
                                       : SchedulerPolicy::kEdf;
  };
  if (order_of(policy) != order_of(config_.policy)) {
    for (PendingQueue& queue : queues_) {
      PendingQueue rekeyed(PendingOrder{order_of(policy)});
      while (!queue.empty()) {
        rekeyed.insert(std::move(queue.extract(queue.begin()).value()));
      }
      queue = std::move(rekeyed);
    }
  }
  config_.policy = policy;
  return true;
}

void Scheduler::set_tenant_weight(TenantId tenant, double weight) {
  if (weight <= 0.0) {
    throw std::invalid_argument("Scheduler: WFQ tenant weights must be > 0");
  }
  if (tenant < tenants_.size()) {
    tenants_[tenant].weight = weight;
  }
  if (tenant < config_.tenant_weights.size()) {
    config_.tenant_weights[tenant] = weight;
  }
}

void Scheduler::step(sim::Cycle now) {
  switch (config_.policy) {
    case SchedulerPolicy::kFifo:
      step_fifo(now);
      return;
    case SchedulerPolicy::kEdf:
      while (dispatch_best_edf(now)) {
      }
      return;
    case SchedulerPolicy::kWfq:
      while (dispatch_best_wfq(now)) {
      }
      return;
  }
}

Scheduler::PendingBatch Scheduler::pop_queue(std::size_t index) {
  PendingQueue& queue = queues_[index];
  auto node = queue.extract(queue.begin());
  PendingBatch pending = std::move(node.value());
  --pending_total_;
  ++pending_stats_.pops;
  pending_stories_ -= pending.batch.size();
  if (tenant_lanes_ > 1) {
    --tenants_[index % tenant_lanes_].pending;
  }
  return pending;
}

void Scheduler::step_fifo(sim::Cycle now) {
  // Legacy head-of-line order: the globally oldest batch waits for a
  // suitable slot before anything behind it dispatches (deterministic,
  // starvation-free, and exactly the pre-EDF timeline). Under kFifo the
  // queues order by seq, so each begin() is its shard's oldest batch.
  while (pending_total_ > 0) {
    std::size_t best_queue = queues_.size();
    std::uint64_t best_seq = 0;
    for (std::size_t q = 0; q < queues_.size(); ++q) {
      if (queues_[q].empty()) {
        continue;
      }
      const std::uint64_t seq = queues_[q].begin()->seq;
      if (best_queue == queues_.size() || seq < best_seq) {
        best_queue = q;
        best_seq = seq;
      }
    }
    Slot* slot =
        pick_slot_fifo(queues_[best_queue].begin()->batch.task, now);
    if (slot == nullptr) {
      return;  // head-of-line batch waits; nothing behind it jumps ahead
    }
    const PendingBatch pending = pop_queue(best_queue);
    dispatch(*slot, pending, now, /*stolen=*/false);
  }
}

Scheduler::Slot* Scheduler::pick_slot_fifo(std::size_t task,
                                           sim::Cycle now) {
  // Home slot first: per-task sharding keeps a task's program warm.
  if (config_.dedicated_devices > 0) {
    Slot& home = slots_[task % config_.dedicated_devices];
    if (home.free(now)) {
      return &home;
    }
  }
  // Overflow pool: prefer a warm slot (program already resident), then
  // the lowest-numbered free one (deterministic tie-break).
  Slot* fallback = nullptr;
  for (std::size_t i = config_.dedicated_devices; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (!slot.free(now)) {
      continue;
    }
    if (slot.resident_task == task) {
      return &slot;
    }
    if (fallback == nullptr) {
      fallback = &slot;
    }
  }
  return fallback;
}

bool Scheduler::steal_worthwhile(std::size_t home_queue, const Batch& batch,
                                 sim::Cycle now) const noexcept {
  // A steal must buy something. When the home slot holds the batch's
  // program, stealing forfeits a warm dispatch — it is only worth it if
  // the wait for home exceeds the model-reload cost the steal re-pays,
  // or if waiting would blow the batch's deadline. When home is *not*
  // warm for this task, the dispatch pays a cold upload wherever it
  // lands, so any idle slot beats waiting. All inputs are simulated
  // state, so the decision replays deterministically.
  const Slot& home = slots_[home_queue];
  const sim::Cycle wait =
      home.busy_until > now ? home.busy_until - now : 0;
  if (wait == 0) {
    return false;  // home is free; stealing could only hurt
  }
  if (home.resident_task != batch.task) {
    return true;  // cold either way: stealing purely saves the wait
  }
  const sim::Cycle reload = reload_estimate(batch.task);
  if (wait > reload) {
    return true;
  }
  if (batch.deadline != sim::kNever) {
    const TaskCycleEstimate& est = task_cycles_[batch.task];
    const sim::Cycle service = est.warm > 0 ? est.warm : est.cold;
    if (now + wait + service > batch.deadline) {
      return true;  // waiting misses the SLO; stealing might not
    }
  }
  return false;
}

bool Scheduler::slot_eligible(const Slot& slot, std::size_t q,
                              bool steal_ok, sim::Cycle now) const noexcept {
  // Eligible free slots for shard q: its home slot, the overflow pool,
  // and — when stealing is on and worth the reload — any foreign
  // dedicated slot that is idle (free with an empty shard).
  if (!slot.free(now)) {
    return false;
  }
  const std::size_t dedicated = config_.dedicated_devices;
  if (dedicated == 0 || slot.id >= dedicated || slot.id == q) {
    return true;
  }
  return steal_ok && shard_empty(slot.id);
}

bool Scheduler::dispatch_best_edf(sim::Cycle now) {
  if (pending_total_ == 0) {
    return false;
  }
  // Urgency key: deadline first (kNever sorts last, so SLO-free batches
  // degrade to submit order), admission sequence as the deterministic
  // tie-break. Each shard queue keeps that order, so its begin() is the
  // shard's most urgent batch. (Under a kEdf-constructed scheduler there
  // is exactly one tenant lane, so queue index == shard index; after a
  // live switch from kWfq the lanes persist and the shard is recovered
  // by dividing the lane count out — EDF then simply ignores tenant
  // identity, scanning every lane of every shard.)
  using Key = std::tuple<sim::Cycle, std::uint64_t>;
  const std::size_t dedicated = config_.dedicated_devices;

  std::size_t best_queue = queues_.size();
  std::size_t best_shard = 0;
  Key best_key{};
  for (std::size_t q = 0; q < queues_.size(); ++q) {
    const PendingQueue& queue = queues_[q];
    if (queue.empty()) {
      continue;
    }
    const std::size_t shard = q / tenant_lanes_;
    const PendingBatch& head = *queue.begin();
    const Key key{head.batch.deadline, head.seq};
    if (best_queue != queues_.size() && best_key < key) {
      continue;  // a more urgent shard already has a slot lined up
    }
    const bool steal_ok = config_.work_stealing && dedicated > 0 &&
                          steal_worthwhile(shard, head.batch, now);
    bool has_slot = false;
    for (const Slot& slot : slots_) {
      if (slot_eligible(slot, shard, steal_ok, now)) {
        has_slot = true;
        break;
      }
    }
    if (!has_slot) {
      continue;
    }
    best_queue = q;
    best_shard = shard;
    best_key = key;
  }
  if (best_queue == queues_.size()) {
    return false;
  }
  const PendingBatch pending = pop_queue(best_queue);
  // Rebuild the winner's eligible set once for the slot choice (same
  // inputs as the scan above, so the same slots qualify).
  const bool steal_ok = config_.work_stealing && dedicated > 0 &&
                        steal_worthwhile(best_shard, pending.batch, now);
  std::vector<Slot*> free_slots;
  for (Slot& slot : slots_) {
    if (slot_eligible(slot, best_shard, steal_ok, now)) {
      free_slots.push_back(&slot);
    }
  }
  Slot* slot = choose_slot_edf(free_slots, best_shard, pending.batch.task);
  const bool stolen =
      dedicated > 0 && slot->id < dedicated && slot->id != best_shard;
  dispatch(*slot, pending, now, stolen);
  return true;
}

bool Scheduler::dispatch_best_wfq(sim::Cycle now) {
  if (pending_total_ == 0) {
    return false;
  }
  const std::size_t dedicated = config_.dedicated_devices;
  using Key = std::tuple<sim::Cycle, std::uint64_t>;

  // Tenants in (virtual finish, id) order: the least-served active
  // tenant whose work can actually go wins the dispatch; a flooding
  // tenant only advances its own virtual time, so it cannot displace a
  // conforming tenant's turn.
  std::vector<std::size_t> order;
  order.reserve(tenant_lanes_);
  for (std::size_t lane = 0; lane < tenant_lanes_; ++lane) {
    if (tenants_[lane].pending > 0) {
      order.push_back(lane);
    }
  }
  std::sort(order.begin(), order.end(),
            [this](std::size_t a, std::size_t b) {
              if (tenants_[a].virtual_finish != tenants_[b].virtual_finish) {
                return tenants_[a].virtual_finish <
                       tenants_[b].virtual_finish;
              }
              return a < b;
            });

  for (const std::size_t lane : order) {
    // Within the tenant: EDF across its shard lanes, considering only
    // batches with an eligible slot (work-conserving, like kEdf).
    std::size_t best_index = queues_.size();
    std::size_t best_shard = 0;
    Key best_key{};
    for (std::size_t q = 0; q < shards_; ++q) {
      const std::size_t index = lane_index(q, lane);
      const PendingQueue& queue = queues_[index];
      if (queue.empty()) {
        continue;
      }
      const PendingBatch& head = *queue.begin();
      const Key key{head.batch.deadline, head.seq};
      if (best_index != queues_.size() && best_key < key) {
        continue;
      }
      const bool steal_ok = config_.work_stealing && dedicated > 0 &&
                            steal_worthwhile(q, head.batch, now);
      bool has_slot = false;
      for (const Slot& slot : slots_) {
        if (slot_eligible(slot, q, steal_ok, now)) {
          has_slot = true;
          break;
        }
      }
      if (!has_slot) {
        continue;
      }
      best_index = index;
      best_shard = q;
      best_key = key;
    }
    if (best_index == queues_.size()) {
      continue;  // this tenant's work is slot-blocked; try the next one
    }
    const PendingBatch pending = pop_queue(best_index);
    const bool steal_ok = config_.work_stealing && dedicated > 0 &&
                          steal_worthwhile(best_shard, pending.batch, now);
    std::vector<Slot*> free_slots;
    for (Slot& slot : slots_) {
      if (slot_eligible(slot, best_shard, steal_ok, now)) {
        free_slots.push_back(&slot);
      }
    }
    Slot* slot =
        choose_slot_edf(free_slots, best_shard, pending.batch.task);
    const bool stolen =
        dedicated > 0 && slot->id < dedicated && slot->id != best_shard;
    // Virtual-time charge: the global clock advances to the winner's
    // pre-charge level (the least-served active tenant defines "now"),
    // then the tenant pays stories/weight for the slot it just took.
    TenantQueueState& tenant = tenants_[lane];
    global_virtual_ = std::max(global_virtual_, tenant.virtual_finish);
    tenant.virtual_finish +=
        static_cast<double>(pending.batch.size()) / tenant.weight;
    dispatch(*slot, pending, now, stolen);
    return true;
  }
  return false;
}

Scheduler::Slot* Scheduler::choose_slot_edf(
    const std::vector<Slot*>& free_slots, std::size_t queue,
    std::size_t task) {
  // Home first (sharding stability keeps the shard's programs warm).
  if (config_.dedicated_devices > 0) {
    for (Slot* slot : free_slots) {
      if (slot->id == queue) {
        return slot;
      }
    }
  }
  // Then a warm slot (no upload at all), then an empty one (upload but
  // no displacement); free_slots is id-ordered, so ties go low.
  for (Slot* slot : free_slots) {
    if (slot->resident_task == task) {
      return slot;
    }
  }
  for (Slot* slot : free_slots) {
    if (!slot->resident_task.has_value()) {
      return slot;
    }
  }
  // Every candidate displaces a resident model: the eviction policy
  // chooses the victim instead of slot-order accident.
  std::vector<EvictionCandidate> candidates;
  candidates.reserve(free_slots.size());
  for (const Slot* slot : free_slots) {
    EvictionCandidate c;
    c.slot = slot->id;
    c.resident_task = *slot->resident_task;
    c.last_dispatch_cycle = slot->last_dispatch_cycle;
    c.resident_task_dispatches = task_dispatches_[*slot->resident_task];
    c.reload_cycles = reload_estimate(*slot->resident_task);
    candidates.push_back(c);
  }
  const std::size_t victim = eviction_->pick_victim(candidates);
  return free_slots[victim];
}

void Scheduler::dispatch(Slot& slot, const PendingBatch& pending,
                         sim::Cycle now, bool stolen) {
  const Batch& batch = pending.batch;
  const bool warm = slot.resident_task == batch.task;
  if (pending.predicted >= 0) {
    // Score the submit-time prediction against the variant this slot
    // actually needs. Both sides are simulated state, so the counts
    // replay identically for any worker count.
    const bool matched = (pending.predicted == 1) == warm;
    ++(matched ? speculation_.useful : speculation_.wasted);
    if (trace_ != nullptr) {
      // Host-domain like every speculation artifact: which runs were
      // wasted is invisible to the simulated timeline.
      trace_->instant(obs::Domain::kHost, obs::kTrackDispatch,
                      "speculation", trace_->wall_ns(),
                      matched ? "useful" : "wasted",
                      static_cast<std::int64_t>(batch.task), batch.tenant);
    }
  }
  accel::RunOptions options;
  options.model_resident = warm;
  // With caching on this usually replays a memoized (often speculatively
  // prefetched) result; acquire() blocks if a worker is mid-simulation
  // on exactly this workload, so work is never duplicated.
  options.cycle_cache = cache_;
  accel::CacheOutcome outcome = accel::CacheOutcome::kNone;
  options.cache_outcome = &outcome;
  const accel::RunResult run =
      task_devices_[batch.task].run(batch.stories, options);

  if (trace_ != nullptr) {
    // Device occupancy in the simulated domain. Only deterministic
    // attributes ride here (warm/cold is a pure function of the
    // timeline); how the host resolved the run against the cache is
    // worker-count-dependent, so it goes on a host-domain track and the
    // simulated slice of the trace stays byte-identical across worker
    // counts.
    trace_->complete(obs::Domain::kSim,
                     obs::kTrackDeviceBase +
                         static_cast<std::uint32_t>(slot.id),
                     "batch", now, run.total_cycles, warm ? "warm" : "cold",
                     static_cast<std::int64_t>(batch.task), batch.tenant,
                     static_cast<std::int64_t>(batch.size()));
    if (cache_ != nullptr) {
      trace_->instant(obs::Domain::kHost, obs::kTrackDispatch, "cache",
                      trace_->wall_ns(), accel::cache_outcome_name(outcome),
                      static_cast<std::int64_t>(batch.task), batch.tenant);
    }
  }
  obs::add(obs_dispatches_);
  if (!warm) {
    obs::add(obs_model_uploads_);
  }
  if (stolen) {
    obs::add(obs_stolen_batches_);
  }

  if (!warm && slot.resident_task.has_value()) {
    ++slot.model_evictions;  // the upload displaced another model
  }
  slot.resident_task = batch.task;
  slot.busy_until = now + run.total_cycles;
  slot.busy_cycles += run.total_cycles;
  slot.last_dispatch_cycle = now;
  ++slot.batches;
  slot.stories += batch.size();
  slot.model_uploads += warm ? 0 : 1;
  slot.stolen_batches += stolen ? 1 : 0;
  ++task_dispatches_[batch.task];
  TaskCycleEstimate& estimate = task_cycles_[batch.task];
  (warm ? estimate.warm : estimate.cold) = run.total_cycles;
  device_queue_stats_ += run.queue_stats();
  device_ops_ += run.total_ops;
  link_active_cycles_ += run.link_active_cycles;

  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    const InferenceRequest& request = batch.requests[i];
    InferenceResponse response;
    response.id = request.id;
    response.task = request.task;
    response.tenant = request.tenant;
    response.device = slot.id;
    response.batch_size = batch.size();
    response.prediction = run.stories[i].prediction;
    response.answer = batch.stories[i].answer;
    response.early_exit = run.stories[i].early_exit;
    response.enqueue_cycle = request.enqueue_cycle;
    response.deadline_cycle = request.deadline_cycle;
    response.cache_outcome = outcome;
    response.dispatch_cycle = now;
    // finish_cycle is relative to the batch's own run; rebased onto the
    // serving clock it gives per-story completion inside the batch.
    response.complete_cycle = now + run.stories[i].finish_cycle;
    obs::observe(obs_queue_wait_, now - request.enqueue_cycle);
    if (trace_ != nullptr) {
      // Completion times are known now (the simulation already ran), so
      // the service span closes immediately at its future end cycle —
      // timestamps, not recording order, define the timeline.
      trace_->end_async("pending", request.id, now);
      trace_->begin_async("service", request.id, now,
                          static_cast<std::int64_t>(request.task),
                          request.tenant);
      trace_->end_async("service", request.id, response.complete_cycle);
      trace_->end_async("request", request.id, response.complete_cycle);
    }
    in_flight_.push_back(response);
  }
}

std::vector<InferenceResponse> Scheduler::collect(sim::Cycle now) {
  // Single linear pass: keep not-yet-complete responses in place (order
  // preserved), move the completed tail out.
  const auto first_done = std::stable_partition(
      in_flight_.begin(), in_flight_.end(),
      [now](const InferenceResponse& r) { return r.complete_cycle > now; });
  std::vector<InferenceResponse> done(
      std::make_move_iterator(first_done),
      std::make_move_iterator(in_flight_.end()));
  in_flight_.erase(first_done, in_flight_.end());
  return done;
}

sim::Cycle Scheduler::next_completion() const noexcept {
  sim::Cycle next = sim::kNever;
  for (const InferenceResponse& r : in_flight_) {
    next = std::min(next, r.complete_cycle);
  }
  return next;
}

sim::Cycle Scheduler::next_slot_free(sim::Cycle now) const noexcept {
  sim::Cycle next = sim::kNever;
  for (const Slot& slot : slots_) {
    // Already-free slots must not report a stale past busy_until: that
    // would veto every event skip while a batch waits on a busy slot.
    if (slot.busy_until > now) {
      next = std::min(next, slot.busy_until);
    }
  }
  return next;
}

std::vector<DeviceReport> Scheduler::device_reports() const {
  std::vector<DeviceReport> reports;
  reports.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    DeviceReport report;
    report.id = slot.id;
    report.resident_task = slot.resident_task;
    report.busy_cycles = slot.busy_cycles;
    report.batches = slot.batches;
    report.stories = slot.stories;
    report.model_uploads = slot.model_uploads;
    report.model_evictions = slot.model_evictions;
    report.stolen_batches = slot.stolen_batches;
    reports.push_back(report);
  }
  return reports;
}

std::uint64_t Scheduler::total_model_uploads() const noexcept {
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) {
    total += slot.model_uploads;
  }
  return total;
}

std::uint64_t Scheduler::total_model_evictions() const noexcept {
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) {
    total += slot.model_evictions;
  }
  return total;
}

std::uint64_t Scheduler::total_stolen_batches() const noexcept {
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) {
    total += slot.stolen_batches;
  }
  return total;
}

void Scheduler::quiesce() {
  if (pool_ != nullptr) {
    pool_->wait_idle();
  }
}

accel::ServiceCycleCacheStats Scheduler::cache_stats() const {
  return cache_ != nullptr ? cache_->stats()
                           : accel::ServiceCycleCacheStats{};
}

}  // namespace mann::serve
