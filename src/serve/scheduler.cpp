#include "serve/scheduler.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

namespace mann::serve {

Scheduler::Scheduler(SchedulerConfig config,
                     std::vector<accel::Accelerator> task_devices)
    : config_(config), task_devices_(std::move(task_devices)),
      pending_("SCHED_Q", config.queue_capacity == 0 ? 1
                                                     : config.queue_capacity) {
  if (config_.devices == 0) {
    throw std::invalid_argument("Scheduler: need at least one device");
  }
  if (task_devices_.empty()) {
    throw std::invalid_argument("Scheduler: no task programs");
  }
  config_.dedicated_devices =
      std::min(config_.dedicated_devices, config_.devices);
  slots_.resize(config_.devices);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    slots_[i].id = i;
  }
  cache_ = config_.cycle_cache;
  if (cache_ == nullptr && config_.workers > 0) {
    owned_cache_ = std::make_unique<accel::ServiceCycleCache>(
        config_.cache_capacity == 0 ? 1 : config_.cache_capacity);
    cache_ = owned_cache_.get();
  }
  if (config_.workers > 0) {
    pool_ = std::make_unique<WorkerPool>(config_.workers);
  }
}

bool Scheduler::submit(Batch batch) {
  if (batch.task >= task_devices_.size()) {
    throw std::out_of_range("Scheduler: unknown task id");
  }
  if (batch.requests.empty()) {
    throw std::invalid_argument("Scheduler: empty batch");
  }
  if (pool_ != nullptr && !pending_.full()) {
    speculate(batch);
  }
  return pending_.try_push(std::move(batch));
}

bool Scheduler::task_resident_anywhere(std::size_t task) const noexcept {
  for (const Slot& slot : slots_) {
    if (slot.resident_task == task) {
      return true;
    }
  }
  return false;
}

void Scheduler::speculate(const Batch& batch) {
  // Predict the dispatch-time variant from submit-time residency: warm
  // once the program sits in any slot (the steady state), cold before its
  // first upload. A mispredict costs nothing but the wasted worker run —
  // dispatch falls back to inline simulation of the variant it needs.
  const bool warm = task_resident_anywhere(batch.task);
  auto stories = std::make_shared<const std::vector<data::EncodedStory>>(
      batch.stories);
  const accel::Accelerator& device = task_devices_[batch.task];
  accel::ServiceCycleCache* cache = cache_;
  pool_->submit([&device, cache, stories, warm] {
    accel::RunOptions options;
    options.model_resident = warm;
    options.cycle_cache = cache;
    try {
      (void)device.run(*stories, options);
    } catch (...) {
      // Speculation is best-effort: a failing workload (e.g. watchdog)
      // fails again — with a proper throw — when dispatched inline.
    }
  });
}

void Scheduler::step(sim::Cycle now) {
  while (const Batch* head = pending_.peek()) {
    Slot* slot = pick_slot(head->task, now);
    if (slot == nullptr) {
      return;  // head-of-line batch waits; nothing behind it jumps ahead
    }
    const Batch batch = *pending_.try_pop();
    dispatch(*slot, batch, now);
  }
}

Scheduler::Slot* Scheduler::pick_slot(std::size_t task, sim::Cycle now) {
  // Home slot first: per-task sharding keeps a task's program warm.
  if (config_.dedicated_devices > 0) {
    Slot& home = slots_[task % config_.dedicated_devices];
    if (home.free(now)) {
      return &home;
    }
  }
  // Overflow pool: prefer a warm slot (program already resident), then
  // the lowest-numbered free one (deterministic tie-break).
  Slot* fallback = nullptr;
  for (std::size_t i = config_.dedicated_devices; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (!slot.free(now)) {
      continue;
    }
    if (slot.resident_task == task) {
      return &slot;
    }
    if (fallback == nullptr) {
      fallback = &slot;
    }
  }
  return fallback;
}

void Scheduler::dispatch(Slot& slot, const Batch& batch, sim::Cycle now) {
  const bool warm = slot.resident_task == batch.task;
  accel::RunOptions options;
  options.model_resident = warm;
  // With caching on this usually replays a memoized (often speculatively
  // prefetched) result; acquire() blocks if a worker is mid-simulation
  // on exactly this workload, so work is never duplicated.
  options.cycle_cache = cache_;
  const accel::RunResult run =
      task_devices_[batch.task].run(batch.stories, options);

  slot.resident_task = batch.task;
  slot.busy_until = now + run.total_cycles;
  slot.busy_cycles += run.total_cycles;
  ++slot.batches;
  slot.stories += batch.size();
  slot.model_uploads += warm ? 0 : 1;
  device_queue_stats_ += run.queue_stats();

  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    const InferenceRequest& request = batch.requests[i];
    InferenceResponse response;
    response.id = request.id;
    response.task = request.task;
    response.device = slot.id;
    response.batch_size = batch.size();
    response.prediction = run.stories[i].prediction;
    response.answer = batch.stories[i].answer;
    response.early_exit = run.stories[i].early_exit;
    response.enqueue_cycle = request.enqueue_cycle;
    response.dispatch_cycle = now;
    // finish_cycle is relative to the batch's own run; rebased onto the
    // serving clock it gives per-story completion inside the batch.
    response.complete_cycle = now + run.stories[i].finish_cycle;
    in_flight_.push_back(response);
  }
}

std::vector<InferenceResponse> Scheduler::collect(sim::Cycle now) {
  // Single linear pass: keep not-yet-complete responses in place (order
  // preserved), move the completed tail out.
  const auto first_done = std::stable_partition(
      in_flight_.begin(), in_flight_.end(),
      [now](const InferenceResponse& r) { return r.complete_cycle > now; });
  std::vector<InferenceResponse> done(
      std::make_move_iterator(first_done),
      std::make_move_iterator(in_flight_.end()));
  in_flight_.erase(first_done, in_flight_.end());
  return done;
}

sim::Cycle Scheduler::next_completion() const noexcept {
  sim::Cycle next = sim::kNever;
  for (const InferenceResponse& r : in_flight_) {
    next = std::min(next, r.complete_cycle);
  }
  return next;
}

sim::Cycle Scheduler::next_slot_free(sim::Cycle now) const noexcept {
  sim::Cycle next = sim::kNever;
  for (const Slot& slot : slots_) {
    // Already-free slots must not report a stale past busy_until: that
    // would veto every event skip while a batch waits on a busy slot.
    if (slot.busy_until > now) {
      next = std::min(next, slot.busy_until);
    }
  }
  return next;
}

std::vector<DeviceReport> Scheduler::device_reports() const {
  std::vector<DeviceReport> reports;
  reports.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    DeviceReport report;
    report.id = slot.id;
    report.resident_task = slot.resident_task;
    report.busy_cycles = slot.busy_cycles;
    report.batches = slot.batches;
    report.stories = slot.stories;
    report.model_uploads = slot.model_uploads;
    reports.push_back(report);
  }
  return reports;
}

std::uint64_t Scheduler::total_model_uploads() const noexcept {
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) {
    total += slot.model_uploads;
  }
  return total;
}

void Scheduler::quiesce() {
  if (pool_ != nullptr) {
    pool_->wait_idle();
  }
}

accel::ServiceCycleCacheStats Scheduler::cache_stats() const {
  return cache_ != nullptr ? cache_->stats()
                           : accel::ServiceCycleCacheStats{};
}

}  // namespace mann::serve
