// Serving-layer request/response types and the open-loop traffic source.
//
// The seed measures one task's test split as a single batch (the paper's
// protocol); mann::serve turns that into a runtime serving many concurrent
// users. An InferenceRequest is one user question against one task's
// model; the TrafficGenerator emits a deterministic arrival schedule over
// a fixed request corpus so every serving experiment is exactly
// reproducible from a seed.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "data/types.hpp"
#include "numeric/random.hpp"
#include "sim/types.hpp"

namespace mann::serve {

using RequestId = std::uint64_t;

/// One in-flight user question. The story is non-owning: the serving
/// corpus (per-task test splits) outlives every request.
struct InferenceRequest {
  RequestId id = 0;
  std::size_t task = 0;  ///< index into the server's model registry
  const data::EncodedStory* story = nullptr;
  sim::Cycle enqueue_cycle = 0;  ///< arrival at the serving frontend
};

/// One answered question, with the full timestamp trail for latency
/// accounting (all cycles are on the shared serving clock).
struct InferenceResponse {
  RequestId id = 0;
  std::size_t task = 0;
  std::size_t device = 0;       ///< pool device that served it
  std::size_t batch_size = 0;   ///< size of the batch it rode in
  std::int32_t prediction = -1;
  std::int32_t answer = -1;     ///< ground truth, for serving accuracy
  bool early_exit = false;
  sim::Cycle enqueue_cycle = 0;
  sim::Cycle dispatch_cycle = 0;  ///< batch handed to a device
  sim::Cycle complete_cycle = 0;  ///< answer visible at the host

  [[nodiscard]] sim::Cycle queue_cycles() const noexcept {
    return dispatch_cycle - enqueue_cycle;
  }
  [[nodiscard]] sim::Cycle latency_cycles() const noexcept {
    return complete_cycle - enqueue_cycle;
  }
};

/// Arrival process shapes for the open-loop generator.
enum class ArrivalProcess : std::uint8_t {
  kPoisson,  ///< memoryless arrivals at the configured mean rate
  kBursty,   ///< geometric bursts with tight intra-burst spacing
};

struct TrafficConfig {
  ArrivalProcess process = ArrivalProcess::kPoisson;
  /// Long-run mean gap between arrivals, in device cycles. Both processes
  /// honour this, so sweeps compare equal offered load.
  double mean_interarrival_cycles = 50'000.0;
  /// Bursty only: mean burst length (geometric) and the fixed gap between
  /// requests inside a burst.
  double burst_mean = 8.0;
  double burst_gap_cycles = 64.0;
  std::uint64_t seed = 2019;
};

/// One task's servable corpus (non-owning view of its encoded stories).
struct TaskWorkload {
  std::size_t task = 0;
  std::span<const data::EncodedStory> stories;
};

/// Deterministic open-loop arrival source: draws tasks uniformly at
/// random (seeded), walks each task's corpus round-robin, and spaces
/// arrivals by the configured process. Exhausted after `total_requests`.
class TrafficGenerator {
 public:
  TrafficGenerator(TrafficConfig config, std::vector<TaskWorkload> workloads,
                   std::size_t total_requests);

  [[nodiscard]] std::size_t total_requests() const noexcept { return total_; }
  [[nodiscard]] std::size_t emitted() const noexcept { return emitted_; }
  [[nodiscard]] bool exhausted() const noexcept { return emitted_ >= total_; }

  /// Arrival cycle of the next request; sim::kNever once exhausted.
  [[nodiscard]] sim::Cycle next_arrival() const noexcept {
    return exhausted() ? sim::kNever : next_cycle_;
  }

  /// Emits the next request if its arrival time has come.
  [[nodiscard]] std::optional<InferenceRequest> poll(sim::Cycle now);

 private:
  void schedule_next();

  TrafficConfig config_;
  std::vector<TaskWorkload> workloads_;
  std::size_t total_;
  std::size_t emitted_ = 0;
  std::vector<std::size_t> cursors_;  ///< per-task round-robin position
  numeric::Rng rng_;
  double arrival_clock_ = 0.0;  ///< exact (fractional) arrival time
  sim::Cycle next_cycle_ = 0;
  std::size_t burst_left_ = 0;  ///< bursty: requests left in this burst
};

}  // namespace mann::serve
