// Serving-layer request/response types and the open-loop traffic source.
//
// The seed measures one task's test split as a single batch (the paper's
// protocol); mann::serve turns that into a runtime serving many concurrent
// users. An InferenceRequest is one user question against one task's
// model; the TrafficGenerator emits a deterministic arrival schedule over
// a fixed request corpus so every serving experiment is exactly
// reproducible from a seed.
//
// Every request carries a completion deadline derived from a per-task SLO
// config (sim::kNever when the task has no SLO) and a TenantId naming who
// it belongs to (see serve/tenant.hpp). Tenants are drawn from the
// configured traffic shares by a dedicated RNG stream, so labelling
// traffic with tenants never perturbs the arrival timing — the same seed
// produces the same schedule with or without a tenant registry. Deadlines
// drive the deadline-aware scheduler and the admission controller's
// load-shedding; the metrics report per-task and per-tenant hit-rates.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "data/types.hpp"
#include "numeric/random.hpp"
#include "serve/tenant.hpp"
#include "serve/trace.hpp"
#include "sim/types.hpp"

namespace mann::accel {
// Opaque re-declaration (definition in accel/accelerator.hpp): how the
// host resolved a dispatched run against the service-cycle cache. Kept
// opaque so the serving request types don't pull in the whole device
// layer.
enum class CacheOutcome : std::uint8_t;
}  // namespace mann::accel

namespace mann::serve {

using RequestId = std::uint64_t;

/// Per-task latency SLOs, expressed as enqueue-to-completion deadlines in
/// device cycles. sim::kNever means "no SLO" (the request never expires).
struct SloConfig {
  /// Deadline for tasks without a per-task override.
  sim::Cycle default_deadline_cycles = sim::kNever;
  /// Indexed by task id; 0 means "use the default" (a real 0-cycle
  /// deadline would be unmeetable anyway). Tasks beyond the vector use
  /// the default.
  std::vector<sim::Cycle> per_task;

  [[nodiscard]] sim::Cycle deadline_for(std::size_t task) const noexcept {
    if (task < per_task.size() && per_task[task] != 0) {
      return per_task[task];
    }
    return default_deadline_cycles;
  }
};

/// One in-flight user question. The story is non-owning: the serving
/// corpus (per-task test splits) outlives every request.
struct InferenceRequest {
  RequestId id = 0;
  std::size_t task = 0;  ///< index into the server's model registry
  TenantId tenant = 0;   ///< index into the tenant registry (0 = default)
  const data::EncodedStory* story = nullptr;
  sim::Cycle enqueue_cycle = 0;             ///< arrival at the frontend
  sim::Cycle deadline_cycle = sim::kNever;  ///< SLO deadline (absolute)
};

/// One answered question, with the full timestamp trail for latency
/// accounting (all cycles are on the shared serving clock).
struct InferenceResponse {
  RequestId id = 0;
  std::size_t task = 0;
  TenantId tenant = 0;          ///< carried from the request
  std::size_t device = 0;       ///< pool device that served it
  std::size_t batch_size = 0;   ///< size of the batch it rode in
  std::int32_t prediction = -1;
  std::int32_t answer = -1;     ///< ground truth, for serving accuracy
  bool early_exit = false;
  sim::Cycle enqueue_cycle = 0;
  sim::Cycle dispatch_cycle = 0;  ///< batch handed to a device
  sim::Cycle complete_cycle = 0;  ///< answer visible at the host
  sim::Cycle deadline_cycle = sim::kNever;  ///< carried from the request
  /// How the host resolved this response's dispatch against the
  /// service-cycle cache (kNone when caching is off). Host-dependent —
  /// never part of the deterministic simulated report.
  accel::CacheOutcome cache_outcome{};

  [[nodiscard]] sim::Cycle queue_cycles() const noexcept {
    return dispatch_cycle - enqueue_cycle;
  }
  [[nodiscard]] sim::Cycle latency_cycles() const noexcept {
    return complete_cycle - enqueue_cycle;
  }
  [[nodiscard]] bool has_deadline() const noexcept {
    return deadline_cycle != sim::kNever;
  }
  [[nodiscard]] bool deadline_met() const noexcept {
    return complete_cycle <= deadline_cycle;
  }
};

/// Arrival process shapes for the open-loop generator.
enum class ArrivalProcess : std::uint8_t {
  kPoisson,  ///< memoryless arrivals at the configured mean rate
  kBursty,   ///< geometric bursts with tight intra-burst spacing
  kDiurnal,  ///< Poisson with sinusoidal rate modulation (day/night load)
  kTrace,    ///< exact replay of a recorded arrival_cycle/task schedule
};

struct TrafficConfig {
  ArrivalProcess process = ArrivalProcess::kPoisson;
  /// Long-run mean gap between arrivals, in device cycles. Every
  /// synthetic process honours this, so sweeps compare equal offered
  /// load (the trace process takes its timing from the trace instead).
  double mean_interarrival_cycles = 50'000.0;
  /// Bursty only: mean burst length (geometric) and the fixed gap between
  /// requests inside a burst.
  double burst_mean = 8.0;
  double burst_gap_cycles = 64.0;
  /// Diurnal only: instantaneous rate = base rate * (1 + A sin(2πt/P)).
  /// Amplitude must sit in [0, 1) so the rate never reaches zero; the
  /// period is one simulated "day".
  double diurnal_amplitude = 0.5;
  double diurnal_period_cycles = 10.0e6;
  /// Trace only: the recorded schedule to replay. Task ids must name
  /// workloads the generator was given; tenant ids must name registry
  /// entries; arrival cycles must be non-decreasing. When total_requests
  /// exceeds the trace length the trace loops, shifted by its span each
  /// lap, so long experiments can replay a short recording.
  std::vector<TraceEntry> trace;
  /// Per-task deadlines stamped on every emitted request.
  SloConfig slo;
  /// Tenant registry: entry i configures tenant id i. Synthetic
  /// processes draw each request's tenant in proportion to
  /// `traffic_share` (from an independent RNG stream, so the arrival
  /// timing is identical with or without tenants); trace replay takes
  /// the tenant from the recording. Empty = single tenant 0.
  std::vector<TenantConfig> tenants;
  std::uint64_t seed = 2019;
};

/// One task's servable corpus (non-owning view of its encoded stories).
struct TaskWorkload {
  std::size_t task = 0;
  std::span<const data::EncodedStory> stories;
};

/// Deterministic open-loop arrival source: draws tasks uniformly at
/// random (seeded), walks each task's corpus round-robin, draws tenants
/// by traffic share, and spaces arrivals by the configured process —
/// except trace replay, which takes the task, tenant and spacing from
/// the recording. Exhausted after `total_requests`.
class TrafficGenerator {
 public:
  TrafficGenerator(TrafficConfig config, std::vector<TaskWorkload> workloads,
                   std::size_t total_requests);

  [[nodiscard]] std::size_t total_requests() const noexcept { return total_; }
  [[nodiscard]] std::size_t emitted() const noexcept { return emitted_; }
  [[nodiscard]] bool exhausted() const noexcept { return emitted_ >= total_; }
  /// Registry size (1 when no tenants were configured).
  [[nodiscard]] std::size_t num_tenants() const noexcept {
    return num_tenants_;
  }

  /// Arrival cycle of the next request; sim::kNever once exhausted.
  [[nodiscard]] sim::Cycle next_arrival() const noexcept {
    return exhausted() ? sim::kNever : next_cycle_;
  }

  /// Emits the next request if its arrival time has come.
  [[nodiscard]] std::optional<InferenceRequest> poll(sim::Cycle now);

  // ---- live reconfiguration (ServerSession::set_slo / set_tenant) ----
  // Applies to requests emitted from now on; already-emitted deadlines
  // are immutable. Arrival timing is never touched, so the schedule
  // stays bit-reproducible across reconfigurations that don't change
  // SLOs.

  /// Replaces the per-task SLO table.
  void set_slo(SloConfig slo) noexcept { config_.slo = std::move(slo); }
  /// Replaces one tenant's SLO override (0 = use the task's SLO). Out of
  /// range ids are ignored (the registry size is fixed at construction).
  void set_tenant_slo(TenantId tenant, sim::Cycle deadline) noexcept {
    if (tenant < config_.tenants.size()) {
      config_.tenants[tenant].slo_deadline_cycles = deadline;
    }
  }

 private:
  void schedule_next();
  /// Workload slot serving the next emission (trace: dictated by the
  /// recording; otherwise drawn uniformly at schedule time).
  [[nodiscard]] std::size_t next_workload_slot();
  /// Tenant of the next emission (trace: from the recording; otherwise
  /// drawn by traffic share from the dedicated tenant RNG stream).
  [[nodiscard]] TenantId next_tenant();
  /// The request's deadline: the tenant's SLO override when set,
  /// otherwise the task's SLO.
  [[nodiscard]] sim::Cycle deadline_for(std::size_t task,
                                        TenantId tenant) const noexcept;

  TrafficConfig config_;
  std::vector<TaskWorkload> workloads_;
  std::size_t total_;
  std::size_t emitted_ = 0;
  std::vector<std::size_t> cursors_;  ///< per-task round-robin position
  numeric::Rng rng_;
  numeric::Rng tenant_rng_;  ///< independent stream for tenant draws
  std::size_t num_tenants_ = 1;
  std::vector<double> tenant_share_cdf_;  ///< cumulative traffic shares
  double arrival_clock_ = 0.0;  ///< exact (fractional) arrival time
  sim::Cycle next_cycle_ = 0;
  std::size_t burst_left_ = 0;  ///< bursty: requests left in this burst
  std::vector<std::size_t> trace_task_slot_;  ///< trace row -> workload slot
  sim::Cycle trace_span_ = 0;  ///< loop shift when replaying past the end
};

}  // namespace mann::serve
