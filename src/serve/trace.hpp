// Trace-driven traffic: recorded arrival schedules for exact replay.
//
// A trace is the serving workload stripped to what matters for queueing:
// when each request arrived and which task it asked for. The CSV form
// (`arrival_cycle,task_id`, one row per request, optional header) is the
// interchange format between the trace generator tool, recorded sample
// traces checked into bench/traces/, and the TrafficGenerator's replay
// mode — so a production-shaped arrival pattern can be captured once and
// re-served deterministically under any scheduler/pool configuration.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace mann::serve {

/// One recorded arrival: the serving-clock cycle it hit the frontend and
/// the served task it addressed (index into the model registry).
struct TraceEntry {
  sim::Cycle arrival_cycle = 0;
  std::size_t task = 0;

  [[nodiscard]] bool operator==(const TraceEntry&) const noexcept = default;
};

/// Parses a `arrival_cycle,task_id` CSV (optional header row, blank lines
/// and `#` comments ignored). Throws std::runtime_error on unreadable
/// files, malformed rows, or arrival cycles that go backwards — a trace
/// is an arrival schedule, so time must be non-decreasing.
[[nodiscard]] std::vector<TraceEntry> load_trace_csv(
    const std::string& path);

/// Writes `entries` as the canonical CSV (with header). Throws
/// std::runtime_error when the file cannot be written.
void save_trace_csv(const std::string& path,
                    const std::vector<TraceEntry>& entries);

}  // namespace mann::serve
