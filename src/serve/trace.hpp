// Trace-driven traffic: recorded arrival schedules for exact replay.
//
// A trace is the serving workload stripped to what matters for queueing:
// when each request arrived, which task it asked for, and (since the
// multi-tenant control plane) which tenant it belonged to. The CSV form
// is the interchange format between the trace generator tool, recorded
// sample traces checked into bench/traces/, and the TrafficGenerator's
// replay mode — so a production-shaped arrival pattern can be captured
// once and re-served deterministically under any scheduler/pool/tenant
// configuration.
//
// The format is versioned by its header row:
//   v1: `arrival_cycle,task_id`            (tenant defaults to 0)
//   v2: `arrival_cycle,task_id,tenant_id`
// The loader accepts both (per row, so headerless v1 traces keep
// loading); the writer always emits v2.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/tenant.hpp"
#include "sim/types.hpp"

namespace mann::serve {

/// One recorded arrival: the serving-clock cycle it hit the frontend,
/// the served task it addressed (index into the model registry), and
/// the tenant it belonged to (0 when recorded without tenants).
struct TraceEntry {
  sim::Cycle arrival_cycle = 0;
  std::size_t task = 0;
  TenantId tenant = 0;

  [[nodiscard]] bool operator==(const TraceEntry&) const noexcept = default;
};

/// Parses a trace CSV (either versioned header row, blank lines and `#`
/// comments ignored; rows may be 2-column v1 or 3-column v2). Throws
/// std::runtime_error on unreadable files, malformed rows, or arrival
/// cycles that go backwards — a trace is an arrival schedule, so time
/// must be non-decreasing.
[[nodiscard]] std::vector<TraceEntry> load_trace_csv(const std::string& path);

/// Writes `entries` as the canonical v2 CSV (with header). Throws
/// std::runtime_error when the file cannot be written.
void save_trace_csv(const std::string& path,
                    const std::vector<TraceEntry>& entries);

/// Amplifies a trace `factor`x without changing its shape: every original
/// row is kept and (factor - 1) replicas are added, each offset by a
/// deterministic (seeded) jitter within the row's local inter-arrival
/// gap — so the diurnal envelope, bursts and tenant/task mix survive at
/// factor-times the request volume, and a 10-100x cluster sweep can
/// replay the committed sample traces instead of needing multi-MB
/// recordings. factor == 0 is treated as 1 (identity); the result is
/// arrival-sorted and valid for save_trace_csv / replay.
[[nodiscard]] std::vector<TraceEntry> scale_trace(
    const std::vector<TraceEntry>& entries, std::size_t factor,
    std::uint64_t seed = 2019);

}  // namespace mann::serve
