#include "serve/worker_pool.hpp"

#include <stdexcept>

namespace mann::serve {

namespace {
// The calling thread's pool-local index, set once at worker_loop entry.
thread_local std::size_t t_worker_index = WorkerPool::kNotAWorker;
}  // namespace

WorkerPool::WorkerPool(std::size_t workers, obs::MetricsRegistry* metrics)
    : obs_jobs_submitted_(
          obs::counter(metrics, "serve.worker_pool.jobs_submitted")),
      obs_jobs_completed_(
          obs::counter(metrics, "serve.worker_pool.jobs_completed")) {
  if (workers == 0) {
    throw std::invalid_argument("WorkerPool: need at least one worker");
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void WorkerPool::submit(Job job) {
  bool need_notify = false;
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      throw std::logic_error("WorkerPool: submit after shutdown");
    }
    queue_.push_back(std::move(job));
    ++submitted_;
    // Signal only a parked worker. A busy one re-checks the queue under
    // the lock before waiting, so it cannot miss this job; skipping the
    // syscall is the whole point of the slim handoff (see the header).
    need_notify = idle_ > 0;
  }
  obs::add(obs_jobs_submitted_);
  if (need_notify) {
    work_ready_.notify_one();
  }
}

std::size_t WorkerPool::outstanding() const {
  std::lock_guard lock(mutex_);
  return static_cast<std::size_t>(submitted_ - completed_);
}

std::uint64_t WorkerPool::jobs_submitted() const {
  std::lock_guard lock(mutex_);
  return submitted_;
}

std::uint64_t WorkerPool::jobs_completed() const {
  std::lock_guard lock(mutex_);
  return completed_;
}

void WorkerPool::wait_idle() {
  std::unique_lock lock(mutex_);
  ++waiters_;
  all_done_.wait(lock, [&] { return completed_ == submitted_; });
  --waiters_;
}

std::size_t WorkerPool::current_worker() noexcept { return t_worker_index; }

void WorkerPool::worker_loop(std::size_t index) {
  t_worker_index = index;
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mutex_);
      ++idle_;
      work_ready_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      --idle_;
      // Drain the queue even when stopping: a speculative result computed
      // now is still a valid cache entry, and abandoned jobs would leave
      // wait_idle() callers blocked.
      if (queue_.empty()) {
        return;  // stopping_ and nothing left
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      job();
    } catch (...) {
      // Jobs are fire-and-forget; an escaping exception would terminate
      // the process (thread entry) and a skipped completion would block
      // wait_idle() forever. Failures must be reported via the job's own
      // channel (the serving scheduler re-simulates inline and rethrows).
    }
    bool need_notify = false;
    {
      std::lock_guard lock(mutex_);
      ++completed_;
      // Only the last outstanding completion can satisfy wait_idle(),
      // and only when someone is actually parked there.
      need_notify = completed_ == submitted_ && waiters_ > 0;
    }
    obs::add(obs_jobs_completed_);
    if (need_notify) {
      all_done_.notify_all();
    }
  }
}

}  // namespace mann::serve
