// Tenant identity and the multi-tenant QoS policy surface.
//
// A tenant is the unit of isolation in the serving control plane: every
// request carries a TenantId, and a TenantConfig registry (one entry per
// tenant, indexed by id) declares how the stack must treat that tenant's
// traffic at each of the three control-plane stages:
//
//   * admission — a token-bucket rate quota (`quota_interarrival_cycles`
//     / `quota_burst`) bounds how fast the tenant may enter the system,
//     and the priority `tier` decides who is shed first under overload
//     (higher tier number = lower priority = shed earlier);
//   * queueing  — the batcher keeps per-(task, tenant) lanes so one
//     tenant's backlog never rides in another tenant's batches;
//   * dispatch  — the WFQ scheduler shares device slots across tenants
//     in proportion to `weight` (EDF orders work within a tenant).
//
// An empty registry means single-tenant operation: every request is
// tenant 0 and the whole control plane is transparent — exactly the
// pre-tenant serving stack.
//
// ShedReason unifies rejection accounting: every dropped request —
// whether the batcher's full-queue reject or an admission decision —
// flows through one ShedCounters path, so `ServingReport::rejected`
// totals are consistent everywhere.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "sim/types.hpp"

namespace mann::serve {

using TenantId = std::uint32_t;

/// Per-tenant QoS contract. Defaults describe a best-effort tenant with
/// no quota, unit fair share, and the task's own SLO.
struct TenantConfig {
  /// Priority tier: 0 is the most important; under overload the highest
  /// tier numbers are shed first.
  std::uint32_t tier = 0;
  /// Weighted-fair-queueing share of dispatch capacity (must be > 0).
  double weight = 1.0;
  /// Relative share of generated traffic (TrafficGenerator draw weight).
  double traffic_share = 1.0;
  /// Token-bucket rate quota: one token per admitted request, refilled
  /// every `quota_interarrival_cycles` up to `quota_burst` tokens.
  /// 0 disables the quota (the tenant is never rate-limited).
  double quota_interarrival_cycles = 0.0;
  double quota_burst = 8.0;
  /// Per-tenant SLO override, as an enqueue-to-completion deadline in
  /// cycles. 0 means "use the task's SLO"; sim::kNever means "this
  /// tenant never carries a deadline".
  sim::Cycle slo_deadline_cycles = 0;
};

/// Why a request was shed — the single rejection-accounting vocabulary
/// shared by the admission controller, the batcher's full-queue path and
/// the serving report.
enum class ShedReason : std::uint8_t {
  kQueueFull = 0,  ///< batcher pending lane was full (legacy reject path)
  kQuota,          ///< tenant token bucket was empty
  kDoomed,         ///< deadline unmeetable per the scheduler's cost model
  kOverload,       ///< tiered load shedding above the occupancy watermark
};

inline constexpr std::size_t kShedReasonCount = 4;

[[nodiscard]] constexpr const char* shed_reason_name(
    ShedReason reason) noexcept {
  switch (reason) {
    case ShedReason::kQueueFull:
      return "queue_full";
    case ShedReason::kQuota:
      return "quota";
    case ShedReason::kDoomed:
      return "doomed";
    case ShedReason::kOverload:
      return "overload";
  }
  return "unknown";
}

/// Shed counts by reason (one per ShedReason enumerator).
struct ShedCounters {
  std::array<std::uint64_t, kShedReasonCount> by_reason{};

  void bump(ShedReason reason) noexcept {
    ++by_reason[static_cast<std::size_t>(reason)];
  }
  [[nodiscard]] std::uint64_t count(ShedReason reason) const noexcept {
    return by_reason[static_cast<std::size_t>(reason)];
  }
  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const std::uint64_t c : by_reason) {
      sum += c;
    }
    return sum;
  }
  ShedCounters& operator+=(const ShedCounters& other) noexcept {
    for (std::size_t i = 0; i < kShedReasonCount; ++i) {
      by_reason[i] += other.by_reason[i];
    }
    return *this;
  }
  [[nodiscard]] bool operator==(const ShedCounters&) const noexcept = default;
};

}  // namespace mann::serve
