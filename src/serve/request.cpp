#include "serve/request.hpp"

#include <cmath>
#include <stdexcept>

namespace mann::serve {

namespace {

/// Salt separating the tenant-draw RNG stream from the arrival stream:
/// labelling traffic with tenants must not move a single arrival cycle.
constexpr std::uint64_t kTenantStreamSalt = 0xA5A5'5A5A'7E6A'2019ULL;

}  // namespace

TrafficGenerator::TrafficGenerator(TrafficConfig config,
                                   std::vector<TaskWorkload> workloads,
                                   std::size_t total_requests)
    : config_(std::move(config)), workloads_(std::move(workloads)),
      total_(total_requests), cursors_(workloads_.size(), 0),
      rng_(config_.seed), tenant_rng_(config_.seed ^ kTenantStreamSalt) {
  if (workloads_.empty()) {
    throw std::invalid_argument("TrafficGenerator: no workloads");
  }
  for (const TaskWorkload& w : workloads_) {
    if (w.stories.empty()) {
      throw std::invalid_argument("TrafficGenerator: empty task corpus");
    }
  }
  if (config_.mean_interarrival_cycles <= 0.0) {
    throw std::invalid_argument(
        "TrafficGenerator: mean interarrival must be positive");
  }
  num_tenants_ = config_.tenants.empty() ? 1 : config_.tenants.size();
  if (!config_.tenants.empty()) {
    double cumulative = 0.0;
    tenant_share_cdf_.reserve(config_.tenants.size());
    for (const TenantConfig& tenant : config_.tenants) {
      if (tenant.traffic_share < 0.0) {
        throw std::invalid_argument(
            "TrafficGenerator: tenant traffic_share must be >= 0");
      }
      cumulative += tenant.traffic_share;
      tenant_share_cdf_.push_back(cumulative);
    }
    if (cumulative <= 0.0) {
      throw std::invalid_argument(
          "TrafficGenerator: tenant traffic shares must sum to > 0");
    }
  }
  if (config_.process == ArrivalProcess::kBursty) {
    if (config_.burst_mean < 1.0) {
      throw std::invalid_argument("TrafficGenerator: burst_mean must be >= 1");
    }
    // The inter-burst gap absorbs what the intra-burst gaps undershoot so
    // the long-run rate matches mean_interarrival_cycles; that only works
    // when the intra-burst gaps don't already exceed the budget.
    if (config_.burst_mean * config_.mean_interarrival_cycles <=
        (config_.burst_mean - 1.0) * config_.burst_gap_cycles) {
      throw std::invalid_argument(
          "TrafficGenerator: burst_gap_cycles too large to honour "
          "mean_interarrival_cycles at this burst_mean");
    }
  }
  if (config_.process == ArrivalProcess::kDiurnal) {
    if (config_.diurnal_amplitude < 0.0 || config_.diurnal_amplitude >= 1.0) {
      throw std::invalid_argument(
          "TrafficGenerator: diurnal_amplitude must sit in [0, 1)");
    }
    if (config_.diurnal_period_cycles <= 0.0) {
      throw std::invalid_argument(
          "TrafficGenerator: diurnal_period_cycles must be positive");
    }
  }
  if (config_.process == ArrivalProcess::kTrace) {
    if (config_.trace.empty()) {
      throw std::invalid_argument("TrafficGenerator: trace replay needs a "
                                  "non-empty trace");
    }
    trace_task_slot_.reserve(config_.trace.size());
    sim::Cycle previous = 0;
    for (const TraceEntry& entry : config_.trace) {
      if (entry.arrival_cycle < previous) {
        throw std::invalid_argument(
            "TrafficGenerator: trace arrival cycles must be non-decreasing");
      }
      previous = entry.arrival_cycle;
      std::size_t slot = workloads_.size();
      for (std::size_t i = 0; i < workloads_.size(); ++i) {
        if (workloads_[i].task == entry.task) {
          slot = i;
          break;
        }
      }
      if (slot == workloads_.size()) {
        throw std::invalid_argument(
            "TrafficGenerator: trace names task " +
            std::to_string(entry.task) + " but no such workload was given");
      }
      if (entry.tenant >= num_tenants_) {
        throw std::invalid_argument(
            "TrafficGenerator: trace names tenant " +
            std::to_string(entry.tenant) + " but the registry has " +
            std::to_string(num_tenants_) + " tenant(s)");
      }
      trace_task_slot_.push_back(slot);
    }
    // Loop shift: one trace span plus the trace's own mean gap, so the
    // next lap neither overlaps the last arrival nor opens a dead gap.
    const sim::Cycle last = config_.trace.back().arrival_cycle;
    const auto n = static_cast<sim::Cycle>(config_.trace.size());
    trace_span_ = last + std::max<sim::Cycle>(1, last / n);
  }
  // The first arrival is drawn like every later one (no artificial
  // request at cycle 0).
  schedule_next();
}

std::size_t TrafficGenerator::next_workload_slot() {
  if (config_.process == ArrivalProcess::kTrace) {
    return trace_task_slot_[emitted_ % config_.trace.size()];
  }
  return rng_.index(workloads_.size());
}

TenantId TrafficGenerator::next_tenant() {
  if (config_.process == ArrivalProcess::kTrace) {
    return config_.trace[emitted_ % config_.trace.size()].tenant;
  }
  if (tenant_share_cdf_.size() < 2) {
    return 0;  // no registry (or a single tenant): no draw needed
  }
  const double u = tenant_rng_.uniform() * tenant_share_cdf_.back();
  for (std::size_t i = 0; i < tenant_share_cdf_.size(); ++i) {
    if (u < tenant_share_cdf_[i]) {
      return static_cast<TenantId>(i);
    }
  }
  return static_cast<TenantId>(tenant_share_cdf_.size() - 1);
}

sim::Cycle TrafficGenerator::deadline_for(std::size_t task,
                                          TenantId tenant) const noexcept {
  if (tenant < config_.tenants.size() &&
      config_.tenants[tenant].slo_deadline_cycles != 0) {
    return config_.tenants[tenant].slo_deadline_cycles;
  }
  return config_.slo.deadline_for(task);
}

std::optional<InferenceRequest> TrafficGenerator::poll(sim::Cycle now) {
  if (exhausted() || next_cycle_ > now) {
    return std::nullopt;
  }
  const std::size_t task_slot = next_workload_slot();
  const TenantId tenant = next_tenant();
  const TaskWorkload& workload = workloads_[task_slot];
  std::size_t& cursor = cursors_[task_slot];
  InferenceRequest request;
  request.id = emitted_;
  request.task = workload.task;
  request.tenant = tenant;
  request.story = &workload.stories[cursor];
  request.enqueue_cycle = next_cycle_;
  const sim::Cycle slo = deadline_for(workload.task, tenant);
  request.deadline_cycle =
      slo == sim::kNever ? sim::kNever : next_cycle_ + slo;
  cursor = (cursor + 1) % workload.stories.size();
  ++emitted_;
  if (!exhausted()) {
    schedule_next();
  }
  return request;
}

void TrafficGenerator::schedule_next() {
  // Inverse-CDF exponential; uniform() < 1 keeps the log argument positive.
  const auto exponential = [this](double mean) {
    return -mean * std::log(1.0 - rng_.uniform());
  };

  if (config_.process == ArrivalProcess::kTrace) {
    const std::size_t n = config_.trace.size();
    const std::size_t lap = emitted_ / n;
    next_cycle_ = config_.trace[emitted_ % n].arrival_cycle +
                  static_cast<sim::Cycle>(lap) * trace_span_;
    return;
  }

  double gap = 0.0;
  switch (config_.process) {
    case ArrivalProcess::kPoisson:
      gap = exponential(config_.mean_interarrival_cycles);
      break;
    case ArrivalProcess::kDiurnal: {
      // Rate modulation evaluated at the current clock: the instantaneous
      // rate is base * (1 + A sin(2πt/P)), so the mean gap shrinks at the
      // daily peak and stretches in the trough. A < 1 keeps the factor
      // strictly positive.
      constexpr double kTwoPi = 6.283185307179586;
      const double phase =
          kTwoPi * arrival_clock_ / config_.diurnal_period_cycles;
      const double factor =
          1.0 + config_.diurnal_amplitude * std::sin(phase);
      gap = exponential(config_.mean_interarrival_cycles / factor);
      break;
    }
    case ArrivalProcess::kBursty: {
      if (burst_left_ > 0) {
        --burst_left_;
        gap = config_.burst_gap_cycles;
        break;
      }
      // New burst: geometric length with the configured mean, then an
      // inter-burst gap sized so that the long-run rate still matches
      // mean_interarrival_cycles.
      std::size_t length = 1;
      while (config_.burst_mean > 1.0 &&
             rng_.uniform() < 1.0 - 1.0 / config_.burst_mean) {
        ++length;
      }
      burst_left_ = length - 1;
      // Positive by the constructor's rate-budget check.
      const double inter_burst_mean =
          config_.burst_mean * config_.mean_interarrival_cycles -
          (config_.burst_mean - 1.0) * config_.burst_gap_cycles;
      gap = exponential(inter_burst_mean);
      break;
    }
    case ArrivalProcess::kTrace:
      break;  // handled above
  }

  arrival_clock_ += std::max(1.0, gap);
  next_cycle_ = static_cast<sim::Cycle>(std::llround(arrival_clock_));
}

}  // namespace mann::serve
