#include "serve/request.hpp"

#include <cmath>
#include <stdexcept>

namespace mann::serve {

TrafficGenerator::TrafficGenerator(TrafficConfig config,
                                   std::vector<TaskWorkload> workloads,
                                   std::size_t total_requests)
    : config_(config), workloads_(std::move(workloads)),
      total_(total_requests), cursors_(workloads_.size(), 0),
      rng_(config.seed) {
  if (workloads_.empty()) {
    throw std::invalid_argument("TrafficGenerator: no workloads");
  }
  for (const TaskWorkload& w : workloads_) {
    if (w.stories.empty()) {
      throw std::invalid_argument("TrafficGenerator: empty task corpus");
    }
  }
  if (config_.mean_interarrival_cycles <= 0.0) {
    throw std::invalid_argument(
        "TrafficGenerator: mean interarrival must be positive");
  }
  if (config_.process == ArrivalProcess::kBursty) {
    if (config_.burst_mean < 1.0) {
      throw std::invalid_argument("TrafficGenerator: burst_mean must be >= 1");
    }
    // The inter-burst gap absorbs what the intra-burst gaps undershoot so
    // the long-run rate matches mean_interarrival_cycles; that only works
    // when the intra-burst gaps don't already exceed the budget.
    if (config_.burst_mean * config_.mean_interarrival_cycles <=
        (config_.burst_mean - 1.0) * config_.burst_gap_cycles) {
      throw std::invalid_argument(
          "TrafficGenerator: burst_gap_cycles too large to honour "
          "mean_interarrival_cycles at this burst_mean");
    }
  }
  // The first arrival is drawn like every later one (no artificial
  // request at cycle 0).
  schedule_next();
}

std::optional<InferenceRequest> TrafficGenerator::poll(sim::Cycle now) {
  if (exhausted() || next_cycle_ > now) {
    return std::nullopt;
  }
  const std::size_t task_slot = rng_.index(workloads_.size());
  const TaskWorkload& workload = workloads_[task_slot];
  std::size_t& cursor = cursors_[task_slot];
  InferenceRequest request;
  request.id = emitted_;
  request.task = workload.task;
  request.story = &workload.stories[cursor];
  request.enqueue_cycle = next_cycle_;
  cursor = (cursor + 1) % workload.stories.size();
  ++emitted_;
  if (!exhausted()) {
    schedule_next();
  }
  return request;
}

void TrafficGenerator::schedule_next() {
  // Inverse-CDF exponential; uniform() < 1 keeps the log argument positive.
  const auto exponential = [this](double mean) {
    return -mean * std::log(1.0 - rng_.uniform());
  };

  double gap = 0.0;
  switch (config_.process) {
    case ArrivalProcess::kPoisson:
      gap = exponential(config_.mean_interarrival_cycles);
      break;
    case ArrivalProcess::kBursty: {
      if (burst_left_ > 0) {
        --burst_left_;
        gap = config_.burst_gap_cycles;
        break;
      }
      // New burst: geometric length with the configured mean, then an
      // inter-burst gap sized so that the long-run rate still matches
      // mean_interarrival_cycles.
      std::size_t length = 1;
      while (config_.burst_mean > 1.0 &&
             rng_.uniform() < 1.0 - 1.0 / config_.burst_mean) {
        ++length;
      }
      burst_left_ = length - 1;
      // Positive by the constructor's rate-budget check.
      const double inter_burst_mean =
          config_.burst_mean * config_.mean_interarrival_cycles -
          (config_.burst_mean - 1.0) * config_.burst_gap_cycles;
      gap = exponential(inter_burst_mean);
      break;
    }
  }

  arrival_clock_ += std::max(1.0, gap);
  next_cycle_ = static_cast<sim::Cycle>(std::llround(arrival_clock_));
}

}  // namespace mann::serve
