// Model-eviction policies for the device pool.
//
// A pool slot holds one task's program in BRAM; dispatching a different
// task to it evicts the resident model and re-pays the upload when that
// model next runs. Before this interface existed the victim was whatever
// free slot happened to come first (last-program-wins), so swaps were
// accidents of slot ordering. The scheduler now asks a policy to choose
// the victim among the free slots whose residents would have to go:
//
//   * LRU        — evict the least recently dispatched resident; recency
//                  approximates reuse for round-robin serving corpora.
//   * LFU        — evict the resident whose task has the fewest lifetime
//                  dispatches; protects hot models from one-off tasks.
//   * cost-aware — evict the resident that is cheapest to bring back,
//                  measured as the task's observed cold-minus-warm cycle
//                  delta (the model-upload cost the ServiceCycleCache
//                  exposes by memoizing both variants of a workload).
//
// Policies are pure choice functions over the candidate view the
// scheduler assembles — all recency/frequency/cost bookkeeping lives in
// the scheduler, so a policy cannot desynchronize from the pool state
// and custom policies stay trivial to write.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "obs/metrics.hpp"
#include "sim/types.hpp"

namespace mann::serve {

enum class EvictionPolicyKind : std::uint8_t {
  kLru,
  kLfu,
  kCostAware,
};

/// One free slot whose resident model would be evicted, with the stats a
/// policy may weigh. Candidates arrive ordered by slot id.
struct EvictionCandidate {
  std::size_t slot = 0;
  std::size_t resident_task = 0;
  /// Serving-clock cycle of the slot's last dispatch (recency of use).
  sim::Cycle last_dispatch_cycle = 0;
  /// Lifetime dispatches of the resident task across the whole pool
  /// (frequency of use).
  std::uint64_t resident_task_dispatches = 0;
  /// Estimated cycles to re-upload the resident model if evicted: the
  /// task's observed cold-minus-warm service delta (its first cold run
  /// while only that is known, 0 before any observation).
  sim::Cycle reload_cycles = 0;
};

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Picks the victim: an index into `candidates` (never empty). Must be
  /// deterministic — the serving timeline replays bit-identically only if
  /// every choice is a pure function of the candidate view.
  [[nodiscard]] virtual std::size_t pick_victim(
      std::span<const EvictionCandidate> candidates) const = 0;
};

/// Least-recently-used resident goes first; ties fall to the lower slot.
class LruEviction final : public EvictionPolicy {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "lru"; }
  [[nodiscard]] std::size_t pick_victim(
      std::span<const EvictionCandidate> candidates) const override;
};

/// Least-frequently-dispatched resident goes first; ties fall to LRU
/// order, then the lower slot.
class LfuEviction final : public EvictionPolicy {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "lfu"; }
  [[nodiscard]] std::size_t pick_victim(
      std::span<const EvictionCandidate> candidates) const override;
};

/// Cheapest-to-reload resident goes first; ties fall to LRU order, then
/// the lower slot.
class CostAwareEviction final : public EvictionPolicy {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "cost"; }
  [[nodiscard]] std::size_t pick_victim(
      std::span<const EvictionCandidate> candidates) const override;
};

/// `metrics`, when set, wraps the policy so every pick bumps the
/// "serve.eviction.victims" counter (non-owning; may be null).
[[nodiscard]] std::unique_ptr<EvictionPolicy> make_eviction_policy(
    EvictionPolicyKind kind, obs::MetricsRegistry* metrics = nullptr);

[[nodiscard]] const char* eviction_policy_name(
    EvictionPolicyKind kind) noexcept;

}  // namespace mann::serve
