// Host-side worker pool for the parallel serving runtime.
//
// The serving loop is a discrete-event simulation driven by one host
// thread, but the expensive part of every event — simulating a device
// batch — is a pure function that does not need the simulated clock.
// The pool runs those simulations on real threads: the Scheduler hands
// speculative batch jobs over an MPSC queue (many producers are allowed;
// today the simulation thread is the only one) and workers publish their
// results into the shared ServiceCycleCache, where the dispatch path
// picks them up. A completion count (the "queue drained" side of the
// handoff) lets shutdown and tests barrier on outstanding work.
//
// The handoff is deliberately slim: profiling showed the per-job cost is
// dominated by condition-variable syscalls, not the lock (the critical
// sections are a few pointer moves). So notifications are counted, not
// broadcast — submit() only signals work_ready_ when a worker is
// actually parked (idle_ > 0; a busy worker re-checks the queue under
// the lock before it ever waits, so no wakeup is lost), and a completion
// only signals all_done_ when it is the last outstanding job AND someone
// is blocked in wait_idle() (waiters_ > 0). In the steady state — every
// worker busy, nobody waiting — a submit or completion is one lock
// exchange and zero syscalls. All counters live under the one mutex;
// TSan-clean by construction.
//
// Determinism: workers never touch simulation state — they only fill a
// memo cache whose entries are pure function results — so the serving
// timeline is bit-identical whatever the worker count or interleaving.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace mann::serve {

class WorkerPool {
 public:
  using Job = std::function<void()>;

  /// Sentinel for current_worker() on a non-pool thread.
  static constexpr std::size_t kNotAWorker = ~std::size_t{0};

  /// Spawns `workers` threads (at least one). `metrics`, when set,
  /// receives "serve.worker_pool.*" counters (non-owning; may be null).
  explicit WorkerPool(std::size_t workers,
                      obs::MetricsRegistry* metrics = nullptr);

  /// Drains outstanding jobs, then joins every worker.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return threads_.size(); }

  /// Enqueues a job (MPSC handoff: one lock exchange, no spinning).
  void submit(Job job);

  /// Jobs submitted but not yet finished (queued + running).
  [[nodiscard]] std::size_t outstanding() const;

  [[nodiscard]] std::uint64_t jobs_submitted() const;
  [[nodiscard]] std::uint64_t jobs_completed() const;

  /// Blocks until every submitted job has completed.
  void wait_idle();

  /// Pool-local index of the calling thread (0..size-1), or kNotAWorker
  /// when called off-pool. Lets a job attribute its trace span to the
  /// worker track it actually ran on.
  [[nodiscard]] static std::size_t current_worker() noexcept;

 private:
  void worker_loop(std::size_t index);

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<Job> queue_;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::size_t idle_ = 0;     ///< workers parked in work_ready_.wait
  std::size_t waiters_ = 0;  ///< threads parked in wait_idle()
  bool stopping_ = false;
  std::vector<std::thread> threads_;
  // Mirrored obs instruments (null without a registry).
  obs::Counter* obs_jobs_submitted_ = nullptr;
  obs::Counter* obs_jobs_completed_ = nullptr;
};

}  // namespace mann::serve
