// Host-side worker pool for the parallel serving runtime.
//
// The serving loop is a discrete-event simulation driven by one host
// thread, but the expensive part of every event — simulating a device
// batch — is a pure function that does not need the simulated clock.
// The pool runs those simulations on real threads: the Scheduler hands
// speculative batch jobs over an MPSC queue (many producers are allowed;
// today the simulation thread is the only one) and workers publish their
// results into the shared ServiceCycleCache, where the dispatch path
// picks them up. A completion count (the "queue drained" side of the
// handoff) lets shutdown and tests barrier on outstanding work.
//
// Determinism: workers never touch simulation state — they only fill a
// memo cache whose entries are pure function results — so the serving
// timeline is bit-identical whatever the worker count or interleaving.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mann::serve {

class WorkerPool {
 public:
  using Job = std::function<void()>;

  /// Spawns `workers` threads (at least one).
  explicit WorkerPool(std::size_t workers);

  /// Drains outstanding jobs, then joins every worker.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return threads_.size(); }

  /// Enqueues a job (MPSC handoff: one lock exchange, no spinning).
  void submit(Job job);

  /// Jobs submitted but not yet finished (queued + running).
  [[nodiscard]] std::size_t outstanding() const;

  [[nodiscard]] std::uint64_t jobs_submitted() const;
  [[nodiscard]] std::uint64_t jobs_completed() const;

  /// Blocks until every submitted job has completed.
  void wait_idle();

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<Job> queue_;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace mann::serve
