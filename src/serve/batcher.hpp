// Dynamic batcher: coalesces same-task, same-tenant requests into device
// batches.
//
// A device runs one task's program at a time, so batching is per task —
// and, when a tenant registry is configured, per (task, tenant): tenant
// isolation starts at queueing, so one tenant's backlog never rides in
// (or delays the flush of) another tenant's batches, and every batch
// belongs to exactly one tenant for the WFQ dispatcher downstream. Each
// lane is a bounded pending queue (a sim::Fifo, so queue pressure is
// observable through the same FifoStats code path as the device FIFOs).
// A lane is flushed into a Batch when it reaches max_batch requests
// (flush-on-full) or when its oldest request has waited max_wait_cycles
// (flush-on-timeout) — the classic throughput/latency trade every
// serving stack exposes. With a single tenant the layout and behaviour
// are exactly the historical per-task batcher.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "data/types.hpp"
#include "obs/metrics.hpp"
#include "serve/request.hpp"
#include "sim/fifo.hpp"
#include "sim/types.hpp"

namespace mann::serve {

struct BatcherConfig {
  std::size_t max_batch = 8;
  sim::Cycle max_wait_cycles = 200'000;
  /// Per-lane pending-queue bound; enqueue() rejects beyond it (open-loop
  /// overload shedding, surfaced as FifoStats::full_rejects and counted
  /// as a ShedReason::kQueueFull shed by the admission controller).
  std::size_t queue_capacity = 4096;
};

/// A flushed unit of work: same-task, same-tenant requests plus their
/// stories laid out contiguously for Accelerator::run().
struct Batch {
  std::size_t task = 0;
  TenantId tenant = 0;
  std::vector<InferenceRequest> requests;
  std::vector<data::EncodedStory> stories;  ///< parallel to requests
  /// Earliest member deadline — the urgency the EDF scheduler orders by
  /// (sim::kNever when no member carries an SLO).
  sim::Cycle deadline = sim::kNever;

  [[nodiscard]] std::size_t size() const noexcept { return requests.size(); }
};

/// Why batches left the batcher, for the batching-efficiency report.
struct BatcherCounters {
  std::uint64_t requests_in = 0;
  std::uint64_t requests_rejected = 0;  ///< pending lane was full
  std::uint64_t batches_out = 0;
  std::uint64_t stories_out = 0;
  std::uint64_t flush_full = 0;     ///< lane reached max_batch
  std::uint64_t flush_timeout = 0;  ///< oldest request aged out
  std::uint64_t flush_drain = 0;    ///< forced out by drain()
};

class Batcher {
 public:
  /// `metrics`, when set, receives "serve.batcher.*" counters and the
  /// batch-size histogram (non-owning; may be null).
  Batcher(BatcherConfig config, std::size_t num_tasks,
          std::size_t num_tenants = 1,
          obs::MetricsRegistry* metrics = nullptr);

  [[nodiscard]] const BatcherConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::size_t num_tenants() const noexcept {
    return num_tenants_;
  }

  /// Admits a request to its (task, tenant) lane; false when that lane
  /// is full (the request is shed, counted in requests_rejected).
  [[nodiscard]] bool enqueue(const InferenceRequest& request);

  /// Returns the next ready batch (full or timed out) at `now`, fairly
  /// rotating across lanes; nullopt when nothing is ready.
  [[nodiscard]] std::optional<Batch> poll(sim::Cycle now);

  /// Flushes pending requests regardless of age/size — the end-of-stream
  /// drain once the traffic source is exhausted.
  [[nodiscard]] std::optional<Batch> drain(sim::Cycle now);

  [[nodiscard]] std::size_t pending() const noexcept;

  /// Earliest cycle at which a timeout flush could fire; sim::kNever when
  /// nothing is pending. Drives event-skipping in the serving loop.
  [[nodiscard]] sim::Cycle next_deadline() const noexcept;

  [[nodiscard]] const BatcherCounters& counters() const noexcept {
    return counters_;
  }

  /// Aggregate FifoStats over every pending lane (one code path with the
  /// device FIFO reports).
  [[nodiscard]] sim::FifoStats queue_stats() const noexcept;

 private:
  [[nodiscard]] Batch flush_lane(std::size_t lane);

  BatcherConfig config_;
  std::size_t num_tenants_ = 1;
  /// Lane layout: task-major, tenant-minor (lane = task * tenants + t).
  std::vector<sim::Fifo<InferenceRequest>> queues_;
  std::size_t rotate_ = 0;  ///< fairness cursor over lanes
  BatcherCounters counters_;
  // Mirrored obs instruments (null without a registry).
  obs::Counter* obs_requests_in_ = nullptr;
  obs::Counter* obs_requests_rejected_ = nullptr;
  obs::Counter* obs_batches_out_ = nullptr;
  obs::Histogram* obs_batch_size_ = nullptr;
};

}  // namespace mann::serve
