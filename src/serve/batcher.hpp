// Dynamic batcher: coalesces same-task requests into device batches.
//
// A device runs one task's program at a time, so batching is per task:
// each task owns a bounded pending queue (a sim::Fifo, so queue pressure
// is observable through the same FifoStats code path as the device
// FIFOs). A task's queue is flushed into a Batch when it reaches
// max_batch requests (flush-on-full) or when its oldest request has
// waited max_wait_cycles (flush-on-timeout) — the classic
// throughput/latency trade every serving stack exposes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "data/types.hpp"
#include "serve/request.hpp"
#include "sim/fifo.hpp"
#include "sim/types.hpp"

namespace mann::serve {

struct BatcherConfig {
  std::size_t max_batch = 8;
  sim::Cycle max_wait_cycles = 200'000;
  /// Per-task pending-queue bound; enqueue() rejects beyond it (open-loop
  /// overload shedding, surfaced as FifoStats::full_rejects).
  std::size_t queue_capacity = 4096;
};

/// A flushed unit of work: same-task requests plus their stories laid out
/// contiguously for Accelerator::run().
struct Batch {
  std::size_t task = 0;
  std::vector<InferenceRequest> requests;
  std::vector<data::EncodedStory> stories;  ///< parallel to requests
  /// Earliest member deadline — the urgency the EDF scheduler orders by
  /// (sim::kNever when no member carries an SLO).
  sim::Cycle deadline = sim::kNever;

  [[nodiscard]] std::size_t size() const noexcept { return requests.size(); }
};

/// Why batches left the batcher, for the batching-efficiency report.
struct BatcherCounters {
  std::uint64_t requests_in = 0;
  std::uint64_t requests_rejected = 0;  ///< pending queue was full
  std::uint64_t batches_out = 0;
  std::uint64_t stories_out = 0;
  std::uint64_t flush_full = 0;     ///< queue reached max_batch
  std::uint64_t flush_timeout = 0;  ///< oldest request aged out
  std::uint64_t flush_drain = 0;    ///< forced out by drain()
};

class Batcher {
 public:
  Batcher(BatcherConfig config, std::size_t num_tasks);

  [[nodiscard]] const BatcherConfig& config() const noexcept {
    return config_;
  }

  /// Admits a request to its task's pending queue; false when that queue
  /// is full (the request is shed, counted in requests_rejected).
  [[nodiscard]] bool enqueue(const InferenceRequest& request);

  /// Returns the next ready batch (full or timed out) at `now`, fairly
  /// rotating across tasks; nullopt when nothing is ready.
  [[nodiscard]] std::optional<Batch> poll(sim::Cycle now);

  /// Flushes pending requests regardless of age/size — the end-of-stream
  /// drain once the traffic source is exhausted.
  [[nodiscard]] std::optional<Batch> drain(sim::Cycle now);

  [[nodiscard]] std::size_t pending() const noexcept;

  /// Earliest cycle at which a timeout flush could fire; sim::kNever when
  /// nothing is pending. Drives event-skipping in the serving loop.
  [[nodiscard]] sim::Cycle next_deadline() const noexcept;

  [[nodiscard]] const BatcherCounters& counters() const noexcept {
    return counters_;
  }

  /// Aggregate FifoStats over every per-task pending queue (one code path
  /// with the device FIFO reports).
  [[nodiscard]] sim::FifoStats queue_stats() const noexcept;

 private:
  [[nodiscard]] Batch flush_task(std::size_t task, sim::Cycle now);

  BatcherConfig config_;
  std::vector<sim::Fifo<InferenceRequest>> queues_;  ///< one per task
  std::size_t rotate_ = 0;  ///< fairness cursor over tasks
  BatcherCounters counters_;
};

}  // namespace mann::serve
