#include "serve/session.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/module.hpp"

namespace mann::serve {

namespace {

/// Folds the derived defaults into one canonical config — exactly what
/// run() historically did inline: WFQ weights default to the tenant
/// registry's, and the obs sinks are threaded into the scheduler.
ServerConfig resolve_config(ServerConfig config) {
  if (config.scheduler.policy == SchedulerPolicy::kWfq &&
      config.scheduler.tenant_weights.empty()) {
    config.scheduler.tenant_weights.reserve(config.traffic.tenants.size());
    for (const TenantConfig& tenant : config.traffic.tenants) {
      config.scheduler.tenant_weights.push_back(tenant.weight);
    }
  }
  config.scheduler.metrics = config.metrics;
  config.scheduler.trace = config.trace;
  return config;
}

std::vector<TaskWorkload> make_workloads(
    const std::vector<ServedModel>& models) {
  if (models.empty()) {
    throw std::invalid_argument("ServerSession: no models to serve");
  }
  std::vector<TaskWorkload> workloads;
  workloads.reserve(models.size());
  for (std::size_t t = 0; t < models.size(); ++t) {
    if (models[t].stories.empty()) {
      throw std::invalid_argument("ServerSession: model with empty corpus");
    }
    workloads.push_back({t, models[t].stories});
  }
  return workloads;
}

std::vector<accel::Accelerator> make_devices(
    const accel::AccelConfig& accel, const std::vector<ServedModel>& models) {
  std::vector<accel::Accelerator> devices;
  devices.reserve(models.size());
  for (const ServedModel& model : models) {
    devices.emplace_back(accel, model.program);
  }
  return devices;
}

}  // namespace

/// Frontend: pulls due arrivals out of the merged source (generator +
/// injected submissions), through the admission controller, into the
/// batcher. Every refusal — an admission decision or the batcher's full
/// lane — lands in the controller's unified ShedReason accounting, and
/// (when completion collection is on) in the session outbox as a shed
/// Completion.
class ServerSession::Frontend final : public sim::Module {
 public:
  explicit Frontend(ServerSession& session)
      : Module("FRONTEND"), s_(session) {}

  void tick() override {
    const sim::Cycle now = s_.simulator_.now();
    while (std::optional<InferenceRequest> request = s_.poll_arrival(now)) {
      // The outlook snapshots the downstream state the controller judges
      // against: total pending requests for occupancy, and the
      // scheduler's own cost model for the doom test. backlog_cycles
      // walks every pending batch, so it is only priced when a doom
      // decision can actually consume it — the transparent/legacy paths
      // stay O(1) per arrival.
      AdmissionOutlook outlook;
      outlook.pending_requests =
          s_.batcher_.pending() + s_.scheduler_.pending_stories();
      if (s_.admission_.config().shed_doomed &&
          request->deadline_cycle != sim::kNever) {
        outlook.service_estimate =
            s_.scheduler_.service_estimate(request->task);
        outlook.backlog_cycles_per_device =
            s_.scheduler_.backlog_cycles(now) /
            s_.scheduler_.config().devices;
      }
      obs::TraceRecorder* trace = s_.config_.trace;
      if (trace != nullptr) {
        trace->begin_async(
            "request", request->id, now,
            static_cast<std::int64_t>(request->task), request->tenant,
            static_cast<std::int64_t>(request->deadline_cycle));
      }
      std::optional<ShedReason> shed;
      if (const std::optional<ShedReason> reason =
              s_.admission_.decide(*request, now, outlook)) {
        s_.admission_.record_shed(request->tenant, *reason);
        shed = reason;
      } else if (!s_.batcher_.enqueue(*request)) {
        s_.admission_.record_shed(request->tenant, ShedReason::kQueueFull);
        shed = ShedReason::kQueueFull;
      } else {
        s_.admission_.record_admitted(request->tenant);
      }
      if (trace != nullptr) {
        if (shed.has_value()) {
          // A shed request's lifecycle ends at the frontend: an instant
          // carrying the ShedReason, then the request span closes.
          trace->instant(obs::Domain::kSim, obs::kTrackFrontend, "shed",
                         now, shed_reason_name(*shed),
                         static_cast<std::int64_t>(request->task),
                         request->tenant);
          trace->end_async("request", request->id, now);
        } else {
          trace->begin_async("queued", request->id, now,
                             static_cast<std::int64_t>(request->task),
                             request->tenant);
        }
      }
      if (shed.has_value() && s_.options_.collect_completions) {
        // Sheds resolve here and now: a Completion with a partial
        // response (identity + timing of the refusal, no answer).
        Completion completion;
        completion.outcome = outcome_from_shed(*shed);
        completion.cycle = now;
        completion.response.id = request->id;
        completion.response.task = request->task;
        completion.response.tenant = request->tenant;
        completion.response.enqueue_cycle = request->enqueue_cycle;
        completion.response.complete_cycle = now;
        completion.response.deadline_cycle = request->deadline_cycle;
        s_.outbox_.push_back(std::move(completion));
      }
      mark_busy();
    }
  }

  [[nodiscard]] std::optional<sim::Cycle> next_activity() const override {
    return s_.next_arrival();
  }

 private:
  ServerSession& s_;
};

/// Moves ready batches from the batcher into the scheduler, respecting
/// the scheduler's queue bound (back-pressure instead of drop). Once the
/// session is draining (explicitly, or auto-drain with idle sources —
/// the closed-loop end-of-run), flushes sub-size leftovers immediately
/// rather than letting them age to the timeout.
class ServerSession::BatchStage final : public sim::Module {
 public:
  explicit BatchStage(ServerSession& session)
      : Module("BATCHER"), s_(session) {}

  void tick() override {
    const sim::Cycle now = s_.simulator_.now();
    while (s_.scheduler_.has_capacity()) {
      std::optional<Batch> batch = s_.batcher_.poll(now);
      if (!batch && s_.drain_ready()) {
        batch = s_.batcher_.drain(now);
      }
      if (!batch) {
        return;
      }
      obs::TraceRecorder* trace = s_.config_.trace;
      if (trace != nullptr) {
        // Batch formation closes every member's lane residence and opens
        // its scheduler-queue wait (the scheduler closes "pending" at
        // dispatch — it knows the dispatch cycle, this module does not).
        for (const InferenceRequest& request : batch->requests) {
          trace->end_async("queued", request.id, now);
          trace->begin_async("pending", request.id, now,
                             static_cast<std::int64_t>(request.task),
                             request.tenant);
        }
      }
      if (!s_.scheduler_.submit(*std::move(batch))) {
        throw std::logic_error("BatchStage: submit after has_capacity");
      }
      mark_busy();
    }
  }

  [[nodiscard]] std::optional<sim::Cycle> next_activity() const override {
    if (s_.batcher_.pending() == 0) {
      return sim::kNever;
    }
    if (s_.drain_ready() || !s_.scheduler_.has_capacity()) {
      // Drain mode or blocked on downstream: may act at the very next
      // tick, so report the current clock (vetoes any skip past it).
      return s_.simulator_.now();
    }
    // Waiting to fill: wake at the oldest request's timeout. A fill-up
    // wakes us anyway via the frontend's arrival horizon.
    return s_.batcher_.next_deadline();
  }

 private:
  ServerSession& s_;
};

/// Drives the device pool, feeds completed responses to the metrics and
/// (when completion collection is on) mirrors them into the outbox.
class ServerSession::Dispatch final : public sim::Module {
 public:
  explicit Dispatch(ServerSession& session)
      : Module("DISPATCH"), s_(session) {}

  void tick() override {
    const sim::Cycle now = s_.simulator_.now();
    s_.scheduler_.step(now);
    for (const InferenceResponse& response : s_.scheduler_.collect(now)) {
      s_.metrics_.record(response);
      s_.last_completion_ =
          std::max(s_.last_completion_, response.complete_cycle);
      if (s_.options_.collect_completions) {
        Completion completion;
        completion.outcome = outcome_from_response(response);
        completion.cache_outcome = response.cache_outcome;
        completion.cycle = response.complete_cycle;
        completion.response = response;
        s_.outbox_.push_back(std::move(completion));
      }
      mark_busy();
    }
  }

  [[nodiscard]] std::optional<sim::Cycle> next_activity() const override {
    if (s_.scheduler_.pending_batches() > 0) {
      // Next dispatch opportunity: a slot freeing (conservative — a past
      // cycle just vetoes the skip and falls back to per-cycle ticking).
      return std::min(s_.scheduler_.next_slot_free(s_.simulator_.now()),
                      s_.scheduler_.next_completion());
    }
    return s_.scheduler_.next_completion();
  }

 private:
  ServerSession& s_;
};

ServerSession::ServerSession(ServerConfig config,
                             const std::vector<ServedModel>& models,
                             SessionOptions options)
    : config_(resolve_config(std::move(config))),
      options_(options),
      workloads_(make_workloads(models)),
      tenants_(config_.traffic.tenants),
      slo_(config_.traffic.slo),
      generator_(config_.traffic, workloads_, options_.total_requests),
      admission_(config_.admission, config_.traffic.tenants,
                 config_.metrics),
      batcher_(config_.batcher, models.size(),
               std::max<std::size_t>(1, config_.traffic.tenants.size()),
               config_.metrics),
      scheduler_(config_.scheduler, make_devices(config_.accel, models)),
      metrics_(config_.accel.clock_hz, config_.histogram_bins,
               /*histogram_hi_cycles=*/50.0e6, config_.power),
      cursors_(models.size(), 0),
      // Injected ids start after the generator's range so the merged
      // id space stays collision-free (and, in pure open loop, 0-based);
      // first_id shifts the whole range for multi-instance drivers.
      next_injected_id_(options_.first_id + options_.total_requests) {
  frontend_ = std::make_unique<Frontend>(*this);
  batch_stage_ = std::make_unique<BatchStage>(*this);
  dispatch_ = std::make_unique<Dispatch>(*this);
  simulator_.add_module(*frontend_);
  simulator_.add_module(*batch_stage_);
  simulator_.add_module(*dispatch_);
}

ServerSession::~ServerSession() = default;

std::optional<InferenceRequest> ServerSession::poll_arrival(sim::Cycle now) {
  if (!injected_.empty()) {
    const InferenceRequest& front = injected_.front();
    // The generator wins ties so a mixed schedule orders exactly like
    // the closed loop would on the shared cycle.
    if (front.enqueue_cycle <= now &&
        front.enqueue_cycle < generator_.next_arrival()) {
      InferenceRequest request = front;
      injected_.pop_front();
      return request;
    }
  }
  return generator_.poll(now);
}

sim::Cycle ServerSession::next_arrival() const noexcept {
  const sim::Cycle injected = injected_.empty()
                                  ? sim::kNever
                                  : injected_.front().enqueue_cycle;
  return std::min(generator_.next_arrival(), injected);
}

sim::Cycle ServerSession::deadline_for(std::size_t task,
                                       TenantId tenant) const noexcept {
  // Mirrors TrafficGenerator::deadline_for over the *live* tables, so a
  // submitted request is stamped exactly like a generated one.
  if (tenant < tenants_.size() &&
      tenants_[tenant].slo_deadline_cycles != 0) {
    return tenants_[tenant].slo_deadline_cycles;
  }
  return slo_.deadline_for(task);
}

RequestId ServerSession::submit(const SubmitRequest& request) {
  if (finalized_) {
    throw std::logic_error("ServerSession: submit after finalize()");
  }
  if (request.task >= workloads_.size()) {
    throw std::out_of_range("ServerSession: task " +
                            std::to_string(request.task) + " outside the " +
                            std::to_string(workloads_.size()) +
                            "-model registry");
  }
  if (request.tenant >= num_tenants()) {
    throw std::out_of_range("ServerSession: tenant " +
                            std::to_string(request.tenant) +
                            " outside the " +
                            std::to_string(num_tenants()) +
                            "-entry registry");
  }
  InferenceRequest arrival;
  arrival.id = next_injected_id_++;
  arrival.task = request.task;
  arrival.tenant = request.tenant;
  const TaskWorkload& workload = workloads_[request.task];
  std::size_t& cursor = cursors_[request.task];
  arrival.story = &workload.stories[cursor];
  cursor = (cursor + 1) % workload.stories.size();
  const sim::Cycle at =
      std::max({request.at_cycle, simulator_.now(), last_arrival_});
  last_arrival_ = at;
  arrival.enqueue_cycle = at;
  if (request.deadline_cycles == sim::kNever) {
    arrival.deadline_cycle = sim::kNever;
  } else if (request.deadline_cycles != 0) {
    arrival.deadline_cycle = at + request.deadline_cycles;
  } else {
    const sim::Cycle slo = deadline_for(request.task, request.tenant);
    arrival.deadline_cycle = slo == sim::kNever ? sim::kNever : at + slo;
  }
  injected_.push_back(arrival);
  ++injected_emitted_;
  return arrival.id;
}

bool ServerSession::step(sim::Cycle cycles) {
  if (cycles == 0) {
    return step_until(sim::kNever);
  }
  const sim::Cycle now = simulator_.now();
  // Saturate instead of wrapping past kNever.
  const sim::Cycle limit =
      cycles >= sim::kNever - now ? sim::kNever : now + cycles;
  return step_until(limit);
}

bool ServerSession::step_until(sim::Cycle limit) {
  if (finalized_) {
    throw std::logic_error("ServerSession: step after finalize()");
  }
  if (!wall_running_) {
    wall_running_ = true;
    wall_start_ = std::chrono::steady_clock::now();
  }
  if (!watchdog_start_.has_value()) {
    watchdog_start_ = simulator_.now();
  }
  // This loop is Simulator::run_events with two surgical additions — the
  // exclusive `limit` holds (marked below) — so that with limit ==
  // sim::kNever it replays the closed-loop run() tick sequence
  // bit-identically, watchdog throws included.
  const sim::Cycle start = *watchdog_start_;
  const sim::Cycle max_cycles = config_.watchdog_cycles;
  const std::vector<sim::Module*>& modules = simulator_.modules();
  while (!idle()) {
    if (simulator_.now() - start >= max_cycles) {
      throw std::runtime_error(
          "Simulator: watchdog expired — dataflow deadlock or runaway");
    }

    // Quiescence check: if every module agrees nothing can happen before
    // some future cycle, jump straight there. A nullopt vetoes the jump.
    sim::Cycle horizon = sim::kNever;
    bool skippable = !modules.empty();
    for (const sim::Module* m : modules) {
      const std::optional<sim::Cycle> next = m->next_activity();
      if (!next.has_value()) {
        skippable = false;
        break;
      }
      horizon = std::min(horizon, *next);
    }
    if (skippable && horizon > simulator_.now()) {
      if (limit != sim::kNever && horizon >= limit) {
        // Exclusive-limit hold: the next event sits at or past the
        // horizon the driver vouched for, so stop *without* moving the
        // clock — a later submit may land before `horizon`.
        return false;
      }
      // Clamp so the watchdog still fires instead of wrapping past it.
      simulator_.advance(std::min(horizon, start + max_cycles) -
                         simulator_.now());
      if (simulator_.now() - start >= max_cycles) {
        throw std::runtime_error(
            "Simulator: watchdog expired — all modules idle forever");
      }
    } else if (limit != sim::kNever && simulator_.now() >= limit) {
      // Exclusive-limit hold: work is due *now*, but now is past the
      // driver's horizon — the tick belongs to a future step_until.
      return false;
    }

    for (sim::Module* m : modules) {
      m->tick();
    }
    simulator_.advance(1);
  }
  return true;
}

std::vector<Completion> ServerSession::poll_completions() {
  // Within one drained window, completions from different scheduler
  // collect() calls interleave only at equal cycles; (cycle, id) makes
  // the stream a deterministic total order. Windows drain at
  // non-decreasing clock values, so concatenation preserves it globally.
  std::sort(outbox_.begin(), outbox_.end(),
            [](const Completion& a, const Completion& b) {
              if (a.cycle != b.cycle) {
                return a.cycle < b.cycle;
              }
              return a.response.id < b.response.id;
            });
  return std::exchange(outbox_, {});
}

bool ServerSession::idle() const noexcept {
  return sources_exhausted() && batcher_.pending() == 0 &&
         scheduler_.idle();
}

SessionInfo ServerSession::info() const {
  SessionInfo info;
  info.offered = generator_.emitted() + injected_emitted_;
  for (const std::uint64_t admitted : admission_.tenant_admitted()) {
    info.admitted += admitted;
  }
  info.completed = metrics_.completed();
  info.shed = admission_.sheds().total();
  info.batcher_pending = batcher_.pending();
  info.scheduler_pending = scheduler_.pending_stories();
  info.in_flight = scheduler_.in_flight();
  info.cycle = simulator_.now();
  info.draining = draining_;
  info.policy = config_.scheduler.policy;
  return info;
}

void ServerSession::set_tenant(TenantId tenant, const TenantConfig& config) {
  if (config.weight <= 0.0) {
    throw std::invalid_argument(
        "ServerSession: tenant weight must be > 0");
  }
  // The admission controller validates range and quota knobs and throws
  // before anything is mutated, keeping the update all-or-nothing.
  admission_.set_tenant(tenant, config);
  scheduler_.set_tenant_weight(tenant, config.weight);
  generator_.set_tenant_slo(tenant, config.slo_deadline_cycles);
  tenants_[tenant] = config;
}

void ServerSession::set_slo(const SloConfig& slo) {
  slo_ = slo;
  generator_.set_slo(slo);
}

bool ServerSession::set_policy(SchedulerPolicy policy) {
  if (!scheduler_.set_policy(policy)) {
    return false;
  }
  config_.scheduler.policy = policy;
  return true;
}

ServingReport ServerSession::finalize() {
  if (finalized_) {
    throw std::logic_error("ServerSession: finalize() called twice");
  }
  drain();
  (void)step_until(sim::kNever);
  // Drain leftover speculative work so it is inside the wall measurement
  // and the cache counters below are complete.
  scheduler_.quiesce();
  if (wall_running_) {
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wall_start_;
    wall_seconds_ = wall.count();
  }
  finalized_ = true;

  RunTotals totals;
  totals.offered = generator_.emitted() + injected_emitted_;
  totals.makespan = last_completion_;
  totals.max_batch = config_.batcher.max_batch;
  totals.batching = batcher_.counters();
  totals.sheds = admission_.sheds();
  totals.tenant_sheds = admission_.tenant_sheds();
  totals.tenant_admitted = admission_.tenant_admitted();
  // The live registry, not the construction-time snapshot: a report
  // should echo the contracts the run actually ended under.
  totals.tenants = tenants_;
  totals.queue_stats = batcher_.queue_stats();
  totals.queue_stats += scheduler_.queue_stats();
  totals.queue_stats += scheduler_.device_queue_stats();
  totals.devices = scheduler_.device_reports();
  totals.model_uploads = scheduler_.total_model_uploads();
  totals.model_evictions = scheduler_.total_model_evictions();
  totals.stolen_batches = scheduler_.total_stolen_batches();
  totals.device_ops = scheduler_.device_ops();
  totals.link_active_cycles = scheduler_.link_active_cycles();
  totals.host_wall_seconds = wall_seconds_;
  totals.workers = scheduler_.worker_count();
  totals.cycle_cache_enabled = scheduler_.cache_enabled();
  totals.cycle_cache = scheduler_.cache_stats();
  totals.speculation = scheduler_.speculation_stats();
  return metrics_.finalize(std::move(totals));
}

}  // namespace mann::serve
