#include "accel/service_cycle_cache.hpp"

#include <stdexcept>

namespace mann::accel {

std::uint64_t digest_stories(
    std::span<const data::EncodedStory> stories) noexcept {
  // Digests index streams, not bytes: one multiply per token.
  std::uint64_t h = kFnv1aOffset;
  for (const data::EncodedStory& story : stories) {
    h = fnv1a_mix(h, story.context.size());
    for (const std::vector<std::int32_t>& sentence : story.context) {
      h = fnv1a_mix(h, sentence.size());
      for (const std::int32_t word : sentence) {
        h = fnv1a_mix(h, static_cast<std::uint64_t>(word));
      }
    }
    h = fnv1a_mix(h, story.question.size());
    for (const std::int32_t word : story.question) {
      h = fnv1a_mix(h, static_cast<std::uint64_t>(word));
    }
    h = fnv1a_mix(h, static_cast<std::uint64_t>(story.answer));
  }
  return h;
}

std::size_t ServiceCycleCache::KeyHash::operator()(
    const Key& k) const noexcept {
  std::uint64_t h = kFnv1aOffset;
  h = fnv1a_mix(h, k.program_fingerprint);
  h = fnv1a_mix(h, k.stories_digest);
  h = fnv1a_mix(h, k.story_count);
  h = fnv1a_mix(h, k.model_resident ? 1 : 0);
  return static_cast<std::size_t>(h);
}

ServiceCycleCache::ServiceCycleCache(std::size_t capacity,
                                     obs::MetricsRegistry* metrics)
    : capacity_(capacity),
      obs_hits_(obs::counter(metrics, "accel.cycle_cache.hits")),
      obs_waits_(obs::counter(metrics, "accel.cycle_cache.waits")),
      obs_misses_(obs::counter(metrics, "accel.cycle_cache.misses")),
      obs_insertions_(obs::counter(metrics, "accel.cycle_cache.insertions")),
      obs_evictions_(obs::counter(metrics, "accel.cycle_cache.evictions")),
      obs_entries_(obs::gauge(metrics, "accel.cycle_cache.entries")) {
  if (capacity_ == 0) {
    throw std::invalid_argument("ServiceCycleCache: capacity must be > 0");
  }
}

std::optional<RunResult> ServiceCycleCache::acquire(const Key& key,
                                                    CacheOutcome* outcome) {
  std::unique_lock lock(mutex_);
  bool waited = false;
  for (;;) {
    if (const auto it = index_.find(key); it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // touch
      // A lookup resolved by someone else's in-flight simulation is a
      // wait, not a hit: it deduplicated work but paid miss-shaped
      // latency, and exactly one of hits/waits/misses counts per lookup.
      if (waited) {
        ++stats_.waits;
        obs::add(obs_waits_);
      } else {
        ++stats_.hits;
        obs::add(obs_hits_);
      }
      if (outcome != nullptr) {
        *outcome = waited ? CacheOutcome::kWait : CacheOutcome::kHit;
      }
      return it->second->result;
    }
    if (!in_flight_.contains(key)) {
      in_flight_.insert(key);
      ++stats_.misses;
      obs::add(obs_misses_);
      if (outcome != nullptr) {
        *outcome = CacheOutcome::kMiss;
      }
      return std::nullopt;  // caller owns the computation
    }
    waited = true;
    ready_.wait(lock, [&] {
      return index_.contains(key) || !in_flight_.contains(key);
    });
  }
}

void ServiceCycleCache::publish(const Key& key, const RunResult& result) {
  {
    std::lock_guard lock(mutex_);
    in_flight_.erase(key);
    if (!index_.contains(key)) {
      lru_.push_front({key, result});
      index_.emplace(key, lru_.begin());
      ++stats_.insertions;
      obs::add(obs_insertions_);
      while (lru_.size() > capacity_) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
        ++stats_.evictions;
        obs::add(obs_evictions_);
      }
      obs::set(obs_entries_, static_cast<std::int64_t>(lru_.size()));
    }
  }
  ready_.notify_all();
}

void ServiceCycleCache::abandon(const Key& key) noexcept {
  {
    std::lock_guard lock(mutex_);
    in_flight_.erase(key);
  }
  ready_.notify_all();
}

ServiceCycleCacheStats ServiceCycleCache::stats() const {
  std::lock_guard lock(mutex_);
  ServiceCycleCacheStats s = stats_;
  s.entries = lru_.size();
  return s;
}

std::size_t ServiceCycleCache::size() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

void ServiceCycleCache::clear() {
  std::lock_guard lock(mutex_);
  lru_.clear();
  index_.clear();
  stats_ = {};
}

}  // namespace mann::accel
