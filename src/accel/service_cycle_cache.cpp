#include "accel/service_cycle_cache.hpp"

#include <bit>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

#include "serve/eviction.hpp"

namespace mann::accel {

std::uint64_t digest_stories(
    std::span<const data::EncodedStory> stories) noexcept {
  // Digests index streams, not bytes: one multiply per token.
  std::uint64_t h = kFnv1aOffset;
  for (const data::EncodedStory& story : stories) {
    h = fnv1a_mix(h, story.context.size());
    for (const std::vector<std::int32_t>& sentence : story.context) {
      h = fnv1a_mix(h, sentence.size());
      for (const std::int32_t word : sentence) {
        h = fnv1a_mix(h, static_cast<std::uint64_t>(word));
      }
    }
    h = fnv1a_mix(h, story.question.size());
    for (const std::int32_t word : story.question) {
      h = fnv1a_mix(h, static_cast<std::uint64_t>(word));
    }
    h = fnv1a_mix(h, static_cast<std::uint64_t>(story.answer));
  }
  return h;
}

std::size_t ServiceCycleCache::KeyHash::operator()(
    const Key& k) const noexcept {
  std::uint64_t h = kFnv1aOffset;
  h = fnv1a_mix(h, k.program_fingerprint);
  h = fnv1a_mix(h, k.stories_digest);
  h = fnv1a_mix(h, k.story_count);
  h = fnv1a_mix(h, k.model_resident ? 1 : 0);
  return static_cast<std::size_t>(h);
}

ServiceCycleCache::ServiceCycleCache(std::size_t capacity,
                                     obs::MetricsRegistry* metrics,
                                     std::size_t segments)
    : capacity_(capacity),
      obs_hits_(obs::counter(metrics, "accel.cycle_cache.hits")),
      obs_waits_(obs::counter(metrics, "accel.cycle_cache.waits")),
      obs_misses_(obs::counter(metrics, "accel.cycle_cache.misses")),
      obs_insertions_(obs::counter(metrics, "accel.cycle_cache.insertions")),
      obs_evictions_(obs::counter(metrics, "accel.cycle_cache.evictions")),
      obs_entries_(obs::gauge(metrics, "accel.cycle_cache.entries")) {
  if (capacity_ == 0) {
    throw std::invalid_argument("ServiceCycleCache: capacity must be > 0");
  }
  if (segments == 0) {
    throw std::invalid_argument("ServiceCycleCache: segments must be > 0");
  }
  segment_capacity_ = (capacity_ + segments - 1) / segments;
  segments_.reserve(segments);
  for (std::size_t i = 0; i < segments; ++i) {
    auto segment = std::make_unique<Segment>();
    if (segments > 1 && metrics != nullptr) {
      const std::string prefix =
          "accel.cycle_cache.segment." + std::to_string(i) + ".";
      segment->obs_hits = obs::counter(metrics, prefix + "hits");
      segment->obs_waits = obs::counter(metrics, prefix + "waits");
      segment->obs_misses = obs::counter(metrics, prefix + "misses");
      segment->obs_contended = obs::counter(metrics, prefix + "contended");
    }
    segments_.push_back(std::move(segment));
  }
}

// Out of line: serve::EvictionPolicy is forward-declared in the header.
ServiceCycleCache::~ServiceCycleCache() = default;

ServiceCycleCache::Segment& ServiceCycleCache::segment_for(
    const Key& key) noexcept {
  // KeyHash mixes the story digest, so concurrent distinct batches
  // spread across segments instead of queueing on one mutex.
  return *segments_[KeyHash{}(key) % segments_.size()];
}

std::unique_lock<std::mutex> ServiceCycleCache::lock_segment(
    Segment& segment) {
  std::unique_lock lock(segment.mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    // Host-domain contention signal only — never feeds a simulated
    // number, so the counter may vary run to run.
    obs::add(segment.obs_contended);
    lock.lock();
  }
  return lock;
}

std::optional<RunResult> ServiceCycleCache::acquire(const Key& key,
                                                    CacheOutcome* outcome) {
  Segment& segment = segment_for(key);
  std::unique_lock lock = lock_segment(segment);
  bool waited = false;
  for (;;) {
    if (const auto it = segment.index.find(key); it != segment.index.end()) {
      segment.lru.splice(segment.lru.begin(), segment.lru,
                         it->second);  // touch
      it->second->touch_seq = ++segment.touch_counter;
      ++it->second->hits;
      // A lookup resolved by someone else's in-flight simulation is a
      // wait, not a hit: it deduplicated work but paid miss-shaped
      // latency, and exactly one of hits/waits/misses counts per lookup.
      if (waited) {
        ++segment.stats.waits;
        obs::add(obs_waits_);
        obs::add(segment.obs_waits);
      } else {
        ++segment.stats.hits;
        obs::add(obs_hits_);
        obs::add(segment.obs_hits);
      }
      if (outcome != nullptr) {
        *outcome = waited ? CacheOutcome::kWait : CacheOutcome::kHit;
      }
      return it->second->result;
    }
    if (!segment.in_flight.contains(key)) {
      segment.in_flight.insert(key);
      ++segment.stats.misses;
      obs::add(obs_misses_);
      obs::add(segment.obs_misses);
      if (outcome != nullptr) {
        *outcome = CacheOutcome::kMiss;
      }
      return std::nullopt;  // caller owns the computation
    }
    waited = true;
    segment.ready.wait(lock, [&] {
      return segment.index.contains(key) || !segment.in_flight.contains(key);
    });
  }
}

void ServiceCycleCache::evict_over_capacity_locked(Segment& segment) {
  while (segment.lru.size() > segment_capacity_) {
    auto victim = std::prev(segment.lru.end());  // LRU order: back is coldest
    if (segment.eviction != nullptr && segment.lru.size() > 1) {
      // Policy view of the resident entries (in list order): recency is
      // the touch clock, frequency the per-entry hit count, and reload
      // cost the entry's own simulated cycles — re-simulating IS the
      // reload. The policy's pick maps back to a list iterator.
      std::vector<serve::EvictionCandidate> candidates;
      std::vector<std::list<Entry>::iterator> iters;
      candidates.reserve(segment.lru.size());
      iters.reserve(segment.lru.size());
      std::size_t index = 0;
      for (auto it = segment.lru.begin(); it != segment.lru.end();
           ++it, ++index) {
        serve::EvictionCandidate c;
        c.slot = index;
        c.resident_task = index;
        c.last_dispatch_cycle = it->touch_seq;
        c.resident_task_dispatches = it->hits;
        c.reload_cycles = it->result.total_cycles;
        candidates.push_back(c);
        iters.push_back(it);
      }
      victim = iters[segment.eviction->pick_victim(candidates)];
    }
    segment.index.erase(victim->key);
    segment.lru.erase(victim);
    entry_count_.fetch_sub(1, std::memory_order_relaxed);
    ++segment.stats.evictions;
    obs::add(obs_evictions_);
  }
}

void ServiceCycleCache::publish(const Key& key, const RunResult& result) {
  Segment& segment = segment_for(key);
  {
    std::unique_lock lock = lock_segment(segment);
    segment.in_flight.erase(key);
    if (segment.admission_floor > 0 &&
        result.total_cycles < segment.admission_floor) {
      // Cheaper to re-simulate than to hold a slot: don't admit. Waiters
      // below still wake and re-acquire — one of them re-runs inline.
      ++segment.stats.admission_rejects;
    } else if (!segment.index.contains(key)) {
      segment.lru.push_front({key, result, ++segment.touch_counter, 0});
      segment.index.emplace(key, segment.lru.begin());
      entry_count_.fetch_add(1, std::memory_order_relaxed);
      ++segment.stats.insertions;
      obs::add(obs_insertions_);
      evict_over_capacity_locked(segment);
      obs::set(obs_entries_, entry_count_.load(std::memory_order_relaxed));
    }
  }
  segment.ready.notify_all();
}

void ServiceCycleCache::abandon(const Key& key) noexcept {
  Segment& segment = segment_for(key);
  {
    std::lock_guard lock(segment.mutex);
    segment.in_flight.erase(key);
  }
  segment.ready.notify_all();
}

void ServiceCycleCache::set_admission_floor(sim::Cycle floor) {
  for (const auto& segment : segments_) {
    std::lock_guard lock(segment->mutex);
    segment->admission_floor = floor;
  }
}

void ServiceCycleCache::set_eviction_policy(
    std::unique_ptr<serve::EvictionPolicy> policy) {
  if (segments_.size() > 1 && policy != nullptr) {
    throw std::invalid_argument(
        "ServiceCycleCache: a sharded cache needs one policy per segment; "
        "use the EvictionPolicyKind overload");
  }
  for (const auto& segment : segments_) {
    std::lock_guard lock(segment->mutex);
    segment->eviction = std::move(policy);
  }
}

void ServiceCycleCache::set_eviction_policy(serve::EvictionPolicyKind kind,
                                            obs::MetricsRegistry* metrics) {
  for (const auto& segment : segments_) {
    auto policy = serve::make_eviction_policy(kind, metrics);
    std::lock_guard lock(segment->mutex);
    segment->eviction = std::move(policy);
  }
}

ServiceCycleCacheStats ServiceCycleCache::stats() const {
  ServiceCycleCacheStats total;
  for (const auto& segment : segments_) {
    std::lock_guard lock(segment->mutex);
    total.hits += segment->stats.hits;
    total.misses += segment->stats.misses;
    total.waits += segment->stats.waits;
    total.insertions += segment->stats.insertions;
    total.evictions += segment->stats.evictions;
    total.admission_rejects += segment->stats.admission_rejects;
    total.entries += segment->lru.size();
  }
  return total;
}

std::size_t ServiceCycleCache::size() const {
  std::size_t total = 0;
  for (const auto& segment : segments_) {
    std::lock_guard lock(segment->mutex);
    total += segment->lru.size();
  }
  return total;
}

void ServiceCycleCache::clear() {
  for (const auto& segment : segments_) {
    std::lock_guard lock(segment->mutex);
    segment->lru.clear();
    segment->index.clear();
    segment->stats = {};
    segment->touch_counter = 0;
  }
  entry_count_.store(0, std::memory_order_relaxed);
  obs::set(obs_entries_, 0);
}

// --------------------------------------------------------- persistence
//
// Layout (host-endian; the file is a per-machine cache, not an exchange
// format):
//   u64 magic "MANNCYC1"  u32 version  u32 reserved
//   u64 payload_bytes     u64 payload_fnv1a   u64 entry_count
//   payload: entries back-to-back, each
//     Key{u64 fingerprint, u64 digest, u64 story_count, u8 resident}
//     RunResult{stories[], total_cycles, seconds(bits), modules[],
//               total_ops, fifo_in, fifo_out, link_active, stream_words}
// Doubles travel as raw bit patterns (std::bit_cast), so a loaded result
// is bit-identical to the published one — the property the serving
// stack's sequential-vs-parallel identity gate depends on.
//
// A sharded cache serializes the merged view (segments in order, each
// coldest-first), so files round-trip between any two segment counts.

namespace {

constexpr std::uint64_t kPersistMagic = 0x3143594E4E414DULL;  // "MANNYC1\0"

void put_u64(std::string& out, std::uint64_t v) {
  char bytes[sizeof(v)];
  std::memcpy(bytes, &v, sizeof(v));
  out.append(bytes, sizeof(v));
}

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_double(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_ops(std::string& out, const sim::OpCounts& ops) {
  put_u64(out, ops.mac);
  put_u64(out, ops.add);
  put_u64(out, ops.exp);
  put_u64(out, ops.div);
  put_u64(out, ops.mem_read);
  put_u64(out, ops.mem_write);
  put_u64(out, ops.compare);
}

void put_fifo(std::string& out, const sim::FifoStats& s) {
  put_u64(out, s.pushes);
  put_u64(out, s.pops);
  put_u64(out, s.full_rejects);
  put_u64(out, s.max_occupancy);
}

/// Bounds-checked reader over the loaded payload; every get_* returns
/// false once the cursor would pass the end, poisoning the whole parse.
struct Reader {
  const char* data = nullptr;
  std::size_t size = 0;
  std::size_t pos = 0;
  bool ok = true;

  bool take(void* out, std::size_t n) {
    if (!ok || size - pos < n) {
      ok = false;
      return false;
    }
    std::memcpy(out, data + pos, n);
    pos += n;
    return true;
  }
  std::uint64_t get_u64() {
    std::uint64_t v = 0;
    take(&v, sizeof(v));
    return v;
  }
  std::uint8_t get_u8() {
    std::uint8_t v = 0;
    take(&v, sizeof(v));
    return v;
  }
  double get_double() { return std::bit_cast<double>(get_u64()); }
  sim::OpCounts get_ops() {
    sim::OpCounts ops;
    ops.mac = get_u64();
    ops.add = get_u64();
    ops.exp = get_u64();
    ops.div = get_u64();
    ops.mem_read = get_u64();
    ops.mem_write = get_u64();
    ops.compare = get_u64();
    return ops;
  }
  sim::FifoStats get_fifo() {
    sim::FifoStats s;
    s.pushes = get_u64();
    s.pops = get_u64();
    s.full_rejects = get_u64();
    s.max_occupancy = static_cast<std::size_t>(get_u64());
    return s;
  }
  /// Sanity bound for element counts: each element costs at least
  /// `min_bytes`, so a count that cannot fit in the remaining payload is
  /// corruption, not data.
  bool plausible_count(std::uint64_t count, std::size_t min_bytes) const {
    return ok && count <= (size - pos) / (min_bytes == 0 ? 1 : min_bytes);
  }
};

std::uint64_t fnv1a_bytes(const std::string& bytes) {
  std::uint64_t h = kFnv1aOffset;
  for (const char c : bytes) {
    h = fnv1a_mix(h, static_cast<std::uint8_t>(c));
  }
  return h;
}

void serialize_entry(std::string& out, const ServiceCycleCache::Key& key,
                     const RunResult& r) {
  put_u64(out, key.program_fingerprint);
  put_u64(out, key.stories_digest);
  put_u64(out, key.story_count);
  put_u8(out, key.model_resident ? 1 : 0);

  put_u64(out, r.stories.size());
  for (const StoryOutcome& s : r.stories) {
    put_u64(out, static_cast<std::uint64_t>(
                     static_cast<std::int64_t>(s.prediction)));
    put_u64(out, s.output_probes);
    put_u8(out, s.early_exit ? 1 : 0);
    put_u64(out, s.finish_cycle);
  }
  put_u64(out, r.total_cycles);
  put_double(out, r.seconds);
  put_u64(out, r.modules.size());
  for (const ModuleReport& m : r.modules) {
    put_u64(out, m.name.size());
    out.append(m.name);
    put_u64(out, m.stats.busy_cycles);
    put_u64(out, m.stats.stall_cycles);
    put_ops(out, m.stats.ops);
  }
  put_ops(out, r.total_ops);
  put_fifo(out, r.fifo_in_stats);
  put_fifo(out, r.fifo_out_stats);
  put_u64(out, r.link_active_cycles);
  put_u64(out, r.stream_words);
}

bool deserialize_entry(Reader& in, ServiceCycleCache::Key& key,
                       RunResult& r) {
  key.program_fingerprint = in.get_u64();
  key.stories_digest = in.get_u64();
  key.story_count = static_cast<std::size_t>(in.get_u64());
  key.model_resident = in.get_u8() != 0;

  const std::uint64_t stories = in.get_u64();
  if (!in.plausible_count(stories, 25)) {  // 2×u64 + u8 + u64 per story
    return false;
  }
  r.stories.resize(static_cast<std::size_t>(stories));
  for (StoryOutcome& s : r.stories) {
    s.prediction = static_cast<std::int32_t>(
        static_cast<std::int64_t>(in.get_u64()));
    s.output_probes = in.get_u64();
    s.early_exit = in.get_u8() != 0;
    s.finish_cycle = in.get_u64();
  }
  r.total_cycles = in.get_u64();
  r.seconds = in.get_double();
  const std::uint64_t modules = in.get_u64();
  if (!in.plausible_count(modules, 8 + 2 * 8 + 7 * 8)) {
    return false;
  }
  r.modules.resize(static_cast<std::size_t>(modules));
  for (ModuleReport& m : r.modules) {
    const std::uint64_t name_len = in.get_u64();
    if (!in.plausible_count(name_len, 1)) {
      return false;
    }
    m.name.resize(static_cast<std::size_t>(name_len));
    if (!in.take(m.name.data(), m.name.size())) {
      return false;
    }
    m.stats.busy_cycles = in.get_u64();
    m.stats.stall_cycles = in.get_u64();
    m.stats.ops = in.get_ops();
  }
  r.total_ops = in.get_ops();
  r.fifo_in_stats = in.get_fifo();
  r.fifo_out_stats = in.get_fifo();
  r.link_active_cycles = in.get_u64();
  r.stream_words = static_cast<std::size_t>(in.get_u64());
  return in.ok;
}

}  // namespace

bool ServiceCycleCache::insert_locked(Segment& segment, Key key,
                                      RunResult result) {
  if (segment.index.contains(key)) {
    return false;
  }
  // Front = MRU: entries arrive coldest-first from save(), so each
  // warmer entry displaces the colder ones toward the eviction end.
  segment.lru.push_front({std::move(key), std::move(result), 0, 0});
  segment.index.emplace(segment.lru.front().key, segment.lru.begin());
  entry_count_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::size_t ServiceCycleCache::save(const std::string& path) const {
  std::string payload;
  std::uint64_t count = 0;
  for (const auto& segment : segments_) {
    std::lock_guard lock(segment->mutex);
    // Back-to-front: coldest first, so a capacity-truncating future load
    // naturally keeps the hottest entries resident (they insert last and
    // LRU-evict from the back).
    for (auto it = segment->lru.rbegin(); it != segment->lru.rend(); ++it) {
      serialize_entry(payload, it->key, it->result);
      ++count;
    }
  }
  std::string header;
  put_u64(header, kPersistMagic);
  put_u64(header, kPersistVersion);  // u32 version + u32 reserved, as u64
  put_u64(header, payload.size());
  put_u64(header, fnv1a_bytes(payload));
  put_u64(header, count);

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "ServiceCycleCache: cannot write %s\n",
                 tmp.c_str());
    return 0;
  }
  const bool wrote =
      std::fwrite(header.data(), 1, header.size(), f) == header.size() &&
      std::fwrite(payload.data(), 1, payload.size(), f) == payload.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "ServiceCycleCache: failed writing %s\n",
                 path.c_str());
    std::remove(tmp.c_str());
    return 0;
  }
  return static_cast<std::size_t>(count);
}

std::size_t ServiceCycleCache::load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return 0;  // absent file = cold start, not an error
  }
  std::string bytes;
  char buffer[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    bytes.append(buffer, n);
  }
  std::fclose(f);

  const auto reject = [&](const char* why) -> std::size_t {
    std::fprintf(stderr,
                 "ServiceCycleCache: ignoring %s (%s); starting cold\n",
                 path.c_str(), why);
    return 0;
  };
  Reader header{bytes.data(), bytes.size(), 0, true};
  const std::uint64_t magic = header.get_u64();
  const std::uint64_t version = header.get_u64();
  const std::uint64_t payload_bytes = header.get_u64();
  const std::uint64_t checksum = header.get_u64();
  const std::uint64_t count = header.get_u64();
  if (!header.ok || magic != kPersistMagic) {
    return reject("not a cycle-cache file");
  }
  if (version != kPersistVersion) {
    return reject("format version mismatch");
  }
  if (payload_bytes != bytes.size() - header.pos) {
    return reject("truncated or oversized payload");
  }
  const std::string payload = bytes.substr(header.pos);
  if (fnv1a_bytes(payload) != checksum) {
    return reject("checksum mismatch (corrupted)");
  }

  // All-or-nothing: parse every entry before touching the cache, so a
  // file that goes bad mid-stream cannot leave a half-loaded state.
  std::vector<std::pair<Key, RunResult>> entries;
  entries.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, 1 << 20)));
  Reader in{payload.data(), payload.size(), 0, true};
  for (std::uint64_t i = 0; i < count; ++i) {
    Key key;
    RunResult result;
    if (!deserialize_entry(in, key, result)) {
      return reject("malformed entry stream");
    }
    entries.emplace_back(std::move(key), std::move(result));
  }
  if (in.pos != in.size) {
    return reject("trailing bytes after the last entry");
  }

  std::size_t loaded = 0;
  for (auto& [key, result] : entries) {
    Segment& segment = segment_for(key);
    std::lock_guard lock(segment.mutex);
    if (insert_locked(segment, std::move(key), std::move(result))) {
      ++loaded;
    }
  }
  for (const auto& segment : segments_) {
    std::lock_guard lock(segment->mutex);
    evict_over_capacity_locked(*segment);
  }
  obs::set(obs_entries_, entry_count_.load(std::memory_order_relaxed));
  return loaded;
}

}  // namespace mann::accel
