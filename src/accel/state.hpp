// Architectural state shared by the accelerator modules.
//
// In RTL these are the BRAMs and registers of Fig. 1; module classes own
// their control FSMs but share this storage, with the control flags below
// standing in for the req/ack wires drawn as control paths in the figure.
#pragma once

#include <cstdint>
#include <vector>

#include "accel/compiler.hpp"
#include "accel/fx_types.hpp"

namespace mann::accel {

struct AcceleratorState {
  explicit AcceleratorState(DeviceProgram prog)
      : program(std::move(prog)),
        acc_a(program.embedding_dim),
        acc_c(program.embedding_dim),
        acc_q(program.embedding_dim),
        reg_k(program.embedding_dim),
        reg_r(program.embedding_dim),
        reg_h(program.embedding_dim) {
    mem_a.reserve(program.max_memory);
    mem_c.reserve(program.max_memory);
  }

  DeviceProgram program;

  // ---- INPUT & WRITE: embedding accumulators (emb_a / emb_c / emb_q) ----
  FxVector acc_a;
  FxVector acc_c;
  FxVector acc_q;
  bool sentence_open = false;  ///< a sentence accumulator holds data

  // ---- MEM module: address & content memory banks ----
  std::vector<FxVector> mem_a;  ///< one embedded vector per slot (Eq. 2)
  std::vector<FxVector> mem_c;
  std::vector<Fx> attention;    ///< a^t (Eq. 1), written by MEM

  // ---- READ module registers ----
  FxVector reg_k;  ///< read key k^t (Eq. 3)
  FxVector reg_r;  ///< read vector r^t (Eq. 5), written by MEM
  FxVector reg_h;  ///< controller output h^t (Eq. 4)

  // ---- control wires ----
  std::uint64_t model_words_seen = 0;
  bool model_loaded = false;

  bool story_active = false;    ///< CONTROL accepted kStoryStart
  bool input_done = false;      ///< kEndOfStory processed; READ may start
  bool read_busy = false;       ///< READ owns the recurrent datapath
  bool mem_request = false;     ///< READ -> MEM: compute attention + read
  bool mem_done = false;        ///< MEM -> READ: reg_r/attention valid
  std::size_t hops_done = 0;
  bool features_ready = false;  ///< READ -> OUTPUT: reg_h is h^H

  /// Resets per-story state (new kStoryStart).
  void begin_story() {
    mem_a.clear();
    mem_c.clear();
    attention.clear();
    fx_clear(acc_a);
    fx_clear(acc_c);
    fx_clear(acc_q);
    fx_clear(reg_k);
    fx_clear(reg_r);
    fx_clear(reg_h);
    sentence_open = false;
    story_active = true;
    input_done = false;
    read_busy = false;
    mem_request = false;
    mem_done = false;
    hops_done = 0;
    features_ready = false;
  }
};

/// Command words CONTROL forwards to the INPUT & WRITE module.
enum class InputCmdKind : std::uint8_t {
  kSentenceStart,
  kContextWord,
  kQuestionStart,
  kQuestionWord,
  kEndOfStory,
};

struct InputCmd {
  InputCmdKind kind = InputCmdKind::kSentenceStart;
  std::int32_t word = 0;
};

}  // namespace mann::accel
