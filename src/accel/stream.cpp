#include "accel/stream.hpp"

namespace mann::accel {

std::vector<StreamWord> encode_story(const data::EncodedStory& story) {
  std::vector<StreamWord> words;
  words.push_back({StreamOp::kStoryStart, 0});
  for (const auto& sentence : story.context) {
    words.push_back({StreamOp::kSentenceStart, 0});
    for (const std::int32_t w : sentence) {
      words.push_back({StreamOp::kContextWord, w});
    }
  }
  words.push_back({StreamOp::kQuestionStart, 0});
  for (const std::int32_t w : story.question) {
    words.push_back({StreamOp::kQuestionWord, w});
  }
  words.push_back({StreamOp::kEndOfStory, 0});
  return words;
}

std::vector<StreamWord> encode_workload(
    std::size_t model_words, std::span<const data::EncodedStory> stories) {
  std::vector<StreamWord> words;
  words.reserve(model_words + stories.size() * 48);
  for (std::size_t i = 0; i < model_words; ++i) {
    words.push_back({StreamOp::kModelWord, 0});
  }
  for (const data::EncodedStory& s : stories) {
    const auto sw = encode_story(s);
    words.insert(words.end(), sw.begin(), sw.end());
  }
  return words;
}

}  // namespace mann::accel
