#include "accel/mem_module.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace mann::accel {

MemModule::MemModule(AcceleratorState& state, const AccelConfig& config)
    : Module("MEM"),
      state_(state),
      timing_(config.timing),
      sparse_slots_(config.sparse_read_slots) {}

void MemModule::start() {
  const std::size_t slots = state_.mem_a.size();
  const std::size_t e = state_.program.embedding_dim;
  if (slots == 0) {
    throw std::logic_error("MEM: read requested with empty memory");
  }

  // Phase 1 — addressing dot products s_i = M_a[i] · k, tracking the max
  // for softmax stability (the running-max register next to the adder
  // tree in Fig. 1's address path). Every slot is scored even in sparse
  // mode — content addressing cannot skip candidates.
  std::vector<Fx> scores(slots);
  Fx max_score = Fx::min();
  for (std::size_t i = 0; i < slots; ++i) {
    scores[i] = fx_dot(state_.mem_a[i], state_.reg_k);
    max_score = std::max(max_score, scores[i]);
  }
  ops().mac += slots * e;
  ops().mem_read += slots * e;
  ops().compare += slots;

  // Sparse selection (§VI-B): keep only the best k slots for the
  // exp/divide/read phases. A sequential k-max pass costs one compare per
  // slot and `slots` cycles.
  std::vector<std::size_t> selected(slots);
  std::iota(selected.begin(), selected.end(), std::size_t{0});
  sim::Cycle select_cycles = 0;
  if (sparse_slots_ > 0 && sparse_slots_ < slots) {
    std::stable_sort(selected.begin(), selected.end(),
                     [&](std::size_t a, std::size_t b) {
                       return scores[a] > scores[b];
                     });
    selected.resize(sparse_slots_);
    ops().compare += slots;
    select_cycles = static_cast<sim::Cycle>(slots);
  }
  const std::size_t active = selected.size();

  // Phase 2 — exp LUT per selected element plus running sum.
  next_attention_.assign(slots, Fx{});
  Fx sum;
  for (const std::size_t i : selected) {
    const float x = (scores[i] - max_score).to_float();
    next_attention_[i] = Fx::from_float(exp_lut_(x));
    sum += next_attention_[i];
  }
  ops().exp += active;
  ops().add += active;

  // Phase 3 — normalization through the divider (reciprocal + multiply).
  const Fx inv_sum = Fx::from_float(recip_lut_(sum.to_float()));
  for (const std::size_t i : selected) {
    next_attention_[i] *= inv_sum;
  }
  ops().div += active;

  // Phase 4 — soft read r = Σ a_i · M_c[i] through the MAC array.
  next_read_.assign(e, Fx{});
  for (const std::size_t i : selected) {
    fx_axpy(next_attention_[i], state_.mem_c[i], next_read_);
  }
  ops().mac += active * e;
  ops().mem_read += active * e;

  // Cycle cost of the sequential phases (pipelined within each).
  const auto block = [&](std::size_t n) {
    return timing_.dot_cycles(e) +
           static_cast<sim::Cycle>(n - 1) * timing_.dot_ii(e);
  };
  busy_ = block(slots)                 // addressing (all slots)
          + select_cycles              // sparse k-max pass
          + timing_.exp_block(active)  // exp + sum
          + timing_.div_block(active)  // normalize
          + block(active);             // weighted read
  state_.mem_request = false;
}

void MemModule::finish() {
  state_.attention = next_attention_;
  state_.reg_r = next_read_;
  state_.mem_done = true;
}

void MemModule::tick() {
  if (busy_ == 0) {
    if (!state_.mem_request) {
      return;  // idle
    }
    start();
  }
  mark_busy();
  --busy_;
  if (busy_ == 0) {
    finish();
  }
}

}  // namespace mann::accel
