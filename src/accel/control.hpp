// CONTROL module: decodes the input stream, gates story admission, and
// forwards word-level commands to the INPUT & WRITE module (Fig. 1's
// "inference control" + "FIFO control" roles).
#pragma once

#include <cstdint>

#include "accel/state.hpp"
#include "accel/stream.hpp"
#include "sim/fifo.hpp"
#include "sim/module.hpp"

namespace mann::accel {

class ControlModule final : public sim::Module {
 public:
  ControlModule(AcceleratorState& state, sim::Fifo<StreamWord>& fifo_in,
                sim::Fifo<InputCmd>& cmd_fifo);

  void tick() override;

 private:
  AcceleratorState& state_;
  sim::Fifo<StreamWord>& fifo_in_;
  sim::Fifo<InputCmd>& cmd_fifo_;
};

}  // namespace mann::accel
