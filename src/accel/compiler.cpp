#include "accel/compiler.hpp"

#include <cmath>

namespace mann::accel {

std::size_t DeviceProgram::model_words() const noexcept {
  const std::size_t weight_words = emb_a.size() + emb_c.size() +
                                   emb_q.size() + w_r.size() + w_o.size();
  const std::size_t ith_words = thresholds.size() + probe_order.size();
  return weight_words + ith_words;
}

DeviceProgram compile_model(const model::MemN2N& model,
                            const core::InferenceThresholding* ith) {
  const model::ModelConfig& cfg = model.config();
  const model::Parameters& p = model.params();

  DeviceProgram prog;
  prog.vocab_size = cfg.vocab_size;
  prog.embedding_dim = cfg.embedding_dim;
  prog.hops = cfg.hops;
  prog.max_memory = cfg.max_memory;
  prog.emb_a = quantize(p.embedding_a);
  prog.emb_c = quantize(p.embedding_c);
  prog.emb_q = quantize(p.embedding_q);
  prog.w_r = quantize(p.w_r);
  prog.w_o = quantize(p.w_o);

  if (ith != nullptr) {
    prog.thresholds.reserve(cfg.vocab_size);
    for (const float theta : ith->thresholds()) {
      prog.thresholds.push_back(std::isfinite(theta) ? Fx::from_float(theta)
                                                     : Fx::max());
    }
    prog.probe_order.reserve(cfg.vocab_size);
    for (const std::size_t cls : ith->probe_order()) {
      prog.probe_order.push_back(static_cast<std::int32_t>(cls));
    }
  }
  return prog;
}

}  // namespace mann::accel
