// OUTPUT module: the sequential maximum-inner-product search of Eq. 6.
//
// One dot product per class through the adder tree, tracking the running
// maximum — or, with inference thresholding enabled, comparing each logit
// against its per-class threshold θ in silhouette probe order and exiting
// early on the first hit (Algo. 1, Step 4 in hardware).
#pragma once

#include <cstdint>
#include <vector>

#include "accel/config.hpp"
#include "accel/state.hpp"
#include "sim/fifo.hpp"
#include "sim/module.hpp"

namespace mann::accel {

class OutputModule final : public sim::Module {
 public:
  /// Per-story observability used by the run report.
  struct Record {
    std::int32_t prediction = -1;
    std::uint64_t probes = 0;  ///< output-layer dot products performed
    bool early_exit = false;
  };

  OutputModule(AcceleratorState& state, const AccelConfig& config,
               sim::Fifo<std::int32_t>& fifo_out);

  void tick() override;

  [[nodiscard]] const std::vector<Record>& records() const noexcept {
    return records_;
  }

 private:
  void begin_search();
  void start_probe();
  void finish_probe();
  [[nodiscard]] std::size_t probe_class(std::size_t rank) const noexcept;

  AcceleratorState& state_;
  const sim::DatapathTiming timing_;
  const bool ith_enabled_;
  const bool use_index_ordering_;
  sim::Fifo<std::int32_t>& fifo_out_;

  enum class Phase : std::uint8_t { kIdle, kProbing, kPushing };
  Phase phase_ = Phase::kIdle;
  sim::Cycle busy_ = 0;
  std::size_t rank_ = 0;
  std::size_t classes_ = 0;
  Fx current_logit_;
  Fx best_logit_;
  std::size_t best_class_ = 0;
  Record record_;
  std::vector<Record> records_;
};

}  // namespace mann::accel
