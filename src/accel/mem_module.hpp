// MEM module: content-based addressing (Eq. 1) and the soft memory read
// (Eq. 5), computed element-wise sequentially — softmax's exp and divide
// cannot be parallelized across the bank, so the pipeline walks the L
// occupied slots: dot products through the adder tree, max-subtracted exp
// through the LUT unit, normalization through the divider, then the
// attention-weighted read through the MAC array.
#pragma once

#include "accel/config.hpp"
#include "accel/state.hpp"
#include "numeric/lut.hpp"
#include "sim/module.hpp"

namespace mann::accel {

class MemModule final : public sim::Module {
 public:
  MemModule(AcceleratorState& state, const AccelConfig& config);

  void tick() override;

 private:
  void start();
  void finish();

  AcceleratorState& state_;
  const sim::DatapathTiming timing_;
  const std::size_t sparse_slots_;  ///< 0 = dense softmax/read
  numeric::ExpLut exp_lut_;
  numeric::ReciprocalLut recip_lut_;

  sim::Cycle busy_ = 0;
  std::vector<Fx> next_attention_;
  FxVector next_read_;
};

}  // namespace mann::accel
