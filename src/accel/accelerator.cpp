#include "accel/accelerator.hpp"

#include <array>
#include <stdexcept>

#include "accel/control.hpp"
#include "accel/host_link.hpp"
#include "accel/input_write.hpp"
#include "accel/mem_module.hpp"
#include "accel/output_module.hpp"
#include "accel/read_module.hpp"
#include "accel/state.hpp"
#include "sim/simulator.hpp"

namespace mann::accel {

double RunResult::early_exit_rate() const noexcept {
  if (stories.empty()) {
    return 0.0;
  }
  std::size_t exits = 0;
  for (const StoryOutcome& s : stories) {
    exits += s.early_exit ? 1 : 0;
  }
  return static_cast<double>(exits) / static_cast<double>(stories.size());
}

double RunResult::mean_output_probes() const noexcept {
  if (stories.empty()) {
    return 0.0;
  }
  std::uint64_t probes = 0;
  for (const StoryOutcome& s : stories) {
    probes += s.output_probes;
  }
  return static_cast<double>(probes) / static_cast<double>(stories.size());
}

Accelerator::Accelerator(AccelConfig config, DeviceProgram program)
    : config_(config), program_(std::move(program)) {
  if (config_.clock_hz <= 0.0) {
    throw std::invalid_argument("Accelerator: clock must be positive");
  }
  if (config_.ith_enabled && !program_.has_ith_tables()) {
    throw std::invalid_argument(
        "Accelerator: ITH enabled but the program has no threshold tables");
  }
}

sim::FifoStats RunResult::queue_stats() const noexcept {
  sim::FifoStats combined = fifo_in_stats;
  combined += fifo_out_stats;
  return combined;
}

RunResult Accelerator::run(std::span<const data::EncodedStory> stories,
                           const RunOptions& options) const {
  AcceleratorState state(program_);
  if (options.model_resident) {
    // Warm device: BRAM already holds this program; the stream carries no
    // model words and CONTROL must accept stories immediately.
    state.model_words_seen = program_.model_words();
    state.model_loaded = true;
  }
  sim::Fifo<StreamWord> fifo_in("FIFO_IN", config_.fifo_depth);
  sim::Fifo<std::int32_t> fifo_out("FIFO_OUT", config_.fifo_depth);
  sim::Fifo<InputCmd> cmd_fifo("CMD_FIFO", config_.fifo_depth);

  HostLinkModule host(
      config_,
      encode_workload(options.model_resident ? 0 : program_.model_words(),
                      stories),
      fifo_in, fifo_out);
  ControlModule control(state, fifo_in, cmd_fifo);
  InputWriteModule input_write(state, config_, cmd_fifo);
  MemModule mem(state, config_);
  ReadModule read(state, config_);
  OutputModule output(state, config_, fifo_out);

  sim::Simulator simulator;
  // Producer-to-consumer order along the write path, then the read path.
  simulator.add_module(host);
  simulator.add_module(control);
  simulator.add_module(input_write);
  simulator.add_module(read);
  simulator.add_module(mem);
  simulator.add_module(output);

  const std::size_t expected = stories.size();
  simulator.run_until(
      [&] { return host.answers().size() >= expected; },
      config_.watchdog_cycles);

  RunResult result;
  result.total_cycles = simulator.now();
  result.seconds =
      static_cast<double>(result.total_cycles) / config_.clock_hz;
  result.stream_words = host.words_total();
  result.link_active_cycles = host.link_active_cycles();

  const auto& records = output.records();
  if (records.size() != expected || host.answers().size() != expected) {
    throw std::logic_error("Accelerator: record/answer count mismatch");
  }
  result.stories.reserve(expected);
  for (std::size_t i = 0; i < expected; ++i) {
    StoryOutcome outcome;
    outcome.prediction = records[i].prediction;
    outcome.output_probes = records[i].probes;
    outcome.early_exit = records[i].early_exit;
    outcome.finish_cycle = host.answers()[i].cycle;
    result.stories.push_back(outcome);
  }

  const std::array<const sim::Module*, 6> all_modules = {
      &host, &control, &input_write, &read, &mem, &output};
  for (const sim::Module* m : all_modules) {
    result.modules.push_back({m->name(), m->stats()});
    result.total_ops += m->stats().ops;
  }
  result.fifo_in_stats = fifo_in.stats();
  result.fifo_out_stats = fifo_out.stats();
  return result;
}

}  // namespace mann::accel
