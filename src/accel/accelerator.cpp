#include "accel/accelerator.hpp"

#include <array>
#include <bit>
#include <stdexcept>

#include "accel/control.hpp"
#include "accel/host_link.hpp"
#include "accel/input_write.hpp"
#include "accel/mem_module.hpp"
#include "accel/output_module.hpp"
#include "accel/read_module.hpp"
#include "accel/service_cycle_cache.hpp"
#include "accel/state.hpp"
#include "sim/simulator.hpp"

namespace mann::accel {

namespace {

// FNV-1a (the cache's shared mixer) over the timing-relevant device
// identity (config + program). Everything the simulation's timing or
// outputs can depend on is mixed in; watchdog_cycles is deliberately
// excluded (it only bounds runaway simulations — expiry throws, so a
// watchdog difference can never publish a differing result).
class Fingerprint {
 public:
  void mix(std::uint64_t word) noexcept { h_ = fnv1a_mix(h_, word); }
  void mix(double value) noexcept { mix(std::bit_cast<std::uint64_t>(value)); }
  void mix(bool value) noexcept { mix(std::uint64_t{value ? 1U : 0U}); }
  void mix_matrix(const FxMatrix& m) noexcept {
    mix(m.rows());
    mix(m.cols());
    for (std::size_t r = 0; r < m.rows(); ++r) {
      for (const Fx word : m.row(r)) {
        mix(static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(word.raw())));
      }
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = kFnv1aOffset;
};

std::uint64_t fingerprint_device(const AccelConfig& config,
                                 const DeviceProgram& program) noexcept {
  Fingerprint fp;
  fp.mix(config.clock_hz);
  fp.mix(config.timing.lane_width);
  fp.mix(config.timing.exp_latency);
  fp.mix(config.timing.exp_ii);
  fp.mix(config.timing.div_latency);
  fp.mix(config.timing.div_ii);
  fp.mix(config.timing.bram_write);
  fp.mix(config.fifo_depth);
  fp.mix(config.link.words_per_second);
  fp.mix(config.link.model_words_per_second);
  fp.mix(config.link.per_story_latency);
  fp.mix(config.link.result_latency);
  fp.mix(config.link.synchronous_stories);
  fp.mix(config.sparse_read_slots);
  fp.mix(config.ith_enabled);
  fp.mix(config.use_index_ordering);

  fp.mix(program.vocab_size);
  fp.mix(program.embedding_dim);
  fp.mix(program.hops);
  fp.mix(program.max_memory);
  fp.mix_matrix(program.emb_a);
  fp.mix_matrix(program.emb_c);
  fp.mix_matrix(program.emb_q);
  fp.mix_matrix(program.w_r);
  fp.mix_matrix(program.w_o);
  fp.mix(program.thresholds.size());
  for (const Fx t : program.thresholds) {
    fp.mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(t.raw())));
  }
  fp.mix(program.probe_order.size());
  for (const std::int32_t c : program.probe_order) {
    fp.mix(static_cast<std::uint64_t>(c));
  }
  return fp.value();
}

}  // namespace

double RunResult::early_exit_rate() const noexcept {
  if (stories.empty()) {
    return 0.0;
  }
  std::size_t exits = 0;
  for (const StoryOutcome& s : stories) {
    exits += s.early_exit ? 1 : 0;
  }
  return static_cast<double>(exits) / static_cast<double>(stories.size());
}

double RunResult::mean_output_probes() const noexcept {
  if (stories.empty()) {
    return 0.0;
  }
  std::uint64_t probes = 0;
  for (const StoryOutcome& s : stories) {
    probes += s.output_probes;
  }
  return static_cast<double>(probes) / static_cast<double>(stories.size());
}

Accelerator::Accelerator(AccelConfig config, DeviceProgram program)
    : config_(config), program_(std::move(program)) {
  if (config_.clock_hz <= 0.0) {
    throw std::invalid_argument("Accelerator: clock must be positive");
  }
  if (config_.ith_enabled && !program_.has_ith_tables()) {
    throw std::invalid_argument(
        "Accelerator: ITH enabled but the program has no threshold tables");
  }
  fingerprint_ = fingerprint_device(config_, program_);
}

sim::FifoStats RunResult::queue_stats() const noexcept {
  sim::FifoStats combined = fifo_in_stats;
  combined += fifo_out_stats;
  return combined;
}

RunResult Accelerator::run(std::span<const data::EncodedStory> stories,
                           const RunOptions& options) const {
  ServiceCycleCache::Key key;
  if (options.cache_outcome != nullptr) {
    *options.cache_outcome = CacheOutcome::kNone;
  }
  if (options.cycle_cache != nullptr) {
    key = {fingerprint_, digest_stories(stories), stories.size(),
           options.model_resident};
    if (std::optional<RunResult> hit =
            options.cycle_cache->acquire(key, options.cache_outcome)) {
      // Timing replay: the memoized result is bit-identical to what
      // re-simulation would produce — the key covers every input the
      // simulation depends on — so the whole run collapses to this copy.
      return std::move(*hit);
    }
  }
  try {
    RunResult result = simulate(stories, options);
    if (options.cycle_cache != nullptr) {
      options.cycle_cache->publish(key, result);
    }
    return result;
  } catch (...) {
    if (options.cycle_cache != nullptr) {
      options.cycle_cache->abandon(key);
    }
    throw;
  }
}

RunResult Accelerator::simulate(std::span<const data::EncodedStory> stories,
                                const RunOptions& options) const {
  AcceleratorState state(program_);
  if (options.model_resident) {
    // Warm device: BRAM already holds this program; the stream carries no
    // model words and CONTROL must accept stories immediately.
    state.model_words_seen = program_.model_words();
    state.model_loaded = true;
  }
  sim::Fifo<StreamWord> fifo_in("FIFO_IN", config_.fifo_depth);
  sim::Fifo<std::int32_t> fifo_out("FIFO_OUT", config_.fifo_depth);
  sim::Fifo<InputCmd> cmd_fifo("CMD_FIFO", config_.fifo_depth);

  HostLinkModule host(
      config_,
      encode_workload(options.model_resident ? 0 : program_.model_words(),
                      stories),
      fifo_in, fifo_out);
  ControlModule control(state, fifo_in, cmd_fifo);
  InputWriteModule input_write(state, config_, cmd_fifo);
  MemModule mem(state, config_);
  ReadModule read(state, config_);
  OutputModule output(state, config_, fifo_out);

  sim::Simulator simulator;
  // Producer-to-consumer order along the write path, then the read path.
  simulator.add_module(host);
  simulator.add_module(control);
  simulator.add_module(input_write);
  simulator.add_module(read);
  simulator.add_module(mem);
  simulator.add_module(output);

  const std::size_t expected = stories.size();
  simulator.run_until(
      [&] { return host.answers().size() >= expected; },
      config_.watchdog_cycles);

  RunResult result;
  result.total_cycles = simulator.now();
  result.seconds =
      static_cast<double>(result.total_cycles) / config_.clock_hz;
  result.stream_words = host.words_total();
  result.link_active_cycles = host.link_active_cycles();

  const auto& records = output.records();
  if (records.size() != expected || host.answers().size() != expected) {
    throw std::logic_error("Accelerator: record/answer count mismatch");
  }
  result.stories.reserve(expected);
  for (std::size_t i = 0; i < expected; ++i) {
    StoryOutcome outcome;
    outcome.prediction = records[i].prediction;
    outcome.output_probes = records[i].probes;
    outcome.early_exit = records[i].early_exit;
    outcome.finish_cycle = host.answers()[i].cycle;
    result.stories.push_back(outcome);
  }

  const std::array<const sim::Module*, 6> all_modules = {
      &host, &control, &input_write, &read, &mem, &output};
  for (const sim::Module* m : all_modules) {
    result.modules.push_back({m->name(), m->stats()});
    result.total_ops += m->stats().ops;
  }
  result.fifo_in_stats = fifo_in.stats();
  result.fifo_out_stats = fifo_out.stats();
  return result;
}

}  // namespace mann::accel
