// Host-side PCIe link model.
//
// Streams the workload words into FIFO_IN at a wall-clock-constant rate
// (converted to words-per-cycle at the configured fabric clock — this is
// what makes high clock frequencies interface-bound, the paper's §V
// observation) and drains answers from FIFO_OUT.
#pragma once

#include <cstdint>
#include <vector>

#include "accel/config.hpp"
#include "accel/stream.hpp"
#include "sim/fifo.hpp"
#include "sim/module.hpp"

namespace mann::accel {

class HostLinkModule final : public sim::Module {
 public:
  struct Answer {
    std::int32_t prediction = -1;
    sim::Cycle cycle = 0;  ///< when the host observed the result
  };

  HostLinkModule(const AccelConfig& config, std::vector<StreamWord> words,
                 sim::Fifo<StreamWord>& fifo_in,
                 sim::Fifo<std::int32_t>& fifo_out);

  void tick() override;

  [[nodiscard]] bool all_words_sent() const noexcept {
    return position_ >= words_.size();
  }
  [[nodiscard]] const std::vector<Answer>& answers() const noexcept {
    return answers_;
  }
  [[nodiscard]] std::size_t words_total() const noexcept {
    return words_.size();
  }
  /// Cycles during which the link was actively transferring or in DMA
  /// setup — the I/O-bound share of the run.
  [[nodiscard]] sim::Cycle link_active_cycles() const noexcept {
    return link_active_cycles_;
  }

 private:
  std::vector<StreamWord> words_;
  sim::Fifo<StreamWord>& fifo_in_;
  sim::Fifo<std::int32_t>& fifo_out_;
  double words_per_cycle_;
  double model_words_per_cycle_;
  sim::Cycle story_latency_cycles_;
  sim::Cycle result_latency_cycles_;

  std::size_t position_ = 0;
  double credit_ = 0.0;
  sim::Cycle delay_ = 0;
  bool latency_charged_ = false;
  bool synchronous_;
  std::size_t stories_sent_ = 0;  ///< kEndOfStory words pushed
  sim::Cycle cycle_ = 0;
  sim::Cycle link_active_cycles_ = 0;
  std::vector<Answer> answers_;
};

}  // namespace mann::accel
