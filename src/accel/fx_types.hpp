// Fixed-point containers and kernels for the accelerator datapath.
//
// The device stores all weights and architectural registers as Q16.16
// words. Kernels here perform the arithmetic in datapath order (sequential
// accumulate — re-associating through the adder tree changes nothing for
// fixed point since addition is exact until saturation).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "numeric/fixed_point.hpp"
#include "numeric/matrix.hpp"

namespace mann::accel {

using Fx = numeric::fx16;
using FxVector = std::vector<Fx>;

/// Dense row-major fixed-point matrix (device weight storage).
class FxMatrix {
 public:
  FxMatrix() = default;
  FxMatrix(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  [[nodiscard]] Fx& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] Fx operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<Fx> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const Fx> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Fx> data_;
};

/// Quantizes a float matrix to Q16.16 (round-to-nearest, saturating).
[[nodiscard]] FxMatrix quantize(const numeric::Matrix& m);

/// Dequantizes for verification against the float reference.
[[nodiscard]] numeric::Matrix dequantize(const FxMatrix& m);

/// Fixed-point dot product (sequential saturating accumulate).
[[nodiscard]] Fx fx_dot(std::span<const Fx> a, std::span<const Fx> b);

/// `y[i] += s * x[i]` in fixed point.
void fx_axpy(Fx s, std::span<const Fx> x, std::span<Fx> y);

/// `y[i] += x[i]`.
void fx_add(std::span<const Fx> x, std::span<Fx> y);

/// Sets every element to zero.
void fx_clear(std::span<Fx> v) noexcept;

}  // namespace mann::accel
