#include "accel/host_link.hpp"

#include <cmath>
#include <stdexcept>

namespace mann::accel {
namespace {

sim::Cycle seconds_to_cycles(double seconds, double clock_hz) {
  return static_cast<sim::Cycle>(std::llround(seconds * clock_hz));
}

}  // namespace

HostLinkModule::HostLinkModule(const AccelConfig& config,
                               std::vector<StreamWord> words,
                               sim::Fifo<StreamWord>& fifo_in,
                               sim::Fifo<std::int32_t>& fifo_out)
    : Module("HOST_LINK"),
      words_(std::move(words)),
      fifo_in_(fifo_in),
      fifo_out_(fifo_out),
      words_per_cycle_(config.link.words_per_second / config.clock_hz),
      model_words_per_cycle_(config.link.model_words_per_second /
                             config.clock_hz),
      story_latency_cycles_(
          seconds_to_cycles(config.link.per_story_latency, config.clock_hz)),
      result_latency_cycles_(
          seconds_to_cycles(config.link.result_latency, config.clock_hz)),
      synchronous_(config.link.synchronous_stories) {
  if (words_per_cycle_ <= 0.0) {
    throw std::invalid_argument("HostLinkModule: non-positive link rate");
  }
}

void HostLinkModule::tick() {
  ++cycle_;
  // Drain one answer per cycle from FIFO_OUT; the host observes it after
  // the readback latency.
  if (const auto answer = fifo_out_.try_pop()) {
    answers_.push_back({*answer, cycle_ + result_latency_cycles_});
  }

  if (position_ >= words_.size()) {
    return;  // everything sent; only draining answers now
  }
  if (delay_ > 0) {
    // DMA/doorbell setup: the link is occupied but no words flow.
    --delay_;
    credit_ = 0.0;
    ++link_active_cycles_;
    mark_busy();
    return;
  }

  // Model upload is bulk DMA; the inference stream is word-granular.
  const bool in_model_phase = words_[position_].op == StreamOp::kModelWord;
  credit_ += in_model_phase ? model_words_per_cycle_ : words_per_cycle_;
  bool pushed = false;
  while (credit_ >= 1.0 && position_ < words_.size()) {
    const StreamWord& word = words_[position_];
    if (word.op == StreamOp::kStoryStart) {
      // Request/response host: wait for the previous story's answer
      // before streaming the next request.
      if (synchronous_ && answers_.size() < stories_sent_) {
        credit_ = 0.0;
        break;
      }
      if (!latency_charged_ && story_latency_cycles_ > 0) {
        delay_ = story_latency_cycles_;
        latency_charged_ = true;
        break;
      }
    }
    if (!fifo_in_.try_push(word)) {
      mark_stalled();
      break;
    }
    if (word.op == StreamOp::kStoryStart) {
      latency_charged_ = false;
    }
    if (word.op == StreamOp::kEndOfStory) {
      ++stories_sent_;
    }
    credit_ -= 1.0;
    ++position_;
    pushed = true;
  }
  if (pushed) {
    ++link_active_cycles_;
    mark_busy();
  }
}

}  // namespace mann::accel
