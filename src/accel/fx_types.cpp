#include "accel/fx_types.hpp"

#include <stdexcept>

namespace mann::accel {

FxMatrix::FxMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols) {}

FxMatrix quantize(const numeric::Matrix& m) {
  FxMatrix out(m.rows(), m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      out(r, c) = Fx::from_float(m(r, c));
    }
  }
  return out;
}

numeric::Matrix dequantize(const FxMatrix& m) {
  numeric::Matrix out(m.rows(), m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      out(r, c) = m(r, c).to_float();
    }
  }
  return out;
}

Fx fx_dot(std::span<const Fx> a, std::span<const Fx> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("fx_dot: length mismatch");
  }
  Fx acc;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

void fx_axpy(Fx s, std::span<const Fx> x, std::span<Fx> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("fx_axpy: length mismatch");
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += s * x[i];
  }
}

void fx_add(std::span<const Fx> x, std::span<Fx> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("fx_add: length mismatch");
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += x[i];
  }
}

void fx_clear(std::span<Fx> v) noexcept {
  for (Fx& e : v) {
    e = Fx{};
  }
}

}  // namespace mann::accel
