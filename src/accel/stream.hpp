// Host <-> FPGA stream protocol.
//
// Fig. 1: the accelerator "receives inference data and trained models from
// a host computer in the form of streams through a FIFO queue", with
// "control signals from the host embedded in the data". StreamWord is one
// 32-bit word of that stream: a control tag plus payload.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/types.hpp"

namespace mann::accel {

/// Control tags embedded in the input stream.
enum class StreamOp : std::uint8_t {
  kModelWord,      ///< one word of trained-model payload (timing only)
  kStoryStart,     ///< reset memories; begin a new inference
  kSentenceStart,  ///< flush previous sentence accumulator, open a new slot
  kContextWord,    ///< payload = word index of the current sentence
  kQuestionStart,  ///< context done; subsequent words are the question
  kQuestionWord,   ///< payload = word index of the question
  kEndOfStory,     ///< question done; run the read hops and output
};

/// One word on the wire.
struct StreamWord {
  StreamOp op = StreamOp::kModelWord;
  std::int32_t payload = 0;

  friend bool operator==(const StreamWord&, const StreamWord&) = default;
};

/// Renders one story into its stream words.
[[nodiscard]] std::vector<StreamWord> encode_story(
    const data::EncodedStory& story);

/// Renders a whole workload: `model_words` kModelWord words (the trained
/// parameters crossing the PCIe link) followed by every story.
[[nodiscard]] std::vector<StreamWord> encode_workload(
    std::size_t model_words, std::span<const data::EncodedStory> stories);

}  // namespace mann::accel
