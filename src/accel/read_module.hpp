// READ module: the recurrent controller (an RNN cell).
//
// Generates the read key for the MEM module and combines the returned
// read vector with the controller weight: h = r + W_r k (Eq. 4). The
// recurrence k^{t+1} = h^t (Eq. 3) is the blue feedback path in Fig. 1.
//
// Dataflow parallelism: W_r·k depends only on the read key, which is
// available the moment the hop starts, so the controller MAC array runs
// *concurrently* with the MEM module's addressing/softmax/read pipeline;
// only the final element-wise add of r serializes. This overlap is the
// point of the paper's DFA structure ("layer-wise parallelization and
// recurrent paths can be implemented on DFAs").
#pragma once

#include "accel/config.hpp"
#include "accel/state.hpp"
#include "sim/module.hpp"

namespace mann::accel {

class ReadModule final : public sim::Module {
 public:
  ReadModule(AcceleratorState& state, const AccelConfig& config);

  void tick() override;

 private:
  enum class Phase : std::uint8_t {
    kIdle,     ///< no hop in flight
    kWrk,      ///< MAC array computing W_r · k (MEM runs in parallel)
    kWaitMem,  ///< W_r·k done, waiting for the read vector r
    kAdd,      ///< element-wise h = wrk + r
  };

  void start_hop();
  void on_busy_complete();
  void finish_hop();

  AcceleratorState& state_;
  const sim::DatapathTiming timing_;
  Phase phase_ = Phase::kIdle;
  sim::Cycle busy_ = 0;
  FxVector wrk_;     ///< W_r · k of the in-flight hop
  FxVector next_h_;  ///< committed to reg_h when the add drains
};

}  // namespace mann::accel
