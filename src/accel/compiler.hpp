// Model "compiler": converts a trained float MemN2N (plus optional ITH
// calibration) into the quantized tables the device holds in BRAM.
#pragma once

#include <cstdint>
#include <vector>

#include "accel/fx_types.hpp"
#include "core/ith.hpp"
#include "model/memn2n.hpp"

namespace mann::accel {

/// Everything resident on the device after model load.
struct DeviceProgram {
  // Dimensions (V = vocab/output size, E = embedding dim, hops).
  std::size_t vocab_size = 0;
  std::size_t embedding_dim = 0;
  std::size_t hops = 0;
  std::size_t max_memory = 0;

  // Quantized weights (Q16.16), row-per-word layout as in the float model.
  FxMatrix emb_a;
  FxMatrix emb_c;
  FxMatrix emb_q;
  FxMatrix w_r;
  FxMatrix w_o;

  // Inference-thresholding tables (empty when not calibrated).
  std::vector<Fx> thresholds;            ///< θ_i; saturated max = "never"
  std::vector<std::int32_t> probe_order; ///< silhouette-sorted class order

  /// Number of 32-bit words the trained model occupies on the wire
  /// (weights + ITH tables); drives the model-load phase of the stream.
  [[nodiscard]] std::size_t model_words() const noexcept;

  [[nodiscard]] bool has_ith_tables() const noexcept {
    return !thresholds.empty();
  }
};

/// Quantizes a trained model (and optional ITH calibration) for the device.
/// Classes whose calibrated threshold is +inf get the saturated fx maximum,
/// which no Q16.16 logit can exceed — hardware's "never fires" encoding.
[[nodiscard]] DeviceProgram compile_model(
    const model::MemN2N& model,
    const core::InferenceThresholding* ith = nullptr);

}  // namespace mann::accel
