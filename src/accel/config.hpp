// Accelerator configuration: clock, datapath timing, FIFO sizing, and the
// host-link model. One struct so benches can sweep any dimension.
#pragma once

#include <cstddef>

#include "sim/timing.hpp"

namespace mann::accel {

/// Host <-> FPGA link model (the PCIe path of Fig. 1).
///
/// Wall-clock throughput and latency are clock-independent (PCIe does not
/// care about the fabric clock); the simulator converts them to cycles at
/// the configured frequency. The default effective throughput is low
/// compared to PCIe bulk bandwidth on purpose: the stream is word-granular
/// writes driven by the host runtime, and the paper's own measurement shows
/// the interface dominating at high clocks (§V: "inference time is
/// dominated by the interface between the host and the FPGA").
struct HostLinkConfig {
  /// Effective rate of the word-granular inference stream. Calibrated to
  /// the paper's frequency sweep: Table I solves to a clock-independent
  /// I/O term of ~13 us per story (~47 words), i.e. ~4 Mwords/s — far
  /// below PCIe bulk bandwidth because each word is a host-driven write.
  double words_per_second = 4.0e6;
  /// The trained model is one large buffer and goes through bulk DMA at
  /// full link bandwidth instead of the word-granular path.
  double model_words_per_second = 2.0e8;
  double per_story_latency = 2.0e-6; ///< DMA/doorbell setup per story (s)
  double result_latency = 1.0e-6;    ///< readback latency per answer (s)
  /// Request/response host runtime: the next story is not streamed until
  /// the previous answer arrived. This reproduces the paper's additive
  /// time structure t = T_io + C_cycles/f (their Table I frequency sweep
  /// solves to a clock-independent I/O term plus compute cycles, which
  /// only happens when transfer and compute do not overlap).
  bool synchronous_stories = true;
};

/// Full device configuration.
struct AccelConfig {
  double clock_hz = 100.0e6;  ///< fabric clock (paper sweeps 25-100 MHz)
  sim::DatapathTiming timing; ///< arithmetic-unit cycle costs
  std::size_t fifo_depth = 32;
  HostLinkConfig link;

  /// Sparse memory reads (§VI-B, sparse access memory): the MEM module
  /// still scores every slot, but runs the exp/divide/weighted-read
  /// pipeline over only the best `sparse_read_slots` slots. 0 = dense.
  std::size_t sparse_read_slots = 0;

  /// Inference thresholding (Algo. 1 Step 4) in the OUTPUT module.
  bool ith_enabled = false;
  /// Probe classes in silhouette order (Step 3) vs natural index order.
  bool use_index_ordering = true;

  /// Watchdog: simulation aborts if one workload exceeds this many cycles.
  sim::Cycle watchdog_cycles = 500'000'000;
};

}  // namespace mann::accel
