// INPUT & WRITE module: the three embedding lanes (emb_a, emb_c, emb_q).
//
// Exploits Eq. 2's sparsity: a sentence is embedded by fetching one
// embedding row per word index and accumulating — no dense matrix-vector
// multiply, no multipliers at all. One word per cycle (the E-wide adder
// lanes run in parallel); a sentence flush writes the accumulators into
// the MEM module's address/content banks.
#pragma once

#include "accel/config.hpp"
#include "accel/state.hpp"
#include "sim/fifo.hpp"
#include "sim/module.hpp"

namespace mann::accel {

class InputWriteModule final : public sim::Module {
 public:
  InputWriteModule(AcceleratorState& state, const AccelConfig& config,
                   sim::Fifo<InputCmd>& cmd_fifo);

  void tick() override;

 private:
  void process(const InputCmd& cmd);
  void flush_sentence();

  AcceleratorState& state_;
  const sim::DatapathTiming timing_;
  sim::Fifo<InputCmd>& cmd_fifo_;
  sim::Cycle busy_ = 0;
};

}  // namespace mann::accel
