// Service-cycle memoization for warm serving traffic.
//
// Accelerator::run is a pure function of (config, program, stories,
// model_resident): the cycle-level simulation always lands on the same
// timing and outputs for the same inputs. Serving traffic walks a fixed
// corpus round-robin, so the same batch contents recur constantly once
// the pool is warm — and re-simulating them is where nearly all host
// wall-clock goes. ServiceCycleCache memoizes complete RunResults keyed
// on (program fingerprint, story digest, resident flag) so a repeated
// batch replays its cached timing/output instead of re-simulating;
// replay is bit-identical because the key covers every input that can
// influence the simulation.
//
// The cache is shared by the serving scheduler's host workers and the
// simulation thread, so it is internally locked and additionally acts as
// a rendezvous for in-flight computations: acquire() on a key that
// another thread is currently simulating blocks until that thread
// publishes (or abandons), which both deduplicates speculative work and
// lets the simulation thread pick up a prefetched result the moment it
// is ready.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "accel/accelerator.hpp"
#include "data/types.hpp"
#include "obs/metrics.hpp"

namespace mann::accel {

/// Hit/miss/eviction counters, exported into the ServingReport. Every
/// lookup lands in exactly one of hits/waits/misses: a lookup that
/// blocked on another thread's in-flight simulation is a *wait*, not a
/// hit — it avoided duplicate work but paid miss-shaped latency, and
/// counting it as a hit used to inflate the reported hit rate.
struct ServiceCycleCacheStats {
  std::uint64_t hits = 0;         ///< immediately resident
  std::uint64_t misses = 0;       ///< lookups that had to simulate
  std::uint64_t waits = 0;        ///< resolved by an in-flight run we blocked on
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;        ///< resident entries at sample time

  /// True hits over all lookups (hits + waits + misses).
  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t lookups = hits + waits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// Word-at-a-time FNV-1a — the one hash primitive behind the story
/// digest, the key hash and the device fingerprint, kept together so the
/// three stay a matched set (they jointly form the cache key).
inline constexpr std::uint64_t kFnv1aOffset = 0xcbf29ce484222325ULL;
[[nodiscard]] inline std::uint64_t fnv1a_mix(std::uint64_t h,
                                             std::uint64_t word) noexcept {
  return (h ^ word) * 0x100000001b3ULL;
}

/// FNV-1a digest of a story span (shapes and contents). Two spans with
/// the same digest and count are treated as the same workload.
[[nodiscard]] std::uint64_t digest_stories(
    std::span<const data::EncodedStory> stories) noexcept;

class ServiceCycleCache {
 public:
  struct Key {
    std::uint64_t program_fingerprint = 0;  ///< config + program digest
    std::uint64_t stories_digest = 0;
    std::size_t story_count = 0;
    bool model_resident = false;

    [[nodiscard]] bool operator==(const Key&) const noexcept = default;
  };

  /// `capacity` bounds resident entries; the least recently used entry is
  /// evicted on overflow. Throws std::invalid_argument when 0. When
  /// `metrics` is set the cache mirrors its stats into
  /// "accel.cycle_cache.*" counters (non-owning; may be null).
  explicit ServiceCycleCache(std::size_t capacity = 1024,
                             obs::MetricsRegistry* metrics = nullptr);

  /// Looks up `key`. On a hit returns a copy of the cached result. On a
  /// miss the caller becomes the key's owner and MUST later call
  /// publish() (or abandon() on failure). If another thread owns the key,
  /// blocks until it publishes or abandons, then resolves accordingly.
  /// `outcome`, when non-null, reports which of those paths was taken.
  [[nodiscard]] std::optional<RunResult> acquire(
      const Key& key, CacheOutcome* outcome = nullptr);

  /// Inserts the owned key's result (evicting LRU beyond capacity) and
  /// wakes any acquire() blocked on it.
  void publish(const Key& key, const RunResult& result);

  /// Releases ownership without a result (the simulation threw); a
  /// blocked acquire() takes over the computation.
  void abandon(const Key& key) noexcept;

  [[nodiscard]] ServiceCycleCacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  void clear();

 private:
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& k) const noexcept;
  };
  struct Entry {
    Key key;
    RunResult result;
  };

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  std::unordered_set<Key, KeyHash> in_flight_;
  ServiceCycleCacheStats stats_;
  // Mirrored obs instruments (null without a registry).
  obs::Counter* obs_hits_ = nullptr;
  obs::Counter* obs_waits_ = nullptr;
  obs::Counter* obs_misses_ = nullptr;
  obs::Counter* obs_insertions_ = nullptr;
  obs::Counter* obs_evictions_ = nullptr;
  obs::Gauge* obs_entries_ = nullptr;
};

}  // namespace mann::accel
