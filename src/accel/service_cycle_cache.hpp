// Service-cycle memoization for warm serving traffic.
//
// Accelerator::run is a pure function of (config, program, stories,
// model_resident): the cycle-level simulation always lands on the same
// timing and outputs for the same inputs. Serving traffic walks a fixed
// corpus round-robin, so the same batch contents recur constantly once
// the pool is warm — and re-simulating them is where nearly all host
// wall-clock goes. ServiceCycleCache memoizes complete RunResults keyed
// on (program fingerprint, story digest, resident flag) so a repeated
// batch replays its cached timing/output instead of re-simulating;
// replay is bit-identical because the key covers every input that can
// influence the simulation.
//
// The cache is shared by the serving scheduler's host workers and the
// simulation thread, so it is internally locked and additionally acts as
// a rendezvous for in-flight computations: acquire() on a key that
// another thread is currently simulating blocks until that thread
// publishes (or abandons), which both deduplicates speculative work and
// lets the simulation thread pick up a prefetched result the moment it
// is ready.
//
// Sizing is cost-informed: an admission floor drops entries cheaper to
// re-simulate than to keep (set_admission_floor), and capacity eviction
// can delegate the victim choice to the serving stack's EvictionPolicy
// machinery (set_eviction_policy) — e.g. cost-aware eviction drops the
// entry with the fewest simulated cycles, i.e. the one cheapest to
// recompute. Without a policy the built-in O(1) LRU order applies.
//
// Cross-run persistence: the serving suite and its seeds are
// deterministic, so memoized results are valid across process runs.
// save()/load() serialize the resident entries to a versioned,
// checksummed binary file; load is corruption-tolerant (a truncated,
// garbled or version-mismatched file is ignored with a warning, never a
// crash) and round-trips bit-exactly (doubles travel as raw bits), so a
// replayed entry is indistinguishable from a re-simulated one.
//
// Sharding: at higher host-thread counts (cluster fleet threads, many
// workers) a single mutex serializes every lookup. The cache can be
// split into S independently-locked segments selected by the key hash
// (which mixes the story digest, so concurrent distinct batches spread
// across segments). Each segment keeps its own LRU order, in-flight
// rendezvous and stats; stats() sums the segments, and save()/load()
// serialize the merged view so the on-disk format is identical for any
// segment count. The per-lookup outcome (hit/wait/miss) depends only on
// which keys are resident, so hits+waits+misses and admission rejects
// are invariant across segment counts.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "accel/accelerator.hpp"
#include "data/types.hpp"
#include "obs/metrics.hpp"
#include "sim/types.hpp"

namespace mann::serve {
class EvictionPolicy;  // serve/eviction.hpp (victim choice machinery)
enum class EvictionPolicyKind : std::uint8_t;
}  // namespace mann::serve

namespace mann::accel {

/// Hit/miss/eviction counters, exported into the ServingReport. Every
/// lookup lands in exactly one of hits/waits/misses: a lookup that
/// blocked on another thread's in-flight simulation is a *wait*, not a
/// hit — it avoided duplicate work but paid miss-shaped latency, and
/// counting it as a hit used to inflate the reported hit rate.
struct ServiceCycleCacheStats {
  std::uint64_t hits = 0;         ///< immediately resident
  std::uint64_t misses = 0;       ///< lookups that had to simulate
  std::uint64_t waits = 0;        ///< resolved by an in-flight run we blocked on
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t admission_rejects = 0;  ///< publishes below the cost floor
  std::size_t entries = 0;        ///< resident entries at sample time

  /// True hits over all lookups (hits + waits + misses).
  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t lookups = hits + waits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// Word-at-a-time FNV-1a — the one hash primitive behind the story
/// digest, the key hash and the device fingerprint, kept together so the
/// three stay a matched set (they jointly form the cache key).
inline constexpr std::uint64_t kFnv1aOffset = 0xcbf29ce484222325ULL;
[[nodiscard]] inline std::uint64_t fnv1a_mix(std::uint64_t h,
                                             std::uint64_t word) noexcept {
  return (h ^ word) * 0x100000001b3ULL;
}

/// FNV-1a digest of a story span (shapes and contents). Two spans with
/// the same digest and count are treated as the same workload.
[[nodiscard]] std::uint64_t digest_stories(
    std::span<const data::EncodedStory> stories) noexcept;

class ServiceCycleCache {
 public:
  struct Key {
    std::uint64_t program_fingerprint = 0;  ///< config + program digest
    std::uint64_t stories_digest = 0;
    std::size_t story_count = 0;
    bool model_resident = false;

    [[nodiscard]] bool operator==(const Key&) const noexcept = default;
  };

  /// On-disk format version: bump whenever the serialized layout
  /// changes. (Simulator-behaviour changes are guarded elsewhere: the CI
  /// persistence key hashes the sources, and the bench's sequential-vs-
  /// parallel identity gate re-derives every number from scratch.)
  static constexpr std::uint32_t kPersistVersion = 1;

  /// `capacity` bounds resident entries; the least recently used entry is
  /// evicted on overflow. Throws std::invalid_argument when `capacity` or
  /// `segments` is 0. When `metrics` is set the cache mirrors its stats
  /// into "accel.cycle_cache.*" counters (non-owning; may be null).
  /// `segments` splits the cache into that many independently-locked
  /// shards (key-hash selected; capacity divides evenly, rounded up).
  /// With more than one segment and a registry, per-segment
  /// "accel.cycle_cache.segment.<i>.{hits,waits,misses,contended}"
  /// counters expose where lookups land and which locks are fought over.
  explicit ServiceCycleCache(std::size_t capacity = 1024,
                             obs::MetricsRegistry* metrics = nullptr,
                             std::size_t segments = 1);
  ~ServiceCycleCache();

  ServiceCycleCache(const ServiceCycleCache&) = delete;
  ServiceCycleCache& operator=(const ServiceCycleCache&) = delete;

  /// Looks up `key`. On a hit returns a copy of the cached result. On a
  /// miss the caller becomes the key's owner and MUST later call
  /// publish() (or abandon() on failure). If another thread owns the key,
  /// blocks until it publishes or abandons, then resolves accordingly.
  /// `outcome`, when non-null, reports which of those paths was taken.
  [[nodiscard]] std::optional<RunResult> acquire(
      const Key& key, CacheOutcome* outcome = nullptr);

  /// Inserts the owned key's result (evicting beyond capacity) and wakes
  /// any acquire() blocked on it. Results below the admission floor are
  /// not kept — cheaper to recompute than to cache — but the waiters are
  /// still woken (the rendezvous contract is unconditional).
  void publish(const Key& key, const RunResult& result);

  /// Releases ownership without a result (the simulation threw); a
  /// blocked acquire() takes over the computation.
  void abandon(const Key& key) noexcept;

  /// Cost-informed admission: publish() drops results whose simulated
  /// cost is under `floor` cycles (0 = keep everything, the default).
  void set_admission_floor(sim::Cycle floor);

  /// Delegates capacity-eviction victim choice to a serve::EvictionPolicy
  /// (candidates: recency = touch order, frequency = per-entry hits,
  /// reload cost = the entry's simulated cycles). Null restores the
  /// built-in O(1) LRU order. A sharded cache needs one policy instance
  /// per segment, so this overload throws std::invalid_argument when
  /// segments() > 1 — use the kind overload there.
  void set_eviction_policy(std::unique_ptr<serve::EvictionPolicy> policy);

  /// Same, by policy kind: constructs one independent policy per segment
  /// via serve::make_eviction_policy(kind, metrics), so it works for any
  /// segment count.
  void set_eviction_policy(serve::EvictionPolicyKind kind,
                           obs::MetricsRegistry* metrics = nullptr);

  // ---- cross-run persistence ----

  /// Serializes every resident entry to `path` (atomically: tmp file +
  /// rename). Returns the entry count written, or 0 with a stderr
  /// warning when the file cannot be written. Never throws.
  [[nodiscard]] std::size_t save(const std::string& path) const;

  /// Merges entries from a file previously written by save() (keys
  /// already resident win; capacity eviction applies). All-or-nothing:
  /// a missing, truncated, corrupted or version-mismatched file loads
  /// nothing, warns on stderr and returns 0 — never throws. Returns the
  /// entry count loaded. Loaded entries do not count as insertions (the
  /// stats describe this process's lookups and publishes).
  [[nodiscard]] std::size_t load(const std::string& path);

  [[nodiscard]] ServiceCycleCacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t segments() const noexcept {
    return segments_.size();
  }
  void clear();

 private:
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& k) const noexcept;
  };
  struct Entry {
    Key key;
    RunResult result;
    std::uint64_t touch_seq = 0;  ///< monotone recency clock (policy view)
    std::uint64_t hits = 0;       ///< lookups resolved by this entry
  };

  /// One independently-locked shard: its own LRU order, in-flight
  /// rendezvous, recency clock and stats. Never crosses into another
  /// segment, so two threads on different segments never contend.
  struct Segment {
    mutable std::mutex mutex;
    std::condition_variable ready;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
    std::unordered_set<Key, KeyHash> in_flight;
    ServiceCycleCacheStats stats;
    std::uint64_t touch_counter = 0;
    sim::Cycle admission_floor = 0;
    std::unique_ptr<serve::EvictionPolicy> eviction;
    // Mirrored per-segment obs instruments (null without a registry or
    // for a single-segment cache).
    obs::Counter* obs_hits = nullptr;
    obs::Counter* obs_waits = nullptr;
    obs::Counter* obs_misses = nullptr;
    obs::Counter* obs_contended = nullptr;  ///< lock acquisitions that blocked
  };

  [[nodiscard]] Segment& segment_for(const Key& key) noexcept;
  /// Locks `segment.mutex`, counting the acquisition as contended when
  /// another thread already holds it.
  [[nodiscard]] std::unique_lock<std::mutex> lock_segment(Segment& segment);
  /// Inserts without claiming in-flight ownership (load() path); the
  /// segment lock must be held. Returns false when the key is already
  /// resident.
  bool insert_locked(Segment& segment, Key key, RunResult result);
  /// Evicts past the segment's share of capacity via the installed policy
  /// (or LRU); the segment lock must be held.
  void evict_over_capacity_locked(Segment& segment);

  std::size_t capacity_;
  std::size_t segment_capacity_;
  std::vector<std::unique_ptr<Segment>> segments_;
  /// Resident entries across all segments, maintained atomically so the
  /// entries gauge never needs a cross-segment lock sweep.
  std::atomic<std::int64_t> entry_count_{0};
  // Mirrored aggregate obs instruments (null without a registry); shared
  // across segments — counters are atomic.
  obs::Counter* obs_hits_ = nullptr;
  obs::Counter* obs_waits_ = nullptr;
  obs::Counter* obs_misses_ = nullptr;
  obs::Counter* obs_insertions_ = nullptr;
  obs::Counter* obs_evictions_ = nullptr;
  obs::Gauge* obs_entries_ = nullptr;
};

}  // namespace mann::accel
