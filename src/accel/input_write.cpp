#include "accel/input_write.hpp"

namespace mann::accel {

InputWriteModule::InputWriteModule(AcceleratorState& state,
                                   const AccelConfig& config,
                                   sim::Fifo<InputCmd>& cmd_fifo)
    : Module("INPUT_WRITE"),
      state_(state),
      timing_(config.timing),
      cmd_fifo_(cmd_fifo) {}

void InputWriteModule::flush_sentence() {
  if (!state_.sentence_open) {
    return;
  }
  // Write both accumulators into the memory banks; drop the oldest slot
  // when full (same recency truncation as the reference model).
  if (state_.mem_a.size() >= state_.program.max_memory) {
    state_.mem_a.erase(state_.mem_a.begin());
    state_.mem_c.erase(state_.mem_c.begin());
  }
  state_.mem_a.push_back(state_.acc_a);
  state_.mem_c.push_back(state_.acc_c);
  ops().mem_write += 2 * state_.program.embedding_dim;
  fx_clear(state_.acc_a);
  fx_clear(state_.acc_c);
  state_.sentence_open = false;
  busy_ += timing_.bram_write;
}

void InputWriteModule::process(const InputCmd& cmd) {
  const std::size_t e = state_.program.embedding_dim;
  switch (cmd.kind) {
    case InputCmdKind::kSentenceStart:
      flush_sentence();
      busy_ += 1;
      break;
    case InputCmdKind::kContextWord: {
      const auto w = static_cast<std::size_t>(cmd.word);
      fx_add(state_.program.emb_a.row(w), state_.acc_a);
      fx_add(state_.program.emb_c.row(w), state_.acc_c);
      state_.sentence_open = true;
      ops().add += 2 * e;
      ops().mem_read += 2 * e;
      busy_ += 1;  // one embedding column per cycle, lanes in parallel
      break;
    }
    case InputCmdKind::kQuestionStart:
      flush_sentence();
      busy_ += 1;
      break;
    case InputCmdKind::kQuestionWord: {
      const auto w = static_cast<std::size_t>(cmd.word);
      fx_add(state_.program.emb_q.row(w), state_.acc_q);
      ops().add += e;
      ops().mem_read += e;
      busy_ += 1;
      break;
    }
    case InputCmdKind::kEndOfStory:
      // Eq. 3, t = 1: the read key register takes the embedded question.
      state_.reg_k = state_.acc_q;
      state_.input_done = true;
      busy_ += 1;
      break;
  }
}

void InputWriteModule::tick() {
  if (busy_ == 0) {
    const auto cmd = cmd_fifo_.try_pop();
    if (!cmd) {
      return;  // idle
    }
    process(*cmd);
  }
  mark_busy();
  --busy_;
}

}  // namespace mann::accel
