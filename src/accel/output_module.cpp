#include "accel/output_module.hpp"

namespace mann::accel {

OutputModule::OutputModule(AcceleratorState& state, const AccelConfig& config,
                           sim::Fifo<std::int32_t>& fifo_out)
    : Module("OUTPUT"),
      state_(state),
      timing_(config.timing),
      ith_enabled_(config.ith_enabled && state.program.has_ith_tables()),
      use_index_ordering_(config.use_index_ordering),
      fifo_out_(fifo_out) {}

std::size_t OutputModule::probe_class(std::size_t rank) const noexcept {
  if (ith_enabled_ && use_index_ordering_) {
    return static_cast<std::size_t>(state_.program.probe_order[rank]);
  }
  return rank;
}

void OutputModule::begin_search() {
  state_.features_ready = false;
  phase_ = Phase::kProbing;
  rank_ = 0;
  classes_ = state_.program.vocab_size;
  best_logit_ = Fx::min();
  best_class_ = 0;
  record_ = {};
  start_probe();
}

void OutputModule::start_probe() {
  const std::size_t cls = probe_class(rank_);
  const std::size_t e = state_.program.embedding_dim;
  current_logit_ = fx_dot(state_.program.w_o.row(cls), state_.reg_h);
  ops().mac += e;
  ops().mem_read += e;
  ops().compare += 1;
  ++record_.probes;
  // First probe pays the tree fill latency; later probes pipeline.
  busy_ = rank_ == 0 ? timing_.dot_cycles(e) : timing_.dot_ii(e);
}

void OutputModule::finish_probe() {
  const std::size_t cls = probe_class(rank_);
  if (ith_enabled_ && current_logit_ > state_.program.thresholds[cls]) {
    record_.prediction = static_cast<std::int32_t>(cls);
    record_.early_exit = true;
    phase_ = Phase::kPushing;
    return;
  }
  if (current_logit_ > best_logit_) {
    best_logit_ = current_logit_;
    best_class_ = cls;
  }
  ++rank_;
  if (rank_ < classes_) {
    start_probe();
    return;
  }
  record_.prediction = static_cast<std::int32_t>(best_class_);
  phase_ = Phase::kPushing;
}

void OutputModule::tick() {
  switch (phase_) {
    case Phase::kIdle:
      if (!state_.features_ready) {
        return;
      }
      begin_search();
      [[fallthrough]];
    case Phase::kProbing:
      mark_busy();
      --busy_;
      if (busy_ == 0) {
        finish_probe();
      }
      return;
    case Phase::kPushing:
      if (!fifo_out_.try_push(record_.prediction)) {
        mark_stalled();
        return;
      }
      mark_busy();
      records_.push_back(record_);
      state_.story_active = false;  // datapath free for the next story
      phase_ = Phase::kIdle;
      return;
  }
}

}  // namespace mann::accel
