// Top-level accelerator: wires the host link, FIFOs and the five modules
// of Fig. 1 together and runs a workload to completion.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "accel/compiler.hpp"
#include "accel/config.hpp"
#include "data/types.hpp"
#include "sim/fifo.hpp"
#include "sim/types.hpp"

namespace mann::accel {

/// One story's outcome as observed at the host.
struct StoryOutcome {
  std::int32_t prediction = -1;
  std::uint64_t output_probes = 0;  ///< output-layer dot products
  bool early_exit = false;          ///< an ITH threshold fired
  sim::Cycle finish_cycle = 0;      ///< host-side completion time
};

/// Per-module activity snapshot.
struct ModuleReport {
  std::string name;
  sim::ModuleStats stats;
};

/// Full result of one workload run.
struct RunResult {
  std::vector<StoryOutcome> stories;
  sim::Cycle total_cycles = 0;
  double seconds = 0.0;  ///< wall time at the configured clock
  std::vector<ModuleReport> modules;
  sim::OpCounts total_ops;
  sim::FifoStats fifo_in_stats;
  sim::FifoStats fifo_out_stats;
  sim::Cycle link_active_cycles = 0;  ///< I/O-occupied cycles
  std::size_t stream_words = 0;

  /// Convenience: fraction of stories that early-exited.
  [[nodiscard]] double early_exit_rate() const noexcept;
  /// Mean output probes per story.
  [[nodiscard]] double mean_output_probes() const noexcept;
  /// Aggregate host-facing queue stats (FIFO_IN + FIFO_OUT) — the same
  /// FifoStats code path the serving metrics and the fifo-depth ablation
  /// introspect.
  [[nodiscard]] sim::FifoStats queue_stats() const noexcept;
};

class ServiceCycleCache;

/// How a run() resolved against the service-cycle cache. kWait means the
/// result was correct-and-cached but only after blocking on another
/// thread's in-flight simulation — the latency profile of a miss, the
/// work profile of a hit — so accounting keeps it distinct from both.
enum class CacheOutcome : std::uint8_t {
  kNone,  ///< no cache configured for this run
  kHit,   ///< immediately resident
  kWait,  ///< resolved by an in-flight simulation we blocked on
  kMiss,  ///< this run simulated (and published)
};

[[nodiscard]] constexpr const char* cache_outcome_name(
    CacheOutcome outcome) noexcept {
  switch (outcome) {
    case CacheOutcome::kNone:
      return "none";
    case CacheOutcome::kHit:
      return "hit";
    case CacheOutcome::kWait:
      return "wait";
    case CacheOutcome::kMiss:
      return "miss";
  }
  return "?";
}

/// Per-run options.
struct RunOptions {
  /// The trained model is already resident in device BRAM (a previous
  /// run() uploaded it), so the model-load phase of the stream is
  /// skipped. The serving runtime uses this to amortise the upload
  /// across batches dispatched to a warm device; the default models a
  /// fresh power-on (model upload + inference stream, the paper's
  /// measurement protocol, which includes model transmission).
  bool model_resident = false;
  /// When set, run() memoizes through this cache: a previously simulated
  /// (program, stories, resident) workload replays its cached
  /// timing/output instead of re-simulating — bit-identical, since the
  /// cache key covers every input the simulation depends on. Non-owning;
  /// the cache may be shared across devices and host threads.
  ServiceCycleCache* cycle_cache = nullptr;
  /// When non-null, run() reports how the lookup resolved (kNone when no
  /// cycle_cache is set). Observability only — never affects the result.
  CacheOutcome* cache_outcome = nullptr;
};

/// The device. Holds no mutable state between run() calls — warm-device
/// behaviour is expressed per run via RunOptions::model_resident, so the
/// same instance can serve many batches (the serving scheduler tracks
/// which program each pool device last uploaded).
///
/// Thread safety: run() is const and builds all simulation state on its
/// own stack, so concurrent run() calls on one instance (or on instances
/// sharing a program image) are safe — the serving worker pool executes
/// device slots on separate host threads against the same Accelerator.
class Accelerator {
 public:
  Accelerator(AccelConfig config, DeviceProgram program);

  [[nodiscard]] const AccelConfig& config() const noexcept { return config_; }
  [[nodiscard]] const DeviceProgram& program() const noexcept {
    return program_;
  }

  /// Digest of everything timing-relevant about this device (config
  /// knobs + program contents): the service-cycle cache's program key.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_;
  }

  /// Streams `stories` through the device and returns the full report.
  [[nodiscard]] RunResult run(std::span<const data::EncodedStory> stories,
                              const RunOptions& options = {}) const;

 private:
  /// The uncached path: builds the module graph and ticks it to
  /// completion (run() adds the memoization layer on top).
  [[nodiscard]] RunResult simulate(std::span<const data::EncodedStory> stories,
                                   const RunOptions& options) const;

  AccelConfig config_;
  DeviceProgram program_;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace mann::accel
