#include "accel/read_module.hpp"

namespace mann::accel {

ReadModule::ReadModule(AcceleratorState& state, const AccelConfig& config)
    : Module("READ"), state_(state), timing_(config.timing) {}

void ReadModule::start_hop() {
  const std::size_t e = state_.program.embedding_dim;
  // Kick MEM off on the same key, then occupy our own MAC array with
  // W_r · k while MEM walks the memory bank.
  state_.read_busy = true;
  state_.mem_request = true;
  wrk_.assign(e, Fx{});
  for (std::size_t row = 0; row < e; ++row) {
    wrk_[row] = fx_dot(state_.program.w_r.row(row), state_.reg_k);
  }
  ops().mac += e * e;
  ops().mem_read += e * e;
  phase_ = Phase::kWrk;
  busy_ = timing_.dot_cycles(e) +
          static_cast<sim::Cycle>(e - 1) * timing_.dot_ii(e);
}

void ReadModule::on_busy_complete() {
  if (phase_ == Phase::kWrk) {
    phase_ = Phase::kWaitMem;
    return;
  }
  // Phase::kAdd drained.
  finish_hop();
}

void ReadModule::finish_hop() {
  state_.reg_h = next_h_;
  ++state_.hops_done;
  phase_ = Phase::kIdle;
  if (state_.hops_done < state_.program.hops) {
    // Eq. 3 (t > 1): feed h back as the next read key and start the next
    // hop immediately (next tick).
    state_.reg_k = state_.reg_h;
  } else {
    state_.features_ready = true;
    state_.read_busy = false;
  }
}

void ReadModule::tick() {
  if (busy_ > 0) {
    mark_busy();
    --busy_;
    if (busy_ == 0) {
      on_busy_complete();
    }
    return;
  }
  switch (phase_) {
    case Phase::kIdle: {
      const bool first_hop = state_.input_done && !state_.read_busy &&
                             state_.hops_done == 0 &&
                             !state_.features_ready;
      const bool next_hop = state_.read_busy &&
                            state_.hops_done < state_.program.hops &&
                            state_.hops_done > 0;
      if (first_hop || next_hop) {
        start_hop();
        mark_busy();
      }
      return;
    }
    case Phase::kWaitMem: {
      if (!state_.mem_done) {
        return;  // stalled on the memory pipeline
      }
      state_.mem_done = false;
      const std::size_t e = state_.program.embedding_dim;
      next_h_ = wrk_;
      fx_add(state_.reg_r, next_h_);
      ops().add += e;
      phase_ = Phase::kAdd;
      busy_ = static_cast<sim::Cycle>(
          sim::ceil_div(e, timing_.lane_width));
      mark_busy();
      --busy_;
      if (busy_ == 0) {
        on_busy_complete();
      }
      return;
    }
    case Phase::kWrk:
    case Phase::kAdd:
      return;  // busy_ handled above
  }
}

}  // namespace mann::accel
