#include "accel/control.hpp"

#include <stdexcept>

namespace mann::accel {

ControlModule::ControlModule(AcceleratorState& state,
                             sim::Fifo<StreamWord>& fifo_in,
                             sim::Fifo<InputCmd>& cmd_fifo)
    : Module("CONTROL"), state_(state), fifo_in_(fifo_in),
      cmd_fifo_(cmd_fifo) {}

void ControlModule::tick() {
  const StreamWord* word = fifo_in_.peek();
  if (word == nullptr) {
    return;  // idle: nothing on the stream
  }

  switch (word->op) {
    case StreamOp::kModelWord: {
      (void)fifo_in_.try_pop();
      ++state_.model_words_seen;
      ++ops().mem_write;  // one BRAM weight-word write
      if (state_.model_words_seen >= state_.program.model_words()) {
        state_.model_loaded = true;
      }
      mark_busy();
      return;
    }
    case StreamOp::kStoryStart: {
      if (!state_.model_loaded) {
        throw std::logic_error("CONTROL: story before model load completed");
      }
      if (state_.story_active) {
        mark_stalled();  // previous inference still owns the datapath
        return;
      }
      (void)fifo_in_.try_pop();
      state_.begin_story();
      mark_busy();
      return;
    }
    case StreamOp::kSentenceStart:
    case StreamOp::kContextWord:
    case StreamOp::kQuestionStart:
    case StreamOp::kQuestionWord:
    case StreamOp::kEndOfStory: {
      if (!state_.story_active) {
        throw std::logic_error("CONTROL: data word outside a story");
      }
      if (cmd_fifo_.full()) {
        mark_stalled();
        return;
      }
      const StreamWord w = *fifo_in_.try_pop();
      InputCmd cmd;
      cmd.word = w.payload;
      switch (w.op) {
        case StreamOp::kSentenceStart:
          cmd.kind = InputCmdKind::kSentenceStart;
          break;
        case StreamOp::kContextWord:
          cmd.kind = InputCmdKind::kContextWord;
          break;
        case StreamOp::kQuestionStart:
          cmd.kind = InputCmdKind::kQuestionStart;
          break;
        case StreamOp::kQuestionWord:
          cmd.kind = InputCmdKind::kQuestionWord;
          break;
        default:
          cmd.kind = InputCmdKind::kEndOfStory;
          break;
      }
      cmd_fifo_.push(cmd);
      mark_busy();
      return;
    }
  }
}

}  // namespace mann::accel
