#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <set>
#include <tuple>
#include <utility>

namespace mann::obs {

#if MANN_OBS

namespace {
std::atomic<std::uint64_t> g_next_recorder_id{1};
}  // namespace

TraceRecorder::TraceRecorder()
    : epoch_(std::chrono::steady_clock::now()),
      instance_id_(g_next_recorder_id.fetch_add(
          1, std::memory_order_relaxed)) {}

TraceRecorder::Buffer& TraceRecorder::local_buffer() {
  // Per-thread buffer, registered once under the mutex and then cached:
  // the recording fast path is a plain vector push_back. A thread that
  // alternates between recorders re-registers on each switch (a fresh
  // buffer each time) — wasteful but correct, and it never happens on
  // the serving hot path, where each thread serves one recorder. The
  // cache is keyed on the process-unique instance id, not the address:
  // a later recorder constructed at a recycled address must not inherit
  // a dangling buffer pointer.
  struct Cache {
    std::uint64_t owner_id = 0;  ///< ids start at 1, so 0 never matches
    Buffer* buffer = nullptr;
  };
  thread_local Cache cache;
  if (cache.owner_id != instance_id_) {
    std::lock_guard lock(mutex_);
    buffers_.push_back(std::make_unique<Buffer>());
    cache = {instance_id_, buffers_.back().get()};
  }
  return *cache.buffer;
}

void TraceRecorder::record(TraceEvent event) {
  if (!enabled()) {
    return;
  }
  event.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  event.wall_ns = wall_ns();
  local_buffer().events.push_back(event);
}

void TraceRecorder::begin_async(const char* name, std::uint64_t id,
                                std::uint64_t ts, std::int64_t task,
                                std::int64_t tenant, std::int64_t deadline) {
  TraceEvent e;
  e.name = name;
  e.phase = Phase::kAsyncBegin;
  e.domain = Domain::kSim;
  e.track = kTrackRequests;
  e.ts = ts;
  e.id = id;
  e.task = task;
  e.tenant = tenant;
  e.deadline = deadline;
  record(e);
}

void TraceRecorder::end_async(const char* name, std::uint64_t id,
                              std::uint64_t ts) {
  TraceEvent e;
  e.name = name;
  e.phase = Phase::kAsyncEnd;
  e.domain = Domain::kSim;
  e.track = kTrackRequests;
  e.ts = ts;
  e.id = id;
  record(e);
}

void TraceRecorder::instant(Domain domain, std::uint32_t track,
                            const char* name, std::uint64_t ts,
                            const char* detail, std::int64_t task,
                            std::int64_t tenant, std::uint64_t id) {
  TraceEvent e;
  e.name = name;
  e.detail = detail;
  e.phase = Phase::kInstant;
  e.domain = domain;
  e.track = track;
  e.ts = ts;
  e.task = task;
  e.tenant = tenant;
  e.id = id;
  record(e);
}

void TraceRecorder::complete(Domain domain, std::uint32_t track,
                             const char* name, std::uint64_t ts,
                             std::uint64_t dur, const char* detail,
                             std::int64_t task, std::int64_t tenant,
                             std::int64_t batch) {
  TraceEvent e;
  e.name = name;
  e.detail = detail;
  e.phase = Phase::kComplete;
  e.domain = domain;
  e.track = track;
  e.ts = ts;
  e.dur = dur;
  e.task = task;
  e.tenant = tenant;
  e.batch = batch;
  record(e);
}

std::uint64_t TraceRecorder::wall_ns() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::vector<TraceEvent> TraceRecorder::merged() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard lock(mutex_);
    std::size_t total = 0;
    for (const auto& buffer : buffers_) {
      total += buffer->events.size();
    }
    events.reserve(total);
    for (const auto& buffer : buffers_) {
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  // Deterministic for the simulated domain: sim events come from the one
  // simulation thread, so (ts, seq) reproduces record order exactly.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return std::tie(a.domain, a.track, a.ts, a.seq) <
                            std::tie(b.domain, b.track, b.ts, b.seq);
                   });
  return events;
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard lock(mutex_);
  std::size_t total = 0;
  for (const auto& buffer : buffers_) {
    total += buffer->events.size();
  }
  return total;
}

#endif  // MANN_OBS

namespace {

void append(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n > 0) {
    out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n),
                                          sizeof buf - 1));
  }
}

[[nodiscard]] int event_pid(const TraceEvent& e) noexcept {
  return e.domain == Domain::kSim ? 1 : 2;
}

/// Trace timestamps are microseconds: simulated cycles via the device
/// clock, host nanoseconds via /1000.
[[nodiscard]] double event_us(const TraceEvent& e,
                              double clock_hz) noexcept {
  return e.domain == Domain::kSim
             ? static_cast<double>(e.ts) / clock_hz * 1e6
             : static_cast<double>(e.ts) * 1e-3;
}

void append_args(std::string& out, const TraceEvent& e) {
  out += ",\"args\":{";
  bool first = true;
  const auto field = [&](const char* key, std::int64_t value) {
    if (value >= 0) {
      append(out, "%s\"%s\":%" PRId64, first ? "" : ",", key, value);
      first = false;
    }
  };
  field("task", e.task);
  field("tenant", e.tenant);
  field("batch", e.batch);
  field("deadline", e.deadline);
  // Async phases already print the id at the top level; instants (the
  // cluster router's routing decisions) carry it in args instead.
  if (e.phase == Phase::kInstant && e.id != kNoId) {
    append(out, "%s\"id\":%" PRIu64, first ? "" : ",", e.id);
    first = false;
  }
  if (e.detail != nullptr) {
    append(out, "%s\"detail\":\"%s\"", first ? "" : ",", e.detail);
    first = false;
  }
  append(out, "%s\"wall_ns\":%" PRIu64, first ? "" : ",", e.wall_ns);
  out += "}";
}

void append_metadata(std::string& out, const std::vector<TraceEvent>& events) {
  const auto meta = [&](int pid, std::int64_t tid, const char* key,
                        const std::string& value) {
    append(out,
           "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d%s%lld"
           ",\"args\":{\"name\":\"%s\"}},\n",
           key, pid, tid >= 0 ? ",\"tid\":" : "",
           static_cast<long long>(tid >= 0 ? tid : 0), value.c_str());
  };
  std::set<std::pair<int, std::uint32_t>> tracks;
  std::set<int> pids;
  for (const TraceEvent& e : events) {
    tracks.insert({event_pid(e), e.track});
    pids.insert(event_pid(e));
  }
  for (const int pid : pids) {
    meta(pid, -1, "process_name", pid == 1 ? "simulated" : "host");
  }
  for (const auto& [pid, track] : tracks) {
    std::string name;
    if (track == kTrackFrontend) {
      name = "frontend";
    } else if (track == kTrackRequests) {
      name = "requests";
    } else if (track == kTrackRouter) {
      name = "router";
    } else if (track == kTrackDispatch) {
      name = "dispatch";
    } else if (track >= kTrackInstanceBase && pid == 1) {
      // Instance lanes are simulated-domain; host tids >= 200 stay
      // workers (the bases overlap numerically, the pid disambiguates).
      name = "instance " + std::to_string(track - kTrackInstanceBase);
    } else if (track >= kTrackWorkerBase) {
      name = "worker " + std::to_string(track - kTrackWorkerBase);
    } else if (track >= kTrackDeviceBase) {
      name = "device " + std::to_string(track - kTrackDeviceBase);
    } else {
      name = "track " + std::to_string(track);
    }
    meta(pid, static_cast<std::int64_t>(track), "thread_name", name);
  }
}

void append_metrics(std::string& out, const MetricsRegistry& metrics) {
  out += ",\n\"mannMetrics\":{";
  bool first_counter = true;
  bool first_gauge = true;
  bool first_histogram = true;
  std::string counters;
  std::string gauges;
  std::string histograms;
  for (const MetricSample& s : metrics.snapshot()) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        append(counters, "%s\"%s\":%" PRIu64, first_counter ? "" : ",",
               s.name.c_str(), s.value);
        first_counter = false;
        break;
      case MetricSample::Kind::kGauge:
        append(gauges, "%s\"%s\":%" PRId64, first_gauge ? "" : ",",
               s.name.c_str(), s.gauge);
        first_gauge = false;
        break;
      case MetricSample::Kind::kHistogram:
        append(histograms,
               "%s\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
               ",\"min\":%" PRIu64 ",\"max\":%" PRIu64
               ",\"mean\":%.3f,\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f}",
               first_histogram ? "" : ",", s.name.c_str(),
               s.histogram.count, s.histogram.sum, s.histogram.min,
               s.histogram.max, s.histogram.mean(),
               s.histogram.quantile(0.50), s.histogram.quantile(0.95),
               s.histogram.quantile(0.99));
        first_histogram = false;
        break;
    }
  }
  out += "\"counters\":{" + counters + "},";
  out += "\"gauges\":{" + gauges + "},";
  out += "\"histograms\":{" + histograms + "}}";
}

}  // namespace

std::string chrome_trace_json(const TraceRecorder& recorder,
                              double clock_hz,
                              const MetricsRegistry* metrics) {
  const std::vector<TraceEvent> events = recorder.merged();
  std::string out;
  out.reserve(160 * events.size() + 512);
  out += "{\"traceEvents\":[\n";
  append_metadata(out, events);
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    const double ts_us = event_us(e, clock_hz);
    switch (e.phase) {
      case Phase::kComplete: {
        const TraceEvent dur_probe{.domain = e.domain, .ts = e.dur};
        append(out,
               "{\"name\":\"%s\",\"cat\":\"serve\",\"ph\":\"X\","
               "\"pid\":%d,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f",
               e.name, event_pid(e), e.track, ts_us,
               event_us(dur_probe, clock_hz));
        break;
      }
      case Phase::kAsyncBegin:
      case Phase::kAsyncEnd:
        append(out,
               "{\"name\":\"%s\",\"cat\":\"request\",\"ph\":\"%s\","
               "\"id\":%" PRIu64 ",\"pid\":%d,\"tid\":%u,\"ts\":%.3f",
               e.name, e.phase == Phase::kAsyncBegin ? "b" : "e", e.id,
               event_pid(e), e.track, ts_us);
        break;
      case Phase::kInstant:
        append(out,
               "{\"name\":\"%s\",\"cat\":\"serve\",\"ph\":\"i\","
               "\"s\":\"t\",\"pid\":%d,\"tid\":%u,\"ts\":%.3f",
               e.name, event_pid(e), e.track, ts_us);
        break;
    }
    append_args(out, e);
    out += "}";
  }
  out += "\n],\n\"displayTimeUnit\":\"ms\"";
  append(out, ",\n\"mannClockHz\":%.1f", clock_hz);
  if (metrics != nullptr) {
    append_metrics(out, *metrics);
  }
  out += "}\n";
  return out;
}

bool write_chrome_trace(const std::string& path,
                        const TraceRecorder& recorder, double clock_hz,
                        const MetricsRegistry* metrics) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string json = chrome_trace_json(recorder, clock_hz, metrics);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace mann::obs
