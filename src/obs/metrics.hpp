// mann::obs metrics: named counters, gauges and log2-bucketed histograms
// for the serving stack.
//
// Design constraints, in order:
//   1. Zero overhead when compiled out. With MANN_OBS=0 every instrument
//      is an empty struct and every record call an empty inline function,
//      so the serving hot path is byte-for-byte the uninstrumented code.
//      The obs test suite static_asserts the emptiness.
//   2. Lock-free hot path when compiled in. Instruments are plain relaxed
//      atomics — a counter add is one uncontended fetch_add, a histogram
//      observation a handful. The registry's mutex is taken only at
//      instrument registration (cold: once per name at startup) and at
//      snapshot time (cold: end of run); instrument addresses are stable
//      for the registry's lifetime (deque storage), so components cache
//      raw pointers and never touch the registry again.
//   3. Optional everywhere. Components hold nullable instrument pointers
//      and record through the null-safe free helpers, so a server run
//      without a registry costs one branch per record.
//
// Instruments are process-agnostic; the serving stack registers names
// like "serve.admission.shed.quota" or "accel.cycle_cache.hits" and the
// trace writer exports a snapshot beside the trace events.
#pragma once

#ifndef MANN_OBS
#define MANN_OBS 1
#endif

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#if MANN_OBS
#include <atomic>
#include <bit>
#include <deque>
#include <map>
#include <mutex>
#include <string_view>
#else
#include <string_view>
#endif

namespace mann::obs {

/// True when the observability layer is compiled in (MANN_OBS=1).
inline constexpr bool kEnabled = MANN_OBS != 0;

/// Histogram buckets: bucket i counts observations v with bit_width(v)
/// == i, i.e. bucket 0 holds v == 0 and bucket i holds [2^(i-1), 2^i).
inline constexpr std::size_t kHistogramBuckets = 65;

/// Point-in-time copy of a histogram (also the exchange format when the
/// layer is compiled out, so reporting code builds in both modes).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Upper bound of the bucket where the cumulative count crosses `q`
  /// (0..1]; a log2-bucket estimate, exact only at bucket edges.
  [[nodiscard]] double quantile(double q) const noexcept {
    if (count == 0) {
      return 0.0;
    }
    const double target = q * static_cast<double>(count);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      seen += buckets[b];
      if (static_cast<double>(seen) >= target) {
        return b == 0 ? 0.0 : static_cast<double>(1ULL << (b - 1)) * 2.0;
      }
    }
    return static_cast<double>(max);
  }
};

/// One named instrument in a registry snapshot.
struct MetricSample {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  std::uint64_t value = 0;     ///< counter total
  std::int64_t gauge = 0;      ///< gauge level
  HistogramSnapshot histogram;  ///< kHistogram only
};

#if MANN_OBS

/// Monotonic event counter (relaxed atomic: totals are exact, ordering
/// against other instruments is not promised).
class Counter {
 public:
  void add(std::uint64_t v = 1) noexcept {
    value_.fetch_add(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-writer-wins level (queue depths, cache occupancy).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log2-bucketed distribution of non-negative integer observations
/// (latencies in cycles, batch sizes). Lock-free: buckets/count/sum are
/// relaxed adds, min/max CAS loops; a snapshot is not an atomic cut but
/// every observation lands exactly once.
class Histogram {
 public:
  void observe(std::uint64_t v) noexcept {
    buckets_[static_cast<std::size_t>(std::bit_width(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    update_extreme(min_, v, /*want_smaller=*/true);
    update_extreme(max_, v, /*want_smaller=*/false);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const noexcept {
    HistogramSnapshot s;
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.min = s.count == 0 ? 0 : min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < s.buckets.size(); ++b) {
      s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  static void update_extreme(std::atomic<std::uint64_t>& slot,
                             std::uint64_t v, bool want_smaller) noexcept {
    std::uint64_t seen = slot.load(std::memory_order_relaxed);
    while ((want_smaller ? v < seen : v > seen) &&
           !slot.compare_exchange_weak(seen, v,
                                       std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// Name -> instrument directory. Registration is mutex-guarded and
/// idempotent (same name returns the same instrument); the returned
/// references stay valid and lock-free for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// Name-sorted copy of every instrument (counters, then gauges, then
  /// histograms under equal names — names are unique per kind).
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

 private:
  mutable std::mutex mutex_;
  // deques: stable element addresses across registration.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::map<std::string, Counter*, std::less<>> counter_index_;
  std::map<std::string, Gauge*, std::less<>> gauge_index_;
  std::map<std::string, Histogram*, std::less<>> histogram_index_;
};

#else  // !MANN_OBS — empty stubs; every call folds away.

class Counter {
 public:
  void add(std::uint64_t = 1) const noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
};

class Gauge {
 public:
  void set(std::int64_t) const noexcept {}
  [[nodiscard]] std::int64_t value() const noexcept { return 0; }
};

class Histogram {
 public:
  void observe(std::uint64_t) const noexcept {}
  [[nodiscard]] HistogramSnapshot snapshot() const noexcept { return {}; }
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view) noexcept {
    static Counter shared;
    return shared;
  }
  [[nodiscard]] Gauge& gauge(std::string_view) noexcept {
    static Gauge shared;
    return shared;
  }
  [[nodiscard]] Histogram& histogram(std::string_view) noexcept {
    static Histogram shared;
    return shared;
  }
  [[nodiscard]] std::vector<MetricSample> snapshot() const { return {}; }
};

#endif  // MANN_OBS

// Null-safe record helpers: components hold nullable instrument pointers
// (nullptr = no registry configured) and record through these.
inline void add(Counter* counter, std::uint64_t v = 1) noexcept {
  if (counter != nullptr) {
    counter->add(v);
  }
}
inline void set(Gauge* gauge, std::int64_t v) noexcept {
  if (gauge != nullptr) {
    gauge->set(v);
  }
}
inline void observe(Histogram* histogram, std::uint64_t v) noexcept {
  if (histogram != nullptr) {
    histogram->observe(v);
  }
}

/// Instrument lookup through a nullable registry (the idiom every serve
/// component uses in its constructor).
[[nodiscard]] inline Counter* counter(MetricsRegistry* registry,
                                      std::string_view name) {
  return registry != nullptr ? &registry->counter(name) : nullptr;
}
[[nodiscard]] inline Gauge* gauge(MetricsRegistry* registry,
                                  std::string_view name) {
  return registry != nullptr ? &registry->gauge(name) : nullptr;
}
[[nodiscard]] inline Histogram* histogram(MetricsRegistry* registry,
                                          std::string_view name) {
  return registry != nullptr ? &registry->histogram(name) : nullptr;
}

}  // namespace mann::obs
