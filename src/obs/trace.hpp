// mann::obs tracing: per-request lifecycle spans and device/worker
// occupancy, recorded contention-free and exported as Chrome trace-event
// JSON (loadable in Perfetto / chrome://tracing).
//
// Two time domains share one trace:
//   * kSim  (pid 1) — timestamps are simulated cycles. Every lifecycle
//     span and device-slot event lives here, and because the serving
//     timeline is bit-identical for any worker count, the simulated
//     slice of a trace is deterministic (the obs test suite compares it
//     byte-for-byte across worker counts).
//   * kHost (pid 2) — timestamps are host nanoseconds since the recorder
//     was constructed. Worker speculation spans and dispatch-path cache
//     outcomes live here; they explain where the *wall clock* went and
//     are inherently nondeterministic.
//
// The per-request story is four nested async spans on the requests
// track, all sharing the request id:
//   request  — arrival to completion (or immediate end when shed)
//   queued   — batcher lane residence (admission to batch formation)
//   pending  — scheduler queue residence (batch formed to dispatch)
//   service  — device execution (dispatch to completion)
// Sheds additionally drop an instant on the frontend track carrying the
// ShedReason name.
//
// Recording follows MAGPIE's contention-free per-worker buffering idiom:
// each thread appends to its own buffer (registered once under a mutex,
// then cached thread-locally), so the hot path never takes a shared
// lock; merged() concatenates and stable-sorts the buffers at finalize.
#pragma once

#ifndef MANN_OBS
#define MANN_OBS 1
#endif

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

#if MANN_OBS
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#endif

namespace mann::obs {

/// Time domain of an event (see the header comment).
enum class Domain : std::uint8_t {
  kSim,   ///< timestamps in simulated cycles (deterministic)
  kHost,  ///< timestamps in host ns since recorder construction
};

/// Chrome trace-event phase subset the serving stack records.
enum class Phase : std::uint8_t {
  kComplete,    ///< "X": ts + dur block on a track
  kAsyncBegin,  ///< "b": opens an id-keyed span on the requests track
  kAsyncEnd,    ///< "e": closes it
  kInstant,     ///< "i": a point event
};

// Track ids (exported as tid). Simulated domain:
inline constexpr std::uint32_t kTrackFrontend = 1;  ///< admission/sheds
inline constexpr std::uint32_t kTrackRequests = 2;  ///< lifecycle spans
inline constexpr std::uint32_t kTrackRouter = 3;    ///< cluster-level events
inline constexpr std::uint32_t kTrackDeviceBase = 100;  ///< + slot id
/// Cluster routing decisions land on a per-instance lane (+ instance id),
/// so Perfetto shows which server instance each request was assigned to.
inline constexpr std::uint32_t kTrackInstanceBase = 300;
// Host domain:
inline constexpr std::uint32_t kTrackDispatch = 199;  ///< cache outcomes
inline constexpr std::uint32_t kTrackWorkerBase = 200;  ///< + worker index

inline constexpr std::uint64_t kNoId = ~std::uint64_t{0};

/// One recorded event. Fixed-size, allocation-free: names and details
/// must be string literals (static storage), numeric context rides in
/// typed fields (-1 = absent).
struct TraceEvent {
  const char* name = "";
  const char* detail = nullptr;  ///< shed reason / cache outcome / variant
  Phase phase = Phase::kInstant;
  Domain domain = Domain::kSim;
  std::uint32_t track = kTrackFrontend;
  std::uint64_t ts = 0;       ///< cycles (kSim) or ns (kHost)
  std::uint64_t dur = 0;      ///< kComplete only
  std::uint64_t id = kNoId;   ///< async span id (the request id)
  std::uint64_t seq = 0;      ///< recorder-wide record order
  std::uint64_t wall_ns = 0;  ///< host clock at record time (any domain)
  std::int64_t task = -1;
  std::int64_t tenant = -1;
  std::int64_t batch = -1;    ///< batch size
  std::int64_t deadline = -1; ///< deadline cycle
};

#if MANN_OBS

class TraceRecorder {
 public:
  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Opens an id-keyed span on the requests track.
  void begin_async(const char* name, std::uint64_t id, std::uint64_t ts,
                   std::int64_t task = -1, std::int64_t tenant = -1,
                   std::int64_t deadline = -1);
  /// Closes it (matched by name + id).
  void end_async(const char* name, std::uint64_t id, std::uint64_t ts);

  /// `id` ties a point event to a request (exported in args; kNoId =
  /// absent) — the cluster router stamps its routing decisions with the
  /// assigned request id so trace analysis can join them against the
  /// lifecycle spans.
  void instant(Domain domain, std::uint32_t track, const char* name,
               std::uint64_t ts, const char* detail = nullptr,
               std::int64_t task = -1, std::int64_t tenant = -1,
               std::uint64_t id = kNoId);

  void complete(Domain domain, std::uint32_t track, const char* name,
                std::uint64_t ts, std::uint64_t dur,
                const char* detail = nullptr, std::int64_t task = -1,
                std::int64_t tenant = -1, std::int64_t batch = -1);

  /// Host ns since construction (the kHost timestamp source).
  [[nodiscard]] std::uint64_t wall_ns() const noexcept;

  /// Runtime gate: while disabled, every recording call is dropped at
  /// the door (already-recorded events are kept). Lets a long-running
  /// server window its tracing (mann_served's `trace on|off`) without
  /// re-plumbing recorder pointers through a live stack. Enabled at
  /// construction.
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// All events, stable-sorted by (domain, track, ts, seq). Call after
  /// recording threads are quiescent (e.g. post Scheduler::quiesce()).
  [[nodiscard]] std::vector<TraceEvent> merged() const;

  [[nodiscard]] std::size_t event_count() const;

 private:
  struct Buffer {
    std::vector<TraceEvent> events;
  };

  void record(TraceEvent event);
  [[nodiscard]] Buffer& local_buffer();

  std::chrono::steady_clock::time_point epoch_;
  /// Process-unique: a freshly constructed recorder at a recycled
  /// address must not match another thread-local buffer cache entry.
  std::uint64_t instance_id_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> seq_{0};
  mutable std::mutex mutex_;  ///< guards buffers_ registration/merge only
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

#else  // !MANN_OBS — empty recorder; every call folds away.

class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void begin_async(const char*, std::uint64_t, std::uint64_t,
                   std::int64_t = -1, std::int64_t = -1,
                   std::int64_t = -1) const noexcept {}
  void end_async(const char*, std::uint64_t, std::uint64_t) const noexcept {}
  void instant(Domain, std::uint32_t, const char*, std::uint64_t,
               const char* = nullptr, std::int64_t = -1, std::int64_t = -1,
               std::uint64_t = kNoId) const noexcept {}
  void complete(Domain, std::uint32_t, const char*, std::uint64_t,
                std::uint64_t, const char* = nullptr, std::int64_t = -1,
                std::int64_t = -1, std::int64_t = -1) const noexcept {}
  [[nodiscard]] std::uint64_t wall_ns() const noexcept { return 0; }
  void set_enabled(bool) const noexcept {}
  [[nodiscard]] bool enabled() const noexcept { return false; }
  [[nodiscard]] std::vector<TraceEvent> merged() const { return {}; }
  [[nodiscard]] std::size_t event_count() const noexcept { return 0; }
};

#endif  // MANN_OBS

/// Serializes the recorder (and an optional metrics snapshot, under the
/// non-standard "mannMetrics" key Perfetto ignores) as Chrome
/// trace-event JSON. `clock_hz` converts simulated cycles to trace
/// microseconds. Compiled out, this returns an empty-but-valid trace.
[[nodiscard]] std::string chrome_trace_json(
    const TraceRecorder& recorder, double clock_hz,
    const MetricsRegistry* metrics = nullptr);

/// chrome_trace_json straight to `path`; false when the file cannot be
/// written.
bool write_chrome_trace(const std::string& path,
                        const TraceRecorder& recorder, double clock_hz,
                        const MetricsRegistry* metrics = nullptr);

}  // namespace mann::obs
