#include "obs/metrics.hpp"

#if MANN_OBS

#include <algorithm>

namespace mann::obs {

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  if (const auto it = counter_index_.find(name);
      it != counter_index_.end()) {
    return *it->second;
  }
  Counter& instrument = counters_.emplace_back();
  counter_index_.emplace(std::string(name), &instrument);
  return instrument;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  if (const auto it = gauge_index_.find(name); it != gauge_index_.end()) {
    return *it->second;
  }
  Gauge& instrument = gauges_.emplace_back();
  gauge_index_.emplace(std::string(name), &instrument);
  return instrument;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  if (const auto it = histogram_index_.find(name);
      it != histogram_index_.end()) {
    return *it->second;
  }
  Histogram& instrument = histograms_.emplace_back();
  histogram_index_.emplace(std::string(name), &instrument);
  return instrument;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<MetricSample> samples;
  samples.reserve(counter_index_.size() + gauge_index_.size() +
                  histogram_index_.size());
  for (const auto& [name, instrument] : counter_index_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kCounter;
    s.value = instrument->value();
    samples.push_back(std::move(s));
  }
  for (const auto& [name, instrument] : gauge_index_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kGauge;
    s.gauge = instrument->value();
    samples.push_back(std::move(s));
  }
  for (const auto& [name, instrument] : histogram_index_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kHistogram;
    s.histogram = instrument->snapshot();
    samples.push_back(std::move(s));
  }
  std::sort(samples.begin(), samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return samples;
}

}  // namespace mann::obs

#endif  // MANN_OBS
