// Serving bench: the mann::serve runtime over a mixed-task workload.
//
// Workload models come from the shared mann_bench_cache suite (the same
// trained models every other bench measures); pass --train-fallback to
// train small stand-in tasks inline when the cache is absent.
//
// Sweeps over the generator -> batcher -> scheduler -> device-pool
// stack, then the acceptance runs:
//   1. pool size at saturating load     (throughput must scale with N)
//   2. dynamic batch size at fixed load (batching efficiency vs latency)
//   3. arrival rate at fixed pool       (the latency/throughput curve)
//   4. scheduler policy at bursty load  (FIFO head-of-line vs EDF +
//      work-stealing on a fully sharded pool with mixed per-task SLOs:
//      EDF must match FIFO's accuracy bit-for-bit while meeting at least
//      as many deadlines at equal-or-better p99)
//   5. optional trace replay (--replay) (recorded schedule, identical
//      simulated reports across worker counts; v2 traces carry tenants)
//   6. sequential vs workers+cache      (wall-clock only; simulated
//      numbers must be bit-identical)
//   7. multi-tenant QoS at overload     (one adversarial quota-violating
//      tenant beside two conforming ones: plain EDF lets the flood
//      degrade the conforming tenants' SLOs; admission control + WFQ
//      must keep conforming hit-rates >= 99%, with the simulated
//      report — per-tenant outcomes included — invariant across worker
//      counts)
//   8. optional trace export (--trace)  (the acceptance workload re-run
//      with the mann::obs recorder attached; the simulated report must
//      be bit-identical to the untraced run — i.e. zero simulated
//      overhead — and the Chrome trace-event JSON lands at PATH for
//      Perfetto / scripts/trace_summary.py)
//   9. optional cluster sweep (--cluster-trace) (the mann::cluster
//      routing tier: a cluster-of-1 must be bit-identical to the bare
//      Server on the unscaled trace, then a 4-instance fleet serves the
//      --cluster-scale'd trace under each router policy — consistent-hash
//      task affinity vs power-of-two least-loaded vs tenant-aware spill —
//      and an autoscaled fleet must beat the fixed one on J/inference
//      through the diurnal trough)
//
// Expected shapes: stories/s grows with the pool until arrival-bound;
// accuracy is identical across pool sizes AND scheduler policies (same
// request set, same programs — ordering must not change predictions);
// p99 tracks queueing, not the datapath; EDF buys its deadline hit-rate
// from reordering and stealing, not from dropping work; admission + WFQ
// buy tenant isolation from shedding the misbehaving tenant, never the
// conforming ones; and the parallel runtime moves wall-clock while
// leaving every simulated number untouched.
//
// Flags:
//   --tasks K          suite tasks to serve (default 4, max = suite size;
//                      anything below the full suite logs the truncation)
//   --requests N       acceptance-run request count (default 4000)
//   --json PATH        write the machine-readable report (BENCH_serve.json)
//   --policies-json P  write the FIFO-vs-EDF comparison artifact
//   --scheduler S      acceptance-leg dispatch policy: edf (default)|fifo
//   --eviction E       model-eviction policy: lru (default)|lfu|cost
//   --replay PATH      also replay the recorded trace CSV (sweep 5)
//   --trace PATH       export a Chrome trace-event JSON of the acceptance
//                      workload (sweep 8; open in Perfetto or feed to
//                      scripts/trace_summary.py)
//   --parallel off     skip the workers+cache acceptance leg
//   --wall-gate off    keep the >=3x wall speedup informational (CI perf
//                      runs on shared machines; simulated identity still
//                      gates)
//   --cache-dir DIR    persist the service-cycle cache across runs: load
//                      DIR/cycle_cache.bin before the parallel leg, save
//                      it after (the suite and seeds are deterministic,
//                      so memoized results stay valid between processes
//                      — a warm cache makes the repeat run near-free).
//                      Only the parallel leg attaches it; the sequential
//                      leg stays uncached so wall_speedup keeps meaning
//                      "parallel+cache vs true sequential cost".
//   --no-affinity      disable affinity-aware speculation (restores the
//                      legacy global-residency warm/cold predictor)
//   --cluster-trace P  run the cluster sweep (sweep 9) over the trace CSV
//   --cluster-scale F  amplify the cluster trace F-fold via
//                      serve::scale_trace before the fleet legs
//                      (default 10; the identity leg always replays 1x)
//   --fleet-threads N  host threads advancing cluster instances between
//                      routing barriers (default 4; 0/1 = sequential).
//                      With N >= 2 the sweep also times the p2c leg at 1
//                      thread vs N and gates bit-identical fleet reports;
//                      the fleet legs share a cycle cache sharded into
//                      2N segments so the threads don't serialize on one
//                      mutex. Purely host-side: every simulated number
//                      is fleet-thread invariant.
//   --train-fallback   train stand-in models when mann_bench_cache is absent
//   --train-suite      train (and cache) any missing real-suite models
//                      instead of exiting — slower first run, identical
//                      numbers (the suite is seeded); how CI repopulates
//                      mann_bench_cache/, which is generated, not tracked
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "accel/service_cycle_cache.hpp"

#include "common.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/trace.hpp"

namespace {

using namespace mann;

struct BenchOptions {
  std::size_t tasks = 4;
  std::size_t requests = 4000;
  std::string json_path;
  std::string policies_json_path;
  std::string replay_path;  ///< recorded arrival schedule (CSV, sweep 5)
  std::string trace_path;   ///< Chrome trace-event export (JSON, sweep 8)
  std::string cache_dir;    ///< cross-run persistent cycle cache (sweep 6)
  std::string cluster_trace_path;  ///< cluster-sweep arrival CSV (sweep 9)
  std::size_t cluster_scale = 10;  ///< trace amplification for the fleet legs
  std::size_t fleet_threads = 4;   ///< cluster host threads (0/1 = sequential)
  serve::SchedulerPolicy policy = serve::SchedulerPolicy::kEdf;
  serve::EvictionPolicyKind eviction = serve::EvictionPolicyKind::kLru;
  bool parallel = true;
  bool wall_gate = true;
  bool affinity = true;
  bool train_fallback = false;
  bool train_suite = false;  ///< repopulate mann_bench_cache with real models
};

/// What the persistent cycle cache did this run (for the host JSON).
struct PersistentCacheInfo {
  bool enabled = false;
  std::size_t loaded = 0;  ///< entries restored from --cache-dir
  std::size_t saved = 0;   ///< entries written back
};

BenchOptions parse_args(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    const auto positive = [&](const char* value) {
      char* end = nullptr;
      const long long parsed = std::strtoll(value, &end, 10);
      if (end == value || *end != '\0' || parsed <= 0) {
        std::fprintf(stderr, "%s needs a positive integer, got '%s'\n",
                     arg.c_str(), value);
        std::exit(2);
      }
      return static_cast<std::size_t>(parsed);
    };
    const auto nonnegative = [&](const char* value) {
      char* end = nullptr;
      const long long parsed = std::strtoll(value, &end, 10);
      if (end == value || *end != '\0' || parsed < 0) {
        std::fprintf(stderr, "%s needs a non-negative integer, got '%s'\n",
                     arg.c_str(), value);
        std::exit(2);
      }
      return static_cast<std::size_t>(parsed);
    };
    if (arg == "--tasks") {
      opts.tasks = positive(next());
    } else if (arg == "--requests") {
      opts.requests = positive(next());
    } else if (arg == "--json") {
      opts.json_path = next();
    } else if (arg == "--policies-json") {
      opts.policies_json_path = next();
    } else if (arg == "--replay") {
      opts.replay_path = next();
    } else if (arg == "--trace") {
      opts.trace_path = next();
    } else if (arg == "--scheduler") {
      const std::string value = next();
      if (value == "fifo") {
        opts.policy = serve::SchedulerPolicy::kFifo;
      } else if (value == "edf") {
        opts.policy = serve::SchedulerPolicy::kEdf;
      } else {
        std::fprintf(stderr, "--scheduler must be fifo or edf, got '%s'\n",
                     value.c_str());
        std::exit(2);
      }
    } else if (arg == "--eviction") {
      const std::string value = next();
      if (value == "lru") {
        opts.eviction = serve::EvictionPolicyKind::kLru;
      } else if (value == "lfu") {
        opts.eviction = serve::EvictionPolicyKind::kLfu;
      } else if (value == "cost") {
        opts.eviction = serve::EvictionPolicyKind::kCostAware;
      } else {
        std::fprintf(stderr,
                     "--eviction must be lru, lfu or cost, got '%s'\n",
                     value.c_str());
        std::exit(2);
      }
    } else if (arg == "--parallel") {
      opts.parallel = std::strcmp(next(), "off") != 0;
    } else if (arg == "--wall-gate") {
      opts.wall_gate = std::strcmp(next(), "off") != 0;
    } else if (arg == "--cache-dir") {
      opts.cache_dir = next();
    } else if (arg == "--cluster-trace") {
      opts.cluster_trace_path = next();
    } else if (arg == "--cluster-scale") {
      opts.cluster_scale = positive(next());
    } else if (arg == "--fleet-threads") {
      opts.fleet_threads = nonnegative(next());
    } else if (arg == "--no-affinity") {
      opts.affinity = false;
    } else if (arg == "--train-fallback") {
      opts.train_fallback = true;
    } else if (arg == "--train-suite") {
      opts.train_suite = true;
    } else {
      std::fprintf(stderr,
                   "usage: serve_throughput [--tasks K] [--requests N] "
                   "[--json PATH] [--policies-json PATH] [--scheduler "
                   "fifo|edf] [--eviction lru|lfu|cost] [--replay PATH] "
                   "[--trace PATH] [--parallel off] [--wall-gate off] "
                   "[--cache-dir DIR] [--cluster-trace PATH] "
                   "[--cluster-scale F] [--fleet-threads N] "
                   "[--no-affinity] [--train-fallback] [--train-suite]\n");
      std::exit(2);
    }
  }
  // The suite has a fixed size; serving "task 25" would silently wrap or
  // crash later, so reject it here with the actual bound.
  const std::size_t suite_size = data::all_tasks().size();
  if (opts.tasks > suite_size) {
    std::fprintf(stderr,
                 "--tasks %zu exceeds the %zu-task suite; pass 1..%zu\n",
                 opts.tasks, suite_size, suite_size);
    std::exit(2);
  }
  return opts;
}

/// Loads the serving workload from the shared suite cache; falls back to
/// quickstart-size inline training only when allowed.
std::vector<runtime::TaskArtifacts> prepare_serving_tasks(
    const BenchOptions& opts, std::string& suite_source) {
  const std::size_t suite_size = data::all_tasks().size();
  if (opts.tasks < suite_size) {
    std::printf("# serving the first %zu of %zu suite tasks (--tasks %zu "
                "truncates the mix; pass --tasks %zu for the full suite)\n",
                opts.tasks, suite_size, opts.tasks, suite_size);
  }
  const runtime::PrepareConfig suite_cfg = bench::suite_config();
  if (runtime::suite_cache_complete(suite_cfg, "mann_bench_cache",
                                    opts.tasks)) {
    std::printf("# loading %zu tasks from the shared mann_bench_cache "
                "suite ...\n",
                opts.tasks);
    std::fflush(stdout);
    suite_source = "cache";
    return runtime::prepare_suite_cached(suite_cfg, "mann_bench_cache",
                                         opts.tasks);
  }
  if (opts.train_suite) {
    std::printf("# mann_bench_cache incomplete; training the real suite "
                "(%zu tasks) and caching it ...\n",
                opts.tasks);
    std::fflush(stdout);
    suite_source = "train-suite";
    return runtime::prepare_suite_cached(suite_cfg, "mann_bench_cache",
                                         opts.tasks);
  }
  if (!opts.train_fallback) {
    std::fprintf(stderr,
                 "mann_bench_cache/ is missing models for this "
                 "configuration; re-run with --train-suite to train and "
                 "cache the real suite, or --train-fallback to train "
                 "quick stand-in tasks inline\n");
    std::exit(2);
  }
  suite_source = "train-fallback";
  runtime::PrepareConfig prep = runtime::default_prepare_config();
  prep.dataset.train_stories = 600;
  prep.dataset.test_stories = 150;
  prep.train.epochs = 20;
  const std::vector<data::TaskId>& all = data::all_tasks();
  std::vector<runtime::TaskArtifacts> tasks;
  for (std::size_t t = 0; t < opts.tasks && t < all.size(); ++t) {
    std::printf("# training fallback %s ...\n",
                data::task_name(all[t]).c_str());
    std::fflush(stdout);
    tasks.push_back(runtime::prepare_task(all[t], prep));
  }
  return tasks;
}

/// Mixed per-task SLOs: even tasks are "interactive" (tight deadline),
/// odd tasks are "batch" (lax). This split is what gives EDF something
/// FIFO cannot express — urgency that differs from arrival order.
std::vector<sim::Cycle> mixed_slos(std::size_t tasks) {
  std::vector<sim::Cycle> slo(tasks, 0);
  for (std::size_t t = 0; t < tasks; ++t) {
    slo[t] = t % 2 == 0 ? 300'000 : 3'000'000;  // 3 ms vs 30 ms at 100 MHz
  }
  return slo;
}

void print_serving_header() {
  std::printf("%-30s %10s %9s %9s %9s %6s %7s %6s %6s %7s %9s %9s\n",
              "config", "stories/s", "p50 ms", "p95 ms", "p99 ms", "hit%",
              "evict", "steal", "acc", "uploads", "mJ/inf", "wall s");
  mann::bench::print_rule(128);
}

void print_serving_row(const runtime::ServingMeasurement& m) {
  const serve::ServingReport& r = m.report;
  std::printf(
      "%-30s %10.0f %9.3f %9.3f %9.3f %5.1f%% %7llu %6llu %6.3f %7llu "
      "%9.4f %9.3f\n",
      m.config_name.c_str(), r.throughput_stories_per_second,
      r.latency.p50_seconds * 1e3, r.latency.p95_seconds * 1e3,
      r.latency.p99_seconds * 1e3, r.deadline_hit_rate * 100.0,
      static_cast<unsigned long long>(r.model_evictions),
      static_cast<unsigned long long>(r.stolen_batches), r.accuracy,
      static_cast<unsigned long long>(r.model_uploads),
      r.energy.per_inference_joules * 1e3, r.host_wall_seconds);
}

// Simulated numbers must not move when host execution changes — the
// byte-stable comparison now lives in serve::simulated_reports_identical
// (it covers the per-tenant view too), shared with mann::cluster's
// cluster-of-1 identity gate.
using serve::simulated_reports_identical;

/// Kept as a narrower alias where only the tenant view is under test.
bool tenant_reports_identical(const serve::ServingReport& a,
                              const serve::ServingReport& b) {
  return a.tenants == b.tenants;
}

/// The three-tenant QoS mix: two conforming tenants (interactive tier 0,
/// batch tier 1) and one adversarial tenant that offers ~2/3 of the
/// traffic while its quota entitles it to a small fraction of that.
std::vector<serve::TenantConfig> qos_tenants() {
  std::vector<serve::TenantConfig> tenants(3);
  tenants[0].tier = 0;
  tenants[0].weight = 4.0;
  tenants[0].traffic_share = 1.0;
  tenants[1].tier = 1;
  tenants[1].weight = 2.0;
  tenants[1].traffic_share = 1.0;
  tenants[2].tier = 2;
  tenants[2].weight = 1.0;
  tenants[2].traffic_share = 4.0;  // the flood
  tenants[2].quota_interarrival_cycles = 8'000.0;  // entitled to ~1/5th
  tenants[2].quota_burst = 16.0;
  return tenants;
}

/// Outcome of the optional sweep-9 cluster sweep (--cluster-trace PATH).
struct ClusterSweep {
  bool ran = false;
  /// Cluster-of-1 bit-identical to a bare Server on the unscaled trace.
  bool single_equivalent = true;
  std::size_t instances = 4;
  std::size_t scale = 1;
  std::size_t requests = 0;  ///< scaled-trace arrivals per fleet leg
  /// The routing trade, both directions reported: power-of-two wins on
  /// queueing, consistent-hash affinity wins on residency warmth. At
  /// least one must hold.
  bool p2c_wins_queue_wait = false;
  bool affinity_wins_warm_dispatch = false;
  runtime::ClusterMeasurement affinity;
  runtime::ClusterMeasurement p2c;
  runtime::ClusterMeasurement spill;
  runtime::ClusterMeasurement autoscaled;
  /// Host-parallelism comparison: the p2c leg re-run at 1 fleet thread
  /// vs `fleet_threads`, reports gated bit-identical. Only the walls and
  /// the identity verdict live here — everything simulated is above.
  std::size_t fleet_threads = 0;   ///< 0/1 = comparison skipped
  std::size_t cache_segments = 0;  ///< shared-cache shards in the fleet legs
  std::size_t host_cores = 0;      ///< std::thread::hardware_concurrency()
  double wall_seconds_1thread = 0.0;
  double wall_seconds_fleet = 0.0;
  double wall_ratio = 0.0;  ///< 1-thread wall / fleet wall (>1 = fleet wins)
  bool fleet_reports_identical = true;
};

void print_cluster_header() {
  std::printf("%-34s %10s %9s %9s %6s %6s %6s %6s %9s %6s %9s\n",
              "config", "stories/s", "p99 ms", "qw99 ms", "hit%", "shed",
              "fair", "warm%", "mJ/inf", "act", "wall s");
  mann::bench::print_rule(122);
}

void print_cluster_row(const runtime::ClusterMeasurement& m) {
  const cluster::ClusterReport& r = m.report;
  std::printf(
      "%-34s %10.0f %9.3f %9.3f %5.1f%% %6llu %6.3f %5.1f%% %9.4f %6.2f "
      "%9.3f\n",
      m.config_name.c_str(), r.throughput_stories_per_second,
      r.latency.p99_seconds * 1e3, r.queue_wait.p99_seconds * 1e3,
      r.deadline_hit_rate * 100.0,
      static_cast<unsigned long long>(r.router_shed), r.instance_fairness,
      r.warm_dispatch_rate * 100.0, r.energy.per_inference_joules * 1e3,
      r.mean_active_instances, m.host_wall_seconds);
}

/// One fleet leg of the cluster JSON block (all simulated quantities).
void write_cluster_leg(std::FILE* f, const char* key,
                       const cluster::ClusterReport& r,
                       bool trailing_comma) {
  std::fprintf(f, "    \"%s\": {\n", key);
  std::fprintf(f, "      \"completed\": %llu,\n",
               static_cast<unsigned long long>(r.completed));
  std::fprintf(f, "      \"rejected\": %llu,\n",
               static_cast<unsigned long long>(r.rejected));
  std::fprintf(f, "      \"router_shed\": %llu,\n",
               static_cast<unsigned long long>(r.router_shed));
  std::fprintf(f, "      \"makespan_cycles\": %llu,\n",
               static_cast<unsigned long long>(r.makespan_cycles));
  std::fprintf(f, "      \"p99_ms\": %.6f,\n", r.latency.p99_seconds * 1e3);
  std::fprintf(f, "      \"queue_wait_p99_ms\": %.6f,\n",
               r.queue_wait.p99_seconds * 1e3);
  std::fprintf(f, "      \"deadline_hit_rate\": %.6f,\n",
               r.deadline_hit_rate);
  std::fprintf(f, "      \"instance_fairness\": %.6f,\n",
               r.instance_fairness);
  std::fprintf(f, "      \"warm_dispatch_rate\": %.6f,\n",
               r.warm_dispatch_rate);
  std::fprintf(f, "      \"model_uploads\": %llu,\n",
               static_cast<unsigned long long>(r.model_uploads));
  std::fprintf(f, "      \"energy_total_joules\": %.9f,\n",
               r.energy.total_joules);
  std::fprintf(f, "      \"energy_per_inference_joules\": %.9f,\n",
               r.energy.per_inference_joules);
  std::fprintf(f, "      \"mean_active_instances\": %.6f,\n",
               r.mean_active_instances);
  std::fprintf(f, "      \"scale_ups\": %zu,\n", r.scale_ups);
  std::fprintf(f, "      \"scale_downs\": %zu\n", r.scale_downs);
  std::fprintf(f, "    }%s\n", trailing_comma ? "," : "");
}

/// Outcome of the optional sweep-8 trace export (--trace PATH).
struct TraceExport {
  bool ran = false;        ///< the leg executed (path given)
  bool identical = true;   ///< traced simulated report == untraced one
  bool wrote = true;       ///< the JSON landed on disk
  std::size_t events = 0;  ///< recorded trace events (0 when MANN_OBS=OFF)
  double wall_seconds = 0.0;
  double overhead = 1.0;   ///< traced wall / untraced wall (informational)
};

/// Worst conforming (non-adversarial, tiers 0-1) deadline hit-rate.
double conforming_hit_rate(const serve::ServingReport& report) {
  double worst = 1.0;
  for (const serve::TenantReport& tenant : report.tenants) {
    if (tenant.tenant <= 1) {
      worst = std::min(worst, tenant.hit_rate());
    }
  }
  return worst;
}

void print_tenant_rows(const serve::ServingReport& report) {
  for (const serve::TenantReport& t : report.tenants) {
    std::printf("    tenant %u (tier %u, w=%.0f): admitted %llu, "
                "completed %llu, hit %.2f%%, shed full/quota/doom/over = "
                "%llu/%llu/%llu/%llu\n",
                t.tenant, t.tier, t.weight,
                static_cast<unsigned long long>(t.admitted),
                static_cast<unsigned long long>(t.completed),
                t.hit_rate() * 100.0,
                static_cast<unsigned long long>(
                    t.shed.count(serve::ShedReason::kQueueFull)),
                static_cast<unsigned long long>(
                    t.shed.count(serve::ShedReason::kQuota)),
                static_cast<unsigned long long>(
                    t.shed.count(serve::ShedReason::kDoomed)),
                static_cast<unsigned long long>(
                    t.shed.count(serve::ShedReason::kOverload)));
  }
}

void write_policy_json(std::FILE* f, const char* key,
                       const serve::ServingReport& r, bool trailing_comma) {
  std::fprintf(f, "  \"%s\": {\n", key);
  std::fprintf(f, "    \"throughput_stories_per_second\": %.6f,\n",
               r.throughput_stories_per_second);
  std::fprintf(f, "    \"p50_ms\": %.6f,\n", r.latency.p50_seconds * 1e3);
  std::fprintf(f, "    \"p95_ms\": %.6f,\n", r.latency.p95_seconds * 1e3);
  std::fprintf(f, "    \"p99_ms\": %.6f,\n", r.latency.p99_seconds * 1e3);
  std::fprintf(f, "    \"accuracy\": %.6f,\n", r.accuracy);
  std::fprintf(f, "    \"deadline_hit_rate\": %.6f,\n", r.deadline_hit_rate);
  std::fprintf(f, "    \"deadline_missed\": %llu,\n",
               static_cast<unsigned long long>(r.deadline_missed));
  std::fprintf(f, "    \"model_uploads\": %llu,\n",
               static_cast<unsigned long long>(r.model_uploads));
  std::fprintf(f, "    \"model_evictions\": %llu,\n",
               static_cast<unsigned long long>(r.model_evictions));
  std::fprintf(f, "    \"stolen_batches\": %llu,\n",
               static_cast<unsigned long long>(r.stolen_batches));
  std::fprintf(f, "    \"energy_per_inference_joules\": %.9f\n",
               r.energy.per_inference_joules);
  std::fprintf(f, "  }%s\n", trailing_comma ? "," : "");
}

/// FIFO-vs-EDF comparison artifact (uploaded by the CI perf job so a
/// policy regression is diagnosable straight from the Actions tab).
void write_policies_json(const BenchOptions& opts,
                         const runtime::ServingOptions& workload,
                         const serve::ServingReport& fifo,
                         const serve::ServingReport& edf,
                         bool edf_worker_identical) {
  std::FILE* f = std::fopen(opts.policies_json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n",
                 opts.policies_json_path.c_str());
    std::exit(2);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"serve_policy_compare\",\n");
  std::fprintf(f, "  \"schema\": 1,\n");
  std::fprintf(f, "  \"tasks\": %zu,\n", opts.tasks);
  std::fprintf(f, "  \"requests\": %zu,\n", workload.requests);
  std::fprintf(f, "  \"devices\": %zu,\n", workload.pool_devices);
  std::fprintf(f, "  \"process\": \"bursty\",\n");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(workload.seed));
  std::fprintf(f, "  \"edf_identical_across_workers\": %s,\n",
               edf_worker_identical ? "true" : "false");
  write_policy_json(f, "fifo", fifo, /*trailing_comma=*/true);
  write_policy_json(f, "edf", edf, /*trailing_comma=*/false);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("# wrote %s\n", opts.policies_json_path.c_str());
}

void write_json(const BenchOptions& opts, const std::string& suite_source,
                const runtime::ServingOptions& accept,
                const serve::ServingReport& sequential,
                const serve::ServingReport& parallel, double speedup,
                bool identical, const serve::ServingReport& qos_edf,
                const serve::ServingReport& qos_wfq,
                bool qos_worker_identical, const TraceExport& trace,
                const PersistentCacheInfo& persist,
                const ClusterSweep& cluster_sweep) {
  std::FILE* f = std::fopen(opts.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", opts.json_path.c_str());
    std::exit(2);
  }
  // The `simulated` block is deterministic given the seed, so CI can
  // gate on it; the `host` block is machine-dependent and informative.
  const serve::ServingReport& r = opts.parallel ? parallel : sequential;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"serve_throughput\",\n");
  std::fprintf(f, "  \"schema\": 6,\n");
  std::fprintf(f, "  \"affinity\": %s,\n", opts.affinity ? "true" : "false");
  std::fprintf(f, "  \"suite_source\": \"%s\",\n", suite_source.c_str());
  std::fprintf(f, "  \"tasks\": %zu,\n", opts.tasks);
  std::fprintf(f, "  \"requests\": %zu,\n", opts.requests);
  std::fprintf(f, "  \"devices\": %zu,\n", accept.pool_devices);
  std::fprintf(f, "  \"max_batch\": %zu,\n", accept.max_batch);
  std::fprintf(f, "  \"scheduler_policy\": \"%s\",\n",
               serve::scheduler_policy_name(accept.policy));
  std::fprintf(f, "  \"eviction_policy\": \"%s\",\n",
               serve::eviction_policy_name(accept.eviction));
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(accept.seed));
  std::fprintf(f, "  \"simulated\": {\n");
  std::fprintf(f, "    \"throughput_stories_per_second\": %.6f,\n",
               r.throughput_stories_per_second);
  std::fprintf(f, "    \"offered_stories_per_second\": %.6f,\n",
               r.offered_stories_per_second);
  std::fprintf(f, "    \"p50_ms\": %.6f,\n", r.latency.p50_seconds * 1e3);
  std::fprintf(f, "    \"p95_ms\": %.6f,\n", r.latency.p95_seconds * 1e3);
  std::fprintf(f, "    \"p99_ms\": %.6f,\n", r.latency.p99_seconds * 1e3);
  std::fprintf(f, "    \"accuracy\": %.6f,\n", r.accuracy);
  std::fprintf(f, "    \"mean_batch_size\": %.6f,\n", r.mean_batch_size);
  std::fprintf(f, "    \"deadline_hit_rate\": %.6f,\n", r.deadline_hit_rate);
  std::fprintf(f, "    \"deadline_missed\": %llu,\n",
               static_cast<unsigned long long>(r.deadline_missed));
  std::fprintf(f, "    \"model_uploads\": %llu,\n",
               static_cast<unsigned long long>(r.model_uploads));
  std::fprintf(f, "    \"model_evictions\": %llu,\n",
               static_cast<unsigned long long>(r.model_evictions));
  std::fprintf(f, "    \"stolen_batches\": %llu,\n",
               static_cast<unsigned long long>(r.stolen_batches));
  std::fprintf(f, "    \"energy_total_joules\": %.9f,\n",
               r.energy.total_joules);
  std::fprintf(f, "    \"mean_power_watts\": %.6f,\n", r.energy.mean_watts);
  std::fprintf(f, "    \"energy_per_inference_joules\": %.9f\n",
               r.energy.per_inference_joules);
  std::fprintf(f, "  },\n");
  // The multi-tenant QoS acceptance (sweep 7): deterministic simulated
  // numbers, so CI gates conforming-tenant hit-rate and fairness on
  // them beside throughput/energy.
  std::fprintf(f, "  \"multitenant\": {\n");
  std::fprintf(f, "    \"conforming_hit_rate_edf\": %.6f,\n",
               conforming_hit_rate(qos_edf));
  std::fprintf(f, "    \"conforming_hit_rate\": %.6f,\n",
               conforming_hit_rate(qos_wfq));
  std::fprintf(f, "    \"fairness_index\": %.6f,\n",
               qos_wfq.fairness_index);
  std::fprintf(f, "    \"rejected\": %llu,\n",
               static_cast<unsigned long long>(qos_wfq.rejected));
  std::fprintf(f, "    \"shed_queue_full\": %llu,\n",
               static_cast<unsigned long long>(
                   qos_wfq.shed.count(serve::ShedReason::kQueueFull)));
  std::fprintf(f, "    \"shed_quota\": %llu,\n",
               static_cast<unsigned long long>(
                   qos_wfq.shed.count(serve::ShedReason::kQuota)));
  std::fprintf(f, "    \"shed_doomed\": %llu,\n",
               static_cast<unsigned long long>(
                   qos_wfq.shed.count(serve::ShedReason::kDoomed)));
  std::fprintf(f, "    \"shed_overload\": %llu,\n",
               static_cast<unsigned long long>(
                   qos_wfq.shed.count(serve::ShedReason::kOverload)));
  std::fprintf(f, "    \"worker_identical\": %s\n",
               qos_worker_identical ? "true" : "false");
  std::fprintf(f, "  },\n");
  if (cluster_sweep.ran) {
    // The cluster sweep (sweep 9): everything here except the per-leg
    // wall clocks is simulated, so CI gates the routing trade and the
    // autoscaler's energy win directly on these numbers.
    std::fprintf(f, "  \"cluster\": {\n");
    std::fprintf(f, "    \"instances\": %zu,\n", cluster_sweep.instances);
    std::fprintf(f, "    \"scale\": %zu,\n", cluster_sweep.scale);
    std::fprintf(f, "    \"requests\": %zu,\n", cluster_sweep.requests);
    std::fprintf(f, "    \"single_equivalent\": %s,\n",
                 cluster_sweep.single_equivalent ? "true" : "false");
    std::fprintf(f, "    \"p2c_wins_queue_wait\": %s,\n",
                 cluster_sweep.p2c_wins_queue_wait ? "true" : "false");
    std::fprintf(f, "    \"affinity_wins_warm_dispatch\": %s,\n",
                 cluster_sweep.affinity_wins_warm_dispatch ? "true"
                                                           : "false");
    write_cluster_leg(f, "task_affinity", cluster_sweep.affinity.report,
                      /*trailing_comma=*/true);
    write_cluster_leg(f, "power_of_two", cluster_sweep.p2c.report,
                      /*trailing_comma=*/true);
    write_cluster_leg(f, "tenant_spill", cluster_sweep.spill.report,
                      /*trailing_comma=*/true);
    write_cluster_leg(f, "autoscaled", cluster_sweep.autoscaled.report,
                      /*trailing_comma=*/true);
    // Host-side fleet parallelism: the p2c leg at 1 fleet thread vs N.
    // `simulated_reports_identical` is the determinism contract (gated);
    // the walls and ratio are machine-dependent, so the gate script only
    // checks the ratio when host_cores allows a win.
    std::fprintf(f, "    \"host\": {\n");
    std::fprintf(f, "      \"fleet_threads\": %zu,\n",
                 cluster_sweep.fleet_threads);
    std::fprintf(f, "      \"cache_segments\": %zu,\n",
                 cluster_sweep.cache_segments);
    std::fprintf(f, "      \"host_cores\": %zu,\n", cluster_sweep.host_cores);
    std::fprintf(f, "      \"wall_seconds_1thread\": %.6f,\n",
                 cluster_sweep.wall_seconds_1thread);
    std::fprintf(f, "      \"wall_seconds_fleet\": %.6f,\n",
                 cluster_sweep.wall_seconds_fleet);
    std::fprintf(f, "      \"wall_ratio\": %.3f,\n",
                 cluster_sweep.wall_ratio);
    std::fprintf(f, "      \"simulated_reports_identical\": %s\n",
                 cluster_sweep.fleet_reports_identical ? "true" : "false");
    std::fprintf(f, "    }\n");
    std::fprintf(f, "  },\n");
  }
  std::fprintf(f, "  \"host\": {\n");
  std::fprintf(f, "    \"sequential_wall_seconds\": %.6f%s\n",
               sequential.host_wall_seconds,
               opts.parallel || trace.ran ? "," : "");
  if (opts.parallel) {
    // Only claim parallel-leg facts when the leg actually ran.
    std::fprintf(f, "    \"parallel_wall_seconds\": %.6f,\n",
                 parallel.host_wall_seconds);
    std::fprintf(f, "    \"wall_speedup\": %.3f,\n", speedup);
    if (!persist.enabled || persist.loaded == 0) {
      // Cold-pass provenance: the speedup earned without a warm
      // persistent cache. Soft-reported by the gate script so warm-run
      // ratchets don't hide cold-path regressions.
      std::fprintf(f, "    \"cold_wall_speedup\": %.3f,\n", speedup);
    }
    std::fprintf(f, "    \"workers\": %zu,\n", parallel.workers);
    std::fprintf(f, "    \"reports_identical\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(f, "    \"cache\": {\n");
    std::fprintf(f, "      \"hits\": %llu,\n",
                 static_cast<unsigned long long>(parallel.cycle_cache.hits));
    std::fprintf(f, "      \"misses\": %llu,\n",
                 static_cast<unsigned long long>(
                     parallel.cycle_cache.misses));
    std::fprintf(f, "      \"waits\": %llu,\n",
                 static_cast<unsigned long long>(parallel.cycle_cache.waits));
    std::fprintf(f, "      \"evictions\": %llu,\n",
                 static_cast<unsigned long long>(
                     parallel.cycle_cache.evictions));
    std::fprintf(f, "      \"hit_rate\": %.6f\n",
                 parallel.cycle_cache.hit_rate());
    std::fprintf(f, "    },\n");
    // Worker prefetch scoring — deterministic (simulated-state inputs),
    // so the gate script can reason about it like any simulated number.
    std::fprintf(f, "    \"speculation\": {\n");
    std::fprintf(f, "      \"speculated\": %llu,\n",
                 static_cast<unsigned long long>(
                     parallel.speculation.speculated));
    std::fprintf(f, "      \"useful\": %llu,\n",
                 static_cast<unsigned long long>(
                     parallel.speculation.useful));
    std::fprintf(f, "      \"wasted\": %llu\n",
                 static_cast<unsigned long long>(
                     parallel.speculation.wasted));
    std::fprintf(f, "    },\n");
    // What the --cache-dir cross-run cache did (host-side provenance:
    // loaded > 0 distinguishes a warm run from a cold one in CI logs).
    std::fprintf(f, "    \"persistent_cache\": {\n");
    std::fprintf(f, "      \"enabled\": %s,\n",
                 persist.enabled ? "true" : "false");
    std::fprintf(f, "      \"loaded\": %zu,\n", persist.loaded);
    std::fprintf(f, "      \"saved\": %zu\n", persist.saved);
    std::fprintf(f, "    }%s\n", trace.ran ? "," : "");
  }
  if (trace.ran) {
    // Informational, machine-dependent: the wall cost of recording the
    // mann::obs trace (simulated identity is gated in the bench itself).
    std::fprintf(f, "    \"trace\": {\n");
    std::fprintf(f, "      \"events\": %zu,\n", trace.events);
    std::fprintf(f, "      \"wall_seconds\": %.6f,\n", trace.wall_seconds);
    std::fprintf(f, "      \"overhead\": %.3f,\n", trace.overhead);
    std::fprintf(f, "      \"identical\": %s\n",
                 trace.identical ? "true" : "false");
    std::fprintf(f, "    }\n");
  }
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("# wrote %s\n", opts.json_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_args(argc, argv);
  std::string suite_source;
  const auto tasks = prepare_serving_tasks(opts, suite_source);

  runtime::ServingOptions base;
  base.clock_hz = 100.0e6;
  base.requests = 400;
  base.max_batch = 8;
  base.max_wait_cycles = 200'000;
  base.seed = 2019;
  base.eviction = opts.eviction;
  base.affinity_speculation = opts.affinity;
  if (!opts.affinity) {
    std::printf("# affinity-aware speculation disabled (--no-affinity): "
                "legacy global-residency predictor\n");
  }

  bench::print_header(
      "Serving sweep 1: device-pool size at saturating load "
      "(400 requests, B=8, interarrival 500 cycles)");
  print_serving_header();
  runtime::ServingOptions sweep1 = base;
  sweep1.mean_interarrival_cycles = 500.0;
  std::vector<runtime::ServingMeasurement> pool_rows;
  for (const std::size_t devices : {1U, 2U, 4U, 8U}) {
    sweep1.pool_devices = devices;
    pool_rows.push_back(runtime::measure_serving(tasks, sweep1));
    print_serving_row(pool_rows.back());
  }

  bench::print_header(
      "Serving sweep 2: dynamic batch size (N=2, interarrival 10k cycles)");
  print_serving_header();
  runtime::ServingOptions sweep2 = base;
  sweep2.pool_devices = 2;
  sweep2.mean_interarrival_cycles = 10'000.0;
  for (const std::size_t max_batch : {1U, 4U, 8U, 16U}) {
    sweep2.max_batch = max_batch;
    print_serving_row(runtime::measure_serving(tasks, sweep2));
  }

  bench::print_header(
      "Serving sweep 3: arrival rate (N=2, B=8, Poisson vs bursty vs "
      "diurnal)");
  print_serving_header();
  runtime::ServingOptions sweep3 = base;
  sweep3.pool_devices = 2;
  for (const double interarrival : {2'000.0, 10'000.0, 50'000.0}) {
    sweep3.mean_interarrival_cycles = interarrival;
    sweep3.process = serve::ArrivalProcess::kPoisson;
    print_serving_row(runtime::measure_serving(tasks, sweep3));
    sweep3.process = serve::ArrivalProcess::kBursty;
    print_serving_row(runtime::measure_serving(tasks, sweep3));
  }
  sweep3.mean_interarrival_cycles = 10'000.0;
  sweep3.process = serve::ArrivalProcess::kDiurnal;
  sweep3.diurnal_amplitude = 0.6;
  sweep3.diurnal_period_cycles = 2.0e6;
  print_serving_row(runtime::measure_serving(tasks, sweep3));

  // Simulated-scaling acceptance: invariants against the N=1 baseline.
  const serve::ServingReport& one = pool_rows.front().report;
  const serve::ServingReport& four = pool_rows[2].report;
  const double sim_speedup = four.throughput_stories_per_second /
                             one.throughput_stories_per_second;
  std::printf(
      "\nN=1 -> N=4: %.2fx stories/s; accuracy %.3f -> %.3f (must be "
      "equal); p99 %.3f ms -> %.3f ms (must not grow)\n",
      sim_speedup, one.accuracy, four.accuracy,
      one.latency.p99_seconds * 1e3, four.latency.p99_seconds * 1e3);
  const bool scaling_ok = sim_speedup > 1.5 &&
                          one.accuracy == four.accuracy &&
                          four.latency.p99_cycles <= one.latency.p99_cycles;
  std::printf("scaling check: %s\n", scaling_ok ? "PASS" : "FAIL");

  // Policy acceptance: FIFO head-of-line vs EDF + work-stealing on a
  // fully sharded pool under bursty load with mixed per-task SLOs. The
  // sharded pool is the hard case for FIFO (one overloaded shard blocks
  // the global head while other slots idle) and exactly where EDF's
  // stealing pays.
  bench::print_header(
      "Serving sweep 4: scheduler policy — FIFO head-of-line vs EDF + "
      "work-stealing (N=4 dedicated, B=8, bursty, mixed 3/30 ms SLOs)");
  print_serving_header();
  runtime::ServingOptions policy_load = base;
  policy_load.pool_devices = 4;
  policy_load.dedicated_devices = 4;
  policy_load.process = serve::ArrivalProcess::kBursty;
  policy_load.mean_interarrival_cycles = 2'000.0;
  policy_load.requests = opts.requests;
  policy_load.slo_per_task = mixed_slos(tasks.size());

  policy_load.policy = serve::SchedulerPolicy::kFifo;
  const runtime::ServingMeasurement fifo =
      runtime::measure_serving(tasks, policy_load);
  print_serving_row(fifo);
  policy_load.policy = serve::SchedulerPolicy::kEdf;
  const runtime::ServingMeasurement edf =
      runtime::measure_serving(tasks, policy_load);
  print_serving_row(edf);
  // EDF's timeline must not depend on host workers either.
  policy_load.workers = 4;
  const runtime::ServingMeasurement edf_workers =
      runtime::measure_serving(tasks, policy_load);
  policy_load.workers = 0;
  const bool edf_worker_identical =
      simulated_reports_identical(edf.report, edf_workers.report);

  std::printf(
      "\nFIFO -> EDF: deadline hit %.1f%% -> %.1f%% (must not drop); p99 "
      "%.3f ms -> %.3f ms (must not grow); accuracy %.4f -> %.4f (must be "
      "equal); stolen batches %llu; EDF workers=4 simulated reports %s\n",
      fifo.report.deadline_hit_rate * 100.0,
      edf.report.deadline_hit_rate * 100.0,
      fifo.report.latency.p99_seconds * 1e3,
      edf.report.latency.p99_seconds * 1e3, fifo.report.accuracy,
      edf.report.accuracy,
      static_cast<unsigned long long>(edf.report.stolen_batches),
      edf_worker_identical ? "identical" : "DIVERGED");
  const bool policy_ok =
      edf.report.deadline_hit_rate >= fifo.report.deadline_hit_rate &&
      edf.report.latency.p99_cycles <= fifo.report.latency.p99_cycles &&
      edf.report.accuracy == fifo.report.accuracy &&
      edf.report.completed == fifo.report.completed &&
      edf_worker_identical;
  std::printf("policy check (hit-rate >=, p99 <=, accuracy ==, "
              "worker-identical): %s\n",
              policy_ok ? "PASS" : "FAIL");
  if (!opts.policies_json_path.empty()) {
    write_policies_json(opts, policy_load, fifo.report, edf.report,
                        edf_worker_identical);
  }

  // Optional trace replay: the recorded schedule served end-to-end, with
  // the simulated report invariant across worker counts.
  bool trace_ok = true;
  if (!opts.replay_path.empty()) {
    bench::print_header(
        "Serving sweep 5: trace replay (recorded arrival schedule)");
    print_serving_header();
    runtime::ServingOptions trace_load = base;
    trace_load.process = serve::ArrivalProcess::kTrace;
    try {
      trace_load.trace = serve::load_trace_csv(opts.replay_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    if (trace_load.trace.empty()) {
      // A header-only CSV parses fine but replays nothing: without this
      // guard it became a zero-request sweep that died dividing by the
      // empty trace length. Refuse it with a usable message instead.
      std::fprintf(stderr,
                   "--replay %s: trace has no entries (header-only or "
                   "empty file); nothing to replay\n",
                   opts.replay_path.c_str());
      return 2;
    }
    // Traces may name any suite task; a truncated --tasks run can only
    // replay the tasks it loaded. v2 traces also name tenants — cover
    // the recording with a default registry (QoS knobs are the
    // replayer's choice; the recording only fixes identity).
    serve::TenantId max_tenant = 0;
    for (serve::TraceEntry& entry : trace_load.trace) {
      entry.task %= tasks.size();
      max_tenant = std::max(max_tenant, entry.tenant);
    }
    if (max_tenant > 0) {
      trace_load.tenants.assign(max_tenant + 1, serve::TenantConfig{});
    }
    trace_load.pool_devices = 4;
    trace_load.dedicated_devices = 4;
    trace_load.requests = trace_load.trace.size();
    trace_load.slo_per_task = mixed_slos(tasks.size());
    const runtime::ServingMeasurement replay =
        runtime::measure_serving(tasks, trace_load);
    print_serving_row(replay);
    trace_load.workers = 4;
    const runtime::ServingMeasurement replay_workers =
        runtime::measure_serving(tasks, trace_load);
    print_serving_row(replay_workers);
    trace_ok = simulated_reports_identical(replay.report,
                                           replay_workers.report);
    std::printf("trace replay check (identical simulation across worker "
                "counts): %s\n",
                trace_ok ? "PASS" : "FAIL");
  }

  // Host-execution acceptance: the same saturating workload, once on the
  // sequential path and once with one worker per device slot plus a
  // fresh service-cycle cache. Only wall-clock may move.
  bench::print_header(
      "Serving sweep 6: host execution — sequential vs workers + "
      "service-cycle cache (N=4 dedicated, B=8, interarrival 500 cycles)");
  print_serving_header();
  runtime::ServingOptions accept = base;
  accept.pool_devices = 4;
  // Per-task sharding: stable residency keeps the device pool warm, so
  // repeated batch windows are cache hits instead of new cold variants.
  accept.dedicated_devices = 4;
  accept.mean_interarrival_cycles = 500.0;
  accept.requests = opts.requests;
  accept.policy = opts.policy;
  accept.slo_per_task = mixed_slos(tasks.size());

  accept.workers = 0;
  const runtime::ServingMeasurement sequential =
      runtime::measure_serving(tasks, accept);
  print_serving_row(sequential);

  // Cross-run persistence (--cache-dir): restore memoized results from a
  // previous process before the parallel leg, write them back after. The
  // cache only attaches to the parallel leg — the sequential run above
  // stays uncached so wall_speedup keeps comparing against the true
  // re-simulation cost.
  accel::ServiceCycleCache persistent_cache(4096);
  PersistentCacheInfo persist;
  std::string cache_file;
  if (!opts.cache_dir.empty()) {
    persist.enabled = true;
    std::error_code ec;
    std::filesystem::create_directories(opts.cache_dir, ec);
    cache_file = opts.cache_dir + "/cycle_cache.bin";
    persist.loaded = persistent_cache.load(cache_file);
    std::printf("# persistent cycle cache: loaded %zu entries from %s\n",
                persist.loaded, cache_file.c_str());
  }

  runtime::ServingMeasurement parallel = sequential;
  bool parallel_ok = true;
  double wall_speedup = 1.0;
  bool identical = true;
  if (opts.parallel) {
    accept.workers = 4;
    accept.cycle_cache = persist.enabled ? &persistent_cache : nullptr;
    parallel = runtime::measure_serving(tasks, accept);
    accept.cycle_cache = nullptr;  // sweep 8 owns its own fresh cache
    print_serving_row(parallel);
    identical = simulated_reports_identical(sequential.report,
                                            parallel.report);
    wall_speedup = parallel.report.host_wall_seconds > 0.0
                       ? sequential.report.host_wall_seconds /
                             parallel.report.host_wall_seconds
                       : 0.0;
    std::printf(
        "\nhost wall: %.3f s -> %.3f s (%.2fx); cache hit rate %.1f%% "
        "(%llu hits / %llu misses); simulated reports %s\n",
        sequential.report.host_wall_seconds,
        parallel.report.host_wall_seconds, wall_speedup,
        parallel.report.cycle_cache.hit_rate() * 100.0,
        static_cast<unsigned long long>(parallel.report.cycle_cache.hits),
        static_cast<unsigned long long>(parallel.report.cycle_cache.misses),
        identical ? "identical" : "DIVERGED");
    std::printf(
        "speculation: %llu speculated, %llu useful, %llu wasted "
        "(affinity %s)\n",
        static_cast<unsigned long long>(
            parallel.report.speculation.speculated),
        static_cast<unsigned long long>(parallel.report.speculation.useful),
        static_cast<unsigned long long>(parallel.report.speculation.wasted),
        opts.affinity ? "on" : "off");
    if (persist.enabled) {
      persist.saved = persistent_cache.save(cache_file);
      std::printf("# persistent cycle cache: saved %zu entries to %s\n",
                  persist.saved, cache_file.c_str());
    }
    // The simulated-identity contract holds at any size and always
    // gates. The >=3x wall gate needs a workload large enough for the
    // cache to warm (repeated batch windows) and a quiet machine, so
    // small smoke runs and CI perf (--wall-gate off, shared runners)
    // keep it informational.
    const bool check_speedup = opts.wall_gate && opts.requests >= 2000;
    parallel_ok = identical && (!check_speedup || wall_speedup >= 3.0);
    if (check_speedup) {
      std::printf("parallel check (>=3x wall, identical simulation): %s\n",
                  parallel_ok ? "PASS" : "FAIL");
    } else {
      std::printf("parallel check (identical simulation; >=3x wall gate "
                  "off for this run): %s\n",
                  parallel_ok ? "PASS" : "FAIL");
    }
  } else {
    std::printf("\n(parallel leg skipped: --parallel off)\n");
  }

  // Multi-tenant QoS acceptance: bursty overload with one adversarial
  // (quota-violating) tenant beside two conforming ones. Plain EDF has
  // no notion of who a request belongs to, so the flood degrades the
  // conforming tenants' SLOs; the admission controller (quota + doom +
  // tiered overload shedding) plus WFQ dispatch must hold the
  // conforming tenants' deadline hit-rate at >= 99% — and the whole
  // per-tenant outcome must be invariant across worker counts.
  bench::print_header(
      "Serving sweep 7: multi-tenant QoS — plain EDF vs admission + WFQ "
      "(N=4 dedicated, B=8, bursty overload, adversarial tenant 2)");
  print_serving_header();
  runtime::ServingOptions qos_load = base;
  qos_load.pool_devices = 4;
  qos_load.dedicated_devices = 4;
  qos_load.process = serve::ArrivalProcess::kBursty;
  qos_load.mean_interarrival_cycles = 1'200.0;
  qos_load.requests = opts.requests;
  qos_load.slo_per_task = mixed_slos(tasks.size());
  qos_load.tenants = qos_tenants();

  // Leg A: the PR-3 escape hatch — EDF dispatch, transparent admission.
  qos_load.policy = serve::SchedulerPolicy::kEdf;
  qos_load.admission = serve::AdmissionConfig{};
  qos_load.admission.enforce_quotas = false;
  const runtime::ServingMeasurement qos_edf =
      runtime::measure_serving(tasks, qos_load);
  print_serving_row(qos_edf);
  print_tenant_rows(qos_edf.report);

  // Leg B: the control plane on — quotas, doom shedding, tiered
  // overload shedding, WFQ dispatch (weights from the registry).
  qos_load.policy = serve::SchedulerPolicy::kWfq;
  qos_load.admission = serve::AdmissionConfig{};
  qos_load.admission.enforce_quotas = true;
  qos_load.admission.shed_doomed = true;
  qos_load.admission.overload_pending_requests = 1'024;
  qos_load.admission.overload_watermark = 0.70;
  const runtime::ServingMeasurement qos_wfq =
      runtime::measure_serving(tasks, qos_load);
  print_serving_row(qos_wfq);
  print_tenant_rows(qos_wfq.report);

  // Worker invariance covers the per-tenant view too: admission and WFQ
  // decisions are simulated state, so workers must not move them.
  qos_load.workers = 4;
  const runtime::ServingMeasurement qos_wfq_workers =
      runtime::measure_serving(tasks, qos_load);
  qos_load.workers = 0;
  const bool qos_worker_identical =
      simulated_reports_identical(qos_wfq.report, qos_wfq_workers.report) &&
      tenant_reports_identical(qos_wfq.report, qos_wfq_workers.report);

  const double conforming_edf = conforming_hit_rate(qos_edf.report);
  const double conforming_wfq = conforming_hit_rate(qos_wfq.report);
  std::printf(
      "\nplain EDF -> admission+WFQ: conforming-tenant hit %.1f%% -> "
      "%.1f%% (must reach >= 99%%); fairness %.3f -> %.3f; shed "
      "full/quota/doom/over = %llu/%llu/%llu/%llu; workers=4 simulated + "
      "tenant reports %s\n",
      conforming_edf * 100.0, conforming_wfq * 100.0,
      qos_edf.report.fairness_index, qos_wfq.report.fairness_index,
      static_cast<unsigned long long>(
          qos_wfq.report.shed.count(serve::ShedReason::kQueueFull)),
      static_cast<unsigned long long>(
          qos_wfq.report.shed.count(serve::ShedReason::kQuota)),
      static_cast<unsigned long long>(
          qos_wfq.report.shed.count(serve::ShedReason::kDoomed)),
      static_cast<unsigned long long>(
          qos_wfq.report.shed.count(serve::ShedReason::kOverload)),
      qos_worker_identical ? "identical" : "DIVERGED");
  // Isolation also means the protection is not bought by shedding the
  // conforming tenants themselves: their traffic sits inside quota and
  // below the overload watermark, so every one of their requests must be
  // admitted. (Hit-rate alone would miss a regression that sheds
  // conforming traffic — shed requests never reach the metrics.)
  std::uint64_t conforming_sheds = 0;
  for (const serve::TenantReport& tenant : qos_wfq.report.tenants) {
    if (tenant.tenant <= 1) {
      conforming_sheds += tenant.shed.total();
    }
  }
  const bool qos_ok = conforming_wfq >= 0.99 &&
                      conforming_wfq >= conforming_edf &&
                      conforming_sheds == 0 && qos_worker_identical;
  std::printf("multi-tenant check (conforming hit >= 99%% under "
              "admission+WFQ, >= plain EDF, zero conforming sheds [%llu], "
              "worker-identical): %s\n",
              static_cast<unsigned long long>(conforming_sheds),
              qos_ok ? "PASS" : "FAIL");

  // Optional trace export: the acceptance workload once more with the
  // mann::obs recorder + metrics registry attached. Tracing must be
  // invisible to the simulation — the simulated report is required to be
  // bit-identical to the untraced run — and the wall-clock overhead is
  // reported (informational: recording is contention-free per-worker
  // buffering, so it should stay well under 5%).
  TraceExport trace_export;
  if (!opts.trace_path.empty()) {
    bench::print_header(
        "Serving sweep 8: obs trace export (acceptance workload, "
        "lifecycle spans + metrics -> Chrome trace-event JSON)");
    print_serving_header();
    obs::MetricsRegistry registry;
    obs::TraceRecorder recorder;
    runtime::ServingOptions traced = accept;
    traced.workers = opts.parallel ? 4 : 0;
    traced.metrics = &registry;
    traced.trace_recorder = &recorder;
    const runtime::ServingMeasurement traced_run =
        runtime::measure_serving(tasks, traced);
    print_serving_row(traced_run);

    const serve::ServingReport& untraced =
        opts.parallel ? parallel.report : sequential.report;
    trace_export.ran = true;
    trace_export.identical =
        simulated_reports_identical(untraced, traced_run.report);
    trace_export.events = recorder.event_count();
    trace_export.wall_seconds = traced_run.report.host_wall_seconds;
    trace_export.overhead =
        untraced.host_wall_seconds > 0.0
            ? traced_run.report.host_wall_seconds /
                  untraced.host_wall_seconds
            : 1.0;
    trace_export.wrote = obs::write_chrome_trace(
        opts.trace_path, recorder, base.clock_hz, &registry);
    if (trace_export.wrote) {
      std::printf("# wrote %s\n", opts.trace_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", opts.trace_path.c_str());
    }
    if (obs::kEnabled) {
      std::printf(
          "\ntrace export: %zu events; wall %.3f s vs %.3f s untraced "
          "(%.2fx, informational); simulated reports %s\n",
          trace_export.events, trace_export.wall_seconds,
          untraced.host_wall_seconds, trace_export.overhead,
          trace_export.identical ? "identical" : "DIVERGED");
    } else {
      std::printf("\ntrace export: mann::obs compiled out (MANN_OBS=OFF) "
                  "— wrote an empty, still-valid trace\n");
    }
    std::printf("trace export check (identical simulation, file "
                "written): %s\n",
                trace_export.identical && trace_export.wrote ? "PASS"
                                                             : "FAIL");
  }

  // Optional cluster sweep: the mann::cluster routing tier over N
  // deterministic instances. The identity leg replays the trace at 1x
  // against a bare Server; the fleet legs serve the --cluster-scale'd
  // trace under each router policy, and the autoscaled fleet must beat
  // the fixed one on J/inference by parking through the diurnal trough.
  ClusterSweep cluster_sweep;
  bool cluster_ok = true;
  if (!opts.cluster_trace_path.empty()) {
    bench::print_header(
        "Serving sweep 9: mann::cluster — routing tier over 4 instances "
        "(diurnal trace, fixed vs autoscaled fleet, N=8 devices each)");
    std::vector<serve::TraceEntry> cluster_trace;
    try {
      cluster_trace = serve::load_trace_csv(opts.cluster_trace_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    if (cluster_trace.empty()) {
      std::fprintf(stderr,
                   "--cluster-trace %s: trace has no entries; nothing to "
                   "route\n",
                   opts.cluster_trace_path.c_str());
      return 2;
    }
    serve::TenantId max_tenant = 0;
    for (serve::TraceEntry& entry : cluster_trace) {
      entry.task %= tasks.size();
      max_tenant = std::max(max_tenant, entry.tenant);
    }

    // Per-instance pools sized so the fleet's capacity sits between the
    // diurnal trough and peak rates at 10x volume: the peak queues, the
    // trough idles — exactly the regime where parking instances pays.
    runtime::ServingOptions cluster_load = base;
    cluster_load.pool_devices = 8;  // per instance: the fleet has 4x this
    cluster_load.process = serve::ArrivalProcess::kTrace;
    cluster_load.slo_per_task = mixed_slos(tasks.size());
    if (max_tenant > 0) {
      cluster_load.tenants.assign(max_tenant + 1, serve::TenantConfig{});
    }

    // Identity leg (1x trace): a cluster of one IS the bare Server.
    cluster_load.trace = cluster_trace;
    cluster_load.requests = cluster_trace.size();
    const runtime::ServingMeasurement bare =
        runtime::measure_serving(tasks, cluster_load);
    runtime::ClusterServingOptions single;
    single.instances = 1;
    single.router.kind = cluster::RouterPolicyKind::kPowerOfTwo;
    const runtime::ClusterMeasurement one =
        runtime::measure_cluster(tasks, cluster_load, single);
    cluster_sweep.single_equivalent =
        one.report.instance_reports.size() == 1 &&
        simulated_reports_identical(bare.report,
                                    one.report.instance_reports[0].report);

    // Fleet legs on the amplified trace.
    cluster_load.trace =
        serve::scale_trace(cluster_trace, opts.cluster_scale, base.seed);
    cluster_load.requests = cluster_load.trace.size();
    cluster_sweep.ran = true;
    cluster_sweep.scale = opts.cluster_scale;
    cluster_sweep.requests = cluster_load.requests;
    std::printf("# %zu-entry trace x%zu -> %zu fleet arrivals; "
                "cluster-of-1 vs bare Server on 1x: %s\n",
                cluster_trace.size(), opts.cluster_scale,
                cluster_load.requests,
                cluster_sweep.single_equivalent ? "identical" : "DIVERGED");
    print_cluster_header();

    runtime::ClusterServingOptions fleet;
    fleet.instances = cluster_sweep.instances;
    // Saturation threshold scaled to the 8-device pools: an instance is
    // "full" near its peak-hour queue depth, not the default sized for
    // the small test fleets.
    fleet.router.spill_queue_threshold = 256;
    // Every fleet leg runs at the requested host parallelism over a
    // shared cycle cache sharded 2x the thread count (so concurrent
    // instances rarely collide on a segment lock). Purely host-side:
    // the 1-thread re-run below gates that every simulated number is
    // bit-identical, which keeps the CI baseline comparison valid.
    fleet.fleet_threads = opts.fleet_threads;
    fleet.cache_segments =
        opts.fleet_threads > 1 ? 2 * opts.fleet_threads : 0;
    cluster_sweep.fleet_threads = opts.fleet_threads;
    cluster_sweep.cache_segments = fleet.cache_segments;
    cluster_sweep.host_cores = std::thread::hardware_concurrency();
    fleet.router.kind = cluster::RouterPolicyKind::kTaskAffinity;
    cluster_sweep.affinity =
        runtime::measure_cluster(tasks, cluster_load, fleet);
    print_cluster_row(cluster_sweep.affinity);
    fleet.router.kind = cluster::RouterPolicyKind::kPowerOfTwo;
    cluster_sweep.p2c = runtime::measure_cluster(tasks, cluster_load, fleet);
    print_cluster_row(cluster_sweep.p2c);
    fleet.router.kind = cluster::RouterPolicyKind::kTenantSpill;
    cluster_sweep.spill =
        runtime::measure_cluster(tasks, cluster_load, fleet);
    print_cluster_row(cluster_sweep.spill);

    // Autoscaled leg: thresholds derived from the trace itself so any
    // replayed schedule self-calibrates — the epoch grid divides the
    // span, and up/down bracket the mean arrivals per instance per epoch
    // inside the diurnal envelope (peak ~1.5x mean, trough ~0.5x).
    const sim::Cycle span = cluster_load.trace.back().arrival_cycle + 1;
    constexpr std::size_t kEpochs = 16;
    fleet.router.kind = cluster::RouterPolicyKind::kPowerOfTwo;
    fleet.autoscaler.enabled = true;
    fleet.autoscaler.epoch_cycles = std::max<sim::Cycle>(1, span / kEpochs);
    const double mean_per_instance =
        static_cast<double>(cluster_load.requests) /
        static_cast<double>(kEpochs * fleet.instances);
    fleet.autoscaler.up_arrivals_per_instance = 1.25 * mean_per_instance;
    fleet.autoscaler.down_arrivals_per_instance = 0.75 * mean_per_instance;
    fleet.autoscaler.cooldown_epochs = 0;
    fleet.autoscaler.min_instances = 1;
    cluster_sweep.autoscaled =
        runtime::measure_cluster(tasks, cluster_load, fleet);
    print_cluster_row(cluster_sweep.autoscaled);

    // Host-parallelism check: the power-of-two leg again at one fleet
    // thread (same shared-cache sharding, fresh cache either way). The
    // reports must be bit-identical — that is the determinism contract
    // — and the two walls give the 1-vs-N ratio the perf job prints.
    if (opts.fleet_threads > 1) {
      runtime::ClusterServingOptions lone;
      lone.instances = cluster_sweep.instances;
      lone.router.spill_queue_threshold = 256;
      lone.router.kind = cluster::RouterPolicyKind::kPowerOfTwo;
      lone.fleet_threads = 1;
      lone.cache_segments = cluster_sweep.cache_segments;
      const runtime::ClusterMeasurement one_thread =
          runtime::measure_cluster(tasks, cluster_load, lone);
      print_cluster_row(one_thread);
      cluster_sweep.wall_seconds_1thread = one_thread.host_wall_seconds;
      cluster_sweep.wall_seconds_fleet = cluster_sweep.p2c.host_wall_seconds;
      cluster_sweep.wall_ratio =
          cluster_sweep.wall_seconds_fleet > 0.0
              ? cluster_sweep.wall_seconds_1thread /
                    cluster_sweep.wall_seconds_fleet
              : 0.0;
      cluster_sweep.fleet_reports_identical =
          cluster::simulated_cluster_reports_identical(
              one_thread.report, cluster_sweep.p2c.report);
      std::printf(
          "\nfleet wall: 1 thread %.3f s vs %zu threads %.3f s -> "
          "%.2fx (%zu host cores); simulated reports %s\n",
          cluster_sweep.wall_seconds_1thread, opts.fleet_threads,
          cluster_sweep.wall_seconds_fleet, cluster_sweep.wall_ratio,
          cluster_sweep.host_cores,
          cluster_sweep.fleet_reports_identical ? "identical"
                                                : "DIVERGED");
    }

    const cluster::ClusterReport& aff = cluster_sweep.affinity.report;
    const cluster::ClusterReport& p2c = cluster_sweep.p2c.report;
    const cluster::ClusterReport& scaled = cluster_sweep.autoscaled.report;
    cluster_sweep.p2c_wins_queue_wait =
        p2c.queue_wait.p99_cycles <= aff.queue_wait.p99_cycles;
    cluster_sweep.affinity_wins_warm_dispatch =
        aff.warm_dispatch_rate >= p2c.warm_dispatch_rate;
    const bool energy_ok = scaled.energy.per_inference_joules <
                           p2c.energy.per_inference_joules;
    std::printf(
        "\nrouting trade: p2c qw99 %.3f ms vs affinity %.3f ms (p2c wins: "
        "%s); affinity warm dispatch %.1f%% vs p2c %.1f%% (affinity wins: "
        "%s)\nautoscaler: %.2f mean active instances (%zu down / %zu up) "
        "-> %.4f mJ/inf vs fixed %.4f mJ/inf (must shrink)\n",
        p2c.queue_wait.p99_seconds * 1e3, aff.queue_wait.p99_seconds * 1e3,
        cluster_sweep.p2c_wins_queue_wait ? "yes" : "no",
        aff.warm_dispatch_rate * 100.0, p2c.warm_dispatch_rate * 100.0,
        cluster_sweep.affinity_wins_warm_dispatch ? "yes" : "no",
        scaled.mean_active_instances, scaled.scale_downs, scaled.scale_ups,
        scaled.energy.per_inference_joules * 1e3,
        p2c.energy.per_inference_joules * 1e3);
    cluster_ok = cluster_sweep.single_equivalent &&
                 cluster_sweep.fleet_reports_identical &&
                 (cluster_sweep.p2c_wins_queue_wait ||
                  cluster_sweep.affinity_wins_warm_dispatch) &&
                 energy_ok;
    std::printf("cluster check (cluster-of-1 identical, fleet threads "
                "report-identical, routing trade holds in at least one "
                "direction, autoscaled J/inf < fixed): %s\n",
                cluster_ok ? "PASS" : "FAIL");
  }

  if (!opts.json_path.empty()) {
    write_json(opts, suite_source, accept, sequential.report,
               parallel.report, wall_speedup, identical, qos_edf.report,
               qos_wfq.report, qos_worker_identical, trace_export,
               persist, cluster_sweep);
  }

  std::printf(
      "\nexpected shape: stories/s grows with N until arrival-bound "
      "(sweep 1); larger batches raise\nthroughput and batching "
      "efficiency at some p50 cost (sweep 2); p99 explodes only when "
      "the pool\nsaturates, and bursty traffic pays more p99 than "
      "Poisson at equal mean load (sweep 3);\nEDF + stealing meets more "
      "deadlines than FIFO at equal accuracy (sweep 4); trace replay\nis "
      "worker-count invariant (sweep 5); workers + cache move only the "
      "wall column (sweep 6);\nadmission + WFQ shield conforming "
      "tenants from an adversarial flood (sweep 7); tracing\nchanges no "
      "simulated outcome and costs <5%% wall (sweep 8, with --trace); a "
      "cluster-of-1 is the bare\nServer bit-for-bit and the autoscaled "
      "fleet wins the trough's idle watts (sweep 9, with\n"
      "--cluster-trace).\n");
  const bool trace_export_ok =
      trace_export.identical && trace_export.wrote;
  return scaling_ok && policy_ok && trace_ok && parallel_ok && qos_ok &&
                 trace_export_ok && cluster_ok
             ? 0
             : 1;
}
