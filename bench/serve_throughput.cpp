// Serving bench: the mann::serve runtime over a mixed-task workload.
//
// Three sweeps over the generator -> batcher -> scheduler -> device-pool
// stack:
//   1. pool size at saturating load     (throughput must scale with N)
//   2. dynamic batch size at fixed load (batching efficiency vs latency)
//   3. arrival rate at fixed pool       (the latency/throughput curve)
//
// Expected shapes: stories/s grows with the pool until arrival-bound;
// accuracy is identical across pool sizes (same request sequence, same
// programs — batching and scheduling must not change predictions); p99
// tracks queueing, not the datapath, so it collapses once the pool
// absorbs the offered load.
#include <cstdio>
#include <vector>

#include "common.hpp"

namespace {

using namespace mann;

std::vector<runtime::TaskArtifacts> prepare_serving_tasks() {
  // Four structurally different tasks, trained at quickstart size so the
  // bench is self-contained (no suite cache requirement).
  runtime::PrepareConfig prep = runtime::default_prepare_config();
  prep.dataset.train_stories = 600;
  prep.dataset.test_stories = 150;
  prep.train.epochs = 20;
  const data::TaskId ids[] = {
      data::TaskId::kSingleSupportingFact, data::TaskId::kYesNoQuestions,
      data::TaskId::kBasicCoreference, data::TaskId::kConjunction};
  std::vector<runtime::TaskArtifacts> tasks;
  for (const data::TaskId id : ids) {
    std::printf("# preparing %s ...\n", data::task_name(id).c_str());
    std::fflush(stdout);
    tasks.push_back(runtime::prepare_task(id, prep));
  }
  return tasks;
}

void print_serving_header() {
  std::printf("%-26s %10s %10s %9s %9s %9s %7s %7s %6s %8s\n", "config",
              "stories/s", "offered/s", "p50 ms", "p95 ms", "p99 ms",
              "util", "batch", "acc", "uploads");
  mann::bench::print_rule(112);
}

void print_serving_row(const runtime::ServingMeasurement& m) {
  const serve::ServingReport& r = m.report;
  std::printf(
      "%-26s %10.0f %10.0f %9.3f %9.3f %9.3f %6.1f%% %7.2f %6.3f %8llu\n",
      m.config_name.c_str(), r.throughput_stories_per_second,
      r.offered_stories_per_second, r.latency.p50_seconds * 1e3,
      r.latency.p95_seconds * 1e3, r.latency.p99_seconds * 1e3,
      r.mean_device_utilization * 100.0, r.mean_batch_size, r.accuracy,
      static_cast<unsigned long long>(r.model_uploads));
}

}  // namespace

int main() {
  const auto tasks = prepare_serving_tasks();

  runtime::ServingOptions base;
  base.clock_hz = 100.0e6;
  base.requests = 400;
  base.max_batch = 8;
  base.max_wait_cycles = 200'000;
  base.seed = 2019;

  bench::print_header(
      "Serving sweep 1: device-pool size at saturating load "
      "(400 requests, B=8, interarrival 500 cycles)");
  print_serving_header();
  runtime::ServingOptions sweep1 = base;
  sweep1.mean_interarrival_cycles = 500.0;
  std::vector<runtime::ServingMeasurement> pool_rows;
  for (const std::size_t devices : {1U, 2U, 4U, 8U}) {
    sweep1.pool_devices = devices;
    pool_rows.push_back(runtime::measure_serving(tasks, sweep1));
    print_serving_row(pool_rows.back());
  }

  bench::print_header(
      "Serving sweep 2: dynamic batch size (N=2, interarrival 10k cycles)");
  print_serving_header();
  runtime::ServingOptions sweep2 = base;
  sweep2.pool_devices = 2;
  sweep2.mean_interarrival_cycles = 10'000.0;
  for (const std::size_t max_batch : {1U, 4U, 8U, 16U}) {
    sweep2.max_batch = max_batch;
    print_serving_row(runtime::measure_serving(tasks, sweep2));
  }

  bench::print_header(
      "Serving sweep 3: arrival rate (N=2, B=8, Poisson vs bursty)");
  print_serving_header();
  runtime::ServingOptions sweep3 = base;
  sweep3.pool_devices = 2;
  for (const double interarrival : {2'000.0, 10'000.0, 50'000.0}) {
    sweep3.mean_interarrival_cycles = interarrival;
    sweep3.process = serve::ArrivalProcess::kPoisson;
    print_serving_row(runtime::measure_serving(tasks, sweep3));
    sweep3.process = serve::ArrivalProcess::kBursty;
    print_serving_row(runtime::measure_serving(tasks, sweep3));
  }

  // Acceptance view: scaling plus invariants against the N=1 baseline.
  const serve::ServingReport& one = pool_rows.front().report;
  const serve::ServingReport& four = pool_rows[2].report;
  const double speedup = four.throughput_stories_per_second /
                         one.throughput_stories_per_second;
  std::printf(
      "\nN=1 -> N=4: %.2fx stories/s; accuracy %.3f -> %.3f (must be "
      "equal); p99 %.3f ms -> %.3f ms (must not grow)\n",
      speedup, one.accuracy, four.accuracy, one.latency.p99_seconds * 1e3,
      four.latency.p99_seconds * 1e3);
  const bool ok = speedup > 1.5 && one.accuracy == four.accuracy &&
                  four.latency.p99_cycles <= one.latency.p99_cycles;
  std::printf("scaling check: %s\n", ok ? "PASS" : "FAIL");
  std::printf(
      "\nexpected shape: stories/s grows with N until arrival-bound "
      "(sweep 1); larger batches raise\nthroughput and batching "
      "efficiency at some p50 cost (sweep 2); p99 explodes only when "
      "the pool\nsaturates, and bursty traffic pays more p99 than "
      "Poisson at equal mean load (sweep 3).\n");
  return ok ? 0 : 1;
}
