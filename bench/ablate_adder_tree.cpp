// Ablation: adder-tree / MAC-array width.
//
// DESIGN.md calls out the lane width as the central datapath sizing
// choice: wider trees finish each dot product in fewer cycles but cost
// area/energy. The bench sweeps the width on one task with the host link
// made effectively infinite, isolating pure compute cycles, and reports
// modeled dynamic energy from the power model (op counts are width-
// independent; only time and therefore static/clock energy move).
#include <cstdio>

#include "common.hpp"
#include "power/power_model.hpp"

int main() {
  using namespace mann;
  const auto suite = bench::load_suite();
  const runtime::TaskArtifacts& art = suite.front();  // qa1

  bench::print_header(
      "Ablation: adder-tree width vs compute cycles (qa1, 200 stories, "
      "link unbound)");
  std::printf("%-8s %14s %14s %12s %14s\n", "width", "cycles",
              "cycles/story", "time@100MHz", "energy (J)");
  bench::print_rule();

  const power::FpgaPowerModel power_model;
  for (const std::size_t width : {2U, 4U, 8U, 16U, 32U, 64U}) {
    accel::AccelConfig cfg;
    cfg.clock_hz = 100.0e6;
    cfg.timing.lane_width = width;
    cfg.link.words_per_second = cfg.link.model_words_per_second;
    cfg.link.per_story_latency = 0.0;
    cfg.link.result_latency = 0.0;

    const accel::Accelerator device(cfg, accel::compile_model(art.model));
    const accel::RunResult run = device.run(art.dataset.test);
    const auto report = power_model.estimate(run, cfg.clock_hz);
    std::printf("%-8zu %14llu %14.1f %10.3f ms %14.6f\n", width,
                static_cast<unsigned long long>(run.total_cycles),
                static_cast<double>(run.total_cycles) /
                    static_cast<double>(art.dataset.test.size()),
                run.seconds * 1e3, report.total_joules);
  }
  std::printf(
      "\nexpected shape: cycles fall with width and saturate once the "
      "width covers the embedding\ndimension (E = %zu); beyond that only "
      "tree latency changes.\n",
      art.model.config().embedding_dim);
  return 0;
}
