// Shared infrastructure of the experiment harnesses: one canonical suite
// configuration (so every table/figure sees the same trained models, as in
// the paper), suite-level aggregation, and plain-text table printing.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "power/energy.hpp"
#include "runtime/measurement.hpp"

namespace mann::bench {

/// The evaluation regime shared by Table I / Fig. 3 / Fig. 4: 20 tasks,
/// joint vocabulary, 700 train / 200 test stories per task.
[[nodiscard]] runtime::PrepareConfig suite_config();

/// Paper protocol: timings repeated 100 times.
inline constexpr std::size_t kRepetitions = 100;

/// Loads (or trains once and caches) the 20-task suite.
[[nodiscard]] std::vector<runtime::TaskArtifacts> load_suite();

/// One configuration measured over the whole suite.
struct SuiteMeasurement {
  std::string name;
  power::EnergyReport energy;  ///< summed seconds/flops, energy-mean watts
  double accuracy = 0.0;       ///< story-weighted mean
  double mean_output_probes = 0.0;
  double link_active_seconds = 0.0;
};

/// Sums a baseline config over all tasks.
[[nodiscard]] SuiteMeasurement measure_suite_baseline(
    const std::vector<runtime::TaskArtifacts>& suite,
    const runtime::BaselineConfig& baseline,
    std::size_t repetitions = kRepetitions);

/// Sums an FPGA configuration over all tasks.
[[nodiscard]] SuiteMeasurement measure_suite_fpga(
    const std::vector<runtime::TaskArtifacts>& suite,
    runtime::FpgaRunOptions options);

/// Printf helpers shared by the harnesses.
void print_rule(int width = 96);
void print_header(const std::string& title);

}  // namespace mann::bench
