// Ablation: host-link bandwidth sensitivity.
//
// The paper's §V claim — speedup saturates with clock because the host
// interface dominates, and an interface-unbound design would be ~162x
// more energy-efficient than the GPU — is a statement about this sweep:
// vary the word-stream rate and watch the 25-vs-100 MHz gap and the
// normalized efficiency move.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace mann;
  const auto suite = bench::load_suite();
  const runtime::TaskArtifacts& art = suite.front();  // qa1

  const auto gpu = runtime::measure_baseline(runtime::gpu_baseline(), art,
                                             bench::kRepetitions);

  bench::print_header(
      "Ablation: host-link word rate vs time and energy efficiency (qa1)");
  std::printf("%-14s %12s %12s %10s %12s %12s\n", "words/s", "t@25 (s)",
              "t@100 (s)", "t25/t100", "eff@25", "eff@100");
  bench::print_rule();

  for (const double wps : {5.0e5, 1.0e6, 2.0e6, 4.0e6, 8.0e6, 1.6e7,
                           2.0e8}) {
    auto measure = [&](double mhz) {
      runtime::FpgaRunOptions opt;
      opt.clock_hz = mhz * 1.0e6;
      opt.repetitions = bench::kRepetitions;
      accel::HostLinkConfig link;
      link.words_per_second = wps;
      opt.link = link;
      return runtime::measure_fpga(art, opt);
    };
    const auto r25 = measure(25.0);
    const auto r100 = measure(100.0);
    std::printf("%-14.1e %12.3f %12.3f %10.2f %11.1fx %11.1fx\n", wps,
                r25.energy.seconds, r100.energy.seconds,
                r25.energy.seconds / r100.energy.seconds,
                power::normalize(r25.energy, gpu.energy).energy_efficiency,
                power::normalize(r100.energy, gpu.energy).energy_efficiency);
  }
  std::printf(
      "\nexpected shape: slow links flatten the clock sweep (t25 ~ t100); "
      "fast links restore\nnear-linear clock scaling and push efficiency "
      "toward the paper's interface-unbound estimate.\n");
  return 0;
}
