// Ablation: FIFO depth in the streaming path.
//
// The dataflow architecture's FIFOs decouple the host link from CONTROL;
// this sweep shows how shallow queues cause link stalls (full rejects)
// without changing results, and where the depth stops mattering.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace mann;
  const auto suite = bench::load_suite();
  const runtime::TaskArtifacts& art = suite.front();  // qa1

  bench::print_header("Ablation: FIFO depth (qa1, 200 stories, 100 MHz)");
  std::printf("%-8s %14s %16s %16s %16s %14s\n", "depth", "cycles",
              "link rejects", "total rejects", "max occupancy",
              "prediction ok");
  bench::print_rule();

  const accel::DeviceProgram prog = accel::compile_model(art.model);
  std::vector<std::int32_t> reference;
  for (const std::size_t depth : {2U, 4U, 8U, 16U, 32U, 64U, 128U}) {
    accel::AccelConfig cfg;
    cfg.clock_hz = 100.0e6;
    cfg.fifo_depth = depth;
    const accel::Accelerator device(cfg, prog);
    const accel::RunResult run = device.run(art.dataset.test);
    if (reference.empty()) {
      for (const auto& s : run.stories) {
        reference.push_back(s.prediction);
      }
    }
    bool same = true;
    for (std::size_t i = 0; i < run.stories.size(); ++i) {
      same &= run.stories[i].prediction == reference[i];
    }
    // Aggregate host-facing queue stats: the same code path the serving
    // metrics fold into their ServingReport.
    const sim::FifoStats queues = run.queue_stats();
    std::printf("%-8zu %14llu %16llu %16llu %16zu %14s\n", depth,
                static_cast<unsigned long long>(run.total_cycles),
                static_cast<unsigned long long>(
                    run.fifo_in_stats.full_rejects),
                static_cast<unsigned long long>(queues.full_rejects),
                queues.max_occupancy, same ? "yes" : "NO");
  }
  std::printf(
      "\nexpected shape: results are depth-independent (back-pressure is "
      "lossless); rejects fall\nas depth grows and occupancy saturates at "
      "the natural burst size of the stream.\n");
  return 0;
}
