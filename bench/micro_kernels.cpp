// Micro-benchmarks of the numeric kernels on the hot paths: the float
// reference model, the fixed-point datapath, and the ITH calibration
// statistics. google-benchmark timings, independent of the trained suite.
#include <benchmark/benchmark.h>

#include <vector>

#include "accel/fx_types.hpp"
#include "data/dataset.hpp"
#include "model/memn2n.hpp"
#include "numeric/kde.hpp"
#include "numeric/lut.hpp"
#include "numeric/random.hpp"
#include "numeric/silhouette.hpp"
#include "numeric/vector_ops.hpp"

namespace {

using namespace mann;

std::vector<float> random_vector(std::size_t n, std::uint64_t seed) {
  numeric::Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) {
    x = rng.uniform(-1.0F, 1.0F);
  }
  return v;
}

void BM_Dot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_vector(n, 1);
  const auto b = random_vector(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(numeric::dot(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Dot)->Arg(24)->Arg(256);

void BM_FxDot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto fa = random_vector(n, 3);
  const auto fb = random_vector(n, 4);
  accel::FxVector a(n);
  accel::FxVector b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = accel::Fx::from_float(fa[i]);
    b[i] = accel::Fx::from_float(fb[i]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel::fx_dot(a, b));
  }
}
BENCHMARK(BM_FxDot)->Arg(24)->Arg(256);

void BM_Softmax(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto base = random_vector(n, 5);
  std::vector<float> v(n);
  for (auto _ : state) {
    v = base;
    numeric::softmax_inplace(v);
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_Softmax)->Arg(16)->Arg(160);

void BM_ExpLut(benchmark::State& state) {
  const numeric::ExpLut lut;
  float x = -8.0F;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lut(x));
    x = x < -0.1F ? x + 0.01F : -8.0F;
  }
}
BENCHMARK(BM_ExpLut);

void BM_Matvec(benchmark::State& state) {
  numeric::Rng rng(6);
  numeric::Matrix m(static_cast<std::size_t>(state.range(0)), 24);
  for (float& v : m.data()) {
    v = rng.normal();
  }
  const auto x = random_vector(24, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(numeric::matvec(m, x));
  }
}
BENCHMARK(BM_Matvec)->Arg(24)->Arg(160);

void BM_KdeEvaluate(benchmark::State& state) {
  const auto samples = random_vector(static_cast<std::size_t>(state.range(0)),
                                     8);
  const numeric::KernelDensity kde(samples);
  float x = -1.0F;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kde(x));
    x = x < 1.0F ? x + 0.01F : -1.0F;
  }
}
BENCHMARK(BM_KdeEvaluate)->Arg(128)->Arg(1024);

void BM_Silhouette(benchmark::State& state) {
  const auto own = random_vector(static_cast<std::size_t>(state.range(0)), 9);
  auto other = random_vector(static_cast<std::size_t>(state.range(0)) * 4,
                             10);
  for (float& v : other) {
    v += 2.0F;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(numeric::average_silhouette(own, other));
  }
}
BENCHMARK(BM_Silhouette)->Arg(64)->Arg(512);

void BM_ModelForward(benchmark::State& state) {
  data::DatasetConfig dc;
  dc.train_stories = 1;
  dc.test_stories = 8;
  const auto ds =
      data::build_task_dataset(data::TaskId::kSingleSupportingFact, dc);
  model::ModelConfig mc;
  mc.vocab_size = ds.vocab_size();
  mc.embedding_dim = 24;
  mc.hops = 3;
  numeric::Rng rng(11);
  const model::MemN2N net(mc, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(ds.test[i % ds.test.size()]));
    ++i;
  }
}
BENCHMARK(BM_ModelForward);

}  // namespace
