// Extension bench: sparse memory reads (top-k attention, §VI-B).
//
// Sweeps the number of slots the MEM module's exp/divide/read pipeline
// touches per hop and reports model accuracy (float reference), device
// accuracy, and device compute cycles with the link unbound. Shows the
// accuracy/cycles trade-off the sparse-access-memory line of work buys on
// this architecture.
#include <cstdio>

#include "common.hpp"
#include "model/sparse.hpp"

int main() {
  using namespace mann;
  const auto suite = bench::load_suite();
  // qa3 has the longest stories in the suite (most memory slots), so
  // sparse reads bite hardest there.
  const runtime::TaskArtifacts& art = suite[2];

  bench::print_header(
      "Extension: sparse memory reads (top-k attention) on " +
      data::task_name(art.dataset.id));
  std::printf("%-8s %14s %14s %16s %14s\n", "k", "model acc",
              "device acc", "cycles/story", "vs dense");
  bench::print_rule();

  const accel::DeviceProgram prog = accel::compile_model(art.model);
  double dense_cycles = 0.0;
  for (const std::size_t k : {0U, 8U, 4U, 2U, 1U}) {
    accel::AccelConfig cfg;
    cfg.clock_hz = 100.0e6;
    cfg.sparse_read_slots = k;
    cfg.link.words_per_second = cfg.link.model_words_per_second;
    cfg.link.per_story_latency = 0.0;
    cfg.link.result_latency = 0.0;
    const accel::Accelerator device(cfg, prog);
    const accel::RunResult run = device.run(art.dataset.test);

    std::size_t correct = 0;
    for (std::size_t i = 0; i < run.stories.size(); ++i) {
      if (run.stories[i].prediction == art.dataset.test[i].answer) {
        ++correct;
      }
    }
    const double cycles = static_cast<double>(run.total_cycles) /
                          static_cast<double>(art.dataset.test.size());
    if (k == 0) {
      dense_cycles = cycles;
    }
    const float model_acc =
        model::evaluate_sparse_accuracy(art.model, art.dataset.test, k);
    std::printf("%-8s %13.1f%% %13.1f%% %16.1f %13.1f%%\n",
                k == 0 ? "dense" : std::to_string(k).c_str(),
                100.0 * static_cast<double>(model_acc),
                100.0 * static_cast<double>(correct) /
                    static_cast<double>(run.stories.size()),
                cycles, 100.0 * cycles / dense_cycles);
  }
  std::printf(
      "\nexpected shape: trained attention is concentrated, so small k "
      "keeps accuracy; at bAbI\nscale (<= 8 memory slots) the k-max "
      "selection pass eats most of the exp/div/read savings\n— sparse "
      "access memory pays off for *large* memories, which is exactly the "
      "regime Rae et\nal. target and why the paper did not adopt it for "
      "this workload.\n");
  return 0;
}
