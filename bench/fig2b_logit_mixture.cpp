// Fig. 2(b): logit distributions of a trained model fitted to two-component
// Gaussian mixture models. For each frequent answer class the bench fits a
// 2-GMM to the pooled logits (positive HG_i + negative HG_i-bar) and
// reports the components, the separation, the KDE-derived threshold and
// the silhouette coefficient that drives the probe order.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "numeric/mixture.hpp"

int main() {
  using namespace mann;
  const auto suite = bench::load_suite();
  const runtime::TaskArtifacts& art = suite.front();  // qa1

  bench::print_header(
      "Fig. 2(b): per-class logit mixture fits (task qa1, trained model)");
  std::printf("%-14s %7s | %19s | %19s | %7s %9s %9s\n", "class", "n_pos",
              "low (w, mu, sigma)", "high (w, mu, sigma)", "sep",
              "theta", "silh");
  bench::print_rule(104);

  // The most frequent answer classes.
  std::vector<std::size_t> classes;
  for (std::size_t i = 0; i < art.ith.num_classes(); ++i) {
    if (art.ith.positive_samples(i).size() >= 20) {
      classes.push_back(i);
    }
  }
  std::sort(classes.begin(), classes.end(), [&](std::size_t a, std::size_t b) {
    return art.ith.positive_samples(a).size() >
           art.ith.positive_samples(b).size();
  });
  if (classes.size() > 8) {
    classes.resize(8);
  }

  for (const std::size_t cls : classes) {
    const auto pos = art.ith.positive_samples(cls);
    const auto neg = art.ith.negative_samples(cls);
    std::vector<float> pooled(neg.begin(), neg.end());
    pooled.insert(pooled.end(), pos.begin(), pos.end());
    const numeric::MixtureFit fit = numeric::fit_two_gaussians(pooled);
    const float theta = art.ith.thresholds()[cls];
    std::printf(
        "%-14s %7zu | %5.2f %6.2f %6.2f | %5.2f %6.2f %6.2f | %7.2f "
        "%9.3f %9.3f\n",
        art.dataset.vocab.word(static_cast<std::int32_t>(cls)).c_str(),
        pos.size(), fit.low.weight, fit.low.mean, fit.low.stddev,
        fit.high.weight, fit.high.mean, fit.high.stddev,
        numeric::separation(fit), theta, art.ith.silhouettes()[cls]);
  }
  std::printf(
      "\nexpected shape: answer classes are bimodal (separation >> 1); "
      "the high mode holds the\n'this class is the answer' logits that "
      "inference thresholding fires on.\n");
  return 0;
}
