// Ablation: number of read hops (the depth of the recurrent READ path).
//
// The recurrent hop count is the MANN's main capacity knob and directly
// multiplies the MEM/READ cycle cost on the device. This bench retrains
// qa2 (two supporting facts — genuinely multi-hop) at hops 1..4 and
// reports accuracy alongside device cycles per story.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace mann;

  bench::print_header(
      "Ablation: read hops vs accuracy and device cycles (qa2)");
  std::printf("%-6s %12s %12s %16s %14s\n", "hops", "train acc",
              "test acc", "cycles/story", "time@100MHz");
  bench::print_rule();

  for (const std::size_t hops : {1U, 2U, 3U, 4U}) {
    runtime::PrepareConfig prep = runtime::default_prepare_config();
    prep.model.hops = hops;
    prep.dataset.train_stories = 900;
    prep.dataset.test_stories = 150;
    prep.train.epochs = 30;
    const runtime::TaskArtifacts art =
        runtime::prepare_task(data::TaskId::kTwoSupportingFacts, prep);

    accel::AccelConfig cfg;
    cfg.clock_hz = 100.0e6;
    // Unbound link isolates the compute cost of the extra hops.
    cfg.link.words_per_second = cfg.link.model_words_per_second;
    cfg.link.per_story_latency = 0.0;
    cfg.link.result_latency = 0.0;
    const accel::Accelerator device(cfg, accel::compile_model(art.model));
    const accel::RunResult run = device.run(art.dataset.test);
    const double cycles_per_story =
        static_cast<double>(run.total_cycles) /
        static_cast<double>(art.dataset.test.size());

    const auto history_acc = model::evaluate_accuracy(art.model,
                                                      art.dataset.train);
    std::printf("%-6zu %11.1f%% %11.1f%% %16.1f %11.2f us\n", hops,
                100.0 * static_cast<double>(history_acc),
                100.0 * static_cast<double>(art.test_accuracy),
                cycles_per_story, cycles_per_story / 100.0);
  }
  std::printf(
      "\nexpected shape: extra hops add model capacity (train fit rises "
      "from 1 to 3 hops; a\nbag-of-words MemN2N still generalizes "
      "modestly on qa2, as in Sukhbaatar et al.'s BoW\nrows) and cycles "
      "grow linearly with hops — hop count is a capacity/latency dial.\n");
  return 0;
}
