// Ablation: synchronous (request/response) vs pipelined host runtime.
//
// The paper's measured time structure is additive (T_io + C/f), implying
// a host that waits for each answer before sending the next story. A
// pipelined host overlaps transfer with compute; this bench quantifies
// what that software change alone would buy on the same device — results
// are bit-identical either way (asserted by the invariance tests).
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace mann;
  const auto suite = bench::load_suite();
  const runtime::TaskArtifacts& art = suite.front();  // qa1

  bench::print_header(
      "Ablation: synchronous vs pipelined host runtime (qa1, 200 stories)");
  std::printf("%-10s %16s %16s %12s\n", "clock", "sync (ms)",
              "pipelined (ms)", "speedup");
  bench::print_rule();

  for (const double mhz : {25.0, 50.0, 75.0, 100.0}) {
    auto measure = [&](bool synchronous) {
      accel::AccelConfig cfg;
      cfg.clock_hz = mhz * 1.0e6;
      cfg.link.synchronous_stories = synchronous;
      const accel::Accelerator device(cfg, accel::compile_model(art.model));
      return device.run(art.dataset.test).seconds * 1e3;
    };
    const double t_sync = measure(true);
    const double t_pipe = measure(false);
    std::printf("%-7.0fMHz %16.3f %16.3f %11.2fx\n", mhz, t_sync, t_pipe,
                t_sync / t_pipe);
  }
  std::printf(
      "\nexpected shape: pipelining hides compute under transfer, so the "
      "gain is largest at low\nclocks (where compute is a big slice to "
      "hide) and shrinks toward the pure-I/O floor at\nhigh clocks — a "
      "host-software mitigation for the very bottleneck §V identifies.\n");
  return 0;
}
