// Fig. 3: effect of inference thresholding and index ordering — accuracy
// and normalized number of output-layer comparisons versus the threshold
// constant rho, with and without silhouette index ordering.
#include <cstdio>

#include "common.hpp"
#include "core/ith_eval.hpp"

int main() {
  using namespace mann;
  const auto suite = bench::load_suite();

  bench::print_header(
      "Fig. 3: accuracy and normalized #comparisons vs rho\n"
      "(normalized accuracy = accuracy / accuracy without ITH; "
      "comparisons normalized to |I|)");
  std::printf("%-12s %14s %14s %16s %16s\n", "rho", "acc (ITH)",
              "acc (no ord)", "cmp (ITH)", "cmp (no ord)");
  bench::print_rule();

  // Baseline without ITH.
  double base_acc = 0.0;
  std::size_t stories = 0;
  for (const runtime::TaskArtifacts& art : suite) {
    const auto ev = core::evaluate_full_mips(art.model, art.dataset.test);
    base_acc += static_cast<double>(ev.accuracy) *
                static_cast<double>(ev.stories);
    stories += ev.stories;
  }
  base_acc /= static_cast<double>(stories);
  std::printf("%-12s %13.1f%% %13.1f%% %15.1f%% %15.1f%%\n", "w/o ITH",
              100.0, 100.0, 100.0, 100.0);

  for (const float rho : {1.0F, 0.99F, 0.95F, 0.9F}) {
    double acc_ord = 0.0;
    double acc_nat = 0.0;
    double cmp_ord = 0.0;
    double cmp_nat = 0.0;
    for (const runtime::TaskArtifacts& art : suite) {
      core::IthConfig cfg = bench::suite_config().ith;
      cfg.rho = rho;
      const auto ith = core::InferenceThresholding::calibrate(
          art.model, art.dataset.train, cfg);
      const auto n = static_cast<double>(art.dataset.test.size());
      const auto ev_o =
          core::evaluate_ith(art.model, ith, art.dataset.test, true);
      const auto ev_n =
          core::evaluate_ith(art.model, ith, art.dataset.test, false);
      acc_ord += static_cast<double>(ev_o.accuracy) * n;
      acc_nat += static_cast<double>(ev_n.accuracy) * n;
      cmp_ord += static_cast<double>(ev_o.normalized_comparisons) * n;
      cmp_nat += static_cast<double>(ev_n.normalized_comparisons) * n;
    }
    const auto total = static_cast<double>(stories);
    std::printf("ITH (%.2f)   %13.1f%% %13.1f%% %15.1f%% %15.1f%%\n",
                static_cast<double>(rho),
                100.0 * acc_ord / total / base_acc,
                100.0 * acc_nat / total / base_acc,
                100.0 * cmp_ord / total, 100.0 * cmp_nat / total);
  }
  std::printf(
      "\nexpected shape: comparisons fall as rho decreases; ordering "
      "improves both columns at fixed rho.\n");
  return 0;
}
