// Fig. 4: energy efficiency of inference on each of the 20 bAbI-style
// tasks, normalized to the GPU, for the six configurations the paper
// plots: CPU, GPU, FPGA @25 MHz, FPGA+ITH @25 MHz, FPGA @100 MHz and
// FPGA+ITH @100 MHz.
#include <cstdio>

#include "common.hpp"
#include "numeric/stats.hpp"

int main() {
  using namespace mann;
  const auto suite = bench::load_suite();

  bench::print_header(
      "Fig. 4: per-task energy efficiency normalized to the GPU");
  std::printf("%-5s %-30s %8s %8s %10s %12s %10s %12s\n", "task", "name",
              "CPU", "GPU", "FPGA@25", "+ITH@25", "FPGA@100", "+ITH@100");
  bench::print_rule(104);

  std::vector<float> fpga25_ratios;
  std::vector<float> fpga25_ith_ratios;
  std::vector<float> fpga100_ratios;
  std::vector<float> fpga100_ith_ratios;

  for (const runtime::TaskArtifacts& art : suite) {
    const auto gpu = runtime::measure_baseline(runtime::gpu_baseline(), art,
                                               bench::kRepetitions);
    const auto cpu = runtime::measure_baseline(runtime::cpu_baseline(), art,
                                               bench::kRepetitions);
    auto fpga = [&](double mhz, bool ith) {
      runtime::FpgaRunOptions opt;
      opt.clock_hz = mhz * 1.0e6;
      opt.ith = ith;
      opt.repetitions = bench::kRepetitions;
      return runtime::measure_fpga(art, opt);
    };
    const auto f25 = fpga(25.0, false);
    const auto f25i = fpga(25.0, true);
    const auto f100 = fpga(100.0, false);
    const auto f100i = fpga(100.0, true);

    auto eff = [&](const runtime::MeasurementRow& row) {
      return power::normalize(row.energy, gpu.energy).energy_efficiency;
    };
    const double e_cpu = eff(cpu);
    const double e25 = eff(f25);
    const double e25i = eff(f25i);
    const double e100 = eff(f100);
    const double e100i = eff(f100i);
    fpga25_ratios.push_back(static_cast<float>(e25));
    fpga25_ith_ratios.push_back(static_cast<float>(e25i));
    fpga100_ratios.push_back(static_cast<float>(e100));
    fpga100_ith_ratios.push_back(static_cast<float>(e100i));

    std::printf("%-5d %-30s %7.2fx %7.2fx %9.2fx %11.2fx %9.2fx %11.2fx\n",
                data::task_number(art.dataset.id),
                data::task_name(art.dataset.id).c_str(), e_cpu, 1.0, e25,
                e25i, e100, e100i);
  }

  bench::print_rule(104);
  std::printf(
      "geomean: FPGA@25=%.1fx  +ITH@25=%.1fx  FPGA@100=%.1fx  "
      "+ITH@100=%.1fx\n",
      numeric::geometric_mean(fpga25_ratios),
      numeric::geometric_mean(fpga25_ith_ratios),
      numeric::geometric_mean(fpga100_ratios),
      numeric::geometric_mean(fpga100_ith_ratios));
  std::printf(
      "expected shape: every FPGA column > 1x on every task; ITH widens "
      "the margin.\n");
  return 0;
}
