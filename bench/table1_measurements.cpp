// Table I: average measurement results, speedup, and energy-efficiency of
// inference on the (synthetic) bAbI suite.
//
// Reproduces the paper's rows — CPU, GPU, FPGA @ 25/50/75/100 MHz, and
// FPGA + inference thresholding at the same clocks — plus two extension
// rows for the §V estimate of the interface-unbound design.
// Speedup and FLOPS/kJ are normalized to the GPU row, as in the paper.
#include <cstdio>

#include "common.hpp"

namespace {

using namespace mann;
using bench::SuiteMeasurement;

void print_row(const SuiteMeasurement& m, const SuiteMeasurement& gpu) {
  const power::NormalizedReport n = power::normalize(m.energy, gpu.energy);
  std::printf("%-26s %10.2f %9.2f %9.2f %12.2f\n", m.name.c_str(),
              m.energy.seconds, m.energy.watts, n.speedup,
              n.energy_efficiency);
}

}  // namespace

int main() {
  const auto suite = bench::load_suite();

  bench::print_header(
      "Table I: average time, power, speedup and FLOPS/kJ (normalized to "
      "GPU)\nworkload: 20 tasks x 200 questions x 100 repetitions");
  std::printf("%-26s %10s %9s %9s %12s\n", "Configuration", "Time (s)",
              "Power (W)", "Speedup", "FLOPS/kJ");
  bench::print_rule();

  const SuiteMeasurement cpu =
      bench::measure_suite_baseline(suite, runtime::cpu_baseline());
  const SuiteMeasurement gpu =
      bench::measure_suite_baseline(suite, runtime::gpu_baseline());
  print_row(cpu, gpu);
  print_row(gpu, gpu);

  std::vector<SuiteMeasurement> fpga_rows;
  for (const bool ith : {false, true}) {
    for (const double mhz : {25.0, 50.0, 75.0, 100.0}) {
      runtime::FpgaRunOptions opt;
      opt.clock_hz = mhz * 1.0e6;
      opt.ith = ith;
      opt.repetitions = bench::kRepetitions;
      fpga_rows.push_back(bench::measure_suite_fpga(suite, opt));
      print_row(fpga_rows.back(), gpu);
    }
  }

  // §V: "If this were not the case [interface-bound], we estimate that our
  // approach would use 162 times less energy than the GPU." Model the
  // same device with the word stream at bulk-DMA rate.
  bench::print_rule();
  std::printf("extension: interface-unbound estimate (stream at DMA rate)\n");
  for (const bool ith : {false, true}) {
    runtime::FpgaRunOptions opt;
    opt.clock_hz = 100.0e6;
    opt.ith = ith;
    opt.repetitions = bench::kRepetitions;
    accel::HostLinkConfig link;
    link.words_per_second = link.model_words_per_second;
    link.per_story_latency = 0.0;
    link.result_latency = 0.0;
    opt.link = link;
    SuiteMeasurement m = bench::measure_suite_fpga(suite, opt);
    m.name += " (no IF bound)";
    print_row(m, gpu);
  }

  // Companion detail: ITH time saving per clock (paper: 6-18%).
  bench::print_rule();
  std::printf("ITH time saving by clock: ");
  for (std::size_t i = 0; i < 4; ++i) {
    const double saving = (fpga_rows[i].energy.seconds -
                           fpga_rows[i + 4].energy.seconds) /
                          fpga_rows[i].energy.seconds;
    std::printf("%s%.1f%%@%dMHz", i == 0 ? "" : "  ", saving * 100.0,
                25 * (static_cast<int>(i) + 1));
  }
  std::printf("\nmean accuracy: plain=%.4f  ith=%.4f (rho = 1.0)\n",
              fpga_rows[0].accuracy, fpga_rows[4].accuracy);
  std::printf("mean ITH output probes/story: %.1f of %zu classes\n",
              fpga_rows[4].mean_output_probes,
              suite.front().dataset.vocab_size());
  return 0;
}
