// Ablation: datapath fixed-point precision.
//
// Runs the MANN forward pass entirely in FixedPoint<F> for several
// fractional widths (model::quantized_logits) and reports argmax agreement
// with the float reference plus worst-case logit error. Justifies the
// Q16.16 default: agreement is near-perfect from 12 fractional bits up.
#include <cstdio>

#include "common.hpp"
#include "model/quantized.hpp"
#include "numeric/fixed_point.hpp"

namespace {

using namespace mann;

template <typename Fx>
void run_format(const runtime::TaskArtifacts& art, const char* name) {
  const model::QuantizationReport r =
      model::evaluate_quantized<Fx>(art.model, art.dataset.test);
  std::printf("%-10s %12.1f%% %12.1f%% %16.5f\n", name,
              100.0 * r.argmax_agreement, 100.0 * r.accuracy,
              static_cast<double>(r.max_logit_error));
}

}  // namespace

int main() {
  const auto suite = bench::load_suite();
  const runtime::TaskArtifacts& art = suite.front();

  bench::print_header(
      "Ablation: fixed-point fractional bits vs float-reference agreement "
      "(qa1, 200 stories)");
  std::printf("%-10s %13s %13s %16s\n", "format", "argmax agree",
              "accuracy", "max |logit err|");
  bench::print_rule();
  std::printf("%-10s %12.1f%% %12.1f%% %16s\n", "float32", 100.0,
              100.0 * static_cast<double>(art.test_accuracy), "0");
  run_format<numeric::fx8>(art, "Q24.8");
  run_format<numeric::fx12>(art, "Q20.12");
  run_format<numeric::fx16>(art, "Q16.16");
  run_format<numeric::fx20>(art, "Q12.20");
  run_format<numeric::fx24>(art, "Q8.24");
  std::printf(
      "\nexpected shape: agreement ~100%% for >= 12 fractional bits; the "
      "Q16.16 datapath default\nis safely inside the flat region.\n");
  return 0;
}
