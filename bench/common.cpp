#include "common.hpp"

namespace mann::bench {

runtime::PrepareConfig suite_config() {
  runtime::PrepareConfig cfg = runtime::default_prepare_config();
  cfg.dataset.train_stories = 700;
  cfg.dataset.test_stories = 200;
  cfg.dataset.seed = 42;
  cfg.model.embedding_dim = 24;
  cfg.model.hops = 3;
  cfg.train.epochs = 25;
  cfg.train.anneal_every = 8;
  cfg.ith.rho = 1.0F;
  return cfg;
}

std::vector<runtime::TaskArtifacts> load_suite() {
  std::printf("# preparing 20-task suite (cached under mann_bench_cache/;"
              " first run trains ~20 models)\n");
  std::fflush(stdout);
  return runtime::prepare_suite_cached(suite_config(), "mann_bench_cache");
}

namespace {

SuiteMeasurement aggregate(std::string name,
                           const std::vector<runtime::MeasurementRow>& rows,
                           const std::vector<std::size_t>& stories) {
  SuiteMeasurement m;
  m.name = std::move(name);
  double joules = 0.0;
  double acc_weighted = 0.0;
  double probes_weighted = 0.0;
  std::size_t total_stories = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    m.energy.seconds += rows[i].energy.seconds;
    m.energy.flops += rows[i].energy.flops;
    joules += rows[i].energy.joules();
    acc_weighted += rows[i].accuracy * static_cast<double>(stories[i]);
    probes_weighted +=
        rows[i].mean_output_probes * static_cast<double>(stories[i]);
    m.link_active_seconds += rows[i].link_active_seconds;
    total_stories += stories[i];
  }
  m.energy.watts = m.energy.seconds > 0.0 ? joules / m.energy.seconds : 0.0;
  if (total_stories > 0) {
    m.accuracy = acc_weighted / static_cast<double>(total_stories);
    m.mean_output_probes =
        probes_weighted / static_cast<double>(total_stories);
  }
  return m;
}

}  // namespace

SuiteMeasurement measure_suite_baseline(
    const std::vector<runtime::TaskArtifacts>& suite,
    const runtime::BaselineConfig& baseline, std::size_t repetitions) {
  std::vector<runtime::MeasurementRow> rows;
  std::vector<std::size_t> stories;
  for (const runtime::TaskArtifacts& art : suite) {
    rows.push_back(runtime::measure_baseline(baseline, art, repetitions));
    stories.push_back(art.dataset.test.size());
  }
  return aggregate(baseline.name, rows, stories);
}

SuiteMeasurement measure_suite_fpga(
    const std::vector<runtime::TaskArtifacts>& suite,
    runtime::FpgaRunOptions options) {
  std::vector<runtime::MeasurementRow> rows;
  std::vector<std::size_t> stories;
  std::string name;
  for (const runtime::TaskArtifacts& art : suite) {
    rows.push_back(runtime::measure_fpga(art, options));
    stories.push_back(art.dataset.test.size());
    name = rows.back().config_name;
  }
  return aggregate(std::move(name), rows, stories);
}

void print_rule(int width) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

void print_header(const std::string& title) {
  std::printf("\n");
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

}  // namespace mann::bench
