// Ablation: robustness of inference-thresholding calibration to its
// density-estimation hyper-parameters (KDE bandwidth, minimum positive
// sample count). DESIGN.md calls these out as the knobs Algorithm 1
// leaves open.
#include <cstdio>

#include "common.hpp"
#include "core/ith_eval.hpp"

int main() {
  using namespace mann;
  const auto suite = bench::load_suite();
  const runtime::TaskArtifacts& art = suite.front();  // qa1

  const auto base = core::evaluate_full_mips(art.model, art.dataset.test);

  bench::print_header(
      "Ablation: ITH calibration hyper-parameters (qa1, rho = 1.0)");
  std::printf("%-22s %10s %14s %14s %12s\n", "configuration", "active",
              "accuracy", "cmp/story", "early-exit");
  bench::print_rule();
  std::printf("%-22s %10s %13.1f%% %14.1f %12s\n", "w/o ITH", "-",
              100.0 * static_cast<double>(base.accuracy),
              static_cast<double>(base.mean_comparisons), "-");

  auto run = [&](const char* label, float bandwidth, std::size_t min_pos) {
    core::IthConfig cfg;
    cfg.rho = 1.0F;
    cfg.kde_bandwidth = bandwidth;
    cfg.min_positive_samples = min_pos;
    const auto ith = core::InferenceThresholding::calibrate(
        art.model, art.dataset.train, cfg);
    const auto ev = core::evaluate_ith(art.model, ith, art.dataset.test);
    std::printf("%-22s %10zu %13.1f%% %14.1f %11.1f%%\n", label,
                ith.active_classes(),
                100.0 * static_cast<double>(ev.accuracy),
                static_cast<double>(ev.mean_comparisons),
                100.0 * static_cast<double>(ev.early_exit_rate));
  };

  run("bw=auto (Silverman)", 0.0F, 5);
  run("bw=0.02", 0.02F, 5);
  run("bw=0.05", 0.05F, 5);
  run("bw=0.1", 0.1F, 5);
  run("bw=0.3", 0.3F, 5);
  run("bw=1.0", 1.0F, 5);
  bench::print_rule();
  run("min_pos=1", 0.0F, 1);
  run("min_pos=20", 0.0F, 20);
  run("min_pos=100", 0.0F, 100);
  std::printf(
      "\nexpected shape: accuracy stays ~flat across bandwidths at rho = "
      "1.0 (the threshold only\nfires where the negative density "
      "vanishes); very wide kernels disable early exits, very\nnarrow "
      "ones fire more aggressively. Raising min_pos trades comparisons "
      "for safety.\n");
  return 0;
}
