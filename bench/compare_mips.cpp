// Related-work comparison (§VI-B): inference thresholding vs ALSH-based
// and clustering-based approximate MIPS on the same trained output layer.
//
// The paper dismisses hashing/clustering MIPS for the resource-limited
// output layer ("may be too slow ... in resource-limited environments");
// this bench quantifies that: full-length dot products per query, extra
// projection/centroid operations per query, recall of the exact argmax,
// and end-task accuracy.
#include <cstdio>

#include "common.hpp"
#include "core/mips_baselines.hpp"

int main() {
  using namespace mann;
  const auto suite = bench::load_suite();
  const runtime::TaskArtifacts& art = suite.front();  // qa1, joint vocab
  const numeric::Matrix& w_o = art.model.params().w_o;

  const core::ExactMips exact(w_o);

  core::AlshMips::Config alsh_cfg;
  alsh_cfg.tables = 8;
  alsh_cfg.bits = 6;
  const core::AlshMips alsh(w_o, alsh_cfg);

  core::ClusterMips::Config cm_cfg;
  cm_cfg.clusters = 12;
  cm_cfg.probe_clusters = 3;
  const core::ClusterMips clusters(w_o, cm_cfg);

  struct Row {
    const char* name;
    double dots = 0.0;
    double overhead = 0.0;
    std::size_t recall = 0;
    std::size_t correct = 0;
  };
  Row rows[4] = {{"exact scan"},
                 {"inference thresholding"},
                 {"ALSH (8x6 bits)"},
                 {"cluster (12, probe 3)"}};

  const auto& test = art.dataset.test;
  for (const data::EncodedStory& story : test) {
    const auto h = art.model.forward_features(story);
    const auto truth = static_cast<std::size_t>(story.answer);

    const auto r_exact = exact.query(h);
    rows[0].dots += static_cast<double>(r_exact.dot_products);
    rows[0].recall += 1;
    rows[0].correct += r_exact.index == truth ? 1 : 0;

    const auto r_ith = art.ith.predict_from_features(art.model, h);
    rows[1].dots += static_cast<double>(r_ith.comparisons);
    rows[1].recall += r_ith.prediction == r_exact.index ? 1 : 0;
    rows[1].correct += r_ith.prediction == truth ? 1 : 0;

    const auto r_alsh = alsh.query(h);
    rows[2].dots += static_cast<double>(r_alsh.dot_products);
    rows[2].overhead += static_cast<double>(r_alsh.overhead_ops);
    rows[2].recall += r_alsh.index == r_exact.index ? 1 : 0;
    rows[2].correct += r_alsh.index == truth ? 1 : 0;

    const auto r_cm = clusters.query(h);
    rows[3].dots += static_cast<double>(r_cm.dot_products);
    rows[3].overhead += static_cast<double>(r_cm.overhead_ops);
    rows[3].recall += r_cm.index == r_exact.index ? 1 : 0;
    rows[3].correct += r_cm.index == truth ? 1 : 0;
  }

  bench::print_header(
      "Related-work MIPS comparison on the trained output layer (qa1, "
      "|I| = " + std::to_string(w_o.rows()) + ")");
  std::printf("%-26s %12s %12s %12s %10s %10s\n", "method", "dots/query",
              "extra ops", "total ops", "recall@1", "accuracy");
  bench::print_rule();
  const auto n = static_cast<double>(test.size());
  for (const Row& r : rows) {
    std::printf("%-26s %12.1f %12.1f %12.1f %9.1f%% %9.1f%%\n", r.name,
                r.dots / n, r.overhead / n, (r.dots + r.overhead) / n,
                100.0 * static_cast<double>(r.recall) / n,
                100.0 * static_cast<double>(r.correct) / n);
  }
  std::printf(
      "\nexpected shape: ITH needs no per-query overhead and keeps exact-"
      "fallback semantics, so at\nbAbI-scale |I| the hashing/clustering "
      "overheads eat most of their candidate savings — the\npaper's "
      "argument for a data-based threshold test in the OUTPUT module.\n");
  return 0;
}
