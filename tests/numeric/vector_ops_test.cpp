#include "numeric/vector_ops.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "numeric/random.hpp"

namespace mann::numeric {
namespace {

TEST(VectorOps, Dot) {
  const std::vector<float> a = {1, 2, 3};
  const std::vector<float> b = {4, 5, 6};
  EXPECT_FLOAT_EQ(dot(a, b), 32.0F);
}

TEST(VectorOps, DotLengthMismatchThrows) {
  const std::vector<float> a = {1, 2};
  const std::vector<float> b = {1};
  EXPECT_THROW((void)dot(a, b), std::invalid_argument);
}

TEST(VectorOps, Axpy) {
  const std::vector<float> x = {1, 2};
  std::vector<float> y = {10, 20};
  axpy(2.0F, x, y);
  EXPECT_FLOAT_EQ(y[0], 12.0F);
  EXPECT_FLOAT_EQ(y[1], 24.0F);
}

TEST(VectorOps, Matvec) {
  const Matrix m(2, 3, {1, 0, 1, 0, 2, 0});
  const std::vector<float> x = {1, 2, 3};
  const auto y = matvec(m, x);
  ASSERT_EQ(y.size(), 2U);
  EXPECT_FLOAT_EQ(y[0], 4.0F);
  EXPECT_FLOAT_EQ(y[1], 4.0F);
}

TEST(VectorOps, MatvecTransposedMatchesExplicitTranspose) {
  Rng rng(11);
  Matrix m(4, 3);
  for (float& v : m.data()) {
    v = rng.normal();
  }
  std::vector<float> x = {0.5F, -1.0F, 2.0F, 0.25F};
  const auto fast = matvec_transposed(m, x);
  const auto slow = matvec(m.transposed(), x);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], slow[i], 1e-5F);
  }
}

TEST(VectorOps, SoftmaxSumsToOne) {
  std::vector<float> v = {1.0F, 2.0F, 3.0F, 4.0F};
  softmax_inplace(v);
  float sum = 0.0F;
  for (float e : v) {
    EXPECT_GT(e, 0.0F);
    sum += e;
  }
  EXPECT_NEAR(sum, 1.0F, 1e-6F);
  // Monotone: bigger logit, bigger probability.
  EXPECT_LT(v[0], v[1]);
  EXPECT_LT(v[2], v[3]);
}

TEST(VectorOps, SoftmaxIsShiftInvariant) {
  std::vector<float> a = {1.0F, 2.0F, 3.0F};
  std::vector<float> b = {101.0F, 102.0F, 103.0F};
  softmax_inplace(a);
  softmax_inplace(b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-6F);
  }
}

TEST(VectorOps, SoftmaxHandlesLargeMagnitudes) {
  std::vector<float> v = {1000.0F, 0.0F};
  softmax_inplace(v);
  EXPECT_NEAR(v[0], 1.0F, 1e-6F);
  EXPECT_NEAR(v[1], 0.0F, 1e-6F);
}

TEST(VectorOps, ArgmaxPicksFirstOfTies) {
  const std::vector<float> v = {1.0F, 3.0F, 3.0F, 2.0F};
  EXPECT_EQ(argmax(v), 1U);
}

TEST(VectorOps, ArgmaxEmptyThrows) {
  const std::vector<float> v;
  EXPECT_THROW((void)argmax(v), std::invalid_argument);
}

TEST(VectorOps, AddOuter) {
  Matrix m(2, 2);
  const std::vector<float> col = {1.0F, 2.0F};
  const std::vector<float> row = {3.0F, 4.0F};
  add_outer(m, col, row, 1.0F);
  EXPECT_FLOAT_EQ(m(0, 0), 3.0F);
  EXPECT_FLOAT_EQ(m(0, 1), 4.0F);
  EXPECT_FLOAT_EQ(m(1, 0), 6.0F);
  EXPECT_FLOAT_EQ(m(1, 1), 8.0F);
}

TEST(VectorOps, ClipNormScalesDownOnly) {
  std::vector<float> v = {3.0F, 4.0F};  // norm 5
  clip_norm(v, 10.0F);
  EXPECT_FLOAT_EQ(v[0], 3.0F);  // untouched
  clip_norm(v, 2.5F);
  EXPECT_NEAR(norm2(v), 2.5F, 1e-6F);
}

TEST(VectorOps, ClipNormZeroVectorIsNoop) {
  std::vector<float> v = {0.0F, 0.0F};
  clip_norm(v, 1.0F);
  EXPECT_EQ(v[0], 0.0F);
}

}  // namespace
}  // namespace mann::numeric
