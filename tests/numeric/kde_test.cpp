#include "numeric/kde.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "numeric/random.hpp"

namespace mann::numeric {
namespace {

TEST(KernelDensity, EmptyReturnsZero) {
  const KernelDensity kde(std::span<const float>{});
  EXPECT_TRUE(kde.empty());
  EXPECT_EQ(kde(0.0F), 0.0F);
}

TEST(KernelDensity, IntegratesToOne) {
  const std::vector<float> samples = {-1.0F, 0.0F, 0.5F, 2.0F, 2.5F};
  const KernelDensity kde(samples);
  // Trapezoidal integral over a wide window.
  double integral = 0.0;
  const float dx = 0.01F;
  for (float x = -10.0F; x < 12.0F; x += dx) {
    integral += static_cast<double>(kde(x)) * dx;
  }
  EXPECT_NEAR(integral, 1.0, 1e-2);
}

TEST(KernelDensity, PeaksNearSampleMass) {
  const std::vector<float> samples = {0.0F, 0.01F, -0.01F, 0.02F};
  const KernelDensity kde(samples);
  EXPECT_GT(kde(0.0F), kde(1.0F));
  EXPECT_GT(kde(0.0F), kde(-1.0F));
}

TEST(KernelDensity, ExplicitBandwidthIsUsed) {
  const std::vector<float> samples = {0.0F};
  const KernelDensity kde(samples, 2.0F);
  EXPECT_FLOAT_EQ(kde.bandwidth(), 2.0F);
  // Single sample with bandwidth h: density at center = 1/(h*sqrt(2*pi)).
  EXPECT_NEAR(kde(0.0F), 1.0F / (2.0F * std::sqrt(2.0F * 3.14159265F)),
              1e-4F);
}

TEST(KernelDensity, SilvermanBandwidthScalesWithSpread) {
  std::vector<float> narrow;
  std::vector<float> wide;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    narrow.push_back(rng.normal(0.0F, 0.1F));
    wide.push_back(rng.normal(0.0F, 3.0F));
  }
  const KernelDensity kn(narrow);
  const KernelDensity kw(wide);
  EXPECT_LT(kn.bandwidth(), kw.bandwidth());
}

TEST(KernelDensity, DegenerateConstantSamplesStillUsable) {
  const std::vector<float> samples(50, 1.5F);
  const KernelDensity kde(samples);
  EXPECT_GT(kde.bandwidth(), 0.0F);
  EXPECT_GT(kde(1.5F), kde(2.0F));
}

TEST(KernelDensity, RecoversGaussianShape) {
  Rng rng(13);
  std::vector<float> samples;
  for (int i = 0; i < 20'000; ++i) {
    samples.push_back(rng.normal(1.0F, 0.5F));
  }
  const KernelDensity kde(samples);
  // Compare against the true pdf at a few points.
  const auto pdf = [](float x) {
    const float s = 0.5F;
    const float u = (x - 1.0F) / s;
    return std::exp(-0.5F * u * u) /
           (s * std::sqrt(2.0F * 3.14159265F));
  };
  for (const float x : {0.0F, 0.5F, 1.0F, 1.5F, 2.0F}) {
    EXPECT_NEAR(kde(x), pdf(x), 0.05F) << "x=" << x;
  }
}

TEST(KernelDensity, HistogramFitApproximatesRawFit) {
  Rng rng(19);
  std::vector<float> samples;
  Histogram hist(-4.0F, 4.0F, 256);
  for (int i = 0; i < 5'000; ++i) {
    const float v = rng.normal(0.0F, 1.0F);
    samples.push_back(v);
    hist.add(v);
  }
  const KernelDensity raw(samples, 0.3F);
  const KernelDensity binned(hist, 0.3F);
  for (float x = -3.0F; x <= 3.0F; x += 0.5F) {
    EXPECT_NEAR(raw(x), binned(x), 0.01F) << "x=" << x;
  }
}

}  // namespace
}  // namespace mann::numeric
