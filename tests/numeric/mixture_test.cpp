#include "numeric/mixture.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "numeric/random.hpp"

namespace mann::numeric {
namespace {

TEST(Mixture, NormalPdfBasics) {
  EXPECT_NEAR(normal_pdf(0.0F, 0.0F, 1.0F), 0.3989F, 1e-3F);
  EXPECT_NEAR(normal_pdf(1.0F, 0.0F, 1.0F), 0.2420F, 1e-3F);
  // Symmetry.
  EXPECT_FLOAT_EQ(normal_pdf(2.0F, 1.0F, 0.5F), normal_pdf(0.0F, 1.0F, 0.5F));
}

TEST(Mixture, RejectsTooFewSamples) {
  const std::vector<float> one = {1.0F};
  EXPECT_THROW((void)fit_two_gaussians(one), std::invalid_argument);
}

TEST(Mixture, RecoversWellSeparatedComponents) {
  Rng rng(41);
  std::vector<float> samples;
  for (int i = 0; i < 2'000; ++i) {
    samples.push_back(rng.normal(-5.0F, 0.5F));
    samples.push_back(rng.normal(5.0F, 1.0F));
  }
  const MixtureFit fit = fit_two_gaussians(samples);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.low.mean, -5.0F, 0.15F);
  EXPECT_NEAR(fit.high.mean, 5.0F, 0.15F);
  EXPECT_NEAR(fit.low.stddev, 0.5F, 0.1F);
  EXPECT_NEAR(fit.high.stddev, 1.0F, 0.15F);
  EXPECT_NEAR(fit.low.weight, 0.5F, 0.05F);
}

TEST(Mixture, RecoversUnequalWeights) {
  Rng rng(42);
  std::vector<float> samples;
  for (int i = 0; i < 9'000; ++i) {
    samples.push_back(rng.normal(0.0F, 1.0F));
  }
  for (int i = 0; i < 1'000; ++i) {
    samples.push_back(rng.normal(8.0F, 1.0F));
  }
  const MixtureFit fit = fit_two_gaussians(samples);
  EXPECT_NEAR(fit.low.weight, 0.9F, 0.05F);
  EXPECT_NEAR(fit.high.weight, 0.1F, 0.05F);
}

TEST(Mixture, ComponentsOrderedByMean) {
  Rng rng(43);
  std::vector<float> samples;
  for (int i = 0; i < 500; ++i) {
    samples.push_back(rng.normal(3.0F, 0.3F));
    samples.push_back(rng.normal(-3.0F, 0.3F));
  }
  const MixtureFit fit = fit_two_gaussians(samples);
  EXPECT_LT(fit.low.mean, fit.high.mean);
}

TEST(Mixture, SeparationMetric) {
  MixtureFit fit;
  fit.low = {0.5F, 0.0F, 1.0F};
  fit.high = {0.5F, 4.0F, 1.0F};
  EXPECT_FLOAT_EQ(separation(fit), 2.0F);
}

TEST(Mixture, UnimodalDataYieldsLowSeparation) {
  Rng rng(44);
  std::vector<float> samples;
  for (int i = 0; i < 3'000; ++i) {
    samples.push_back(rng.normal(0.0F, 1.0F));
  }
  const MixtureFit fit = fit_two_gaussians(samples);
  EXPECT_LT(separation(fit), 1.0F);
}

TEST(Mixture, VarianceFloorPreventsCollapse) {
  // Two exactly-repeated points: stddev must respect the floor.
  std::vector<float> samples;
  for (int i = 0; i < 100; ++i) {
    samples.push_back(0.0F);
    samples.push_back(1.0F);
  }
  const MixtureFitOptions opt;
  const MixtureFit fit = fit_two_gaussians(samples, opt);
  EXPECT_GE(fit.low.stddev, opt.min_stddev);
  EXPECT_GE(fit.high.stddev, opt.min_stddev);
}

}  // namespace
}  // namespace mann::numeric
