#include "numeric/silhouette.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "numeric/random.hpp"

namespace mann::numeric {
namespace {

TEST(Silhouette, EmptyClustersGiveZero) {
  const std::vector<float> some = {1.0F, 2.0F};
  EXPECT_EQ(average_silhouette({}, some), 0.0F);
  EXPECT_EQ(average_silhouette(some, {}), 0.0F);
}

TEST(Silhouette, WellSeparatedClustersNearOne) {
  const std::vector<float> own = {0.0F, 0.1F, -0.1F};
  const std::vector<float> other = {100.0F, 100.1F, 99.9F};
  EXPECT_GT(average_silhouette(own, other), 0.99F);
}

TEST(Silhouette, IdenticalClustersNonPositive) {
  const std::vector<float> own = {1.0F, 2.0F, 3.0F};
  const std::vector<float> other = {1.0F, 2.0F, 3.0F};
  EXPECT_LE(average_silhouette(own, other), 0.05F);
}

TEST(Silhouette, OverlappingWorseThanSeparated) {
  Rng rng(3);
  std::vector<float> own;
  std::vector<float> near;
  std::vector<float> far;
  for (int i = 0; i < 200; ++i) {
    own.push_back(rng.normal(0.0F, 1.0F));
    near.push_back(rng.normal(1.0F, 1.0F));
    far.push_back(rng.normal(10.0F, 1.0F));
  }
  EXPECT_LT(average_silhouette(own, near), average_silhouette(own, far));
}

TEST(Silhouette, SingletonOwnClusterUsesZeroIntra) {
  // a(x) = 0 for a singleton; s = b / b = 1 when other is distant.
  const std::vector<float> own = {0.0F};
  const std::vector<float> other = {10.0F, 11.0F};
  EXPECT_FLOAT_EQ(average_silhouette(own, other), 1.0F);
}

TEST(Silhouette, BoundedInMinusOneOne) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> own;
    std::vector<float> other;
    const std::size_t n = 1 + rng.index(30);
    const std::size_t m = 1 + rng.index(30);
    for (std::size_t i = 0; i < n; ++i) {
      own.push_back(rng.uniform(-5.0F, 5.0F));
    }
    for (std::size_t i = 0; i < m; ++i) {
      other.push_back(rng.uniform(-5.0F, 5.0F));
    }
    const float s = average_silhouette(own, other);
    EXPECT_GE(s, -1.0F);
    EXPECT_LE(s, 1.0F);
  }
}

TEST(Silhouette, MatchesBruteForce) {
  Rng rng(5);
  std::vector<float> own;
  std::vector<float> other;
  for (int i = 0; i < 17; ++i) {
    own.push_back(rng.uniform(-2.0F, 2.0F));
  }
  for (int i = 0; i < 23; ++i) {
    other.push_back(rng.uniform(0.0F, 6.0F));
  }
  // Brute-force reference.
  double acc = 0.0;
  for (const float x : own) {
    double a = 0.0;
    for (const float y : own) {
      a += std::abs(x - y);
    }
    a /= static_cast<double>(own.size() - 1);
    double b = 0.0;
    for (const float y : other) {
      b += std::abs(x - y);
    }
    b /= static_cast<double>(other.size());
    acc += (b - a) / std::max(a, b);
  }
  const float expected = static_cast<float>(acc / static_cast<double>(own.size()));
  EXPECT_NEAR(average_silhouette(own, other), expected, 1e-4F);
}

}  // namespace
}  // namespace mann::numeric
