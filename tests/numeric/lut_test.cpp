#include "numeric/lut.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace mann::numeric {
namespace {

TEST(ExpLut, MatchesStdExpWithinBudget) {
  const ExpLut lut;
  for (float x = -16.0F; x <= 0.0F; x += 0.0137F) {
    EXPECT_NEAR(lut(x), std::exp(x), 2e-4F) << "x=" << x;
  }
}

TEST(ExpLut, ReportsMaxAbsError) {
  const ExpLut lut;
  EXPECT_GT(lut.max_abs_error(), 0.0F);
  EXPECT_LT(lut.max_abs_error(), 2e-4F);
}

TEST(ExpLut, ErrorShrinksWithTableDepth) {
  const ExpLut coarse({.domain_min = -16.0F, .domain_max = 0.0F,
                       .entries = 128});
  const ExpLut fine({.domain_min = -16.0F, .domain_max = 0.0F,
                     .entries = 4096});
  EXPECT_LT(fine.max_abs_error(), coarse.max_abs_error());
}

TEST(ExpLut, ClampsBelowDomain) {
  const ExpLut lut;
  EXPECT_FLOAT_EQ(lut(-100.0F), std::exp(-16.0F));
}

TEST(ExpLut, ClampsAboveDomain) {
  const ExpLut lut;
  EXPECT_FLOAT_EQ(lut(5.0F), std::exp(0.0F));
}

TEST(ExpLut, EndpointsExact) {
  const ExpLut lut;
  EXPECT_FLOAT_EQ(lut(0.0F), 1.0F);
  EXPECT_NEAR(lut(-16.0F), std::exp(-16.0F), 1e-10F);
}

TEST(ExpLut, RejectsDegenerateConfig) {
  EXPECT_THROW(ExpLut({.domain_min = 0.0F, .domain_max = 0.0F,
                       .entries = 16}),
               std::invalid_argument);
  EXPECT_THROW(ExpLut({.domain_min = -1.0F, .domain_max = 0.0F,
                       .entries = 1}),
               std::invalid_argument);
}

TEST(ReciprocalLut, AccurateOverWideRange) {
  const ReciprocalLut lut;
  for (const float x : {0.001F, 0.01F, 0.1F, 0.5F, 1.0F, 1.5F, 2.0F, 7.0F,
                        100.0F, 12345.0F}) {
    EXPECT_NEAR(lut(x) * x, 1.0F, 2e-5F) << "x=" << x;
  }
}

TEST(ReciprocalLut, NonPositiveSaturates) {
  const ReciprocalLut lut;
  EXPECT_EQ(lut(0.0F), std::numeric_limits<float>::max());
  EXPECT_EQ(lut(-3.0F), std::numeric_limits<float>::max());
}

TEST(ReciprocalLut, SoftmaxDenominatorRegime) {
  // Softmax sums lie in [1, L]; check that regime specifically.
  const ReciprocalLut lut;
  for (float sum = 1.0F; sum <= 50.0F; sum += 0.731F) {
    EXPECT_NEAR(lut(sum), 1.0F / sum, 2e-6F);
  }
}

TEST(ReciprocalLut, RejectsDegenerateConfig) {
  EXPECT_THROW(ReciprocalLut({.entries = 1}), std::invalid_argument);
}

}  // namespace
}  // namespace mann::numeric
