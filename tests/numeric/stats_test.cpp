#include "numeric/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mann::numeric {
namespace {

TEST(Stats, SummarizeEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0U);
  EXPECT_EQ(s.mean, 0.0F);
}

TEST(Stats, SummarizeBasics) {
  const std::vector<float> v = {1.0F, 2.0F, 3.0F, 4.0F};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 4U);
  EXPECT_FLOAT_EQ(s.mean, 2.5F);
  EXPECT_FLOAT_EQ(s.min, 1.0F);
  EXPECT_FLOAT_EQ(s.max, 4.0F);
  EXPECT_NEAR(s.stddev, 1.1180F, 1e-3F);
}

TEST(Stats, GeometricMean) {
  const std::vector<float> v = {1.0F, 4.0F, 16.0F};
  EXPECT_NEAR(geometric_mean(v), 4.0F, 1e-4F);
}

TEST(Stats, GeometricMeanRejectsNonPositive) {
  const std::vector<float> v = {1.0F, 0.0F};
  EXPECT_EQ(geometric_mean(v), 0.0F);
  EXPECT_EQ(geometric_mean({}), 0.0F);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<float> v = {5.0F, 1.0F, 3.0F};
  EXPECT_FLOAT_EQ(percentile(v, 0.0F), 1.0F);
  EXPECT_FLOAT_EQ(percentile(v, 100.0F), 5.0F);
  EXPECT_FLOAT_EQ(percentile(v, 50.0F), 3.0F);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<float> v = {0.0F, 10.0F};
  EXPECT_FLOAT_EQ(percentile(v, 25.0F), 2.5F);
}

TEST(Stats, PercentileClampsP) {
  const std::vector<float> v = {1.0F, 2.0F};
  EXPECT_FLOAT_EQ(percentile(v, -5.0F), 1.0F);
  EXPECT_FLOAT_EQ(percentile(v, 200.0F), 2.0F);
}

TEST(Stats, PercentileEmptyThrows) {
  EXPECT_THROW((void)percentile({}, 50.0F), std::invalid_argument);
}

}  // namespace
}  // namespace mann::numeric
