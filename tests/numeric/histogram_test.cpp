#include "numeric/histogram.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mann::numeric {
namespace {

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0F, 1.0F, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0F, 1.0F, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0F, 1.0F, 4), std::invalid_argument);
}

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0F, 4.0F, 4);  // bins [0,1) [1,2) [2,3) [3,4)
  h.add(0.5F);
  h.add(1.5F);
  h.add(1.9F);
  h.add(3.0F);
  EXPECT_EQ(h.count(0), 1U);
  EXPECT_EQ(h.count(1), 2U);
  EXPECT_EQ(h.count(2), 0U);
  EXPECT_EQ(h.count(3), 1U);
  EXPECT_EQ(h.total(), 4U);
}

TEST(Histogram, ClampsOutOfRangeIntoEdgeBins) {
  Histogram h(0.0F, 1.0F, 2);
  h.add(-10.0F);
  h.add(10.0F);
  EXPECT_EQ(h.count(0), 1U);
  EXPECT_EQ(h.count(1), 1U);
  EXPECT_EQ(h.total(), 2U);
}

TEST(Histogram, BinCenters) {
  const Histogram h(0.0F, 4.0F, 4);
  EXPECT_FLOAT_EQ(h.bin_center(0), 0.5F);
  EXPECT_FLOAT_EQ(h.bin_center(3), 3.5F);
}

TEST(Histogram, BadBinThrows) {
  const Histogram h(0.0F, 1.0F, 2);
  EXPECT_THROW((void)h.count(2), std::out_of_range);
  EXPECT_THROW((void)h.bin_center(2), std::out_of_range);
  EXPECT_THROW((void)h.density(2), std::out_of_range);
}

TEST(Histogram, DensityIntegratesToOne) {
  Histogram h(0.0F, 10.0F, 20);
  for (int i = 0; i < 500; ++i) {
    h.add(static_cast<float>(i % 10) + 0.5F);
  }
  float integral = 0.0F;
  for (std::size_t b = 0; b < h.bin_count(); ++b) {
    integral += h.density(b) * h.bin_width();
  }
  EXPECT_NEAR(integral, 1.0F, 1e-5F);
}

TEST(Histogram, MeanAndStddev) {
  Histogram h(-10.0F, 10.0F, 10);
  h.add(1.0F);
  h.add(3.0F);
  EXPECT_FLOAT_EQ(h.mean(), 2.0F);
  EXPECT_FLOAT_EQ(h.stddev(), 1.0F);
}

TEST(Histogram, EmptyStatsAreZero) {
  const Histogram h(0.0F, 1.0F, 2);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.mean(), 0.0F);
  EXPECT_EQ(h.stddev(), 0.0F);
  EXPECT_EQ(h.density(0), 0.0F);
}

TEST(Histogram, RetainsRawSamples) {
  Histogram h(0.0F, 1.0F, 2);
  h.add(0.25F);
  h.add(0.75F);
  const auto s = h.samples();
  ASSERT_EQ(s.size(), 2U);
  EXPECT_FLOAT_EQ(s[0], 0.25F);
  EXPECT_FLOAT_EQ(s[1], 0.75F);
}

}  // namespace
}  // namespace mann::numeric
