#include "numeric/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace mann::numeric {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a() == b() ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1'000; ++i) {
    const float v = rng.uniform(-2.0F, 3.0F);
    EXPECT_GE(v, -2.0F);
    EXPECT_LT(v, 3.0F);
  }
}

TEST(Rng, IndexCoversRange) {
  Rng rng(9);
  std::set<std::size_t> seen;
  for (int i = 0; i < 2'000; ++i) {
    const std::size_t idx = rng.index(5);
    EXPECT_LT(idx, 5U);
    seen.insert(idx);
  }
  EXPECT_EQ(seen.size(), 5U);
}

TEST(Rng, NormalHasRoughlyUnitMoments) {
  Rng rng(31);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const float v = rng.normal();
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalScalesMeanAndStddev) {
  Rng rng(32);
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    sum += rng.normal(5.0F, 0.5F);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(std::span<int>(v));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(21);
  const auto sample = rng.sample_without_replacement(10, 6);
  EXPECT_EQ(sample.size(), 6U);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 6U);
  for (const std::size_t s : sample) {
    EXPECT_LT(s, 10U);
  }
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng(22);
  const auto sample = rng.sample_without_replacement(4, 4);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 4U);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(23);
  EXPECT_THROW((void)rng.sample_without_replacement(3, 4),
               std::invalid_argument);
}

}  // namespace
}  // namespace mann::numeric
