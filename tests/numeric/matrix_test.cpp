#include "numeric/matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mann::numeric {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  const Matrix m;
  EXPECT_EQ(m.rows(), 0U);
  EXPECT_EQ(m.cols(), 0U);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructsZeroed) {
  const Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3U);
  EXPECT_EQ(m.cols(), 4U);
  EXPECT_EQ(m.size(), 12U);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(m(r, c), 0.0F);
    }
  }
}

TEST(Matrix, ConstructFromValuesChecksShape) {
  EXPECT_NO_THROW(Matrix(2, 2, {1.0F, 2.0F, 3.0F, 4.0F}));
  EXPECT_THROW(Matrix(2, 2, {1.0F, 2.0F}), std::invalid_argument);
}

TEST(Matrix, RowMajorLayout) {
  const Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m(0, 0), 1.0F);
  EXPECT_EQ(m(0, 2), 3.0F);
  EXPECT_EQ(m(1, 0), 4.0F);
  EXPECT_EQ(m(1, 2), 6.0F);
}

TEST(Matrix, AtThrowsOutOfRange) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
  EXPECT_THROW((void)m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW((void)m.at(1, 1));
}

TEST(Matrix, RowSpanAliasesStorage) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  auto row = m.row(1);
  ASSERT_EQ(row.size(), 3U);
  row[0] = 42.0F;
  EXPECT_EQ(m(1, 0), 42.0F);
}

TEST(Matrix, FillAndScale) {
  Matrix m(2, 2);
  m.fill(3.0F);
  m.scale(2.0F);
  EXPECT_EQ(m(1, 1), 6.0F);
}

TEST(Matrix, AddScaled) {
  Matrix a(1, 3, {1, 2, 3});
  const Matrix b(1, 3, {10, 20, 30});
  a.add_scaled(b, 0.5F);
  EXPECT_FLOAT_EQ(a(0, 0), 6.0F);
  EXPECT_FLOAT_EQ(a(0, 2), 18.0F);
}

TEST(Matrix, AddScaledShapeMismatchThrows) {
  Matrix a(1, 3);
  const Matrix b(3, 1);
  EXPECT_THROW(a.add_scaled(b, 1.0F), std::invalid_argument);
}

TEST(Matrix, Transposed) {
  const Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3U);
  EXPECT_EQ(t.cols(), 2U);
  EXPECT_EQ(t(0, 1), 4.0F);
  EXPECT_EQ(t(2, 0), 3.0F);
  // Double transpose is identity.
  EXPECT_EQ(t.transposed(), m);
}

TEST(Matrix, ResizeZeroedClearsContents) {
  Matrix m(1, 2, {7, 8});
  m.resize_zeroed(2, 2);
  EXPECT_EQ(m.rows(), 2U);
  EXPECT_EQ(m(0, 0), 0.0F);
  EXPECT_EQ(m(1, 1), 0.0F);
}

}  // namespace
}  // namespace mann::numeric
