#include "numeric/fixed_point.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace mann::numeric {
namespace {

TEST(FixedPoint, RoundTripSmallValues) {
  for (const float v : {0.0F, 1.0F, -1.0F, 0.5F, -0.25F, 3.14159F}) {
    EXPECT_NEAR(fx16::from_float(v).to_float(), v, 1.0F / 65536.0F);
  }
}

TEST(FixedPoint, OneHasExactRaw) {
  EXPECT_EQ(fx16::from_float(1.0F).raw(), fx16::kOne);
}

TEST(FixedPoint, RoundsToNearest) {
  // Half an LSB above a representable value rounds up.
  const float lsb = 1.0F / 65536.0F;
  const fx16 v = fx16::from_float(lsb * 0.6F);
  EXPECT_EQ(v.raw(), 1);
  const fx16 w = fx16::from_float(lsb * 0.4F);
  EXPECT_EQ(w.raw(), 0);
}

TEST(FixedPoint, AdditionExact) {
  const auto a = fx16::from_float(1.25F);
  const auto b = fx16::from_float(2.5F);
  EXPECT_FLOAT_EQ((a + b).to_float(), 3.75F);
}

TEST(FixedPoint, SubtractionAndNegation) {
  const auto a = fx16::from_float(1.0F);
  const auto b = fx16::from_float(3.0F);
  EXPECT_FLOAT_EQ((a - b).to_float(), -2.0F);
  EXPECT_FLOAT_EQ((-b).to_float(), -3.0F);
}

TEST(FixedPoint, MultiplicationNearExactForDyadics) {
  const auto a = fx16::from_float(1.5F);
  const auto b = fx16::from_float(-2.25F);
  EXPECT_FLOAT_EQ((a * b).to_float(), -3.375F);
}

TEST(FixedPoint, MultiplicationErrorBounded) {
  // |error| of one multiply is at most one LSB.
  const float lsb = 1.0F / 65536.0F;
  for (float x = -3.0F; x < 3.0F; x += 0.37F) {
    for (float y = -2.0F; y < 2.0F; y += 0.29F) {
      const float got =
          (fx16::from_float(x) * fx16::from_float(y)).to_float();
      EXPECT_NEAR(got, x * y, 3.0F * lsb) << x << " * " << y;
    }
  }
}

TEST(FixedPoint, DivisionBasic) {
  const auto a = fx16::from_float(3.0F);
  const auto b = fx16::from_float(2.0F);
  EXPECT_NEAR((a / b).to_float(), 1.5F, 1.0F / 65536.0F);
}

TEST(FixedPoint, DivisionByZeroSaturates) {
  const auto a = fx16::from_float(1.0F);
  EXPECT_EQ(a / fx16{}, fx16::max());
  EXPECT_EQ((-a) / fx16{}, fx16::min());
}

TEST(FixedPoint, AdditionSaturatesInsteadOfWrapping) {
  const fx16 big = fx16::max();
  EXPECT_EQ(big + big, fx16::max());
  const fx16 small = fx16::min();
  EXPECT_EQ(small + small, fx16::min());
}

TEST(FixedPoint, MultiplicationSaturates) {
  const auto big = fx16::from_float(30000.0F);
  EXPECT_EQ(big * big, fx16::max());
  EXPECT_EQ(big * (-big), fx16::min());
}

TEST(FixedPoint, FromFloatSaturates) {
  EXPECT_EQ(fx16::from_float(1.0e9F), fx16::max());
  EXPECT_EQ(fx16::from_float(-1.0e9F), fx16::min());
}

TEST(FixedPoint, ComparisonFollowsValue) {
  const auto a = fx16::from_float(1.0F);
  const auto b = fx16::from_float(2.0F);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, fx16::from_float(1.0F));
}

TEST(FixedPoint, CompoundOperators) {
  auto a = fx16::from_float(1.0F);
  a += fx16::from_float(0.5F);
  a *= fx16::from_float(2.0F);
  a -= fx16::from_float(1.0F);
  EXPECT_FLOAT_EQ(a.to_float(), 2.0F);
}

template <typename Fx>
class FixedPointPrecision : public ::testing::Test {};

using Formats = ::testing::Types<fx8, fx12, fx16, fx20, fx24>;
TYPED_TEST_SUITE(FixedPointPrecision, Formats);

TYPED_TEST(FixedPointPrecision, ResolutionMatchesFracBits) {
  const float lsb = 1.0F / static_cast<float>(1U << TypeParam::kFracBits);
  EXPECT_FLOAT_EQ(TypeParam::epsilon().to_float(), lsb);
  // Round trip within half an LSB.
  const float v = 0.7712F;
  EXPECT_NEAR(TypeParam::from_float(v).to_float(), v, 0.5F * lsb + 1e-7F);
}

TYPED_TEST(FixedPointPrecision, DotProductErrorShrinksWithPrecision) {
  // A short dot product in format F has error bounded by n * lsb-ish.
  const std::vector<float> a = {0.11F, -0.52F, 0.97F, 0.33F};
  const std::vector<float> b = {0.71F, 0.45F, -0.18F, 0.88F};
  TypeParam acc{};
  float ref = 0.0F;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += TypeParam::from_float(a[i]) * TypeParam::from_float(b[i]);
    ref += a[i] * b[i];
  }
  const float lsb = 1.0F / static_cast<float>(1U << TypeParam::kFracBits);
  EXPECT_NEAR(acc.to_float(), ref, 8.0F * lsb);
}

}  // namespace
}  // namespace mann::numeric
