// Cluster: the fleet-level determinism contract. A cluster of one is
// bit-identical to a bare Server on every simulated report field; the
// host worker count and the fleet-thread count change nothing about
// routing, the per-instance timelines, or the merged completion stream;
// that stream is a (cycle, id)-sorted ledger over disjoint id ranges;
// and an autoscaled fleet beats a fixed one on fleet energy for a
// bursty-then-quiet (diurnal) schedule.
#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <tuple>
#include <vector>

#include "serve/metrics.hpp"
#include "serve/outcome.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "serve/trace.hpp"
#include "../serve/serve_test_util.hpp"

namespace mann::cluster {
namespace {

using serve::testing::tiny_program;
using serve::testing::tiny_stories;

std::vector<serve::ServedModel> two_models(
    const std::vector<data::EncodedStory>& stories) {
  std::vector<serve::ServedModel> models;
  models.push_back({tiny_program(7), stories});
  models.push_back({tiny_program(8), stories});
  return models;
}

/// The serving tests' fixed schedule: bursts plus a sparse tail.
std::vector<serve::TraceEntry> fixed_trace() {
  std::vector<serve::TraceEntry> trace;
  const sim::Cycle bases[] = {1'000, 1'000, 1'200, 40'000, 40'000,
                              41'000, 90'000, 400'000, 400'100, 900'000};
  for (std::size_t i = 0; i < std::size(bases); ++i) {
    serve::TraceEntry entry;
    entry.arrival_cycle = bases[i];
    entry.task = i % 2;
    entry.tenant = static_cast<serve::TenantId>(i % 3);
    trace.push_back(entry);
  }
  return trace;
}

serve::ServerConfig server_config(const std::vector<serve::TraceEntry>& trace) {
  serve::ServerConfig config;
  config.batcher.max_batch = 4;
  config.batcher.max_wait_cycles = 30'000;
  config.scheduler.devices = 2;
  config.traffic.slo.default_deadline_cycles = 600'000;
  config.traffic.tenants.resize(3);
  if (!trace.empty()) {
    config.traffic.process = serve::ArrivalProcess::kTrace;
    config.traffic.trace = trace;
  }
  return config;
}

ClusterConfig cluster_config(std::size_t instances,
                             const std::vector<serve::TraceEntry>& trace,
                             RouterPolicyKind kind) {
  ClusterConfig config;
  config.instances = instances;
  config.server = server_config(trace);
  config.router.kind = kind;
  return config;
}

TEST(Cluster, ClusterOfOneIsBitIdenticalToABareServer) {
  const auto stories = tiny_stories(8);
  const auto models = two_models(stories);
  const auto trace = fixed_trace();

  const serve::Server server(server_config(trace), models);
  const serve::ServingReport bare = server.run(trace.size());

  Cluster cluster(cluster_config(1, trace, RouterPolicyKind::kPowerOfTwo),
                  models);
  const ClusterReport report = cluster.run(trace.size());

  ASSERT_EQ(report.instance_reports.size(), 1u);
  EXPECT_TRUE(serve::simulated_reports_identical(
      bare, report.instance_reports[0].report));
  EXPECT_EQ(report.offered, trace.size());
  EXPECT_EQ(report.router_shed, 0u);
  EXPECT_EQ(report.completed, bare.completed);
  EXPECT_EQ(report.makespan_cycles, bare.makespan_cycles);
  EXPECT_EQ(report.instance_reports[0].routed, trace.size());
}

TEST(Cluster, HostWorkerCountChangesNeitherRoutingNorTimelines) {
  const auto stories = tiny_stories(8);
  const auto models = two_models(stories);
  // 4x the fixed schedule so four instances all see traffic.
  const auto trace = serve::scale_trace(fixed_trace(), 4, 2019);

  std::vector<ClusterReport> reports;
  for (const std::size_t workers : {0u, 2u, 4u}) {
    ClusterConfig config =
        cluster_config(4, trace, RouterPolicyKind::kPowerOfTwo);
    config.server.scheduler.workers = workers;
    Cluster cluster(config, models);
    reports.push_back(cluster.run(trace.size()));
  }

  const ClusterReport& serial = reports.front();
  EXPECT_EQ(serial.offered, trace.size());
  for (std::size_t r = 1; r < reports.size(); ++r) {
    const ClusterReport& parallel = reports[r];
    EXPECT_EQ(parallel.completed, serial.completed);
    EXPECT_EQ(parallel.router_shed, serial.router_shed);
    EXPECT_EQ(parallel.makespan_cycles, serial.makespan_cycles);
    EXPECT_DOUBLE_EQ(parallel.energy.total_joules,
                     serial.energy.total_joules);
    EXPECT_DOUBLE_EQ(parallel.latency.p99_cycles, serial.latency.p99_cycles);
    EXPECT_DOUBLE_EQ(parallel.queue_wait.p99_cycles,
                     serial.queue_wait.p99_cycles);
    ASSERT_EQ(parallel.instance_reports.size(),
              serial.instance_reports.size());
    for (std::size_t i = 0; i < serial.instance_reports.size(); ++i) {
      // Byte-identical assignment: each instance served the exact same
      // request set, so its whole simulated timeline matches.
      EXPECT_EQ(parallel.instance_reports[i].routed,
                serial.instance_reports[i].routed)
          << "instance " << i << " routed diverged at workers run " << r;
      EXPECT_TRUE(serve::simulated_reports_identical(
          parallel.instance_reports[i].report,
          serial.instance_reports[i].report))
          << "instance " << i << " report diverged at workers run " << r;
    }
  }
}

TEST(Cluster, FleetThreadCountChangesNoSimulatedReportField) {
  const auto stories = tiny_stories(8);
  const auto models = two_models(stories);
  // 4x the fixed schedule so four instances all see traffic.
  const auto trace = serve::scale_trace(fixed_trace(), 4, 2019);

  std::vector<ClusterReport> reports;
  for (const std::size_t threads : {0u, 1u, 2u, 4u}) {
    ClusterConfig config =
        cluster_config(4, trace, RouterPolicyKind::kPowerOfTwo);
    config.fleet_threads = threads;
    // Exercise the fleet-shared sharded cache in every run: concurrent
    // instances hitting the same segments must not perturb anything.
    config.cache_segments = 4;
    Cluster cluster(config, models);
    reports.push_back(cluster.run(trace.size()));
  }

  EXPECT_EQ(reports.front().offered, trace.size());
  for (std::size_t r = 1; r < reports.size(); ++r) {
    EXPECT_TRUE(
        simulated_cluster_reports_identical(reports.front(), reports[r]))
        << "fleet report diverged at thread-count run " << r;
  }
}

TEST(Cluster, MergedStreamIsByteIdenticalAcrossFleetThreadCounts) {
  const auto stories = tiny_stories(8);
  const auto models = two_models(stories);

  // (cycle, id, instance) tuples in poll order — the full observable
  // completion ledger, live windows and drain tail alike.
  using Tuple = std::tuple<sim::Cycle, std::uint64_t, InstanceId>;
  const auto run_stream = [&](std::size_t threads) {
    ClusterConfig config =
        cluster_config(4, {}, RouterPolicyKind::kPowerOfTwo);
    config.fleet_threads = threads;
    config.cache_segments = threads > 1 ? 2 * threads : 1;
    Cluster cluster(config, models);
    std::vector<Tuple> stream;
    const auto drain_window = [&] {
      for (const ClusterCompletion& c : cluster.poll_completions()) {
        stream.emplace_back(c.completion.cycle, c.completion.response.id,
                            c.instance);
      }
    };
    constexpr std::size_t kRequests = 30;
    for (std::size_t i = 0; i < kRequests; ++i) {
      serve::SubmitRequest request;
      request.task = i % 2;
      request.tenant = static_cast<serve::TenantId>(i % 3);
      request.at_cycle = 1'000 + static_cast<sim::Cycle>(i) * 2'000;
      (void)cluster.submit(request);
      (void)cluster.step_until(cluster.last_submitted_arrival());
      drain_window();
    }
    cluster.drain();
    (void)cluster.step_until(sim::kNever);
    drain_window();
    return stream;
  };

  const std::vector<Tuple> sequential = run_stream(0);
  EXPECT_EQ(sequential.size(), 30u);
  for (const std::size_t threads : {1u, 2u, 4u}) {
    EXPECT_EQ(run_stream(threads), sequential)
        << "merged stream diverged at " << threads << " fleet threads";
  }
}

TEST(Cluster, TaskAffinityKeepsEachTaskOnOneInstance) {
  const auto stories = tiny_stories(8);
  const auto models = two_models(stories);
  const auto trace = serve::scale_trace(fixed_trace(), 3, 7);

  Cluster cluster(cluster_config(4, trace, RouterPolicyKind::kTaskAffinity),
                  models);
  const ClusterReport report = cluster.run(trace.size());

  // Two tasks under consistent hashing touch at most two instances
  // (uncontended: the light fixed schedule never saturates an owner).
  std::size_t instances_touched = 0;
  for (const InstanceReport& instance : report.instance_reports) {
    instances_touched += instance.routed > 0 ? 1 : 0;
  }
  EXPECT_LE(instances_touched, 2u);
  EXPECT_GE(instances_touched, 1u);
  EXPECT_EQ(report.completed + report.rejected, report.offered);
}

TEST(Cluster, MergedStreamIsSortedOverDisjointIdRanges) {
  const auto stories = tiny_stories(8);
  const auto models = two_models(stories);
  Cluster cluster(cluster_config(3, {}, RouterPolicyKind::kPowerOfTwo),
                  models);

  const auto expect_sorted = [](const std::vector<ClusterCompletion>& s,
                                const char* what) {
    for (std::size_t i = 1; i < s.size(); ++i) {
      const bool ordered =
          s[i - 1].completion.cycle < s[i].completion.cycle ||
          (s[i - 1].completion.cycle == s[i].completion.cycle &&
           s[i - 1].completion.response.id < s[i].completion.response.id);
      EXPECT_TRUE(ordered) << what << " out of order at index " << i;
    }
  };

  // Windows polled while arrivals are still being routed concatenate
  // into one fleet-wide sorted stream; the post-drain window is sorted
  // itself but its sub-size flushes dispatch at each instance's own
  // (possibly lagging) clock, so it is checked separately.
  std::vector<ClusterCompletion> live;
  std::vector<ClusterCompletion> tail;
  constexpr std::size_t kRequests = 30;
  for (std::size_t i = 0; i < kRequests; ++i) {
    serve::SubmitRequest request;
    request.task = i % 2;
    request.tenant = static_cast<serve::TenantId>(i % 3);
    request.at_cycle = 1'000 + static_cast<sim::Cycle>(i) * 2'000;
    const Cluster::Submission submission = cluster.submit(request);
    ASSERT_TRUE(submission.instance.has_value());
    // The id encodes the owning instance: disjoint per-instance ranges.
    EXPECT_EQ(static_cast<InstanceId>(submission.id >> 40),
              *submission.instance);
    (void)cluster.step_until(cluster.last_submitted_arrival());
    for (ClusterCompletion& c : cluster.poll_completions()) {
      live.push_back(std::move(c));
    }
  }
  cluster.drain();
  (void)cluster.step_until(sim::kNever);
  for (ClusterCompletion& c : cluster.poll_completions()) {
    tail.push_back(std::move(c));
  }

  ASSERT_EQ(live.size() + tail.size(), kRequests);
  expect_sorted(live, "live stream");
  expect_sorted(tail, "drain window");
  std::vector<ClusterCompletion> stream;
  for (const auto* part : {&live, &tail}) {
    for (const ClusterCompletion& c : *part) {
      stream.push_back(c);
    }
  }
  for (const ClusterCompletion& c : stream) {
    EXPECT_EQ(static_cast<InstanceId>(c.completion.response.id >> 40),
              c.instance);
  }
  // Each instance's subsequence is a sorted ledger end to end, drain
  // included.
  for (InstanceId instance = 0; instance < cluster.size(); ++instance) {
    std::vector<ClusterCompletion> own;
    for (const ClusterCompletion& c : stream) {
      if (c.instance == instance) {
        own.push_back(c);
      }
    }
    expect_sorted(own, "per-instance ledger");
  }

  const ClusterReport report = cluster.finalize();
  EXPECT_EQ(report.offered, kRequests);
  EXPECT_EQ(report.completed + report.rejected, kRequests);
}

TEST(Cluster, AutoscaledFleetBeatsFixedOnFleetEnergy) {
  const auto stories = tiny_stories(8);
  const auto models = two_models(stories);

  // A one-day-in-miniature schedule: a dense morning (30 arrivals inside
  // the first epoch), then a long trough with a sparse tail.
  std::vector<serve::TraceEntry> trace;
  for (std::size_t i = 0; i < 30; ++i) {
    serve::TraceEntry entry;
    entry.arrival_cycle = static_cast<sim::Cycle>(i) * 3'000;
    entry.task = i % 2;
    entry.tenant = static_cast<serve::TenantId>(i % 3);
    trace.push_back(entry);
  }
  for (const sim::Cycle tail : {500'000, 600'000, 900'000}) {
    serve::TraceEntry entry;
    entry.arrival_cycle = tail;
    trace.push_back(entry);
  }

  ClusterConfig fixed_config =
      cluster_config(3, trace, RouterPolicyKind::kPowerOfTwo);
  ClusterConfig scaled_config = fixed_config;
  scaled_config.autoscaler.enabled = true;
  scaled_config.autoscaler.epoch_cycles = 100'000;
  scaled_config.autoscaler.up_arrivals_per_instance = 20.0;
  scaled_config.autoscaler.down_arrivals_per_instance = 5.0;
  scaled_config.autoscaler.cooldown_epochs = 0;

  Cluster fixed_fleet(fixed_config, models);
  const ClusterReport fixed = fixed_fleet.run(trace.size());
  Cluster scaled_fleet(scaled_config, models);
  const ClusterReport scaled = scaled_fleet.run(trace.size());

  // Same work served either way (power-of-two never sheds)...
  EXPECT_EQ(fixed.completed, trace.size());
  EXPECT_EQ(scaled.completed, trace.size());
  EXPECT_EQ(fixed.scale_downs, 0u);
  EXPECT_EQ(fixed.mean_active_instances, 3.0);

  // ...but the autoscaler parks through the trough and stops paying the
  // fleet's idle static + clock-tree watts.
  EXPECT_GE(scaled.scale_downs, 2u);
  EXPECT_LT(scaled.mean_active_instances, 3.0);
  EXPECT_LT(scaled.energy.static_joules, fixed.energy.static_joules);
  EXPECT_LT(scaled.energy.total_joules, fixed.energy.total_joules);
  EXPECT_LT(scaled.energy.per_inference_joules,
            fixed.energy.per_inference_joules);
}

}  // namespace
}  // namespace mann::cluster
