// Autoscaler: the epoch rule is a pure function of the arrival schedule.
// Scale decisions fire only at epoch boundaries, move one step at a
// time, respect min/max clamps and the cooldown, and empty trailing
// epochs walk the count down toward the floor (the diurnal trough).
#include "cluster/autoscaler.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mann::cluster {
namespace {

AutoscalerConfig fast_config() {
  AutoscalerConfig config;
  config.enabled = true;
  config.epoch_cycles = 1'000;
  config.up_arrivals_per_instance = 5.0;
  config.down_arrivals_per_instance = 2.0;
  config.cooldown_epochs = 0;
  return config;
}

TEST(Autoscaler, DisabledNeverDecides) {
  AutoscalerConfig config = fast_config();
  config.enabled = false;
  Autoscaler scaler(config, 4);
  for (sim::Cycle cycle = 0; cycle < 50'000; cycle += 100) {
    EXPECT_EQ(scaler.observe(cycle, 1), std::nullopt);
  }
  EXPECT_EQ(scaler.scale_ups(), 0u);
  EXPECT_EQ(scaler.scale_downs(), 0u);
}

TEST(Autoscaler, ScalesUpWhenAnEpochRunsHot) {
  Autoscaler scaler(fast_config(), 4);
  // Ten arrivals land in epoch 0 with one active instance: per = 10 > 5.
  for (sim::Cycle cycle = 0; cycle < 10; ++cycle) {
    EXPECT_EQ(scaler.observe(cycle, 1), std::nullopt);
  }
  // The boundary-crossing arrival closes the epoch and fires the rule.
  EXPECT_EQ(scaler.observe(1'000, 1), std::optional<std::size_t>{2});
  EXPECT_EQ(scaler.scale_ups(), 1u);
}

TEST(Autoscaler, EmptyEpochsWalkTheFleetDownToTheFloor) {
  Autoscaler scaler(fast_config(), 4);
  EXPECT_EQ(scaler.observe(100, 3), std::nullopt);
  // One quiet spell spanning several epochs: per = 1/3 then 0, 0, ... —
  // each closed epoch steps down once until min_instances holds.
  EXPECT_EQ(scaler.observe(5'500, 3), std::optional<std::size_t>{1});
  EXPECT_EQ(scaler.scale_downs(), 2u);
  EXPECT_EQ(scaler.scale_ups(), 0u);
}

TEST(Autoscaler, CooldownHoldsBetweenDecisions) {
  AutoscalerConfig config = fast_config();
  config.cooldown_epochs = 2;
  Autoscaler scaler(config, 4);
  for (sim::Cycle cycle = 0; cycle < 10; ++cycle) {
    (void)scaler.observe(cycle, 1);
  }
  // Epoch 0 closes hot -> up. Epochs 1 and 2 are also hot but sit in
  // the cooldown shadow; epoch 3 decides again.
  EXPECT_EQ(scaler.observe(1'000, 1), std::optional<std::size_t>{2});
  for (sim::Cycle cycle = 1'001; cycle < 1'030; ++cycle) {
    (void)scaler.observe(cycle, 2);
  }
  EXPECT_EQ(scaler.observe(2'000, 2), std::nullopt);  // cooldown
  for (sim::Cycle cycle = 2'001; cycle < 2'030; ++cycle) {
    (void)scaler.observe(cycle, 2);
  }
  EXPECT_EQ(scaler.observe(3'000, 2), std::nullopt);  // cooldown
  for (sim::Cycle cycle = 3'001; cycle < 3'030; ++cycle) {
    (void)scaler.observe(cycle, 2);
  }
  EXPECT_EQ(scaler.observe(4'000, 2), std::optional<std::size_t>{3});
  EXPECT_EQ(scaler.scale_ups(), 2u);
}

TEST(Autoscaler, ClampsToMinMaxAndFleetSize) {
  AutoscalerConfig config = fast_config();
  config.min_instances = 2;
  config.max_instances = 9;  // clamped to the fleet size of 3
  Autoscaler scaler(config, 3);

  // Hot epochs cannot push past the fleet.
  for (sim::Cycle cycle = 0; cycle < 40; ++cycle) {
    (void)scaler.observe(cycle, 3);
  }
  EXPECT_EQ(scaler.observe(1'000, 3), std::nullopt);
  // Cold epochs cannot push below min_instances.
  EXPECT_EQ(scaler.observe(9'500, 2), std::nullopt);
  EXPECT_EQ(scaler.scale_ups(), 0u);
  EXPECT_EQ(scaler.scale_downs(), 0u);
}

TEST(Autoscaler, TwoInstancesReplayIdentically) {
  Autoscaler a(fast_config(), 4);
  Autoscaler b(fast_config(), 4);
  std::size_t active_a = 2;
  std::size_t active_b = 2;
  // A bursty-then-quiet schedule: both replicas must make the same
  // decisions at the same arrivals.
  for (sim::Cycle cycle = 0; cycle < 30'000;
       cycle += (cycle < 8'000 ? 70 : 1'900)) {
    const auto ta = a.observe(cycle, active_a);
    const auto tb = b.observe(cycle, active_b);
    EXPECT_EQ(ta, tb) << "diverged at cycle " << cycle;
    if (ta) {
      active_a = *ta;
    }
    if (tb) {
      active_b = *tb;
    }
  }
  EXPECT_EQ(active_a, active_b);
  EXPECT_EQ(a.scale_ups(), b.scale_ups());
  EXPECT_EQ(a.scale_downs(), b.scale_downs());
}

TEST(Autoscaler, RejectsZeroEpoch) {
  AutoscalerConfig config = fast_config();
  config.epoch_cycles = 0;
  EXPECT_THROW(Autoscaler(config, 2), std::invalid_argument);
}

}  // namespace
}  // namespace mann::cluster
