// Router policies: placement properties and the determinism contract.
// The key claims: consistent hashing is *stable* (instance add/remove
// moves only the departed/arrived arcs, ~K/N of K keys), power-of-two
// prefers the less-loaded sample and replays byte-identically for a
// fixed seed, and tenant spill walks home -> spill set -> router shed.
#include "cluster/router.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

namespace mann::cluster {
namespace {

std::vector<InstanceStatus> uniform_statuses(std::size_t n,
                                             std::size_t depth = 0) {
  std::vector<InstanceStatus> status(n);
  for (std::size_t i = 0; i < n; ++i) {
    status[i].id = i;
    status[i].queue_depth = depth;
  }
  return status;
}

std::vector<InstanceId> iota_ids(std::size_t n) {
  std::vector<InstanceId> ids(n);
  for (std::size_t i = 0; i < n; ++i) {
    ids[i] = i;
  }
  return ids;
}

TEST(HashRing, RemovalMovesOnlyTheDepartedArcs) {
  constexpr std::size_t kKeys = 2000;
  constexpr std::size_t kInstances = 4;
  HashRing ring(64);
  ring.rebuild(iota_ids(kInstances));
  std::map<std::uint64_t, InstanceId> before;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    before[key] = ring.owner(key);
  }

  ring.rebuild({0, 1, 2});  // instance 3 leaves
  std::size_t moved = 0;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const InstanceId now = ring.owner(key);
    if (now != before[key]) {
      // Every moved key must have belonged to the departed instance;
      // keys between surviving instances never move.
      EXPECT_EQ(before[key], 3u) << "key " << key << " moved gratuitously";
      ++moved;
    }
    EXPECT_NE(now, 3u);
  }
  // ~K/N keys move (the departed instance's share), within generous
  // bounds for hash variance.
  EXPECT_GT(moved, kKeys / (2 * kInstances));
  EXPECT_LT(moved, kKeys / kInstances * 2);
}

TEST(HashRing, AdditionMovesOnlyArcsOntoTheNewInstance) {
  constexpr std::size_t kKeys = 2000;
  HashRing ring(64);
  ring.rebuild(iota_ids(3));
  std::map<std::uint64_t, InstanceId> before;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    before[key] = ring.owner(key);
  }
  ring.rebuild(iota_ids(4));  // instance 3 joins
  std::size_t moved = 0;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const InstanceId now = ring.owner(key);
    if (now != before[key]) {
      EXPECT_EQ(now, 3u) << "key " << key << " moved between survivors";
      ++moved;
    }
  }
  EXPECT_GT(moved, kKeys / 8);
  EXPECT_LT(moved, kKeys / 2);
}

TEST(TaskAffinity, SameTaskAlwaysLandsOnTheSameInstance) {
  RouterConfig config;
  config.kind = RouterPolicyKind::kTaskAffinity;
  auto policy = make_router_policy(config);
  policy->set_topology(iota_ids(4));
  const auto status = uniform_statuses(4);
  for (std::size_t task = 0; task < 16; ++task) {
    const auto first = policy->route({task, 0, 0}, status);
    ASSERT_TRUE(first.has_value());
    for (int repeat = 0; repeat < 5; ++repeat) {
      EXPECT_EQ(policy->route({task, 0, 1000}, status), first);
    }
  }
}

TEST(TaskAffinity, SpillsPastASaturatedOwnerAndFallsBackWhenAllFull) {
  RouterConfig config;
  config.kind = RouterPolicyKind::kTaskAffinity;
  config.spill_queue_threshold = 8;
  auto policy = make_router_policy(config);
  policy->set_topology(iota_ids(3));
  auto status = uniform_statuses(3);
  const auto owner = policy->route({5, 0, 0}, status);
  ASSERT_TRUE(owner.has_value());

  status[*owner].queue_depth = 8;  // saturate the owner
  const auto spilled = policy->route({5, 0, 0}, status);
  ASSERT_TRUE(spilled.has_value());
  EXPECT_NE(*spilled, *owner);

  for (auto& s : status) {
    s.queue_depth = 100;  // whole fleet saturated: affinity never sheds
  }
  EXPECT_EQ(policy->route({5, 0, 0}, status), owner);
}

TEST(PowerOfTwo, PrefersTheLessLoadedSampleAndNeverPicksOutsideActive) {
  RouterConfig config;
  config.kind = RouterPolicyKind::kPowerOfTwo;
  auto policy = make_router_policy(config);
  policy->set_topology({0, 2, 3});  // instance 1 is parked
  auto status = uniform_statuses(4);
  status[0].queue_depth = 50;
  status[2].queue_depth = 50;
  status[3].queue_depth = 0;
  std::size_t picked_empty = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    const auto choice = policy->route({i, 0, i}, status);
    ASSERT_TRUE(choice.has_value());
    EXPECT_NE(*choice, 1u);
    picked_empty += *choice == 3u ? 1 : 0;
  }
  // Instance 3 wins every decision that samples it: P(sampled) = 2/3 of
  // draws in expectation; assert well above what uniform-random (1/3 of
  // 200) would give.
  EXPECT_GT(picked_empty, 100u);
}

TEST(PowerOfTwo, FixedSeedReplaysByteIdentically) {
  RouterConfig config;
  config.kind = RouterPolicyKind::kPowerOfTwo;
  config.seed = 77;
  auto a = make_router_policy(config);
  auto b = make_router_policy(config);
  a->set_topology(iota_ids(5));
  b->set_topology(iota_ids(5));
  auto status = uniform_statuses(5);
  for (std::size_t i = 0; i < 500; ++i) {
    status[i % 5].queue_depth = (i * 7) % 13;  // shifting load picture
    EXPECT_EQ(a->route({i, 0, i}, status), b->route({i, 0, i}, status));
  }
}

TEST(TenantSpill, HomesThenSpillsThenSheds) {
  RouterConfig config;
  config.kind = RouterPolicyKind::kTenantSpill;
  config.spill_queue_threshold = 4;
  auto policy = make_router_policy(config);
  policy->set_topology(iota_ids(3));
  auto status = uniform_statuses(3);

  // Tenant t homes on t % 3 while everyone is under the threshold.
  EXPECT_EQ(policy->route({0, 1, 0}, status), std::optional<InstanceId>{1});
  EXPECT_EQ(policy->route({0, 4, 0}, status), std::optional<InstanceId>{1});

  status[1].queue_depth = 4;  // home saturated: first spill target is 2
  EXPECT_EQ(policy->route({0, 1, 0}, status), std::optional<InstanceId>{2});

  status[2].queue_depth = 4;
  EXPECT_EQ(policy->route({0, 1, 0}, status), std::optional<InstanceId>{0});

  status[0].queue_depth = 4;  // whole spill set saturated: router shed
  EXPECT_EQ(policy->route({0, 1, 0}, status), std::nullopt);
}

TEST(TenantSpill, ConfiguredHomeDegradesToModuloWhenParked) {
  RouterConfig config;
  config.kind = RouterPolicyKind::kTenantSpill;
  config.tenant_home = {2, 2, 2};  // every tenant pinned to instance 2
  auto policy = make_router_policy(config);
  policy->set_topology(iota_ids(3));
  const auto status = uniform_statuses(3);
  EXPECT_EQ(policy->route({0, 1, 0}, status), std::optional<InstanceId>{2});

  policy->set_topology({0, 1});  // instance 2 parked
  EXPECT_EQ(policy->route({0, 1, 0}, uniform_statuses(3)),
            std::optional<InstanceId>{1});
}

TEST(Router, PolicyNamesRoundTrip) {
  for (const auto kind :
       {RouterPolicyKind::kTaskAffinity, RouterPolicyKind::kPowerOfTwo,
        RouterPolicyKind::kTenantSpill}) {
    RouterConfig config;
    config.kind = kind;
    EXPECT_STREQ(make_router_policy(config)->name(),
                 router_policy_name(kind));
  }
}

}  // namespace
}  // namespace mann::cluster
