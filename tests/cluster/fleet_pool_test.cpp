// FleetPool: the barrier-shaped host pool behind parallel
// Cluster::step_until. Contract under test: every round runs each index
// exactly once and joins before run() returns; the pool is reusable
// across many rounds (workers park, they don't exit); 0/1 threads
// degrade to the inline sequential path; and a throwing task poisons
// only its round — all claimed tasks still finish, run() rethrows the
// lowest-index exception (what a sequential walk would surface), and
// the next round works.
#include "cluster/fleet_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace mann::cluster {
namespace {

TEST(FleetPool, EveryIndexRunsExactlyOncePerRound) {
  FleetPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::atomic<int>> counts(16);
    pool.run(16, [&](std::size_t i) { counts[i].fetch_add(1); });
    for (std::size_t i = 0; i < counts.size(); ++i) {
      EXPECT_EQ(counts[i].load(), 1) << "index " << i << " round " << round;
    }
  }
}

TEST(FleetPool, RoundsSmallerAndLargerThanThePoolBothDrain) {
  FleetPool pool(4);
  for (const std::size_t count : {1u, 2u, 3u, 4u, 5u, 9u, 64u}) {
    std::atomic<std::size_t> ran{0};
    pool.run(count, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), count);
  }
}

TEST(FleetPool, ZeroAndOneThreadRunInlineInIndexOrder) {
  for (const std::size_t threads : {0u, 1u}) {
    FleetPool pool(threads);
    EXPECT_EQ(pool.size(), 0u) << threads << " threads spawns no workers";
    std::vector<std::size_t> order;
    pool.run(5, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  }
}

TEST(FleetPool, InlineModeStopsAtTheFirstThrowLikeASequentialLoop) {
  FleetPool pool(0);
  std::vector<int> ran(6, 0);
  EXPECT_THROW(pool.run(6,
                        [&](std::size_t i) {
                          if (i == 3) {
                            throw std::runtime_error("boom");
                          }
                          ran[i] = 1;
                        }),
               std::runtime_error);
  EXPECT_EQ(ran, (std::vector<int>{1, 1, 1, 0, 0, 0}));
}

TEST(FleetPool, RethrowsTheLowestIndexExceptionAndSurvivesTheRound) {
  FleetPool pool(4);
  for (int attempt = 0; attempt < 20; ++attempt) {
    std::atomic<std::size_t> ran{0};
    try {
      pool.run(8, [&](std::size_t i) {
        ran.fetch_add(1);
        if (i % 2 == 1) {
          throw std::runtime_error("boom " + std::to_string(i));
        }
      });
      FAIL() << "run() swallowed the round's exceptions";
    } catch (const std::runtime_error& error) {
      // Deterministic failure: of the four throwers {1,3,5,7}, the
      // lowest index wins regardless of host scheduling.
      EXPECT_STREQ(error.what(), "boom 1");
    }
    // Poisoned round, healthy pool: every task still ran (instances
    // must never be abandoned mid-step), and the next round is clean.
    EXPECT_EQ(ran.load(), 8u);
    std::atomic<std::size_t> after{0};
    pool.run(4, [&](std::size_t) { after.fetch_add(1); });
    EXPECT_EQ(after.load(), 4u);
  }
}

TEST(FleetPool, EmptyRoundIsANoOp) {
  FleetPool pool(2);
  std::atomic<int> ran{0};
  pool.run(0, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 0);
}

}  // namespace
}  // namespace mann::cluster
