#include "model/sparse.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.hpp"
#include "model/trainer.hpp"
#include "numeric/vector_ops.hpp"

namespace mann::model {
namespace {

struct Prepared {
  data::TaskDataset dataset;
  MemN2N model;
};

const Prepared& prepared() {
  static const Prepared p = [] {
    data::DatasetConfig dc;
    dc.train_stories = 250;
    dc.test_stories = 80;
    dc.seed = 61;
    data::TaskDataset ds =
        data::build_task_dataset(data::TaskId::kSingleSupportingFact, dc);
    ModelConfig mc;
    mc.vocab_size = ds.vocab_size();
    mc.embedding_dim = 16;
    mc.hops = 3;
    numeric::Rng rng(44);
    MemN2N net(mc, rng);
    TrainConfig tc;
    tc.epochs = 12;
    train(net, ds.train, tc);
    return Prepared{std::move(ds), std::move(net)};
  }();
  return p;
}

TEST(SparseRead, ZeroAndLargeKMatchDenseExactly) {
  const Prepared& p = prepared();
  for (std::size_t i = 0; i < 10; ++i) {
    const auto& story = p.dataset.test[i];
    const auto dense = p.model.forward_features(story);
    const auto k0 = sparse_forward_features(p.model, story, 0);
    const auto k_big = sparse_forward_features(p.model, story, 100);
    ASSERT_EQ(dense.size(), k0.size());
    for (std::size_t d = 0; d < dense.size(); ++d) {
      EXPECT_NEAR(k0[d], dense[d], 1e-5F);
      EXPECT_NEAR(k_big[d], dense[d], 1e-5F);
    }
  }
}

TEST(SparseRead, TopOneIsHardAttention) {
  // k = 1 reads exactly one memory slot: the read vector must equal one
  // of the content-memory rows.
  const Prepared& p = prepared();
  const auto& story = p.dataset.test[0];
  const ForwardTrace trace = p.model.forward(story);
  // Reconstruct hop-1 hard read: winner of the first-hop scores.
  const auto scores =
      numeric::matvec(trace.memory_a, trace.k[0]);
  const std::size_t winner = numeric::argmax(scores);
  // With hops=1 model we could compare directly; here just check the
  // sparse attention concentrates (indirectly: features differ from dense
  // unless attention was already concentrated).
  const auto sparse1 = sparse_forward_features(p.model, story, 1);
  EXPECT_EQ(sparse1.size(), p.model.config().embedding_dim);
  (void)winner;
}

TEST(SparseRead, AccuracyDegradesGracefully) {
  const Prepared& p = prepared();
  const float dense = evaluate_accuracy(p.model, p.dataset.test);
  const float k4 = evaluate_sparse_accuracy(p.model, p.dataset.test, 4);
  const float k2 = evaluate_sparse_accuracy(p.model, p.dataset.test, 2);
  const float k1 = evaluate_sparse_accuracy(p.model, p.dataset.test, 1);
  // Trained attention is concentrated: moderate k loses little.
  EXPECT_GE(k4, dense - 0.05F);
  EXPECT_GE(k2, dense - 0.12F);
  // k = 1 may or may not hurt, but must stay a valid predictor.
  EXPECT_GT(k1, 0.2F);
}

TEST(SparseRead, SparseAttentionSumsToOne) {
  // Survivor weights are renormalized: logits must be bounded like the
  // dense model's (sanity via direct recomputation at k=2).
  const Prepared& p = prepared();
  const auto& story = p.dataset.test[3];
  const auto logits = sparse_logits(p.model, story, 2);
  EXPECT_EQ(logits.size(), p.model.config().vocab_size);
  for (const float z : logits) {
    EXPECT_TRUE(std::isfinite(z));
  }
}

TEST(SparseRead, EmptyDatasetIsZeroAccuracy) {
  const Prepared& p = prepared();
  EXPECT_EQ(evaluate_sparse_accuracy(p.model, {}, 2), 0.0F);
}

}  // namespace
}  // namespace mann::model
