#include "model/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mann::model {
namespace {

MemN2N make_model(std::uint64_t seed = 3) {
  ModelConfig c;
  c.vocab_size = 12;
  c.embedding_dim = 5;
  c.hops = 2;
  c.max_memory = 7;
  numeric::Rng rng(seed);
  return MemN2N(c, rng);
}

TEST(Serialize, RoundTripPreservesEverything) {
  const MemN2N original = make_model();
  std::stringstream buffer;
  save_model(buffer, original);
  const MemN2N loaded = load_model(buffer);

  EXPECT_EQ(loaded.config().vocab_size, original.config().vocab_size);
  EXPECT_EQ(loaded.config().embedding_dim, original.config().embedding_dim);
  EXPECT_EQ(loaded.config().hops, original.config().hops);
  EXPECT_EQ(loaded.config().max_memory, original.config().max_memory);
  EXPECT_EQ(loaded.params().embedding_a, original.params().embedding_a);
  EXPECT_EQ(loaded.params().embedding_c, original.params().embedding_c);
  EXPECT_EQ(loaded.params().embedding_q, original.params().embedding_q);
  EXPECT_EQ(loaded.params().w_r, original.params().w_r);
  EXPECT_EQ(loaded.params().w_o, original.params().w_o);
}

TEST(Serialize, LoadedModelPredictsIdentically) {
  const MemN2N original = make_model(17);
  std::stringstream buffer;
  save_model(buffer, original);
  const MemN2N loaded = load_model(buffer);

  data::EncodedStory s;
  s.context = {{0, 1, 2}, {3, 4}};
  s.question = {5};
  s.answer = 6;
  const auto t0 = original.forward(s);
  const auto t1 = loaded.forward(s);
  EXPECT_EQ(t0.logits, t1.logits);
  EXPECT_EQ(t0.prediction, t1.prediction);
}

TEST(Serialize, BadMagicRejected) {
  std::stringstream buffer;
  buffer << "NOPE garbage";
  EXPECT_THROW((void)load_model(buffer), std::runtime_error);
}

TEST(Serialize, TruncatedPayloadRejected) {
  const MemN2N original = make_model();
  std::stringstream buffer;
  save_model(buffer, original);
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream half(bytes);
  EXPECT_THROW((void)load_model(half), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  const MemN2N original = make_model(21);
  const std::string path =
      ::testing::TempDir() + "/mann_serialize_test.bin";
  save_model_file(path, original);
  const MemN2N loaded = load_model_file(path);
  EXPECT_EQ(loaded.params().w_o, original.params().w_o);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW((void)load_model_file("/nonexistent/path/model.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace mann::model
