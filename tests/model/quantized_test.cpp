#include "model/quantized.hpp"

#include <gtest/gtest.h>

#include "data/dataset.hpp"
#include "model/trainer.hpp"

namespace mann::model {
namespace {

struct Prepared {
  data::TaskDataset dataset;
  MemN2N model;
};

const Prepared& prepared() {
  static const Prepared p = [] {
    data::DatasetConfig dc;
    dc.train_stories = 200;
    dc.test_stories = 60;
    dc.seed = 31;
    data::TaskDataset ds =
        data::build_task_dataset(data::TaskId::kSingleSupportingFact, dc);
    ModelConfig mc;
    mc.vocab_size = ds.vocab_size();
    mc.embedding_dim = 16;
    mc.hops = 3;
    numeric::Rng rng(77);
    MemN2N net(mc, rng);
    TrainConfig tc;
    tc.epochs = 10;
    train(net, ds.train, tc);
    return Prepared{std::move(ds), std::move(net)};
  }();
  return p;
}

TEST(Quantized, LogitShapesMatch) {
  const Prepared& p = prepared();
  const auto logits =
      quantized_logits<numeric::fx16>(p.model, p.dataset.test[0]);
  EXPECT_EQ(logits.size(), p.model.config().vocab_size);
}

TEST(Quantized, Q16MatchesFloatClosely) {
  const Prepared& p = prepared();
  const QuantizationReport r =
      evaluate_quantized<numeric::fx16>(p.model, p.dataset.test);
  EXPECT_GE(r.argmax_agreement, 0.98);
  EXPECT_LT(r.max_logit_error, 0.05F);
}

TEST(Quantized, ErrorShrinksWithFractionalBits) {
  const Prepared& p = prepared();
  const auto r8 = evaluate_quantized<numeric::fx8>(p.model, p.dataset.test);
  const auto r16 =
      evaluate_quantized<numeric::fx16>(p.model, p.dataset.test);
  const auto r24 =
      evaluate_quantized<numeric::fx24>(p.model, p.dataset.test);
  EXPECT_GT(r8.max_logit_error, r16.max_logit_error);
  EXPECT_GT(r16.max_logit_error, r24.max_logit_error);
}

TEST(Quantized, AgreementMonotoneEnoughAcrossFormats) {
  const Prepared& p = prepared();
  const auto r8 = evaluate_quantized<numeric::fx8>(p.model, p.dataset.test);
  const auto r16 =
      evaluate_quantized<numeric::fx16>(p.model, p.dataset.test);
  EXPECT_GE(r16.argmax_agreement + 1e-9, r8.argmax_agreement);
}

TEST(Quantized, AccuracyTracksFloatAccuracy) {
  const Prepared& p = prepared();
  const float ref = evaluate_accuracy(p.model, p.dataset.test);
  const auto r16 =
      evaluate_quantized<numeric::fx16>(p.model, p.dataset.test);
  EXPECT_NEAR(r16.accuracy, static_cast<double>(ref), 0.04);
}

TEST(Quantized, EmptyDatasetYieldsZeroReport) {
  const Prepared& p = prepared();
  const auto r = evaluate_quantized<numeric::fx16>(p.model, {});
  EXPECT_EQ(r.argmax_agreement, 0.0);
  EXPECT_EQ(r.max_logit_error, 0.0F);
}

TEST(Quantized, PredictMatchesLogitsArgmax) {
  const Prepared& p = prepared();
  for (std::size_t i = 0; i < 5; ++i) {
    const auto& story = p.dataset.test[i];
    const auto logits = quantized_logits<numeric::fx16>(p.model, story);
    EXPECT_EQ(quantized_predict<numeric::fx16>(p.model, story),
              numeric::argmax(logits));
  }
}

TEST(Quantized, MatchesAcceleratorScale) {
  // The device runs Q16.16; the library evaluator at Q16.16 should agree
  // with the float model at least as well as the accelerator test demands
  // (>= 95%).
  const Prepared& p = prepared();
  const auto r = evaluate_quantized<numeric::fx16>(p.model, p.dataset.test);
  EXPECT_GE(r.argmax_agreement, 0.95);
}

}  // namespace
}  // namespace mann::model
